/**
 * @file
 * Statevector simulator tests, cross-checked against dense unitaries.
 */

#include <gtest/gtest.h>

#include <numbers>

#include "ir/lower.hh"
#include "linalg/embed.hh"
#include "sim/statevector.hh"
#include "sim/unitary_builder.hh"
#include "util/rng.hh"

namespace quest {
namespace {

constexpr double pi = std::numbers::pi;

Circuit
randomCircuit(int n, int gates, uint64_t seed)
{
    Rng rng(seed);
    Circuit c(n);
    for (int i = 0; i < gates; ++i) {
        double pick = rng.uniform();
        int q = static_cast<int>(rng.uniformInt(n));
        if (pick < 0.3 && n >= 2) {
            int t = (q + 1 + static_cast<int>(
                     rng.uniformInt(n - 1))) % n;
            c.append(Gate::cx(q, t));
        } else if (pick < 0.4 && n >= 2) {
            int t = (q + 1) % n;
            c.append(Gate::rzz(q, t, rng.uniform(-pi, pi)));
        } else if (pick < 0.5 && n >= 3) {
            c.append(Gate::ccx(q, (q + 1) % n, (q + 2) % n));
        } else {
            c.append(Gate::u3(q, rng.uniform(-pi, pi),
                              rng.uniform(-pi, pi),
                              rng.uniform(-pi, pi)));
        }
    }
    return c;
}

TEST(StateVector, InitialState)
{
    StateVector s(3);
    EXPECT_EQ(s.dim(), 8u);
    EXPECT_EQ(s.amp(0), Complex(1.0, 0.0));
    for (size_t k = 1; k < 8; ++k)
        EXPECT_EQ(s.amp(k), Complex(0.0, 0.0));
    EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

TEST(StateVector, XFlipsQubit)
{
    StateVector s(2);
    s.applyGate(Gate::x(0));
    // Qubit 0 is the most significant bit: |10> = index 2.
    EXPECT_NEAR(std::abs(s.amp(2) - Complex(1.0, 0.0)), 0.0, 1e-12);
}

TEST(StateVector, BellState)
{
    StateVector s(2);
    s.applyGate(Gate::h(0));
    s.applyGate(Gate::cx(0, 1));
    double half = 0.5;
    Distribution d = s.probabilities();
    EXPECT_NEAR(d[0], half, 1e-12);
    EXPECT_NEAR(d[3], half, 1e-12);
    EXPECT_NEAR(d[1], 0.0, 1e-12);
    EXPECT_NEAR(d[2], 0.0, 1e-12);
}

TEST(StateVector, GhzState)
{
    StateVector s(4);
    s.applyGate(Gate::h(0));
    for (int q = 0; q + 1 < 4; ++q)
        s.applyGate(Gate::cx(q, q + 1));
    Distribution d = s.probabilities();
    EXPECT_NEAR(d[0], 0.5, 1e-12);
    EXPECT_NEAR(d[15], 0.5, 1e-12);
}

TEST(StateVector, MatchesUnitaryColumn)
{
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        Circuit c = randomCircuit(4, 25, seed);
        StateVector s(4);
        s.applyCircuit(c);
        Matrix u = buildUnitary(c);
        // State = first column of U.
        for (size_t k = 0; k < 16; ++k) {
            EXPECT_NEAR(std::abs(s.amp(k) - u(k, 0)), 0.0, 1e-9)
                << "seed " << seed << " k " << k;
        }
    }
}

TEST(StateVector, NormPreservedByRandomCircuits)
{
    for (uint64_t seed = 10; seed < 15; ++seed) {
        Circuit c = randomCircuit(5, 40, seed);
        StateVector s(5);
        s.applyCircuit(c);
        EXPECT_NEAR(s.norm(), 1.0, 1e-9);
    }
}

TEST(StateVector, ApplyMatrixGeneralMatchesEmbed)
{
    // Apply a 3-qubit CCX via the general path and compare against
    // the dense embedding acting on a random state.
    Rng rng(3);
    StateVector s(4);
    Circuit prep = randomCircuit(4, 10, 77);
    s.applyCircuit(prep);
    std::vector<Complex> before = s.amplitudes();

    Matrix ccx = gateMatrix(Gate::ccx(0, 1, 2));
    s.applyMatrix(ccx, {3, 1, 0});

    Matrix full = embedUnitary(ccx, {3, 1, 0}, 4);
    std::vector<Complex> expected = matVec(full, before);
    for (size_t k = 0; k < 16; ++k)
        EXPECT_NEAR(std::abs(s.amp(k) - expected[k]), 0.0, 1e-10);
}

TEST(StateVector, ApplyPauliMatchesGates)
{
    for (int pauli = 1; pauli <= 3; ++pauli) {
        StateVector a(3), b(3);
        Circuit prep = randomCircuit(3, 8, 42);
        a.applyCircuit(prep);
        b.applyCircuit(prep);
        a.applyPauli(pauli, 1);
        Gate g = pauli == 1 ? Gate::x(1)
                            : pauli == 2 ? Gate::y(1) : Gate::z(1);
        b.applyGate(g);
        for (size_t k = 0; k < 8; ++k)
            EXPECT_NEAR(std::abs(a.amp(k) - b.amp(k)), 0.0, 1e-12);
    }
}

TEST(StateVector, CxFastPathMatchesMatrixPath)
{
    StateVector a(3), b(3);
    Circuit prep = randomCircuit(3, 10, 55);
    a.applyCircuit(prep);
    b.applyCircuit(prep);
    a.applyGate(Gate::cx(2, 0));
    b.applyMatrix2(gateMatrix(Gate::cx(2, 0)), 2, 0);
    for (size_t k = 0; k < 8; ++k)
        EXPECT_NEAR(std::abs(a.amp(k) - b.amp(k)), 0.0, 1e-12);
}

TEST(StateVector, SampleFollowsProbabilities)
{
    StateVector s(1);
    s.applyGate(Gate::h(0));
    Rng rng(9);
    int ones = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        ones += (s.sample(rng) == 1);
    EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.02);
}

TEST(UnitaryBuilder, MatchesNaiveOnRandomCircuits)
{
    for (uint64_t seed = 20; seed < 24; ++seed) {
        Circuit c = randomCircuit(4, 20, seed);
        EXPECT_TRUE(buildUnitary(c).approxEqual(circuitUnitary(c), 1e-9))
            << "seed " << seed;
    }
}

TEST(UnitaryBuilder, IgnoresMeasurements)
{
    Circuit c(2);
    c.append(Gate::h(0));
    c.append(Gate::measure(0));
    Matrix u = buildUnitary(c);
    Circuit bare(2);
    bare.append(Gate::h(0));
    EXPECT_TRUE(u.approxEqual(buildUnitary(bare), 1e-12));
}

TEST(UnitaryBuilder, ProducesUnitaries)
{
    Circuit c = randomCircuit(6, 40, 31);
    EXPECT_TRUE(buildUnitary(c).isUnitary(1e-8));
}

} // namespace
} // namespace quest
