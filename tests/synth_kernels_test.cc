/**
 * @file
 * Property tests for the instantiation hot path: every in-place
 * kernel (synth/kernels.hh) is checked against the naive dense
 * embedUnitary reference across all supported dimensions and wires,
 * the fused U3+derivative evaluation against the reference factories,
 * and the HsCost workspace gradient against finite differences and
 * the dense unitaryAndGradient path. A global operator-new probe
 * asserts the zero-allocation contract of evaluate() after warm-up.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <numbers>
#include <vector>

#include "linalg/decompose.hh"
#include "linalg/embed.hh"
#include "linalg/matrix.hh"
#include "synth/ansatz.hh"
#include "synth/batch/batch_kernels.hh"
#include "synth/batch/batched_hs_cost.hh"
#include "synth/hs_cost.hh"
#include "synth/kernels.hh"
#include "util/rng.hh"

// ---------------------------------------------------------------------
// Global allocation probe: counts every operator-new in this test
// binary. Assertions snapshot the counter around a measured region;
// the replacement itself never allocates.
namespace {
std::atomic<uint64_t> g_allocation_count{0};
}

void *
operator new(std::size_t n)
{
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
// ---------------------------------------------------------------------

namespace quest {
namespace {

constexpr double pi = std::numbers::pi;

Matrix
randomMatrix(size_t dim, Rng &rng)
{
    // Deliberately non-unitary entries: the kernels must be exact
    // linear-algebra primitives, not just unitary-preserving maps.
    Matrix m(dim, dim);
    for (Complex &v : m.data())
        v = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    return m;
}

Matrix
cxMatrix()
{
    // Control = most significant qubit, matching embedUnitary's
    // qubit-list convention.
    return Matrix{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}};
}

/** A few entangling layers on top of the initial U3 layer. */
Ansatz
testAnsatz(int n)
{
    Ansatz a = Ansatz::initialLayer(n);
    for (int q = 0; q + 1 < n; ++q)
        a.addLayer(q, q + 1);
    if (n >= 2)
        a.addLayer(n - 1, 0);
    return a;
}

TEST(Kernels, LeftU3MatchesEmbedReference)
{
    Rng rng(11);
    for (int n = 1; n <= 5; ++n) {
        const size_t dim = size_t{1} << n;
        const kern::KernelSet &k = kern::kernelsForDim(dim);
        for (int q = 0; q < n; ++q) {
            Matrix g2 = randomMatrix(2, rng);
            Matrix m = randomMatrix(dim, rng);
            Matrix expect = embedUnitary(g2, {q}, n) * m;
            const Complex g[4] = {g2(0, 0), g2(0, 1), g2(1, 0), g2(1, 1)};
            k.leftU3(dim, m.data().data(), g, size_t{1} << (n - 1 - q));
            EXPECT_LT(m.maxAbsDiff(expect), 1e-12)
                << "n=" << n << " q=" << q;
        }
    }
}

TEST(Kernels, RightU3MatchesEmbedReference)
{
    Rng rng(12);
    for (int n = 1; n <= 5; ++n) {
        const size_t dim = size_t{1} << n;
        const kern::KernelSet &k = kern::kernelsForDim(dim);
        for (int q = 0; q < n; ++q) {
            Matrix g2 = randomMatrix(2, rng);
            Matrix m = randomMatrix(dim, rng);
            Matrix expect = m * embedUnitary(g2, {q}, n);
            const Complex g[4] = {g2(0, 0), g2(0, 1), g2(1, 0), g2(1, 1)};
            k.rightU3(dim, m.data().data(), g, size_t{1} << (n - 1 - q));
            EXPECT_LT(m.maxAbsDiff(expect), 1e-12)
                << "n=" << n << " q=" << q;
        }
    }
}

TEST(Kernels, LeftCxMatchesEmbedReference)
{
    Rng rng(13);
    for (int n = 2; n <= 5; ++n) {
        const size_t dim = size_t{1} << n;
        const kern::KernelSet &k = kern::kernelsForDim(dim);
        for (int c = 0; c < n; ++c) {
            for (int t = 0; t < n; ++t) {
                if (c == t)
                    continue;
                Matrix m = randomMatrix(dim, rng);
                Matrix expect = embedUnitary(cxMatrix(), {c, t}, n) * m;
                k.leftCx(dim, m.data().data(),
                         size_t{1} << (n - 1 - c),
                         size_t{1} << (n - 1 - t));
                EXPECT_LT(m.maxAbsDiff(expect), 1e-12)
                    << "n=" << n << " c=" << c << " t=" << t;
            }
        }
    }
}

TEST(Kernels, RightCxMatchesEmbedReference)
{
    Rng rng(14);
    for (int n = 2; n <= 5; ++n) {
        const size_t dim = size_t{1} << n;
        const kern::KernelSet &k = kern::kernelsForDim(dim);
        for (int c = 0; c < n; ++c) {
            for (int t = 0; t < n; ++t) {
                if (c == t)
                    continue;
                Matrix m = randomMatrix(dim, rng);
                Matrix expect = m * embedUnitary(cxMatrix(), {c, t}, n);
                k.rightCx(dim, m.data().data(),
                          size_t{1} << (n - 1 - c),
                          size_t{1} << (n - 1 - t));
                EXPECT_LT(m.maxAbsDiff(expect), 1e-12)
                    << "n=" << n << " c=" << c << " t=" << t;
            }
        }
    }
}

TEST(Kernels, ReduceTraceTMatchesDenseTrace)
{
    Rng rng(15);
    for (int n = 1; n <= 5; ++n) {
        const size_t dim = size_t{1} << n;
        const kern::KernelSet &k = kern::kernelsForDim(dim);
        for (int q = 0; q < n; ++q) {
            Matrix p = randomMatrix(dim, rng);
            Matrix b = randomMatrix(dim, rng);
            Matrix bt = b.transpose();
            Complex w2[4];
            k.reduceTraceT(dim, p.data().data(), bt.data().data(),
                           size_t{1} << (n - 1 - q), w2);
            // Tr(P * B * embed(d)) = sum_{a,c} w2[a*2+c] * d(c, a)
            // for ANY 2x2 d, so the contraction must match the dense
            // trace for a random one.
            Matrix d = randomMatrix(2, rng);
            const Complex expect =
                (p * b * embedUnitary(d, {q}, n)).trace();
            const Complex got =
                kern::cmul(w2[0], d(0, 0)) + kern::cmul(w2[1], d(1, 0)) +
                kern::cmul(w2[2], d(0, 1)) + kern::cmul(w2[3], d(1, 1));
            EXPECT_LT(std::abs(got - expect), 1e-10)
                << "n=" << n << " q=" << q;
        }
    }
}

TEST(Kernels, U3EntriesAndDerivativesMatchReference)
{
    Rng rng(16);
    for (int trial = 0; trial < 25; ++trial) {
        const double th = rng.uniform(-2.0 * pi, 2.0 * pi);
        const double ph = rng.uniform(-2.0 * pi, 2.0 * pi);
        const double la = rng.uniform(-2.0 * pi, 2.0 * pi);

        Complex entries[4];
        makeU3Entries(th, ph, la, entries);
        Complex g[4];
        Complex dg[3][4];
        u3WithDerivatives(th, ph, la, g, dg);

        const Matrix ref = makeU3(th, ph, la);
        for (int i = 0; i < 4; ++i) {
            EXPECT_LT(std::abs(entries[i] - ref.data()[i]), 1e-14);
            EXPECT_LT(std::abs(g[i] - ref.data()[i]), 1e-14);
        }
        for (int which = 0; which < 3; ++which) {
            const Matrix dref = u3Derivative(th, ph, la, which);
            for (int i = 0; i < 4; ++i)
                EXPECT_LT(std::abs(dg[which][i] - dref.data()[i]), 1e-14)
                    << "which=" << which << " i=" << i;
        }
    }
}

TEST(HsCostWorkspace, GradientMatchesFiniteDifference)
{
    for (int n = 2; n <= 4; ++n) {
        Rng rng(100 + static_cast<uint64_t>(n));
        Ansatz a = testAnsatz(n);
        std::vector<double> truth(a.paramCount());
        for (double &v : truth)
            v = rng.uniform(-pi, pi);
        const Matrix target = a.unitary(truth);

        std::vector<double> x(a.paramCount());
        for (double &v : x)
            v = rng.uniform(-pi, pi);
        HsCost cost(target, a);
        std::vector<double> grad;
        cost.evaluate(x, &grad);
        ASSERT_EQ(grad.size(), x.size());

        const double h = 1e-6;
        for (size_t i = 0; i < x.size(); ++i) {
            std::vector<double> xp = x, xm = x;
            xp[i] += h;
            xm[i] -= h;
            const double fd = (cost.evaluate(xp, nullptr) -
                               cost.evaluate(xm, nullptr)) /
                              (2.0 * h);
            EXPECT_NEAR(grad[i], fd, 1e-5) << "n=" << n << " i=" << i;
        }
    }
}

TEST(HsCostWorkspace, MatchesDenseReferencePath)
{
    Rng rng(200);
    Ansatz a = testAnsatz(3);
    std::vector<double> truth(a.paramCount());
    for (double &v : truth)
        v = rng.uniform(-pi, pi);
    const Matrix target = a.unitary(truth);

    std::vector<double> x(a.paramCount());
    for (double &v : x)
        v = rng.uniform(-pi, pi);
    HsCost cost(target, a);
    std::vector<double> grad;
    const double f = cost.evaluate(x, &grad);

    // Dense reference: the slow unitaryAndGradient path plus the
    // textbook f = 1 - |Tr(T^dagger A)|^2 / N^2 and its chain rule.
    Matrix u;
    std::vector<Matrix> grads;
    a.unitaryAndGradient(x, u, grads);
    const double n2 = static_cast<double>(target.rows()) *
                      static_cast<double>(target.rows());
    const Complex tr = (target.adjoint() * u).trace();
    EXPECT_NEAR(f, 1.0 - std::norm(tr) / n2, 1e-12);
    ASSERT_EQ(grads.size(), grad.size());
    for (size_t i = 0; i < grad.size(); ++i) {
        const Complex dtr = (target.adjoint() * grads[i]).trace();
        const double ref = -2.0 * (std::conj(tr) * dtr).real() / n2;
        EXPECT_NEAR(grad[i], ref, 1e-10) << "param " << i;
    }
}

TEST(HsCostWorkspace, EvaluateIsAllocationFreeAfterWarmup)
{
    Rng rng(300);
    Ansatz a = testAnsatz(3);
    std::vector<double> truth(a.paramCount());
    for (double &v : truth)
        v = rng.uniform(-pi, pi);
    const Matrix target = a.unitary(truth);

    HsCost cost(target, a);
    std::vector<double> x(a.paramCount());
    for (double &v : x)
        v = rng.uniform(-pi, pi);
    std::vector<double> grad;
    // Warm-up: sizes the gradient vector and touches every lazily
    // initialized static (metric counters) once.
    cost.evaluate(x, &grad);
    cost.evaluate(x, nullptr);

    const uint64_t ws_allocs = cost.workspace().allocations;
    const uint64_t ws_reuses = cost.workspace().reuses;
    double sink = 0.0;
    const uint64_t before =
        g_allocation_count.load(std::memory_order_relaxed);
    for (int i = 0; i < 50; ++i) {
        x[static_cast<size_t>(i) % x.size()] = std::sin(0.7 * i);
        sink += cost.evaluate(x, &grad);
        sink += cost.evaluate(x, nullptr);
    }
    const uint64_t after =
        g_allocation_count.load(std::memory_order_relaxed);

    EXPECT_EQ(after - before, 0u)
        << "evaluate() allocated in steady state (sink=" << sink << ")";
    EXPECT_EQ(cost.workspace().allocations, ws_allocs)
        << "workspace grew after construction";
    EXPECT_EQ(cost.workspace().reuses, ws_reuses + 100);
}

// ---------------------------------------------------------------------
// Batched (SoA, lane-parallel) engine: every kernel and the full
// batched cost must be BIT-identical per lane to the scalar engine,
// on every ISA the build and the host provide. All comparisons below
// are EXPECT_EQ on doubles — exact, not approximate.

namespace batchref {

constexpr size_t kL = kern::batch::kLanes;

/** The ISAs whose tables exist on this build+host. */
std::vector<kern::batch::SimdIsa>
availableIsas()
{
    std::vector<kern::batch::SimdIsa> isas;
    for (auto isa :
         {kern::batch::SimdIsa::Scalar, kern::batch::SimdIsa::Avx2,
          kern::batch::SimdIsa::Avx512}) {
        if (kern::batch::batchKernelsForIsa(isa, 2))
            isas.push_back(isa);
    }
    return isas;
}

/** Scatter kL dense matrices into split-plane SoA storage. */
void
pack(const std::vector<Matrix> &ms, std::vector<double> &re,
     std::vector<double> &im)
{
    const size_t dd = ms[0].rows() * ms[0].cols();
    re.assign(dd * kL, 0.0);
    im.assign(dd * kL, 0.0);
    for (size_t l = 0; l < kL; ++l) {
        const Complex *src = ms[l].data().data();
        for (size_t e = 0; e < dd; ++e) {
            re[e * kL + l] = src[e].real();
            im[e * kL + l] = src[e].imag();
        }
    }
}

/** Gather lane l back out of SoA storage. */
Matrix
unpack(const std::vector<double> &re, const std::vector<double> &im,
       size_t dim, size_t l)
{
    Matrix m(dim, dim);
    Complex *dst = m.data().data();
    for (size_t e = 0; e < dim * dim; ++e)
        dst[e] = Complex(re[e * kL + l], im[e * kL + l]);
    return m;
}

void
packGates(const std::vector<std::array<Complex, 4>> &gs,
          std::vector<double> &re, std::vector<double> &im)
{
    re.assign(4 * kL, 0.0);
    im.assign(4 * kL, 0.0);
    for (size_t l = 0; l < kL; ++l) {
        for (size_t e = 0; e < 4; ++e) {
            re[e * kL + l] = gs[l][e].real();
            im[e * kL + l] = gs[l][e].imag();
        }
    }
}

} // namespace batchref

TEST(BatchKernels, LeftU3MatchesScalarBitExact)
{
    using namespace batchref;
    Rng rng(401);
    for (auto isa : availableIsas()) {
        for (size_t dim : {size_t{2}, size_t{4}, size_t{8}, size_t{16},
                           size_t{32}}) {
            const auto *bk = kern::batch::batchKernelsForIsa(isa, dim);
            ASSERT_NE(bk, nullptr);
            const kern::KernelSet &sk = kern::kernelsForDim(dim);
            for (size_t bit = 1; bit < dim; bit <<= 1) {
                std::vector<Matrix> ms;
                std::vector<std::array<Complex, 4>> gs;
                for (size_t l = 0; l < kL; ++l) {
                    ms.push_back(randomMatrix(dim, rng));
                    std::array<Complex, 4> g;
                    for (Complex &v : g)
                        v = Complex(rng.uniform(-1.0, 1.0),
                                    rng.uniform(-1.0, 1.0));
                    gs.push_back(g);
                }
                std::vector<double> mRe, mIm, gRe, gIm;
                pack(ms, mRe, mIm);
                packGates(gs, gRe, gIm);
                // The fused out-of-place variant must write exactly
                // what the in-place kernel computes.
                std::vector<double> oRe(mRe.size()), oIm(mIm.size());
                bk->leftU3Out(dim, oRe.data(), oIm.data(), mRe.data(),
                              mIm.data(), gRe.data(), gIm.data(), bit);
                bk->leftU3(dim, mRe.data(), mIm.data(), gRe.data(),
                           gIm.data(), bit);
                EXPECT_EQ(oRe, mRe);
                EXPECT_EQ(oIm, mIm);
                for (size_t l = 0; l < kL; ++l) {
                    Matrix ref = ms[l];
                    sk.leftU3(dim, ref.data().data(), gs[l].data(), bit);
                    const Matrix got = unpack(mRe, mIm, dim, l);
                    for (size_t e = 0; e < dim * dim; ++e) {
                        EXPECT_EQ(got.data()[e].real(),
                                  ref.data()[e].real())
                            << "isa=" << kern::batch::simdIsaName(isa)
                            << " dim=" << dim << " lane=" << l;
                        EXPECT_EQ(got.data()[e].imag(),
                                  ref.data()[e].imag());
                    }
                }
            }
        }
    }
}

TEST(BatchKernels, LeftCxMatchesScalarBitExact)
{
    using namespace batchref;
    Rng rng(402);
    for (auto isa : availableIsas()) {
        for (size_t dim : {size_t{4}, size_t{8}, size_t{16}, size_t{32}}) {
            const auto *bk = kern::batch::batchKernelsForIsa(isa, dim);
            ASSERT_NE(bk, nullptr);
            const kern::KernelSet &sk = kern::kernelsForDim(dim);
            for (size_t bc = 1; bc < dim; bc <<= 1) {
                for (size_t bt = 1; bt < dim; bt <<= 1) {
                    if (bc == bt)
                        continue;
                    std::vector<Matrix> ms;
                    for (size_t l = 0; l < kL; ++l)
                        ms.push_back(randomMatrix(dim, rng));
                    std::vector<double> mRe, mIm;
                    pack(ms, mRe, mIm);
                    std::vector<double> oRe(mRe.size()), oIm(mIm.size());
                    bk->leftCxOut(dim, oRe.data(), oIm.data(), mRe.data(),
                                  mIm.data(), bc, bt);
                    bk->leftCx(dim, mRe.data(), mIm.data(), bc, bt);
                    EXPECT_EQ(oRe, mRe);
                    EXPECT_EQ(oIm, mIm);
                    for (size_t l = 0; l < kL; ++l) {
                        Matrix ref = ms[l];
                        sk.leftCx(dim, ref.data().data(), bc, bt);
                        const Matrix got = unpack(mRe, mIm, dim, l);
                        for (size_t e = 0; e < dim * dim; ++e) {
                            EXPECT_EQ(got.data()[e], ref.data()[e])
                                << "isa="
                                << kern::batch::simdIsaName(isa)
                                << " dim=" << dim << " lane=" << l;
                        }
                    }
                }
            }
        }
    }
}

TEST(BatchKernels, ReduceTraceTMatchesScalarBitExact)
{
    using namespace batchref;
    Rng rng(403);
    for (auto isa : availableIsas()) {
        for (size_t dim : {size_t{2}, size_t{4}, size_t{8}, size_t{16},
                           size_t{32}}) {
            const auto *bk = kern::batch::batchKernelsForIsa(isa, dim);
            ASSERT_NE(bk, nullptr);
            const kern::KernelSet &sk = kern::kernelsForDim(dim);
            for (size_t bit = 1; bit < dim; bit <<= 1) {
                std::vector<Matrix> ps, bs;
                for (size_t l = 0; l < kL; ++l) {
                    ps.push_back(randomMatrix(dim, rng));
                    bs.push_back(randomMatrix(dim, rng));
                }
                std::vector<double> pRe, pIm, bRe, bIm;
                pack(ps, pRe, pIm);
                pack(bs, bRe, bIm);
                std::vector<double> w2Re(4 * kL), w2Im(4 * kL);
                bk->reduceTraceT(dim, pRe.data(), pIm.data(), bRe.data(),
                                 bIm.data(), bit, w2Re.data(), w2Im.data());
                for (size_t l = 0; l < kL; ++l) {
                    Complex ref[4];
                    sk.reduceTraceT(dim, ps[l].data().data(),
                                    bs[l].data().data(), bit, ref);
                    for (size_t e = 0; e < 4; ++e) {
                        EXPECT_EQ(w2Re[e * kL + l], ref[e].real())
                            << "isa=" << kern::batch::simdIsaName(isa)
                            << " dim=" << dim << " lane=" << l;
                        EXPECT_EQ(w2Im[e * kL + l], ref[e].imag());
                    }
                }
            }
        }
    }
}

TEST(BatchKernels, TraceTargetMatchesScalarBitExact)
{
    using namespace batchref;
    Rng rng(404);
    for (auto isa : availableIsas()) {
        for (size_t dim : {size_t{2}, size_t{4}, size_t{8}, size_t{16},
                           size_t{32}}) {
            const auto *bk = kern::batch::batchKernelsForIsa(isa, dim);
            ASSERT_NE(bk, nullptr);
            const size_t dd = dim * dim;
            const Matrix tgt = randomMatrix(dim, rng);
            std::vector<double> tcRe(dd), tcIm(dd);
            std::vector<Complex> tc(dd);
            for (size_t e = 0; e < dd; ++e) {
                tc[e] = std::conj(tgt.data()[e]);
                tcRe[e] = tc[e].real();
                tcIm[e] = tc[e].imag();
            }
            std::vector<Matrix> us;
            for (size_t l = 0; l < kL; ++l)
                us.push_back(randomMatrix(dim, rng));
            std::vector<double> uRe, uIm;
            pack(us, uRe, uIm);
            std::vector<double> trRe(kL), trIm(kL);
            bk->traceTarget(dim, tcRe.data(), tcIm.data(), uRe.data(),
                            uIm.data(), trRe.data(), trIm.data());
            for (size_t l = 0; l < kL; ++l) {
                // The scalar engine's accumulation, verbatim.
                Complex ref(0.0, 0.0);
                const Complex *u = us[l].data().data();
                for (size_t e = 0; e < dd; ++e)
                    ref += kern::cmul(tc[e], u[e]);
                EXPECT_EQ(trRe[l], ref.real())
                    << "isa=" << kern::batch::simdIsaName(isa)
                    << " dim=" << dim << " lane=" << l;
                EXPECT_EQ(trIm[l], ref.imag());
            }
        }
    }
}

TEST(BatchedHsCostSuite, EvaluateMatchesScalarBitExactAllLaneCounts)
{
    using namespace batchref;
    for (auto isa : availableIsas()) {
        for (int n = 1; n <= 4; ++n) {
            Rng rng(500 + static_cast<uint64_t>(n));
            Ansatz a = testAnsatz(n);
            std::vector<double> truth(a.paramCount());
            for (double &v : truth)
                v = rng.uniform(-pi, pi);
            const Matrix target = a.unitary(truth);

            // Live-lane counts 1..kL cover full and partial batches.
            for (size_t live = 1; live <= kL; ++live) {
                std::array<std::vector<double>, kL> xsStore;
                std::array<const std::vector<double> *, kL> xs{};
                std::array<std::vector<double>, kL> gradStore;
                std::array<std::vector<double> *, kL> grads{};
                for (size_t l = 0; l < live; ++l) {
                    xsStore[l].resize(
                        static_cast<size_t>(a.paramCount()));
                    for (double &v : xsStore[l])
                        v = rng.uniform(-pi, pi);
                    xs[l] = &xsStore[l];
                    grads[l] = &gradStore[l];
                }
                synth::BatchedHsCost cost(target, a);
                const auto *bk = kern::batch::batchKernelsForIsa(
                    isa, target.rows());
                ASSERT_NE(bk, nullptr);
                cost.useKernels(*bk);
                std::array<double, kL> f{};
                cost.evaluateBatch(xs, f, grads);

                HsCost ref(target, a);
                for (size_t l = 0; l < live; ++l) {
                    std::vector<double> refGrad;
                    const double refF = ref.evaluate(xsStore[l], &refGrad);
                    EXPECT_EQ(f[l], refF)
                        << "isa=" << kern::batch::simdIsaName(isa)
                        << " n=" << n << " live=" << live
                        << " lane=" << l;
                    ASSERT_EQ(gradStore[l].size(), refGrad.size());
                    for (size_t i = 0; i < refGrad.size(); ++i) {
                        EXPECT_EQ(gradStore[l][i], refGrad[i])
                            << "isa=" << kern::batch::simdIsaName(isa)
                            << " n=" << n << " live=" << live
                            << " lane=" << l << " param=" << i;
                    }
                }
            }
        }
    }
}

TEST(BatchedHsCostSuite, GradientMatchesFiniteDifference)
{
    using namespace batchref;
    for (int n = 2; n <= 3; ++n) {
        Rng rng(600 + static_cast<uint64_t>(n));
        Ansatz a = testAnsatz(n);
        std::vector<double> truth(a.paramCount());
        for (double &v : truth)
            v = rng.uniform(-pi, pi);
        const Matrix target = a.unitary(truth);

        std::vector<double> x(a.paramCount());
        for (double &v : x)
            v = rng.uniform(-pi, pi);

        synth::BatchedHsCost cost(target, a);
        std::array<const std::vector<double> *, kL> xs{};
        std::array<std::vector<double>, kL> gradStore;
        std::array<std::vector<double> *, kL> grads{};
        std::array<double, kL> f{};
        xs[0] = &x;
        grads[0] = &gradStore[0];
        cost.evaluateBatch(xs, f, grads);
        const std::vector<double> grad = gradStore[0];

        // Central differences batched two-at-a-time: lane 0 = x+h,
        // lane 1 = x-h.
        const double h = 1e-6;
        for (size_t i = 0; i < x.size(); ++i) {
            std::vector<double> xp = x, xm = x;
            xp[i] += h;
            xm[i] -= h;
            std::array<const std::vector<double> *, kL> fdxs{};
            std::array<std::vector<double> *, kL> fdgrads{};
            fdxs[0] = &xp;
            fdxs[1] = &xm;
            fdgrads[0] = &gradStore[0];
            fdgrads[1] = &gradStore[1];
            std::array<double, kL> fdf{};
            cost.evaluateBatch(fdxs, fdf, fdgrads);
            const double fd = (fdf[0] - fdf[1]) / (2.0 * h);
            EXPECT_NEAR(grad[i], fd, 1e-5) << "n=" << n << " i=" << i;
        }
    }
}

TEST(BatchedHsCostSuite, EvaluateBatchIsAllocationFreeAfterWarmup)
{
    using namespace batchref;
    Rng rng(700);
    Ansatz a = testAnsatz(3);
    std::vector<double> truth(a.paramCount());
    for (double &v : truth)
        v = rng.uniform(-pi, pi);
    const Matrix target = a.unitary(truth);

    synth::BatchedHsCost cost(target, a);
    std::array<std::vector<double>, kL> xsStore;
    std::array<const std::vector<double> *, kL> xs{};
    std::array<std::vector<double>, kL> gradStore;
    std::array<std::vector<double> *, kL> grads{};
    for (size_t l = 0; l < kL; ++l) {
        xsStore[l].resize(static_cast<size_t>(a.paramCount()));
        for (double &v : xsStore[l])
            v = rng.uniform(-pi, pi);
        xs[l] = &xsStore[l];
        grads[l] = &gradStore[l];
    }
    std::array<double, kL> f{};
    // Warm-up sizes the gradient vectors and touches the counter
    // statics once.
    cost.evaluateBatch(xs, f, grads);

    const uint64_t ws_allocs = cost.workspace().allocations;
    double sink = 0.0;
    const uint64_t before =
        g_allocation_count.load(std::memory_order_relaxed);
    for (int i = 0; i < 50; ++i) {
        xsStore[static_cast<size_t>(i) % kL][0] = std::sin(0.7 * i);
        cost.evaluateBatch(xs, f, grads);
        sink += f[0];
    }
    const uint64_t after =
        g_allocation_count.load(std::memory_order_relaxed);

    EXPECT_EQ(after - before, 0u)
        << "evaluateBatch() allocated in steady state (sink=" << sink
        << ")";
    EXPECT_EQ(cost.workspace().allocations, ws_allocs)
        << "SoA workspace grew after construction";
    EXPECT_EQ(cost.workspace().allocations, 1u);
}

TEST(HsCostWorkspace, ConstructorWarmsTheArena)
{
    Rng rng(301);
    Ansatz a = testAnsatz(2);
    std::vector<double> truth(a.paramCount());
    for (double &v : truth)
        v = rng.uniform(-pi, pi);
    const Matrix target = a.unitary(truth);

    HsCost cost(target, a);
    // The constructor's single ensure() is the only growth; every
    // evaluate() afterwards is a pure reuse.
    EXPECT_EQ(cost.workspace().allocations, 1u);
    EXPECT_EQ(cost.workspace().reuses, 0u);
    std::vector<double> x(a.paramCount(), 0.25);
    cost.evaluate(x, nullptr);
    EXPECT_EQ(cost.workspace().allocations, 1u);
    EXPECT_EQ(cost.workspace().reuses, 1u);
}

} // namespace
} // namespace quest
