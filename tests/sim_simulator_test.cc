/**
 * @file
 * Ideal and noisy simulator tests.
 */

#include <gtest/gtest.h>

#include "algos/algorithms.hh"
#include "ir/lower.hh"
#include "metrics/output_distance.hh"
#include "sim/simulator.hh"

namespace quest {
namespace {

TEST(IdealDistribution, BellProbabilities)
{
    Circuit c(2);
    c.append(Gate::h(0));
    c.append(Gate::cx(0, 1));
    Distribution d = idealDistribution(c);
    EXPECT_NEAR(d[0], 0.5, 1e-12);
    EXPECT_NEAR(d[3], 0.5, 1e-12);
}

TEST(IdealDistribution, NormalizedForSuite)
{
    Distribution d = idealDistribution(lowerToNative(algos::qft(4)));
    EXPECT_NEAR(d.total(), 1.0, 1e-9);
}

TEST(NoiseModel, Presets)
{
    EXPECT_TRUE(NoiseModel::ideal().isIdeal());
    NoiseModel p = NoiseModel::pauli(0.01);
    EXPECT_NEAR(p.p2, 0.01, 1e-15);
    EXPECT_NEAR(p.p1, 0.001, 1e-15);
    EXPECT_NEAR(p.pReadout, 0.01, 1e-15);
    EXPECT_FALSE(p.isIdeal());
    NoiseModel m = NoiseModel::ibmqManila();
    EXPECT_GT(m.p2, m.p1);
}

TEST(NoisySimulator, ZeroNoiseMatchesIdeal)
{
    Circuit c = lowerToNative(algos::tfim(3, 2));
    NoisySimulator sim(NoiseModel::ideal(), 11);
    Distribution noisy = sim.run(c, 20000);
    Distribution ideal = idealDistribution(c);
    EXPECT_LT(tvd(noisy, ideal), 0.03);  // only shot noise remains
}

TEST(NoisySimulator, NoiseIncreasesOutputDistance)
{
    Circuit c = lowerToNative(algos::tfim(3, 3));
    Distribution ideal = idealDistribution(c);

    NoisySimulator low(NoiseModel::pauli(0.001), 13);
    NoisySimulator high(NoiseModel::pauli(0.05), 13);
    double tvd_low = tvd(low.run(c, 4000), ideal);
    double tvd_high = tvd(high.run(c, 4000), ideal);
    EXPECT_LT(tvd_low, tvd_high);
}

TEST(NoisySimulator, MoreGatesMoreError)
{
    Circuit shallow = lowerToNative(algos::tfim(3, 1));
    Circuit deep = lowerToNative(algos::tfim(3, 8));
    NoisySimulator sim1(NoiseModel::pauli(0.01), 17);
    NoisySimulator sim2(NoiseModel::pauli(0.01), 17);
    double e_shallow = tvd(sim1.run(shallow, 4000),
                           idealDistribution(shallow));
    double e_deep = tvd(sim2.run(deep, 4000), idealDistribution(deep));
    EXPECT_LT(e_shallow, e_deep);
}

TEST(NoisySimulator, ReadoutErrorOnly)
{
    // Identity circuit + readout error: P(0...0) = (1-p)^n.
    Circuit c(3);
    c.append(Gate::u3(0, 0.0, 0.0, 0.0));
    NoiseModel m;
    m.pReadout = 0.1;
    NoisySimulator sim(m, 19);
    Distribution d = sim.run(c, 30000);
    EXPECT_NEAR(d[0], 0.9 * 0.9 * 0.9, 0.02);
}

TEST(NoisySimulator, DistributionSumsToOne)
{
    Circuit c = lowerToNative(algos::qft(3));
    NoisySimulator sim(NoiseModel::pauli(0.01), 23);
    Distribution d = sim.run(c, 2000);
    EXPECT_NEAR(d.total(), 1.0, 1e-9);
}

TEST(NoisySimulator, DeterministicForSeed)
{
    Circuit c = lowerToNative(algos::tfim(3, 2));
    NoisySimulator a(NoiseModel::pauli(0.02), 29);
    NoisySimulator b(NoiseModel::pauli(0.02), 29);
    Distribution da = a.run(c, 1000);
    Distribution db = b.run(c, 1000);
    for (size_t k = 0; k < da.size(); ++k)
        EXPECT_EQ(da[k], db[k]);
}

} // namespace
} // namespace quest
