/**
 * @file
 * Scan partitioner tests: the reassembled blocks must reproduce the
 * original circuit exactly, blocks must respect the width limit, and
 * every gate must land in exactly one block.
 */

#include <gtest/gtest.h>

#include "algos/algorithms.hh"
#include "ir/lower.hh"
#include "linalg/distance.hh"
#include "partition/scan_partitioner.hh"
#include "sim/unitary_builder.hh"

namespace quest {
namespace {

TEST(ScanPartitioner, SingleBlockForSmallCircuit)
{
    Circuit c = lowerToNative(algos::tfim(3, 2));
    ScanPartitioner partitioner(4);
    auto blocks = partitioner.partition(c);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].width(), 3);
    EXPECT_EQ(blocks[0].circuit.size(), c.size());
}

TEST(ScanPartitioner, RespectsWidthLimit)
{
    for (const auto &spec : algos::standardSuite()) {
        Circuit c = lowerToNative(spec.build()).withoutPseudoOps();
        ScanPartitioner partitioner(4);
        for (const Block &b : partitioner.partition(c)) {
            EXPECT_LE(b.width(), 4) << spec.name;
            EXPECT_GE(b.width(), 1) << spec.name;
        }
    }
}

TEST(ScanPartitioner, AllGatesAssignedExactlyOnce)
{
    Circuit c = lowerToNative(algos::heisenberg(6, 2));
    ScanPartitioner partitioner(3);
    auto blocks = partitioner.partition(c);
    size_t total = 0;
    for (const Block &b : blocks)
        total += b.circuit.size();
    EXPECT_EQ(total, c.size());
}

TEST(ScanPartitioner, BlockWiresAreSortedAndValid)
{
    Circuit c = lowerToNative(algos::qft(6));
    ScanPartitioner partitioner(3);
    for (const Block &b : partitioner.partition(c)) {
        for (size_t i = 1; i < b.qubits.size(); ++i)
            EXPECT_LT(b.qubits[i - 1], b.qubits[i]);
        for (int q : b.qubits) {
            EXPECT_GE(q, 0);
            EXPECT_LT(q, 6);
        }
        // Block circuits use local wire indexing.
        for (const Gate &g : b.circuit)
            for (int q : g.qubits)
                EXPECT_LT(q, b.width());
    }
}

class PartitionRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(PartitionRoundTrip, ReassemblyPreservesUnitary)
{
    auto [name, max_width] = GetParam();
    auto suite = algos::standardSuite();
    const auto &spec = algos::findSpec(suite, name);
    if (spec.nQubits > 8)
        GTEST_SKIP() << "too wide for dense unitary validation";

    Circuit c = lowerToNative(spec.build()).withoutPseudoOps();
    ScanPartitioner partitioner(max_width);
    auto blocks = partitioner.partition(c);
    Circuit reassembled = assembleBlocks(blocks, c.numQubits());

    EXPECT_EQ(reassembled.size(), c.size());
    EXPECT_NEAR(hsDistance(buildUnitary(c), buildUnitary(reassembled)),
                0.0, 1e-7)
        << name << " width " << max_width;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, PartitionRoundTrip,
    ::testing::Combine(::testing::Values("adder_4", "qft_5", "tfim_8",
                                         "heisenberg_8", "qaoa_5",
                                         "mult_8", "vqe_5"),
                       ::testing::Values(2, 3, 4)));

TEST(ScanPartitioner, LargerBlocksGiveFewerBlocks)
{
    Circuit c = lowerToNative(algos::tfim(8, 4));
    ScanPartitioner small(2), large(4);
    EXPECT_GE(small.partition(c).size(), large.partition(c).size());
}

TEST(ScanPartitioner, RejectsMeasurements)
{
    Circuit c(2);
    c.append(Gate::h(0));
    c.append(Gate::measure(0));
    ScanPartitioner partitioner(2);
    EXPECT_DEATH(partitioner.partition(c), "measurement");
}

TEST(ScanPartitioner, BarriersAreDropped)
{
    Circuit c(2);
    c.append(Gate::h(0));
    c.append(Gate::barrier({0, 1}));
    c.append(Gate::cx(0, 1));
    ScanPartitioner partitioner(2);
    auto blocks = partitioner.partition(c);
    size_t total = 0;
    for (const Block &b : blocks)
        total += b.circuit.size();
    EXPECT_EQ(total, 2u);
}

TEST(AssembleBlocks, EmptyBlockListGivesEmptyCircuit)
{
    Circuit c = assembleBlocks({}, 3);
    EXPECT_EQ(c.size(), 0u);
    EXPECT_EQ(c.numQubits(), 3);
}

TEST(ScanPartitioner, InterleavedGatesKeepDependencies)
{
    // Regression pattern: a deferred gate must block later gates on
    // its wires from joining the current block.
    Circuit c(4);
    c.append(Gate::cx(0, 1));
    c.append(Gate::cx(1, 2));  // depends on the first
    c.append(Gate::cx(2, 3));  // depends on the second
    c.append(Gate::cx(0, 1));
    ScanPartitioner partitioner(2);
    auto blocks = partitioner.partition(c);
    Circuit reassembled = assembleBlocks(blocks, 4);
    EXPECT_NEAR(hsDistance(buildUnitary(c), buildUnitary(reassembled)),
                0.0, 1e-7);
}

} // namespace
} // namespace quest
