/**
 * @file
 * Unit tests for gate metadata, matrices and inverses.
 */

#include <gtest/gtest.h>

#include <numbers>

#include "ir/gate.hh"
#include "linalg/distance.hh"

namespace quest {
namespace {

constexpr double pi = std::numbers::pi;

const std::vector<GateType> allUnitaryGates = {
    GateType::U1, GateType::U2, GateType::U3, GateType::RX,
    GateType::RY, GateType::RZ, GateType::X, GateType::Y,
    GateType::Z, GateType::H, GateType::S, GateType::Sdg,
    GateType::T, GateType::Tdg, GateType::SX, GateType::CX,
    GateType::CZ, GateType::SWAP, GateType::RZZ, GateType::RXX,
    GateType::RYY, GateType::CRZ, GateType::CP, GateType::CCX,
};

Gate
makeGate(GateType type)
{
    std::vector<int> wires;
    for (int q = 0; q < gateArity(type); ++q)
        wires.push_back(q);
    std::vector<double> params;
    for (int p = 0; p < gateParamCount(type); ++p)
        params.push_back(0.3 + 0.4 * p);
    return {type, wires, params};
}

class EveryGate : public ::testing::TestWithParam<GateType>
{
};

TEST_P(EveryGate, MatrixIsUnitary)
{
    Gate g = makeGate(GetParam());
    Matrix m = gateMatrix(g);
    EXPECT_EQ(m.rows(), size_t{1} << g.arity());
    EXPECT_TRUE(m.isUnitary(1e-10)) << gateName(GetParam());
}

TEST_P(EveryGate, InverseCancelsUpToPhase)
{
    Gate g = makeGate(GetParam());
    Matrix m = gateMatrix(g);
    Matrix mi = gateMatrix(g.inverse());
    // Compare as unitaries (global-phase invariant; exact for all
    // but SX).
    EXPECT_NEAR(hsDistance(m * mi, Matrix::identity(m.rows())), 0.0,
                1e-7)
        << gateName(GetParam());
}

TEST_P(EveryGate, NameRoundTripIsLowerCase)
{
    std::string name = gateName(GetParam());
    EXPECT_FALSE(name.empty());
    for (char c : name)
        EXPECT_TRUE(std::islower(c) || std::isdigit(c));
}

INSTANTIATE_TEST_SUITE_P(AllGates, EveryGate,
                         ::testing::ValuesIn(allUnitaryGates),
                         [](const auto &info) {
                             return std::string(gateName(info.param));
                         });

TEST(Gate, CxMatrixMapsBasis)
{
    Matrix cx = gateMatrix(Gate::cx(0, 1));
    // |10> -> |11>: column 2 has a one in row 3.
    EXPECT_EQ(cx(3, 2), Complex(1.0, 0.0));
    EXPECT_EQ(cx(2, 3), Complex(1.0, 0.0));
    EXPECT_EQ(cx(0, 0), Complex(1.0, 0.0));
    EXPECT_EQ(cx(1, 1), Complex(1.0, 0.0));
}

TEST(Gate, CcxMatrixMapsBasis)
{
    Matrix ccx = gateMatrix(Gate::ccx(0, 1, 2));
    // |110> -> |111>.
    EXPECT_EQ(ccx(7, 6), Complex(1.0, 0.0));
    EXPECT_EQ(ccx(6, 7), Complex(1.0, 0.0));
    for (int k = 0; k < 6; ++k)
        EXPECT_EQ(ccx(k, k), Complex(1.0, 0.0));
}

TEST(Gate, SwapMatrix)
{
    Matrix sw = gateMatrix(Gate::swap(0, 1));
    EXPECT_EQ(sw(1, 2), Complex(1.0, 0.0));
    EXPECT_EQ(sw(2, 1), Complex(1.0, 0.0));
}

TEST(Gate, RzzIsDiagonal)
{
    Matrix m = gateMatrix(Gate::rzz(0, 1, 0.7));
    for (size_t r = 0; r < 4; ++r)
        for (size_t c = 0; c < 4; ++c)
            if (r != c) {
                EXPECT_EQ(m(r, c), Complex(0.0, 0.0));
            }
    EXPECT_NEAR(std::arg(m(0, 0)), -0.35, 1e-12);
    EXPECT_NEAR(std::arg(m(1, 1)), 0.35, 1e-12);
}

TEST(Gate, RxxEqualsHadamardConjugatedRzz)
{
    double theta = 0.9;
    Matrix h = gateMatrix(Gate::h(0));
    Matrix hh = kron(h, h);
    Matrix rzz = gateMatrix(Gate::rzz(0, 1, theta));
    Matrix rxx = gateMatrix(Gate::rxx(0, 1, theta));
    EXPECT_TRUE(rxx.approxEqual(hh * rzz * hh, 1e-10));
}

TEST(Gate, U3SpecialCases)
{
    // U3(pi, 0, pi) = X.
    EXPECT_NEAR(hsDistance(gateMatrix(Gate::u3(0, pi, 0, pi)),
                           gateMatrix(Gate::x(0))),
                0.0, 1e-7);
    // U3(0, 0, pi) = Z.
    EXPECT_NEAR(hsDistance(gateMatrix(Gate::u3(0, 0, 0, pi)),
                           gateMatrix(Gate::z(0))),
                0.0, 1e-7);
}

TEST(Gate, SAndSdgCompose)
{
    Matrix s = gateMatrix(Gate::s(0));
    Matrix sdg = gateMatrix(Gate::sdg(0));
    EXPECT_TRUE((s * sdg).approxEqual(Matrix::identity(2), 1e-12));
    // S^2 = Z.
    EXPECT_TRUE((s * s).approxEqual(gateMatrix(Gate::z(0)), 1e-12));
}

TEST(Gate, TSquaredIsS)
{
    Matrix t = gateMatrix(Gate::t(0));
    EXPECT_TRUE((t * t).approxEqual(gateMatrix(Gate::s(0)), 1e-12));
}

TEST(Gate, SxSquaredIsX)
{
    Matrix sx = gateMatrix(Gate::sx(0));
    EXPECT_TRUE((sx * sx).approxEqual(gateMatrix(Gate::x(0)), 1e-12));
}

TEST(Gate, ActsOn)
{
    Gate g = Gate::cx(2, 5);
    EXPECT_TRUE(g.actsOn(2));
    EXPECT_TRUE(g.actsOn(5));
    EXPECT_FALSE(g.actsOn(3));
}

TEST(Gate, ArityAndParamCounts)
{
    EXPECT_EQ(gateArity(GateType::U3), 1);
    EXPECT_EQ(gateArity(GateType::CX), 2);
    EXPECT_EQ(gateArity(GateType::CCX), 3);
    EXPECT_EQ(gateParamCount(GateType::U3), 3);
    EXPECT_EQ(gateParamCount(GateType::U2), 2);
    EXPECT_EQ(gateParamCount(GateType::RZ), 1);
    EXPECT_EQ(gateParamCount(GateType::H), 0);
}

TEST(Gate, CnotEquivalents)
{
    EXPECT_EQ(cnotEquivalents(GateType::CX), 1);
    EXPECT_EQ(cnotEquivalents(GateType::SWAP), 3);
    EXPECT_EQ(cnotEquivalents(GateType::CCX), 6);
    EXPECT_EQ(cnotEquivalents(GateType::RZZ), 2);
    EXPECT_EQ(cnotEquivalents(GateType::H), 0);
}

TEST(Gate, DuplicateWirePanics)
{
    EXPECT_DEATH(Gate::cx(1, 1), "duplicate");
}

TEST(Gate, MeasureHasNoInverse)
{
    EXPECT_DEATH(Gate::measure(0).inverse(), "inverse");
}

TEST(Gate, MeasureHasNoMatrix)
{
    EXPECT_DEATH(gateMatrix(Gate::measure(0)), "unitary");
}

TEST(Gate, ToStringFormat)
{
    EXPECT_EQ(Gate::cx(0, 1).toString(), "cx q[0],q[1];");
    std::string rz = Gate::rz(2, 0.5).toString();
    EXPECT_NE(rz.find("rz(0.5)"), std::string::npos);
}

TEST(Gate, IsEntangling)
{
    EXPECT_TRUE(isEntangling(GateType::CX));
    EXPECT_TRUE(isEntangling(GateType::RZZ));
    EXPECT_FALSE(isEntangling(GateType::U3));
    EXPECT_FALSE(isEntangling(GateType::Barrier));
}

} // namespace
} // namespace quest
