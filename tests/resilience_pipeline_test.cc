/**
 * @file
 * End-to-end resilience tests: graceful degradation under injected
 * faults, run deadlines and cancellation, checkpoint/resume, and the
 * degradation invariants the pipeline promises (a QUEST run under any
 * fault pattern still yields a verifier-clean, bound-respecting
 * ensemble).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "algos/algorithms.hh"
#include "ir/qasm.hh"
#include "obs/metrics.hh"
#include "quest/checkpoint.hh"
#include "quest/pipeline.hh"
#include "resilience/error.hh"
#include "resilience/fault.hh"
#include "verify/verifier.hh"

namespace quest {
namespace {

namespace fs = std::filesystem;

fs::path
makeTempDir()
{
    std::string tmpl =
        (fs::temp_directory_path() / "quest-resil-e2e-XXXXXX").string();
    char *dir = mkdtemp(tmpl.data());
    EXPECT_NE(dir, nullptr);
    return fs::path(dir);
}

struct TempDir
{
    fs::path path = makeTempDir();
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

uint64_t
counterValue(const char *name)
{
    return obs::MetricsRegistry::global().counter(name).value();
}

/** Small benchmark + lean search settings so the suite stays fast. */
QuestConfig
leanConfig()
{
    QuestConfig cfg;
    cfg.thresholdPerBlock = 0.1;
    cfg.synth.beamWidth = 1;
    cfg.synth.inst.multistarts = 1;
    cfg.synth.inst.lbfgs.maxIterations = 150;
    cfg.synth.maxLayers = 8;
    cfg.synth.candidatesPerLevel = 3;
    cfg.synth.stallLevels = 3;
    cfg.anneal.maxIterations = 120;
    cfg.maxSamples = 4;
    return cfg;
}

Circuit
benchCircuit()
{
    return algos::tfim(3, 2);
}

/**
 * The degradation invariants every run must satisfy, fault-injected
 * or not: per-block outcomes partition the blocks, at least one
 * sample exists, and every sample is verifier-clean with its distance
 * bound inside the threshold.
 */
void
expectValidEnsemble(const QuestResult &r)
{
    ASSERT_EQ(r.blockOutcomes.size(), r.blocks.size());
    EXPECT_EQ(r.okBlocks() + r.fallbackBlocks(), r.blocks.size());

    ASSERT_FALSE(r.samples.empty());
    const CircuitVerifier verifier(
        {.requireNative = true, .allowPseudoOps = false});
    for (size_t s = 0; s < r.samples.size(); ++s) {
        const ApproxSample &sample = r.samples[s];
        const VerifyReport report = verifier.verify(sample.circuit);
        EXPECT_TRUE(report.ok())
            << "sample " << s << ":\n" << report.toString();
        EXPECT_EQ(sample.circuit.numQubits(), r.original.numQubits());
        EXPECT_LE(sample.distanceBound, r.threshold + 1e-12);
        ASSERT_EQ(sample.choice.size(), r.blocks.size());
        for (size_t b = 0; b < sample.choice.size(); ++b) {
            ASSERT_GE(sample.choice[b], 0);
            ASSERT_LT(sample.choice[b],
                      static_cast<int>(r.blockApprox[b].size()));
        }
    }
}

/** Every sample's QASM, for byte-identical comparisons. */
std::vector<std::string>
sampleQasm(const QuestResult &r)
{
    std::vector<std::string> out;
    for (const ApproxSample &s : r.samples)
        out.push_back(toQasm(s.circuit));
    return out;
}

// ---- Graceful degradation under injected faults --------------------

TEST(ResilienceChaos, EveryFaultPatternYieldsValidEnsemble)
{
    // The property the resilience layer promises (ISSUE acceptance):
    // under ANY injected failure pattern the pipeline still returns a
    // verifier-clean ensemble within the epsilon bound, and the
    // outcome bookkeeping stays exact. Each plan exercises a
    // different failure site and schedule.
    const char *plans[] = {
        "synth.block.diverge:always",
        "synth.block.timeout:always",
        "synth.block.diverge:once",
        "synth.block.timeout:nth=2",
        "synth.block.diverge:every=2,synth.block.timeout:nth=3",
        "cache.store.enospc:always",
        "cache.store.short_write:every=2",
        "cache.load.read:always",
        "journal.append:after=1",
    };
    const Circuit circuit = benchCircuit();
    for (const char *spec : plans) {
        TempDir dir;
        QuestConfig cfg = leanConfig();
        cfg.cacheDir = (dir.path / "cache").string();
        cfg.checkpointDir = (dir.path / "ckpt").string();

        const uint64_t fallbacks_before =
            counterValue("resilience.fallbacks");
        QuestResult r;
        {
            resilience::ScopedFaultPlan plan(spec);
            r = QuestPipeline(cfg).run(circuit);
        }
        expectValidEnsemble(r);
        // resilience.fallbacks counts exactly the non-ok blocks.
        EXPECT_EQ(counterValue("resilience.fallbacks") -
                      fallbacks_before,
                  r.fallbackBlocks())
            << "plan: " << spec;
    }
}

TEST(ResilienceChaos, AllBlocksFaultedStillMatchesOriginal)
{
    QuestConfig cfg = leanConfig();
    QuestResult r;
    {
        resilience::ScopedFaultPlan plan("synth.block.diverge:always");
        r = QuestPipeline(cfg).run(benchCircuit());
    }
    expectValidEnsemble(r);
    EXPECT_EQ(r.okBlocks(), 0u);
    EXPECT_EQ(r.fallbackBlocks(), r.blocks.size());
    for (const BlockOutcome &o : r.blockOutcomes)
        EXPECT_EQ(o.status, BlockStatus::Diverged);
    // Degradation floor: with every block original, the only feasible
    // samples are built from original blocks, so CNOTs never exceed
    // the original count.
    for (const ApproxSample &s : r.samples) {
        EXPECT_EQ(s.distanceBound, 0.0);
        EXPECT_EQ(s.cnotCount, r.originalCnots);
    }
}

TEST(ResilienceChaos, FaultFreeRunHasNoFallbacks)
{
    QuestResult r = QuestPipeline(leanConfig()).run(benchCircuit());
    expectValidEnsemble(r);
    EXPECT_EQ(r.okBlocks(), r.blocks.size());
    EXPECT_EQ(r.fallbackBlocks(), 0u);
    for (const BlockOutcome &o : r.blockOutcomes) {
        EXPECT_TRUE(o.ok());
        EXPECT_TRUE(o.detail.empty());
    }
}

// ---- Run deadlines and cancellation --------------------------------

TEST(ResilienceDeadline, ExpiredRunBudgetDegradesToOriginal)
{
    QuestConfig cfg = leanConfig();
    cfg.runTimeoutSeconds = 1e-9;  // expires before STEP 2 starts
    QuestResult r = QuestPipeline(cfg).run(benchCircuit());
    expectValidEnsemble(r);
    EXPECT_EQ(r.okBlocks(), 0u);
    // Nothing was selected in time, so the ensemble degrades to the
    // all-original sample: QUEST never does worse than its input.
    ASSERT_EQ(r.samples.size(), 1u);
    EXPECT_EQ(r.samples[0].distanceBound, 0.0);
    EXPECT_EQ(r.samples[0].cnotCount, r.originalCnots);
}

TEST(ResilienceDeadline, FailPolicyThrowsTimeout)
{
    QuestConfig cfg = leanConfig();
    cfg.runTimeoutSeconds = 1e-9;
    cfg.deadlinePolicy = DeadlinePolicy::Fail;
    try {
        QuestPipeline(cfg).run(benchCircuit());
        FAIL() << "expected QuestError";
    } catch (const resilience::QuestError &e) {
        EXPECT_EQ(e.category(), resilience::ErrorCategory::Timeout);
        EXPECT_EQ(e.exitCode(), 12);
    }
}

TEST(ResilienceDeadline, CancelledTokenDegradesOrFails)
{
    resilience::CancelToken token;
    token.cancel();

    QuestConfig cfg = leanConfig();
    cfg.cancel = &token;
    QuestResult r = QuestPipeline(cfg).run(benchCircuit());
    expectValidEnsemble(r);
    EXPECT_EQ(r.okBlocks(), 0u);
    for (const BlockOutcome &o : r.blockOutcomes)
        EXPECT_EQ(o.status, BlockStatus::Fallback);

    cfg.deadlinePolicy = DeadlinePolicy::Fail;
    try {
        QuestPipeline(cfg).run(benchCircuit());
        FAIL() << "expected QuestError";
    } catch (const resilience::QuestError &e) {
        EXPECT_EQ(e.category(), resilience::ErrorCategory::Cancelled);
        EXPECT_EQ(e.exitCode(), 13);
    }
}

TEST(ResilienceDeadline, UnboundedRunIsUnaffectedByPlumbing)
{
    // Same seed, with and without the resilience plumbing armed at
    // all: byte-identical ensembles.
    QuestResult plain = QuestPipeline(leanConfig()).run(benchCircuit());
    QuestConfig cfg = leanConfig();
    cfg.runTimeoutSeconds = 3600.0;  // armed but never fires
    cfg.blockTimeoutSeconds = 3600.0;
    resilience::CancelToken token;  // never cancelled
    cfg.cancel = &token;
    QuestResult guarded = QuestPipeline(cfg).run(benchCircuit());
    EXPECT_EQ(sampleQasm(plain), sampleQasm(guarded));
}

// ---- Checkpoint / resume -------------------------------------------

TEST(ResilienceCheckpoint, ResumeAfterTornJournalIsByteIdentical)
{
    const Circuit circuit = benchCircuit();
    TempDir dir;
    QuestConfig cfg = leanConfig();
    cfg.checkpointDir = (dir.path / "ckpt").string();

    // Reference run, journaling as it goes.
    const QuestResult first = QuestPipeline(cfg).run(circuit);
    expectValidEnsemble(first);

    // Simulate a crash during STEP 3: tear trailing bytes off the
    // journal, as a kill mid-append would. This destroys the
    // step3-done marker and tears the last sample record; the block
    // records before them survive.
    const fs::path journal = fs::path(cfg.checkpointDir) / "journal.qrj";
    ASSERT_TRUE(fs::exists(journal));
    const auto size = fs::file_size(journal);
    ASSERT_GT(size, 20u);
    fs::resize_file(journal, size - 20);

    // Resume: block syntheses replay from the journal (zero searches),
    // STEP 3 re-anneals only what the "crash" lost, and the final
    // ensemble is byte-identical to the uninterrupted run.
    const uint64_t searches_before =
        counterValue("quest.synth.cache_misses");
    const uint64_t replayed_before =
        counterValue("resilience.checkpoint_blocks_replayed");
    QuestConfig resume_cfg = cfg;
    resume_cfg.resume = true;
    const QuestResult second = QuestPipeline(resume_cfg).run(circuit);
    expectValidEnsemble(second);

    EXPECT_EQ(counterValue("quest.synth.cache_misses"),
              searches_before);
    EXPECT_GT(counterValue("resilience.checkpoint_blocks_replayed"),
              replayed_before);
    EXPECT_EQ(sampleQasm(first), sampleQasm(second));
    ASSERT_EQ(first.samples.size(), second.samples.size());
    for (size_t s = 0; s < first.samples.size(); ++s) {
        EXPECT_EQ(first.samples[s].choice, second.samples[s].choice);
        EXPECT_EQ(first.samples[s].cnotCount,
                  second.samples[s].cnotCount);
    }
}

TEST(ResilienceCheckpoint, CompletedRunResumesWithoutAnnealing)
{
    const Circuit circuit = benchCircuit();
    TempDir dir;
    QuestConfig cfg = leanConfig();
    cfg.checkpointDir = (dir.path / "ckpt").string();
    const QuestResult first = QuestPipeline(cfg).run(circuit);

    cfg.resume = true;
    const uint64_t searches_before =
        counterValue("quest.synth.cache_misses");
    const QuestResult second = QuestPipeline(cfg).run(circuit);
    EXPECT_EQ(counterValue("quest.synth.cache_misses"),
              searches_before);
    EXPECT_EQ(sampleQasm(first), sampleQasm(second));
}

TEST(ResilienceCheckpoint, FingerprintMismatchResetsJournal)
{
    TempDir dir;
    QuestConfig cfg = leanConfig();
    cfg.checkpointDir = (dir.path / "ckpt").string();
    QuestPipeline(cfg).run(benchCircuit());

    // Same journal dir, different circuit: recorded decisions do not
    // transfer, so the resume must recompute rather than replay.
    const Circuit other = algos::tfim(3, 1);
    cfg.resume = true;
    const uint64_t replayed_before =
        counterValue("resilience.checkpoint_blocks_replayed");
    const QuestResult r = QuestPipeline(cfg).run(other);
    expectValidEnsemble(r);
    EXPECT_EQ(counterValue("resilience.checkpoint_blocks_replayed"),
              replayed_before);

    // And a fresh run of the same circuit matches it: the stale
    // journal changed nothing.
    QuestConfig plain = leanConfig();
    EXPECT_EQ(sampleQasm(QuestPipeline(plain).run(other)),
              sampleQasm(r));
}

TEST(ResilienceCheckpoint, WithoutResumeJournalIsReset)
{
    const Circuit circuit = benchCircuit();
    TempDir dir;
    QuestConfig cfg = leanConfig();
    cfg.checkpointDir = (dir.path / "ckpt").string();
    QuestPipeline(cfg).run(circuit);

    // resume=false (the default): the journal is truncated at open,
    // so the run recomputes and re-records everything.
    const uint64_t replayed_before =
        counterValue("resilience.checkpoint_blocks_replayed");
    const uint64_t searches_before =
        counterValue("quest.synth.cache_misses");
    QuestPipeline(cfg).run(circuit);
    EXPECT_EQ(counterValue("resilience.checkpoint_blocks_replayed"),
              replayed_before);
    EXPECT_GT(counterValue("quest.synth.cache_misses"),
              searches_before);
}

} // namespace
} // namespace quest
