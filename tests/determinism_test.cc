/**
 * @file
 * Determinism contract: the same configuration and seed must produce
 * byte-identical results — across repeated runs and across worker
 * thread counts. Task RNGs are split serially when the task list is
 * built and every task writes its own output slot, so the schedule
 * must not leak into the results.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "algos/algorithms.hh"
#include "anneal/dual_annealing.hh"
#include "ir/qasm.hh"
#include "quest/pipeline.hh"
#include "synth/instantiater.hh"
#include "resilience/thread_pool.hh"

namespace quest {
namespace {

QuestConfig
tinyConfig()
{
    QuestConfig cfg;
    cfg.synth.beamWidth = 1;
    cfg.synth.inst.multistarts = 1;
    cfg.synth.inst.lbfgs.maxIterations = 60;
    cfg.synth.maxLayers = 5;
    cfg.synth.candidatesPerLevel = 3;
    cfg.synth.stallLevels = 3;
    cfg.anneal.maxIterations = 120;
    cfg.maxSamples = 3;
    return cfg;
}

/** Exact (not approximate) equality of two pipeline results. */
void
expectIdentical(const QuestResult &a, const QuestResult &b)
{
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    ASSERT_EQ(a.blockApprox.size(), b.blockApprox.size());
    for (size_t blk = 0; blk < a.blockApprox.size(); ++blk) {
        ASSERT_EQ(a.blockApprox[blk].size(), b.blockApprox[blk].size())
            << "block " << blk;
        for (size_t k = 0; k < a.blockApprox[blk].size(); ++k) {
            // Bitwise-equal distances, not EXPECT_DOUBLE_EQ: any
            // schedule-dependent float difference is a failure.
            EXPECT_EQ(a.blockApprox[blk][k].distance,
                      b.blockApprox[blk][k].distance)
                << "block " << blk << " approx " << k;
            EXPECT_EQ(a.blockApprox[blk][k].cnotCount,
                      b.blockApprox[blk][k].cnotCount);
            EXPECT_EQ(toQasm(a.blockApprox[blk][k].circuit),
                      toQasm(b.blockApprox[blk][k].circuit));
        }
        EXPECT_EQ(a.blockSimilar[blk], b.blockSimilar[blk]);
    }

    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (size_t s = 0; s < a.samples.size(); ++s) {
        EXPECT_EQ(a.samples[s].choice, b.samples[s].choice);
        EXPECT_EQ(a.samples[s].cnotCount, b.samples[s].cnotCount);
        EXPECT_EQ(a.samples[s].distanceBound,
                  b.samples[s].distanceBound);
        EXPECT_EQ(toQasm(a.samples[s].circuit),
                  toQasm(b.samples[s].circuit));
    }
    EXPECT_EQ(a.threshold, b.threshold);
    EXPECT_EQ(a.originalCnots, b.originalCnots);
}

TEST(Determinism, RepeatedRunsAreByteIdentical)
{
    QuestConfig cfg = tinyConfig();
    cfg.threads = 1;
    Circuit circuit = algos::tfim(4, 3);
    QuestResult a = QuestPipeline(cfg).run(circuit);
    QuestResult b = QuestPipeline(cfg).run(circuit);
    expectIdentical(a, b);
}

TEST(Determinism, IndependentOfThreadCount)
{
    Circuit circuit = algos::tfim(8, 2);  // multi-block
    QuestConfig serial = tinyConfig();
    serial.threads = 1;
    QuestConfig parallel = tinyConfig();
    parallel.threads = 4;
    QuestResult a = QuestPipeline(serial).run(circuit);
    QuestResult b = QuestPipeline(parallel).run(circuit);
    expectIdentical(a, b);
}

TEST(Determinism, SeedChangesTheRun)
{
    QuestConfig cfg = tinyConfig();
    cfg.threads = 1;
    QuestConfig other = cfg;
    other.seed = cfg.seed + 1;
    // The pipeline seed feeds the annealer; the synthesizer draws
    // from its own seed, so vary both.
    other.synth.seed = cfg.synth.seed + 1;
    Circuit circuit = algos::tfim(4, 3);
    QuestResult a = QuestPipeline(cfg).run(circuit);
    QuestResult b = QuestPipeline(other).run(circuit);
    // Different seeds must not be forced identical: at minimum the
    // synthesized approximation distances should differ somewhere.
    bool any_difference = false;
    for (size_t blk = 0;
         blk < std::min(a.blockApprox.size(), b.blockApprox.size());
         ++blk) {
        if (a.blockApprox[blk].size() != b.blockApprox[blk].size()) {
            any_difference = true;
            break;
        }
        for (size_t k = 0; k < a.blockApprox[blk].size(); ++k)
            any_difference |= a.blockApprox[blk][k].distance !=
                              b.blockApprox[blk][k].distance;
    }
    EXPECT_TRUE(any_difference);
}

/** An ansatz-generated target, so the instantiation goal is reachable
 *  and the first-to-goal early stop actually triggers. */
Matrix
reachableTarget(Ansatz &a, std::vector<double> *truth_out = nullptr)
{
    constexpr double pi = std::numbers::pi;
    Rng rng(21);
    std::vector<double> truth(a.paramCount());
    for (double &v : truth)
        v = rng.uniform(-pi, pi);
    if (truth_out)
        *truth_out = truth;
    return a.unitary(truth);
}

/** instantiate() with the given pool (nullptr = serial path) and
 *  engine. Engine::Scalar pins the classic per-start path; Auto lets
 *  the batched SIMD engine claim the run when it is enabled. */
InstantiationResult
runInstantiation(const Matrix &target, const Ansatz &a, ThreadPool *pool,
                 double goal, InstantiaterEngine engine,
                 int multistarts = 6)
{
    InstantiaterOptions opts;
    opts.multistarts = multistarts;
    opts.lbfgs.maxIterations = 200;
    opts.goal = goal;
    opts.pool = pool;
    opts.engine = engine;
    Rng rng(42);
    return instantiate(target, a, rng, opts);
}

TEST(Determinism, ParallelMultistartMatchesSerialWithEarlyStop)
{
    Ansatz a = Ansatz::initialLayer(2);
    a.addLayer(0, 1);
    a.addLayer(1, 0);
    const Matrix target = reachableTarget(a);

    // goal 1e-10 on the cost is reachable (the target is in the
    // ansatz family), so some start triggers the early stop and the
    // skip/reduction logic is exercised, not just the happy path.
    const InstantiationResult serial = runInstantiation(
        target, a, nullptr, 1e-10, InstantiaterEngine::Scalar);
    EXPECT_LT(serial.distance, 1e-4);

    // Worker counts 0/1/7 = thread counts 1/2/8 (caller included).
    for (unsigned workers : {0u, 1u, 7u}) {
        ThreadPool pool(workers);
        const InstantiationResult r = runInstantiation(
            target, a, &pool, 1e-10, InstantiaterEngine::Scalar);
        EXPECT_EQ(r.distance, serial.distance) << workers << " workers";
        ASSERT_EQ(r.params.size(), serial.params.size());
        for (size_t i = 0; i < r.params.size(); ++i)
            EXPECT_EQ(r.params[i], serial.params[i])
                << workers << " workers, param " << i;
    }
}

TEST(Determinism, ParallelMultistartMatchesSerialWithoutEarlyStop)
{
    Ansatz a = Ansatz::initialLayer(2);
    a.addLayer(0, 1);
    const Matrix target = reachableTarget(a);

    // goal 0 is unreachable: every start runs to completion and the
    // reduction walks the full results array.
    const InstantiationResult serial = runInstantiation(
        target, a, nullptr, 0.0, InstantiaterEngine::Scalar);
    for (unsigned workers : {1u, 7u}) {
        ThreadPool pool(workers);
        const InstantiationResult r = runInstantiation(
            target, a, &pool, 0.0, InstantiaterEngine::Scalar);
        EXPECT_EQ(r.distance, serial.distance) << workers << " workers";
        ASSERT_EQ(r.params.size(), serial.params.size());
        for (size_t i = 0; i < r.params.size(); ++i)
            EXPECT_EQ(r.params[i], serial.params[i])
                << workers << " workers, param " << i;
    }
}

TEST(Determinism, BatchedEngineMatchesScalarSerialWithEarlyStop)
{
    Ansatz a = Ansatz::initialLayer(2);
    a.addLayer(0, 1);
    a.addLayer(1, 0);
    const Matrix target = reachableTarget(a);

    // The reference is the classic serial scalar engine; the batched
    // SIMD engine (engine = Auto, when enabled at runtime) must match
    // it bit for bit, including the first-to-goal early stop — and
    // regardless of any thread pool handed in, since the batched
    // driver runs lane-lockstep on the calling thread.
    const InstantiationResult scalar = runInstantiation(
        target, a, nullptr, 1e-10, InstantiaterEngine::Scalar);
    EXPECT_LT(scalar.distance, 1e-4);

    const InstantiationResult batched = runInstantiation(
        target, a, nullptr, 1e-10, InstantiaterEngine::Auto);
    EXPECT_EQ(batched.distance, scalar.distance);
    ASSERT_EQ(batched.params.size(), scalar.params.size());
    for (size_t i = 0; i < batched.params.size(); ++i)
        EXPECT_EQ(batched.params[i], scalar.params[i]) << "param " << i;

    // Worker counts 0/1/7 = thread counts 1/2/8 (caller included).
    for (unsigned workers : {0u, 1u, 7u}) {
        ThreadPool pool(workers);
        const InstantiationResult r = runInstantiation(
            target, a, &pool, 1e-10, InstantiaterEngine::Auto);
        EXPECT_EQ(r.distance, scalar.distance) << workers << " workers";
        ASSERT_EQ(r.params.size(), scalar.params.size());
        for (size_t i = 0; i < r.params.size(); ++i)
            EXPECT_EQ(r.params[i], scalar.params[i])
                << workers << " workers, param " << i;
    }
}

TEST(Determinism, BatchedEngineMatchesScalarSerialAcrossLaneRefills)
{
    Ansatz a = Ansatz::initialLayer(2);
    a.addLayer(0, 1);
    const Matrix target = reachableTarget(a);

    // 11 starts > kLanes (8) with an unreachable goal: every lane
    // retires at least once and the refill path runs, so pending
    // starts are proven to resume on whichever lane frees up without
    // perturbing any other lane's iterates.
    const InstantiationResult scalar = runInstantiation(
        target, a, nullptr, 0.0, InstantiaterEngine::Scalar, 11);
    for (unsigned workers : {0u, 7u}) {
        ThreadPool pool(workers);
        const InstantiationResult r = runInstantiation(
            target, a, &pool, 0.0, InstantiaterEngine::Auto, 11);
        EXPECT_EQ(r.distance, scalar.distance) << workers << " workers";
        ASSERT_EQ(r.params.size(), scalar.params.size());
        for (size_t i = 0; i < r.params.size(); ++i)
            EXPECT_EQ(r.params[i], scalar.params[i])
                << workers << " workers, param " << i;
    }
}

TEST(Determinism, DualAnnealingSameSeed)
{
    AnnealObjective objective = [](const std::vector<double> &x) {
        double f = 0.0;
        for (size_t i = 0; i < x.size(); ++i)
            f += (x[i] - 0.3 * static_cast<double>(i + 1)) *
                 (x[i] - 0.3 * static_cast<double>(i + 1));
        return std::cos(3.0 * x[0]) + f;
    };
    const std::vector<double> lo(3, -2.0), hi(3, 2.0);
    AnnealOptions options;
    options.maxIterations = 500;
    options.seed = 12345;

    AnnealResult a = dualAnnealing(objective, lo, hi, options);
    AnnealResult b = dualAnnealing(objective, lo, hi, options);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.evaluations, b.evaluations);
}

} // namespace
} // namespace quest
