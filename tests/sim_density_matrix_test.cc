/**
 * @file
 * Density-matrix simulator tests, including the cross-validation of
 * the Monte-Carlo trajectory simulator against the exact channel.
 */

#include <gtest/gtest.h>

#include "algos/algorithms.hh"
#include "ir/lower.hh"
#include "metrics/output_distance.hh"
#include "sim/density_matrix.hh"
#include "sim/simulator.hh"

namespace quest {
namespace {

TEST(DensityMatrix, InitialStateIsPureZero)
{
    DensityMatrix rho(2);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
    EXPECT_NEAR(rho.probabilities()[0], 1.0, 1e-12);
}

TEST(DensityMatrix, UnitaryEvolutionMatchesStatevector)
{
    Circuit c = lowerToNative(algos::tfim(3, 2));
    DensityMatrix rho(3);
    for (const Gate &g : c)
        rho.applyGate(g);
    Distribution expected = idealDistribution(c);
    Distribution got = rho.probabilities();
    EXPECT_LT(tvd(expected, got), 1e-9);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-9);
}

TEST(DensityMatrix, PauliChannelReducesPurity)
{
    DensityMatrix rho(1);
    rho.applyGate(Gate::h(0));
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
    rho.applyPauliChannel(0, 0.2);
    EXPECT_LT(rho.purity(), 1.0);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, FullDepolarizationIsMaximallyMixed)
{
    // The symmetric Pauli channel at p = 3/4 is the fully
    // depolarizing channel for one qubit.
    DensityMatrix rho(1);
    rho.applyGate(Gate::h(0));
    rho.applyPauliChannel(0, 0.75);
    EXPECT_NEAR(rho.purity(), 0.5, 1e-10);
    EXPECT_NEAR(rho.probabilities()[0], 0.5, 1e-10);
}

TEST(DensityMatrix, ChannelPreservesTrace)
{
    DensityMatrix rho(2);
    rho.applyGate(Gate::h(0));
    rho.applyGate(Gate::cx(0, 1));
    for (double p : {0.01, 0.1, 0.5}) {
        rho.applyPauliChannel(0, p);
        rho.applyPauliChannel(1, p);
        EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
    }
}

TEST(ExactNoisy, ZeroNoiseMatchesIdeal)
{
    Circuit c = lowerToNative(algos::qft(3));
    Distribution exact =
        exactNoisyDistribution(c, NoiseModel::ideal());
    EXPECT_LT(tvd(exact, idealDistribution(c)), 1e-9);
}

TEST(ExactNoisy, ReadoutOnIdentityCircuit)
{
    Circuit c(2);
    c.append(Gate::u3(0, 0, 0, 0));
    NoiseModel m;
    m.pReadout = 0.1;
    Distribution d = exactNoisyDistribution(c, m);
    EXPECT_NEAR(d[0], 0.81, 1e-10);   // both stay 0
    EXPECT_NEAR(d[3], 0.01, 1e-10);   // both flip
    EXPECT_NEAR(d.total(), 1.0, 1e-10);
}

/**
 * The key cross-validation: the Monte-Carlo trajectory simulator
 * must converge to the exact channel distribution.
 */
class TrajectoryVsExact : public ::testing::TestWithParam<double>
{
};

TEST_P(TrajectoryVsExact, Converges)
{
    const double level = GetParam();
    Circuit c = lowerToNative(algos::tfim(3, 3));
    NoiseModel noise = NoiseModel::pauli(level);

    Distribution exact = exactNoisyDistribution(c, noise);
    NoisySimulator sim(noise, 12345);
    Distribution empirical = sim.run(c, 60000);

    // 60k shots over 8 outcomes: statistical TVD floor well below
    // 0.02.
    EXPECT_LT(tvd(exact, empirical), 0.02) << "level " << level;
}

INSTANTIATE_TEST_SUITE_P(Levels, TrajectoryVsExact,
                         ::testing::Values(0.001, 0.01, 0.05));

TEST(TrajectoryVsExact, WithReadoutError)
{
    Circuit c = lowerToNative(algos::heisenberg(2, 1));
    NoiseModel noise = NoiseModel::ibmqManila();
    Distribution exact = exactNoisyDistribution(c, noise);
    NoisySimulator sim(noise, 999);
    EXPECT_LT(tvd(exact, sim.run(c, 60000)), 0.02);
}

TEST(DensityMatrix, DeepCircuitsAccumulateError)
{
    // On a circuit whose ideal output is a basis state at every
    // depth (pairs of X layers), the channel error must grow
    // monotonically with the number of noisy gates.
    NoiseModel noise = NoiseModel::pauli(0.01);
    double prev = 0.0;
    for (int layers : {2, 8, 24}) {
        Circuit c(3);
        for (int l = 0; l < layers; ++l)
            for (int q = 0; q < 3; ++q)
                c.append(Gate::x(q));
        double err = tvd(exactNoisyDistribution(c, noise),
                         idealDistribution(c));
        EXPECT_GT(err, prev);
        prev = err;
    }
    EXPECT_GT(prev, 0.05);
}

} // namespace
} // namespace quest
