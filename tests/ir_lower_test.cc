/**
 * @file
 * Lowering tests: every gate's native decomposition must preserve the
 * unitary up to global phase.
 */

#include <gtest/gtest.h>

#include "ir/lower.hh"
#include "linalg/distance.hh"
#include "linalg/embed.hh"
#include "sim/unitary_builder.hh"

namespace quest {
namespace {

const std::vector<GateType> loweredGates = {
    GateType::U1, GateType::U2, GateType::U3, GateType::RX,
    GateType::RY, GateType::RZ, GateType::X, GateType::Y,
    GateType::Z, GateType::H, GateType::S, GateType::Sdg,
    GateType::T, GateType::Tdg, GateType::SX, GateType::CX,
    GateType::CZ, GateType::SWAP, GateType::RZZ, GateType::RXX,
    GateType::RYY, GateType::CRZ, GateType::CP, GateType::CCX,
};

Gate
makeGate(GateType type)
{
    std::vector<int> wires;
    for (int q = 0; q < gateArity(type); ++q)
        wires.push_back(q);
    std::vector<double> params;
    for (int p = 0; p < gateParamCount(type); ++p)
        params.push_back(0.7 - 0.2 * p);
    return {type, wires, params};
}

class LowerEveryGate : public ::testing::TestWithParam<GateType>
{
};

TEST_P(LowerEveryGate, PreservesUnitaryUpToPhase)
{
    Gate g = makeGate(GetParam());
    Circuit c(g.arity());
    c.append(g);
    Circuit lowered = lowerToNative(c);
    EXPECT_TRUE(isNative(lowered)) << gateName(GetParam());
    EXPECT_NEAR(hsDistance(circuitUnitary(c), circuitUnitary(lowered)),
                0.0, 1e-7)
        << gateName(GetParam());
}

TEST_P(LowerEveryGate, CnotBudgetMatchesEquivalents)
{
    Gate g = makeGate(GetParam());
    Circuit c(g.arity());
    c.append(g);
    Circuit lowered = lowerToNative(c);
    EXPECT_EQ(lowered.cnotCount(),
              static_cast<size_t>(cnotEquivalents(GetParam())))
        << gateName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllGates, LowerEveryGate,
                         ::testing::ValuesIn(loweredGates),
                         [](const auto &info) {
                             return std::string(gateName(info.param));
                         });

TEST(Lower, ReversedWireOrders)
{
    // Gates with wires in descending order must also lower correctly.
    Circuit c(3);
    c.append(Gate::cx(2, 0));
    c.append(Gate::rzz(2, 1, 0.4));
    c.append(Gate::ccx(2, 1, 0));
    c.append(Gate::swap(2, 0));
    Circuit lowered = lowerToNative(c);
    EXPECT_NEAR(hsDistance(circuitUnitary(c), circuitUnitary(lowered)),
                0.0, 1e-7);
}

TEST(Lower, DropsBarriersKeepsMeasures)
{
    Circuit c(2);
    c.append(Gate::h(0));
    c.append(Gate::barrier({0, 1}));
    c.append(Gate::measure(0));
    Circuit lowered = lowerToNative(c);
    EXPECT_TRUE(lowered.hasMeasurements());
    for (const Gate &g : lowered)
        EXPECT_NE(g.type, GateType::Barrier);
}

TEST(Lower, NativeCircuitUnchangedInLength)
{
    Circuit c(2);
    c.append(Gate::u3(0, 0.1, 0.2, 0.3));
    c.append(Gate::cx(0, 1));
    Circuit lowered = lowerToNative(c);
    EXPECT_EQ(lowered.size(), c.size());
    EXPECT_TRUE(isNative(lowered));
}

TEST(Lower, IsNativeDetectsForeignGates)
{
    Circuit c(2);
    c.append(Gate::h(0));
    EXPECT_FALSE(isNative(c));
    c = lowerToNative(c);
    EXPECT_TRUE(isNative(c));
}

TEST(Lower, WholeCircuitEquivalence)
{
    // A mixed 4-qubit circuit exercising every decomposition at once.
    Circuit c(4);
    c.append(Gate::h(0));
    c.append(Gate::ccx(0, 1, 2));
    c.append(Gate::swap(1, 3));
    c.append(Gate::rxx(0, 3, 0.8));
    c.append(Gate::ryy(2, 1, -0.6));
    c.append(Gate::crz(3, 0, 1.1));
    c.append(Gate::cp(1, 2, 0.9));
    c.append(Gate::sx(3));
    c.append(Gate::u2(0, 0.2, -0.4));
    Circuit lowered = lowerToNative(c);
    EXPECT_TRUE(isNative(lowered));
    EXPECT_NEAR(hsDistance(buildUnitary(c), buildUnitary(lowered)), 0.0,
                1e-7);
}

} // namespace
} // namespace quest
