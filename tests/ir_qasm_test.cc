/**
 * @file
 * OpenQASM 2.0 writer/parser tests: round trips, expressions, errors.
 */

#include <gtest/gtest.h>

#include <numbers>

#include "algos/algorithms.hh"
#include "ir/lower.hh"
#include "ir/qasm.hh"
#include "linalg/distance.hh"
#include "sim/unitary_builder.hh"

namespace quest {
namespace {

constexpr double pi = std::numbers::pi;

TEST(QasmWriter, HeaderAndRegisters)
{
    Circuit c(3);
    c.append(Gate::h(0));
    std::string q = toQasm(c);
    EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(q.find("qreg q[3];"), std::string::npos);
    EXPECT_EQ(q.find("creg"), std::string::npos);
}

TEST(QasmWriter, CregOnlyWithMeasure)
{
    Circuit c(2);
    c.append(Gate::measure(0));
    std::string q = toQasm(c);
    EXPECT_NE(q.find("creg c[2];"), std::string::npos);
    EXPECT_NE(q.find("measure q[0] -> c[0];"), std::string::npos);
}

TEST(QasmParser, MinimalProgram)
{
    Circuit c = parseQasm("OPENQASM 2.0;\n"
                          "include \"qelib1.inc\";\n"
                          "qreg q[2];\n"
                          "h q[0];\n"
                          "cx q[0],q[1];\n");
    EXPECT_EQ(c.numQubits(), 2);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0].type, GateType::H);
    EXPECT_EQ(c[1].type, GateType::CX);
}

TEST(QasmParser, ParameterExpressions)
{
    Circuit c = parseQasm("qreg q[1];\n"
                          "rz(pi/2) q[0];\n"
                          "rx(-pi/4) q[0];\n"
                          "ry(2*pi/3) q[0];\n"
                          "u3(0.5, 1e-3, -(pi - 1)) q[0];\n");
    EXPECT_NEAR(c[0].params[0], pi / 2, 1e-12);
    EXPECT_NEAR(c[1].params[0], -pi / 4, 1e-12);
    EXPECT_NEAR(c[2].params[0], 2 * pi / 3, 1e-12);
    EXPECT_NEAR(c[3].params[0], 0.5, 1e-12);
    EXPECT_NEAR(c[3].params[1], 1e-3, 1e-15);
    EXPECT_NEAR(c[3].params[2], -(pi - 1), 1e-12);
}

TEST(QasmParser, CommentsIgnored)
{
    Circuit c = parseQasm("// leading comment\n"
                          "qreg q[1]; // inline comment\n"
                          "x q[0];\n");
    EXPECT_EQ(c.size(), 1u);
}

TEST(QasmParser, MeasureAndBarrier)
{
    Circuit c = parseQasm("qreg q[2];\ncreg c[2];\n"
                          "barrier q[0],q[1];\n"
                          "measure q[1] -> c[1];\n");
    EXPECT_EQ(c[0].type, GateType::Barrier);
    EXPECT_EQ(c[1].type, GateType::Measure);
    EXPECT_EQ(c[1].qubits[0], 1);
}

TEST(QasmParser, UAliasForU3)
{
    Circuit c = parseQasm("qreg q[1];\nu(0.1,0.2,0.3) q[0];\n");
    EXPECT_EQ(c[0].type, GateType::U3);
}

TEST(QasmParser, Cu1AliasForCp)
{
    Circuit c = parseQasm("qreg q[2];\ncu1(0.5) q[0],q[1];\n");
    EXPECT_EQ(c[0].type, GateType::CP);
}

TEST(QasmParser, Errors)
{
    EXPECT_THROW(parseQasm("x q[0];"), QasmError);           // no qreg
    EXPECT_THROW(parseQasm("qreg q[2];\nfoo q[0];"), QasmError);
    EXPECT_THROW(parseQasm("qreg q[2];\nx q[5];"), QasmError);
    EXPECT_THROW(parseQasm("qreg q[2];\ncx q[0];"), QasmError);
    EXPECT_THROW(parseQasm("qreg q[2];\nrz q[0];"), QasmError);
    EXPECT_THROW(parseQasm("qreg q[2];\nrz(1/0) q[0];"), QasmError);
    EXPECT_THROW(parseQasm("qreg q[2];\nx q[0]"), QasmError);  // no ';'
    EXPECT_THROW(parseQasm("qreg q[2];\nqreg r[2];"), QasmError);
    EXPECT_THROW(parseQasm("qreg q[0];"), QasmError);
    // Duplicate wires must throw, not trip Gate's internal assert.
    EXPECT_THROW(parseQasm("qreg q[2];\ncx q[0],q[0];"), QasmError);
    EXPECT_THROW(parseQasm("qreg q[3];\nccx q[0],q[1],q[1];"),
                 QasmError);
}

class QasmRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(QasmRoundTrip, PreservesUnitary)
{
    // Generate, serialize, reparse, compare unitaries.
    Circuit original = [&]() {
        const std::string &name = GetParam();
        if (name == "adder")
            return algos::adder(4);
        if (name == "qft")
            return algos::qft(4);
        if (name == "tfim")
            return algos::tfim(4, 2);
        if (name == "heisenberg")
            return algos::heisenberg(3, 2);
        if (name == "qaoa")
            return algos::qaoa(4);
        if (name == "hlf")
            return algos::hlf(4);
        return algos::vqe(4);
    }();

    std::string text = toQasm(original);
    Circuit parsed = parseQasm(text);
    EXPECT_EQ(parsed.numQubits(), original.numQubits());
    EXPECT_EQ(parsed.size(), original.size());
    EXPECT_NEAR(hsDistance(buildUnitary(original), buildUnitary(parsed)),
                0.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Suite, QasmRoundTrip,
                         ::testing::Values("adder", "qft", "tfim",
                                           "heisenberg", "qaoa", "hlf",
                                           "vqe"));

TEST(QasmRoundTripNative, LoweredCircuit)
{
    Circuit c = lowerToNative(algos::heisenberg(3, 1));
    Circuit parsed = parseQasm(toQasm(c));
    EXPECT_NEAR(hsDistance(buildUnitary(c), buildUnitary(parsed)), 0.0,
                1e-7);
}

} // namespace
} // namespace quest
