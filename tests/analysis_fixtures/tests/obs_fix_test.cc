// Test-local literal names under a documented ephemeral prefix are
// exempt from per-name documentation (and from the literal-name rule,
// which only applies to src/).

void
poke(obs::MetricsRegistry &registry)
{
    registry.counter("tmp.x").increment();
}
