// A violation fully covered by a suppression comment: the file must
// scan clean and the suppression must count as used.
#include <cstdlib>

int
noise()
{
    // QUEST_ANALYZE_OK(determinism.rand): exercises the suppression round-trip
    return rand();
}
