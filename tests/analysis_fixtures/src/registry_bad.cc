// Registry violations: literal names in src/, an unknown constant,
// and an undocumented metric / fault site.
#include "util/names.hh"

void
record(obs::MetricsRegistry &registry)
{
    registry.counter("fix.good").increment();
    registry.counter(names::kMetricFixGood).increment();
    registry.gauge("fix.undocumented").set(1);
    registry.counter(names::kNope).increment();
}

bool
trip()
{
    return QUEST_FAULT_POINT("fix.unknown_site");
}
