// Seeded determinism violations. analysis_test.cc asserts these
// exact line numbers; keep them stable.

using Clock = std::chrono::steady_clock;

double
jitter()
{
    auto t0 = Clock::now();
    const char *home = getenv("HOME");
    int noise = rand();
    (void)t0;
    (void)home;
    return noise * 0.5;
}

int
tally()
{
    std::unordered_map<int, int> counts;
    int sum = 0;
    for (auto &kv : counts)
        sum += kv.second;
    return sum;
}

int
walk()
{
    int n = 0;
    for (const auto &e : std::filesystem::directory_iterator("."))
        ++n;
    return n;
}
