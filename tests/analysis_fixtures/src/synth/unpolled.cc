// A kernel-calling loop with no budget poll (the violation), and a
// polled twin that must stay clean.

void
bad(Instantiater &inst, const std::vector<Task> &tasks)
{
    for (const Task &t : tasks)
        inst.instantiate(t);
}

void
good(Instantiater &inst, const std::vector<Task> &tasks,
     resilience::Budget &budget)
{
    for (const Task &t : tasks) {
        if (budget.exhausted())
            break;
        inst.instantiate(t);
    }
}
