// An unused suppression is itself a finding.

int
five()
{
    // QUEST_ANALYZE_OK(determinism.rand): nothing below violates
    return 5;
}
