// Error-discipline violations.
#include <stdexcept>

void
fail()
{
    throw std::runtime_error("nope");
}

void
swallow()
{
    try {
        fail();
    } catch (...) {
    }
}
