// A fully clean file: constants from names.hh, plus strings and
// comments that merely mention forbidden identifiers (the lexer must
// not false-positive on them).
#include "util/names.hh"

void
record(obs::MetricsRegistry &registry)
{
    registry.counter(names::kMetricFixGood).increment();
    if (QUEST_FAULT_POINT(names::kFaultFix))
        return;
    // calling rand() or steady_clock::now() here would be flagged
    const char *doc = "uses rand() and std::chrono::steady_clock";
    (void)doc;
}
