// Miniature names header for the analyzer fixtures.
#ifndef FIXTURE_NAMES_HH
#define FIXTURE_NAMES_HH

namespace quest::names {

inline constexpr const char kMetricFixGood[] = "fix.good";
inline constexpr const char kFaultFix[] = "fix.fault";

inline constexpr int kExitIo = 11;
inline constexpr int kExitInternal = 70;

} // namespace quest::names

#endif
