// Miniature exit-code taxonomy source for the analyzer fixtures.
#include "util/names.hh"

namespace quest::resilience {

const char *
errorCategoryName(ErrorCategory category)
{
    switch (category) {
      case ErrorCategory::Io:
        return "io";
      case ErrorCategory::Internal:
        return "internal";
    }
    return "internal";
}

int
exitCodeFor(ErrorCategory category)
{
    switch (category) {
      case ErrorCategory::Io:
        return names::kExitIo;
      case ErrorCategory::Internal:
        return names::kExitInternal;
    }
    return names::kExitInternal;
}

} // namespace quest::resilience
