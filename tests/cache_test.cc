#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "cache/codec.hh"
#include "cache/synthesis_cache.hh"
#include "obs/metrics.hh"
#include "util/sha256.hh"

namespace quest::cache {
namespace {

namespace fs = std::filesystem;

fs::path
makeTempDir()
{
    std::string tmpl =
        (fs::temp_directory_path() / "quest-cache-test-XXXXXX").string();
    char *dir = mkdtemp(tmpl.data());
    EXPECT_NE(dir, nullptr);
    return fs::path(dir);
}

/** RAII removal of a test cache directory. */
struct TempDir
{
    fs::path path = makeTempDir();
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

uint64_t
counterValue(const char *name)
{
    return obs::MetricsRegistry::global().counter(name).value();
}

/** All GateType enumerators, via the frozen wire-format table. */
std::vector<GateType>
allGateTypes()
{
    std::vector<GateType> types;
    for (int code = 0;; ++code) {
        try {
            types.push_back(gateTypeFromCode(static_cast<uint8_t>(code)));
        } catch (const SerializeError &) {
            break;
        }
    }
    return types;
}

std::vector<int>
randomDistinctWires(std::mt19937_64 &rng, int n_qubits, int arity)
{
    std::vector<int> all(n_qubits);
    for (int i = 0; i < n_qubits; ++i)
        all[i] = i;
    std::shuffle(all.begin(), all.end(), rng);
    all.resize(static_cast<size_t>(arity));
    return all;
}

/** A random structurally-valid circuit drawing from every gate type
 *  (measurements appended as the required trailing suffix). */
Circuit
randomCircuit(std::mt19937_64 &rng, int n_qubits, size_t n_gates)
{
    static const std::vector<GateType> types = allGateTypes();
    Circuit c(n_qubits);
    for (size_t i = 0; i < n_gates; ++i) {
        GateType type;
        do {
            type = types[rng() % types.size()];
        } while (type == GateType::Measure ||
                 gateArity(type) > n_qubits);

        int arity = gateArity(type);
        if (type == GateType::Barrier)
            arity = 1 + static_cast<int>(rng() % n_qubits);
        std::vector<int> wires =
            randomDistinctWires(rng, n_qubits, arity);

        std::vector<double> params(
            static_cast<size_t>(gateParamCount(type)));
        std::uniform_real_distribution<double> angle(-6.4, 6.4);
        for (double &p : params)
            p = angle(rng);

        c.append(Gate(type, std::move(wires), std::move(params)));
    }
    if (rng() % 2 == 0) {
        for (int q = 0; q < n_qubits; ++q)
            if (rng() % 2 == 0)
                c.append(Gate::measure(q));
    }
    return c;
}

void
expectSameCircuit(const Circuit &a, const Circuit &b)
{
    ASSERT_EQ(a.numQubits(), b.numQubits());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].type, b[i].type) << "gate " << i;
        EXPECT_EQ(a[i].qubits, b[i].qubits) << "gate " << i;
        ASSERT_EQ(a[i].params.size(), b[i].params.size()) << "gate " << i;
        for (size_t p = 0; p < a[i].params.size(); ++p) {
            // Bitwise, not value, equality: the replay guarantee.
            EXPECT_EQ(std::memcmp(&a[i].params[p], &b[i].params[p],
                                  sizeof(double)),
                      0)
                << "gate " << i << " param " << p;
        }
    }
}

void
expectSameOutput(const SynthOutput &a, const SynthOutput &b)
{
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    EXPECT_EQ(a.bestIndex, b.bestIndex);
    for (size_t i = 0; i < a.candidates.size(); ++i) {
        expectSameCircuit(a.candidates[i].circuit,
                          b.candidates[i].circuit);
        EXPECT_EQ(std::memcmp(&a.candidates[i].distance,
                              &b.candidates[i].distance, sizeof(double)),
                  0);
        EXPECT_EQ(a.candidates[i].cnotCount, b.candidates[i].cnotCount);
    }
}

/** A random native {U3, CX} circuit — the shape of real synthesis
 *  candidates, which is what cache entries always hold. */
Circuit
randomNativeCircuit(std::mt19937_64 &rng, int n_qubits, size_t n_gates)
{
    Circuit c(n_qubits);
    std::uniform_real_distribution<double> angle(-6.4, 6.4);
    for (size_t i = 0; i < n_gates; ++i) {
        if (n_qubits >= 2 && rng() % 2 == 0) {
            auto wires = randomDistinctWires(rng, n_qubits, 2);
            c.append(Gate::cx(wires[0], wires[1]));
        } else {
            c.append(Gate::u3(static_cast<int>(rng() % n_qubits),
                              angle(rng), angle(rng), angle(rng)));
        }
    }
    return c;
}

/** A synthetic but store-valid synthesis output. */
SynthOutput
makeOutput(std::mt19937_64 &rng, int n_qubits = 3,
           size_t n_candidates = 3)
{
    SynthOutput out;
    std::uniform_real_distribution<double> dist(0.0, 0.5);
    for (size_t i = 0; i < n_candidates; ++i) {
        SynthCandidate c;
        c.circuit = randomNativeCircuit(rng, n_qubits, 4 + rng() % 8);
        c.distance = dist(rng);
        c.cnotCount = static_cast<int>(c.circuit.cnotCount());
        out.candidates.push_back(std::move(c));
    }
    out.bestIndex = rng() % n_candidates;
    return out;
}

std::string
keyFor(const std::string &tag)
{
    return Sha256::hexDigest(tag);
}

std::vector<uint8_t>
readAll(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good());
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

void
writeAll(const fs::path &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
}

// ---- Codec ----------------------------------------------------------

TEST(Codec, GateCodeTableIsABijection)
{
    const std::vector<GateType> types = allGateTypes();
    EXPECT_EQ(types.size(), 26u); // every GateType enumerator
    for (GateType t : types)
        EXPECT_EQ(gateTypeFromCode(gateTypeCode(t)), t);
    EXPECT_THROW(gateTypeFromCode(static_cast<uint8_t>(types.size())),
                 SerializeError);
}

TEST(Codec, RandomCircuitsRoundTrip)
{
    std::mt19937_64 rng(2024);
    for (int iter = 0; iter < 100; ++iter) {
        const int n = 1 + static_cast<int>(rng() % 4);
        const Circuit original = randomCircuit(rng, n, rng() % 24);

        ByteWriter w;
        encodeCircuit(w, original);
        ByteReader r(w.buffer());
        const Circuit back = decodeCircuit(r);
        EXPECT_TRUE(r.atEnd());
        expectSameCircuit(original, back);
    }
}

TEST(Codec, SynthOutputsRoundTrip)
{
    std::mt19937_64 rng(4);
    for (int iter = 0; iter < 50; ++iter) {
        const SynthOutput original =
            makeOutput(rng, 1 + static_cast<int>(rng() % 4),
                       1 + rng() % 5);
        ByteWriter w;
        encodeSynthOutput(w, original);
        ByteReader r(w.buffer());
        expectSameOutput(original, decodeSynthOutput(r));
    }
}

TEST(Codec, RejectsMalformedCircuits)
{
    // Unknown gate code.
    {
        ByteWriter w;
        w.u32(2); // qubits
        w.u32(1); // gates
        w.u8(250);
        w.u8(1);
        w.u8(0);
        ByteReader r(w.buffer());
        EXPECT_THROW(decodeCircuit(r), SerializeError);
    }
    // Arity mismatch for CX.
    {
        ByteWriter w;
        w.u32(2);
        w.u32(1);
        w.u8(gateTypeCode(GateType::CX));
        w.u8(1);
        w.u8(0);
        w.i32(0);
        ByteReader r(w.buffer());
        EXPECT_THROW(decodeCircuit(r), SerializeError);
    }
    // Wire out of range.
    {
        ByteWriter w;
        w.u32(2);
        w.u32(1);
        w.u8(gateTypeCode(GateType::H));
        w.u8(1);
        w.u8(0);
        w.i32(5);
        ByteReader r(w.buffer());
        EXPECT_THROW(decodeCircuit(r), SerializeError);
    }
    // Duplicate wires on a CX.
    {
        ByteWriter w;
        w.u32(2);
        w.u32(1);
        w.u8(gateTypeCode(GateType::CX));
        w.u8(2);
        w.u8(0);
        w.i32(1);
        w.i32(1);
        ByteReader r(w.buffer());
        EXPECT_THROW(decodeCircuit(r), SerializeError);
    }
    // Truncated mid-gate.
    {
        ByteWriter w;
        w.u32(2);
        w.u32(1);
        w.u8(gateTypeCode(GateType::RZ));
        w.u8(1);
        w.u8(1);
        w.i32(0);
        // missing the f64 parameter
        ByteReader r(w.buffer());
        EXPECT_THROW(decodeCircuit(r), SerializeError);
    }
    // Zero-wire circuit.
    {
        ByteWriter w;
        w.u32(0);
        w.u32(0);
        ByteReader r(w.buffer());
        EXPECT_THROW(decodeCircuit(r), SerializeError);
    }
}

TEST(Codec, RejectsMalformedOutputs)
{
    std::mt19937_64 rng(5);
    const SynthOutput good = makeOutput(rng);

    // Empty candidate set.
    {
        ByteWriter w;
        w.u32(0);
        w.u64(0);
        ByteReader r(w.buffer());
        EXPECT_THROW(decodeSynthOutput(r), SerializeError);
    }
    // Out-of-range best index.
    {
        SynthOutput bad = good;
        bad.bestIndex = bad.candidates.size() + 3;
        ByteWriter w;
        encodeSynthOutput(w, bad);
        ByteReader r(w.buffer());
        EXPECT_THROW(decodeSynthOutput(r), SerializeError);
    }
    // Trailing bytes.
    {
        ByteWriter w;
        encodeSynthOutput(w, good);
        w.u8(0);
        ByteReader r(w.buffer());
        EXPECT_THROW(decodeSynthOutput(r), SerializeError);
    }
    // CNOT-count field contradicting the circuit.
    {
        SynthOutput bad = good;
        bad.candidates[0].cnotCount += 1;
        ByteWriter w;
        encodeSynthOutput(w, bad);
        ByteReader r(w.buffer());
        EXPECT_THROW(decodeSynthOutput(r), SerializeError);
    }
    // A hostile candidate count must throw, not allocate.
    {
        ByteWriter w;
        w.u32(0xfffffff0u);
        ByteReader r(w.buffer());
        EXPECT_THROW(decodeSynthOutput(r), SerializeError);
    }
}

// ---- Disk store -----------------------------------------------------

TEST(SynthesisCache, StoreThenLoadRoundTrips)
{
    TempDir tmp;
    SynthesisCache cache({.dir = tmp.path.string()});
    std::mt19937_64 rng(11);

    const std::string key = keyFor("round-trip");
    EXPECT_FALSE(cache.load(key).has_value());

    const SynthOutput out = makeOutput(rng);
    cache.store(key, out);
    EXPECT_TRUE(fs::exists(cache.entryPath(key)));

    const auto loaded = cache.load(key);
    ASSERT_TRUE(loaded.has_value());
    expectSameOutput(out, *loaded);

    const auto s = cache.stats();
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.bytes, fs::file_size(cache.entryPath(key)));
}

TEST(SynthesisCache, InvalidateRemovesTheEntry)
{
    TempDir tmp;
    SynthesisCache cache({.dir = tmp.path.string()});
    std::mt19937_64 rng(12);

    const std::string key = keyFor("invalidate");
    cache.store(key, makeOutput(rng));
    ASSERT_TRUE(cache.load(key).has_value());
    cache.invalidate(key);
    EXPECT_FALSE(cache.load(key).has_value());
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(SynthesisCache, RejectsNonKeys)
{
    TempDir tmp;
    SynthesisCache cache({.dir = tmp.path.string()});
    std::mt19937_64 rng(13);
    EXPECT_FALSE(cache.load("not-a-key").has_value());
    cache.store("not-a-key", makeOutput(rng));
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_FALSE(isCacheKey("abc"));
    EXPECT_FALSE(isCacheKey(std::string(64, 'g')));
    EXPECT_TRUE(isCacheKey(keyFor("x")));
}

/** Corrupt one entry on disk, then assert a load degrades to a miss,
 *  removes the file, bumps @p expected_counter, and a re-store heals
 *  the cache. */
void
expectMissAndRepair(
    SynthesisCache &cache, const std::string &key, const SynthOutput &out,
    const char *expected_counter,
    const std::function<void(const fs::path &)> &damage)
{
    cache.store(key, out);
    const fs::path path = cache.entryPath(key);
    ASSERT_TRUE(fs::exists(path));
    damage(path);

    const uint64_t before = counterValue(expected_counter);
    const uint64_t misses_before = counterValue("quest.cache.miss");
    EXPECT_FALSE(cache.load(key).has_value());
    EXPECT_EQ(counterValue(expected_counter), before + 1);
    EXPECT_EQ(counterValue("quest.cache.miss"), misses_before + 1);
    EXPECT_FALSE(fs::exists(path)) << "damaged entry not removed";

    // Miss-and-repair: the caller re-synthesizes and stores again.
    cache.store(key, out);
    const auto healed = cache.load(key);
    ASSERT_TRUE(healed.has_value());
    expectSameOutput(out, *healed);
}

TEST(SynthesisCache, TruncatedEntryIsACorruptMiss)
{
    TempDir tmp;
    SynthesisCache cache({.dir = tmp.path.string()});
    std::mt19937_64 rng(21);
    expectMissAndRepair(
        cache, keyFor("truncated"), makeOutput(rng), "quest.cache.corrupt",
        [](const fs::path &path) {
            auto bytes = readAll(path);
            bytes.resize(bytes.size() / 2);
            writeAll(path, bytes);
        });
}

TEST(SynthesisCache, HeaderOnlyEntryIsACorruptMiss)
{
    TempDir tmp;
    SynthesisCache cache({.dir = tmp.path.string()});
    std::mt19937_64 rng(22);
    expectMissAndRepair(
        cache, keyFor("header-only"), makeOutput(rng),
        "quest.cache.corrupt", [](const fs::path &path) {
            auto bytes = readAll(path);
            bytes.resize(8); // not even a whole header
            writeAll(path, bytes);
        });
}

TEST(SynthesisCache, FlippedPayloadByteIsACorruptMiss)
{
    TempDir tmp;
    SynthesisCache cache({.dir = tmp.path.string()});
    std::mt19937_64 rng(23);
    expectMissAndRepair(
        cache, keyFor("bitflip"), makeOutput(rng), "quest.cache.corrupt",
        [](const fs::path &path) {
            auto bytes = readAll(path);
            ASSERT_GT(bytes.size(), SynthesisCache::kHeaderSize);
            bytes.back() ^= 0x40;
            writeAll(path, bytes);
        });
}

TEST(SynthesisCache, BadMagicIsACorruptMiss)
{
    TempDir tmp;
    SynthesisCache cache({.dir = tmp.path.string()});
    std::mt19937_64 rng(24);
    expectMissAndRepair(
        cache, keyFor("magic"), makeOutput(rng), "quest.cache.corrupt",
        [](const fs::path &path) {
            auto bytes = readAll(path);
            bytes[0] = 'X';
            writeAll(path, bytes);
        });
}

TEST(SynthesisCache, FutureFormatVersionIsAStaleMiss)
{
    TempDir tmp;
    SynthesisCache cache({.dir = tmp.path.string()});
    std::mt19937_64 rng(25);
    expectMissAndRepair(
        cache, keyFor("version"), makeOutput(rng), "quest.cache.stale",
        [](const fs::path &path) {
            auto bytes = readAll(path);
            // The u32 version field sits right after the magic.
            bytes[4] = static_cast<uint8_t>(
                SynthesisCache::kFormatVersion + 1);
            writeAll(path, bytes);
        });
}

TEST(SynthesisCache, EntryUnderTheWrongKeyIsACorruptMiss)
{
    TempDir tmp;
    SynthesisCache cache({.dir = tmp.path.string()});
    std::mt19937_64 rng(26);

    const std::string key_a = keyFor("a");
    const std::string key_b = keyFor("b");
    cache.store(key_a, makeOutput(rng));

    // A would-be collision: key B's slot holds key A's entry.
    std::error_code ec;
    fs::create_directories(cache.entryPath(key_b).parent_path(), ec);
    fs::copy_file(cache.entryPath(key_a), cache.entryPath(key_b),
                  fs::copy_options::overwrite_existing, ec);
    ASSERT_FALSE(ec);

    const uint64_t corrupt = counterValue("quest.cache.corrupt");
    EXPECT_FALSE(cache.load(key_b).has_value());
    EXPECT_EQ(counterValue("quest.cache.corrupt"), corrupt + 1);
    EXPECT_FALSE(fs::exists(cache.entryPath(key_b)));
    // The genuine entry is untouched.
    EXPECT_TRUE(cache.load(key_a).has_value());
}

TEST(SynthesisCache, GcEvictsOldestFirst)
{
    TempDir tmp;
    // maxBytes = 0: no automatic eviction during the setup stores.
    SynthesisCache cache({.dir = tmp.path.string(), .maxBytes = 0});
    std::mt19937_64 rng(31);

    const std::string keys[] = {keyFor("g0"), keyFor("g1"), keyFor("g2")};
    for (const auto &key : keys)
        cache.store(key, makeOutput(rng));

    // Stagger mtimes explicitly (store order is not reliable at
    // filesystem timestamp granularity): g1 oldest, then g0, g2 newest.
    // QUEST_ANALYZE_OK(determinism.clock, determinism.fs-order): staging GC mtime inputs
    const auto now = fs::file_time_type::clock::now();
    using std::chrono::hours;
    // QUEST_ANALYZE_OK(determinism.fs-order): staging GC mtime inputs
    fs::last_write_time(cache.entryPath(keys[1]), now - hours(2));
    // QUEST_ANALYZE_OK(determinism.fs-order): staging GC mtime inputs
    fs::last_write_time(cache.entryPath(keys[0]), now - hours(1));
    // QUEST_ANALYZE_OK(determinism.fs-order): staging GC mtime inputs
    fs::last_write_time(cache.entryPath(keys[2]), now);

    const uint64_t total = cache.stats().bytes;
    const uint64_t newest = fs::file_size(cache.entryPath(keys[2]));
    const uint64_t evicted_before = counterValue("quest.cache.evict");

    // Asking for just the newest entry's size must drop the two
    // older ones.
    EXPECT_EQ(cache.gc(newest), 2u);
    EXPECT_EQ(counterValue("quest.cache.evict"), evicted_before + 2);
    EXPECT_FALSE(fs::exists(cache.entryPath(keys[0])));
    EXPECT_FALSE(fs::exists(cache.entryPath(keys[1])));
    EXPECT_TRUE(fs::exists(cache.entryPath(keys[2])));

    // A target above the current size evicts nothing.
    EXPECT_EQ(cache.gc(total), 0u);
}

TEST(SynthesisCache, StoresStayUnderTheSizeBudget)
{
    TempDir tmp;
    std::mt19937_64 rng(32);

    // Find a typical entry size, then budget for about two entries.
    SynthesisCache probe({.dir = tmp.path.string(), .maxBytes = 0});
    probe.store(keyFor("probe"), makeOutput(rng));
    const uint64_t entry_size = probe.stats().bytes;
    probe.clear();

    SynthesisCache cache({.dir = tmp.path.string(),
                          .maxBytes = 3 * entry_size,
                          .gcHysteresis = 0.5});
    for (int i = 0; i < 12; ++i)
        cache.store(keyFor("budget-" + std::to_string(i)),
                    makeOutput(rng));
    EXPECT_LE(cache.stats().bytes, 3 * entry_size);
    EXPECT_GE(cache.stats().entries, 1u);
}

TEST(SynthesisCache, ClearRemovesEverything)
{
    TempDir tmp;
    SynthesisCache cache({.dir = tmp.path.string()});
    std::mt19937_64 rng(33);
    for (int i = 0; i < 4; ++i)
        cache.store(keyFor("clear-" + std::to_string(i)),
                    makeOutput(rng));
    EXPECT_EQ(cache.clear(), 4u);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(SynthesisCache, VerifyAllFlagsAndRemovesDamage)
{
    TempDir tmp;
    SynthesisCache cache({.dir = tmp.path.string()});
    std::mt19937_64 rng(34);

    const std::string good_key = keyFor("audit-good");
    const std::string bad_key = keyFor("audit-bad");
    cache.store(good_key, makeOutput(rng));
    cache.store(bad_key, makeOutput(rng));

    EXPECT_TRUE(cache.verifyAll(false).clean());

    auto bytes = readAll(cache.entryPath(bad_key));
    bytes.back() ^= 0xff;
    writeAll(cache.entryPath(bad_key), bytes);

    const auto report = cache.verifyAll(false);
    EXPECT_EQ(report.ok, 1u);
    ASSERT_EQ(report.corrupt.size(), 1u);
    EXPECT_TRUE(fs::exists(cache.entryPath(bad_key)));

    const auto removing = cache.verifyAll(true);
    EXPECT_EQ(removing.corrupt.size(), 1u);
    EXPECT_FALSE(fs::exists(cache.entryPath(bad_key)));
    EXPECT_TRUE(cache.verifyAll(false).clean());
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(SynthesisCache, ConcurrentWritersNeverProduceATornEntry)
{
    TempDir tmp;
    std::mt19937_64 rng(41);

    // Deterministic shared payloads, derived identically in parent
    // and children.
    constexpr int kKeys = 4;
    std::vector<std::string> keys;
    std::vector<SynthOutput> outputs;
    for (int k = 0; k < kKeys; ++k) {
        keys.push_back(keyFor("race-" + std::to_string(k)));
        std::mt19937_64 key_rng(1000 + k);
        outputs.push_back(makeOutput(key_rng));
    }

    constexpr int kWriters = 4;
    std::vector<pid_t> children;
    for (int w = 0; w < kWriters; ++w) {
        const pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: hammer the shared directory. Any parse failure
            // of a loaded entry would surface as a miss (never a
            // crash); since all writers store identical bytes per
            // key, every successful load must round-trip exactly.
            SynthesisCache mine({.dir = tmp.path.string()});
            bool ok = true;
            for (int iter = 0; iter < 50 && ok; ++iter) {
                const int k = (iter + w) % kKeys;
                mine.store(keys[k], outputs[k]);
                const auto loaded = mine.load(keys[k]);
                if (loaded) {
                    ok = loaded->candidates.size() ==
                             outputs[k].candidates.size() &&
                         loaded->bestIndex == outputs[k].bestIndex;
                }
            }
            _exit(ok ? 0 : 1);
        }
        children.push_back(pid);
    }

    for (pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
            << "writer " << pid << " failed";
    }

    // After the dust settles every entry is whole and loadable.
    SynthesisCache cache({.dir = tmp.path.string()});
    EXPECT_TRUE(cache.verifyAll(false).clean());
    EXPECT_EQ(cache.stats().entries, static_cast<uint64_t>(kKeys));
    for (int k = 0; k < kKeys; ++k) {
        const auto loaded = cache.load(keys[k]);
        ASSERT_TRUE(loaded.has_value());
        expectSameOutput(outputs[k], *loaded);
    }
}

} // namespace
} // namespace quest::cache
