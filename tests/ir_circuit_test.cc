/**
 * @file
 * Unit tests for the Circuit container and circuitUnitary.
 */

#include <gtest/gtest.h>

#include <numbers>

#include "ir/circuit.hh"
#include "linalg/distance.hh"
#include "linalg/embed.hh"
#include "util/rng.hh"

namespace quest {
namespace {

constexpr double pi = std::numbers::pi;

Circuit
randomNativeCircuit(int n, int gates, uint64_t seed)
{
    Rng rng(seed);
    Circuit c(n);
    for (int i = 0; i < gates; ++i) {
        if (n >= 2 && rng.bernoulli(0.4)) {
            int a = static_cast<int>(rng.uniformInt(n));
            int b = static_cast<int>(rng.uniformInt(n));
            if (a == b)
                b = (b + 1) % n;
            c.append(Gate::cx(a, b));
        } else {
            c.append(Gate::u3(static_cast<int>(rng.uniformInt(n)),
                              rng.uniform(-pi, pi), rng.uniform(-pi, pi),
                              rng.uniform(-pi, pi)));
        }
    }
    return c;
}

TEST(Circuit, AppendValidatesWires)
{
    Circuit c(2);
    EXPECT_DEATH(c.append(Gate::h(2)), "wire");
    EXPECT_DEATH(c.append(Gate::h(-1)), "wire");
}

TEST(Circuit, Counts)
{
    Circuit c(3);
    c.append(Gate::h(0));
    c.append(Gate::cx(0, 1));
    c.append(Gate::cx(1, 2));
    c.append(Gate::rzz(0, 2, 0.5));
    c.append(Gate::barrier({0, 1, 2}));
    c.append(Gate::measure(0));
    EXPECT_EQ(c.gateCount(), 4u);
    EXPECT_EQ(c.cnotCount(), 2u);
    EXPECT_EQ(c.twoQubitGateCount(), 3u);
    EXPECT_EQ(c.cnotEquivalentCount(), 4u);  // 1 + 1 + 2
    EXPECT_TRUE(c.hasMeasurements());
}

TEST(Circuit, DepthSerialVsParallel)
{
    Circuit serial(2);
    serial.append(Gate::h(0));
    serial.append(Gate::h(0));
    serial.append(Gate::h(0));
    EXPECT_EQ(serial.depth(), 3u);

    Circuit parallel(3);
    parallel.append(Gate::h(0));
    parallel.append(Gate::h(1));
    parallel.append(Gate::h(2));
    EXPECT_EQ(parallel.depth(), 1u);

    Circuit mixed(3);
    mixed.append(Gate::h(0));
    mixed.append(Gate::cx(0, 1));
    mixed.append(Gate::h(2));
    EXPECT_EQ(mixed.depth(), 2u);
}

TEST(Circuit, DepthIgnoresPseudoOps)
{
    Circuit c(2);
    c.append(Gate::h(0));
    c.append(Gate::barrier({0, 1}));
    c.append(Gate::measure(0));
    EXPECT_EQ(c.depth(), 1u);
}

TEST(Circuit, EraseAndReplace)
{
    Circuit c(2);
    c.append(Gate::h(0));
    c.append(Gate::x(1));
    c.replace(1, Gate::y(1));
    EXPECT_EQ(c[1].type, GateType::Y);
    c.erase(0);
    EXPECT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0].type, GateType::Y);
}

TEST(Circuit, InverseCancelsToIdentity)
{
    Circuit c = randomNativeCircuit(3, 20, 5);
    Circuit inv = c.inverse();
    Circuit both(3);
    both.appendCircuit(c);
    both.appendCircuit(inv);
    Matrix u = circuitUnitary(both);
    EXPECT_NEAR(hsDistance(u, Matrix::identity(8)), 0.0, 1e-7);
}

TEST(Circuit, InverseReversesOrder)
{
    Circuit c(2);
    c.append(Gate::h(0));
    c.append(Gate::cx(0, 1));
    Circuit inv = c.inverse();
    EXPECT_EQ(inv[0].type, GateType::CX);
    EXPECT_EQ(inv[1].type, GateType::H);
}

TEST(Circuit, RemappedActsOnNewWires)
{
    Circuit c(2);
    c.append(Gate::cx(0, 1));
    Circuit r = c.remapped({2, 0}, 3);
    EXPECT_EQ(r.numQubits(), 3);
    EXPECT_EQ(r[0].qubits[0], 2);
    EXPECT_EQ(r[0].qubits[1], 0);
}

TEST(Circuit, RemapPreservesSemantics)
{
    // CX(0,1) remapped by {1,0} equals CX(1,0) directly.
    Circuit c(2);
    c.append(Gate::cx(0, 1));
    Circuit r = c.remapped({1, 0}, 2);
    Circuit direct(2);
    direct.append(Gate::cx(1, 0));
    EXPECT_TRUE(circuitUnitary(r).approxEqual(circuitUnitary(direct),
                                              1e-12));
}

TEST(Circuit, AppendCircuitComposesUnitaries)
{
    Circuit a = randomNativeCircuit(2, 8, 7);
    Circuit b = randomNativeCircuit(2, 8, 9);
    Circuit ab(2);
    ab.appendCircuit(a);
    ab.appendCircuit(b);
    Matrix expected = circuitUnitary(b) * circuitUnitary(a);
    EXPECT_TRUE(circuitUnitary(ab).approxEqual(expected, 1e-10));
}

TEST(Circuit, ActiveQubits)
{
    Circuit c(5);
    c.append(Gate::h(1));
    c.append(Gate::cx(3, 1));
    std::vector<int> active = c.activeQubits();
    EXPECT_EQ(active, (std::vector<int>{1, 3}));
}

TEST(Circuit, WithoutPseudoOps)
{
    Circuit c(2);
    c.append(Gate::h(0));
    c.append(Gate::barrier({0, 1}));
    c.append(Gate::measure(1));
    Circuit clean = c.withoutPseudoOps();
    EXPECT_EQ(clean.size(), 1u);
    EXPECT_FALSE(clean.hasMeasurements());
}

TEST(CircuitUnitary, EmptyCircuitIsIdentity)
{
    Circuit c(3);
    EXPECT_TRUE(circuitUnitary(c).approxEqual(Matrix::identity(8)));
}

TEST(CircuitUnitary, BellCircuit)
{
    Circuit c(2);
    c.append(Gate::h(0));
    c.append(Gate::cx(0, 1));
    Matrix u = circuitUnitary(c);
    // Column 0 should be the Bell state (|00> + |11>)/sqrt(2).
    double s = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(u(0, 0) - Complex(s, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(u(3, 0) - Complex(s, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(u(1, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(u(2, 0)), 0.0, 1e-12);
}

TEST(CircuitUnitary, GateOrderIsLeftToRight)
{
    // X then H on one qubit: U = H * X.
    Circuit c(1);
    c.append(Gate::x(0));
    c.append(Gate::h(0));
    Matrix expected =
        gateMatrix(Gate::h(0)) * gateMatrix(Gate::x(0));
    EXPECT_TRUE(circuitUnitary(c).approxEqual(expected, 1e-12));
}

TEST(CircuitUnitary, IsAlwaysUnitary)
{
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        Circuit c = randomNativeCircuit(3, 15, seed);
        EXPECT_TRUE(circuitUnitary(c).isUnitary(1e-9));
    }
}

TEST(Circuit, DefaultConstructedIsPlaceholder)
{
    Circuit c;
    EXPECT_EQ(c.numQubits(), 0);
    EXPECT_TRUE(c.empty());
    Circuit real(2);
    real.append(Gate::h(0));
    c = real;
    EXPECT_EQ(c.numQubits(), 2);
}

} // namespace
} // namespace quest
