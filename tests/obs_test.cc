/**
 * @file
 * Tests for the observability layer: scoped-span tracing, the metrics
 * registry, the Chrome-trace exporter and the span-attribution stats.
 *
 * The trace session and metrics registry are process-global; every
 * trace test starts a fresh session (which clears prior events) and
 * metric tests use names unique to this file.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "obs/chrome_trace.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "resilience/thread_pool.hh"

namespace quest::obs {
namespace {

/** Spin until the monotonic trace clock has visibly advanced, so
 *  nested spans get strictly ordered timestamps. */
void
tick()
{
    const int64_t start = traceNowNs();
    while (traceNowNs() == start) {
    }
}

class TraceFixture : public ::testing::Test
{
  protected:
    void SetUp() override { TraceSession::global().start(); }
    void TearDown() override { TraceSession::global().stop(); }
};

TEST_F(TraceFixture, RecordsNestingDepthAndOrdering)
{
    {
        QUEST_TRACE_SCOPE("outer");
        tick();
        {
            QUEST_TRACE_SCOPE("inner");
            tick();
        }
        tick();
        {
            QUEST_TRACE_SCOPE("inner2");
            tick();
        }
        tick();
    }
    auto events = TraceSession::global().collect();
    ASSERT_EQ(events.size(), 3u);

    // collect() sorts parents before children.
    EXPECT_STREQ(events[0].name, "outer");
    EXPECT_STREQ(events[1].name, "inner");
    EXPECT_STREQ(events[2].name, "inner2");

    EXPECT_EQ(events[0].depth, 0u);
    EXPECT_EQ(events[1].depth, 1u);
    EXPECT_EQ(events[2].depth, 1u);
    EXPECT_EQ(events[0].tid, events[1].tid);

    // Children are contained in the parent interval and disjoint.
    const auto &outer = events[0];
    for (size_t i = 1; i < events.size(); ++i) {
        EXPECT_GE(events[i].startNs, outer.startNs);
        EXPECT_LE(events[i].startNs + events[i].durNs,
                  outer.startNs + outer.durNs);
    }
    EXPECT_GE(events[2].startNs, events[1].startNs + events[1].durNs);
}

TEST_F(TraceFixture, DisabledSessionRecordsNothing)
{
    TraceSession::global().stop();
    {
        QUEST_TRACE_SCOPE("ignored");
        tick();
    }
    EXPECT_TRUE(TraceSession::global().collect().empty());
}

TEST_F(TraceFixture, StartClearsPreviousEvents)
{
    {
        QUEST_TRACE_SCOPE("stale");
    }
    ASSERT_EQ(TraceSession::global().collect().size(), 1u);
    TraceSession::global().start();
    EXPECT_TRUE(TraceSession::global().collect().empty());
    EXPECT_EQ(TraceSession::global().droppedEvents(), 0u);
}

TEST(TraceBufferTest, DropsInsteadOfWrapping)
{
    TraceBuffer buffer(7);
    const size_t extra = 5;
    for (size_t i = 0; i < TraceBuffer::kCapacity + extra; ++i)
        buffer.record("x", 0, static_cast<int64_t>(i), 1);
    EXPECT_EQ(buffer.size(), TraceBuffer::kCapacity);
    EXPECT_EQ(buffer.dropped(), extra);

    std::vector<TraceEvent> events;
    buffer.snapshot(events);
    ASSERT_EQ(events.size(), TraceBuffer::kCapacity);
    // The earliest records survive; late ones are the dropped ones.
    EXPECT_EQ(events.front().startNs, 0);
    EXPECT_EQ(events.back().startNs,
              static_cast<int64_t>(TraceBuffer::kCapacity - 1));
    EXPECT_EQ(events.front().tid, 7u);

    buffer.resetCounts();
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_EQ(buffer.dropped(), 0u);
}

TEST_F(TraceFixture, ThreadPoolStress)
{
    // Many workers record spans while the main thread concurrently
    // collects: exercises the single-writer/any-reader contract the
    // tsan preset checks.
    static auto &stress_counter =
        MetricsRegistry::global().counter("obs_test.stress");
    stress_counter.reset();

    std::atomic<bool> done{false};
    std::thread reader([&] {
        while (!done.load(std::memory_order_relaxed)) {
            auto events = TraceSession::global().collect();
            for (const TraceEvent &e : events)
                EXPECT_GE(e.durNs, 0);
        }
    });

    constexpr size_t kTasks = 4096;
    {
        ThreadPool pool(8);
        pool.parallelFor(kTasks, [](size_t) {
            QUEST_TRACE_SCOPE("stress.outer");
            {
                QUEST_TRACE_SCOPE("stress.inner");
                stress_counter.increment();
            }
        });
    }
    done.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_EQ(stress_counter.value(), kTasks);
    // Every span was either published or counted as dropped.
    auto events = TraceSession::global().collect();
    EXPECT_EQ(events.size() + TraceSession::global().droppedEvents(),
              2 * kTasks);
}

TEST(CounterTest, AddAndReset)
{
    static auto &c = MetricsRegistry::global().counter("obs_test.c");
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    c.increment();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndAdd)
{
    static auto &g = MetricsRegistry::global().gauge("obs_test.g");
    g.set(-3);
    EXPECT_EQ(g.value(), -3);
    g.add(5);
    EXPECT_EQ(g.value(), 2);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(HistogramTest, BucketsAndSummary)
{
    static auto &h =
        MetricsRegistry::global().histogram("obs_test.h");
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);

    for (uint64_t v : {0u, 1u, 2u, 3u, 4u, 100u})
        h.record(v);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.sum(), 110u);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 100u);
    EXPECT_NEAR(h.mean(), 110.0 / 6.0, 1e-12);

    // Bucket b holds values of bit width b.
    EXPECT_EQ(Histogram::bucketIndex(0), 0);
    EXPECT_EQ(Histogram::bucketIndex(1), 1);
    EXPECT_EQ(Histogram::bucketIndex(2), 2);
    EXPECT_EQ(Histogram::bucketIndex(3), 2);
    EXPECT_EQ(Histogram::bucketIndex(4), 3);
    EXPECT_EQ(Histogram::bucketUpperBound(3), 7u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 2u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.bucketCount(7), 1u);  // 100 has bit width 7

    // Quantiles are bucket-resolution upper bounds, clamped to max.
    EXPECT_EQ(h.quantile(0.5), 3u);
    EXPECT_EQ(h.quantile(1.0), 100u);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
}

TEST(MetricsRegistryTest, HandlesAreStable)
{
    auto &a = MetricsRegistry::global().counter("obs_test.stable");
    auto &b = MetricsRegistry::global().counter("obs_test.stable");
    EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistryTest, SnapshotContainsRegisteredMetrics)
{
    MetricsRegistry::global().counter("obs_test.snap").add(9);
    MetricsRegistry::global().gauge("obs_test.snap_g").set(-1);
    MetricsRegistry::global().histogram("obs_test.snap_h").record(8);

    bool saw_counter = false, saw_gauge = false, saw_hist = false;
    for (const MetricSnapshot &m :
         MetricsRegistry::global().snapshot()) {
        if (m.name == "obs_test.snap") {
            saw_counter = true;
            EXPECT_EQ(m.kind, MetricKind::Counter);
            EXPECT_EQ(m.count, 9u);
        } else if (m.name == "obs_test.snap_g") {
            saw_gauge = true;
            EXPECT_EQ(m.kind, MetricKind::Gauge);
            EXPECT_EQ(m.gaugeValue, -1);
        } else if (m.name == "obs_test.snap_h") {
            saw_hist = true;
            EXPECT_EQ(m.kind, MetricKind::Histogram);
            EXPECT_EQ(m.count, 1u);
            EXPECT_EQ(m.max, 8u);
        }
    }
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_gauge);
    EXPECT_TRUE(saw_hist);
    EXPECT_GT(MetricsRegistry::global().table().rows(), 0u);
}

TEST(MetricsRegistryTest, KindMismatchPanics)
{
    MetricsRegistry::global().counter("obs_test.kind");
    EXPECT_DEATH(MetricsRegistry::global().gauge("obs_test.kind"),
                 "obs_test.kind");
}

TEST(JsonWriterTest, EscapesAndNests)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("s").value("a\"b\\c\n\t");
    w.key("arr").beginArray().value(1).value(2.5).value(true).endArray();
    w.key("neg").value(int64_t{-7});
    w.endObject();
    EXPECT_EQ(os.str(),
              "{\"s\":\"a\\\"b\\\\c\\n\\t\","
              "\"arr\":[1,2.5,true],\"neg\":-7}");
}

TEST(ChromeTraceTest, GoldenFormat)
{
    std::vector<TraceEvent> events = {
        {"quest.pipeline", 0, 0, 1000, 250500},
        {"quest.partition", 0, 1, 2000, 10250},
        {"block", 3, 0, 5000, 1000},
    };
    std::ostringstream os;
    writeChromeTrace(os, events);
    EXPECT_EQ(os.str(),
              "[\n"
              "{\"name\":\"quest.pipeline\",\"cat\":\"quest\","
              "\"ph\":\"X\",\"ts\":1.000,\"dur\":250.500,\"pid\":1,"
              "\"tid\":0,\"args\":{\"depth\":0}},\n"
              "{\"name\":\"quest.partition\",\"cat\":\"quest\","
              "\"ph\":\"X\",\"ts\":2.000,\"dur\":10.250,\"pid\":1,"
              "\"tid\":0,\"args\":{\"depth\":1}},\n"
              "{\"name\":\"block\",\"cat\":\"quest\",\"ph\":\"X\","
              "\"ts\":5.000,\"dur\":1.000,\"pid\":1,\"tid\":3,"
              "\"args\":{\"depth\":0}}\n"
              "]\n");
}

TEST(ChromeTraceTest, EmptyTraceIsAnEmptyArray)
{
    std::ostringstream os;
    writeChromeTrace(os, {});
    EXPECT_EQ(os.str(), "[\n\n]\n");
}

TEST(StatsTest, AggregatesAndCoverage)
{
    // Root of 100us with two direct children covering 90us total;
    // the grandchild and other-thread spans must not count.
    std::vector<TraceEvent> events = {
        {"root", 0, 0, 0, 100000},
        {"a", 0, 1, 0, 60000},
        {"a.inner", 0, 2, 1000, 5000},
        {"b", 0, 1, 60000, 30000},
        {"other", 1, 1, 0, 90000},
    };
    EXPECT_NEAR(phaseCoverage(events, "root"), 0.9, 1e-12);
    EXPECT_EQ(phaseCoverage(events, "absent"), 0.0);

    auto stats = aggregateSpans(events);
    ASSERT_EQ(stats.size(), 5u);
    // Sorted by total time descending.
    EXPECT_EQ(stats[0].name, "root");
    EXPECT_EQ(stats[0].count, 1u);
    EXPECT_NEAR(stats[0].totalMs, 0.1, 1e-12);

    Table t = spanStatsTable(events, "root");
    EXPECT_EQ(t.rows(), 5u);
    ASSERT_EQ(t.headerRow().size(), 4u);
    EXPECT_EQ(t.headerRow()[3], "%of_root");
}

TEST(StatsTest, ChildClippedToRootEnd)
{
    // A child that outlives the root only counts the overlap.
    std::vector<TraceEvent> events = {
        {"root", 0, 0, 0, 100},
        {"late", 0, 1, 50, 100},
    };
    EXPECT_NEAR(phaseCoverage(events, "root"), 0.5, 1e-12);
}

} // namespace
} // namespace quest::obs
