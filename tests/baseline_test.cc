/**
 * @file
 * Qiskit-like optimizer pass tests: unitaries preserved (up to
 * phase), counts reduced on known patterns.
 */

#include <gtest/gtest.h>

#include <numbers>

#include "algos/algorithms.hh"
#include "baseline/pass_manager.hh"
#include "baseline/passes.hh"
#include "ir/lower.hh"
#include "linalg/distance.hh"
#include "sim/unitary_builder.hh"

namespace quest {
namespace {

constexpr double pi = std::numbers::pi;

TEST(SingleQubitFusion, FusesRunsIntoOneU3)
{
    Circuit c(1);
    c.append(Gate::u3(0, 0.1, 0.2, 0.3));
    c.append(Gate::u3(0, 0.4, 0.5, 0.6));
    c.append(Gate::u3(0, 0.7, 0.8, 0.9));
    Matrix before = circuitUnitary(c);

    SingleQubitFusionPass pass;
    EXPECT_TRUE(pass.run(c));
    EXPECT_EQ(c.size(), 1u);
    EXPECT_NEAR(hsDistance(before, circuitUnitary(c)), 0.0, 1e-7);
}

TEST(SingleQubitFusion, StopsAtTwoQubitGates)
{
    Circuit c(2);
    c.append(Gate::u3(0, 0.1, 0.2, 0.3));
    c.append(Gate::cx(0, 1));
    c.append(Gate::u3(0, 0.4, 0.5, 0.6));
    SingleQubitFusionPass pass;
    EXPECT_FALSE(pass.run(c));
    EXPECT_EQ(c.size(), 3u);
}

TEST(SingleQubitFusion, DropsIdentityResult)
{
    Circuit c(1);
    c.append(Gate::u3(0, 0.4, 0.1, -0.2));
    c.append(Gate::u3(0, 0.4, 0.1, -0.2).inverse());
    SingleQubitFusionPass pass;
    EXPECT_TRUE(pass.run(c));
    EXPECT_EQ(c.size(), 0u);
}

TEST(SingleQubitFusion, FusesAcrossOtherWiresGates)
{
    // A CX on other wires must not break the run on wire 2.
    Circuit c(3);
    c.append(Gate::u3(2, 0.1, 0.0, 0.0));
    c.append(Gate::cx(0, 1));
    c.append(Gate::u3(2, 0.2, 0.0, 0.0));
    SingleQubitFusionPass pass;
    EXPECT_TRUE(pass.run(c));
    EXPECT_EQ(c.size(), 2u);
}

TEST(CnotCancellation, AdjacentPairCancels)
{
    Circuit c(2);
    c.append(Gate::cx(0, 1));
    c.append(Gate::cx(0, 1));
    CnotCancellationPass pass;
    EXPECT_TRUE(pass.run(c));
    EXPECT_EQ(c.size(), 0u);
}

TEST(CnotCancellation, OppositeDirectionDoesNotCancel)
{
    Circuit c(2);
    c.append(Gate::cx(0, 1));
    c.append(Gate::cx(1, 0));
    CnotCancellationPass pass;
    EXPECT_FALSE(pass.run(c));
    EXPECT_EQ(c.size(), 2u);
}

TEST(CnotCancellation, CancelsThroughDiagonalOnControl)
{
    Circuit c(2);
    c.append(Gate::cx(0, 1));
    c.append(Gate::rz(0, 0.7));  // diagonal on control commutes
    c.append(Gate::cx(0, 1));
    Matrix before = circuitUnitary(c);
    CnotCancellationPass pass;
    EXPECT_TRUE(pass.run(c));
    EXPECT_EQ(c.cnotCount(), 0u);
    EXPECT_NEAR(hsDistance(before, circuitUnitary(c)), 0.0, 1e-7);
}

TEST(CnotCancellation, CancelsThroughXAxisOnTarget)
{
    Circuit c(2);
    c.append(Gate::cx(0, 1));
    c.append(Gate::rx(1, 0.4));  // X rotation on target commutes
    c.append(Gate::cx(0, 1));
    Matrix before = circuitUnitary(c);
    CnotCancellationPass pass;
    EXPECT_TRUE(pass.run(c));
    EXPECT_EQ(c.cnotCount(), 0u);
    EXPECT_NEAR(hsDistance(before, circuitUnitary(c)), 0.0, 1e-7);
}

TEST(CnotCancellation, BlockedByHadamardOnControl)
{
    Circuit c(2);
    c.append(Gate::cx(0, 1));
    c.append(Gate::h(0));
    c.append(Gate::cx(0, 1));
    CnotCancellationPass pass;
    EXPECT_FALSE(pass.run(c));
    EXPECT_EQ(c.cnotCount(), 2u);
}

TEST(CnotCancellation, CancelsThroughSharedControlCx)
{
    Circuit c(3);
    c.append(Gate::cx(0, 1));
    c.append(Gate::cx(0, 2));  // shares the control: commutes
    c.append(Gate::cx(0, 1));
    Matrix before = circuitUnitary(c);
    CnotCancellationPass pass;
    EXPECT_TRUE(pass.run(c));
    EXPECT_EQ(c.cnotCount(), 1u);
    EXPECT_NEAR(hsDistance(before, circuitUnitary(c)), 0.0, 1e-7);
}

TEST(IdentityRemoval, DropsZeroRotations)
{
    Circuit c(2);
    c.append(Gate::u3(0, 0.0, 0.0, 0.0));
    c.append(Gate::cx(0, 1));
    c.append(Gate::u3(1, 0.0, 2 * pi, -2 * pi));
    IdentityRemovalPass pass;
    EXPECT_TRUE(pass.run(c));
    EXPECT_EQ(c.size(), 1u);
}

TEST(PassManager, ReachesFixpoint)
{
    // A circuit that needs multiple sweeps: fusion exposes a CX pair.
    Circuit c(2);
    c.append(Gate::cx(0, 1));
    c.append(Gate::u3(1, 0.3, -0.4, 0.2));
    c.append(Gate::u3(1, -0.3, -0.2, 0.4));  // fuses to identity
    c.append(Gate::cx(0, 1));
    Matrix before = circuitUnitary(c);

    Circuit out = PassManager::standard().optimize(c);
    EXPECT_EQ(out.cnotCount(), 0u);
    EXPECT_NEAR(hsDistance(before, circuitUnitary(out)), 0.0, 1e-7);
}

class SuitePreservation : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuitePreservation, OptimizerPreservesUnitary)
{
    auto suite = algos::standardSuite();
    const auto &spec = algos::findSpec(suite, GetParam());
    Circuit baseline = lowerToNative(spec.build());
    Circuit optimized = qiskitLikeOptimize(baseline);
    EXPECT_LE(optimized.cnotCount(), baseline.cnotCount());
    EXPECT_NEAR(hsDistance(buildUnitary(baseline),
                           buildUnitary(optimized)),
                0.0, 1e-7)
        << spec.name;
}

INSTANTIATE_TEST_SUITE_P(Suite, SuitePreservation,
                         ::testing::Values("adder_4", "hlf_4", "qft_4",
                                           "tfim_4", "vqe_4", "xy_4",
                                           "qaoa_5", "heisenberg_4"));

TEST(QiskitLikeOptimize, NeverIncreasesCnots)
{
    for (const auto &spec : algos::standardSuite()) {
        if (spec.nQubits > 8)
            continue;
        Circuit baseline = lowerToNative(spec.build());
        Circuit optimized = qiskitLikeOptimize(spec.build());
        EXPECT_LE(optimized.cnotCount(), baseline.cnotCount())
            << spec.name;
    }
}

} // namespace
} // namespace quest
