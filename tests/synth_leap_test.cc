/**
 * @file
 * LEAP synthesizer tests. Synthesis settings are kept lean so the
 * suite stays fast; quality assertions are correspondingly loose.
 */

#include <gtest/gtest.h>

#include <numbers>

#include "algos/algorithms.hh"
#include "ir/lower.hh"
#include "linalg/decompose.hh"
#include "linalg/distance.hh"
#include "synth/instantiater.hh"
#include "synth/leap_synthesizer.hh"
#include "util/rng.hh"

namespace quest {
namespace {

constexpr double pi = std::numbers::pi;

SynthConfig
leanConfig()
{
    SynthConfig cfg;
    cfg.beamWidth = 1;
    cfg.inst.multistarts = 2;
    cfg.inst.lbfgs.maxIterations = 250;
    cfg.candidatesPerLevel = 4;
    cfg.maxLayers = 8;
    return cfg;
}

TEST(Instantiater, RecoversKnownAnsatzParams)
{
    Rng rng(1);
    Ansatz a = Ansatz::initialLayer(2);
    a.addLayer(0, 1);
    std::vector<double> truth(a.paramCount());
    for (double &v : truth)
        v = rng.uniform(-pi, pi);
    Matrix target = a.unitary(truth);

    InstantiaterOptions opts;
    opts.multistarts = 4;
    InstantiationResult r = instantiate(target, a, rng, opts);
    EXPECT_LT(r.distance, 1e-4);
}

TEST(Instantiater, WarmStartAtOptimumStays)
{
    Rng rng(3);
    Ansatz a = Ansatz::initialLayer(2);
    std::vector<double> truth(a.paramCount());
    for (double &v : truth)
        v = rng.uniform(-pi, pi);
    Matrix target = a.unitary(truth);

    InstantiaterOptions opts;
    opts.multistarts = 1;
    InstantiationResult r = instantiate(target, a, rng, opts, truth);
    EXPECT_LT(r.distance, 1e-6);
}

TEST(Leap, OneQubitTargetIsAnalytic)
{
    Matrix h = gateMatrix(Gate::h(0));
    LeapSynthesizer synth(leanConfig());
    SynthOutput out = synth.synthesize(h, 4);
    ASSERT_EQ(out.candidates.size(), 1u);
    EXPECT_EQ(out.best().cnotCount, 0);
    EXPECT_NEAR(out.best().distance, 0.0, 1e-7);
    EXPECT_NEAR(hsDistance(circuitUnitary(out.best().circuit), h), 0.0,
                1e-7);
}

TEST(Leap, ProductTargetNeedsNoCnots)
{
    Rng rng(5);
    Matrix u = kron(makeU3(0.3, 0.2, -0.4), makeU3(1.1, -0.7, 0.5));
    LeapSynthesizer synth(leanConfig());
    SynthOutput out = synth.synthesize(u, 4);
    const SynthCandidate &level0 = out.candidates.front();
    EXPECT_EQ(level0.cnotCount, 0);
    EXPECT_LT(level0.distance, 1e-4);
}

TEST(Leap, CnotTargetSynthesizesExactly)
{
    Matrix cx = gateMatrix(Gate::cx(0, 1));
    SynthConfig cfg = leanConfig();
    cfg.inst.multistarts = 4;
    LeapSynthesizer synth(cfg);
    SynthCandidate best = synth.synthesizeExact(cx, 1e-4, 3);
    EXPECT_LE(best.cnotCount, 1);
    EXPECT_LT(best.distance, 1e-4);
}

TEST(Leap, TwoQubitCircuitRoundTrip)
{
    // Synthesize the unitary of a small native circuit and verify
    // the result's unitary distance directly.
    Circuit c = lowerToNative(algos::tfim(2, 2));
    Matrix target = circuitUnitary(c);
    SynthConfig cfg = leanConfig();
    cfg.inst.multistarts = 4;
    LeapSynthesizer synth(cfg);
    SynthOutput out = synth.synthesize(target,
                                       static_cast<int>(c.cnotCount()));

    const SynthCandidate &best = out.best();
    EXPECT_LT(best.distance, 1e-3);
    EXPECT_LE(best.cnotCount, 3);  // any 2q unitary needs at most 3
    EXPECT_NEAR(hsDistance(circuitUnitary(best.circuit), target),
                best.distance, 1e-6);
}

TEST(Leap, CandidateMetadataIsConsistent)
{
    Circuit c = lowerToNative(algos::tfim(3, 2));
    Matrix target = circuitUnitary(c);
    LeapSynthesizer synth(leanConfig());
    SynthOutput out = synth.synthesize(target, 6);

    ASSERT_FALSE(out.candidates.empty());
    int last_cnots = -1;
    for (const SynthCandidate &cand : out.candidates) {
        EXPECT_GE(cand.cnotCount, last_cnots);  // sorted by level
        last_cnots = cand.cnotCount;
        EXPECT_EQ(cand.circuit.cnotCount(),
                  static_cast<size_t>(cand.cnotCount));
        EXPECT_NEAR(hsDistance(circuitUnitary(cand.circuit), target),
                    cand.distance, 1e-6);
    }
    // bestIndex points at the shortest exact candidate, or at the
    // minimum distance when nothing is exact.
    const SynthCandidate &best = out.best();
    if (best.distance < synth.config().exactEpsilon) {
        for (const SynthCandidate &cand : out.candidates)
            if (cand.distance < synth.config().exactEpsilon)
                EXPECT_LE(best.cnotCount, cand.cnotCount);
    } else {
        for (const SynthCandidate &cand : out.candidates)
            EXPECT_GE(cand.distance, best.distance - 1e-12);
    }
}

TEST(Leap, RespectsCnotBudget)
{
    Circuit c = lowerToNative(algos::tfim(3, 3));
    Matrix target = circuitUnitary(c);
    LeapSynthesizer synth(leanConfig());
    SynthOutput out = synth.synthesize(target, 3);
    for (const SynthCandidate &cand : out.candidates)
        EXPECT_LE(cand.cnotCount, 3);
}

TEST(Leap, DeterministicForSeed)
{
    Circuit c = lowerToNative(algos::tfim(2, 1));
    Matrix target = circuitUnitary(c);
    LeapSynthesizer synth(leanConfig());
    SynthOutput a = synth.synthesize(target, 3);
    SynthOutput b = synth.synthesize(target, 3);
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    for (size_t i = 0; i < a.candidates.size(); ++i)
        EXPECT_EQ(a.candidates[i].distance, b.candidates[i].distance);
}

TEST(Leap, ThreadedMatchesSerial)
{
    Circuit c = lowerToNative(algos::tfim(2, 2));
    Matrix target = circuitUnitary(c);
    SynthConfig serial = leanConfig();
    SynthConfig threaded = leanConfig();
    threaded.threads = 4;
    SynthOutput a = LeapSynthesizer(serial).synthesize(target, 4);
    SynthOutput b = LeapSynthesizer(threaded).synthesize(target, 4);
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    for (size_t i = 0; i < a.candidates.size(); ++i)
        EXPECT_EQ(a.candidates[i].distance, b.candidates[i].distance);
}

TEST(Leap, TopologyRestrictionRespected)
{
    Circuit c = lowerToNative(algos::tfim(3, 2));
    Matrix target = circuitUnitary(c);
    SynthConfig cfg = leanConfig();
    cfg.couplings = {{0, 1}, {1, 2}};  // line: no (0, 2) CNOTs
    LeapSynthesizer synth(cfg);
    SynthOutput out = synth.synthesize(target, 6);
    for (const SynthCandidate &cand : out.candidates) {
        for (const Gate &g : cand.circuit) {
            if (g.type != GateType::CX)
                continue;
            int lo = std::min(g.qubits[0], g.qubits[1]);
            int hi = std::max(g.qubits[0], g.qubits[1]);
            EXPECT_TRUE((lo == 0 && hi == 1) || (lo == 1 && hi == 2))
                << g.toString();
        }
    }
}

TEST(Leap, TopologyRestrictionStillSynthesizes)
{
    // A line-restricted search still finds low-distance candidates
    // for a line-structured target.
    Circuit c = lowerToNative(algos::tfim(3, 1));
    Matrix target = circuitUnitary(c);
    SynthConfig cfg = leanConfig();
    cfg.inst.multistarts = 4;
    cfg.couplings = {{0, 1}, {1, 2}};
    LeapSynthesizer synth(cfg);
    SynthOutput out = synth.synthesize(target, 6);
    EXPECT_LT(out.best().distance, 0.05);
}

TEST(Leap, SkeletonLineageRecoversOriginal)
{
    // With the skeleton hint the search contains the original CX
    // structure, so the full-budget level reaches (near-)zero
    // distance even when the generic schedules would not.
    Circuit c = lowerToNative(algos::vqe(4, 2, 31));
    Matrix target = circuitUnitary(c);
    std::vector<std::pair<int, int>> skeleton;
    for (const Gate &g : c)
        if (g.type == GateType::CX)
            skeleton.emplace_back(g.qubits[0], g.qubits[1]);

    SynthConfig cfg = leanConfig();
    cfg.inst.multistarts = 3;
    cfg.maxLayers = static_cast<int>(skeleton.size());
    LeapSynthesizer synth(cfg);
    SynthOutput out = synth.synthesize(
        target, static_cast<int>(skeleton.size()), &skeleton);
    EXPECT_LT(out.best().distance, 1e-3);
}

TEST(Leap, MaxLayersCapsExploration)
{
    Circuit c = lowerToNative(algos::tfim(3, 4));
    Matrix target = circuitUnitary(c);
    SynthConfig cfg = leanConfig();
    cfg.maxLayers = 3;
    LeapSynthesizer synth(cfg);
    SynthOutput out = synth.synthesize(target, 100);
    for (const SynthCandidate &cand : out.candidates)
        EXPECT_LE(cand.cnotCount, 3);
}

TEST(Leap, ReseedIntervalOneStillWorks)
{
    // Reseeding every level collapses the frontier to one node each
    // time (pure LEAP prefix freezing); synthesis must still make
    // progress and stay deterministic.
    Circuit c = lowerToNative(algos::tfim(2, 2));
    Matrix target = circuitUnitary(c);
    SynthConfig cfg = leanConfig();
    cfg.reseedInterval = 1;
    LeapSynthesizer synth(cfg);
    SynthOutput a = synth.synthesize(target, 4);
    SynthOutput b = synth.synthesize(target, 4);
    EXPECT_LT(a.best().distance, 0.2);
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    for (size_t i = 0; i < a.candidates.size(); ++i)
        EXPECT_EQ(a.candidates[i].distance, b.candidates[i].distance);
}

TEST(Leap, WideBeamCoversNarrowBeam)
{
    // A wider beam explores a superset of structures, so its best
    // distance can only match or improve the narrow beam's at equal
    // instantiation settings.
    Circuit c = lowerToNative(algos::tfim(2, 1));
    Matrix target = circuitUnitary(c);
    SynthConfig narrow = leanConfig();
    SynthConfig wide = leanConfig();
    wide.beamWidth = 3;
    double d_narrow =
        LeapSynthesizer(narrow).synthesize(target, 3).best().distance;
    double d_wide =
        LeapSynthesizer(wide).synthesize(target, 3).best().distance;
    EXPECT_LE(d_wide, d_narrow + 1e-6);
}

TEST(Leap, RejectsNonUnitaryTarget)
{
    Matrix bad(4, 4);
    bad(0, 0) = 2.0;
    LeapSynthesizer synth(leanConfig());
    EXPECT_DEATH(synth.synthesize(bad, 3), "unitary");
}

} // namespace
} // namespace quest
