/**
 * @file
 * L-BFGS minimizer tests on standard optimization problems.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "synth/batch/lbfgs_machine.hh"
#include "synth/lbfgs.hh"

namespace quest {
namespace {

TEST(Lbfgs, QuadraticBowl)
{
    GradObjective f = [](const std::vector<double> &x,
                         std::vector<double> *g) {
        double v = 0.0;
        if (g)
            g->resize(x.size());
        for (size_t i = 0; i < x.size(); ++i) {
            v += (x[i] - 1.0) * (x[i] - 1.0);
            if (g)
                (*g)[i] = 2.0 * (x[i] - 1.0);
        }
        return v;
    };
    LbfgsResult r = lbfgsMinimize(f, {5.0, -3.0, 0.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.value, 0.0, 1e-10);
    for (double xi : r.x)
        EXPECT_NEAR(xi, 1.0, 1e-5);
}

TEST(Lbfgs, IllConditionedQuadratic)
{
    // f = x0^2 + 1000 x1^2.
    GradObjective f = [](const std::vector<double> &x,
                         std::vector<double> *g) {
        if (g)
            *g = {2.0 * x[0], 2000.0 * x[1]};
        return x[0] * x[0] + 1000.0 * x[1] * x[1];
    };
    LbfgsResult r = lbfgsMinimize(f, {3.0, 1.0});
    EXPECT_NEAR(r.value, 0.0, 1e-8);
}

TEST(Lbfgs, Rosenbrock2d)
{
    GradObjective f = [](const std::vector<double> &x,
                         std::vector<double> *g) {
        double a = 1.0 - x[0];
        double b = x[1] - x[0] * x[0];
        if (g) {
            *g = {-2.0 * a - 400.0 * x[0] * b, 200.0 * b};
        }
        return a * a + 100.0 * b * b;
    };
    LbfgsOptions opts;
    opts.maxIterations = 2000;
    LbfgsResult r = lbfgsMinimize(f, {-1.2, 1.0}, opts);
    EXPECT_NEAR(r.x[0], 1.0, 1e-4);
    EXPECT_NEAR(r.x[1], 1.0, 1e-4);
}

TEST(Lbfgs, TrigLandscape)
{
    // Smooth periodic objective with a known minimum of -2.
    GradObjective f = [](const std::vector<double> &x,
                         std::vector<double> *g) {
        if (g)
            *g = {std::sin(x[0]), std::sin(x[1])};
        return -std::cos(x[0]) - std::cos(x[1]);
    };
    LbfgsResult r = lbfgsMinimize(f, {0.3, -0.4});
    EXPECT_NEAR(r.value, -2.0, 1e-8);
}

TEST(Lbfgs, AlreadyAtMinimum)
{
    GradObjective f = [](const std::vector<double> &x,
                         std::vector<double> *g) {
        if (g)
            *g = {2.0 * x[0]};
        return x[0] * x[0];
    };
    LbfgsResult r = lbfgsMinimize(f, {0.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.value, 0.0, 1e-12);
}

TEST(Lbfgs, EmptyParameterVector)
{
    GradObjective f = [](const std::vector<double> &,
                         std::vector<double> *) { return 7.0; };
    LbfgsResult r = lbfgsMinimize(f, {});
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.value, 7.0);
}

TEST(Lbfgs, RespectsIterationCap)
{
    GradObjective f = [](const std::vector<double> &x,
                         std::vector<double> *g) {
        double a = 1.0 - x[0];
        double b = x[1] - x[0] * x[0];
        if (g)
            *g = {-2.0 * a - 400.0 * x[0] * b, 200.0 * b};
        return a * a + 100.0 * b * b;
    };
    LbfgsOptions opts;
    opts.maxIterations = 3;
    LbfgsResult r = lbfgsMinimize(f, {-1.2, 1.0}, opts);
    EXPECT_LE(r.iterations, 3);
}

TEST(Lbfgs, MonotoneNonIncreasing)
{
    // The line search enforces sufficient decrease, so the final
    // value can never exceed the starting value.
    GradObjective f = [](const std::vector<double> &x,
                         std::vector<double> *g) {
        double v = 0.0;
        if (g)
            g->resize(x.size());
        for (size_t i = 0; i < x.size(); ++i) {
            v += std::pow(x[i], 4) - 3.0 * x[i] * x[i] + x[i];
            if (g)
                (*g)[i] = 4.0 * std::pow(x[i], 3) - 6.0 * x[i] + 1.0;
        }
        return v;
    };
    std::vector<double> x0 = {2.0, -2.0, 0.5};
    std::vector<double> dummy;
    double f0 = f(x0, &dummy);
    LbfgsResult r = lbfgsMinimize(f, x0);
    EXPECT_LE(r.value, f0);
}

// ---------------------------------------------------------------------
// LbfgsMachine (synth/batch/lbfgs_machine.hh) is the inverted-control
// transcription of lbfgsMinimize that the batched engine steps in
// lane lockstep. Fed the same objective it must visit the same points
// and produce the SAME LbfgsResult, bit for bit — the batched
// engine's determinism guarantee rests on this.

struct MachineRun
{
    LbfgsResult result;
    int evaluations;
};

/** Drive a machine to completion with a serial objective. */
MachineRun
driveMachine(const GradObjective &objective, std::vector<double> x0,
             const LbfgsOptions &options = {})
{
    synth::LbfgsMachine machine(std::move(x0), options);
    std::vector<double> grad;
    while (!machine.done()) {
        const double f = objective(machine.queryPoint(), &grad);
        machine.consume(f, grad);
    }
    return {machine.takeResult(), machine.evaluations()};
}

/** Run both engines and require bitwise-identical outcomes. */
void
expectMachineMatchesMinimize(const GradObjective &objective,
                             const std::vector<double> &x0,
                             const LbfgsOptions &options = {})
{
    int serial_evals = 0;
    GradObjective counted = [&](const std::vector<double> &x,
                                std::vector<double> *g) {
        ++serial_evals;
        return objective(x, g);
    };
    const LbfgsResult serial = lbfgsMinimize(counted, x0, options);
    const MachineRun machine = driveMachine(objective, x0, options);

    EXPECT_EQ(machine.result.value, serial.value);
    EXPECT_EQ(machine.result.iterations, serial.iterations);
    EXPECT_EQ(machine.result.converged, serial.converged);
    EXPECT_EQ(machine.result.stopped, serial.stopped);
    EXPECT_EQ(machine.evaluations, serial_evals);
    ASSERT_EQ(machine.result.x.size(), serial.x.size());
    for (size_t i = 0; i < serial.x.size(); ++i)
        EXPECT_EQ(machine.result.x[i], serial.x[i]) << "i=" << i;
}

TEST(LbfgsMachine, MatchesMinimizeOnQuadraticBowl)
{
    GradObjective f = [](const std::vector<double> &x,
                         std::vector<double> *g) {
        double v = 0.0;
        if (g)
            g->resize(x.size());
        for (size_t i = 0; i < x.size(); ++i) {
            v += (x[i] - 1.0) * (x[i] - 1.0);
            if (g)
                (*g)[i] = 2.0 * (x[i] - 1.0);
        }
        return v;
    };
    expectMachineMatchesMinimize(f, {5.0, -3.0, 0.0});
}

TEST(LbfgsMachine, MatchesMinimizeOnIllConditionedQuadratic)
{
    GradObjective f = [](const std::vector<double> &x,
                         std::vector<double> *g) {
        if (g)
            *g = {2.0 * x[0], 2000.0 * x[1]};
        return x[0] * x[0] + 1000.0 * x[1] * x[1];
    };
    expectMachineMatchesMinimize(f, {3.0, 1.0});
}

TEST(LbfgsMachine, MatchesMinimizeOnRosenbrock)
{
    // Long run: hundreds of iterations, many line-search rejections
    // and curvature updates — exercises every branch of the
    // transcription.
    GradObjective f = [](const std::vector<double> &x,
                         std::vector<double> *g) {
        double a = 1.0 - x[0];
        double b = x[1] - x[0] * x[0];
        if (g)
            *g = {-2.0 * a - 400.0 * x[0] * b, 200.0 * b};
        return a * a + 100.0 * b * b;
    };
    LbfgsOptions opts;
    opts.maxIterations = 2000;
    expectMachineMatchesMinimize(f, {-1.2, 1.0}, opts);
}

TEST(LbfgsMachine, MatchesMinimizeOnTrigLandscape)
{
    GradObjective f = [](const std::vector<double> &x,
                         std::vector<double> *g) {
        if (g)
            *g = {std::sin(x[0]), std::sin(x[1])};
        return -std::cos(x[0]) - std::cos(x[1]);
    };
    expectMachineMatchesMinimize(f, {0.3, -0.4});
}

TEST(LbfgsMachine, MatchesMinimizeAtTheMinimum)
{
    GradObjective f = [](const std::vector<double> &x,
                         std::vector<double> *g) {
        if (g)
            *g = {2.0 * x[0]};
        return x[0] * x[0];
    };
    expectMachineMatchesMinimize(f, {0.0});
}

TEST(LbfgsMachine, MatchesMinimizeOnEmptyParameterVector)
{
    GradObjective f = [](const std::vector<double> &,
                         std::vector<double> *) { return 7.0; };
    expectMachineMatchesMinimize(f, {});
}

TEST(LbfgsMachine, MatchesMinimizeUnderIterationCap)
{
    GradObjective f = [](const std::vector<double> &x,
                         std::vector<double> *g) {
        double a = 1.0 - x[0];
        double b = x[1] - x[0] * x[0];
        if (g)
            *g = {-2.0 * a - 400.0 * x[0] * b, 200.0 * b};
        return a * a + 100.0 * b * b;
    };
    for (int cap : {0, 1, 3}) {
        LbfgsOptions opts;
        opts.maxIterations = cap;
        expectMachineMatchesMinimize(f, {-1.2, 1.0}, opts);
    }
}

TEST(LbfgsMachine, MatchesMinimizeOnNonFiniteObjective)
{
    // A diverged start: both engines must report value = inf without
    // touching the point.
    GradObjective f = [](const std::vector<double> &x,
                         std::vector<double> *g) {
        if (g)
            g->assign(x.size(), 0.0);
        return std::numeric_limits<double>::quiet_NaN();
    };
    expectMachineMatchesMinimize(f, {1.0, 2.0});
}

} // namespace
} // namespace quest
