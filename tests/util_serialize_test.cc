#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>

#include "util/serialize.hh"
#include "util/sha256.hh"

namespace quest {
namespace {

TEST(ByteWriter, EncodesLittleEndian)
{
    ByteWriter w;
    w.u8(0xab);
    w.u16(0x1234);
    w.u32(0xdeadbeef);
    w.u64(0x0102030405060708ull);

    const std::vector<uint8_t> expected = {
        0xab,                                           // u8
        0x34, 0x12,                                     // u16
        0xef, 0xbe, 0xad, 0xde,                         // u32
        0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // u64
    };
    EXPECT_EQ(w.buffer(), expected);
}

TEST(ByteRoundTrip, AllPrimitiveTypes)
{
    ByteWriter w;
    w.u8(200);
    w.u16(65000);
    w.u32(4000000000u);
    w.u64(0xffffffffffffffffull);
    w.i32(-123456789);
    w.i64(-9000000000000000000ll);
    w.f64(3.141592653589793);
    w.str("hello");

    ByteReader r(w.buffer());
    EXPECT_EQ(r.u8(), 200);
    EXPECT_EQ(r.u16(), 65000);
    EXPECT_EQ(r.u32(), 4000000000u);
    EXPECT_EQ(r.u64(), 0xffffffffffffffffull);
    EXPECT_EQ(r.i32(), -123456789);
    EXPECT_EQ(r.i64(), -9000000000000000000ll);
    EXPECT_EQ(r.f64(), 3.141592653589793);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_TRUE(r.atEnd());
}

TEST(ByteRoundTrip, DoublesAreBitExact)
{
    // The cache's byte-identical-replay guarantee rests on doubles
    // surviving a round trip exactly, including the values plain
    // decimal formatting mangles.
    const double values[] = {
        0.0,
        -0.0,
        1.0 / 3.0,
        std::numeric_limits<double>::min(),
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
    };
    for (double v : values) {
        ByteWriter w;
        w.f64(v);
        ByteReader r(w.buffer());
        const double back = r.f64();
        uint64_t a, b;
        std::memcpy(&a, &v, sizeof(a));
        std::memcpy(&b, &back, sizeof(b));
        EXPECT_EQ(a, b) << "value " << v;
    }
}

TEST(ByteRoundTrip, RandomizedFuzz)
{
    std::mt19937_64 rng(7);
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<uint64_t> u64s(rng() % 8);
        std::vector<double> f64s(rng() % 8);
        for (auto &v : u64s)
            v = rng();
        for (auto &v : f64s) {
            uint64_t bits = rng();
            std::memcpy(&v, &bits, sizeof(v));
        }

        ByteWriter w;
        for (auto v : u64s)
            w.u64(v);
        for (auto v : f64s)
            w.f64(v);

        ByteReader r(w.buffer());
        for (auto v : u64s)
            EXPECT_EQ(r.u64(), v);
        for (auto v : f64s) {
            const double back = r.f64();
            EXPECT_EQ(std::memcmp(&back, &v, sizeof(v)), 0);
        }
        EXPECT_TRUE(r.atEnd());
    }
}

TEST(ByteReader, ThrowsOnTruncation)
{
    ByteWriter w;
    w.u32(42);
    ByteReader r(w.buffer());
    EXPECT_EQ(r.u16(), 42);
    EXPECT_THROW(r.u32(), SerializeError);

    ByteReader empty(nullptr, 0);
    EXPECT_THROW(empty.u8(), SerializeError);
    EXPECT_TRUE(empty.atEnd());
}

TEST(ByteReader, ThrowsOnOversizedString)
{
    // A hostile length prefix must fail the bounds check, not drive a
    // giant allocation.
    ByteWriter w;
    w.u32(0xffffffffu);
    w.u8('x');
    ByteReader r(w.buffer());
    EXPECT_THROW(r.str(), SerializeError);
}

TEST(Fnv1a64, KnownVectors)
{
    // Reference values from the FNV specification.
    EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171f73967e8ull);
}

TEST(Fnv1a64, SeedChaining)
{
    // Hashing in two chunks with seed chaining equals one shot.
    const char data[] = "synthesis-cache-payload";
    const size_t n = sizeof(data) - 1;
    const uint64_t whole = fnv1a64(data, n);
    const uint64_t part = fnv1a64(data + 5, n - 5,
                                  fnv1a64(data, 5));
    EXPECT_EQ(whole, part);
}

TEST(ToHex, RendersLowercase)
{
    const uint8_t bytes[] = {0x00, 0xff, 0x1a, 0x2b};
    EXPECT_EQ(toHex(bytes, sizeof(bytes)), "00ff1a2b");
    EXPECT_EQ(toHex(bytes, 0), "");
}

TEST(Sha256, FipsVectors)
{
    EXPECT_EQ(Sha256::hexDigest(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855");
    EXPECT_EQ(Sha256::hexDigest("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
    EXPECT_EQ(Sha256::hexDigest("abcdbcdecdefdefgefghfghighijhijkijkljkl"
                                "mklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
              "19db06c1");
}

TEST(Sha256, ChunkedUpdatesMatchOneShot)
{
    std::mt19937_64 rng(13);
    std::vector<uint8_t> data(1000);
    for (auto &b : data)
        b = static_cast<uint8_t>(rng());

    const auto whole = Sha256::hash(data.data(), data.size());

    for (size_t chunk : {1u, 7u, 63u, 64u, 65u, 500u}) {
        Sha256 h;
        for (size_t off = 0; off < data.size(); off += chunk) {
            h.update(data.data() + off,
                     std::min(chunk, data.size() - off));
        }
        EXPECT_EQ(h.digest(), whole) << "chunk size " << chunk;
    }
}

TEST(Sha256, MillionAs)
{
    // The classic FIPS long-message vector exercises many compression
    // rounds and the length padding path.
    Sha256 h;
    const std::string block(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        h.update(block);
    const auto d = h.digest();
    EXPECT_EQ(toHex(d.data(), d.size()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39cc"
              "c7112cd0");
}

} // namespace
} // namespace quest
