/**
 * @file
 * End-to-end QUEST pipeline tests (lean synthesis settings).
 */

#include <gtest/gtest.h>

#include <string>

#include "algos/algorithms.hh"
#include "ir/lower.hh"
#include "metrics/output_distance.hh"
#include "obs/metrics.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "quest/bound.hh"
#include "quest/ensemble.hh"
#include "quest/pipeline.hh"
#include "sim/simulator.hh"

namespace quest {
namespace {

QuestConfig
leanConfig()
{
    QuestConfig cfg;
    cfg.thresholdPerBlock = 0.1;  // keep ensemble TVD assertions tight
    cfg.synth.beamWidth = 1;
    cfg.synth.inst.multistarts = 2;
    cfg.synth.inst.lbfgs.maxIterations = 250;
    cfg.synth.maxLayers = 10;
    cfg.synth.candidatesPerLevel = 4;
    cfg.synth.stallLevels = 4;
    cfg.anneal.maxIterations = 300;
    cfg.maxSamples = 6;
    return cfg;
}

/** The pipeline result plus the observability record of its run. */
struct RunArtifacts
{
    QuestResult r;
    std::vector<obs::TraceEvent> events;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
};

RunArtifacts
tracedRun(const QuestConfig &cfg, const Circuit &circuit)
{
    auto &registry = obs::MetricsRegistry::global();
    auto &hits = registry.counter("quest.synth.cache_hits");
    auto &misses = registry.counter("quest.synth.cache_misses");
    const uint64_t hits_before = hits.value();
    const uint64_t misses_before = misses.value();

    obs::TraceSession::global().start();
    RunArtifacts out;
    out.r = QuestPipeline(cfg).run(circuit);
    obs::TraceSession::global().stop();
    out.events = obs::TraceSession::global().collect();
    out.cacheHits = hits.value() - hits_before;
    out.cacheMisses = misses.value() - misses_before;
    return out;
}

class PipelineFixture : public ::testing::Test
{
  protected:
    static const RunArtifacts &
    artifacts()
    {
        // Shared across tests: the pipeline run is the expensive part.
        static RunArtifacts a =
            tracedRun(leanConfig(), algos::tfim(4, 5));
        return a;
    }

    static const QuestResult &result() { return artifacts().r; }
};

TEST_F(PipelineFixture, ReducesCnotCount)
{
    const QuestResult &r = result();
    EXPECT_EQ(r.originalCnots, 30u);
    EXPECT_LT(r.minSampleCnots(), r.originalCnots / 2);
}

TEST_F(PipelineFixture, SelectsMultipleDissimilarSamples)
{
    const QuestResult &r = result();
    EXPECT_GE(r.samples.size(), 2u);
    EXPECT_LE(r.samples.size(),
              static_cast<size_t>(leanConfig().maxSamples));
    // All selected choices distinct.
    for (size_t i = 0; i < r.samples.size(); ++i)
        for (size_t j = i + 1; j < r.samples.size(); ++j)
            EXPECT_NE(r.samples[i].choice, r.samples[j].choice);
}

TEST_F(PipelineFixture, SamplesRespectThreshold)
{
    const QuestResult &r = result();
    for (const ApproxSample &s : r.samples) {
        EXPECT_LE(s.distanceBound, r.threshold + 1e-12);
        EXPECT_LE(s.cnotCount, r.originalCnots);
    }
}

TEST_F(PipelineFixture, BoundHoldsForEverySample)
{
    const QuestResult &r = result();
    for (const ApproxSample &s : r.samples) {
        double actual = actualProcessDistance(r.original, s.circuit);
        EXPECT_LE(actual, s.distanceBound + 1e-9);
    }
}

TEST_F(PipelineFixture, SampleMetadataConsistent)
{
    const QuestResult &r = result();
    for (const ApproxSample &s : r.samples) {
        EXPECT_EQ(s.circuit.cnotCount(), s.cnotCount);
        EXPECT_EQ(s.circuit.numQubits(), r.original.numQubits());
        ASSERT_EQ(s.choice.size(), r.blocks.size());
        for (size_t b = 0; b < s.choice.size(); ++b) {
            EXPECT_GE(s.choice[b], 0);
            EXPECT_LT(s.choice[b],
                      static_cast<int>(r.blockApprox[b].size()));
        }
    }
}

TEST_F(PipelineFixture, EnsembleTracksGroundTruth)
{
    const QuestResult &r = result();
    Distribution truth = idealDistribution(r.original);
    Distribution ensemble = ensembleDistribution(r);
    EXPECT_LT(tvd(truth, ensemble), 0.08);
    EXPECT_LT(jsd(truth, ensemble), 0.15);
}

TEST_F(PipelineFixture, QiskitPostPassPreservesSamples)
{
    const QuestResult &r = result();
    EnsembleOptions opts;
    opts.applyQiskit = true;
    Distribution truth = idealDistribution(r.original);
    Distribution ensemble = ensembleDistribution(r, opts);
    EXPECT_LT(tvd(truth, ensemble), 0.08);
    EXPECT_LE(ensembleCnotCount(r, true),
              ensembleCnotCount(r, false) + 1e-9);
}

TEST_F(PipelineFixture, StageTimingsPopulated)
{
    const QuestResult &r = result();
    EXPECT_GT(r.synthesisSeconds, 0.0);
    EXPECT_GE(r.partitionSeconds, 0.0);
    EXPECT_GT(r.annealSeconds, 0.0);
}

TEST_F(PipelineFixture, BlockApproxIndexZeroIsOriginal)
{
    const QuestResult &r = result();
    for (size_t b = 0; b < r.blocks.size(); ++b) {
        EXPECT_EQ(r.blockApprox[b][0].distance, 0.0);
        EXPECT_EQ(r.blockApprox[b][0].cnotCount,
                  static_cast<int>(r.blocks[b].circuit.cnotCount()));
    }
}

TEST_F(PipelineFixture, PhaseSpansCoverTheRun)
{
    const auto &events = artifacts().events;
    ASSERT_FALSE(events.empty());

    // The three pipeline phases must be present as spans...
    bool partition = false, synthesis = false, anneal = false;
    for (const obs::TraceEvent &e : events) {
        partition |= std::string(e.name) == "quest.partition";
        synthesis |= std::string(e.name) == "quest.synthesis";
        anneal |= std::string(e.name) == "quest.anneal";
    }
    EXPECT_TRUE(partition);
    EXPECT_TRUE(synthesis);
    EXPECT_TRUE(anneal);

    // ...and together attribute >90% of the pipeline wall-clock.
    EXPECT_GT(obs::phaseCoverage(events, "quest.pipeline"), 0.9);
}

TEST(Pipeline, PartitionedCircuitRuns)
{
    // An 8-qubit circuit forces multiple blocks.
    QuestConfig cfg = leanConfig();
    cfg.synth.maxLayers = 6;
    RunArtifacts a = tracedRun(cfg, algos::tfim(8, 2));
    const QuestResult &r = a.r;
    EXPECT_GT(r.blocks.size(), 1u);
    EXPECT_GE(r.samples.size(), 1u);
    EXPECT_LE(r.minSampleCnots(), r.originalCnots);
    // Every block went through the synthesis cache exactly once.
    EXPECT_EQ(a.cacheHits + a.cacheMisses, r.blocks.size());
    // Every sample simulates to a normalized distribution.
    Distribution d = ensembleDistribution(r);
    EXPECT_NEAR(d.total(), 1.0, 1e-9);
}

TEST(Pipeline, RepeatedBlocksHitTheSynthesisCache)
{
    // The same 4-qubit evolution on two disjoint wire sets partitions
    // into byte-identical block unitaries, so the second block must be
    // a cache hit rather than a fresh synthesis.
    Circuit half = algos::tfim(4, 2);
    Circuit circuit(8);
    circuit.appendCircuit(half, {0, 1, 2, 3});
    circuit.appendCircuit(half, {4, 5, 6, 7});

    QuestConfig cfg = leanConfig();
    cfg.synth.maxLayers = 6;
    RunArtifacts a = tracedRun(cfg, circuit);
    EXPECT_GT(a.r.blocks.size(), 1u);
    EXPECT_EQ(a.cacheHits + a.cacheMisses, a.r.blocks.size());
    EXPECT_GT(a.cacheHits, 0u);
    EXPECT_LT(a.cacheMisses, a.r.blocks.size());
}

TEST(Pipeline, NeverWorseThanBaseline)
{
    QuestConfig cfg = leanConfig();
    cfg.synth.maxLayers = 4;
    cfg.maxSamples = 3;
    // A circuit that is hard to compress at this budget: QUEST must
    // fall back to the original rather than doing worse.
    QuestResult r = QuestPipeline(cfg).run(algos::hlf(4, 3));
    EXPECT_LE(r.minSampleCnots(), r.originalCnots);
    EXPECT_GE(r.samples.size(), 1u);
}

TEST(Pipeline, DeterministicForSeed)
{
    QuestConfig cfg = leanConfig();
    cfg.synth.maxLayers = 5;
    cfg.maxSamples = 3;
    QuestResult a = QuestPipeline(cfg).run(algos::tfim(3, 2));
    QuestResult b = QuestPipeline(cfg).run(algos::tfim(3, 2));
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (size_t i = 0; i < a.samples.size(); ++i)
        EXPECT_EQ(a.samples[i].choice, b.samples[i].choice);
}

TEST(Ensemble, RequiresSamples)
{
    QuestResult empty;
    EXPECT_DEATH(sampleCircuits(empty, false), "samples");
}

} // namespace
} // namespace quest
