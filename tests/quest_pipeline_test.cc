/**
 * @file
 * End-to-end QUEST pipeline tests (lean synthesis settings).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "algos/algorithms.hh"
#include "ir/lower.hh"
#include "metrics/output_distance.hh"
#include "obs/metrics.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "quest/bound.hh"
#include "quest/ensemble.hh"
#include "quest/pipeline.hh"
#include "resilience/error.hh"
#include "resilience/thread_pool.hh"
#include "sim/simulator.hh"

namespace quest {
namespace {

QuestConfig
leanConfig()
{
    QuestConfig cfg;
    cfg.thresholdPerBlock = 0.1;  // keep ensemble TVD assertions tight
    cfg.synth.beamWidth = 1;
    cfg.synth.inst.multistarts = 2;
    cfg.synth.inst.lbfgs.maxIterations = 250;
    cfg.synth.maxLayers = 10;
    cfg.synth.candidatesPerLevel = 4;
    cfg.synth.stallLevels = 4;
    cfg.anneal.maxIterations = 300;
    cfg.maxSamples = 6;
    return cfg;
}

/** The pipeline result plus the observability record of its run. */
struct RunArtifacts
{
    QuestResult r;
    std::vector<obs::TraceEvent> events;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
};

RunArtifacts
tracedRun(const QuestConfig &cfg, const Circuit &circuit)
{
    auto &registry = obs::MetricsRegistry::global();
    auto &hits = registry.counter("quest.synth.cache_hits");
    auto &misses = registry.counter("quest.synth.cache_misses");
    const uint64_t hits_before = hits.value();
    const uint64_t misses_before = misses.value();

    obs::TraceSession::global().start();
    RunArtifacts out;
    out.r = QuestPipeline(cfg).run(circuit);
    obs::TraceSession::global().stop();
    out.events = obs::TraceSession::global().collect();
    out.cacheHits = hits.value() - hits_before;
    out.cacheMisses = misses.value() - misses_before;
    return out;
}

class PipelineFixture : public ::testing::Test
{
  protected:
    static const RunArtifacts &
    artifacts()
    {
        // Shared across tests: the pipeline run is the expensive part.
        static RunArtifacts a =
            tracedRun(leanConfig(), algos::tfim(4, 5));
        return a;
    }

    static const QuestResult &result() { return artifacts().r; }
};

TEST_F(PipelineFixture, ReducesCnotCount)
{
    const QuestResult &r = result();
    EXPECT_EQ(r.originalCnots, 30u);
    EXPECT_LT(r.minSampleCnots(), r.originalCnots / 2);
}

TEST_F(PipelineFixture, SelectsMultipleDissimilarSamples)
{
    const QuestResult &r = result();
    EXPECT_GE(r.samples.size(), 2u);
    EXPECT_LE(r.samples.size(),
              static_cast<size_t>(leanConfig().maxSamples));
    // All selected choices distinct.
    for (size_t i = 0; i < r.samples.size(); ++i)
        for (size_t j = i + 1; j < r.samples.size(); ++j)
            EXPECT_NE(r.samples[i].choice, r.samples[j].choice);
}

TEST_F(PipelineFixture, SamplesRespectThreshold)
{
    const QuestResult &r = result();
    for (const ApproxSample &s : r.samples) {
        EXPECT_LE(s.distanceBound, r.threshold + 1e-12);
        EXPECT_LE(s.cnotCount, r.originalCnots);
    }
}

TEST_F(PipelineFixture, BoundHoldsForEverySample)
{
    const QuestResult &r = result();
    for (const ApproxSample &s : r.samples) {
        double actual = actualProcessDistance(r.original, s.circuit);
        EXPECT_LE(actual, s.distanceBound + 1e-9);
    }
}

TEST_F(PipelineFixture, SampleMetadataConsistent)
{
    const QuestResult &r = result();
    for (const ApproxSample &s : r.samples) {
        EXPECT_EQ(s.circuit.cnotCount(), s.cnotCount);
        EXPECT_EQ(s.circuit.numQubits(), r.original.numQubits());
        ASSERT_EQ(s.choice.size(), r.blocks.size());
        for (size_t b = 0; b < s.choice.size(); ++b) {
            EXPECT_GE(s.choice[b], 0);
            EXPECT_LT(s.choice[b],
                      static_cast<int>(r.blockApprox[b].size()));
        }
    }
}

TEST_F(PipelineFixture, EnsembleTracksGroundTruth)
{
    const QuestResult &r = result();
    Distribution truth = idealDistribution(r.original);
    Distribution ensemble = ensembleDistribution(r);
    EXPECT_LT(tvd(truth, ensemble), 0.08);
    EXPECT_LT(jsd(truth, ensemble), 0.15);
}

TEST_F(PipelineFixture, QiskitPostPassPreservesSamples)
{
    const QuestResult &r = result();
    EnsembleOptions opts;
    opts.applyQiskit = true;
    Distribution truth = idealDistribution(r.original);
    Distribution ensemble = ensembleDistribution(r, opts);
    EXPECT_LT(tvd(truth, ensemble), 0.08);
    EXPECT_LE(ensembleCnotCount(r, true),
              ensembleCnotCount(r, false) + 1e-9);
}

TEST_F(PipelineFixture, StageTimingsPopulated)
{
    const QuestResult &r = result();
    EXPECT_GT(r.synthesisSeconds, 0.0);
    EXPECT_GE(r.partitionSeconds, 0.0);
    EXPECT_GT(r.annealSeconds, 0.0);
}

TEST_F(PipelineFixture, BlockApproxIndexZeroIsOriginal)
{
    const QuestResult &r = result();
    for (size_t b = 0; b < r.blocks.size(); ++b) {
        EXPECT_EQ(r.blockApprox[b][0].distance, 0.0);
        EXPECT_EQ(r.blockApprox[b][0].cnotCount,
                  static_cast<int>(r.blocks[b].circuit.cnotCount()));
    }
}

TEST_F(PipelineFixture, PhaseSpansCoverTheRun)
{
    const auto &events = artifacts().events;
    ASSERT_FALSE(events.empty());

    // The three pipeline phases must be present as spans...
    bool partition = false, synthesis = false, anneal = false;
    for (const obs::TraceEvent &e : events) {
        partition |= std::string(e.name) == "quest.partition";
        synthesis |= std::string(e.name) == "quest.synthesis";
        anneal |= std::string(e.name) == "quest.anneal";
    }
    EXPECT_TRUE(partition);
    EXPECT_TRUE(synthesis);
    EXPECT_TRUE(anneal);

    // ...and together attribute >90% of the pipeline wall-clock.
    EXPECT_GT(obs::phaseCoverage(events, "quest.pipeline"), 0.9);
}

TEST(Pipeline, PartitionedCircuitRuns)
{
    // An 8-qubit circuit forces multiple blocks.
    QuestConfig cfg = leanConfig();
    cfg.synth.maxLayers = 6;
    RunArtifacts a = tracedRun(cfg, algos::tfim(8, 2));
    const QuestResult &r = a.r;
    EXPECT_GT(r.blocks.size(), 1u);
    EXPECT_GE(r.samples.size(), 1u);
    EXPECT_LE(r.minSampleCnots(), r.originalCnots);
    // Every block went through the synthesis cache exactly once.
    EXPECT_EQ(a.cacheHits + a.cacheMisses, r.blocks.size());
    // Every sample simulates to a normalized distribution.
    Distribution d = ensembleDistribution(r);
    EXPECT_NEAR(d.total(), 1.0, 1e-9);
}

TEST(Pipeline, RepeatedBlocksHitTheSynthesisCache)
{
    // The same 4-qubit evolution on two disjoint wire sets partitions
    // into byte-identical block unitaries, so the second block must be
    // a cache hit rather than a fresh synthesis.
    Circuit half = algos::tfim(4, 2);
    Circuit circuit(8);
    circuit.appendCircuit(half, {0, 1, 2, 3});
    circuit.appendCircuit(half, {4, 5, 6, 7});

    QuestConfig cfg = leanConfig();
    cfg.synth.maxLayers = 6;
    RunArtifacts a = tracedRun(cfg, circuit);
    EXPECT_GT(a.r.blocks.size(), 1u);
    EXPECT_EQ(a.cacheHits + a.cacheMisses, a.r.blocks.size());
    EXPECT_GT(a.cacheHits, 0u);
    EXPECT_LT(a.cacheMisses, a.r.blocks.size());
}

TEST(Pipeline, NeverWorseThanBaseline)
{
    QuestConfig cfg = leanConfig();
    cfg.synth.maxLayers = 4;
    cfg.maxSamples = 3;
    // A circuit that is hard to compress at this budget: QUEST must
    // fall back to the original rather than doing worse.
    QuestResult r = QuestPipeline(cfg).run(algos::hlf(4, 3));
    EXPECT_LE(r.minSampleCnots(), r.originalCnots);
    EXPECT_GE(r.samples.size(), 1u);
}

TEST(Pipeline, DeterministicForSeed)
{
    QuestConfig cfg = leanConfig();
    cfg.synth.maxLayers = 5;
    cfg.maxSamples = 3;
    QuestResult a = QuestPipeline(cfg).run(algos::tfim(3, 2));
    QuestResult b = QuestPipeline(cfg).run(algos::tfim(3, 2));
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (size_t i = 0; i < a.samples.size(); ++i)
        EXPECT_EQ(a.samples[i].choice, b.samples[i].choice);
}

TEST(Ensemble, RequiresSamples)
{
    QuestResult empty;
    EXPECT_DEATH(sampleCircuits(empty, false), "samples");
}

/** Temporary persistent-cache directory, removed on scope exit. */
struct TempCacheDir
{
    std::filesystem::path path;

    TempCacheDir()
    {
        std::string tmpl = (std::filesystem::temp_directory_path() /
                            "quest-pipeline-cache-XXXXXX")
                               .string();
        path = std::filesystem::path(mkdtemp(tmpl.data()));
    }

    ~TempCacheDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

/** Bitwise circuit equality — value comparison would hide the exact
 *  double replay the cache guarantees. */
bool
sameCircuitBytes(const Circuit &a, const Circuit &b)
{
    if (a.numQubits() != b.numQubits() || a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].type != b[i].type || a[i].qubits != b[i].qubits ||
            a[i].params.size() != b[i].params.size()) {
            return false;
        }
        for (size_t p = 0; p < a[i].params.size(); ++p) {
            if (std::memcmp(&a[i].params[p], &b[i].params[p],
                            sizeof(double)) != 0) {
                return false;
            }
        }
    }
    return true;
}

void
expectSameResult(const QuestResult &a, const QuestResult &b)
{
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (size_t s = 0; s < a.samples.size(); ++s) {
        EXPECT_EQ(a.samples[s].choice, b.samples[s].choice);
        EXPECT_TRUE(sameCircuitBytes(a.samples[s].circuit,
                                     b.samples[s].circuit))
            << "sample " << s << " differs";
    }
    ASSERT_EQ(a.blockApprox.size(), b.blockApprox.size());
    for (size_t blk = 0; blk < a.blockApprox.size(); ++blk) {
        ASSERT_EQ(a.blockApprox[blk].size(), b.blockApprox[blk].size());
        for (size_t k = 0; k < a.blockApprox[blk].size(); ++k) {
            EXPECT_TRUE(
                sameCircuitBytes(a.blockApprox[blk][k].circuit,
                                 b.blockApprox[blk][k].circuit))
                << "approximation " << k << " of block " << blk
                << " differs";
        }
    }
}

TEST(PipelineCache, WarmRunSkipsEverySearchAndReplaysExactly)
{
    TempCacheDir tmp;
    QuestConfig cfg = leanConfig();
    cfg.synth.maxLayers = 6;
    cfg.cacheDir = tmp.path.string();

    const Circuit circuit = algos::tfim(4, 2);
    RunArtifacts cold = tracedRun(cfg, circuit);
    EXPECT_GT(cold.cacheMisses, 0u);
    EXPECT_EQ(cold.cacheHits + cold.cacheMisses, cold.r.blocks.size());

    RunArtifacts warm = tracedRun(cfg, circuit);
    EXPECT_EQ(warm.cacheMisses, 0u)
        << "a warm cache must serve every block";
    EXPECT_EQ(warm.cacheHits, warm.r.blocks.size());
    expectSameResult(cold.r, warm.r);
}

TEST(PipelineCache, CorruptEntriesDegradeToMissesNeverToCrashes)
{
    TempCacheDir tmp;
    QuestConfig cfg = leanConfig();
    cfg.synth.maxLayers = 6;
    cfg.cacheDir = tmp.path.string();

    const Circuit circuit = algos::tfim(4, 2);
    RunArtifacts cold = tracedRun(cfg, circuit);

    // Flip a byte at the end of every published entry.
    size_t damaged = 0;
    // QUEST_ANALYZE_OK(determinism.fs-order): damages every entry, so order is irrelevant
    for (const auto &e : std::filesystem::recursive_directory_iterator(
             tmp.path / "objects")) {
        if (!e.is_regular_file() || e.path().extension() != ".qsc")
            continue;
        std::fstream f(e.path(), std::ios::binary | std::ios::in |
                                     std::ios::out);
        f.seekp(-1, std::ios::end);
        f.put('\xaa');
        ++damaged;
    }
    ASSERT_GT(damaged, 0u);

    auto &corrupt =
        obs::MetricsRegistry::global().counter("quest.cache.corrupt");
    const uint64_t corrupt_before = corrupt.value();

    RunArtifacts rewarm = tracedRun(cfg, circuit);
    EXPECT_EQ(rewarm.cacheMisses, cold.cacheMisses)
        << "corrupt entries must be treated exactly like cold misses";
    EXPECT_EQ(corrupt.value(), corrupt_before + damaged);
    expectSameResult(cold.r, rewarm.r);

    // The damaged entries were replaced; a third run is fully warm.
    RunArtifacts warm = tracedRun(cfg, circuit);
    EXPECT_EQ(warm.cacheMisses, 0u);
}

TEST(Pipeline, SingleSharedPoolBoundsTotalThreads)
{
    // cfg.threads is the whole pipeline's budget. Even with an inner
    // synthesis thread count configured far higher, the shared pool
    // must keep the process at budget - 1 workers (the caller is the
    // budget's last thread) — the old design multiplied the two.
    QuestConfig cfg = leanConfig();
    cfg.synth.maxLayers = 4;
    cfg.maxSamples = 2;
    cfg.threads = 3;
    cfg.synth.threads = 8; // must be ignored in favor of the pool

    const unsigned baseline = ThreadPool::liveWorkers();
    ThreadPool::resetPeakLiveWorkers();
    QuestResult r = QuestPipeline(cfg).run(algos::tfim(5, 2));
    EXPECT_GE(r.samples.size(), 1u);
    EXPECT_LE(ThreadPool::peakLiveWorkers(), baseline + cfg.threads - 1);
}

// ---- Selection modes (quest/mode.hh): Full vs BlockBound ----------

TEST(SelectionModes, PickIdenticalEnsemblesWhereBothRun)
{
    // The annealing objective scores choices purely from the
    // per-block tables, so the mode fork must not perturb selection:
    // both modes pick byte-identical ensembles on a circuit small
    // enough for Full mode.
    QuestConfig cfg = leanConfig();
    cfg.synth.maxLayers = 6;
    const Circuit circuit = algos::tfim(4, 3);

    cfg.selectionMode = SelectionMode::Full;
    QuestResult full = QuestPipeline(cfg).run(circuit);
    cfg.selectionMode = SelectionMode::BlockBound;
    QuestResult large = QuestPipeline(cfg).run(circuit);

    expectSameResult(full, large);
    EXPECT_EQ(full.selectionMode, SelectionMode::Full);
    EXPECT_EQ(large.selectionMode, SelectionMode::BlockBound);

    // Full measured every sample; BlockBound measured none.
    ASSERT_FALSE(full.samples.empty());
    for (const ApproxSample &s : full.samples)
        EXPECT_TRUE(s.measured());
    for (const ApproxSample &s : large.samples)
        EXPECT_FALSE(s.measured());
    EXPECT_EQ(full.certificate.measuredSamples,
              static_cast<int>(full.samples.size()));
    EXPECT_EQ(large.certificate.measuredSamples, 0);
}

TEST_F(PipelineFixture, CertificateBoundsTheMeasuredDistance)
{
    // The default mode is Full: every sample carries a measured
    // distance, and Theorem 1 says the reported bound dominates it.
    const QuestResult &r = result();
    EXPECT_EQ(r.selectionMode, SelectionMode::Full);
    const BoundCertificate &cert = r.certificate;
    EXPECT_EQ(cert.mode, SelectionMode::Full);
    EXPECT_DOUBLE_EQ(cert.threshold, r.threshold);

    double max_bound = 0.0, max_measured = -1.0, bound_sum = 0.0;
    for (const ApproxSample &s : r.samples) {
        ASSERT_TRUE(s.measured());
        EXPECT_LE(s.measuredDistance, s.distanceBound + 1e-9);
        max_bound = std::max(max_bound, s.distanceBound);
        max_measured = std::max(max_measured, s.measuredDistance);
        bound_sum += s.distanceBound;
    }
    EXPECT_DOUBLE_EQ(cert.maxBound, max_bound);
    EXPECT_DOUBLE_EQ(cert.maxMeasured, max_measured);
    EXPECT_NEAR(cert.meanBound,
                bound_sum / static_cast<double>(r.samples.size()),
                1e-12);
    EXPECT_LE(cert.maxMeasured, cert.maxBound + 1e-9);
    EXPECT_GE(cert.outputEstimate, 0.0);
    EXPECT_LE(cert.outputEstimate, 1.0);

    // The sample's measured distance agrees with the reference
    // implementation used by the Fig. 7 harness.
    EXPECT_NEAR(r.samples[0].measuredDistance,
                actualProcessDistance(r.original, r.samples[0].circuit),
                1e-12);
}

TEST(SelectionModes, BlockBoundNeverBuildsFullUnitariesOrStates)
{
    // A 16-qubit circuit — beyond Full mode's 14-qubit ceiling — must
    // compile in BlockBound mode without src/sim moving at all.
    auto &registry = obs::MetricsRegistry::global();
    auto &sv = registry.counter("sim.statevector_builds");
    auto &un = registry.counter("sim.unitary_builds");
    const uint64_t sv_before = sv.value();
    const uint64_t un_before = un.value();

    QuestConfig cfg = leanConfig();
    cfg.synth.maxLayers = 4;
    cfg.maxSamples = 3;
    cfg.selectionMode = SelectionMode::BlockBound;
    QuestResult r = QuestPipeline(cfg).run(algos::tfim(16, 2));

    EXPECT_EQ(sv.value(), sv_before);
    EXPECT_EQ(un.value(), un_before);
    EXPECT_GE(r.samples.size(), 1u);
    EXPECT_EQ(r.original.numQubits(), 16);

    // The bound certificate is still reported in full.
    EXPECT_EQ(r.certificate.mode, SelectionMode::BlockBound);
    EXPECT_GT(r.threshold, 0.0);
    EXPECT_LE(r.certificate.maxBound, r.threshold + 1e-12);
    EXPECT_EQ(r.certificate.maxMeasured, -1.0);
}

TEST(SelectionModes, FullModeRejectsCircuitsItCannotMeasure)
{
    QuestConfig cfg = leanConfig();
    try {
        QuestPipeline(cfg).run(algos::tfim(16, 1));
        FAIL() << "expected QuestError(InvalidInput)";
    } catch (const resilience::QuestError &e) {
        EXPECT_EQ(e.category(),
                  resilience::ErrorCategory::InvalidInput);
        EXPECT_NE(std::string(e.what()).find("--large"),
                  std::string::npos)
            << "the error must point at the --large escape hatch";
    }
}

TEST(SelectionModes, BlockBoundDeterministicAcrossThreadCounts)
{
    QuestConfig cfg = leanConfig();
    cfg.synth.maxLayers = 4;
    cfg.maxSamples = 3;
    cfg.selectionMode = SelectionMode::BlockBound;
    const Circuit circuit = algos::tfim(12, 2);

    cfg.threads = 1;
    QuestResult one = QuestPipeline(cfg).run(circuit);
    cfg.threads = 4;
    QuestResult four = QuestPipeline(cfg).run(circuit);
    expectSameResult(one, four);
    EXPECT_EQ(one.certificate.maxBound, four.certificate.maxBound);
}

} // namespace
} // namespace quest
