/**
 * @file
 * Output-distance and magnetization metric tests.
 */

#include <gtest/gtest.h>

#include <limits>

#include "metrics/magnetization.hh"
#include "metrics/output_distance.hh"
#include "util/rng.hh"

namespace quest {
namespace {

Distribution
randomDistribution(int n, Rng &rng)
{
    std::vector<double> p(size_t{1} << n);
    for (double &v : p)
        v = rng.uniform();
    Distribution d(std::move(p));
    d.normalize();
    return d;
}

TEST(Tvd, ZeroForIdentical)
{
    Rng rng(1);
    Distribution d = randomDistribution(3, rng);
    EXPECT_EQ(tvd(d, d), 0.0);
}

TEST(Tvd, OneForDisjoint)
{
    Distribution a(std::vector<double>{1.0, 0.0});
    Distribution b(std::vector<double>{0.0, 1.0});
    EXPECT_NEAR(tvd(a, b), 1.0, 1e-12);
}

TEST(Tvd, SymmetricAndBounded)
{
    Rng rng(3);
    for (int t = 0; t < 20; ++t) {
        Distribution a = randomDistribution(3, rng);
        Distribution b = randomDistribution(3, rng);
        double dab = tvd(a, b);
        EXPECT_NEAR(dab, tvd(b, a), 1e-15);
        EXPECT_GE(dab, 0.0);
        EXPECT_LE(dab, 1.0);
    }
}

TEST(Tvd, TriangleInequality)
{
    Rng rng(5);
    for (int t = 0; t < 20; ++t) {
        Distribution a = randomDistribution(2, rng);
        Distribution b = randomDistribution(2, rng);
        Distribution c = randomDistribution(2, rng);
        EXPECT_LE(tvd(a, c), tvd(a, b) + tvd(b, c) + 1e-12);
    }
}

TEST(Kl, ZeroForIdentical)
{
    Rng rng(7);
    Distribution d = randomDistribution(3, rng);
    EXPECT_NEAR(klDivergence(d, d), 0.0, 1e-12);
}

TEST(Kl, InfiniteWhenSupportMismatch)
{
    Distribution p(std::vector<double>{0.5, 0.5});
    Distribution q(std::vector<double>{1.0, 0.0});
    EXPECT_EQ(klDivergence(p, q),
              std::numeric_limits<double>::infinity());
}

TEST(Kl, KnownValue)
{
    // D([1,0] || [0.5,0.5]) = log2(2) = 1.
    Distribution p(std::vector<double>{1.0, 0.0});
    Distribution q(std::vector<double>{0.5, 0.5});
    EXPECT_NEAR(klDivergence(p, q), 1.0, 1e-12);
}

TEST(Jsd, ZeroForIdentical)
{
    Rng rng(9);
    Distribution d = randomDistribution(3, rng);
    EXPECT_NEAR(jsd(d, d), 0.0, 1e-9);
}

TEST(Jsd, OneForDisjoint)
{
    Distribution a(std::vector<double>{1.0, 0.0});
    Distribution b(std::vector<double>{0.0, 1.0});
    EXPECT_NEAR(jsd(a, b), 1.0, 1e-12);
}

TEST(Jsd, SymmetricAndBounded)
{
    Rng rng(11);
    for (int t = 0; t < 20; ++t) {
        Distribution a = randomDistribution(3, rng);
        Distribution b = randomDistribution(3, rng);
        double j = jsd(a, b);
        EXPECT_NEAR(j, jsd(b, a), 1e-12);
        EXPECT_GE(j, 0.0);
        EXPECT_LE(j, 1.0);
    }
}

TEST(Jsd, FiniteEvenWithZeroEntries)
{
    Distribution a(std::vector<double>{0.5, 0.5, 0.0, 0.0});
    Distribution b(std::vector<double>{0.0, 0.0, 0.5, 0.5});
    EXPECT_NEAR(jsd(a, b), 1.0, 1e-12);
}

TEST(Magnetization, AllZerosState)
{
    // |000> has every spin up: <Z> = +1.
    Distribution d(std::vector<double>{1, 0, 0, 0, 0, 0, 0, 0});
    EXPECT_NEAR(averageMagnetization(d), 1.0, 1e-12);
    EXPECT_NEAR(zExpectation(d, 0), 1.0, 1e-12);
}

TEST(Magnetization, AllOnesState)
{
    Distribution d(std::vector<double>{0, 0, 0, 0, 0, 0, 0, 1});
    EXPECT_NEAR(averageMagnetization(d), -1.0, 1e-12);
}

TEST(Magnetization, SingleFlippedSpin)
{
    // |100>: qubit 0 down, others up -> average = 1/3.
    Distribution d(std::vector<double>{0, 0, 0, 0, 1, 0, 0, 0});
    EXPECT_NEAR(zExpectation(d, 0), -1.0, 1e-12);
    EXPECT_NEAR(zExpectation(d, 1), 1.0, 1e-12);
    EXPECT_NEAR(averageMagnetization(d), 1.0 / 3.0, 1e-12);
}

TEST(Magnetization, StaggeredNeelState)
{
    // |0101>: alternating spins. Staggered magnetization = +1.
    std::vector<double> p(16, 0.0);
    p[0b0101] = 1.0;
    Distribution d(std::move(p));
    EXPECT_NEAR(staggeredMagnetization(d), 1.0, 1e-12);
    EXPECT_NEAR(averageMagnetization(d), 0.0, 1e-12);
}

TEST(Magnetization, UniformDistributionIsZero)
{
    std::vector<double> p(8, 1.0 / 8.0);
    Distribution d(std::move(p));
    EXPECT_NEAR(averageMagnetization(d), 0.0, 1e-12);
    EXPECT_NEAR(staggeredMagnetization(d), 0.0, 1e-12);
}

TEST(Metrics, SizeMismatchPanics)
{
    Distribution a(2), b(3);
    EXPECT_DEATH(tvd(a, b), "mismatch");
    EXPECT_DEATH(jsd(a, b), "mismatch");
}

} // namespace
} // namespace quest
