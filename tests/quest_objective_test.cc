/**
 * @file
 * Algorithm 1 selection-objective tests on hand-built pipeline state.
 */

#include <gtest/gtest.h>

#include "quest/objective.hh"

namespace quest {
namespace {

/** Two blocks with hand-authored approximation tables. */
QuestResult
makeState()
{
    QuestResult r;
    r.original = Circuit(4);
    r.originalCnots = 10;

    auto make_block_circuit = [](int cnots) {
        Circuit c(2);
        for (int i = 0; i < cnots; ++i)
            c.append(Gate::cx(0, 1));
        return c;
    };

    // Block 0: original (5 cx, d=0), cheap (1 cx, d=0.04),
    //          mid (3 cx, d=0.01).
    r.blockApprox.push_back({{make_block_circuit(5), 0.0, 5},
                             {make_block_circuit(1), 0.04, 1},
                             {make_block_circuit(3), 0.01, 3}});
    // Block 1: original (5 cx, d=0), cheap (2 cx, d=0.05).
    r.blockApprox.push_back({{make_block_circuit(5), 0.0, 5},
                             {make_block_circuit(2), 0.05, 2}});

    // Similarity: within block 0, approx 1 and 2 are dissimilar;
    // everything is similar to itself; the original is dissimilar to
    // the approximations.
    r.blockSimilar.push_back({1, 0, 0,
                              0, 1, 0,
                              0, 0, 1});
    r.blockSimilar.push_back({1, 0,
                              0, 1});
    r.threshold = 0.1;
    return r;
}

TEST(SelectionObjective, ToChoiceMapsCoordinates)
{
    QuestResult state = makeState();
    std::vector<std::vector<int>> selected;
    SelectionObjective obj(state, selected, state.threshold, 0.5);
    EXPECT_EQ(obj.toChoice({0.0, 0.0}), (std::vector<int>{0, 0}));
    EXPECT_EQ(obj.toChoice({0.99, 0.99}), (std::vector<int>{2, 1}));
    EXPECT_EQ(obj.toChoice({0.34, 0.5}), (std::vector<int>{1, 1}));
}

TEST(SelectionObjective, BoundIsSumOfBlockDistances)
{
    QuestResult state = makeState();
    std::vector<std::vector<int>> selected;
    SelectionObjective obj(state, selected, state.threshold, 0.5);
    EXPECT_NEAR(obj.bound({1, 1}), 0.09, 1e-12);
    EXPECT_NEAR(obj.bound({0, 0}), 0.0, 1e-12);
}

TEST(SelectionObjective, CnotsSumOverBlocks)
{
    QuestResult state = makeState();
    std::vector<std::vector<int>> selected;
    SelectionObjective obj(state, selected, state.threshold, 0.5);
    EXPECT_EQ(obj.cnots({1, 1}), 3u);
    EXPECT_EQ(obj.cnots({0, 0}), 10u);
}

TEST(SelectionObjective, FirstSampleIsPureCnotCount)
{
    QuestResult state = makeState();
    std::vector<std::vector<int>> selected;
    SelectionObjective obj(state, selected, state.threshold, 0.5);
    // cnorm = 3/10 for the cheapest feasible choice.
    EXPECT_NEAR(obj.scoreChoice({1, 1}), 0.3, 1e-12);
    EXPECT_NEAR(obj.scoreChoice({0, 0}), 1.0, 1e-12);  // cnorm = 1
}

TEST(SelectionObjective, ThresholdBreachIsNeverSelectable)
{
    QuestResult state = makeState();
    state.threshold = 0.05;  // {1,1} bound 0.09 now breaches
    std::vector<std::vector<int>> selected;
    SelectionObjective obj(state, selected, state.threshold, 0.5);
    // Infeasible choices score >= 1.0 (1.0 plus the graded excess
    // that lets annealing descend toward feasibility).
    EXPECT_NEAR(obj.scoreChoice({1, 1}), 1.0 + (0.09 - 0.05), 1e-12);
    EXPECT_GE(obj.scoreChoice({1, 1}), 1.0);
}

TEST(SelectionObjective, PenaltyGradesWithExcess)
{
    QuestResult state = makeState();
    state.threshold = 0.02;
    std::vector<std::vector<int>> selected;
    SelectionObjective obj(state, selected, state.threshold, 0.5);
    // {1,1} (bound 0.09) is worse than {2,1} (bound 0.06).
    EXPECT_GT(obj.scoreChoice({1, 1}), obj.scoreChoice({2, 1}));
}

TEST(SelectionObjective, SimilarityPenalizesRepeats)
{
    QuestResult state = makeState();
    std::vector<std::vector<int>> selected = {{1, 1}};
    SelectionObjective obj(state, selected, state.threshold, 0.5);

    // Re-proposing the identical choice: both blocks similar
    // (identity similarity), m = 1, cnorm = 0.3 -> 0.65.
    EXPECT_NEAR(obj.scoreChoice({1, 1}), 0.5 * 1.0 + 0.5 * 0.3, 1e-12);

    // Different approximation for block 0 (dissimilar), same for
    // block 1: m = 0.5, cnorm = 0.5.
    EXPECT_NEAR(obj.scoreChoice({2, 1}), 0.5 * 0.5 + 0.5 * 0.5, 1e-12);
}

TEST(SelectionObjective, AveragesOverSelectedSamples)
{
    QuestResult state = makeState();
    std::vector<std::vector<int>> selected = {{1, 1}, {2, 1}};
    SelectionObjective obj(state, selected, state.threshold, 0.5);
    // Candidate {0,1}: vs {1,1}: blocks similar = (0,1) -> 0.5;
    // vs {2,1}: (0,1) -> 0.5; mean m = 0.5. cnorm = 7/10.
    EXPECT_NEAR(obj.scoreChoice({0, 1}), 0.5 * 0.5 + 0.5 * 0.7, 1e-12);
}

TEST(SelectionObjective, CnotWeightExtremes)
{
    QuestResult state = makeState();
    std::vector<std::vector<int>> selected = {{1, 1}};
    SelectionObjective pure_cnot(state, selected, state.threshold, 1.0);
    EXPECT_NEAR(pure_cnot.scoreChoice({1, 1}), 0.3, 1e-12);
    SelectionObjective pure_sim(state, selected, state.threshold, 0.0);
    EXPECT_NEAR(pure_sim.scoreChoice({1, 1}), 1.0, 1e-12);
}

TEST(SelectionObjective, OperatorMatchesScoreChoice)
{
    QuestResult state = makeState();
    std::vector<std::vector<int>> selected;
    SelectionObjective obj(state, selected, state.threshold, 0.5);
    EXPECT_EQ(obj({0.4, 0.6}), obj.scoreChoice(obj.toChoice({0.4, 0.6})));
}

} // namespace
} // namespace quest
