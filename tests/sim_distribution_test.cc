/**
 * @file
 * Distribution type tests.
 */

#include <gtest/gtest.h>

#include "sim/distribution.hh"

namespace quest {
namespace {

TEST(Distribution, ZeroInitialized)
{
    Distribution d(3);
    EXPECT_EQ(d.size(), 8u);
    EXPECT_EQ(d.numQubits(), 3);
    EXPECT_EQ(d.total(), 0.0);
}

TEST(Distribution, FromVector)
{
    Distribution d(std::vector<double>{0.25, 0.25, 0.25, 0.25});
    EXPECT_EQ(d.numQubits(), 2);
    EXPECT_NEAR(d.total(), 1.0, 1e-12);
}

TEST(Distribution, NonPowerOfTwoPanics)
{
    EXPECT_DEATH(Distribution(std::vector<double>{0.5, 0.25, 0.25}),
                 "power of two");
}

TEST(Distribution, FromCountsNormalizes)
{
    Distribution d = Distribution::fromCounts({10, 30, 0, 60});
    EXPECT_NEAR(d[0], 0.1, 1e-12);
    EXPECT_NEAR(d[1], 0.3, 1e-12);
    EXPECT_NEAR(d[3], 0.6, 1e-12);
    EXPECT_NEAR(d.total(), 1.0, 1e-12);
}

TEST(Distribution, AverageOfTwo)
{
    Distribution a(std::vector<double>{1.0, 0.0});
    Distribution b(std::vector<double>{0.0, 1.0});
    Distribution avg = Distribution::average({a, b});
    EXPECT_NEAR(avg[0], 0.5, 1e-12);
    EXPECT_NEAR(avg[1], 0.5, 1e-12);
}

TEST(Distribution, AverageSingleIsIdentity)
{
    Distribution a(std::vector<double>{0.7, 0.3});
    Distribution avg = Distribution::average({a});
    EXPECT_NEAR(avg[0], 0.7, 1e-12);
}

TEST(Distribution, NormalizeRescales)
{
    Distribution d(std::vector<double>{2.0, 2.0});
    d.normalize();
    EXPECT_NEAR(d[0], 0.5, 1e-12);
}

TEST(Distribution, NormalizeZeroIsNoop)
{
    Distribution d(1);
    d.normalize();
    EXPECT_EQ(d.total(), 0.0);
}

TEST(Distribution, SampleRespectsWeights)
{
    Distribution d(std::vector<double>{0.0, 1.0});
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(d.sample(rng), 1u);
}

TEST(Distribution, SampledConvergesWithShots)
{
    Distribution d(std::vector<double>{0.5, 0.25, 0.125, 0.125});
    Rng rng(7);
    Distribution emp = d.sampled(100000, rng);
    for (size_t k = 0; k < 4; ++k)
        EXPECT_NEAR(emp[k], d[k], 0.01);
}

} // namespace
} // namespace quest
