/**
 * @file
 * Dual-annealing minimizer tests on continuous and discrete
 * objectives (the QUEST selection objective is piecewise constant).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "anneal/dual_annealing.hh"

namespace quest {
namespace {

constexpr double pi = std::numbers::pi;

TEST(DualAnnealing, QuadraticBowl)
{
    AnnealObjective f = [](const std::vector<double> &x) {
        double v = 0.0;
        for (double xi : x)
            v += (xi - 0.3) * (xi - 0.3);
        return v;
    };
    AnnealOptions opts;
    opts.maxIterations = 2000;
    AnnealResult r = dualAnnealing(f, {0.0, 0.0}, {1.0, 1.0}, opts);
    EXPECT_LT(r.value, 1e-2);
}

TEST(DualAnnealing, RastriginEscapesLocalMinima)
{
    AnnealObjective f = [](const std::vector<double> &x) {
        double v = 10.0 * static_cast<double>(x.size());
        for (double xi : x)
            v += xi * xi - 10.0 * std::cos(2.0 * pi * xi);
        return v;
    };
    AnnealOptions opts;
    opts.maxIterations = 4000;
    opts.seed = 5;
    AnnealResult r =
        dualAnnealing(f, {-5.12, -5.12}, {5.12, 5.12}, opts);
    // Global minimum is 0 at the origin; accept near-global.
    EXPECT_LT(r.value, 2.0);
}

TEST(DualAnnealing, DiscreteIndexObjective)
{
    // Mimics QUEST: coordinates in [0,1) map to indices 0..9; the
    // optimum is a specific index combination.
    AnnealObjective f = [](const std::vector<double> &x) {
        int i0 = std::min(9, static_cast<int>(x[0] * 10));
        int i1 = std::min(9, static_cast<int>(x[1] * 10));
        return std::abs(i0 - 7) + std::abs(i1 - 2);
    };
    AnnealOptions opts;
    opts.maxIterations = 1500;
    AnnealResult r = dualAnnealing(f, {0.0, 0.0}, {1.0, 1.0}, opts);
    EXPECT_EQ(r.value, 0.0);
}

TEST(DualAnnealing, LocalSearchPolishesPlateaus)
{
    // Piecewise-constant with a single narrow optimal cell: the grid
    // polish must find it even if annealing only lands nearby.
    AnnealObjective f = [](const std::vector<double> &x) {
        int idx = std::min(15, static_cast<int>(x[0] * 16));
        return idx == 11 ? 0.0 : 1.0 + idx * 0.01;
    };
    AnnealOptions opts;
    opts.maxIterations = 200;
    opts.localSearch = true;
    AnnealResult r = dualAnnealing(f, {0.0}, {1.0}, opts);
    EXPECT_EQ(r.value, 0.0);
}

TEST(DualAnnealing, DeterministicForSeed)
{
    AnnealObjective f = [](const std::vector<double> &x) {
        return std::abs(x[0] - 0.5) + std::abs(x[1] + 0.2);
    };
    AnnealOptions opts;
    opts.maxIterations = 500;
    opts.seed = 17;
    AnnealResult a = dualAnnealing(f, {-1, -1}, {1, 1}, opts);
    AnnealResult b = dualAnnealing(f, {-1, -1}, {1, 1}, opts);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.x, b.x);
}

TEST(DualAnnealing, SeedsChangeTrajectory)
{
    AnnealObjective f = [](const std::vector<double> &x) {
        return x[0] * x[0];
    };
    AnnealOptions a_opts, b_opts;
    a_opts.maxIterations = b_opts.maxIterations = 50;
    a_opts.localSearch = b_opts.localSearch = false;
    a_opts.seed = 1;
    b_opts.seed = 2;
    AnnealResult a = dualAnnealing(f, {-10}, {10}, a_opts);
    AnnealResult b = dualAnnealing(f, {-10}, {10}, b_opts);
    EXPECT_NE(a.x[0], b.x[0]);
}

TEST(DualAnnealing, StaysInBounds)
{
    std::vector<double> lo = {-2.0, 3.0};
    std::vector<double> hi = {-1.0, 4.5};
    AnnealObjective f = [&](const std::vector<double> &x) {
        EXPECT_GE(x[0], lo[0]);
        EXPECT_LE(x[0], hi[0]);
        EXPECT_GE(x[1], lo[1]);
        EXPECT_LE(x[1], hi[1]);
        return x[0] + x[1];
    };
    AnnealOptions opts;
    opts.maxIterations = 500;
    AnnealResult r = dualAnnealing(f, lo, hi, opts);
    EXPECT_NEAR(r.value, lo[0] + lo[1], 0.3);
}

TEST(DualAnnealing, CountsEvaluations)
{
    AnnealObjective f = [](const std::vector<double> &x) {
        return x[0];
    };
    AnnealOptions opts;
    opts.maxIterations = 100;
    opts.localSearch = false;
    AnnealResult r = dualAnnealing(f, {0.0}, {1.0}, opts);
    EXPECT_GT(r.evaluations, 50);
    EXPECT_LE(r.evaluations, 150);
}

TEST(DualAnnealing, BadBoundsPanic)
{
    AnnealObjective f = [](const std::vector<double> &) { return 0.0; };
    EXPECT_DEATH(dualAnnealing(f, {1.0}, {0.0}), "bound");
    EXPECT_DEATH(dualAnnealing(f, {}, {}), "bad bounds");
}

} // namespace
} // namespace quest
