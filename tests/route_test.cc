/**
 * @file
 * Coupling map and SWAP-router tests. Correctness criterion: the
 * routed circuit, after un-permuting the final layout, produces the
 * same output distribution as the logical circuit.
 */

#include <gtest/gtest.h>

#include "algos/algorithms.hh"
#include "ir/lower.hh"
#include "metrics/output_distance.hh"
#include "route/router.hh"
#include "sim/simulator.hh"
#include "util/rng.hh"

namespace quest {
namespace {

Circuit
randomNativeCircuit(int n, int gates, uint64_t seed)
{
    Rng rng(seed);
    Circuit c(n);
    for (int i = 0; i < gates; ++i) {
        if (rng.bernoulli(0.4)) {
            int a = static_cast<int>(rng.uniformInt(n));
            int b = static_cast<int>(rng.uniformInt(n));
            if (a == b)
                b = (b + 1) % n;
            c.append(Gate::cx(a, b));
        } else {
            c.append(Gate::u3(static_cast<int>(rng.uniformInt(n)),
                              rng.uniform(-3, 3), rng.uniform(-3, 3),
                              rng.uniform(-3, 3)));
        }
    }
    return c;
}

TEST(CouplingMap, LineTopology)
{
    CouplingMap m = CouplingMap::line(5);
    EXPECT_EQ(m.numQubits(), 5);
    EXPECT_EQ(m.edges().size(), 4u);
    EXPECT_TRUE(m.connected(0, 1));
    EXPECT_TRUE(m.connected(1, 0));
    EXPECT_FALSE(m.connected(0, 2));
    EXPECT_EQ(m.distance(0, 4), 4);
    EXPECT_EQ(m.distance(2, 2), 0);
}

TEST(CouplingMap, RingTopology)
{
    CouplingMap m = CouplingMap::ring(6);
    EXPECT_EQ(m.edges().size(), 6u);
    EXPECT_TRUE(m.connected(0, 5));
    EXPECT_EQ(m.distance(0, 3), 3);
    EXPECT_EQ(m.distance(0, 5), 1);
}

TEST(CouplingMap, GridTopology)
{
    CouplingMap m = CouplingMap::grid(2, 3);
    EXPECT_EQ(m.numQubits(), 6);
    // 2x3 grid: 3 + 4 = 7 edges.
    EXPECT_EQ(m.edges().size(), 7u);
    EXPECT_TRUE(m.connected(0, 3));  // vertical
    EXPECT_TRUE(m.connected(0, 1));  // horizontal
    EXPECT_EQ(m.distance(0, 5), 3);
}

TEST(CouplingMap, FullyConnected)
{
    CouplingMap m = CouplingMap::fullyConnected(4);
    EXPECT_EQ(m.edges().size(), 6u);
    for (int a = 0; a < 4; ++a)
        for (int b = 0; b < 4; ++b)
            if (a != b) {
                EXPECT_EQ(m.distance(a, b), 1);
            }
}

TEST(CouplingMap, DeduplicatesEdges)
{
    CouplingMap m(3, {{0, 1}, {1, 0}, {0, 1}});
    EXPECT_EQ(m.edges().size(), 1u);
}

TEST(CouplingMap, DisconnectedDistancePanics)
{
    CouplingMap m(3, {{0, 1}});
    EXPECT_DEATH(m.distance(0, 2), "disconnected");
}

TEST(Router, NoSwapsOnFullConnectivity)
{
    Circuit c = randomNativeCircuit(4, 20, 3);
    RoutingResult r =
        routeCircuit(c, CouplingMap::fullyConnected(4));
    EXPECT_EQ(r.swapCount, 0u);
    EXPECT_EQ(r.circuit.size(), c.size());
    EXPECT_EQ(r.finalLayout, r.initialLayout);
}

TEST(Router, AdjacentGatesNeedNoSwaps)
{
    Circuit c(3);
    c.append(Gate::cx(0, 1));
    c.append(Gate::cx(1, 2));
    RoutingResult r = routeCircuit(c, CouplingMap::line(3));
    EXPECT_EQ(r.swapCount, 0u);
}

TEST(Router, DistantGateInsertsSwaps)
{
    Circuit c(5);
    c.append(Gate::cx(0, 4));
    RoutingResult r = routeCircuit(c, CouplingMap::line(5));
    EXPECT_EQ(r.swapCount, 3u);  // distance 4 -> 3 swaps
    // The emitted CX ends on adjacent wires.
    const Gate &last = r.circuit[r.circuit.size() - 1];
    EXPECT_EQ(last.type, GateType::CX);
    EXPECT_EQ(std::abs(last.qubits[0] - last.qubits[1]), 1);
}

TEST(Router, RoutedGatesRespectCoupling)
{
    CouplingMap device = CouplingMap::line(5);
    Circuit c = randomNativeCircuit(5, 40, 7);
    RoutingResult r = routeCircuit(c, device);
    for (const Gate &g : r.circuit) {
        if (g.arity() == 2) {
            EXPECT_TRUE(device.connected(g.qubits[0], g.qubits[1]))
                << g.toString();
        }
    }
}

class RouterEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>>
{
};

TEST_P(RouterEquivalence, OutputDistributionPreserved)
{
    auto [seed, topo] = GetParam();
    Circuit c = randomNativeCircuit(5, 30, seed);
    CouplingMap device = topo == 0   ? CouplingMap::line(5)
                         : topo == 1 ? CouplingMap::ring(5)
                                     : CouplingMap::fullyConnected(5);
    RoutingResult r = routeCircuit(c, device);

    Distribution logical = idealDistribution(c);
    Distribution physical = idealDistribution(r.circuit);
    Distribution unpermuted =
        unpermuteDistribution(physical, r.finalLayout);
    EXPECT_LT(tvd(logical, unpermuted), 1e-9)
        << "seed " << seed << " topo " << topo;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RouterEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0, 1, 2)));

TEST(Router, SuiteCircuitsOnManila)
{
    for (const auto &spec : algos::manilaSuite()) {
        Circuit c = lowerToNative(spec.build()).withoutPseudoOps();
        RoutingResult r = routeCircuit(c, CouplingMap::ibmqManila());
        Distribution logical = idealDistribution(c);
        Distribution physical = idealDistribution(r.circuit);
        EXPECT_LT(tvd(logical, unpermuteDistribution(physical,
                                                     r.finalLayout)),
                  1e-9)
            << spec.name;
    }
}

TEST(Router, WiderDeviceThanCircuit)
{
    Circuit c = randomNativeCircuit(3, 15, 11);
    RoutingResult r = routeCircuit(c, CouplingMap::line(5));
    EXPECT_EQ(r.circuit.numQubits(), 5);
    Distribution logical = idealDistribution(c);
    Distribution physical = idealDistribution(r.circuit);
    EXPECT_LT(tvd(logical, unpermuteDistribution(physical,
                                                 r.finalLayout)),
              1e-9);
}

TEST(Router, TooWideCircuitPanics)
{
    Circuit c(4);
    c.append(Gate::cx(0, 3));
    EXPECT_DEATH(routeCircuit(c, CouplingMap::line(3)), "device");
}

TEST(Router, RequiresLoweredGates)
{
    Circuit c(3);
    c.append(Gate::ccx(0, 1, 2));
    EXPECT_DEATH(routeCircuit(c, CouplingMap::line(3)), "lowered");
}

} // namespace
} // namespace quest
