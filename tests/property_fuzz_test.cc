/**
 * @file
 * Cross-module property tests on randomly generated circuits: QASM
 * round trips, lowering, partitioning, routing and the two noise
 * simulators must all agree on semantics for arbitrary inputs, not
 * just the curated suite.
 */

#include <gtest/gtest.h>

#include <numbers>

#include "ir/lower.hh"
#include "ir/qasm.hh"
#include "linalg/distance.hh"
#include "metrics/output_distance.hh"
#include "partition/scan_partitioner.hh"
#include "route/router.hh"
#include "sim/density_matrix.hh"
#include "sim/simulator.hh"
#include "sim/unitary_builder.hh"
#include "util/rng.hh"

namespace quest {
namespace {

constexpr double pi = std::numbers::pi;

/** Random circuit drawing from the full gate set. */
Circuit
randomMixedCircuit(int n, int gates, uint64_t seed)
{
    Rng rng(seed);
    Circuit c(n);
    auto wire = [&]() { return static_cast<int>(rng.uniformInt(n)); };
    auto angle = [&]() { return rng.uniform(-pi, pi); };
    for (int i = 0; i < gates; ++i) {
        int q = wire();
        int r = (q + 1 + static_cast<int>(rng.uniformInt(n - 1))) % n;
        switch (rng.uniformInt(12)) {
          case 0: c.append(Gate::h(q)); break;
          case 1: c.append(Gate::x(q)); break;
          case 2: c.append(Gate::t(q)); break;
          case 3: c.append(Gate::sdg(q)); break;
          case 4: c.append(Gate::rx(q, angle())); break;
          case 5: c.append(Gate::u3(q, angle(), angle(), angle()));
                  break;
          case 6: c.append(Gate::cx(q, r)); break;
          case 7: c.append(Gate::cz(q, r)); break;
          case 8: c.append(Gate::swap(q, r)); break;
          case 9: c.append(Gate::rzz(q, r, angle())); break;
          case 10: c.append(Gate::cp(q, r, angle())); break;
          default:
            if (n >= 3) {
                int s = (r + 1 + static_cast<int>(
                         rng.uniformInt(n - 2))) % n;
                if (s == q || s == r)
                    s = (std::max(q, r) + 1) % n;
                if (s != q && s != r) {
                    c.append(Gate::ccx(q, r, s));
                    break;
                }
            }
            c.append(Gate::y(q));
        }
    }
    return c;
}

class FuzzSeeds : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzSeeds, QasmRoundTripPreservesUnitary)
{
    Circuit c = randomMixedCircuit(4, 25, GetParam());
    Circuit parsed = parseQasm(toQasm(c));
    EXPECT_NEAR(hsDistance(buildUnitary(c), buildUnitary(parsed)), 0.0,
                1e-7);
}

TEST_P(FuzzSeeds, LoweringPreservesUnitary)
{
    Circuit c = randomMixedCircuit(4, 25, GetParam() + 100);
    Circuit lowered = lowerToNative(c);
    EXPECT_TRUE(isNative(lowered));
    EXPECT_NEAR(hsDistance(buildUnitary(c), buildUnitary(lowered)),
                0.0, 1e-7);
}

TEST_P(FuzzSeeds, PartitionReassemblyPreservesUnitary)
{
    Circuit c =
        lowerToNative(randomMixedCircuit(5, 30, GetParam() + 200));
    for (int width : {2, 3, 4}) {
        ScanPartitioner partitioner(width);
        auto blocks = partitioner.partition(c);
        Circuit back = assembleBlocks(blocks, c.numQubits());
        EXPECT_NEAR(hsDistance(buildUnitary(c), buildUnitary(back)),
                    0.0, 1e-7)
            << "width " << width;
    }
}

TEST_P(FuzzSeeds, RoutingPreservesDistribution)
{
    Circuit c =
        lowerToNative(randomMixedCircuit(5, 25, GetParam() + 300));
    RoutingResult r = routeCircuit(c, CouplingMap::line(5));
    Distribution logical = idealDistribution(c);
    Distribution physical = idealDistribution(r.circuit);
    EXPECT_LT(tvd(logical, unpermuteDistribution(physical,
                                                 r.finalLayout)),
              1e-9);
}

TEST_P(FuzzSeeds, DensityMatrixAgreesWithStatevector)
{
    Circuit c = randomMixedCircuit(3, 15, GetParam() + 400);
    DensityMatrix rho(3);
    for (const Gate &g : c)
        rho.applyGate(g);
    EXPECT_LT(tvd(rho.probabilities(), idealDistribution(c)), 1e-9);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-9);
}

TEST_P(FuzzSeeds, InverseComposesToIdentity)
{
    Circuit c = randomMixedCircuit(4, 20, GetParam() + 500);
    Circuit both(4);
    both.appendCircuit(c);
    both.appendCircuit(c.inverse());
    EXPECT_NEAR(hsDistance(buildUnitary(both), Matrix::identity(16)),
                0.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzSeeds,
                         ::testing::Range<uint64_t>(1, 9));

} // namespace
} // namespace quest
