/**
 * @file
 * Ensemble-evaluation tests on a shared small pipeline run.
 */

#include <gtest/gtest.h>

#include "algos/algorithms.hh"
#include "ir/lower.hh"
#include "metrics/output_distance.hh"
#include "quest/ensemble.hh"
#include "quest/pipeline.hh"
#include "sim/simulator.hh"

namespace quest {
namespace {

const QuestResult &
sharedResult()
{
    static QuestResult r = []() {
        QuestConfig cfg;
        cfg.thresholdPerBlock = 0.1;
        cfg.synth.beamWidth = 1;
        cfg.synth.inst.multistarts = 2;
        cfg.synth.inst.lbfgs.maxIterations = 250;
        cfg.synth.maxLayers = 8;
        cfg.anneal.maxIterations = 300;
        cfg.maxSamples = 4;
        return QuestPipeline(cfg).run(algos::tfim(4, 3));
    }();
    return r;
}

TEST(Ensemble, SampleCircuitsMatchSamples)
{
    const QuestResult &r = sharedResult();
    auto circuits = sampleCircuits(r, false);
    ASSERT_EQ(circuits.size(), r.samples.size());
    for (size_t i = 0; i < circuits.size(); ++i)
        EXPECT_EQ(circuits[i].cnotCount(), r.samples[i].cnotCount);
}

TEST(Ensemble, QiskitPassNeverIncreasesCnots)
{
    const QuestResult &r = sharedResult();
    auto raw = sampleCircuits(r, false);
    auto optimized = sampleCircuits(r, true);
    ASSERT_EQ(raw.size(), optimized.size());
    for (size_t i = 0; i < raw.size(); ++i)
        EXPECT_LE(optimized[i].cnotCount(), raw[i].cnotCount());
}

TEST(Ensemble, IdealDistributionIsNormalized)
{
    Distribution d = ensembleDistribution(sharedResult());
    EXPECT_NEAR(d.total(), 1.0, 1e-9);
}

TEST(Ensemble, IdealMatchesManualAverage)
{
    const QuestResult &r = sharedResult();
    std::vector<Distribution> outputs;
    for (const ApproxSample &s : r.samples)
        outputs.push_back(idealDistribution(s.circuit));
    Distribution manual = Distribution::average(outputs);
    Distribution viaApi = ensembleDistribution(r);
    EXPECT_LT(tvd(manual, viaApi), 1e-12);
}

TEST(Ensemble, NoisyRunIsDeterministicPerSeed)
{
    const QuestResult &r = sharedResult();
    EnsembleOptions opts;
    opts.noise = NoiseModel::pauli(0.01);
    opts.shots = 500;
    opts.seed = 5;
    Distribution a = ensembleDistribution(r, opts);
    Distribution b = ensembleDistribution(r, opts);
    for (size_t k = 0; k < a.size(); ++k)
        EXPECT_EQ(a[k], b[k]);
}

TEST(Ensemble, NoiseDegradesOutput)
{
    const QuestResult &r = sharedResult();
    Distribution truth = idealDistribution(r.original);
    Distribution ideal = ensembleDistribution(r);

    EnsembleOptions noisy;
    noisy.noise = NoiseModel::pauli(0.05);
    noisy.shots = 4096;
    Distribution degraded = ensembleDistribution(r, noisy);

    EXPECT_GT(tvd(truth, degraded), tvd(truth, ideal));
}

TEST(Ensemble, ZeroLambdaEqualsPlainAverage)
{
    const QuestResult &r = sharedResult();
    EnsembleOptions plain;
    EnsembleOptions weighted;
    weighted.cnotWeightLambda = 0.0;
    Distribution a = ensembleDistribution(r, plain);
    Distribution b = ensembleDistribution(r, weighted);
    for (size_t k = 0; k < a.size(); ++k)
        EXPECT_EQ(a[k], b[k]);
}

TEST(Ensemble, LargeLambdaApproachesShortestSample)
{
    const QuestResult &r = sharedResult();
    size_t shortest = 0;
    for (size_t i = 1; i < r.samples.size(); ++i)
        if (r.samples[i].cnotCount < r.samples[shortest].cnotCount)
            shortest = i;
    Distribution lone = idealDistribution(r.samples[shortest].circuit);

    EnsembleOptions opts;
    opts.cnotWeightLambda = 50.0;  // effectively winner-take-all
    Distribution weighted = ensembleDistribution(r, opts);
    EXPECT_LT(tvd(weighted, lone), 1e-6);
}

TEST(Ensemble, WeightedStillNormalized)
{
    const QuestResult &r = sharedResult();
    EnsembleOptions opts;
    opts.cnotWeightLambda = 0.1;
    Distribution d = ensembleDistribution(r, opts);
    EXPECT_NEAR(d.total(), 1.0, 1e-9);
}

TEST(Ensemble, CnotCountAveragesSamples)
{
    const QuestResult &r = sharedResult();
    double mean = ensembleCnotCount(r, false);
    EXPECT_NEAR(mean, r.meanSampleCnots(), 1e-12);
    EXPECT_LE(ensembleCnotCount(r, true), mean + 1e-12);
}

} // namespace
} // namespace quest
