/**
 * @file
 * Unit tests for the resilience layer: budgets, the error taxonomy,
 * fault injection, the QRJ1 journal, cancel-aware parallelFor, and
 * the budget plumbing through L-BFGS, dual annealing and the
 * synthesis cache.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "anneal/dual_annealing.hh"
#include "cache/synthesis_cache.hh"
#include "obs/metrics.hh"
#include "resilience/budget.hh"
#include "resilience/error.hh"
#include "resilience/fault.hh"
#include "resilience/journal.hh"
#include "resilience/thread_pool.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "service/socket.hh"
#include "synth/lbfgs.hh"
#include "util/sha256.hh"

namespace quest {
namespace {

namespace fs = std::filesystem;
using namespace resilience;

fs::path
makeTempDir()
{
    std::string tmpl =
        (fs::temp_directory_path() / "quest-resil-test-XXXXXX").string();
    char *dir = mkdtemp(tmpl.data());
    EXPECT_NE(dir, nullptr);
    return fs::path(dir);
}

struct TempDir
{
    fs::path path = makeTempDir();
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

uint64_t
counterValue(const char *name)
{
    return obs::MetricsRegistry::global().counter(name).value();
}

// ---- Deadline / CancelToken / Budget -------------------------------

TEST(Deadline, DefaultIsNever)
{
    Deadline d;
    EXPECT_TRUE(d.isNever());
    EXPECT_FALSE(d.expired());
    EXPECT_TRUE(std::isinf(d.remainingSeconds()));
}

TEST(Deadline, ZeroOrNegativeExpiresImmediately)
{
    EXPECT_TRUE(Deadline::after(0.0).expired());
    EXPECT_TRUE(Deadline::after(-1.0).expired());
    EXPECT_EQ(Deadline::after(-1.0).remainingSeconds(), 0.0);
}

TEST(Deadline, FutureDeadlineNotExpired)
{
    Deadline d = Deadline::after(3600.0);
    EXPECT_FALSE(d.isNever());
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remainingSeconds(), 3000.0);
}

TEST(Deadline, SoonerPicksTighter)
{
    const Deadline never = Deadline::never();
    const Deadline loose = Deadline::after(3600.0);
    const Deadline tight = Deadline::after(0.0);
    EXPECT_TRUE(Deadline::sooner(never, never).isNever());
    EXPECT_FALSE(Deadline::sooner(never, loose).isNever());
    EXPECT_TRUE(Deadline::sooner(tight, loose).expired());
    EXPECT_TRUE(Deadline::sooner(loose, tight).expired());
}

TEST(CancelToken, StickyAndHierarchical)
{
    CancelToken parent;
    CancelToken child(&parent);
    CancelToken grandchild(&child);
    EXPECT_FALSE(grandchild.cancelled());

    parent.cancel();
    EXPECT_TRUE(parent.cancelled());
    EXPECT_TRUE(child.cancelled());
    EXPECT_TRUE(grandchild.cancelled());
}

TEST(CancelToken, ChildDoesNotCancelParent)
{
    CancelToken parent;
    CancelToken child(&parent);
    child.cancel();
    EXPECT_TRUE(child.cancelled());
    EXPECT_FALSE(parent.cancelled());
}

TEST(Budget, DefaultIsUnbounded)
{
    Budget b;
    EXPECT_TRUE(b.unbounded());
    EXPECT_FALSE(b.exhausted());
    EXPECT_EQ(b.stop(), StopReason::None);
}

TEST(Budget, DeadlineStops)
{
    Budget b(Deadline::after(0.0), nullptr);
    EXPECT_FALSE(b.unbounded());
    EXPECT_EQ(b.stop(), StopReason::Deadline);
}

TEST(Budget, CancellationWinsOverDeadline)
{
    CancelToken token;
    token.cancel();
    Budget b(Deadline::after(0.0), &token);
    EXPECT_EQ(b.stop(), StopReason::Cancelled);
}

TEST(Budget, WithDeadlineTightens)
{
    Budget loose(Deadline::never(), nullptr);
    EXPECT_TRUE(loose.withDeadline(Deadline::after(0.0)).exhausted());

    CancelToken token;
    Budget b(Deadline::after(3600.0), &token);
    Budget tighter = b.withDeadline(Deadline::after(0.0));
    EXPECT_EQ(tighter.cancel, &token);
    EXPECT_EQ(tighter.stop(), StopReason::Deadline);

    // The looser extra deadline must not loosen the original.
    Budget same = Budget(Deadline::after(0.0), nullptr)
                      .withDeadline(Deadline::after(3600.0));
    EXPECT_TRUE(same.exhausted());
}

TEST(Budget, StopReasonNames)
{
    EXPECT_STREQ(stopReasonName(StopReason::None), "none");
    EXPECT_STREQ(stopReasonName(StopReason::Cancelled), "cancelled");
    EXPECT_STREQ(stopReasonName(StopReason::Deadline), "deadline");
}

// ---- QuestError ----------------------------------------------------

TEST(QuestErrorTest, CarriesCategoryAndExitCode)
{
    QuestError e(ErrorCategory::Timeout, "run budget exhausted");
    EXPECT_EQ(e.category(), ErrorCategory::Timeout);
    EXPECT_EQ(e.exitCode(), 12);
    EXPECT_STREQ(e.what(), "timeout: run budget exhausted");
}

TEST(QuestErrorTest, ContextChainRenders)
{
    QuestError e(ErrorCategory::Io, "disk full");
    e.withContext("storing block 3").withContext("compiling foo.qasm");
    EXPECT_EQ(e.context().size(), 2u);
    EXPECT_STREQ(e.what(), "io: disk full (storing block 3; "
                           "compiling foo.qasm)");
    EXPECT_EQ(e.describe(), std::string(e.what()));
}

TEST(QuestErrorTest, ExitCodesAreDistinctAndDocumented)
{
    const ErrorCategory all[] = {
        ErrorCategory::InvalidInput, ErrorCategory::Io,
        ErrorCategory::Timeout,      ErrorCategory::Cancelled,
        ErrorCategory::Diverged,     ErrorCategory::Resource,
        ErrorCategory::Internal,
    };
    std::vector<int> codes;
    for (ErrorCategory c : all) {
        const int code = exitCodeFor(c);
        // Never collide with success (0), legacy fatal (1), usage (2).
        EXPECT_GE(code, 10);
        for (int seen : codes)
            EXPECT_NE(code, seen);
        codes.push_back(code);
    }
    EXPECT_EQ(exitCodeFor(ErrorCategory::InvalidInput), 10);
    EXPECT_EQ(exitCodeFor(ErrorCategory::Internal), 70);
    EXPECT_STREQ(errorCategoryName(ErrorCategory::Diverged), "diverged");
}

// ---- FaultPlan -----------------------------------------------------

TEST(Fault, QuiescentByDefault)
{
    EXPECT_FALSE(FaultPlan::armed());
    EXPECT_FALSE(QUEST_FAULT_POINT("resilience-test.noplan"));
}

TEST(Fault, AlwaysAndScopedDisarm)
{
    {
        ScopedFaultPlan plan("resilience-test.a:always");
        EXPECT_TRUE(FaultPlan::armed());
        EXPECT_TRUE(QUEST_FAULT_POINT("resilience-test.a"));
        EXPECT_TRUE(QUEST_FAULT_POINT("resilience-test.a"));
        // Unrelated sites never fire.
        EXPECT_FALSE(QUEST_FAULT_POINT("resilience-test.other"));
    }
    EXPECT_FALSE(FaultPlan::armed());
    EXPECT_FALSE(QUEST_FAULT_POINT("resilience-test.a"));
}

TEST(Fault, TriggerSchedules)
{
    {
        ScopedFaultPlan plan("resilience-test.once:once");
        EXPECT_TRUE(QUEST_FAULT_POINT("resilience-test.once"));
        EXPECT_FALSE(QUEST_FAULT_POINT("resilience-test.once"));
    }
    {
        ScopedFaultPlan plan("resilience-test.nth:nth=3");
        EXPECT_FALSE(QUEST_FAULT_POINT("resilience-test.nth"));
        EXPECT_FALSE(QUEST_FAULT_POINT("resilience-test.nth"));
        EXPECT_TRUE(QUEST_FAULT_POINT("resilience-test.nth"));
        EXPECT_FALSE(QUEST_FAULT_POINT("resilience-test.nth"));
    }
    {
        ScopedFaultPlan plan("resilience-test.after:after=2");
        EXPECT_FALSE(QUEST_FAULT_POINT("resilience-test.after"));
        EXPECT_FALSE(QUEST_FAULT_POINT("resilience-test.after"));
        EXPECT_TRUE(QUEST_FAULT_POINT("resilience-test.after"));
        EXPECT_TRUE(QUEST_FAULT_POINT("resilience-test.after"));
    }
    {
        ScopedFaultPlan plan("resilience-test.every:every=2");
        EXPECT_FALSE(QUEST_FAULT_POINT("resilience-test.every"));
        EXPECT_TRUE(QUEST_FAULT_POINT("resilience-test.every"));
        EXPECT_FALSE(QUEST_FAULT_POINT("resilience-test.every"));
        EXPECT_TRUE(QUEST_FAULT_POINT("resilience-test.every"));
    }
}

TEST(Fault, CountsRestartPerPlan)
{
    {
        ScopedFaultPlan plan("resilience-test.restart:nth=2");
        EXPECT_FALSE(QUEST_FAULT_POINT("resilience-test.restart"));
        EXPECT_TRUE(QUEST_FAULT_POINT("resilience-test.restart"));
        EXPECT_EQ(FaultPlan::firedCount(), 1u);
    }
    {
        ScopedFaultPlan plan("resilience-test.restart:nth=2");
        // Fresh plan, fresh per-site counts.
        EXPECT_FALSE(QUEST_FAULT_POINT("resilience-test.restart"));
        EXPECT_TRUE(QUEST_FAULT_POINT("resilience-test.restart"));
    }
}

TEST(Fault, MultiSitePlans)
{
    ScopedFaultPlan plan(
        "resilience-test.x:once,resilience-test.y:always");
    EXPECT_TRUE(QUEST_FAULT_POINT("resilience-test.x"));
    EXPECT_FALSE(QUEST_FAULT_POINT("resilience-test.x"));
    EXPECT_TRUE(QUEST_FAULT_POINT("resilience-test.y"));
    EXPECT_TRUE(QUEST_FAULT_POINT("resilience-test.y"));
}

TEST(Fault, FiredFaultsAreCounted)
{
    const uint64_t before = counterValue("resilience.faults_injected");
    ScopedFaultPlan plan("resilience-test.counted:always");
    EXPECT_TRUE(QUEST_FAULT_POINT("resilience-test.counted"));
    EXPECT_TRUE(QUEST_FAULT_POINT("resilience-test.counted"));
    EXPECT_EQ(counterValue("resilience.faults_injected"), before + 2);
    EXPECT_GE(counterValue("fault.resilience-test.counted"), 2u);
}

TEST(Fault, ParseRejectsMalformedSpecs)
{
    EXPECT_THROW(FaultPlan::parse("no-trigger"), QuestError);
    EXPECT_THROW(FaultPlan::parse("site:bogus"), QuestError);
    EXPECT_THROW(FaultPlan::parse("site:nth"), QuestError);
    EXPECT_THROW(FaultPlan::parse("site:nth=abc"), QuestError);
    EXPECT_THROW(FaultPlan::parse(":always"), QuestError);
    try {
        FaultPlan::parse("site:bogus");
        FAIL() << "expected QuestError";
    } catch (const QuestError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::InvalidInput);
    }
}

// ---- Journal -------------------------------------------------------

std::vector<uint8_t>
bytesOf(const std::string &s)
{
    return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(JournalTest, AppendAndRecover)
{
    TempDir dir;
    const std::string path = (dir.path / "j.qrj").string();
    {
        Journal j(path);
        EXPECT_TRUE(j.records().empty());
        EXPECT_TRUE(j.append(1, bytesOf("alpha")));
        EXPECT_TRUE(j.append(2, bytesOf("")));
        EXPECT_TRUE(j.append(7, bytesOf("gamma")));
    }
    Journal j(path);
    ASSERT_EQ(j.records().size(), 3u);
    EXPECT_EQ(j.records()[0].type, 1u);
    EXPECT_EQ(j.records()[0].payload, bytesOf("alpha"));
    EXPECT_EQ(j.records()[1].type, 2u);
    EXPECT_TRUE(j.records()[1].payload.empty());
    EXPECT_EQ(j.records()[2].type, 7u);
    EXPECT_EQ(j.truncatedBytes(), 0u);
}

TEST(JournalTest, RecoveryTruncatesTornTail)
{
    TempDir dir;
    const std::string path = (dir.path / "j.qrj").string();
    {
        Journal j(path);
        j.append(1, bytesOf("keep-me"));
        j.append(2, bytesOf("torn"));
    }
    // Tear the last record: chop some trailing bytes, as a crash
    // mid-write would.
    const auto full = fs::file_size(path);
    fs::resize_file(path, full - 3);
    {
        Journal j(path);
        ASSERT_EQ(j.records().size(), 1u);
        EXPECT_EQ(j.records()[0].payload, bytesOf("keep-me"));
        EXPECT_GT(j.truncatedBytes(), 0u);
        // The file is usable again: append lands after the good
        // prefix.
        EXPECT_TRUE(j.append(3, bytesOf("new")));
    }
    Journal j(path);
    ASSERT_EQ(j.records().size(), 2u);
    EXPECT_EQ(j.records()[1].payload, bytesOf("new"));
}

TEST(JournalTest, RecoveryDropsCorruptPayload)
{
    TempDir dir;
    const std::string path = (dir.path / "j.qrj").string();
    {
        Journal j(path);
        j.append(1, bytesOf("good"));
        j.append(2, bytesOf("flipped"));
    }
    {
        // Flip one payload byte of the last record; its checksum must
        // catch it.
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(-2, std::ios::end);
        f.put('X');
    }
    Journal j(path);
    ASSERT_EQ(j.records().size(), 1u);
    EXPECT_EQ(j.records()[0].payload, bytesOf("good"));
}

TEST(JournalTest, WrongMagicStartsFresh)
{
    TempDir dir;
    const std::string path = (dir.path / "j.qrj").string();
    {
        std::ofstream f(path, std::ios::binary);
        f << "NOTJ0000 some trailing garbage";
    }
    Journal j(path);
    EXPECT_TRUE(j.records().empty());
    EXPECT_TRUE(j.append(1, bytesOf("fresh")));
}

TEST(JournalTest, ResetDiscardsRecords)
{
    TempDir dir;
    const std::string path = (dir.path / "j.qrj").string();
    {
        Journal j(path);
        j.append(1, bytesOf("gone"));
        j.reset();
        j.append(2, bytesOf("kept"));
    }
    Journal j(path);
    ASSERT_EQ(j.records().size(), 1u);
    EXPECT_EQ(j.records()[0].type, 2u);
}

TEST(JournalTest, InjectedAppendFailureDegradesToReadOnly)
{
    TempDir dir;
    const std::string path = (dir.path / "j.qrj").string();
    const uint64_t before = counterValue("resilience.journal_failures");
    {
        Journal j(path);
        EXPECT_TRUE(j.append(1, bytesOf("persisted")));
        {
            ScopedFaultPlan plan("journal.append:once");
            EXPECT_FALSE(j.append(2, bytesOf("dropped")));
        }
        EXPECT_TRUE(j.failed());
        // Once failed, the journal stays read-only even without the
        // fault: no half-trusted tail.
        EXPECT_FALSE(j.append(3, bytesOf("also dropped")));
    }
    EXPECT_GE(counterValue("resilience.journal_failures"), before + 1);
    Journal j(path);
    ASSERT_EQ(j.records().size(), 1u);
    EXPECT_EQ(j.records()[0].payload, bytesOf("persisted"));
}

TEST(JournalTest, UnwritablePathThrowsIoError)
{
    try {
        Journal j("/proc/definitely/not/writable/j.qrj");
        FAIL() << "expected QuestError";
    } catch (const QuestError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Io);
    }
}

// ---- Cancel-aware parallelFor --------------------------------------

TEST(ThreadPoolCancel, PreCancelledSkipsAllWork)
{
    ThreadPool pool(3);
    CancelToken token;
    token.cancel();
    std::atomic<int> ran{0};
    pool.parallelFor(1000, [&](size_t) { ran.fetch_add(1); }, &token);
    EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolCancel, MidRunCancelStopsUnclaimedIndices)
{
    ThreadPool pool(3);
    CancelToken token;
    std::atomic<int> ran{0};
    pool.parallelFor(
        10000,
        [&](size_t i) {
            if (i == 0)
                token.cancel();
            ran.fetch_add(1);
        },
        &token);
    // Everything claimed before the cancel still ran; the bulk was
    // skipped. parallelFor itself returned (done-accounting exact).
    EXPECT_GT(ran.load(), 0);
    EXPECT_LT(ran.load(), 10000);
}

TEST(ThreadPoolCancel, NullTokenRunsEverything)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.parallelFor(128, [&](size_t) { ran.fetch_add(1); }, nullptr);
    EXPECT_EQ(ran.load(), 128);
}

// ---- Budget plumbing: L-BFGS ---------------------------------------

TEST(LbfgsBudget, CancelStopsWithinOneIteration)
{
    // Quadratic bowl: plenty of iterations available if not stopped.
    GradObjective objective = [](const std::vector<double> &x,
                                 std::vector<double> *grad) {
        double f = 0.0;
        for (size_t i = 0; i < x.size(); ++i) {
            f += x[i] * x[i];
            if (grad)
                (*grad)[i] = 2.0 * x[i];
        }
        return f;
    };

    CancelToken token;
    token.cancel();
    LbfgsOptions options;
    options.budget = Budget(Deadline::never(), &token);
    LbfgsResult r = lbfgsMinimize(objective, {5.0, -3.0}, options);
    EXPECT_EQ(r.stopped, StopReason::Cancelled);
    EXPECT_EQ(r.iterations, 0);
    EXPECT_FALSE(r.converged);

    options.budget = Budget(Deadline::after(0.0), nullptr);
    r = lbfgsMinimize(objective, {5.0, -3.0}, options);
    EXPECT_EQ(r.stopped, StopReason::Deadline);
}

TEST(LbfgsBudget, UnboundedRunUnaffected)
{
    GradObjective objective = [](const std::vector<double> &x,
                                 std::vector<double> *grad) {
        double f = 0.0;
        for (size_t i = 0; i < x.size(); ++i) {
            f += x[i] * x[i];
            if (grad)
                (*grad)[i] = 2.0 * x[i];
        }
        return f;
    };
    LbfgsResult r = lbfgsMinimize(objective, {5.0, -3.0});
    EXPECT_EQ(r.stopped, StopReason::None);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.value, 0.0, 1e-8);
}

TEST(LbfgsBudget, NonFiniteInitialObjectiveIsInfNotCrash)
{
    const uint64_t before = counterValue("lbfgs.nonfinite_objectives");
    GradObjective objective = [](const std::vector<double> &,
                                 std::vector<double> *grad) {
        if (grad)
            (*grad)[0] = 0.0;
        return std::numeric_limits<double>::quiet_NaN();
    };
    LbfgsResult r = lbfgsMinimize(objective, {1.0});
    EXPECT_FALSE(r.converged);
    EXPECT_TRUE(std::isinf(r.value));
    EXPECT_GT(counterValue("lbfgs.nonfinite_objectives"), before);
}

// ---- Budget plumbing: dual annealing -------------------------------

TEST(AnnealBudget, DeadlineStopsSweepLoop)
{
    AnnealObjective objective = [](const std::vector<double> &x) {
        return x[0] * x[0];
    };
    AnnealOptions options;
    options.budget = Budget(Deadline::after(0.0), nullptr);
    AnnealResult r =
        dualAnnealing(objective, {-1.0}, {1.0}, options);
    EXPECT_EQ(r.stopped, StopReason::Deadline);
    // The best-so-far point is still a valid box point.
    ASSERT_EQ(r.x.size(), 1u);
    EXPECT_GE(r.x[0], -1.0);
    EXPECT_LE(r.x[0], 1.0);
}

TEST(AnnealBudget, NanObjectiveIsGuarded)
{
    const uint64_t before = counterValue("anneal.nan_objectives");
    // NaN on part of the domain: the guard must keep the search away
    // without poisoning the best-so-far tracking.
    AnnealObjective objective = [](const std::vector<double> &x) {
        if (x[0] < 0.25)
            return std::numeric_limits<double>::quiet_NaN();
        return (x[0] - 0.5) * (x[0] - 0.5);
    };
    AnnealOptions options;
    options.maxIterations = 60;
    options.seed = 11;
    AnnealResult r = dualAnnealing(objective, {0.0}, {1.0}, options);
    EXPECT_TRUE(std::isfinite(r.value));
    EXPECT_NEAR(r.x[0], 0.5, 0.2);
    EXPECT_GT(counterValue("anneal.nan_objectives"), before);
}

// ---- Cache fault sites ---------------------------------------------

Circuit
tinyNativeCircuit()
{
    Circuit c(2);
    c.append(Gate::u3(0, 0.1, 0.2, 0.3));
    c.append(Gate::cx(0, 1));
    return c;
}

SynthOutput
tinyOutput()
{
    SynthOutput out;
    SynthCandidate cand;
    cand.circuit = tinyNativeCircuit();
    cand.distance = 0.01;
    cand.cnotCount = 1;
    out.candidates.push_back(std::move(cand));
    out.bestIndex = 0;
    return out;
}

TEST(CacheFaults, StoreFailuresDegradeToCountedMiss)
{
    const char *sites[] = {"cache.store.enospc",
                           "cache.store.short_write",
                           "cache.store.rename"};
    for (const char *site : sites) {
        TempDir dir;
        cache::SynthesisCache c({.dir = dir.path.string()});
        const std::string key = Sha256::hexDigest(site);

        const uint64_t failed_before =
            counterValue("quest.cache.store_failed");
        {
            ScopedFaultPlan plan(std::string(site) + ":always");
            c.store(key, tinyOutput());
        }
        EXPECT_EQ(counterValue("quest.cache.store_failed"),
                  failed_before + 1)
            << site;
        // Nothing published, nothing half-written: the next load is a
        // plain miss and a retry succeeds.
        EXPECT_FALSE(c.load(key).has_value()) << site;
        c.store(key, tinyOutput());
        EXPECT_TRUE(c.load(key).has_value()) << site;
    }
}

TEST(CacheFaults, LoadReadFaultIsAMissNotAThrow)
{
    TempDir dir;
    cache::SynthesisCache c({.dir = dir.path.string()});
    const std::string key = Sha256::hexDigest("load-read-fault");
    c.store(key, tinyOutput());
    ASSERT_TRUE(c.load(key).has_value());

    {
        ScopedFaultPlan plan("cache.load.read:once");
        EXPECT_FALSE(c.load(key).has_value());
    }
    // The faulted entry was treated as damaged and dropped; a fresh
    // store repopulates it.
    c.store(key, tinyOutput());
    EXPECT_TRUE(c.load(key).has_value());
}

// ---- Service fault sites -------------------------------------------

TEST(ServiceFaults, WriteFaultDropsOneFrameNotTheSocket)
{
    int sv[2] = {-1, -1};
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    const uint64_t before = counterValue("fault.service.write");
    {
        ScopedFaultPlan plan("service.write:once");
        // The faulted send reports failure before writing a single
        // byte — the caller's contract is to drop that connection,
        // never to leave a torn frame on the wire.
        EXPECT_EQ(
            service::sendFrame(sv[0], service::MsgType::Stats, {}),
            service::SendStatus::Error);
        EXPECT_EQ(counterValue("fault.service.write"), before + 1);
        // `once` has burned: the very next send goes through whole.
        EXPECT_EQ(
            service::sendFrame(sv[0], service::MsgType::Stats, {}),
            service::SendStatus::Ok);
    }
    const service::RecvResult got = service::recvFrame(sv[1]);
    EXPECT_EQ(got.status, service::RecvStatus::Ok);
    EXPECT_EQ(got.frame.type, service::MsgType::Stats);
    EXPECT_TRUE(got.frame.payload.empty());
    // Exactly one frame crossed: the next read sees a clean EOF once
    // the writer hangs up, not half of the dropped frame.
    close(sv[0]);
    EXPECT_EQ(service::recvFrame(sv[1]).status,
              service::RecvStatus::Eof);
    close(sv[1]);
}

TEST(ServiceFaults, AcceptFaultDropsOneConnectionDaemonSurvives)
{
    TempDir dir;
    service::ServerConfig config;
    config.socketPath = (dir.path / "served.sock").string();
    config.executors = 1;
    service::QuestServer server(config);
    server.start();

    const uint64_t before = counterValue("fault.service.accept");
    {
        ScopedFaultPlan plan("service.accept:once");
        // The first connection is accepted and immediately dropped by
        // the injected fault. The client's connect(2) itself succeeds
        // (the listener backlog took it), so the failure surfaces on
        // the first round trip as a closed connection. Healing is
        // disabled so the drop itself is observable — a default
        // client would reconnect and retry straight through it
        // (service_hardening_test pins that).
        service::RetryPolicy noHeal;
        noHeal.retries = 0;
        service::QuestClient victim = service::QuestClient::connect(
            config.socketPath, 5.0, noHeal);
        EXPECT_THROW(victim.stats(), QuestError);
        EXPECT_EQ(counterValue("fault.service.accept"), before + 1);

        // `once` has burned: a retry connection is served normally by
        // the same daemon — one dropped accept never wedges it.
        service::QuestClient retry =
            service::QuestClient::connect(config.socketPath);
        const service::StatsReply stats = retry.stats();
        EXPECT_FALSE(stats.stats.empty());
    }
    EXPECT_EQ(counterValue("fault.service.accept"), before + 1);
    server.stop();
}

} // namespace
} // namespace quest
