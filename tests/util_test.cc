/**
 * @file
 * Unit tests for the util module: RNG, tables, timers, thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "resilience/thread_pool.hh"
#include "util/timer.hh"

namespace quest {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == b());
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(17);
    std::set<uint32_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(7));
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(19);
    const int trials = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < trials; ++i) {
        double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / trials, 0.0, 0.02);
    EXPECT_NEAR(sq / trials, 1.0, 0.02);
}

TEST(Rng, NormalWithParams)
{
    Rng rng(23);
    const int trials = 100000;
    double sum = 0.0;
    for (int i = 0; i < trials; ++i)
        sum += rng.normal(5.0, 2.0);
    EXPECT_NEAR(sum / trials, 5.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(29);
    int hits = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng rng(37);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    const int trials = 40000;
    for (int i = 0; i < trials; ++i)
        ++counts[rng.discrete(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / trials, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / trials, 0.75, 0.02);
}

TEST(Rng, SplitIsIndependent)
{
    Rng parent(41);
    Rng child = parent.split();
    // Parent and child streams should not be identical.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (parent() == child());
    EXPECT_LT(same, 5);
}

TEST(Rng, SplitDeterministic)
{
    Rng a(43), b(43);
    Rng ca = a.split(), cb = b.split();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(ca(), cb());
}

TEST(Table, AlignedOutputContainsCells)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvFormat)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, PctFormatting)
{
    EXPECT_EQ(Table::pct(0.125, 1), "12.5%");
}

TEST(Table, RowArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

TEST(Stopwatch, AccumulatesTime)
{
    Stopwatch w;
    EXPECT_EQ(w.seconds(), 0.0);
    w.start();
    // Burn a little time.
    volatile double x = 0.0;
    for (int i = 0; i < 100000; ++i)
        x = x + std::sqrt(static_cast<double>(i));
    w.stop();
    EXPECT_GT(w.seconds(), 0.0);
    double after_stop = w.seconds();
    EXPECT_EQ(w.seconds(), after_stop);
}

TEST(Stopwatch, ResetClears)
{
    Stopwatch w;
    w.start();
    w.stop();
    w.reset();
    EXPECT_EQ(w.seconds(), 0.0);
}

TEST(ScopedTimer, StopsOnDestruction)
{
    Stopwatch w;
    {
        ScopedTimer t(w);
    }
    double v = w.seconds();
    EXPECT_EQ(w.seconds(), v);  // not running any more
}

TEST(ThreadPool, RunsAllTasks)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    pool.parallelFor(100, [&](size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValue)
{
    ThreadPool pool(2);
    auto f = pool.submit([]() { return 42; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForPassesIndices)
{
    ThreadPool pool(3);
    std::vector<int> hit(50, 0);
    pool.parallelFor(50, [&](size_t i) { hit[i] = static_cast<int>(i); });
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(hit[i], i);
}

TEST(ThreadPool, ParallelForRunsEveryTaskEvenWhenSomeThrow)
{
    // Regression: parallelFor used to rethrow while tasks were still
    // queued, leaving workers with a dangling reference to the
    // caller's function object (use-after-scope under ASan/TSan).
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](size_t i) {
                                      ++ran;
                                      if (i % 7 == 3)
                                          // QUEST_ANALYZE_OK(errors.runtime-error): exercises ThreadPool's generic exception propagation
                                          throw std::runtime_error(
                                              "boom");
                                  }),
                 std::runtime_error);
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ParallelForRethrowsLowestFailingIndex)
{
    ThreadPool pool(3);
    std::string message;
    try {
        pool.parallelFor(32, [](size_t i) {
            if (i == 5 || i == 20)
                // QUEST_ANALYZE_OK(errors.runtime-error): exercises lowest-index rethrow of arbitrary exceptions
                throw std::runtime_error(std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        message = e.what();
    }
    EXPECT_EQ(message, "5");
}

TEST(ThreadPool, DestructorDrainsPendingJobs)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 200; ++i)
            pool.submit([&done]() { ++done; });
    }
    EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, StressConcurrentParallelForCallers)
{
    // TSan stress: several external threads drive the same pool
    // (exactly the pipeline's pattern of distinct-index writes).
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<int> cells(4 * 200, 0);
    std::vector<std::thread> callers;
    callers.reserve(4);
    for (int t = 0; t < 4; ++t) {
        callers.emplace_back([&, t]() {
            pool.parallelFor(200, [&, t](size_t i) {
                cells[static_cast<size_t>(t) * 200 + i] = 1;
                ++counter;
            });
        });
    }
    for (auto &caller : callers)
        caller.join();
    EXPECT_EQ(counter.load(), 800);
    for (int cell : cells)
        EXPECT_EQ(cell, 1);
}

TEST(ThreadPool, StressRepeatedConstructionAndShutdown)
{
    // TSan stress on the startup/shutdown handshake.
    std::atomic<int> total{0};
    for (int round = 0; round < 25; ++round) {
        ThreadPool pool(3);
        pool.parallelFor(40, [&](size_t) { ++total; });
    }
    EXPECT_EQ(total.load(), 25 * 40);
}

TEST(ThreadPool, ZeroWorkersRunsInline)
{
    // A budget of one thread: no workers, the caller does everything.
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 0u);
    const auto caller = std::this_thread::get_id();
    std::atomic<int> counter{0};
    pool.parallelFor(20, [&](size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++counter;
    });
    EXPECT_EQ(counter.load(), 20);

    // submit() still works; the destructor drains it inline.
    auto f = pool.submit([]() { return 7; });
}

TEST(ThreadPool, NestedParallelForOnTheSamePoolCompletes)
{
    // The pipeline nests the synthesizer's parallelFor inside its own
    // on one shared pool. Workers executing outer indices call
    // parallelFor again; cooperative claiming must finish all work
    // with no deadlock even when the pool is saturated.
    ThreadPool pool(2);
    std::atomic<int> inner_runs{0};
    pool.parallelFor(8, [&](size_t) {
        pool.parallelFor(16, [&](size_t) { ++inner_runs; });
    });
    EXPECT_EQ(inner_runs.load(), 8 * 16);
}

TEST(ThreadPool, NestedExceptionsPropagateFromTheInnerLevel)
{
    ThreadPool pool(2);
    std::string message;
    try {
        pool.parallelFor(4, [&](size_t outer) {
            pool.parallelFor(4, [&](size_t inner) {
                if (outer == 1 && inner == 2)
                    // QUEST_ANALYZE_OK(errors.runtime-error): exercises nested parallelFor failure propagation
                    throw std::runtime_error("inner failure");
            });
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        message = e.what();
    }
    EXPECT_EQ(message, "inner failure");
}

TEST(ThreadPool, WorkerAccountingTracksLiveThreads)
{
    const unsigned baseline = ThreadPool::liveWorkers();
    ThreadPool::resetPeakLiveWorkers();
    {
        ThreadPool pool(3);
        EXPECT_EQ(ThreadPool::liveWorkers(), baseline + 3);
        EXPECT_GE(ThreadPool::peakLiveWorkers(), baseline + 3);
    }
    EXPECT_EQ(ThreadPool::liveWorkers(), baseline);
}

TEST(ThreadPool, SharedPoolKeepsNestedWorkWithinTheThreadBudget)
{
    // One pool, nested use: the process must never hold more worker
    // threads than the pool spawned, no matter how deeply parallelFor
    // nests — the old design built a fresh pool per nesting level and
    // oversubscribed multiplicatively.
    const unsigned baseline = ThreadPool::liveWorkers();
    ThreadPool::resetPeakLiveWorkers();
    {
        ThreadPool pool(3);
        pool.parallelFor(8, [&](size_t) {
            pool.parallelFor(8, [&](size_t) {
                volatile double x = 0.0;
                for (int i = 0; i < 1000; ++i)
                    x = x + static_cast<double>(i);
            });
        });
        EXPECT_LE(ThreadPool::peakLiveWorkers(), baseline + 3);
    }
}

TEST(Logging, FatalExits)
{
    EXPECT_DEATH(fatal("bad input"), "bad input");
}

TEST(Logging, AssertMessage)
{
    EXPECT_DEATH(QUEST_ASSERT(1 == 2, "math broke"), "math broke");
}

} // namespace
} // namespace quest
