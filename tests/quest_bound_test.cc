/**
 * @file
 * Sec. 3.8 bound tests: the theorem says the full-circuit HS distance
 * is at most the sum of per-block distances. We verify the inequality
 * empirically on randomly perturbed partitioned circuits — the core
 * theoretical claim of the paper.
 */

#include <gtest/gtest.h>

#include <numbers>

#include "algos/algorithms.hh"
#include "ir/lower.hh"
#include "linalg/distance.hh"
#include "partition/scan_partitioner.hh"
#include "quest/bound.hh"
#include "sim/unitary_builder.hh"
#include "util/rng.hh"

namespace quest {
namespace {

constexpr double pi = std::numbers::pi;

/** Randomly perturb a block's rotation angles to fake approximation. */
Circuit
perturb(const Circuit &c, double scale, Rng &rng)
{
    Circuit out(c.numQubits());
    for (const Gate &g : c) {
        Gate copy = g;
        for (double &p : copy.params)
            p += rng.normal(0.0, scale);
        out.append(std::move(copy));
    }
    return out;
}

TEST(Bound, SumOfDistances)
{
    EXPECT_EQ(processDistanceBound({}), 0.0);
    EXPECT_NEAR(processDistanceBound({0.1, 0.2, 0.05}), 0.35, 1e-12);
    EXPECT_DEATH(processDistanceBound({-0.1}), "negative");
}

TEST(Bound, ActualProcessDistanceZeroForSameCircuit)
{
    Circuit c = lowerToNative(algos::tfim(3, 2));
    EXPECT_NEAR(actualProcessDistance(c, c), 0.0, 1e-7);
}

class BoundHolds
    : public ::testing::TestWithParam<std::tuple<std::string, double>>
{
};

TEST_P(BoundHolds, UpperBoundsActualDistance)
{
    auto [name, scale] = GetParam();
    auto suite = algos::standardSuite();
    const auto &spec = algos::findSpec(suite, name);
    if (spec.nQubits > 8)
        GTEST_SKIP();

    Rng rng(7 + static_cast<uint64_t>(scale * 1000));
    Circuit original = lowerToNative(spec.build()).withoutPseudoOps();
    ScanPartitioner partitioner(3);
    auto blocks = partitioner.partition(original);

    // Perturb every block and measure per-block distances.
    std::vector<double> block_distances;
    auto approx_blocks = blocks;
    for (size_t b = 0; b < blocks.size(); ++b) {
        approx_blocks[b].circuit = perturb(blocks[b].circuit, scale, rng);
        block_distances.push_back(
            hsDistance(circuitUnitary(blocks[b].circuit),
                       circuitUnitary(approx_blocks[b].circuit)));
    }

    Circuit approx = assembleBlocks(approx_blocks, original.numQubits());
    double actual = actualProcessDistance(original, approx);
    double bound = processDistanceBound(block_distances);

    EXPECT_LE(actual, bound + 1e-9)
        << name << " scale " << scale << " actual " << actual
        << " bound " << bound;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundHolds,
    ::testing::Combine(::testing::Values("adder_4", "qft_4", "tfim_8",
                                         "heisenberg_4", "qaoa_5",
                                         "vqe_5", "xy_4"),
                       ::testing::Values(0.01, 0.05, 0.2, 0.5)));

TEST(Bound, TightForSingleBlock)
{
    // With one block the bound equals the actual distance.
    Rng rng(11);
    Circuit c = lowerToNative(algos::tfim(3, 2));
    Circuit p = perturb(c, 0.1, rng);
    double actual = actualProcessDistance(c, p);
    double bound =
        processDistanceBound({hsDistance(circuitUnitary(c),
                                         circuitUnitary(p))});
    EXPECT_NEAR(actual, bound, 1e-9);
}

TEST(Bound, KroneckerExtensionPreservesDistance)
{
    // The lemma inside the proof: hs(U, V) = hs(U (x) I, V (x) I).
    Rng rng(13);
    Circuit a = lowerToNative(algos::vqe(2, 1, 21));
    Circuit b = perturb(a, 0.2, rng);
    Matrix u = circuitUnitary(a);
    Matrix v = circuitUnitary(b);
    Matrix ui = kron(u, Matrix::identity(4));
    Matrix vi = kron(v, Matrix::identity(4));
    EXPECT_NEAR(hsDistance(u, v), hsDistance(ui, vi), 1e-10);
}

} // namespace
} // namespace quest
