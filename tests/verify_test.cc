/**
 * @file
 * Verifier tests: every circuit the generators, partitioner,
 * synthesizer and pipeline produce must lint clean, and hand-built
 * malformed circuits (bad wire, wrong arity, CX self-loop,
 * non-finite angle, non-covering partition, ...) must be rejected
 * with a useful message.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "algos/algorithms.hh"
#include "ir/lower.hh"
#include "partition/scan_partitioner.hh"
#include "quest/pipeline.hh"
#include "synth/leap_synthesizer.hh"
#include "verify/verifier.hh"

namespace quest {
namespace {

/** A small well-formed native circuit to corrupt. */
Circuit
nativeFixture()
{
    Circuit c(3);
    c.append(Gate::u3(0, 0.1, 0.2, 0.3));
    c.append(Gate::cx(0, 1));
    c.append(Gate::u3(1, -0.4, 0.5, 0.0));
    c.append(Gate::cx(1, 2));
    return c;
}

/** True iff some issue message contains @p needle. */
bool
mentions(const VerifyReport &report, const std::string &needle)
{
    for (const VerifyIssue &issue : report.issues)
        if (issue.message.find(needle) != std::string::npos)
            return true;
    return false;
}

// ---- Positive coverage: every generator. ---------------------------

TEST(CircuitVerifier, AcceptsEveryGeneratorRawAndLowered)
{
    CircuitVerifier raw_verifier;
    CircuitVerifier native_verifier({.requireNative = true});
    for (const auto &spec : algos::standardSuite()) {
        Circuit c = spec.build();
        EXPECT_TRUE(raw_verifier.verify(c).ok())
            << spec.name << ":\n" << raw_verifier.verify(c).toString();
        Circuit lowered = lowerToNative(c);
        EXPECT_TRUE(native_verifier.verify(lowered).ok())
            << spec.name << " lowered:\n"
            << native_verifier.verify(lowered).toString();
    }
}

TEST(PartitionVerifier, AcceptsEveryGeneratorPartition)
{
    for (const auto &spec : algos::standardSuite()) {
        Circuit c = lowerToNative(spec.build()).withoutPseudoOps();
        for (int width : {3, 4}) {
            auto blocks = ScanPartitioner(width).partition(c);
            VerifyReport report =
                PartitionVerifier(width).verify(c, blocks);
            EXPECT_TRUE(report.ok())
                << spec.name << " width " << width << ":\n"
                << report.toString();
        }
    }
}

TEST(CircuitVerifier, AcceptsPseudoOpsInTheRightPlaces)
{
    Circuit c(2);
    c.append(Gate::h(0));
    c.append(Gate::barrier({0, 1}));
    c.append(Gate::cx(0, 1));
    c.append(Gate::measure(0));
    c.append(Gate::measure(1));
    EXPECT_TRUE(CircuitVerifier().verify(c).ok());
}

// ---- Positive coverage: synthesizer and pipeline outputs. ----------

TEST(CircuitVerifier, AcceptsEveryLeapCandidate)
{
    Circuit block = lowerToNative(algos::tfim(2, 1)).withoutPseudoOps();
    SynthConfig cfg;
    cfg.maxLayers = 4;
    cfg.inst.multistarts = 2;
    cfg.verifyCandidates = true;  // the synthesizer's own pass
    LeapSynthesizer synthesizer(cfg);
    SynthOutput out = synthesizer.synthesize(
        circuitUnitary(block), static_cast<int>(block.cnotCount()));

    ASSERT_FALSE(out.candidates.empty());
    CircuitVerifier verifier({.requireNative = true,
                              .allowPseudoOps = false});
    for (const SynthCandidate &c : out.candidates)
        EXPECT_TRUE(verifier.verify(c.circuit).ok())
            << verifier.verify(c.circuit).toString();
}

TEST(Pipeline, VerifiersAcceptEveryPipelineArtifact)
{
    QuestConfig cfg;
    cfg.verify = true;  // in-pipeline verification after every step
    cfg.synth.beamWidth = 1;
    cfg.synth.inst.multistarts = 2;
    cfg.synth.inst.lbfgs.maxIterations = 200;
    cfg.synth.maxLayers = 5;
    cfg.synth.stallLevels = 4;
    cfg.maxSamples = 3;
    QuestResult r = QuestPipeline(cfg).run(algos::tfim(4, 2));

    // The pipeline would have panicked on an internal failure; also
    // lint the outputs externally.
    CircuitVerifier verifier({.requireNative = true,
                              .allowPseudoOps = false});
    EXPECT_TRUE(verifier.verify(r.original).ok());
    EXPECT_TRUE(PartitionVerifier(cfg.maxBlockSize)
                    .verify(r.original, r.blocks)
                    .ok());
    for (const auto &approx_list : r.blockApprox)
        for (const BlockApprox &a : approx_list)
            EXPECT_TRUE(verifier.verify(a.circuit).ok());
    ASSERT_GE(r.samples.size(), 1u);
    for (const ApproxSample &s : r.samples)
        EXPECT_TRUE(verifier.verify(s.circuit).ok());
}

// ---- Negative coverage: malformed circuits. ------------------------

TEST(CircuitVerifier, RejectsOutOfRangeWire)
{
    Circuit c = nativeFixture();
    c[1].qubits[1] = 99;  // bypasses append()'s validation
    VerifyReport report = CircuitVerifier().verify(c);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.issues[0].gateIndex, 1u);
    EXPECT_TRUE(mentions(report, "outside circuit"));
}

TEST(CircuitVerifier, RejectsNegativeWire)
{
    Circuit c = nativeFixture();
    c[0].qubits[0] = -1;
    EXPECT_TRUE(mentions(CircuitVerifier().verify(c),
                         "outside circuit"));
}

TEST(CircuitVerifier, RejectsWrongArity)
{
    Circuit c = nativeFixture();
    c[1].qubits.pop_back();  // a one-wire CX
    VerifyReport report = CircuitVerifier().verify(c);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(mentions(report, "arity"));
}

TEST(CircuitVerifier, RejectsCxSelfLoop)
{
    Circuit c = nativeFixture();
    c[1].qubits[1] = c[1].qubits[0];
    VerifyReport report = CircuitVerifier().verify(c);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(mentions(report, "duplicate wire"));
}

TEST(CircuitVerifier, RejectsNonFiniteAngle)
{
    Circuit c = nativeFixture();
    c[0].params[2] = std::numeric_limits<double>::quiet_NaN();
    EXPECT_TRUE(mentions(CircuitVerifier().verify(c), "non-finite"));

    Circuit d = nativeFixture();
    d[2].params[0] = std::numeric_limits<double>::infinity();
    EXPECT_TRUE(mentions(CircuitVerifier().verify(d), "non-finite"));
}

TEST(CircuitVerifier, RejectsWrongParamCount)
{
    Circuit c = nativeFixture();
    c[0].params.pop_back();
    EXPECT_TRUE(mentions(CircuitVerifier().verify(c), "parameters"));
}

TEST(CircuitVerifier, RejectsNonNativeGateWhenRequired)
{
    Circuit c(2);
    c.append(Gate::h(0));
    CircuitVerifier strict({.requireNative = true});
    VerifyReport report = strict.verify(c);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(mentions(report, "native"));
    EXPECT_TRUE(CircuitVerifier().verify(c).ok());
}

TEST(CircuitVerifier, RejectsPseudoOpsWhenForbidden)
{
    Circuit c(2);
    c.append(Gate::cx(0, 1));
    c.append(Gate::measure(0));
    CircuitVerifier strict({.allowPseudoOps = false});
    EXPECT_TRUE(mentions(strict.verify(c), "pseudo-op"));
}

TEST(CircuitVerifier, RejectsGateAfterMeasurement)
{
    Circuit c(2);
    c.append(Gate::measure(0));
    c.append(Gate::h(1));
    VerifyReport report = CircuitVerifier().verify(c);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(mentions(report, "trailing suffix"));
}

TEST(CircuitVerifier, RejectsDoubleMeasurement)
{
    Circuit c(2);
    c.append(Gate::measure(0));
    c.append(Gate::measure(0));
    EXPECT_TRUE(mentions(CircuitVerifier().verify(c),
                         "measured twice"));
}

TEST(CircuitVerifier, RejectsZeroWireCircuit)
{
    Circuit c;  // default-constructed placeholder
    EXPECT_TRUE(mentions(CircuitVerifier().verify(c), "no wires"));
}

TEST(CircuitVerifier, RespectsIssueCap)
{
    Circuit c(2);
    for (int i = 0; i < 10; ++i)
        c.append(Gate::h(0));
    for (size_t i = 0; i < c.size(); ++i)
        c[i].qubits[0] = 42;
    CircuitVerifier capped({.maxIssues = 3});
    EXPECT_EQ(capped.verify(c).issues.size(), 3u);
}

TEST(VerifyReport, RendersGateIndexAndMessage)
{
    Circuit c = nativeFixture();
    c[1].qubits[1] = 99;
    std::string text = CircuitVerifier().verify(c).toString();
    EXPECT_NE(text.find("gate 1"), std::string::npos);
    EXPECT_NE(text.find("99"), std::string::npos);
}

TEST(VerifyOrPanic, PanicsWithContext)
{
    Circuit c = nativeFixture();
    c[1].qubits[1] = 99;
    EXPECT_DEATH(verifyOrPanic(c, {}, "unit test"), "unit test");
}

// ---- Negative coverage: broken partitions. -------------------------

class BrokenPartition : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        original = lowerToNative(algos::heisenberg(6, 1))
                       .withoutPseudoOps();
        blocks = ScanPartitioner(3).partition(original);
        ASSERT_GT(blocks.size(), 1u);
        ASSERT_TRUE(
            PartitionVerifier(3).verify(original, blocks).ok());
    }

    Circuit original;
    std::vector<Block> blocks;
};

TEST_F(BrokenPartition, RejectsMissingGate)
{
    blocks[0].circuit.erase(0);
    VerifyReport report = PartitionVerifier(3).verify(original, blocks);
    ASSERT_FALSE(report.ok());
}

TEST_F(BrokenPartition, RejectsDuplicatedGate)
{
    blocks[0].circuit.append(blocks[0].circuit[0]);
    EXPECT_FALSE(PartitionVerifier(3).verify(original, blocks).ok());
}

TEST_F(BrokenPartition, RejectsModifiedGate)
{
    // Find a parameterized gate and nudge an angle.
    for (size_t b = 0; b < blocks.size(); ++b) {
        for (size_t i = 0; i < blocks[b].circuit.size(); ++i) {
            if (!blocks[b].circuit[i].params.empty()) {
                blocks[b].circuit[i].params[0] += 0.25;
                VerifyReport report =
                    PartitionVerifier(3).verify(original, blocks);
                ASSERT_FALSE(report.ok());
                EXPECT_TRUE(mentions(report, "wire"));
                return;
            }
        }
    }
    FAIL() << "fixture has no parameterized gate";
}

TEST_F(BrokenPartition, RejectsReorderedGatesOnAWire)
{
    // Swap two distinct gates inside one block; some wire must see
    // a different sequence.
    for (size_t b = 0; b < blocks.size(); ++b) {
        Circuit &c = blocks[b].circuit;
        for (size_t i = 0; i + 1 < c.size(); ++i) {
            if (c[i].type != c[i + 1].type ||
                c[i].qubits != c[i + 1].qubits) {
                std::swap(c[i], c[i + 1]);
                // The swap may still be a legal commutation only if
                // the gates share no wire; pick overlapping gates.
                bool share = false;
                for (int q : c[i].qubits)
                    share |= c[i + 1].actsOn(q);
                if (!share) {
                    std::swap(c[i], c[i + 1]);  // undo; keep looking
                    continue;
                }
                EXPECT_FALSE(
                    PartitionVerifier(3).verify(original, blocks).ok());
                return;
            }
        }
    }
    FAIL() << "fixture has no overlapping adjacent gate pair";
}

TEST_F(BrokenPartition, RejectsUnsortedWireMapping)
{
    ASSERT_GE(blocks[0].qubits.size(), 2u);
    std::swap(blocks[0].qubits[0], blocks[0].qubits[1]);
    VerifyReport report = PartitionVerifier(3).verify(original, blocks);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(mentions(report, "ascending"));
}

TEST_F(BrokenPartition, RejectsOutOfRangeMapping)
{
    blocks[0].qubits[0] = original.numQubits() + 5;
    EXPECT_FALSE(PartitionVerifier(3).verify(original, blocks).ok());
}

TEST_F(BrokenPartition, RejectsWidthMismatch)
{
    blocks[0].qubits.push_back(original.numQubits() - 1);
    VerifyReport report = PartitionVerifier(3).verify(original, blocks);
    ASSERT_FALSE(report.ok());
}

TEST_F(BrokenPartition, RejectsOverWideBlock)
{
    // The width-4 partition is fine per se but violates a width-3
    // contract.
    auto wide = ScanPartitioner(4).partition(original);
    bool has_wide = false;
    for (const Block &b : wide)
        has_wide |= b.width() > 3;
    ASSERT_TRUE(has_wide);
    VerifyReport report = PartitionVerifier(3).verify(original, wide);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(mentions(report, "exceeds"));
}

TEST_F(BrokenPartition, RejectsMeasuredInput)
{
    Circuit measured = original;
    measured.append(Gate::measure(0));
    EXPECT_TRUE(mentions(
        PartitionVerifier(3).verify(measured, blocks),
        "measurements"));
}

TEST_F(BrokenPartition, RejectsCorruptBlockCircuit)
{
    blocks[0].circuit[0].qubits[0] = 77;
    VerifyReport report = PartitionVerifier(3).verify(original, blocks);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(mentions(report, "block 0"));
}

TEST(PartitionVerifierDeath, PanicsWithContext)
{
    Circuit c(2);
    c.append(Gate::cx(0, 1));
    std::vector<Block> blocks;  // empty: nothing covers the CX
    EXPECT_DEATH(verifyOrPanic(c, blocks, 2, "partition unit test"),
                 "partition unit test");
}

} // namespace
} // namespace quest
