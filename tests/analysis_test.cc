/**
 * @file
 * Tests for the quest_analyze static-analysis library: the lexer, the
 * rule families over the seeded violation fixtures in
 * tests/analysis_fixtures/ (a miniature repo mirroring the real
 * layout, so the path policy applies verbatim), the registry
 * cross-checks against alternate REGISTRY_*.md variants, the
 * suppression round-trip, and the golden text/JSON report formats.
 *
 * Fixture files pin their violation line numbers; analysis_test and
 * the fixtures must change together.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "analysis/lexer.hh"
#include "analysis/registry.hh"
#include "analysis/report.hh"
#include "analysis/rules.hh"

namespace quest::analysis {
namespace {

std::string
fixtures()
{
    return QUEST_ANALYSIS_FIXTURES_DIR;
}

AnalyzerConfig
fixtureConfig()
{
    AnalyzerConfig config;
    config.root = fixtures();
    return config;
}

/** The (rule, file, line) triples of a report, sorted. */
std::vector<std::string>
keysOf(const Report &report)
{
    std::vector<std::string> keys;
    keys.reserve(report.findings.size());
    for (const Finding &f : report.findings)
        keys.push_back(f.rule + " " + f.file + ":" +
                       std::to_string(f.line));
    return keys;
}

bool
hasFinding(const Report &report, const std::string &rule,
           const std::string &file, int line)
{
    return std::any_of(report.findings.begin(), report.findings.end(),
                       [&](const Finding &f) {
                           return f.rule == rule && f.file == file &&
                                  f.line == line;
                       });
}

// ---- lexer --------------------------------------------------------

TEST(Lexer, ClassifiesBasicTokens)
{
    const auto tokens = lex("int x = 42; // done");
    ASSERT_EQ(tokens.size(), 6u);
    EXPECT_EQ(tokens[0].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[0].text, "int");
    EXPECT_EQ(tokens[3].kind, TokenKind::Number);
    EXPECT_EQ(tokens[3].text, "42");
    EXPECT_EQ(tokens[5].kind, TokenKind::Comment);
}

TEST(Lexer, TracksLineNumbers)
{
    const auto tokens = lex("a\nb\n\ncd");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0].line, 1);
    EXPECT_EQ(tokens[1].line, 2);
    EXPECT_EQ(tokens[2].line, 4);
}

TEST(Lexer, StringContentIsOneToken)
{
    const auto tokens = lex("f(\"rand() inside\")");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[2].kind, TokenKind::String);
    EXPECT_EQ(tokens[2].text, "rand() inside");
}

TEST(Lexer, RawStringSwallowsDelimiters)
{
    const auto tokens = lex("auto s = R\"x(a \" b)x\"; int z;");
    auto it = std::find_if(tokens.begin(), tokens.end(),
                           [](const Token &t) {
                               return t.kind == TokenKind::String;
                           });
    ASSERT_NE(it, tokens.end());
    EXPECT_EQ(it->text, "a \" b");
    EXPECT_EQ(tokens.back().text, ";");
}

TEST(Lexer, BlockCommentSpansLines)
{
    const auto tokens = lex("a /* two\nlines */ b");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[1].kind, TokenKind::Comment);
    EXPECT_EQ(tokens[2].line, 2);
}

// ---- full fixture-tree scan ---------------------------------------

TEST(Analyzer, FixtureTreeFindingsAreExactlyTheSeededOnes)
{
    const Report report = analyze(fixtureConfig());

    const std::vector<std::string> expected = {
        "analyze.unused-suppression src/unused_ok.cc:6",
        "cancellation.unpolled-loop src/synth/unpolled.cc:7",
        "determinism.clock src/determinism_bad.cc:4",
        "determinism.clock src/determinism_bad.cc:9",
        "determinism.env src/determinism_bad.cc:10",
        "determinism.fs-order src/determinism_bad.cc:31",
        "determinism.rand src/determinism_bad.cc:11",
        "determinism.unordered src/determinism_bad.cc:20",
        "errors.runtime-error src/errors_bad.cc:7",
        "errors.swallowed-exception src/errors_bad.cc:15",
        "registry.literal-name src/registry_bad.cc:8",
        "registry.literal-name src/registry_bad.cc:10",
        "registry.literal-name src/registry_bad.cc:17",
        "registry.undocumented-fault-site src/registry_bad.cc:17",
        "registry.undocumented-metric src/registry_bad.cc:10",
        "registry.unknown-constant src/registry_bad.cc:11",
    };
    std::vector<std::string> actual = keysOf(report);
    std::sort(actual.begin(), actual.end());
    std::vector<std::string> want = expected;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(actual, want);
    EXPECT_FALSE(report.clean());
}

TEST(Analyzer, EveryEmittedRuleIsInTheCatalogue)
{
    const Report report = analyze(fixtureConfig());
    for (const Finding &f : report.findings) {
        const bool known =
            std::any_of(allRules().begin(), allRules().end(),
                        [&](const RuleInfo &r) { return r.id == f.rule; });
        EXPECT_TRUE(known) << "finding with unlisted rule " << f.rule;
    }
}

// ---- clean paths --------------------------------------------------

TEST(Analyzer, CleanFileScansClean)
{
    AnalyzerConfig config = fixtureConfig();
    config.paths = {"src/clean.cc"};
    const Report report = analyze(config);
    EXPECT_TRUE(report.clean()) << keysOf(report).front();
    EXPECT_EQ(report.filesScanned, 1);
    EXPECT_EQ(report.code.metrics.count("fix.good"), 1u);
    EXPECT_EQ(report.code.faultSites.count("fix.fault"), 1u);
}

TEST(Analyzer, EphemeralPrefixExemptsTestLocalNames)
{
    AnalyzerConfig config = fixtureConfig();
    config.paths = {"tests/obs_fix_test.cc"};
    const Report report = analyze(config);
    EXPECT_TRUE(report.clean());
    // The name itself is not part of the documentable manifest; the
    // prefix that carried it is.
    EXPECT_EQ(report.code.metrics.count("tmp.x"), 0u);
    EXPECT_EQ(report.code.prefixes.count("tmp."), 1u);
}

// ---- suppressions -------------------------------------------------

TEST(Analyzer, SuppressionSilencesAndCountsAsUsed)
{
    AnalyzerConfig config = fixtureConfig();
    config.paths = {"src/suppressed_ok.cc"};
    const Report report = analyze(config);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.suppressionsUsed, 1);
}

TEST(Analyzer, UnusedSuppressionIsItselfAFinding)
{
    AnalyzerConfig config = fixtureConfig();
    config.paths = {"src/unused_ok.cc"};
    const Report report = analyze(config);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_TRUE(hasFinding(report, "analyze.unused-suppression",
                           "src/unused_ok.cc", 6));
    EXPECT_EQ(report.suppressionsUsed, 0);
}

// ---- registry cross-checks ----------------------------------------

TEST(Analyzer, KindMismatchAgainstAlternateRegistry)
{
    AnalyzerConfig config = fixtureConfig();
    config.registryPath = "docs/REGISTRY_kind.md";
    config.paths = {"src/clean.cc"};
    const Report report = analyze(config);
    EXPECT_TRUE(hasFinding(report, "registry.kind-mismatch",
                           "src/clean.cc", 9));
}

TEST(Analyzer, ExitCodeDivergenceBothDirections)
{
    AnalyzerConfig config = fixtureConfig();
    config.registryPath = "docs/REGISTRY_exit.md";
    config.paths = {"src/clean.cc"};
    const Report report = analyze(config);
    int exitFindings = 0;
    for (const Finding &f : report.findings)
        exitFindings += f.rule == "registry.exit-code";
    // io: documented 12, code says 11. timeout: documented, absent.
    EXPECT_EQ(exitFindings, 2);
}

TEST(Analyzer, StaleRowsOnFullScan)
{
    AnalyzerConfig config = fixtureConfig();
    config.registryPath = "docs/REGISTRY_stale.md";
    const Report report = analyze(config);
    int stale = 0;
    for (const Finding &f : report.findings)
        stale += f.rule == "registry.stale";
    // metric fix.stale, fault site fix.gone, prefix dead.
    EXPECT_EQ(stale, 3);
}

TEST(Analyzer, NarrowedScanDisablesStaleChecks)
{
    AnalyzerConfig config = fixtureConfig();
    config.registryPath = "docs/REGISTRY_stale.md";
    config.paths = {"src/clean.cc"};
    const Report report = analyze(config);
    for (const Finding &f : report.findings)
        EXPECT_NE(f.rule, "registry.stale");
}

// ---- report formats -----------------------------------------------

TEST(Report, GoldenText)
{
    AnalyzerConfig config = fixtureConfig();
    config.paths = {"src/errors_bad.cc"};
    const Report report = analyze(config);

    std::ostringstream out;
    writeText(out, report);
    EXPECT_EQ(
        out.str(),
        "src/errors_bad.cc:7: error: [errors.runtime-error] throw a "
        "typed QuestError (or a decoder error) instead of "
        "std::runtime_error outside src/util\n"
        "src/errors_bad.cc:15: error: [errors.swallowed-exception] "
        "catch (...) neither rethrows nor forwards the exception "
        "(annotate QUEST_INTENTIONAL_SWALLOW if dropping it is the "
        "contract)\n"
        "quest_analyze: 2 finding(s) in 1 files\n");
}

TEST(Report, GoldenJson)
{
    AnalyzerConfig config = fixtureConfig();
    config.paths = {"src/errors_bad.cc"};
    const Report report = analyze(config);

    std::ostringstream out;
    writeJson(out, report);
    EXPECT_EQ(
        out.str(),
        "{\"schema\":\"quest-analyze-v1\",\"files_scanned\":1,"
        "\"suppressions_used\":0,\"clean\":false,\"findings\":["
        "{\"rule\":\"errors.runtime-error\",\"severity\":\"error\","
        "\"file\":\"src/errors_bad.cc\",\"line\":7,\"message\":"
        "\"throw a typed QuestError (or a decoder error) instead of "
        "std::runtime_error outside src/util\"},"
        "{\"rule\":\"errors.swallowed-exception\",\"severity\":"
        "\"error\",\"file\":\"src/errors_bad.cc\",\"line\":15,"
        "\"message\":\"catch (...) neither rethrows nor forwards the "
        "exception (annotate QUEST_INTENTIONAL_SWALLOW if dropping it "
        "is the contract)\"}],\"registry\":{\"metrics\":[],"
        "\"fault_sites\":[],\"exit_codes\":["
        "{\"category\":\"internal\",\"code\":70},"
        "{\"category\":\"io\",\"code\":11}],\"prefixes\":[]}}\n");
}

TEST(Report, GoldenDocsManifest)
{
    const Report report = analyze(fixtureConfig());
    EXPECT_EQ(renderManifest(report.doc),
              "exit-code internal 70\n"
              "exit-code io 11\n"
              "fault-site fix.fault\n"
              "metric counter fix.good\n"
              "prefix tmp.\n");
}

TEST(Report, ManifestsAgreeOnViolationFreeScan)
{
    // On the real tree CI diffs code vs docs manifests; mirror that
    // here over the fixture files that carry no registry violations.
    AnalyzerConfig config = fixtureConfig();
    config.paths = {"src/clean.cc", "tests/obs_fix_test.cc"};
    const Report report = analyze(config);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(renderManifest(report.code), renderManifest(report.doc));
}

} // namespace
} // namespace quest::analysis
