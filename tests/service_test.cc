/**
 * @file
 * Service-layer tests: QSV1 protocol goldens (frame bijection,
 * malformed/truncated/oversized/version-mismatch rejection) and the
 * end-to-end socketpair contract — served results are byte-identical
 * to running the quest_compile configuration locally, priorities
 * order completions deterministically, and cancelling a queued job
 * never starts a pipeline run.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "algos/algorithms.hh"
#include "ir/qasm.hh"
#include "obs/metrics.hh"
#include "quest/pipeline.hh"
#include "resilience/error.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "util/names.hh"

namespace quest::service {
namespace {

namespace fs = std::filesystem;

fs::path
makeTempDir()
{
    std::string tmpl =
        (fs::temp_directory_path() / "quest-service-test-XXXXXX")
            .string();
    char *dir = mkdtemp(tmpl.data());
    EXPECT_NE(dir, nullptr);
    return fs::path(dir);
}

/** RAII removal of a test state/cache directory. */
struct TempDir
{
    fs::path path = makeTempDir();
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/** A connected (server fd, client fd) stream pair. */
std::pair<int, int>
streamPair()
{
    int sv[2] = {-1, -1};
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    return {sv[0], sv[1]};
}

/** Attach a fresh client connection to an in-process server. */
QuestClient
connectLocal(QuestServer &server)
{
    auto [serverFd, clientFd] = streamPair();
    server.attach(serverFd);
    return QuestClient::fromFd(clientFd);
}

/** A tiny 3-qubit circuit (one partition block) as QASM. */
std::string
tinyQasm(double angle)
{
    Circuit c(3);
    c.append(Gate::cx(0, 1));
    c.append(Gate::u3(1, angle, 0.2, 0.1));
    c.append(Gate::cx(1, 2));
    c.append(Gate::u3(0, 0.5, angle, 0.3));
    c.append(Gate::cx(0, 2));
    return toQasm(c);
}

/** Fast CompileOptions for test jobs. */
CompileOptions
tinyOptions()
{
    CompileOptions options;
    options.maxLayers = 4;
    options.maxSamples = 4;
    return options;
}

// ---- protocol goldens --------------------------------------------

TEST(Qsv1Frame, GoldenStatusRequestBytes)
{
    // The worked example from docs/FORMATS.md: Status for job 7.
    StatusRequest request;
    request.jobId = 7;
    const std::vector<uint8_t> frame =
        encodeFrame(MsgType::Status, encodePayload(request));
    EXPECT_EQ(toHex(frame.data(), frame.size()),
              "51535631"          // magic "QSV1"
              "0300"              // version 3
              "0300"              // type 3 (status)
              "08000000"          // payload length 8
              "0700000000000000"  // u64 jobId = 7
              "625b4c0717a3d74b"  // FNV-1a 64 of the payload
    );
}

TEST(Qsv1Frame, EncodeDecodeBijection)
{
    SubmitRequest request;
    request.priority = -3;
    request.deadlineSeconds = 12.5;
    request.options.threshold = 0.125;
    request.options.maxSamples = 7;
    request.options.maxLayers = 9;
    request.options.blockSize = 3;
    request.options.seed = 0xdeadbeefcafe;
    request.options.selectionMode = SelectionMode::BlockBound;
    request.tenant = "team-quantum";
    request.submissionKey = "job-7f3a";
    request.qasm = tinyQasm(0.3);

    const std::vector<uint8_t> frame =
        encodeFrame(MsgType::Submit, encodePayload(request));
    const Frame decoded = decodeFrame(frame.data(), frame.size());
    EXPECT_EQ(decoded.type, MsgType::Submit);

    const SubmitRequest back =
        decodePayload<SubmitRequest>(decoded.payload);
    EXPECT_EQ(back.priority, request.priority);
    EXPECT_EQ(back.deadlineSeconds, request.deadlineSeconds);
    EXPECT_EQ(back.options.threshold, request.options.threshold);
    EXPECT_EQ(back.options.maxSamples, request.options.maxSamples);
    EXPECT_EQ(back.options.maxLayers, request.options.maxLayers);
    EXPECT_EQ(back.options.blockSize, request.options.blockSize);
    EXPECT_EQ(back.options.seed, request.options.seed);
    EXPECT_EQ(back.options.selectionMode,
              request.options.selectionMode);
    EXPECT_EQ(back.tenant, request.tenant);
    EXPECT_EQ(back.submissionKey, request.submissionKey);
    EXPECT_EQ(back.qasm, request.qasm);

    // Re-encoding the decoded message reproduces the frame bytes.
    EXPECT_EQ(encodeFrame(MsgType::Submit, encodePayload(back)),
              frame);
}

TEST(Qsv1Frame, ResultReplyRoundTrips)
{
    ResultReply reply;
    reply.status.jobId = 42;
    reply.status.known = true;
    reply.status.state = JobState::Done;
    reply.status.exitCode = 0;
    reply.status.completionSeq = 5;
    reply.qubits = 3;
    reply.originalCnots = 11;
    reply.blocks = 2;
    reply.okBlocks = 2;
    reply.threshold = 0.3;
    reply.samples.push_back({"OPENQASM...", 9, 0.25});
    reply.samples.push_back({"OPENQASM2...", 7, 0.125});
    reply.metrics.emplace_back("quest.synth.cache_misses", 2);

    const ResultReply back =
        decodePayload<ResultReply>(encodePayload(reply));
    EXPECT_EQ(back.status.jobId, 42u);
    EXPECT_EQ(back.status.state, JobState::Done);
    ASSERT_EQ(back.samples.size(), 2u);
    EXPECT_EQ(back.samples[1].qasm, "OPENQASM2...");
    EXPECT_EQ(back.samples[1].cnotCount, 7u);
    ASSERT_EQ(back.metrics.size(), 1u);
    EXPECT_EQ(back.metrics[0].first, "quest.synth.cache_misses");
    EXPECT_EQ(back.metrics[0].second, 2u);
}

TEST(Qsv1Frame, SubmitAndRetryRepliesRoundTrip)
{
    SubmitReply reply;
    reply.jobId = 17;
    reply.accepted = true;
    reply.state = JobState::Queued;
    reply.deduplicated = true;
    reply.retryAfterSeconds = 0.25;
    const SubmitReply back =
        decodePayload<SubmitReply>(encodePayload(reply));
    EXPECT_EQ(back.jobId, 17u);
    EXPECT_TRUE(back.accepted);
    EXPECT_TRUE(back.deduplicated);
    EXPECT_EQ(back.retryAfterSeconds, 0.25);

    RetryReply retry;
    retry.status.jobId = 17;
    retry.status.known = true;
    retry.status.state = JobState::Running;
    retry.retryAfterSeconds = 0.5;
    const RetryReply retryBack =
        decodePayload<RetryReply>(encodePayload(retry));
    EXPECT_EQ(retryBack.status.jobId, 17u);
    EXPECT_EQ(retryBack.status.state, JobState::Running);
    EXPECT_EQ(retryBack.retryAfterSeconds, 0.5);
}

TEST(Qsv1Frame, MalformedFramesRejected)
{
    StatusRequest request;
    request.jobId = 7;
    std::vector<uint8_t> frame =
        encodeFrame(MsgType::Status, encodePayload(request));

    // Bad magic.
    {
        std::vector<uint8_t> bad = frame;
        bad[0] = 'X';
        EXPECT_THROW(decodeFrame(bad.data(), bad.size()),
                     SerializeError);
    }
    // Truncation at every prefix length is a decode error, never a
    // crash or a silent partial frame.
    for (size_t n = 0; n < frame.size(); ++n)
        EXPECT_THROW(decodeFrame(frame.data(), n), SerializeError);
    // Corrupt payload (checksum mismatch).
    {
        std::vector<uint8_t> bad = frame;
        bad[kFrameHeaderBytes] ^= 0x01;
        try {
            decodeFrame(bad.data(), bad.size());
            FAIL() << "corrupt payload must throw";
        } catch (const SerializeError &e) {
            EXPECT_NE(std::string(e.what()).find("checksum"),
                      std::string::npos);
        }
    }
    // Trailing surplus bytes.
    {
        std::vector<uint8_t> bad = frame;
        bad.push_back(0);
        EXPECT_THROW(decodeFrame(bad.data(), bad.size()),
                     SerializeError);
    }
    // Declared length beyond the cap (64 bytes here).
    {
        std::vector<uint8_t> bad = frame;
        bad[8] = 0xff;
        bad[9] = 0xff;
        try {
            decodeFrame(bad.data(), bad.size(), 64);
            FAIL() << "oversized payload must throw";
        } catch (const SerializeError &e) {
            EXPECT_NE(std::string(e.what()).find("oversized"),
                      std::string::npos);
        }
    }
}

TEST(Qsv1Frame, VersionMismatchRejected)
{
    StatusRequest request;
    request.jobId = 7;
    std::vector<uint8_t> frame =
        encodeFrame(MsgType::Status, encodePayload(request));
    frame[4] = 1; // version 1 (pre-selection-mode)
    try {
        decodeFrame(frame.data(), frame.size());
        FAIL() << "version mismatch must throw";
    } catch (const SerializeError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("version mismatch"), std::string::npos);
        EXPECT_NE(what.find("got 1"), std::string::npos);
    }
}

TEST(Qsv1Frame, PayloadTrailingBytesRejected)
{
    StatusRequest request;
    request.jobId = 7;
    std::vector<uint8_t> payload = encodePayload(request);
    payload.push_back(0xaa);
    EXPECT_THROW(decodePayload<StatusRequest>(payload),
                 SerializeError);
}

TEST(Qsv1Frame, BadEnumValuesRejected)
{
    SubmitReply reply;
    std::vector<uint8_t> payload = encodePayload(reply);
    payload[9] = 99; // state byte past JobState::Expired
    EXPECT_THROW(decodePayload<SubmitReply>(payload), SerializeError);
}

TEST(Qsv1Frame, BadSelectionModeRejected)
{
    SubmitRequest request;
    request.qasm = tinyQasm(0.3);
    std::vector<uint8_t> payload = encodePayload(request);
    // priority(4) + deadline(8) + threshold(8) + maxSamples(4) +
    // maxLayers(4) + blockSize(4) + seed(8) = offset 40.
    payload[40] = 9; // selection-mode byte past BlockBound
    EXPECT_THROW(decodePayload<SubmitRequest>(payload),
                 SerializeError);
}

TEST(Qsv1Socket, RecvStatusesOverSocketpair)
{
    StatusRequest request;
    request.jobId = 7;
    const std::vector<uint8_t> frame =
        encodeFrame(MsgType::Status, encodePayload(request));

    // Clean close -> Eof.
    {
        auto [a, b] = streamPair();
        ASSERT_EQ(close(a), 0);
        const RecvResult r = recvFrame(b);
        EXPECT_EQ(r.status, RecvStatus::Eof);
        close(b);
    }
    // Partial header then close -> Malformed (truncated header).
    {
        auto [a, b] = streamPair();
        ASSERT_EQ(write(a, frame.data(), 5), 5);
        close(a);
        const RecvResult r = recvFrame(b);
        EXPECT_EQ(r.status, RecvStatus::Malformed);
        EXPECT_NE(r.error.find("truncated"), std::string::npos);
        close(b);
    }
    // Torn payload (header + partial body) -> Malformed.
    {
        auto [a, b] = streamPair();
        ASSERT_EQ(
            static_cast<size_t>(write(a, frame.data(),
                                      kFrameHeaderBytes + 3)),
            kFrameHeaderBytes + 3);
        close(a);
        const RecvResult r = recvFrame(b);
        EXPECT_EQ(r.status, RecvStatus::Malformed);
        EXPECT_NE(r.error.find("torn"), std::string::npos);
        close(b);
    }
    // Version mismatch is its own status (the server replies with
    // an Error frame naming both versions before dropping).
    {
        auto [a, b] = streamPair();
        std::vector<uint8_t> bad = frame;
        bad[4] = 9;
        ASSERT_EQ(static_cast<size_t>(write(a, bad.data(), bad.size())),
                  bad.size());
        const RecvResult r = recvFrame(b);
        EXPECT_EQ(r.status, RecvStatus::VersionMismatch);
        close(a);
        close(b);
    }
    // Oversized declared length -> Oversized, before any body read.
    {
        auto [a, b] = streamPair();
        std::vector<uint8_t> bad = frame;
        bad[8] = 0xff;
        bad[9] = 0xff;
        ASSERT_EQ(static_cast<size_t>(write(a, bad.data(), bad.size())),
                  bad.size());
        const RecvResult r = recvFrame(b, 64);
        EXPECT_EQ(r.status, RecvStatus::Oversized);
        close(a);
        close(b);
    }
    // A good frame round-trips through send/recv.
    {
        auto [a, b] = streamPair();
        EXPECT_EQ(
            sendFrame(a, MsgType::Status, encodePayload(request)),
            SendStatus::Ok);
        const RecvResult r = recvFrame(b);
        ASSERT_EQ(r.status, RecvStatus::Ok);
        EXPECT_EQ(r.frame.type, MsgType::Status);
        EXPECT_EQ(decodePayload<StatusRequest>(r.frame.payload).jobId,
                  7u);
        close(a);
        close(b);
    }
}

TEST(JobStates, ExitCodeMapping)
{
    EXPECT_EQ(exitCodeForJobState(JobState::Queued, 0), -1);
    EXPECT_EQ(exitCodeForJobState(JobState::Running, 0), -1);
    EXPECT_EQ(exitCodeForJobState(JobState::Done, 0), 0);
    EXPECT_EQ(exitCodeForJobState(JobState::Failed,
                                  names::kExitDiverged),
              names::kExitDiverged);
    EXPECT_EQ(exitCodeForJobState(JobState::Cancelled, 0),
              names::kExitCancelled);
    EXPECT_EQ(exitCodeForJobState(JobState::Rejected, 0),
              names::kExitResource);
    EXPECT_EQ(exitCodeForJobState(JobState::Expired, 0),
              names::kExitTimeout);
    EXPECT_STREQ(jobStateName(JobState::Expired), "expired");
    EXPECT_FALSE(isTerminalJobState(JobState::Running));
    EXPECT_TRUE(isTerminalJobState(JobState::Rejected));
}

// ---- end-to-end over socketpair ----------------------------------

TEST(ServiceEndToEnd, ServedResultsMatchLocalCompile)
{
    TempDir tmp;
    ServerConfig config;
    config.cacheDir = (tmp.path / "cache").string();
    config.executors = 2;
    QuestServer server(config);
    QuestClient client = connectLocal(server);

    const std::vector<std::string> inputs = {
        tinyQasm(0.3), tinyQasm(0.9), tinyQasm(1.7)};

    std::vector<uint64_t> ids;
    for (const std::string &qasm : inputs) {
        SubmitRequest request;
        request.options = tinyOptions();
        request.qasm = qasm;
        const SubmitReply reply = client.submit(request);
        ASSERT_TRUE(reply.accepted) << reply.detail;
        ASSERT_NE(reply.jobId, 0u);
        ids.push_back(reply.jobId);
    }

    for (size_t i = 0; i < ids.size(); ++i) {
        const ResultReply served = client.result(ids[i]);
        ASSERT_EQ(served.status.state, JobState::Done)
            << served.status.detail;
        EXPECT_EQ(served.status.exitCode, 0);

        // The reference: the same configuration quest_compile builds
        // for these options, run in this process. Sample QASM must
        // match byte for byte.
        QuestPipeline reference(compileConfig(tinyOptions()));
        const QuestResult local = reference.run(parseQasm(inputs[i]));
        EXPECT_EQ(served.qubits,
                  static_cast<uint32_t>(local.original.numQubits()));
        EXPECT_EQ(served.originalCnots, local.originalCnots);
        EXPECT_EQ(served.blocks, local.blocks.size());
        EXPECT_EQ(served.okBlocks, local.okBlocks());
        ASSERT_EQ(served.samples.size(), local.samples.size());
        for (size_t s = 0; s < local.samples.size(); ++s) {
            EXPECT_EQ(served.samples[s].qasm,
                      toQasm(local.samples[s].circuit));
            EXPECT_EQ(served.samples[s].cnotCount,
                      local.samples[s].cnotCount);
        }
        EXPECT_FALSE(served.metrics.empty());
    }

    // Unknown ids answer known=false rather than erroring.
    EXPECT_FALSE(client.status(999).known);
    EXPECT_EQ(client.cancelJob(999).outcome, CancelOutcome::Unknown);

    const StatsReply stats = client.stats();
    uint64_t done = 0;
    for (const auto &[name, value] : stats.stats)
        if (name == names::kMetricServiceJobsDone)
            done = value;
    EXPECT_GE(done, ids.size());

    server.stop();
}

TEST(ServiceEndToEnd, BadPayloadEarnsErrorFrameAndBadQasmFails)
{
    QuestServer server(ServerConfig{});

    // A Submit frame whose payload is garbage: the server answers
    // with an Error frame carrying the invalid-input code, then
    // drops the connection.
    {
        auto [serverFd, clientFd] = streamPair();
        server.attach(serverFd);
        ASSERT_EQ(sendFrame(clientFd, MsgType::Submit, {0x01}),
                  SendStatus::Ok);
        const RecvResult r = recvFrame(clientFd);
        ASSERT_EQ(r.status, RecvStatus::Ok);
        ASSERT_EQ(r.frame.type, MsgType::Error);
        const ErrorReply err =
            decodePayload<ErrorReply>(r.frame.payload);
        EXPECT_EQ(err.exitCode, names::kExitInvalidInput);
        EXPECT_NE(err.message.find("submit"), std::string::npos);
        EXPECT_EQ(recvFrame(clientFd).status, RecvStatus::Eof);
        close(clientFd);
    }

    // Unparsable QASM fails the job (not the connection) with the
    // invalid-input exit code.
    {
        QuestClient client = connectLocal(server);
        SubmitRequest request;
        request.qasm = "this is not qasm";
        const SubmitReply reply = client.submit(request);
        ASSERT_TRUE(reply.accepted);
        const ResultReply result = client.result(reply.jobId);
        EXPECT_EQ(result.status.state, JobState::Failed);
        EXPECT_EQ(result.status.exitCode, names::kExitInvalidInput);
        EXPECT_NE(result.status.detail.find("QASM"),
                  std::string::npos);
    }

    server.stop();
}

TEST(ServiceEndToEnd, QueueBoundShedsLoad)
{
    // One executor stuck on a heavy job + capacity 1 queue: the
    // third submit must be Rejected with the resource exit code.
    ServerConfig config;
    config.executors = 1;
    config.queueCapacity = 1;
    QuestServer server(config);
    QuestClient client = connectLocal(server);

    SubmitRequest heavy;
    heavy.qasm = toQasm(algos::qft(5));
    heavy.options.maxLayers = 10;
    const SubmitReply blocker = client.submit(heavy);
    ASSERT_TRUE(blocker.accepted);

    SubmitRequest tiny;
    tiny.options = tinyOptions();
    tiny.qasm = tinyQasm(0.3);
    const SubmitReply queued = client.submit(tiny);
    ASSERT_TRUE(queued.accepted);

    const SubmitReply shed = client.submit(tiny);
    EXPECT_FALSE(shed.accepted);
    EXPECT_EQ(shed.state, JobState::Rejected);
    EXPECT_EQ(client.status(shed.jobId).exitCode,
              names::kExitResource);
    EXPECT_NE(shed.detail.find("queue full"), std::string::npos);

    // Clean up without paying for the heavy job.
    EXPECT_EQ(client.cancelJob(queued.jobId).outcome,
              CancelOutcome::Dequeued);
    client.cancelJob(blocker.jobId);
    server.stop();
}

TEST(ServiceEndToEnd, CancelRunningAndDeadlineExpiry)
{
    ServerConfig config;
    config.executors = 1;
    QuestServer server(config);
    QuestClient client = connectLocal(server);

    // Cancel a job that is already running: the pipeline stops at
    // its next safe point and the job lands Cancelled, not Done
    // with a degraded ensemble.
    SubmitRequest heavy;
    heavy.qasm = toQasm(algos::qft(5));
    heavy.options.maxLayers = 10;
    const SubmitReply running = client.submit(heavy);
    ASSERT_TRUE(running.accepted);
    while (client.status(running.jobId).state == JobState::Queued)
        usleep(1000);
    const CancelReply cancel = client.cancelJob(running.jobId);
    EXPECT_EQ(cancel.outcome, CancelOutcome::Signalled);
    const JobStatus cancelled = server.waitTerminal(running.jobId);
    EXPECT_EQ(cancelled.state, JobState::Cancelled);
    EXPECT_EQ(cancelled.exitCode, names::kExitCancelled);

    // A job whose deadline fires (queued or mid-run) lands Expired
    // with the timeout exit code.
    heavy.deadlineSeconds = 0.05;
    const SubmitReply dying = client.submit(heavy);
    ASSERT_TRUE(dying.accepted);
    const JobStatus expired = server.waitTerminal(dying.jobId);
    EXPECT_EQ(expired.state, JobState::Expired);
    EXPECT_EQ(expired.exitCode, names::kExitTimeout);

    server.stop();
}

TEST(ServiceProperty, PriorityOrderIsDeterministic)
{
    // Same job set + priorities + one executor => completion order
    // is a pure function of (priority desc, submission order), which
    // this pins: 5a before 5b (FIFO within a priority), then 3,
    // then 1.
    TempDir tmp;
    ServerConfig config;
    config.executors = 1;
    config.threads = 1;
    config.cacheDir = (tmp.path / "cache").string();
    QuestServer server(config);
    QuestClient client = connectLocal(server);

    // Occupy the single executor so the real job set queues up
    // behind it and is ordered purely by the queue.
    SubmitRequest heavy;
    heavy.qasm = toQasm(algos::qft(5));
    heavy.options.maxLayers = 10;
    const SubmitReply blocker = client.submit(heavy);
    ASSERT_TRUE(blocker.accepted);

    SubmitRequest tiny;
    tiny.options = tinyOptions();
    tiny.qasm = tinyQasm(0.3);

    struct Submitted
    {
        uint64_t id;
        int32_t priority;
    };
    std::vector<Submitted> set;
    for (int32_t priority : {1, 5, 3, 5}) {
        tiny.priority = priority;
        const SubmitReply reply = client.submit(tiny);
        ASSERT_TRUE(reply.accepted);
        set.push_back({reply.jobId, priority});
    }

    // Queue positions already reflect pop order: 5a, 5b, 3, 1.
    EXPECT_LT(client.status(set[1].id).queuePosition,
              client.status(set[3].id).queuePosition);
    EXPECT_LT(client.status(set[3].id).queuePosition,
              client.status(set[2].id).queuePosition);
    EXPECT_LT(client.status(set[2].id).queuePosition,
              client.status(set[0].id).queuePosition);

    client.cancelJob(blocker.jobId);

    std::vector<uint64_t> seq(set.size());
    for (size_t i = 0; i < set.size(); ++i) {
        const JobStatus status = server.waitTerminal(set[i].id);
        ASSERT_EQ(status.state, JobState::Done) << status.detail;
        seq[i] = status.completionSeq;
    }
    // Completion order: 5a < 5b < 3 < 1.
    EXPECT_LT(seq[1], seq[3]);
    EXPECT_LT(seq[3], seq[2]);
    EXPECT_LT(seq[2], seq[0]);

    server.stop();
}

TEST(ServiceProperty, CancelQueuedJobNeverRunsPipeline)
{
    auto &registry = obs::MetricsRegistry::global();
    auto &runs = registry.counter(names::kMetricPipelineRuns);
    const uint64_t runs0 = runs.value();
    const uint64_t runMs0 =
        registry.histogram(names::kMetricServiceJobRunMs).count();

    ServerConfig config;
    config.executors = 1;
    QuestServer server(config);
    QuestClient client = connectLocal(server);

    SubmitRequest heavy;
    heavy.qasm = toQasm(algos::qft(5));
    heavy.options.maxLayers = 10;
    const SubmitReply blocker = client.submit(heavy);
    ASSERT_TRUE(blocker.accepted);

    SubmitRequest tiny;
    tiny.options = tinyOptions();
    tiny.qasm = tinyQasm(0.3);
    const SubmitReply victim = client.submit(tiny);
    ASSERT_TRUE(victim.accepted);

    const CancelReply cancelled = client.cancelJob(victim.jobId);
    EXPECT_EQ(cancelled.outcome, CancelOutcome::Dequeued);
    const JobStatus status = server.waitTerminal(victim.jobId);
    EXPECT_EQ(status.state, JobState::Cancelled);
    EXPECT_EQ(status.exitCode, names::kExitCancelled);

    client.cancelJob(blocker.jobId);
    server.waitTerminal(blocker.jobId);
    server.stop(); // joins executors: no deferred work remains

    // The victim left no trace in the pipeline: only the blocker's
    // run started (no leaked pool work item), and only the blocker
    // recorded a run duration (no leaked Budget poll past admission).
    EXPECT_EQ(runs.value(), runs0 + 1);
    EXPECT_EQ(
        registry.histogram(names::kMetricServiceJobRunMs).count(),
        runMs0 + 1);
}

} // namespace
} // namespace quest::service
