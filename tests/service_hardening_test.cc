/**
 * @file
 * Production-hardening tests for the compile service: slowloris and
 * stalled-reader peers become counted drops, idle connections are
 * reaped, the concurrent-connection cap sheds excess peers, tenant
 * quotas and weighted round-robin keep one noisy tenant from starving
 * the rest, bounded `result --wait` degrades to Retry frames, the
 * self-healing client reconnects through injected socket faults with
 * a deterministic backoff schedule, submission-key dedup makes a
 * retried submit run exactly once, and an executor crash finalizes
 * the job as Internal without taking the daemon down.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "algos/algorithms.hh"
#include "ir/qasm.hh"
#include "obs/metrics.hh"
#include "resilience/error.hh"
#include "resilience/fault.hh"
#include "service/client.hh"
#include "service/queue.hh"
#include "service/server.hh"
#include "service/socket.hh"
#include "util/annotations.hh"
#include "util/names.hh"

namespace quest::service {
namespace {

namespace fs = std::filesystem;
using resilience::QuestError;
using resilience::ScopedFaultPlan;

fs::path
makeTempDir()
{
    std::string tmpl =
        (fs::temp_directory_path() / "quest-hardening-test-XXXXXX")
            .string();
    char *dir = mkdtemp(tmpl.data());
    EXPECT_NE(dir, nullptr);
    return fs::path(dir);
}

/** RAII removal of a test socket/state directory. */
struct TempDir
{
    fs::path path = makeTempDir();
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

uint64_t
counterValue(const char *name)
{
    return obs::MetricsRegistry::global().counter(name).value();
}

int64_t
gaugeValue(const char *name)
{
    return obs::MetricsRegistry::global().gauge(name).value();
}

/** Poll @p done for up to @p seconds (connection threads settle
 *  asynchronously). Returns whether it came true in time. */
bool
eventually(const std::function<bool()> &done, double seconds = 5.0)
{
    QUEST_RESULT_NEUTRAL("test-side polling deadline: when the "
                         "condition is observed never changes what "
                         "is asserted");
    const auto giveUp =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    while (!done()) {
        if (std::chrono::steady_clock::now() >= giveUp)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return true;
}

/** A connected (server fd, client fd) stream pair. */
std::pair<int, int>
streamPair()
{
    int sv[2] = {-1, -1};
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    return {sv[0], sv[1]};
}

QuestClient
connectLocal(QuestServer &server)
{
    auto [serverFd, clientFd] = streamPair();
    server.attach(serverFd);
    return QuestClient::fromFd(clientFd);
}

std::string
tinyQasm(double angle)
{
    Circuit c(3);
    c.append(Gate::cx(0, 1));
    c.append(Gate::u3(1, angle, 0.2, 0.1));
    c.append(Gate::cx(1, 2));
    c.append(Gate::u3(0, 0.5, angle, 0.3));
    c.append(Gate::cx(0, 2));
    return toQasm(c);
}

SubmitRequest
tinyRequest(double angle = 0.3)
{
    SubmitRequest request;
    request.options.maxLayers = 4;
    request.options.maxSamples = 4;
    request.qasm = tinyQasm(angle);
    return request;
}

SubmitRequest
heavyRequest()
{
    SubmitRequest request;
    request.qasm = toQasm(algos::qft(5));
    request.options.maxLayers = 10;
    return request;
}

// ---- socket deadlines --------------------------------------------

TEST(ServiceHardening, SlowlorisPartialHeaderIsCountedStall)
{
    ServerConfig config;
    config.ioTimeoutSeconds = 0.1;
    QuestServer server(config);

    const uint64_t before =
        counterValue(names::kMetricServiceRecvStalls);
    auto [serverFd, clientFd] = streamPair();
    server.attach(serverFd);

    // Dribble 4 of the 12 header bytes, then stall. The frame has
    // started, so the per-frame deadline (not the idle reaper) must
    // classify the peer and drop it.
    ASSERT_EQ(send(clientFd, "QSV1", 4, 0), 4);
    EXPECT_TRUE(eventually([&] {
        return counterValue(names::kMetricServiceRecvStalls) ==
               before + 1;
    }));
    // The drop is visible to the peer as a close, not a reply.
    EXPECT_EQ(recvFrame(clientFd).status, RecvStatus::Eof);
    close(clientFd);
    server.stop();
}

TEST(ServiceHardening, SlowlorisPartialPayloadIsCountedStall)
{
    ServerConfig config;
    config.ioTimeoutSeconds = 0.1;
    QuestServer server(config);

    const uint64_t before =
        counterValue(names::kMetricServiceRecvStalls);
    auto [serverFd, clientFd] = streamPair();
    server.attach(serverFd);

    // A complete, valid header -- then only 3 of the declared
    // payload + trailer bytes.
    StatusRequest request;
    request.jobId = 7;
    const std::vector<uint8_t> frame =
        encodeFrame(MsgType::Status, encodePayload(request));
    ASSERT_EQ(send(clientFd, frame.data(), kFrameHeaderBytes + 3, 0),
              static_cast<ssize_t>(kFrameHeaderBytes + 3));
    EXPECT_TRUE(eventually([&] {
        return counterValue(names::kMetricServiceRecvStalls) ==
               before + 1;
    }));
    EXPECT_EQ(recvFrame(clientFd).status, RecvStatus::Eof);
    close(clientFd);
    server.stop();
}

TEST(ServiceHardening, StalledReaderStallsTheSendNotTheThread)
{
    // The symmetric direction: a peer that stops reading until our
    // send buffer fills must bound the write, not hang it. A frame
    // far larger than any unix-socket buffer cannot complete while
    // nobody drains the other end.
    QUEST_RESULT_NEUTRAL("timing the bounded send only sanity-checks "
                         "the deadline; no compile result depends on "
                         "the clock");
    auto [a, b] = streamPair();
    const std::vector<uint8_t> huge(8u << 20, 0xab);
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(sendFrame(a, MsgType::Stats, huge, /*ioTimeoutMs=*/100),
              SendStatus::Stalled);
    const double took =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_GE(took, 0.09);
    EXPECT_LT(took, 5.0);
    close(a);
    close(b);
}

TEST(ServiceHardening, IdleConnectionIsReaped)
{
    ServerConfig config;
    config.idleTimeoutSeconds = 0.1;
    QuestServer server(config);

    const uint64_t before =
        counterValue(names::kMetricServiceConnsReaped);
    auto [serverFd, clientFd] = streamPair();
    server.attach(serverFd);

    // Send nothing at all: the reaper (not the mid-frame deadline)
    // must close the connection and count it.
    EXPECT_TRUE(eventually([&] {
        return counterValue(names::kMetricServiceConnsReaped) ==
               before + 1;
    }));
    EXPECT_EQ(recvFrame(clientFd).status, RecvStatus::Eof);
    EXPECT_TRUE(eventually([&] {
        return gaugeValue(names::kMetricServiceConnsActive) == 0;
    }));
    close(clientFd);
    server.stop();
}

TEST(ServiceHardening, ConnectionCapRefusesExcessPeers)
{
    ServerConfig config;
    config.maxConnections = 1;
    QuestServer server(config);

    const uint64_t before =
        counterValue(names::kMetricServiceConnsRejected);

    QuestClient first = connectLocal(server);
    EXPECT_FALSE(first.stats().stats.empty()); // slot is live

    // The second peer gets a resource Error frame, then a close --
    // refusal is explicit, not a silent drop.
    auto [serverFd, clientFd] = streamPair();
    server.attach(serverFd);
    const RecvResult r = recvFrame(clientFd);
    ASSERT_EQ(r.status, RecvStatus::Ok);
    ASSERT_EQ(r.frame.type, MsgType::Error);
    const ErrorReply err = decodePayload<ErrorReply>(r.frame.payload);
    EXPECT_EQ(err.exitCode, names::kExitResource);
    EXPECT_NE(err.message.find("connection limit"),
              std::string::npos);
    EXPECT_EQ(recvFrame(clientFd).status, RecvStatus::Eof);
    close(clientFd);
    EXPECT_EQ(counterValue(names::kMetricServiceConnsRejected),
              before + 1);

    // The live connection still works, and closing it frees the slot
    // for a new peer -- the cap tracks live connections, not history.
    EXPECT_FALSE(first.stats().stats.empty());
    first = QuestClient::fromFd(-1);
    EXPECT_TRUE(eventually([&] {
        return gaugeValue(names::kMetricServiceConnsActive) == 0;
    }));
    QuestClient second = connectLocal(server);
    EXPECT_FALSE(second.stats().stats.empty());
    server.stop();
}

// ---- tenant fairness ---------------------------------------------

TEST(ServiceHardening, WeightedRoundRobinInterleavesTenants)
{
    QueueLimits limits;
    limits.capacity = 16;
    limits.tenantWeights["a"] = 2;
    JobQueue queue(limits);
    resilience::CancelToken root;

    auto push = [&](uint64_t seq, const std::string &tenant) {
        auto job = std::make_shared<Job>(&root);
        job->id = seq;
        job->seq = seq;
        job->request.tenant = tenant;
        ASSERT_EQ(queue.tryPush(job), PushOutcome::Ok);
    };
    // Tenant a floods first; b submits after. Weight a=2, b=1.
    push(1, "a");
    push(2, "a");
    push(3, "a");
    push(4, "b");
    push(5, "b");
    push(6, "b");

    std::vector<uint64_t> order;
    for (int i = 0; i < 6; ++i) {
        auto job = queue.pop();
        ASSERT_NE(job, nullptr);
        order.push_back(job->id);
        queue.jobFinished(job->request.tenant);
    }
    // a takes two turns per rotation, b one -- b is never starved
    // behind a's whole backlog, and the order is a pure function of
    // the submissions.
    EXPECT_EQ(order, (std::vector<uint64_t>{1, 2, 4, 3, 5, 6}));
}

TEST(ServiceHardening, RunningCapSkipsSaturatedTenantLane)
{
    QueueLimits limits;
    limits.capacity = 16;
    limits.tenantMaxRunning = 1;
    JobQueue queue(limits);
    resilience::CancelToken root;

    auto push = [&](uint64_t seq, const std::string &tenant) {
        auto job = std::make_shared<Job>(&root);
        job->id = seq;
        job->seq = seq;
        job->request.tenant = tenant;
        ASSERT_EQ(queue.tryPush(job), PushOutcome::Ok);
    };
    push(1, "a");
    push(2, "a");
    push(3, "b");

    auto first = queue.pop();
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->id, 1u);
    // With a already holding its running slot, its lane is skipped:
    // the next pop serves b even though a2 queued earlier.
    auto second = queue.pop();
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->id, 3u);
    // Releasing a's slot makes a2 eligible again.
    queue.jobFinished("a");
    auto third = queue.pop();
    ASSERT_NE(third, nullptr);
    EXPECT_EQ(third->id, 2u);
    queue.jobFinished("b");
    queue.jobFinished("a");
}

TEST(ServiceHardening, TenantQuotaShedsWithRetryHint)
{
    ServerConfig config;
    config.executors = 1;
    config.tenantMaxQueued = 1;
    QuestServer server(config);
    QuestClient client = connectLocal(server);

    const uint64_t shedBefore =
        counterValue(names::kMetricServiceTenantSheds);

    SubmitRequest heavy = heavyRequest();
    heavy.tenant = "noisy";
    const SubmitReply blocker = client.submit(heavy);
    ASSERT_TRUE(blocker.accepted);

    SubmitRequest tiny = tinyRequest();
    tiny.tenant = "noisy";
    const SubmitReply queued = client.submit(tiny);
    ASSERT_TRUE(queued.accepted);

    // noisy's queued share (1) is spent: the third submit is shed
    // with the resource code and a deterministic backoff hint --
    // while another tenant is still admitted.
    const SubmitReply shed = client.submit(tiny);
    EXPECT_FALSE(shed.accepted);
    EXPECT_EQ(shed.state, JobState::Rejected);
    EXPECT_NE(shed.detail.find("quota"), std::string::npos);
    EXPECT_GT(shed.retryAfterSeconds, 0.0);
    EXPECT_EQ(counterValue(names::kMetricServiceTenantSheds),
              shedBefore + 1);
    EXPECT_EQ(client.status(shed.jobId).exitCode,
              names::kExitResource);

    SubmitRequest polite = tinyRequest(0.4);
    polite.tenant = "polite";
    const SubmitReply ok = client.submit(polite);
    EXPECT_TRUE(ok.accepted);

    client.cancelJob(ok.jobId);
    client.cancelJob(queued.jobId);
    client.cancelJob(blocker.jobId);
    server.stop();
}

// ---- bounded result wait -----------------------------------------

TEST(ServiceHardening, BoundedResultWaitYieldsRetryFrame)
{
    ServerConfig config;
    config.executors = 1;
    config.maxResultWaitSeconds = 0.05;
    QuestServer server(config);
    QuestClient client = connectLocal(server);

    const uint64_t retriesBefore =
        counterValue(names::kMetricServiceResultRetries);
    const SubmitReply blocker = client.submit(heavyRequest());
    ASSERT_TRUE(blocker.accepted);

    // Ask for a long wait over a raw connection: the server must
    // answer within its own bound with a Retry frame carrying the
    // job's live (non-terminal) status, not pin the thread.
    auto [serverFd, clientFd] = streamPair();
    server.attach(serverFd);
    ResultRequest request;
    request.jobId = blocker.jobId;
    request.wait = true;
    request.timeoutSeconds = 30;
    ASSERT_EQ(sendFrame(clientFd, MsgType::Result,
                        encodePayload(request)),
              SendStatus::Ok);
    const RecvResult r = recvFrame(clientFd);
    ASSERT_EQ(r.status, RecvStatus::Ok);
    ASSERT_EQ(r.frame.type, MsgType::Retry);
    const RetryReply retry =
        decodePayload<RetryReply>(r.frame.payload);
    EXPECT_TRUE(retry.status.known);
    EXPECT_FALSE(isTerminalJobState(retry.status.state));
    EXPECT_GE(retry.retryAfterSeconds, 0.0);
    EXPECT_EQ(counterValue(names::kMetricServiceResultRetries),
              retriesBefore + 1);
    close(clientFd);

    client.cancelJob(blocker.jobId);
    // The high-level client polls through Retry frames to the
    // terminal state transparently.
    const ResultReply result = client.result(blocker.jobId);
    EXPECT_TRUE(isTerminalJobState(result.status.state));
    server.stop();
}

// ---- self-healing client -----------------------------------------

TEST(ServiceHardening, BackoffScheduleIsDeterministic)
{
    RetryPolicy policy;
    policy.retries = 6;
    const std::vector<double> a = backoffSchedule(policy, 6);
    const std::vector<double> b = backoffSchedule(policy, 6);
    EXPECT_EQ(a, b); // same seed, same schedule -- reproducible

    RetryPolicy reseeded = policy;
    reseeded.seed = 0x1234;
    EXPECT_NE(backoffSchedule(reseeded, 6), a); // jitter is seeded

    for (size_t k = 0; k < a.size(); ++k) {
        // Jittered into [cap/2, cap], cap = min(base * 2^k, max).
        const double cap =
            std::min(policy.baseDelaySeconds * double(1 << k),
                     policy.maxDelaySeconds);
        EXPECT_GE(a[k], 0.5 * cap);
        EXPECT_LE(a[k], cap);
    }
}

TEST(ServiceHardening, ClientHealsThroughDroppedConnection)
{
    TempDir dir;
    ServerConfig config;
    config.socketPath = (dir.path / "served.sock").string();
    QuestServer server(config);
    server.start();

    const uint64_t dropBefore = counterValue("fault.service.conn.drop");
    const uint64_t healBefore =
        counterValue(names::kMetricServiceClientRetries);
    {
        // The first received frame is dropped on the floor without a
        // reply (the worst spot: after the request reached the
        // server). The default client reconnects and resends.
        ScopedFaultPlan plan("service.conn.drop:once");
        QuestClient client =
            QuestClient::connect(config.socketPath, 5.0);
        EXPECT_FALSE(client.stats().stats.empty());
    }
    EXPECT_EQ(counterValue("fault.service.conn.drop"), dropBefore + 1);
    EXPECT_GE(counterValue(names::kMetricServiceClientRetries),
              healBefore + 1);
    server.stop();
}

TEST(ServiceHardening, ClientHealsThroughRecvStallFault)
{
    TempDir dir;
    ServerConfig config;
    config.socketPath = (dir.path / "served.sock").string();
    QuestServer server(config);
    server.start();

    const uint64_t stallBefore =
        counterValue(names::kMetricServiceRecvStalls);
    {
        // An injected mid-frame stall: the daemon counts the drop,
        // the healing client carries the request through.
        ScopedFaultPlan plan("service.recv.stall:once");
        QuestClient client =
            QuestClient::connect(config.socketPath, 5.0);
        EXPECT_FALSE(client.stats().stats.empty());
    }
    EXPECT_EQ(counterValue(names::kMetricServiceRecvStalls),
              stallBefore + 1);
    server.stop();
}

TEST(ServiceHardening, SubmissionKeyDedupRunsJobExactlyOnce)
{
    ServerConfig config;
    config.executors = 1;
    QuestServer server(config);

    const uint64_t dedupBefore =
        counterValue(names::kMetricServiceSubmitDedupHits);

    SubmitRequest request = tinyRequest();
    request.tenant = "team";
    request.submissionKey = "idempotent-1";

    // Submit, then lose the connection right after the ack -- the
    // client that died never learned whether its job ran.
    uint64_t firstId = 0;
    {
        QuestClient client = connectLocal(server);
        const SubmitReply reply = client.submit(request);
        ASSERT_TRUE(reply.accepted);
        EXPECT_FALSE(reply.deduplicated);
        firstId = reply.jobId;
    } // connection killed here

    // The blind resend lands on the same job: no second execution.
    QuestClient retry = connectLocal(server);
    const SubmitReply replay = retry.submit(request);
    ASSERT_TRUE(replay.accepted);
    EXPECT_TRUE(replay.deduplicated);
    EXPECT_EQ(replay.jobId, firstId);
    EXPECT_EQ(counterValue(names::kMetricServiceSubmitDedupHits),
              dedupBefore + 1);

    const ResultReply result = retry.result(firstId);
    ASSERT_EQ(result.status.state, JobState::Done);

    // Even after completion the key still dedups (and never re-runs):
    // the synthesis work counter must not move for a third submit.
    const uint64_t instAfter =
        counterValue(names::kMetricSynthInstantiations);
    const SubmitReply late = retry.submit(request);
    EXPECT_TRUE(late.deduplicated);
    EXPECT_EQ(late.jobId, firstId);
    EXPECT_EQ(retry.result(firstId).status.state, JobState::Done);
    EXPECT_EQ(counterValue(names::kMetricSynthInstantiations),
              instAfter);

    // A different key is a different job.
    SubmitRequest fresh = request;
    fresh.submissionKey = "idempotent-2";
    const SubmitReply other = retry.submit(fresh);
    ASSERT_TRUE(other.accepted);
    EXPECT_FALSE(other.deduplicated);
    EXPECT_NE(other.jobId, firstId);
    retry.result(other.jobId);
    server.stop();
}

// ---- executor supervision ----------------------------------------

TEST(ServiceHardening, ExecutorCrashFinalizesJobDaemonSurvives)
{
    ServerConfig config;
    config.executors = 1;
    QuestServer server(config);
    QuestClient client = connectLocal(server);

    const uint64_t crashBefore =
        counterValue(names::kMetricServiceExecutorCrashes);
    uint64_t crashedId = 0;
    {
        ScopedFaultPlan plan("service.executor.crash:once");
        const SubmitReply reply = client.submit(tinyRequest());
        ASSERT_TRUE(reply.accepted);
        crashedId = reply.jobId;
        const ResultReply result = client.result(crashedId);
        // The guard converts the escaped exception into a terminal
        // Failed/Internal record -- never a lost job or a dead
        // executor thread.
        EXPECT_EQ(result.status.state, JobState::Failed);
        EXPECT_EQ(result.status.exitCode, names::kExitInternal);
        EXPECT_NE(result.status.detail.find("crash"),
                  std::string::npos);
    }
    EXPECT_EQ(counterValue(names::kMetricServiceExecutorCrashes),
              crashBefore + 1);

    // The same executor thread keeps serving: the next job lands
    // Done, proving the crash consumed one job, not the daemon.
    const SubmitReply next = client.submit(tinyRequest(0.5));
    ASSERT_TRUE(next.accepted);
    EXPECT_EQ(client.result(next.jobId).status.state, JobState::Done);
    server.stop();
}

} // namespace
} // namespace quest::service
