/**
 * @file
 * Cross-checks buildUnitary against the statevector simulator: column
 * j of the circuit unitary must equal the state obtained by applying
 * the circuit to basis state |j>.
 */

#include <gtest/gtest.h>

#include <numbers>

#include "algos/algorithms.hh"
#include "ir/circuit.hh"
#include "sim/statevector.hh"
#include "sim/unitary_builder.hh"

namespace quest {
namespace {

constexpr double pi = std::numbers::pi;

/** The circuit applied to basis state |j>. */
std::vector<Complex>
applyToBasis(const Circuit &circuit, size_t j)
{
    StateVector sv(circuit.numQubits());
    auto &amps = sv.amplitudes();
    std::fill(amps.begin(), amps.end(), Complex(0.0, 0.0));
    amps[j] = Complex(1.0, 0.0);
    sv.applyCircuit(circuit);
    return sv.amplitudes();
}

/** Column-by-column comparison against the simulator. */
void
expectMatchesSimulator(const Circuit &circuit)
{
    Matrix u = buildUnitary(circuit);
    const size_t dim = size_t{1} << circuit.numQubits();
    ASSERT_EQ(u.rows(), dim);
    ASSERT_EQ(u.cols(), dim);
    for (size_t j = 0; j < dim; ++j) {
        std::vector<Complex> column = applyToBasis(circuit, j);
        for (size_t r = 0; r < dim; ++r) {
            EXPECT_NEAR(std::abs(u(r, j) - column[r]), 0.0, 1e-12)
                << "column " << j << " row " << r;
        }
    }
}

TEST(UnitaryBuilder, SingleQubitGates)
{
    Circuit c(1);
    c.append(Gate::h(0));
    c.append(Gate::t(0));
    c.append(Gate::u3(0, 0.3, -1.2, 2.5));
    c.append(Gate::sx(0));
    expectMatchesSimulator(c);
}

TEST(UnitaryBuilder, TwoQubitGates)
{
    Circuit c(2);
    c.append(Gate::h(0));
    c.append(Gate::cx(0, 1));
    c.append(Gate::rzz(0, 1, 0.7));
    c.append(Gate::swap(0, 1));
    c.append(Gate::cp(1, 0, pi / 3));
    expectMatchesSimulator(c);
}

TEST(UnitaryBuilder, ThreeQubitGates)
{
    Circuit c(3);
    c.append(Gate::h(1));
    c.append(Gate::ccx(0, 1, 2));
    c.append(Gate::cx(2, 0));
    c.append(Gate::ry(1, 0.4));
    c.append(Gate::ccx(2, 0, 1));
    expectMatchesSimulator(c);
}

TEST(UnitaryBuilder, CxDirectionMatters)
{
    Circuit up(2), down(2);
    up.append(Gate::cx(0, 1));
    down.append(Gate::cx(1, 0));
    expectMatchesSimulator(up);
    expectMatchesSimulator(down);

    Matrix mu = buildUnitary(up);
    Matrix md = buildUnitary(down);
    double diff = 0.0;
    for (size_t r = 0; r < 4; ++r)
        for (size_t cidx = 0; cidx < 4; ++cidx)
            diff += std::abs(mu(r, cidx) - md(r, cidx));
    EXPECT_GT(diff, 1.0);
}

TEST(UnitaryBuilder, GateOrderMatters)
{
    Circuit hc(2), ch(2);
    hc.append(Gate::h(0));
    hc.append(Gate::cx(0, 1));
    ch.append(Gate::cx(0, 1));
    ch.append(Gate::h(0));
    expectMatchesSimulator(hc);
    expectMatchesSimulator(ch);

    Matrix a = buildUnitary(hc);
    Matrix b = buildUnitary(ch);
    double diff = 0.0;
    for (size_t r = 0; r < 4; ++r)
        for (size_t cidx = 0; cidx < 4; ++cidx)
            diff += std::abs(a(r, cidx) - b(r, cidx));
    EXPECT_GT(diff, 1.0);
}

TEST(UnitaryBuilder, WirePermutationRemapsTheUnitary)
{
    // The same block embedded on permuted wires must agree with the
    // simulator on the full register.
    Circuit block(2);
    block.append(Gate::h(0));
    block.append(Gate::cx(0, 1));
    block.append(Gate::rz(1, 0.9));

    Circuit embedded(3);
    embedded.appendCircuit(block, {2, 0});
    expectMatchesSimulator(embedded);

    // And a permutation is not a no-op: wires (2,0) differ from (0,2).
    Circuit direct(3);
    direct.appendCircuit(block, {0, 2});
    Matrix a = buildUnitary(embedded);
    Matrix b = buildUnitary(direct);
    double diff = 0.0;
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t cidx = 0; cidx < a.cols(); ++cidx)
            diff += std::abs(a(r, cidx) - b(r, cidx));
    EXPECT_GT(diff, 1.0);
}

TEST(UnitaryBuilder, AgreesWithCircuitUnitary)
{
    Circuit c = algos::tfim(3, 2);
    Matrix fast = buildUnitary(c);
    Matrix slow = circuitUnitary(c);
    ASSERT_EQ(fast.rows(), slow.rows());
    for (size_t r = 0; r < fast.rows(); ++r)
        for (size_t j = 0; j < fast.cols(); ++j)
            EXPECT_NEAR(std::abs(fast(r, j) - slow(r, j)), 0.0, 1e-11);
}

TEST(UnitaryBuilder, TrotterCircuitMatchesSimulator)
{
    expectMatchesSimulator(algos::heisenberg(3, 1));
    expectMatchesSimulator(algos::qft(3));
}

TEST(UnitaryBuilder, BarrierAndMeasureAreIgnored)
{
    Circuit with(2), without(2);
    with.append(Gate::h(0));
    with.append(Gate::barrier({0, 1}));
    with.append(Gate::cx(0, 1));
    with.append(Gate::measure(0));
    without.append(Gate::h(0));
    without.append(Gate::cx(0, 1));

    Matrix a = buildUnitary(with);
    Matrix b = buildUnitary(without);
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t j = 0; j < a.cols(); ++j)
            EXPECT_NEAR(std::abs(a(r, j) - b(r, j)), 0.0, 1e-14);
}

TEST(UnitaryBuilder, RejectsOversizedCircuits)
{
    EXPECT_DEATH(buildUnitary(Circuit(15)), "14");
}

} // namespace
} // namespace quest
