/**
 * @file
 * Service stress tests: cross-job synthesis-cache dedup under 8
 * concurrent client threads (the tsan target), warm-resubmission
 * zero-miss behavior, and SIGKILL-and-resume — a restarted daemon
 * replays in-flight checkpointed jobs byte-identically.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "algos/algorithms.hh"
#include "ir/qasm.hh"
#include "obs/metrics.hh"
#include "quest/pipeline.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "util/annotations.hh"
#include "util/names.hh"

namespace quest::service {
namespace {

namespace fs = std::filesystem;

fs::path
makeTempDir()
{
    std::string tmpl =
        (fs::temp_directory_path() / "quest-service-stress-XXXXXX")
            .string();
    char *dir = mkdtemp(tmpl.data());
    EXPECT_NE(dir, nullptr);
    return fs::path(dir);
}

struct TempDir
{
    fs::path path = makeTempDir();
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

QuestClient
connectLocal(QuestServer &server)
{
    int sv[2] = {-1, -1};
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    server.attach(sv[0]);
    return QuestClient::fromFd(sv[1]);
}

/** A tiny single-block circuit parameterized by @p angle. */
std::string
tinyQasm(double angle)
{
    Circuit c(3);
    c.append(Gate::cx(0, 1));
    c.append(Gate::u3(1, angle, 0.2, 0.1));
    c.append(Gate::cx(1, 2));
    c.append(Gate::u3(0, 0.5, angle, 0.3));
    c.append(Gate::cx(0, 2));
    return toQasm(c);
}

CompileOptions
tinyOptions()
{
    CompileOptions options;
    options.maxLayers = 4;
    options.maxSamples = 4;
    return options;
}

uint64_t
counterValue(const char *name)
{
    return obs::MetricsRegistry::global().counter(name).value();
}

TEST(ServiceStress, CrossJobDedupUnderConcurrentClients)
{
    auto &registry = obs::MetricsRegistry::global();
    registry.reset();

    TempDir tmp;
    ServerConfig config;
    config.cacheDir = (tmp.path / "cache").string();
    // Two executors: enough concurrency to exercise the shared
    // cache, small enough that at most 2 jobs can race the same
    // uncached block (keeps the dedup bound below airtight).
    config.executors = 2;
    config.queueCapacity = 64;
    QuestServer server(config);

    // 4 distinct circuits, each submitted 4 times across 8 client
    // threads with overlapping assignments.
    const std::vector<std::string> circuits = {
        tinyQasm(0.3), tinyQasm(0.9), tinyQasm(1.7), tinyQasm(2.4)};

    constexpr int kThreads = 8;
    std::atomic<uint64_t> totalBlocks{0};
    std::atomic<uint64_t> doneJobs{0};
    std::atomic<bool> ok{true};
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            QuestClient client = connectLocal(server);
            const size_t first = static_cast<size_t>(t) % 4;
            const size_t second = (static_cast<size_t>(t) + 1) % 4;
            for (size_t pick : {first, second}) {
                SubmitRequest request;
                request.options = tinyOptions();
                request.qasm = circuits[pick];
                const SubmitReply submitted = client.submit(request);
                if (!submitted.accepted) {
                    ok = false;
                    return;
                }
                // Interleave status/stats traffic with the compile.
                client.status(submitted.jobId);
                client.stats();
                const ResultReply result =
                    client.result(submitted.jobId);
                if (result.status.state != JobState::Done) {
                    ok = false;
                    return;
                }
                totalBlocks += result.blocks;
                ++doneJobs;
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    server.stop();

    ASSERT_TRUE(ok.load()) << "a job failed; see statuses above";
    EXPECT_EQ(doneJobs.load(), 2u * kThreads);

    // Dedup accounting is exact: every block is either a cache hit
    // (in-memory dedup, the shared disk cache, or a checkpoint) or
    // an actual LEAP search.
    const uint64_t hits =
        counterValue(names::kMetricSynthCacheHits);
    const uint64_t misses =
        counterValue(names::kMetricSynthCacheMisses);
    EXPECT_EQ(hits + misses, totalBlocks.load());

    // A cold serial baseline (each job against an empty cache) would
    // miss every block: these circuits are single-block with no
    // in-run duplicates, so baseline misses == totalBlocks. Sharing
    // one cache across jobs must do strictly better.
    EXPECT_LT(misses, totalBlocks.load());
    // At most `executors` jobs can race one uncached block, so the
    // 4 distinct circuits cost at most 8 searches.
    EXPECT_LE(misses, 2u * circuits.size());

    // Warm resubmission on a fresh daemon sharing the same cache
    // directory: every block hits, zero new misses.
    QuestServer warm(config);
    QuestClient client = connectLocal(warm);
    for (const std::string &qasm : circuits) {
        SubmitRequest request;
        request.options = tinyOptions();
        request.qasm = qasm;
        const SubmitReply submitted = client.submit(request);
        ASSERT_TRUE(submitted.accepted);
        const ResultReply result = client.result(submitted.jobId);
        ASSERT_EQ(result.status.state, JobState::Done)
            << result.status.detail;
    }
    warm.stop();
    EXPECT_EQ(counterValue(names::kMetricSynthCacheMisses), misses)
        << "warm resubmission must not synthesize anything";
    EXPECT_GE(counterValue(names::kMetricSynthCacheHits),
              hits + circuits.size());
}

TEST(ServiceStress, KillAndResumeReplaysInFlightJobByteIdentically)
{
    TempDir tmp;
    const fs::path state = tmp.path / "state";

    // The job: multi-block, several seconds of synthesis — long
    // enough that the SIGKILL below always lands mid-run.
    CompileOptions options;
    options.maxLayers = 8;
    options.maxSamples = 4;
    options.blockSize = 3;
    const std::string qasm = toQasm(algos::qft(4));

    // Reference result, computed uninterrupted in this process with
    // the exact config the server derives from these options.
    QuestPipeline reference(compileConfig(options));
    const QuestResult expected = reference.run(parseQasm(qasm));
    ASSERT_FALSE(expected.samples.empty());

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child daemon: accept the job, start compiling, never
        // finish — the parent SIGKILLs us mid-synthesis.
        ServerConfig config;
        config.stateDir = state.string();
        config.executors = 1;
        QuestServer server(config);
        int sv[2] = {-1, -1};
        if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
            _exit(81);
        server.attach(sv[0]);
        QuestClient client = QuestClient::fromFd(sv[1]);
        SubmitRequest request;
        request.options = options;
        request.qasm = qasm;
        const SubmitReply reply = client.submit(request);
        if (!reply.accepted || reply.jobId != 1)
            _exit(82);
        for (;;)
            pause(); // hold the process open until SIGKILL
    }

    // Wait until the job's checkpoint journal exists and has grown
    // past its initial size (at least one block checkpointed), then
    // kill the daemon mid-job.
    const fs::path jobJournal = state / "jobs" / "1" / "journal.qrj";
    QUEST_RESULT_NEUTRAL("when the SIGKILL lands only shifts how many "
                         "blocks replay from the checkpoint; the "
                         "resumed result is byte-identical either way");
    uintmax_t initial = 0;
    const auto giveUp =
        std::chrono::steady_clock::now() + std::chrono::minutes(5);
    for (;;) {
        std::error_code ec;
        const uintmax_t size = fs::file_size(jobJournal, ec);
        if (!ec && initial == 0)
            initial = size;
        if (!ec && initial != 0 && size > initial)
            break;
        if (std::chrono::steady_clock::now() > giveUp)
            break; // kill anyway; resume must still be identical
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(kill(child, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wstatus));

    // The restarted daemon finds the submit record without a
    // terminal record, re-enqueues the job, and its checkpoint
    // journal replays the already-synthesized blocks.
    const uint64_t replayed0 =
        counterValue(names::kMetricServiceJobsReplayed);
    ServerConfig config;
    config.stateDir = state.string();
    config.executors = 1;
    QuestServer server(config);
    EXPECT_EQ(server.replayedJobs(), 1u);
    EXPECT_EQ(counterValue(names::kMetricServiceJobsReplayed),
              replayed0 + 1);

    const JobStatus status = server.waitTerminal(1);
    ASSERT_EQ(status.state, JobState::Done) << status.detail;

    QuestClient client = connectLocal(server);
    const ResultReply result = client.result(1);
    ASSERT_EQ(result.status.state, JobState::Done);
    EXPECT_EQ(result.blocks, expected.blocks.size());
    ASSERT_EQ(result.samples.size(), expected.samples.size());
    for (size_t s = 0; s < expected.samples.size(); ++s) {
        EXPECT_EQ(result.samples[s].qasm,
                  toQasm(expected.samples[s].circuit))
            << "sample " << s << " diverged across kill/resume";
        EXPECT_EQ(result.samples[s].cnotCount,
                  expected.samples[s].cnotCount);
    }
    server.stop();

    // A second restart replays nothing: the terminal record landed,
    // and (at-most-once delivery) the result is not retained.
    QuestServer again(config);
    EXPECT_EQ(again.replayedJobs(), 0u);
    EXPECT_FALSE(again.statusOf(1).known);
    again.stop();
}

} // namespace
} // namespace quest::service
