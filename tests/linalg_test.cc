/**
 * @file
 * Unit and property tests for the linalg module.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "linalg/decompose.hh"
#include "linalg/distance.hh"
#include "linalg/embed.hh"
#include "linalg/matrix.hh"
#include "util/rng.hh"

namespace quest {
namespace {

constexpr double pi = std::numbers::pi;

/** A random unitary built from random U3s and CX-like mixing. */
Matrix
randomUnitary(int n, Rng &rng)
{
    size_t dim = size_t{1} << n;
    // Gram-Schmidt on a random complex matrix.
    Matrix m(dim, dim);
    for (size_t r = 0; r < dim; ++r)
        for (size_t c = 0; c < dim; ++c)
            m(r, c) = Complex(rng.normal(), rng.normal());
    // Orthonormalize columns.
    for (size_t c = 0; c < dim; ++c) {
        for (size_t prev = 0; prev < c; ++prev) {
            Complex dot(0.0, 0.0);
            for (size_t r = 0; r < dim; ++r)
                dot += std::conj(m(r, prev)) * m(r, c);
            for (size_t r = 0; r < dim; ++r)
                m(r, c) -= dot * m(r, prev);
        }
        double norm = 0.0;
        for (size_t r = 0; r < dim; ++r)
            norm += std::norm(m(r, c));
        norm = std::sqrt(norm);
        for (size_t r = 0; r < dim; ++r)
            m(r, c) /= norm;
    }
    return m;
}

TEST(Matrix, IdentityProperties)
{
    Matrix i = Matrix::identity(4);
    EXPECT_EQ(i.rows(), 4u);
    EXPECT_TRUE(i.isUnitary());
    EXPECT_EQ(i.trace(), Complex(4.0, 0.0));
}

TEST(Matrix, InitializerList)
{
    Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(m(0, 1), Complex(2.0, 0.0));
    EXPECT_EQ(m(1, 0), Complex(3.0, 0.0));
}

TEST(Matrix, AdditionSubtraction)
{
    Matrix a = {{1.0, 0.0}, {0.0, 1.0}};
    Matrix b = {{0.0, 2.0}, {2.0, 0.0}};
    Matrix sum = a + b;
    EXPECT_EQ(sum(0, 1), Complex(2.0, 0.0));
    Matrix diff = sum - b;
    EXPECT_TRUE(diff.approxEqual(a));
}

TEST(Matrix, ScalarMultiply)
{
    Matrix a = Matrix::identity(2);
    Matrix b = a * Complex(0.0, 2.0);
    EXPECT_EQ(b(0, 0), Complex(0.0, 2.0));
    Matrix c = Complex(2.0, 0.0) * a;
    EXPECT_EQ(c(1, 1), Complex(2.0, 0.0));
}

TEST(Matrix, MultiplicationAgainstKnown)
{
    Matrix x = {{0.0, 1.0}, {1.0, 0.0}};
    Matrix z = {{1.0, 0.0}, {0.0, -1.0}};
    Matrix xz = x * z;
    // X * Z = [[0, -1], [1, 0]]
    EXPECT_EQ(xz(0, 1), Complex(-1.0, 0.0));
    EXPECT_EQ(xz(1, 0), Complex(1.0, 0.0));
}

TEST(Matrix, MultiplicationAssociative)
{
    Rng rng(3);
    Matrix a = randomUnitary(2, rng);
    Matrix b = randomUnitary(2, rng);
    Matrix c = randomUnitary(2, rng);
    EXPECT_TRUE(((a * b) * c).approxEqual(a * (b * c), 1e-10));
}

TEST(Matrix, AdjointOfProduct)
{
    Rng rng(5);
    Matrix a = randomUnitary(2, rng);
    Matrix b = randomUnitary(2, rng);
    EXPECT_TRUE((a * b).adjoint().approxEqual(b.adjoint() * a.adjoint(),
                                              1e-10));
}

TEST(Matrix, UnitaryTimesAdjointIsIdentity)
{
    Rng rng(7);
    for (int n = 1; n <= 3; ++n) {
        Matrix u = randomUnitary(n, rng);
        EXPECT_TRUE(u.isUnitary(1e-9)) << "n=" << n;
        Matrix p = u * u.adjoint();
        EXPECT_TRUE(p.approxEqual(Matrix::identity(u.rows()), 1e-9));
    }
}

TEST(Matrix, TransposeConjugateCompose)
{
    Matrix m = {{Complex(1, 2), Complex(3, 4)},
                {Complex(5, 6), Complex(7, 8)}};
    EXPECT_TRUE(m.transpose().conjugate().approxEqual(m.adjoint()));
}

TEST(Matrix, FrobeniusNormOfIdentity)
{
    EXPECT_NEAR(Matrix::identity(4).frobeniusNorm(), 2.0, 1e-12);
}

TEST(Matrix, EqualUpToPhase)
{
    Rng rng(9);
    Matrix u = randomUnitary(2, rng);
    Matrix v = u * std::polar(1.0, 1.234);
    EXPECT_TRUE(v.equalUpToPhase(u, 1e-9));
    EXPECT_FALSE((v * Complex(2.0, 0.0)).equalUpToPhase(u, 1e-9));
}

TEST(Matrix, EqualUpToPhaseRejectsDifferent)
{
    Rng rng(11);
    Matrix u = randomUnitary(2, rng);
    Matrix v = randomUnitary(2, rng);
    EXPECT_FALSE(u.equalUpToPhase(v, 1e-6));
}

TEST(Matrix, ShapeMismatchPanics)
{
    Matrix a(2, 2), b(3, 3);
    EXPECT_DEATH(a + b, "mismatch");
    EXPECT_DEATH(a * b, "mismatch");
}

TEST(Kron, DimensionsMultiply)
{
    Matrix a(2, 2), b(4, 4);
    Matrix k = kron(a, b);
    EXPECT_EQ(k.rows(), 8u);
    EXPECT_EQ(k.cols(), 8u);
}

TEST(Kron, AgainstKnownValues)
{
    Matrix x = {{0.0, 1.0}, {1.0, 0.0}};
    Matrix i = Matrix::identity(2);
    Matrix k = kron(x, i);
    // X (x) I swaps the upper and lower halves.
    EXPECT_EQ(k(0, 2), Complex(1.0, 0.0));
    EXPECT_EQ(k(1, 3), Complex(1.0, 0.0));
    EXPECT_EQ(k(2, 0), Complex(1.0, 0.0));
    EXPECT_EQ(k(0, 0), Complex(0.0, 0.0));
}

TEST(Kron, PreservesUnitarity)
{
    Rng rng(13);
    Matrix u = randomUnitary(1, rng);
    Matrix v = randomUnitary(2, rng);
    EXPECT_TRUE(kron(u, v).isUnitary(1e-9));
}

TEST(Kron, MixedProductProperty)
{
    Rng rng(15);
    Matrix a = randomUnitary(1, rng), b = randomUnitary(1, rng);
    Matrix c = randomUnitary(1, rng), d = randomUnitary(1, rng);
    // (A (x) B)(C (x) D) = AC (x) BD
    EXPECT_TRUE((kron(a, b) * kron(c, d))
                    .approxEqual(kron(a * c, b * d), 1e-10));
}

TEST(MatVec, AgainstKnown)
{
    Matrix x = {{0.0, 1.0}, {1.0, 0.0}};
    std::vector<Complex> v = {Complex(1.0, 0.0), Complex(0.0, 0.0)};
    auto r = matVec(x, v);
    EXPECT_EQ(r[0], Complex(0.0, 0.0));
    EXPECT_EQ(r[1], Complex(1.0, 0.0));
}

TEST(HsDistance, ZeroForIdentical)
{
    Rng rng(17);
    Matrix u = randomUnitary(2, rng);
    EXPECT_NEAR(hsDistance(u, u), 0.0, 1e-7);
}

TEST(HsDistance, GlobalPhaseInvariant)
{
    Rng rng(19);
    Matrix u = randomUnitary(2, rng);
    Matrix v = u * std::polar(1.0, 0.77);
    EXPECT_NEAR(hsDistance(u, v), 0.0, 1e-7);
}

TEST(HsDistance, SymmetricAndBounded)
{
    Rng rng(21);
    for (int trial = 0; trial < 10; ++trial) {
        Matrix u = randomUnitary(2, rng);
        Matrix v = randomUnitary(2, rng);
        double duv = hsDistance(u, v);
        double dvu = hsDistance(v, u);
        EXPECT_NEAR(duv, dvu, 1e-12);
        EXPECT_GE(duv, 0.0);
        EXPECT_LE(duv, 1.0);
    }
}

TEST(HsDistance, MaximalForOrthogonalUnitaries)
{
    // Tr(Z^dagger X) = 0 -> distance 1.
    Matrix x = {{0.0, 1.0}, {1.0, 0.0}};
    Matrix z = {{1.0, 0.0}, {0.0, -1.0}};
    EXPECT_NEAR(hsDistance(x, z), 1.0, 1e-12);
}

TEST(HsDistance, FromTraceMatches)
{
    Rng rng(23);
    Matrix u = randomUnitary(2, rng);
    Matrix v = randomUnitary(2, rng);
    Complex tr = hsInnerProduct(u, v);
    EXPECT_NEAR(hsDistanceFromTrace(tr, u.rows()), hsDistance(u, v),
                1e-12);
}

TEST(HsInnerProduct, MatchesExplicitTrace)
{
    Rng rng(25);
    Matrix u = randomUnitary(2, rng);
    Matrix v = randomUnitary(2, rng);
    Complex direct = (u.adjoint() * v).trace();
    Complex fast = hsInnerProduct(u, v);
    EXPECT_NEAR(std::abs(direct - fast), 0.0, 1e-10);
}

TEST(Embed, IdentityOnAllWires)
{
    Matrix i2 = Matrix::identity(2);
    Matrix e = embedUnitary(i2, {1}, 3);
    EXPECT_TRUE(e.approxEqual(Matrix::identity(8)));
}

TEST(Embed, SingleQubitAgainstKron)
{
    Rng rng(27);
    Matrix u = randomUnitary(1, rng);
    Matrix i2 = Matrix::identity(2);
    // Wire 0 is the most significant qubit: U (x) I (x) I.
    EXPECT_TRUE(embedUnitary(u, {0}, 3)
                    .approxEqual(kron(u, Matrix::identity(4)), 1e-12));
    // Wire 2 is least significant: I (x) I (x) U.
    EXPECT_TRUE(embedUnitary(u, {2}, 3)
                    .approxEqual(kron(Matrix::identity(4), u), 1e-12));
    // Wire 1 in a 3-qubit space: I (x) U (x) I.
    EXPECT_TRUE(embedUnitary(u, {1}, 3)
                    .approxEqual(kron(kron(i2, u), i2), 1e-12));
}

TEST(Embed, TwoQubitAdjacentAgainstKron)
{
    Rng rng(29);
    Matrix u = randomUnitary(2, rng);
    EXPECT_TRUE(embedUnitary(u, {0, 1}, 3)
                    .approxEqual(kron(u, Matrix::identity(2)), 1e-12));
    EXPECT_TRUE(embedUnitary(u, {1, 2}, 3)
                    .approxEqual(kron(Matrix::identity(2), u), 1e-12));
}

TEST(Embed, PreservesUnitarity)
{
    Rng rng(31);
    Matrix u = randomUnitary(2, rng);
    EXPECT_TRUE(embedUnitary(u, {0, 2}, 4).isUnitary(1e-9));
    EXPECT_TRUE(embedUnitary(u, {3, 1}, 4).isUnitary(1e-9));
}

TEST(Embed, WireOrderMatters)
{
    Rng rng(33);
    Matrix u = randomUnitary(2, rng);
    Matrix a = embedUnitary(u, {0, 1}, 2);
    Matrix b = embedUnitary(u, {1, 0}, 2);
    // Swapping the wire list conjugates by SWAP; generally different.
    EXPECT_FALSE(a.approxEqual(b, 1e-6));
}

TEST(Embed, CompositionCommutesOnDisjointWires)
{
    Rng rng(35);
    Matrix u = randomUnitary(1, rng);
    Matrix v = randomUnitary(1, rng);
    Matrix uv = embedUnitary(u, {0}, 2) * embedUnitary(v, {1}, 2);
    Matrix vu = embedUnitary(v, {1}, 2) * embedUnitary(u, {0}, 2);
    EXPECT_TRUE(uv.approxEqual(vu, 1e-12));
    EXPECT_TRUE(uv.approxEqual(kron(u, v), 1e-12));
}

TEST(Zyz, RoundTripsRandomUnitaries)
{
    Rng rng(37);
    for (int trial = 0; trial < 50; ++trial) {
        Matrix u = randomUnitary(1, rng);
        ZyzAngles a = zyzDecompose(u);
        Matrix back = makeU3(a.theta, a.phi, a.lambda) *
                      std::polar(1.0, a.phase);
        EXPECT_TRUE(back.approxEqual(u, 1e-9)) << "trial " << trial;
    }
}

TEST(Zyz, HandlesDiagonal)
{
    Matrix z = {{1.0, 0.0}, {0.0, -1.0}};
    ZyzAngles a = zyzDecompose(z);
    Matrix back = makeU3(a.theta, a.phi, a.lambda) *
                  std::polar(1.0, a.phase);
    EXPECT_TRUE(back.approxEqual(z, 1e-10));
}

TEST(Zyz, HandlesAntiDiagonal)
{
    Matrix x = {{0.0, 1.0}, {1.0, 0.0}};
    ZyzAngles a = zyzDecompose(x);
    Matrix back = makeU3(a.theta, a.phi, a.lambda) *
                  std::polar(1.0, a.phase);
    EXPECT_TRUE(back.approxEqual(x, 1e-10));
}

TEST(Zyz, U3MatrixMatchesDefinition)
{
    Matrix m = makeU3(pi / 2, 0.0, pi);
    // This is the Hadamard.
    double s = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(m(0, 0) - Complex(s, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(m(0, 1) - Complex(s, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(m(1, 0) - Complex(s, 0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(m(1, 1) - Complex(-s, 0)), 0.0, 1e-12);
}

/** Property sweep: ZYZ round trip over a parameter grid. */
class ZyzGrid : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(ZyzGrid, RoundTrip)
{
    auto [theta, phi] = GetParam();
    Matrix u = makeU3(theta, phi, 0.3 * theta - phi);
    ZyzAngles a = zyzDecompose(u);
    Matrix back = makeU3(a.theta, a.phi, a.lambda) *
                  std::polar(1.0, a.phase);
    EXPECT_TRUE(back.approxEqual(u, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Angles, ZyzGrid,
    ::testing::Combine(::testing::Values(0.0, 0.3, pi / 2, pi - 1e-3, pi),
                       ::testing::Values(-pi, -1.0, 0.0, 0.5, pi)));

} // namespace
} // namespace quest
