/**
 * @file
 * Benchmark-generator tests: structural properties and functional
 * correctness (the adder adds, the QFT matches the DFT matrix, the
 * Trotter models match direct expansion on small instances).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "algos/algorithms.hh"
#include "ir/lower.hh"
#include "linalg/distance.hh"
#include "sim/simulator.hh"
#include "sim/unitary_builder.hh"

namespace quest {
namespace {

constexpr double pi = std::numbers::pi;

/** Value of wire q in a deterministic basis-state distribution. */
int
wireBit(const Distribution &d, int q)
{
    // Find the single outcome with probability ~1.
    size_t best = 0;
    for (size_t k = 1; k < d.size(); ++k)
        if (d[k] > d[best])
            best = k;
    return static_cast<int>((best >> (d.numQubits() - 1 - q)) & 1);
}

TEST(Adder, ComputesSumForDefaultInputs)
{
    for (int n : {4, 6, 8, 10}) {
        const int k = (n - 2) / 2;
        Circuit c = algos::adder(n);
        Distribution d = idealDistribution(c);

        // Reconstruct the inputs the generator loads.
        int a = 0, b = 0;
        for (int i = 0; i < k; ++i) {
            if (i % 2 == 0)
                a |= 1 << i;
            if (i % 3 != 2)
                b |= 1 << i;
        }
        const int sum = a + b;

        // b register (wires 1+k .. 2k, LSB first) holds sum mod 2^k;
        // the carry-out wire holds the top bit; a is restored.
        for (int i = 0; i < k; ++i) {
            EXPECT_EQ(wireBit(d, 1 + k + i), (sum >> i) & 1)
                << "n=" << n << " bit " << i;
            EXPECT_EQ(wireBit(d, 1 + i), (a >> i) & 1)
                << "n=" << n << " a-bit " << i;
        }
        EXPECT_EQ(wireBit(d, 2 * k + 1), (sum >> k) & 1) << "n=" << n;
        EXPECT_EQ(wireBit(d, 0), 0) << "n=" << n;  // cin restored
    }
}

TEST(Adder, RejectsBadWidths)
{
    EXPECT_DEATH(algos::adder(3), "even");
    EXPECT_DEATH(algos::adder(5), "even");
}

TEST(Multiplier, StructureAndDeterminism)
{
    Circuit c = algos::multiplier(8);
    EXPECT_EQ(c.numQubits(), 8);
    EXPECT_GT(c.cnotEquivalentCount(), 10u);
    // Output is a deterministic basis state (classical circuit).
    Distribution d = idealDistribution(c);
    double max = 0.0;
    for (size_t k = 0; k < d.size(); ++k)
        max = std::max(max, d[k]);
    EXPECT_NEAR(max, 1.0, 1e-9);
}

TEST(Multiplier, LowProductBitsCorrect)
{
    // k = 2: a = 3, b = 1 -> product = 3.
    Circuit c = algos::multiplier(8);
    Distribution d = idealDistribution(c);
    EXPECT_EQ(wireBit(d, 4), 1);  // p0
    EXPECT_EQ(wireBit(d, 5), 1);  // p1
}

TEST(Qft, MatchesDftMatrix)
{
    // The QFT circuit without input prep and without final swaps,
    // conjugated by the swaps, equals the DFT matrix
    // F[j][k] = w^(jk)/sqrt(N) with w = exp(2 pi i / N).
    const int n = 3;
    const size_t dim = 8;
    Circuit c(n);
    for (int i = 0; i < n; ++i) {
        c.append(Gate::h(i));
        for (int j = i + 1; j < n; ++j)
            c.append(Gate::cp(j, i, pi / (1 << (j - i))));
    }
    for (int i = 0; i < n / 2; ++i)
        c.append(Gate::swap(i, n - 1 - i));

    Matrix u = buildUnitary(c);
    Matrix dft(dim, dim);
    for (size_t r = 0; r < dim; ++r)
        for (size_t col = 0; col < dim; ++col)
            dft(r, col) = std::polar(1.0 / std::sqrt(8.0),
                                     2.0 * pi * r * col / 8.0);
    EXPECT_NEAR(hsDistance(u, dft), 0.0, 1e-7);
}

TEST(Qft, GeneratorIncludesPrep)
{
    Circuit c = algos::qft(4);
    EXPECT_EQ(c.numQubits(), 4);
    EXPECT_EQ(c[0].type, GateType::X);
}

TEST(Hlf, DeterministicPerSeed)
{
    Circuit a = algos::hlf(5, 3);
    Circuit b = algos::hlf(5, 3);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].type, b[i].type);
        EXPECT_EQ(a[i].qubits, b[i].qubits);
    }
    // A different seed draws a different adjacency matrix.
    Circuit c = algos::hlf(5, 4);
    bool different = a.size() != c.size();
    for (size_t i = 0; !different && i < a.size(); ++i)
        different = a[i].type != c[i].type || a[i].qubits != c[i].qubits;
    EXPECT_TRUE(different);
}

TEST(Hlf, SandwichedByHadamards)
{
    Circuit c = algos::hlf(4);
    EXPECT_EQ(c[0].type, GateType::H);
    EXPECT_EQ(c[c.size() - 1].type, GateType::H);
}

TEST(Qaoa, RoundStructure)
{
    Circuit one = algos::qaoa(5, 1);
    Circuit two = algos::qaoa(5, 2);
    EXPECT_GT(two.size(), one.size());
    // Starts with Hadamards on every wire.
    for (int q = 0; q < 5; ++q)
        EXPECT_EQ(one[q].type, GateType::H);
}

TEST(Qaoa, UsesRzzAndRx)
{
    Circuit c = algos::qaoa(4);
    size_t rzz = 0, rx = 0;
    for (const Gate &g : c) {
        rzz += g.type == GateType::RZZ;
        rx += g.type == GateType::RX;
    }
    EXPECT_GE(rzz, 4u);   // at least the ring edges
    EXPECT_EQ(rx, 4u);    // one mixer per wire per round
}

TEST(Vqe, ParameterizedAndDeterministic)
{
    Circuit a = algos::vqe(4, 2, 5);
    Circuit b = algos::vqe(4, 2, 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].type, b[i].type);
        for (size_t p = 0; p < a[i].params.size(); ++p)
            EXPECT_EQ(a[i].params[p], b[i].params[p]);
    }
    EXPECT_EQ(a.cnotCount(), 2u * 3u);  // layers * (n - 1)
}

TEST(Tfim, MatchesDirectTrotterStep)
{
    // One Trotter step on 2 spins: RZZ(2 J dt) then RX(2 h dt) each.
    double dt = 0.1, j = 1.0, h = 1.0;
    Circuit c = algos::tfim(2, 1, dt, j, h);
    Circuit direct(2);
    direct.append(Gate::rzz(0, 1, 2 * j * dt));
    direct.append(Gate::rx(0, 2 * h * dt));
    direct.append(Gate::rx(1, 2 * h * dt));
    EXPECT_NEAR(hsDistance(buildUnitary(c), buildUnitary(direct)), 0.0,
                1e-7);
}

TEST(Tfim, StepsCompose)
{
    Circuit two = algos::tfim(3, 2);
    Circuit one = algos::tfim(3, 1);
    Circuit composed(3);
    composed.appendCircuit(one);
    composed.appendCircuit(one);
    EXPECT_NEAR(hsDistance(buildUnitary(two), buildUnitary(composed)),
                0.0, 1e-7);
}

TEST(Heisenberg, HasAllThreeCouplings)
{
    Circuit c = algos::heisenberg(4, 1);
    bool has_xx = false, has_yy = false, has_zz = false;
    for (const Gate &g : c) {
        has_xx |= g.type == GateType::RXX;
        has_yy |= g.type == GateType::RYY;
        has_zz |= g.type == GateType::RZZ;
    }
    EXPECT_TRUE(has_xx && has_yy && has_zz);
}

TEST(Xy, HasOnlyXYCouplings)
{
    Circuit c = algos::xy(4, 1);
    for (const Gate &g : c)
        EXPECT_NE(g.type, GateType::RZZ);
}

TEST(Hamiltonians, ZeroFieldDropsRx)
{
    Circuit c = algos::tfim(3, 1, 0.1, 1.0, 0.0);
    for (const Gate &g : c)
        EXPECT_NE(g.type, GateType::RX);
}

TEST(Suite, StandardSuiteIsConsistent)
{
    auto suite = algos::standardSuite();
    EXPECT_GE(suite.size(), 10u);
    for (const auto &spec : suite) {
        Circuit c = spec.build();
        EXPECT_EQ(c.numQubits(), spec.nQubits) << spec.name;
        EXPECT_GT(c.size(), 0u) << spec.name;
        // Names carry the width suffix.
        EXPECT_NE(spec.name.find('_'), std::string::npos);
    }
}

TEST(Suite, ManilaSuiteFitsFiveQubits)
{
    for (const auto &spec : algos::manilaSuite())
        EXPECT_LE(spec.nQubits, 5) << spec.name;
}

TEST(Suite, FindSpecByName)
{
    auto suite = algos::standardSuite();
    EXPECT_EQ(algos::findSpec(suite, "qft_4").nQubits, 4);
    EXPECT_DEATH(algos::findSpec(suite, "nope_9"), "no benchmark");
}

TEST(Suite, EveryCircuitLowersToNative)
{
    for (const auto &spec : algos::standardSuite()) {
        Circuit lowered = lowerToNative(spec.build());
        EXPECT_TRUE(isNative(lowered)) << spec.name;
        EXPECT_GT(lowered.cnotCount(), 0u) << spec.name;
    }
}

TEST(Suite, LargeSuiteCoversScalingWidths)
{
    auto suite = algos::largeSuite();
    ASSERT_EQ(suite.size(), 9u);
    // tfim/qaoa/adder at each of 64/96/128 qubits, in width order.
    for (int w : {64, 96, 128}) {
        const std::string suffix = "_" + std::to_string(w);
        for (const char *family : {"tfim", "qaoa", "adder"}) {
            const auto &spec =
                algos::findSpec(suite, family + suffix);
            EXPECT_EQ(spec.nQubits, w) << spec.name;
        }
    }
    // Generators are deterministic and genuinely wide: building
    // twice yields gate-identical circuits spanning every wire.
    for (const auto &spec : suite) {
        Circuit a = spec.build();
        Circuit b = spec.build();
        EXPECT_EQ(a.numQubits(), spec.nQubits) << spec.name;
        ASSERT_EQ(a.size(), b.size()) << spec.name;
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_TRUE(a[i].type == b[i].type &&
                        a[i].qubits == b[i].qubits &&
                        a[i].params == b[i].params)
                << spec.name << " gate " << i;
        }
        EXPECT_GT(a.size(), 0u) << spec.name;
    }
}

} // namespace
} // namespace quest
