/**
 * @file
 * Ansatz, cost-function and gradient tests. The analytic gradient is
 * cross-checked against finite differences and the slow reference
 * implementation against the fast trace-reduction path.
 */

#include <gtest/gtest.h>

#include <numbers>

#include "linalg/decompose.hh"
#include "linalg/distance.hh"
#include "sim/unitary_builder.hh"
#include "synth/ansatz.hh"
#include "synth/hs_cost.hh"
#include "util/rng.hh"

namespace quest {
namespace {

constexpr double pi = std::numbers::pi;

std::vector<double>
randomParams(int count, Rng &rng)
{
    std::vector<double> x(count);
    for (double &v : x)
        v = rng.uniform(-pi, pi);
    return x;
}

Ansatz
testAnsatz(int n, int layers, Rng &rng)
{
    Ansatz a = Ansatz::initialLayer(n);
    for (int l = 0; l < layers; ++l) {
        int p = static_cast<int>(rng.uniformInt(n));
        int q = (p + 1 + static_cast<int>(rng.uniformInt(n - 1))) % n;
        a.addLayer(p, q);
    }
    return a;
}

TEST(Ansatz, InitialLayerCounts)
{
    Ansatz a = Ansatz::initialLayer(3);
    EXPECT_EQ(a.paramCount(), 9);
    EXPECT_EQ(a.cnotCount(), 0);
}

TEST(Ansatz, AddLayerCounts)
{
    Ansatz a = Ansatz::initialLayer(2);
    a.addLayer(0, 1);
    EXPECT_EQ(a.paramCount(), 12);  // 2 + 2 U3s
    EXPECT_EQ(a.cnotCount(), 1);
}

TEST(Ansatz, InstantiateMatchesUnitary)
{
    Rng rng(3);
    Ansatz a = testAnsatz(3, 4, rng);
    auto params = randomParams(a.paramCount(), rng);
    Matrix direct = a.unitary(params);
    Matrix via_circuit = circuitUnitary(a.instantiate(params));
    EXPECT_TRUE(direct.approxEqual(via_circuit, 1e-10));
}

TEST(Ansatz, UnitaryIsUnitary)
{
    Rng rng(5);
    Ansatz a = testAnsatz(4, 5, rng);
    auto params = randomParams(a.paramCount(), rng);
    EXPECT_TRUE(a.unitary(params).isUnitary(1e-9));
}

TEST(Ansatz, GradientMatchesFiniteDifference)
{
    Rng rng(7);
    Ansatz a = testAnsatz(3, 3, rng);
    auto params = randomParams(a.paramCount(), rng);

    Matrix u;
    std::vector<Matrix> grads;
    a.unitaryAndGradient(params, u, grads);
    EXPECT_TRUE(u.approxEqual(a.unitary(params), 1e-12));

    const double h = 1e-6;
    for (int p = 0; p < a.paramCount(); ++p) {
        auto plus = params, minus = params;
        plus[p] += h;
        minus[p] -= h;
        Matrix fd = (a.unitary(plus) - a.unitary(minus)) *
                    Complex(1.0 / (2.0 * h), 0.0);
        EXPECT_LT(fd.maxAbsDiff(grads[p]), 1e-7) << "param " << p;
    }
}

TEST(U3Derivative, MatchesFiniteDifference)
{
    const double t = 0.7, p = -0.4, l = 1.2, h = 1e-7;
    for (int which = 0; which < 3; ++which) {
        double dt = which == 0 ? h : 0.0;
        double dp = which == 1 ? h : 0.0;
        double dl = which == 2 ? h : 0.0;
        Matrix fd = (makeU3(t + dt, p + dp, l + dl) -
                     makeU3(t - dt, p - dp, l - dl)) *
                    Complex(1.0 / (2.0 * h), 0.0);
        EXPECT_LT(fd.maxAbsDiff(u3Derivative(t, p, l, which)), 1e-6);
    }
}

TEST(HsCost, ZeroAtExactTarget)
{
    Rng rng(9);
    Ansatz a = testAnsatz(2, 2, rng);
    auto params = randomParams(a.paramCount(), rng);
    Matrix target = a.unitary(params);
    HsCost cost(target, a);
    EXPECT_NEAR(cost.evaluate(params, nullptr), 0.0, 1e-10);
    EXPECT_NEAR(cost.distance(params), 0.0, 1e-5);
}

TEST(HsCost, GlobalPhaseInvariant)
{
    Rng rng(11);
    Ansatz a = testAnsatz(2, 2, rng);
    auto params = randomParams(a.paramCount(), rng);
    Matrix target = a.unitary(params) * std::polar(1.0, 0.9);
    HsCost cost(target, a);
    EXPECT_NEAR(cost.evaluate(params, nullptr), 0.0, 1e-10);
}

TEST(HsCost, GradientMatchesFiniteDifference)
{
    Rng rng(13);
    for (int n = 2; n <= 4; ++n) {
        Ansatz a = testAnsatz(n, 3, rng);
        auto params = randomParams(a.paramCount(), rng);
        Matrix target = a.unitary(randomParams(a.paramCount(), rng));
        HsCost cost(target, a);

        std::vector<double> grad;
        double f = cost.evaluate(params, &grad);
        EXPECT_GE(f, -1e-12);
        EXPECT_LE(f, 1.0 + 1e-12);

        const double h = 1e-6;
        for (int p = 0; p < a.paramCount(); ++p) {
            auto plus = params, minus = params;
            plus[p] += h;
            minus[p] -= h;
            double fd = (cost.evaluate(plus, nullptr) -
                         cost.evaluate(minus, nullptr)) /
                        (2.0 * h);
            EXPECT_NEAR(grad[p], fd, 1e-6)
                << "n=" << n << " param " << p;
        }
    }
}

TEST(HsCost, FastPathMatchesReferenceGradient)
{
    // The fast trace-reduction gradient must equal the slow
    // full-matrix reference: grad_p = -2 Re(conj(T) Tr(U+ dA/dp))/N^2.
    Rng rng(15);
    Ansatz a = testAnsatz(3, 4, rng);
    auto params = randomParams(a.paramCount(), rng);
    Matrix target = a.unitary(randomParams(a.paramCount(), rng));
    HsCost cost(target, a);

    std::vector<double> fast;
    cost.evaluate(params, &fast);

    Matrix u;
    std::vector<Matrix> grads;
    a.unitaryAndGradient(params, u, grads);
    Complex tr = hsInnerProduct(target, u);
    const double n2 = static_cast<double>(target.rows()) *
                      static_cast<double>(target.rows());
    for (int p = 0; p < a.paramCount(); ++p) {
        Complex dtr = hsInnerProduct(target, grads[p]);
        double reference = -2.0 * (std::conj(tr) * dtr).real() / n2;
        EXPECT_NEAR(fast[p], reference, 1e-10) << "param " << p;
    }
}

TEST(HsCost, DistanceMatchesHsDistance)
{
    Rng rng(17);
    Ansatz a = testAnsatz(2, 2, rng);
    auto params = randomParams(a.paramCount(), rng);
    Matrix target = a.unitary(randomParams(a.paramCount(), rng));
    HsCost cost(target, a);
    EXPECT_NEAR(cost.distance(params),
                hsDistance(target, a.unitary(params)), 1e-10);
}

TEST(Ansatz, RejectsBadWires)
{
    Ansatz a(2);
    EXPECT_DEATH(a.addU3(2), "range");
    EXPECT_DEATH(a.addCx(0, 0), "wires");
}

TEST(Ansatz, ParamCountMismatchPanics)
{
    Ansatz a = Ansatz::initialLayer(2);
    EXPECT_DEATH(a.unitary({0.0}), "mismatch");
}

} // namespace
} // namespace quest
