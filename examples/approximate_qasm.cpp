/**
 * @file
 * QASM-in, QASM-out workflow: read an OpenQASM 2.0 circuit (like the
 * paper artifact's input_qasm_files), run the QUEST pipeline, and
 * print every selected approximation back as OpenQASM alongside its
 * CNOT count and distance bound — the "compiler tool" usage of the
 * library.
 *
 * Usage: approximate_qasm [file.qasm]  (falls back to a built-in
 * 4-qubit QFT program when no file is given).
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "ir/qasm.hh"
#include "quest/ensemble.hh"
#include "quest/pipeline.hh"

namespace {

const char *kDefaultProgram = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
x q[0];
x q[2];
h q[0];
cu1(pi/2) q[1],q[0];
cu1(pi/4) q[2],q[0];
cu1(pi/8) q[3],q[0];
h q[1];
cu1(pi/2) q[2],q[1];
cu1(pi/4) q[3],q[1];
h q[2];
cu1(pi/2) q[3],q[2];
h q[3];
swap q[0],q[3];
swap q[1],q[2];
)";

} // namespace

int
main(int argc, char **argv)
{
    using namespace quest;

    std::string text = kDefaultProgram;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    }

    Circuit circuit;
    try {
        circuit = parseQasm(text);
    } catch (const QasmError &e) {
        std::cerr << "QASM parse error: " << e.what() << "\n";
        return 1;
    }

    QuestConfig config;
    config.synth.beamWidth = 1;
    config.synth.inst.multistarts = 2;
    config.synth.inst.lbfgs.maxIterations = 300;
    config.synth.maxLayers = 14;
    QuestPipeline pipeline(config);
    QuestResult result = pipeline.run(circuit);

    std::cout << "original: " << result.originalCnots << " CNOTs, "
              << result.blocks.size() << " blocks, threshold "
              << result.threshold << "\n\n";

    for (size_t i = 0; i < result.samples.size(); ++i) {
        const ApproxSample &s = result.samples[i];
        std::cout << "// approximation " << i + 1 << ": "
                  << s.cnotCount << " CNOTs, distance bound "
                  << s.distanceBound << "\n"
                  << toQasm(s.circuit) << "\n";
    }
    return 0;
}
