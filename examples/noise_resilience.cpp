/**
 * @file
 * Noise-resilience study: how the benefit of QUEST's approximation
 * ensemble changes with hardware quality. Runs a 4-qubit QAOA MaxCut
 * circuit at several Pauli noise levels and reports the TVD of the
 * Baseline, Qiskit, and QUEST + Qiskit configurations — the
 * projection experiment of Fig. 11 as a library-user program.
 */

#include <iomanip>
#include <iostream>

#include "algos/algorithms.hh"
#include "baseline/pass_manager.hh"
#include "ir/lower.hh"
#include "metrics/output_distance.hh"
#include "quest/ensemble.hh"
#include "quest/pipeline.hh"
#include "sim/simulator.hh"

int
main()
{
    using namespace quest;

    Circuit circuit = algos::qaoa(4, 2);  // two QAOA rounds
    Circuit baseline = lowerToNative(circuit);
    Circuit qiskit = qiskitLikeOptimize(circuit);
    Distribution truth = idealDistribution(baseline);

    QuestConfig config;
    config.synth.beamWidth = 1;
    config.synth.inst.multistarts = 2;
    config.synth.inst.lbfgs.maxIterations = 250;
    config.synth.maxLayers = 12;
    QuestResult result = QuestPipeline(config).run(circuit);

    std::cout << "QAOA-4 (2 rounds): baseline " << baseline.cnotCount()
              << " CNOTs, qiskit " << qiskit.cnotCount()
              << ", quest min " << result.minSampleCnots() << " over "
              << result.samples.size() << " samples\n\n";

    std::cout << std::setw(8) << "noise" << std::setw(14)
              << "baseline_tvd" << std::setw(12) << "qiskit_tvd"
              << std::setw(18) << "quest+qiskit_tvd\n";

    for (double level : {0.02, 0.01, 0.005, 0.001}) {
        NoiseModel noise = NoiseModel::pauli(level);
        NoisySimulator sim_base(noise, 11);
        NoisySimulator sim_qiskit(noise, 13);

        EnsembleOptions opts;
        opts.noise = noise;
        opts.applyQiskit = true;
        opts.seed = 17;

        std::cout << std::fixed << std::setprecision(4) << std::setw(8)
                  << level << std::setw(14)
                  << tvd(truth, sim_base.run(baseline, 8192))
                  << std::setw(12)
                  << tvd(truth, sim_qiskit.run(qiskit, 8192))
                  << std::setw(18)
                  << tvd(truth, ensembleDistribution(result, opts))
                  << "\n";
    }

    std::cout << "\nThe QUEST column should sit below the others at "
                 "every noise level, with the gap persisting as "
                 "hardware improves.\n";
    return 0;
}
