/**
 * @file
 * Materials-simulation case study (the paper's Sec. 4.3 workload):
 * track the magnetization of a 4-spin Heisenberg chain over its time
 * evolution on a noisy device, comparing three compilation paths:
 * the lowered Baseline, Qiskit-like passes, and QUEST + Qiskit.
 *
 * This is the "science goal" example: a domain scientist cares that
 * the magnetization curve matches the ground truth, not about TVD.
 */

#include <iomanip>
#include <iostream>

#include "algos/algorithms.hh"
#include "baseline/pass_manager.hh"
#include "ir/lower.hh"
#include "metrics/magnetization.hh"
#include "quest/ensemble.hh"
#include "quest/pipeline.hh"
#include "sim/simulator.hh"

int
main()
{
    using namespace quest;

    QuestConfig config;
    config.synth.beamWidth = 1;
    config.synth.inst.multistarts = 2;
    config.synth.inst.lbfgs.maxIterations = 250;
    config.synth.maxLayers = 16;
    config.synth.stallLevels = 8;
    QuestPipeline pipeline(config);
    const NoiseModel device = NoiseModel::ibmqManila();

    std::cout << "Heisenberg chain, 4 spins, Manila-like device\n";
    std::cout << std::setw(6) << "step" << std::setw(12) << "truth"
              << std::setw(12) << "qiskit" << std::setw(14)
              << "quest+qiskit" << std::setw(10) << "cnots\n";

    for (int step = 1; step <= 5; ++step) {
        Circuit circuit = algos::heisenberg(4, step);
        Distribution truth =
            idealDistribution(lowerToNative(circuit));

        NoisySimulator sim(device, 300 + step);
        Distribution qiskit_out =
            sim.run(qiskitLikeOptimize(circuit), 8192);

        QuestResult result = pipeline.run(circuit);
        EnsembleOptions opts;
        opts.noise = device;
        opts.applyQiskit = true;
        opts.seed = 500 + step;
        Distribution quest_out = ensembleDistribution(result, opts);

        std::cout << std::setw(6) << step << std::fixed
                  << std::setprecision(4) << std::setw(12)
                  << averageMagnetization(truth) << std::setw(12)
                  << averageMagnetization(qiskit_out) << std::setw(14)
                  << averageMagnetization(quest_out) << std::setw(9)
                  << result.minSampleCnots() << "\n";
    }

    std::cout << "\nQUEST + Qiskit should track the truth column far "
                 "more closely than Qiskit alone.\n";
    return 0;
}
