/**
 * @file
 * Device-mapping workflow: take a 4-spin XY-model evolution, route it
 * onto a line-topology device (like IBMQ Manila), and show how the
 * routing SWAP overhead amplifies noise — and how much of it QUEST's
 * approximations claw back.
 */

#include <iostream>

#include "algos/algorithms.hh"
#include "baseline/pass_manager.hh"
#include "ir/lower.hh"
#include "metrics/output_distance.hh"
#include "quest/pipeline.hh"
#include "route/router.hh"
#include "sim/simulator.hh"

namespace {

using namespace quest;

/** Route, lower, execute noisily, and undo the layout permutation. */
double
runOnDevice(const Circuit &logical, const Distribution &truth,
            uint64_t seed, size_t *routed_cx = nullptr)
{
    CouplingMap device = CouplingMap::line(logical.numQubits());
    RoutingResult routed = routeCircuit(
        lowerToNative(logical).withoutPseudoOps(), device);
    Circuit physical = lowerToNative(routed.circuit);
    if (routed_cx)
        *routed_cx = physical.cnotCount();

    NoisySimulator sim(NoiseModel::ibmqManila(), seed);
    Distribution out = sim.run(physical, 8192);
    return tvd(truth, unpermuteDistribution(out, routed.finalLayout));
}

} // namespace

int
main()
{
    using namespace quest;

    Circuit circuit = algos::xy(4, 4);
    Circuit baseline = lowerToNative(circuit);
    Distribution truth = idealDistribution(baseline);

    std::cout << "XY-4 (4 Trotter steps) on a line-topology device\n";
    std::cout << "logical baseline: " << baseline.cnotCount()
              << " CNOTs\n";

    size_t routed_cx = 0;
    double qiskit_tvd =
        runOnDevice(qiskitLikeOptimize(circuit), truth, 3, &routed_cx);
    std::cout << "qiskit, routed: " << routed_cx << " CNOTs, TVD "
              << qiskit_tvd << "\n";

    QuestConfig config;
    config.synth.beamWidth = 1;
    config.synth.inst.multistarts = 2;
    config.synth.inst.lbfgs.maxIterations = 300;
    config.synth.maxLayers = 16;
    config.synth.stallLevels = 8;
    QuestResult result = QuestPipeline(config).run(circuit);

    // Average the routed noisy outputs of every selected sample.
    std::vector<Distribution> outputs;
    size_t min_cx = static_cast<size_t>(-1);
    for (size_t i = 0; i < result.samples.size(); ++i) {
        Circuit sample =
            qiskitLikeOptimize(result.samples[i].circuit);
        CouplingMap device = CouplingMap::line(sample.numQubits());
        RoutingResult routed =
            routeCircuit(sample.withoutPseudoOps(), device);
        Circuit physical = lowerToNative(routed.circuit);
        min_cx = std::min(min_cx, physical.cnotCount());

        NoisySimulator sim(NoiseModel::ibmqManila(), 11 + i);
        outputs.push_back(unpermuteDistribution(
            sim.run(physical, 8192), routed.finalLayout));
    }
    double quest_tvd = tvd(truth, Distribution::average(outputs));
    std::cout << "quest+qiskit, routed: min " << min_cx
              << " CNOTs over " << result.samples.size()
              << " samples, TVD " << quest_tvd << "\n";

    std::cout << "\nRouting inflates CNOT counts on sparse devices, "
                 "which makes QUEST's reduction matter even more.\n";
    return 0;
}
