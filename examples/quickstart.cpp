/**
 * @file
 * Quickstart: run QUEST on a 4-spin TFIM circuit and compare CNOT
 * counts and output fidelity against the original circuit and the
 * Qiskit-like baseline optimizer.
 */

#include <iostream>

#include "algos/algorithms.hh"
#include "baseline/pass_manager.hh"
#include "ir/lower.hh"
#include "metrics/output_distance.hh"
#include "quest/ensemble.hh"
#include "quest/pipeline.hh"
#include "sim/simulator.hh"

int
main()
{
    using namespace quest;

    // A 4-spin transverse-field Ising model evolved for five Trotter
    // steps — one of the paper's flagship case-study workloads.
    Circuit circuit = algos::tfim(4, 5);
    Circuit baseline = lowerToNative(circuit);
    std::cout << "Baseline circuit: " << baseline.numQubits()
              << " qubits, " << baseline.gateCount() << " gates, "
              << baseline.cnotCount() << " CNOTs\n";

    // The Qiskit-like optimizer alone.
    Circuit qiskit = qiskitLikeOptimize(circuit);
    std::cout << "Qiskit-like passes: " << qiskit.cnotCount()
              << " CNOTs\n";

    // The QUEST pipeline: partition, approximate synthesis, dual
    // annealing selection of dissimilar low-CNOT approximations.
    QuestPipeline pipeline;
    QuestResult result = pipeline.run(circuit);

    std::cout << "QUEST: " << result.blocks.size() << " blocks, "
              << result.samples.size() << " selected samples\n";
    std::cout << "QUEST min sample CNOTs: " << result.minSampleCnots()
              << " (bound threshold " << result.threshold << ")\n";
    for (const ApproxSample &s : result.samples) {
        std::cout << "  sample: " << s.cnotCount
                  << " CNOTs, distance bound " << s.distanceBound
                  << "\n";
    }

    // Ideal-output check: the averaged ensemble should match the
    // ground-truth distribution closely.
    Distribution truth = idealDistribution(baseline);
    Distribution ensemble = ensembleDistribution(result);
    std::cout << "Ensemble vs ground truth: TVD = "
              << tvd(truth, ensemble) << ", JSD = "
              << jsd(truth, ensemble) << "\n";

    std::cout << "Stage seconds: partition=" << result.partitionSeconds
              << " synthesis=" << result.synthesisSeconds
              << " annealing=" << result.annealSeconds << "\n";
    return 0;
}
