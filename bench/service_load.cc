/**
 * @file
 * Service-level load harness: drives one in-process QuestServer with
 * T concurrent client threads — a cold wave against an empty
 * synthesis cache, then a warm wave on a *restarted* daemon sharing
 * the same cache directory — and reports jobs/sec, p50/p99 job
 * latency and the cross-job cache hit rate per wave.
 *
 * The warm wave is the cross-job dedup demonstration: every block a
 * warm job needs was synthesized by some other tenant's cold job, so
 * the wave must finish with zero new synthesis-cache misses ("synth
 * cache misses: 0" below) and substantially higher throughput. A
 * third, overload wave floods a small queue with 2x its capacity
 * from two noisy tenants while a well-behaved tenant keeps
 * submitting: tenant quotas must shed the flood (nonzero
 * `service.tenants.shed`) and weighted round-robin must keep the
 * polite tenant's p99 bounded. The harness exits non-zero when any
 * property fails, and CI re-checks them from the archived
 * BENCH_service.json rows (the metrics snapshot in the JSON carries
 * the shed counters).
 */

#include "bench_common.hh"

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "ir/qasm.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "util/names.hh"

namespace {

using namespace quest;
using namespace quest::bench;

namespace fs = std::filesystem;

fs::path
makeTempDir()
{
    std::string tmpl =
        (fs::temp_directory_path() / "quest-service-load-XXXXXX")
            .string();
    char *dir = mkdtemp(tmpl.data());
    if (!dir)
        fatal("mkdtemp failed for ", tmpl);
    return fs::path(dir);
}

/** A tiny single-block tenant circuit parameterized by @p angle. */
std::string
tenantQasm(double angle)
{
    Circuit c(3);
    c.append(Gate::cx(0, 1));
    c.append(Gate::u3(1, angle, 0.2, 0.1));
    c.append(Gate::cx(1, 2));
    c.append(Gate::u3(0, 0.5, angle, 0.3));
    c.append(Gate::cx(0, 2));
    return toQasm(c);
}

uint64_t
counterValue(const char *name)
{
    return obs::MetricsRegistry::global().counter(name).value();
}

double
percentileMs(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(p * static_cast<double>(sorted.size())));
    return sorted[idx];
}

struct WaveStats
{
    size_t jobs = 0;
    double seconds = 0;
    double p50Ms = 0;
    double p99Ms = 0;
    uint64_t hits = 0;   //!< synth cache hits this wave
    uint64_t misses = 0; //!< synth cache misses this wave

    double jobsPerSec() const
    {
        return seconds > 0 ? static_cast<double>(jobs) / seconds : 0;
    }
    double hitRate() const
    {
        const uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * One load wave: @p threads client threads, each submitting
 * @p jobsPerThread jobs cycling through @p circuits, every job's
 * latency measured submit→result from the client side.
 */
WaveStats
runWave(service::QuestServer &server,
        const std::vector<std::string> &circuits,
        const service::CompileOptions &options, int threads,
        int jobsPerThread, const std::string &tenant = "")
{
    using Clock = std::chrono::steady_clock;

    const uint64_t hits0 = counterValue(names::kMetricSynthCacheHits);
    const uint64_t misses0 =
        counterValue(names::kMetricSynthCacheMisses);

    std::mutex mu;
    std::vector<double> latenciesMs;
    std::atomic<bool> ok{true};
    const auto start = Clock::now();

    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        clients.emplace_back([&, t] {
            int sv[2] = {-1, -1};
            if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
                ok = false;
                return;
            }
            server.attach(sv[0]);
            service::QuestClient client =
                service::QuestClient::fromFd(sv[1]);
            std::vector<double> mine;
            mine.reserve(static_cast<size_t>(jobsPerThread));
            for (int j = 0; j < jobsPerThread; ++j) {
                service::SubmitRequest request;
                request.options = options;
                request.deadlineSeconds = smokeJobDeadlineSeconds();
                request.tenant = tenant;
                request.qasm = circuits[(static_cast<size_t>(t) + j) %
                                        circuits.size()];
                const auto t0 = Clock::now();
                const service::SubmitReply submitted =
                    client.submit(request);
                if (!submitted.accepted) {
                    ok = false;
                    return;
                }
                const service::ResultReply result =
                    client.result(submitted.jobId);
                if (result.status.state != service::JobState::Done) {
                    warn("job ", submitted.jobId, " ended ",
                         service::jobStateName(result.status.state),
                         ": ", result.status.detail);
                    ok = false;
                    return;
                }
                mine.push_back(
                    std::chrono::duration<double, std::milli>(
                        Clock::now() - t0)
                        .count());
            }
            std::lock_guard<std::mutex> lock(mu);
            latenciesMs.insert(latenciesMs.end(), mine.begin(),
                               mine.end());
        });
    }
    for (std::thread &t : clients)
        t.join();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (!ok.load())
        fatal("a load-wave job failed; see warnings above");

    std::sort(latenciesMs.begin(), latenciesMs.end());
    WaveStats stats;
    stats.jobs = latenciesMs.size();
    stats.seconds = seconds;
    stats.p50Ms = percentileMs(latenciesMs, 0.50);
    stats.p99Ms = percentileMs(latenciesMs, 0.99);
    stats.hits = counterValue(names::kMetricSynthCacheHits) - hits0;
    stats.misses =
        counterValue(names::kMetricSynthCacheMisses) - misses0;
    return stats;
}

void
addWaveRow(Table &table, const std::string &wave,
           const WaveStats &stats)
{
    table.addRow({wave, std::to_string(stats.jobs),
                  Table::num(stats.jobsPerSec(), 2),
                  Table::num(stats.p50Ms, 1),
                  Table::num(stats.p99Ms, 1),
                  std::to_string(stats.hits),
                  std::to_string(stats.misses),
                  Table::pct(stats.hitRate())});
}

} // namespace

int
main()
{
    banner("Service load: multi-tenant throughput & cross-job dedup");

    const fs::path tmp = makeTempDir();
    const int threads = smokeMode() ? 4 : 8;
    const int jobsPerThread = smokeMode() ? 2 : 4;

    std::vector<std::string> circuits = {
        tenantQasm(0.3), tenantQasm(0.9), tenantQasm(1.7),
        tenantQasm(2.4)};
    if (smokeMode())
        circuits.resize(2);

    service::CompileOptions options;
    options.maxLayers = smokeMode() ? 4 : 6;
    options.maxSamples = 4;

    service::ServerConfig config;
    config.cacheDir = (tmp / "cache").string();
    config.executors = smokeMode() ? 2 : 4;
    config.queueCapacity =
        static_cast<size_t>(threads) * jobsPerThread;
    // Bench synthesis budgets (smoke-aware), per-job knobs on top —
    // same knob path a real tenant's SubmitRequest takes.
    config.base = benchConfig();

    std::cout << threads << " client threads x " << jobsPerThread
              << " jobs over " << circuits.size()
              << " distinct circuits, " << config.executors
              << " executors\n\n";

    // Cold wave: empty cache, every distinct block is a real search.
    WaveStats cold;
    {
        service::QuestServer server(config);
        cold = runWave(server, circuits, options, threads,
                       jobsPerThread);
        server.stop();
    }

    // Warm wave: a *restarted* daemon sharing the cache directory.
    // Cross-job dedup means zero new misses — nothing synthesizes.
    WaveStats warm;
    {
        service::QuestServer server(config);
        warm = runWave(server, circuits, options, threads,
                       jobsPerThread);
        server.stop();
    }

    // Overload wave: two noisy tenants flood a deliberately small
    // queue with 2x its capacity in fire-and-forget submits while a
    // well-behaved tenant keeps running submit→result jobs. Tenant
    // quotas shed the flood (counted in `service.tenants.shed`) and
    // weighted round-robin keeps the polite tenant's p99 bounded —
    // the polite row below is measured *during* the flood.
    WaveStats polite;
    uint64_t sheds = 0;
    uint64_t noisyAccepted = 0;
    uint64_t noisyShed = 0;
    {
        service::ServerConfig overload = config;
        overload.queueCapacity = 8;
        overload.tenantMaxQueued = 3;
        overload.tenantWeights["polite"] = 2;
        const uint64_t sheds0 =
            counterValue(names::kMetricServiceTenantSheds);
        service::QuestServer server(overload);

        std::atomic<uint64_t> accepted{0};
        std::atomic<uint64_t> rejected{0};
        std::atomic<bool> noisyOk{true};
        std::vector<std::thread> noisy;
        for (int n = 0; n < 2; ++n) {
            noisy.emplace_back([&, n] {
                int sv[2] = {-1, -1};
                if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
                    noisyOk = false;
                    return;
                }
                server.attach(sv[0]);
                service::QuestClient client =
                    service::QuestClient::fromFd(sv[1]);
                for (size_t j = 0; j < 2 * overload.queueCapacity;
                     ++j) {
                    service::SubmitRequest request;
                    request.options = options;
                    request.deadlineSeconds =
                        smokeJobDeadlineSeconds();
                    request.tenant = n ? "noisy-b" : "noisy-a";
                    request.qasm = circuits[j % circuits.size()];
                    if (client.submit(request).accepted)
                        ++accepted;
                    else
                        ++rejected;
                }
            });
        }
        polite = runWave(server, circuits, options, /*threads=*/1,
                         /*jobsPerThread=*/smokeMode() ? 3 : 6,
                         "polite");
        for (std::thread &t : noisy)
            t.join();
        if (!noisyOk.load())
            fatal("a noisy-tenant client failed to connect");
        server.stop(); // drains the accepted noisy backlog
        sheds = counterValue(names::kMetricServiceTenantSheds) -
                sheds0;
        noisyAccepted = accepted.load();
        noisyShed = rejected.load();
    }

    Table table({"wave", "jobs", "jobs_per_sec", "p50_ms", "p99_ms",
                 "cache_hits", "cache_misses", "hit_rate"});
    addWaveRow(table, "cold", cold);
    addWaveRow(table, "warm", warm);
    addWaveRow(table, "overload_polite", polite);
    finishBench("service", table);

    std::cout << "\nwarm synth cache misses: " << warm.misses << "\n";
    std::cout << "warm/cold speedup: "
              << Table::num(warm.jobsPerSec() /
                                std::max(cold.jobsPerSec(), 1e-9),
                            2)
              << "x\n";

    std::error_code ec;
    fs::remove_all(tmp, ec);

    if (warm.misses != 0) {
        warn("cross-job dedup failed: warm wave synthesized ",
             warm.misses, " blocks");
        return 1;
    }
    if (warm.jobsPerSec() < 2.0 * cold.jobsPerSec()) {
        warn("warm wave is not 2x faster than cold (",
             Table::num(warm.jobsPerSec(), 2), " vs ",
             Table::num(cold.jobsPerSec(), 2), " jobs/sec)");
        return 1;
    }
    std::cout << "\noverload: noisy tenants accepted " << noisyAccepted
              << ", shed " << noisyShed << " (tenant-quota sheds: "
              << sheds << "); polite p99 "
              << Table::num(polite.p99Ms, 1) << " ms\n";
    if (sheds == 0) {
        warn("overload wave shed nothing: the tenant quota never "
             "engaged");
        return 1;
    }
    if (polite.p99Ms > 60000.0) {
        warn("polite tenant p99 unbounded under overload (",
             Table::num(polite.p99Ms, 1), " ms)");
        return 1;
    }
    std::cout << "\nExpected shape (paper, Sec. 6): QUEST's one-time "
                 "synthesis cost amortizes across tenants — repeated "
                 "or overlapping circuits compile from the shared "
                 "cache at interactive latency.\n";
    return 0;
}
