/**
 * @file
 * Fig. 13: TFIM and Heisenberg case study — time evolution of the
 * average magnetization on the Manila-like device: ground truth vs
 * Qiskit vs QUEST + Qiskit. Each timestep is a separate circuit run
 * through the full QUEST pipeline.
 */

#include "bench_common.hh"

namespace {

using namespace quest;
using namespace quest::bench;

void
runModel(const std::string &name,
         const std::function<Circuit(int)> &build, int max_steps)
{
    Table table({"timestep", "truth_mag", "qiskit_mag",
                 "quest+qiskit_mag", "quest_min_cx", "baseline_cx"});
    QuestPipeline pipeline(benchConfig());
    const NoiseModel manila = NoiseModel::ibmqManila();

    for (int step = 1; step <= max_steps; ++step) {
        Circuit circuit = build(step);
        Circuit baseline = lowerToNative(circuit);
        Distribution truth = idealDistribution(baseline);

        NoisySimulator sim(manila, 40 + step);
        Distribution qiskit_out =
            sim.run(qiskitLikeOptimize(circuit), kShots);

        QuestResult result = pipeline.run(circuit);
        EnsembleOptions opts;
        opts.noise = manila;
        opts.applyQiskit = true;
        opts.seed = 80 + step;
        Distribution quest_out = ensembleDistribution(result, opts);

        table.addRow({std::to_string(step),
                      Table::num(averageMagnetization(truth), 3),
                      Table::num(averageMagnetization(qiskit_out), 3),
                      Table::num(averageMagnetization(quest_out), 3),
                      std::to_string(result.minSampleCnots()),
                      std::to_string(baseline.cnotCount())});
    }
    std::cout << "\n-- " << name << " (4 spins, Manila noise) --\n";
    finishBench("fig13_" + name, table);
}

} // namespace

int
main()
{
    banner("Figure 13: magnetization time evolution on Manila");
    runModel("TFIM", [](int s) { return algos::tfim(4, s); }, 8);
    runModel("Heisenberg",
             [](int s) { return algos::heisenberg(4, s); }, 6);
    std::cout << "\nExpected shape (paper): the QUEST + Qiskit series "
                 "tracks the ground-truth magnetization much more "
                 "closely than Qiskit alone, which drifts badly at "
                 "later timesteps.\n";
    return 0;
}
