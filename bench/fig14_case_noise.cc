/**
 * @file
 * Fig. 14: the TFIM/Heisenberg case study under decreasing Pauli
 * noise (1%, 0.5%, 0.1%): TVD of Qiskit vs QUEST + Qiskit from the
 * ground truth, at a representative timestep.
 */

#include "bench_common.hh"

int
main()
{
    using namespace quest;
    using namespace quest::bench;

    banner("Figure 14: case study vs hardware noise level");

    struct Case
    {
        const char *name;
        Circuit circuit;
    };
    std::vector<Case> cases;
    cases.push_back({"tfim_4(t=5)", algos::tfim(4, 5)});
    cases.push_back({"heisenberg_4(t=3)", algos::heisenberg(4, 3)});

    QuestPipeline pipeline(benchConfig());
    Table table({"case", "noise", "qiskit_tvd", "quest+qiskit_tvd"});

    for (const Case &c : cases) {
        Circuit baseline = lowerToNative(c.circuit);
        Distribution truth = idealDistribution(baseline);
        Circuit qiskit = qiskitLikeOptimize(c.circuit);
        QuestResult result = pipeline.run(c.circuit);

        for (double level : {0.01, 0.005, 0.001}) {
            const NoiseModel noise = NoiseModel::pauli(level);
            table.addRow(
                {c.name, Table::pct(level, 1),
                 Table::num(noisyTvd(qiskit, truth, noise, 5), 3),
                 Table::num(questNoisyTvd(result, truth, noise, 5),
                            3)});
        }
    }
    finishBench("fig14_case_noise", table);
    std::cout << "\nExpected shape (paper): QUEST's TVD shrinks as the "
                 "noise drops (TFIM), and for Heisenberg QUEST stays "
                 "close to the ground truth even at 1% noise thanks "
                 "to the large CNOT reduction.\n";
    return 0;
}
