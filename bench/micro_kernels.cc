/**
 * @file
 * google-benchmark micro-benchmarks of the hot kernels behind the
 * QUEST pipeline: statevector gate application, HS distance,
 * gradient evaluation, instantiation and annealing steps.
 */

#include <benchmark/benchmark.h>

#include "algos/algorithms.hh"
#include "anneal/dual_annealing.hh"
#include "ir/lower.hh"
#include "linalg/distance.hh"
#include "sim/statevector.hh"
#include "sim/unitary_builder.hh"
#include "synth/hs_cost.hh"
#include "synth/instantiater.hh"
#include "util/rng.hh"

namespace {

using namespace quest;

void
BM_StateVectorCx(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    StateVector sv(n);
    sv.applyGate(Gate::h(0));
    for (auto _ : state) {
        sv.applyGate(Gate::cx(0, n - 1));
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
}
BENCHMARK(BM_StateVectorCx)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void
BM_StateVectorU3(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    StateVector sv(n);
    Gate g = Gate::u3(n / 2, 0.3, 0.2, -0.4);
    for (auto _ : state) {
        sv.applyGate(g);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
}
BENCHMARK(BM_StateVectorU3)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void
BM_CircuitSimulation(benchmark::State &state)
{
    const int steps = static_cast<int>(state.range(0));
    Circuit c = lowerToNative(algos::tfim(8, steps));
    for (auto _ : state) {
        StateVector sv(8);
        sv.applyCircuit(c);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
}
BENCHMARK(BM_CircuitSimulation)->Arg(1)->Arg(4)->Arg(16);

void
BM_HsDistance(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Matrix u = buildUnitary(lowerToNative(algos::tfim(n, 1)));
    Matrix v = buildUnitary(lowerToNative(algos::tfim(n, 2)));
    for (auto _ : state)
        benchmark::DoNotOptimize(hsDistance(u, v));
}
BENCHMARK(BM_HsDistance)->Arg(2)->Arg(4)->Arg(6);

void
BM_BuildUnitary(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Circuit c = lowerToNative(algos::tfim(n, 2));
    for (auto _ : state)
        benchmark::DoNotOptimize(buildUnitary(c));
}
BENCHMARK(BM_BuildUnitary)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void
BM_CostGradient(benchmark::State &state)
{
    const int layers = static_cast<int>(state.range(0));
    Matrix target = buildUnitary(lowerToNative(algos::tfim(4, 2)));
    Ansatz a = Ansatz::initialLayer(4);
    for (int l = 0; l < layers; ++l)
        a.addLayer(l % 3, l % 3 + 1);
    HsCost cost(target, a);
    Rng rng(1);
    std::vector<double> x(a.paramCount());
    for (double &v : x)
        v = rng.uniform(-3.0, 3.0);
    std::vector<double> grad;
    for (auto _ : state)
        benchmark::DoNotOptimize(cost.evaluate(x, &grad));
}
BENCHMARK(BM_CostGradient)->Arg(2)->Arg(6)->Arg(12);

void
BM_Instantiation(benchmark::State &state)
{
    Matrix target = buildUnitary(lowerToNative(algos::tfim(3, 1)));
    Ansatz a = Ansatz::initialLayer(3);
    a.addLayer(0, 1);
    a.addLayer(1, 2);
    InstantiaterOptions opts;
    opts.multistarts = 1;
    opts.lbfgs.maxIterations = 100;
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(instantiate(target, a, rng, opts));
}
BENCHMARK(BM_Instantiation);

void
BM_DualAnnealingStep(benchmark::State &state)
{
    AnnealObjective f = [](const std::vector<double> &x) {
        double v = 0.0;
        for (double xi : x)
            v += (xi - 0.4) * (xi - 0.4);
        return v;
    };
    AnnealOptions opts;
    opts.maxIterations = 100;
    opts.localSearch = false;
    std::vector<double> lo(8, 0.0), hi(8, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(dualAnnealing(f, lo, hi, opts));
}
BENCHMARK(BM_DualAnnealingStep);

} // namespace

BENCHMARK_MAIN();
