/**
 * @file
 * google-benchmark micro-benchmarks of the hot kernels behind the
 * QUEST pipeline: statevector gate application, HS distance,
 * gradient evaluation, instantiation and annealing steps.
 *
 * Besides the google-benchmark suite, main() measures instantiation
 * throughput directly and archives it as BENCH_instantiation.json
 * (via bench_common's writeBenchJson) so CI keeps machine-readable
 * records of the hot-path numbers next to the figure harnesses.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <functional>
#include <string>

#include "algos/algorithms.hh"
#include "anneal/dual_annealing.hh"
#include "bench_common.hh"
#include "ir/lower.hh"
#include "linalg/distance.hh"
#include "sim/statevector.hh"
#include "sim/unitary_builder.hh"
#include "synth/batch/batched_hs_cost.hh"
#include "synth/hs_cost.hh"
#include "synth/instantiater.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "resilience/thread_pool.hh"

namespace {

using namespace quest;

/** A ring-entangled test ansatz over n qubits. */
Ansatz
benchAnsatz(int n, int layers)
{
    Ansatz a = Ansatz::initialLayer(n);
    for (int l = 0; l < layers; ++l)
        a.addLayer(l % n, (l + 1) % n);
    return a;
}

void
BM_StateVectorCx(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    StateVector sv(n);
    sv.applyGate(Gate::h(0));
    for (auto _ : state) {
        sv.applyGate(Gate::cx(0, n - 1));
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
}
BENCHMARK(BM_StateVectorCx)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void
BM_StateVectorU3(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    StateVector sv(n);
    Gate g = Gate::u3(n / 2, 0.3, 0.2, -0.4);
    for (auto _ : state) {
        sv.applyGate(g);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
}
BENCHMARK(BM_StateVectorU3)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void
BM_CircuitSimulation(benchmark::State &state)
{
    const int steps = static_cast<int>(state.range(0));
    Circuit c = lowerToNative(algos::tfim(8, steps));
    for (auto _ : state) {
        StateVector sv(8);
        sv.applyCircuit(c);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
}
BENCHMARK(BM_CircuitSimulation)->Arg(1)->Arg(4)->Arg(16);

void
BM_HsDistance(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Matrix u = buildUnitary(lowerToNative(algos::tfim(n, 1)));
    Matrix v = buildUnitary(lowerToNative(algos::tfim(n, 2)));
    for (auto _ : state)
        benchmark::DoNotOptimize(hsDistance(u, v));
}
BENCHMARK(BM_HsDistance)->Arg(2)->Arg(4)->Arg(6);

void
BM_BuildUnitary(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Circuit c = lowerToNative(algos::tfim(n, 2));
    for (auto _ : state)
        benchmark::DoNotOptimize(buildUnitary(c));
}
BENCHMARK(BM_BuildUnitary)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void
BM_CostGradient(benchmark::State &state)
{
    const int layers = static_cast<int>(state.range(0));
    Matrix target = buildUnitary(lowerToNative(algos::tfim(4, 2)));
    Ansatz a = Ansatz::initialLayer(4);
    for (int l = 0; l < layers; ++l)
        a.addLayer(l % 3, l % 3 + 1);
    HsCost cost(target, a);
    Rng rng(1);
    std::vector<double> x(a.paramCount());
    for (double &v : x)
        v = rng.uniform(-3.0, 3.0);
    std::vector<double> grad;
    for (auto _ : state)
        benchmark::DoNotOptimize(cost.evaluate(x, &grad));
}
BENCHMARK(BM_CostGradient)->Arg(2)->Arg(6)->Arg(12);

void
BM_HsEval(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Ansatz a = benchAnsatz(n, 2 * n);
    Matrix target = buildUnitary(lowerToNative(algos::tfim(n, 2)));
    HsCost cost(target, a);
    Rng rng(2);
    std::vector<double> x(a.paramCount());
    for (double &v : x)
        v = rng.uniform(-3.0, 3.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(cost.evaluate(x, nullptr));
}
BENCHMARK(BM_HsEval)->Arg(2)->Arg(3)->Arg(4);

void
BM_HsEvalGrad(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Ansatz a = benchAnsatz(n, 2 * n);
    Matrix target = buildUnitary(lowerToNative(algos::tfim(n, 2)));
    HsCost cost(target, a);
    Rng rng(3);
    std::vector<double> x(a.paramCount());
    for (double &v : x)
        v = rng.uniform(-3.0, 3.0);
    std::vector<double> grad;
    for (auto _ : state)
        benchmark::DoNotOptimize(cost.evaluate(x, &grad));
}
BENCHMARK(BM_HsEvalGrad)->Arg(2)->Arg(3)->Arg(4);

void
BM_Instantiation(benchmark::State &state)
{
    Matrix target = buildUnitary(lowerToNative(algos::tfim(3, 1)));
    Ansatz a = Ansatz::initialLayer(3);
    a.addLayer(0, 1);
    a.addLayer(1, 2);
    InstantiaterOptions opts;
    opts.multistarts = 1;
    opts.lbfgs.maxIterations = 100;
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(instantiate(target, a, rng, opts));
}
BENCHMARK(BM_Instantiation);

/**
 * The instantiation hot loop with a deadline armed but never firing —
 * against BM_Instantiation, the cost of the resilience plumbing on
 * bounded runs (the unbounded case adds only two branches per L-BFGS
 * iteration; the acceptance bar is <1% either way).
 */
void
BM_InstantiationArmedBudget(benchmark::State &state)
{
    Matrix target = buildUnitary(lowerToNative(algos::tfim(3, 1)));
    Ansatz a = Ansatz::initialLayer(3);
    a.addLayer(0, 1);
    a.addLayer(1, 2);
    resilience::CancelToken token;
    InstantiaterOptions opts;
    opts.multistarts = 1;
    opts.lbfgs.maxIterations = 100;
    opts.budget = resilience::Budget(
        resilience::Deadline::after(86400.0), &token);
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(instantiate(target, a, rng, opts));
}
BENCHMARK(BM_InstantiationArmedBudget);

/** The raw cost of one budget poll, unbounded vs armed. */
void
BM_BudgetPoll(benchmark::State &state)
{
    resilience::CancelToken token;
    const resilience::Budget budget =
        state.range(0) == 0
            ? resilience::Budget()
            : resilience::Budget(resilience::Deadline::after(86400.0),
                                 &token);
    for (auto _ : state)
        benchmark::DoNotOptimize(budget.exhausted());
}
BENCHMARK(BM_BudgetPoll)->Arg(0)->Arg(1);

void
BM_InstantiationParallel(benchmark::State &state)
{
    const unsigned workers = static_cast<unsigned>(state.range(0));
    Matrix target = buildUnitary(lowerToNative(algos::tfim(3, 1)));
    Ansatz a = Ansatz::initialLayer(3);
    a.addLayer(0, 1);
    a.addLayer(1, 2);
    ThreadPool pool(workers);
    InstantiaterOptions opts;
    opts.multistarts = 4;
    opts.lbfgs.maxIterations = 100;
    opts.pool = workers > 0 ? &pool : nullptr;
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(instantiate(target, a, rng, opts));
}
BENCHMARK(BM_InstantiationParallel)->Arg(0)->Arg(3);

void
BM_DualAnnealingStep(benchmark::State &state)
{
    AnnealObjective f = [](const std::vector<double> &x) {
        double v = 0.0;
        for (double xi : x)
            v += (xi - 0.4) * (xi - 0.4);
        return v;
    };
    AnnealOptions opts;
    opts.maxIterations = 100;
    opts.localSearch = false;
    std::vector<double> lo(8, 0.0), hi(8, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(dualAnnealing(f, lo, hi, opts));
}
BENCHMARK(BM_DualAnnealingStep);

/** Mean milliseconds per call of @p fn over @p iters calls. */
double
msPerCall(int iters, const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count() /
           static_cast<double>(iters);
}

/**
 * Instantiation-engine throughput table archived as
 * BENCH_instantiation.json. Every row carries an `engine` column —
 * "scalar" is the classic per-start path (InstantiaterEngine::Scalar),
 * "simd" the batched lane-lockstep engine (engine Auto) — and both
 * engines are measured IN THE SAME RUN so the speedup ratio is
 * machine-consistent: cost evaluations per second (per candidate for
 * the batched cost), multistart instantiations per second at 2-5
 * qubits, and the legacy serial/pool latency rows CI keys on.
 *
 * The n=2..4 cases run the specialized fixed-dim kernels; n=5 (dim
 * 32) exercises both engines' generic runtime-dim kernels, and is
 * also where evaluation dominates the serial per-iteration L-BFGS
 * bookkeeping both engines share, so the end-to-end ratio approaches
 * the raw per-eval ratio. Its repetition counts are scaled down to
 * keep the full run's wall time in check.
 */
Table
instantiationTable()
{
    const bool smoke = quest::bench::smokeMode();
    constexpr size_t kLanes = synth::BatchedHsCost::kLanes;

    Table table({"case", "engine", "metric", "value"});
    for (int n = 2; n <= 5; ++n) {
        const int scale = n == 5 ? 8 : 1;
        const int evals = (smoke ? 200 : 5000) / scale;
        const int batches = (smoke ? 50 : 1000) / scale;
        const int insts = std::max(1, (smoke ? 2 : 20) / scale);
        const std::string suffix = "_n" + std::to_string(n);
        Ansatz a = benchAnsatz(n, 2 * n);
        Matrix target = buildUnitary(lowerToNative(algos::tfim(n, 2)));
        HsCost cost(target, a);
        Rng rng(5);
        std::vector<double> x(a.paramCount());
        for (double &v : x)
            v = rng.uniform(-3.0, 3.0);
        std::vector<double> grad;
        cost.evaluate(x, &grad);  // warm the workspace

        double ms = msPerCall(
            evals, [&] { benchmark::DoNotOptimize(
                             cost.evaluate(x, nullptr)); });
        table.addRow({"hs_eval" + suffix, "scalar", "evals_per_s",
                      Table::num(1000.0 / ms, 1)});
        ms = msPerCall(
            evals, [&] { benchmark::DoNotOptimize(
                             cost.evaluate(x, &grad)); });
        table.addRow({"hs_eval_grad" + suffix, "scalar", "evals_per_s",
                      Table::num(1000.0 / ms, 1)});

        // Batched gradient evaluation: per-candidate throughput with
        // all kLanes lanes live.
        synth::BatchedHsCost batched(target, a);
        std::array<std::vector<double>, kLanes> xsStore;
        std::array<const std::vector<double> *, kLanes> xs{};
        std::array<std::vector<double>, kLanes> gradStore;
        std::array<std::vector<double> *, kLanes> grads{};
        for (size_t l = 0; l < kLanes; ++l) {
            xsStore[l].resize(x.size());
            for (double &v : xsStore[l])
                v = rng.uniform(-3.0, 3.0);
            xs[l] = &xsStore[l];
            grads[l] = &gradStore[l];
        }
        std::array<double, kLanes> f{};
        batched.evaluateBatch(xs, f, grads);  // warm the arena
        ms = msPerCall(batches, [&] {
            batched.evaluateBatch(xs, f, grads);
            benchmark::DoNotOptimize(f.data());
        });
        table.addRow({"hs_eval_grad" + suffix, "simd", "evals_per_s",
                      Table::num(1000.0 / ms *
                                     static_cast<double>(kLanes),
                                 1)});

        // End-to-end multistart instantiation, both engines, same
        // target/ansatz/seed. Unreachable goal: every start runs to
        // its iteration cap in both engines. Three waves of starts so
        // the batched engine's lane refills are exercised and the
        // final-wave lockstep tail is amortized, as in a real
        // synthesis run where candidates keep arriving.
        InstantiaterOptions iopts;
        iopts.multistarts = 24;
        iopts.lbfgs.maxIterations = smoke ? 40 : 100;
        iopts.goal = 0.0;
        iopts.engine = InstantiaterEngine::Scalar;
        Rng srng(7);
        ms = msPerCall(insts, [&] {
            benchmark::DoNotOptimize(instantiate(target, a, srng, iopts));
        });
        table.addRow({"instantiate" + suffix, "scalar",
                      "instantiations_per_sec",
                      Table::num(1000.0 / ms, 2)});
        iopts.engine = InstantiaterEngine::Auto;
        Rng brng(7);
        ms = msPerCall(insts, [&] {
            benchmark::DoNotOptimize(instantiate(target, a, brng, iopts));
        });
        table.addRow({"instantiate" + suffix, "simd",
                      "instantiations_per_sec",
                      Table::num(1000.0 / ms, 2)});
    }

    const int insts = smoke ? 2 : 20;
    Matrix target = buildUnitary(lowerToNative(algos::tfim(3, 1)));
    Ansatz a = Ansatz::initialLayer(3);
    a.addLayer(0, 1);
    a.addLayer(1, 2);
    InstantiaterOptions opts;
    opts.multistarts = 4;
    opts.lbfgs.maxIterations = smoke ? 40 : 100;
    opts.engine = InstantiaterEngine::Scalar;
    Rng rng(7);
    table.addRow({"instantiate_serial", "scalar", "ms_per_call",
                  Table::num(msPerCall(insts, [&] {
                                 benchmark::DoNotOptimize(
                                     instantiate(target, a, rng, opts));
                             }),
                             3)});
    ThreadPool pool(3);
    opts.pool = &pool;
    table.addRow({"instantiate_pool4", "scalar", "ms_per_call",
                  Table::num(msPerCall(insts, [&] {
                                 benchmark::DoNotOptimize(
                                     instantiate(target, a, rng, opts));
                             }),
                             3)});
    return table;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    quest::bench::finishBench("instantiation", instantiationTable());
    return 0;
}
