/**
 * @file
 * google-benchmark micro-benchmarks of the hot kernels behind the
 * QUEST pipeline: statevector gate application, HS distance,
 * gradient evaluation, instantiation and annealing steps.
 *
 * Besides the google-benchmark suite, main() measures instantiation
 * throughput directly and archives it as BENCH_instantiation.json
 * (via bench_common's writeBenchJson) so CI keeps machine-readable
 * records of the hot-path numbers next to the figure harnesses.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>

#include "algos/algorithms.hh"
#include "anneal/dual_annealing.hh"
#include "bench_common.hh"
#include "ir/lower.hh"
#include "linalg/distance.hh"
#include "sim/statevector.hh"
#include "sim/unitary_builder.hh"
#include "synth/hs_cost.hh"
#include "synth/instantiater.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "resilience/thread_pool.hh"

namespace {

using namespace quest;

/** A ring-entangled test ansatz over n qubits. */
Ansatz
benchAnsatz(int n, int layers)
{
    Ansatz a = Ansatz::initialLayer(n);
    for (int l = 0; l < layers; ++l)
        a.addLayer(l % n, (l + 1) % n);
    return a;
}

void
BM_StateVectorCx(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    StateVector sv(n);
    sv.applyGate(Gate::h(0));
    for (auto _ : state) {
        sv.applyGate(Gate::cx(0, n - 1));
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
}
BENCHMARK(BM_StateVectorCx)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void
BM_StateVectorU3(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    StateVector sv(n);
    Gate g = Gate::u3(n / 2, 0.3, 0.2, -0.4);
    for (auto _ : state) {
        sv.applyGate(g);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
}
BENCHMARK(BM_StateVectorU3)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void
BM_CircuitSimulation(benchmark::State &state)
{
    const int steps = static_cast<int>(state.range(0));
    Circuit c = lowerToNative(algos::tfim(8, steps));
    for (auto _ : state) {
        StateVector sv(8);
        sv.applyCircuit(c);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
}
BENCHMARK(BM_CircuitSimulation)->Arg(1)->Arg(4)->Arg(16);

void
BM_HsDistance(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Matrix u = buildUnitary(lowerToNative(algos::tfim(n, 1)));
    Matrix v = buildUnitary(lowerToNative(algos::tfim(n, 2)));
    for (auto _ : state)
        benchmark::DoNotOptimize(hsDistance(u, v));
}
BENCHMARK(BM_HsDistance)->Arg(2)->Arg(4)->Arg(6);

void
BM_BuildUnitary(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Circuit c = lowerToNative(algos::tfim(n, 2));
    for (auto _ : state)
        benchmark::DoNotOptimize(buildUnitary(c));
}
BENCHMARK(BM_BuildUnitary)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void
BM_CostGradient(benchmark::State &state)
{
    const int layers = static_cast<int>(state.range(0));
    Matrix target = buildUnitary(lowerToNative(algos::tfim(4, 2)));
    Ansatz a = Ansatz::initialLayer(4);
    for (int l = 0; l < layers; ++l)
        a.addLayer(l % 3, l % 3 + 1);
    HsCost cost(target, a);
    Rng rng(1);
    std::vector<double> x(a.paramCount());
    for (double &v : x)
        v = rng.uniform(-3.0, 3.0);
    std::vector<double> grad;
    for (auto _ : state)
        benchmark::DoNotOptimize(cost.evaluate(x, &grad));
}
BENCHMARK(BM_CostGradient)->Arg(2)->Arg(6)->Arg(12);

void
BM_HsEval(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Ansatz a = benchAnsatz(n, 2 * n);
    Matrix target = buildUnitary(lowerToNative(algos::tfim(n, 2)));
    HsCost cost(target, a);
    Rng rng(2);
    std::vector<double> x(a.paramCount());
    for (double &v : x)
        v = rng.uniform(-3.0, 3.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(cost.evaluate(x, nullptr));
}
BENCHMARK(BM_HsEval)->Arg(2)->Arg(3)->Arg(4);

void
BM_HsEvalGrad(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Ansatz a = benchAnsatz(n, 2 * n);
    Matrix target = buildUnitary(lowerToNative(algos::tfim(n, 2)));
    HsCost cost(target, a);
    Rng rng(3);
    std::vector<double> x(a.paramCount());
    for (double &v : x)
        v = rng.uniform(-3.0, 3.0);
    std::vector<double> grad;
    for (auto _ : state)
        benchmark::DoNotOptimize(cost.evaluate(x, &grad));
}
BENCHMARK(BM_HsEvalGrad)->Arg(2)->Arg(3)->Arg(4);

void
BM_Instantiation(benchmark::State &state)
{
    Matrix target = buildUnitary(lowerToNative(algos::tfim(3, 1)));
    Ansatz a = Ansatz::initialLayer(3);
    a.addLayer(0, 1);
    a.addLayer(1, 2);
    InstantiaterOptions opts;
    opts.multistarts = 1;
    opts.lbfgs.maxIterations = 100;
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(instantiate(target, a, rng, opts));
}
BENCHMARK(BM_Instantiation);

/**
 * The instantiation hot loop with a deadline armed but never firing —
 * against BM_Instantiation, the cost of the resilience plumbing on
 * bounded runs (the unbounded case adds only two branches per L-BFGS
 * iteration; the acceptance bar is <1% either way).
 */
void
BM_InstantiationArmedBudget(benchmark::State &state)
{
    Matrix target = buildUnitary(lowerToNative(algos::tfim(3, 1)));
    Ansatz a = Ansatz::initialLayer(3);
    a.addLayer(0, 1);
    a.addLayer(1, 2);
    resilience::CancelToken token;
    InstantiaterOptions opts;
    opts.multistarts = 1;
    opts.lbfgs.maxIterations = 100;
    opts.budget = resilience::Budget(
        resilience::Deadline::after(86400.0), &token);
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(instantiate(target, a, rng, opts));
}
BENCHMARK(BM_InstantiationArmedBudget);

/** The raw cost of one budget poll, unbounded vs armed. */
void
BM_BudgetPoll(benchmark::State &state)
{
    resilience::CancelToken token;
    const resilience::Budget budget =
        state.range(0) == 0
            ? resilience::Budget()
            : resilience::Budget(resilience::Deadline::after(86400.0),
                                 &token);
    for (auto _ : state)
        benchmark::DoNotOptimize(budget.exhausted());
}
BENCHMARK(BM_BudgetPoll)->Arg(0)->Arg(1);

void
BM_InstantiationParallel(benchmark::State &state)
{
    const unsigned workers = static_cast<unsigned>(state.range(0));
    Matrix target = buildUnitary(lowerToNative(algos::tfim(3, 1)));
    Ansatz a = Ansatz::initialLayer(3);
    a.addLayer(0, 1);
    a.addLayer(1, 2);
    ThreadPool pool(workers);
    InstantiaterOptions opts;
    opts.multistarts = 4;
    opts.lbfgs.maxIterations = 100;
    opts.pool = workers > 0 ? &pool : nullptr;
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(instantiate(target, a, rng, opts));
}
BENCHMARK(BM_InstantiationParallel)->Arg(0)->Arg(3);

void
BM_DualAnnealingStep(benchmark::State &state)
{
    AnnealObjective f = [](const std::vector<double> &x) {
        double v = 0.0;
        for (double xi : x)
            v += (xi - 0.4) * (xi - 0.4);
        return v;
    };
    AnnealOptions opts;
    opts.maxIterations = 100;
    opts.localSearch = false;
    std::vector<double> lo(8, 0.0), hi(8, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(dualAnnealing(f, lo, hi, opts));
}
BENCHMARK(BM_DualAnnealingStep);

/** Mean milliseconds per call of @p fn over @p iters calls. */
double
msPerCall(int iters, const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count() /
           static_cast<double>(iters);
}

/**
 * Instantiation-engine throughput table archived as
 * BENCH_instantiation.json: cost evaluations per second with and
 * without gradient for 2-4 qubit ansaetze, and multistart
 * instantiation latency serial vs on a worker pool.
 */
Table
instantiationTable()
{
    const int evals = quest::bench::smokeMode() ? 200 : 5000;
    const int insts = quest::bench::smokeMode() ? 2 : 20;

    Table table({"case", "metric", "value"});
    for (int n = 2; n <= 4; ++n) {
        Ansatz a = benchAnsatz(n, 2 * n);
        Matrix target = buildUnitary(lowerToNative(algos::tfim(n, 2)));
        HsCost cost(target, a);
        Rng rng(5);
        std::vector<double> x(a.paramCount());
        for (double &v : x)
            v = rng.uniform(-3.0, 3.0);
        std::vector<double> grad;
        cost.evaluate(x, &grad);  // warm the workspace

        double ms = msPerCall(
            evals, [&] { benchmark::DoNotOptimize(
                             cost.evaluate(x, nullptr)); });
        table.addRow({"hs_eval_n" + std::to_string(n), "evals_per_s",
                      Table::num(1000.0 / ms, 1)});
        ms = msPerCall(
            evals, [&] { benchmark::DoNotOptimize(
                             cost.evaluate(x, &grad)); });
        table.addRow({"hs_eval_grad_n" + std::to_string(n),
                      "evals_per_s", Table::num(1000.0 / ms, 1)});
    }

    Matrix target = buildUnitary(lowerToNative(algos::tfim(3, 1)));
    Ansatz a = Ansatz::initialLayer(3);
    a.addLayer(0, 1);
    a.addLayer(1, 2);
    InstantiaterOptions opts;
    opts.multistarts = 4;
    opts.lbfgs.maxIterations = quest::bench::smokeMode() ? 40 : 100;
    Rng rng(7);
    table.addRow({"instantiate_serial", "ms_per_call",
                  Table::num(msPerCall(insts, [&] {
                                 benchmark::DoNotOptimize(
                                     instantiate(target, a, rng, opts));
                             }),
                             3)});
    ThreadPool pool(3);
    opts.pool = &pool;
    table.addRow({"instantiate_pool4", "ms_per_call",
                  Table::num(msPerCall(insts, [&] {
                                 benchmark::DoNotOptimize(
                                     instantiate(target, a, rng, opts));
                             }),
                             3)});
    return table;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    quest::bench::finishBench("instantiation", instantiationTable());
    return 0;
}
