/**
 * @file
 * Fig. 10: TVD from the ground truth when circuits run on the
 * IBMQ-Manila-like 5-qubit device: Qiskit alone vs QUEST + Qiskit.
 *
 * Faithful to the hardware setting: every executed circuit is first
 * routed onto Manila's line topology (SWAP insertion), then lowered,
 * so CNOT overheads from mapping are part of what QUEST saves.
 */

#include "bench_common.hh"

#include "route/router.hh"

namespace {

using namespace quest;
using namespace quest::bench;

/** Route onto the line, lower, run noisily, undo the permutation. */
double
deviceTvd(const Circuit &logical, const Distribution &truth,
          uint64_t seed)
{
    CouplingMap manila = CouplingMap::line(logical.numQubits());
    RoutingResult routed = routeCircuit(
        lowerToNative(logical).withoutPseudoOps(), manila);
    NoisySimulator sim(NoiseModel::ibmqManila(), seed);
    Distribution physical =
        sim.run(lowerToNative(routed.circuit), kShots);
    return tvd(truth,
               unpermuteDistribution(physical, routed.finalLayout));
}

} // namespace

int
main()
{
    banner("Figure 10: TVD on the IBMQ-Manila device model");

    Table table({"benchmark", "qiskit_tvd", "quest+qiskit_tvd",
                 "reduction_pts"});
    QuestPipeline pipeline(benchConfig());

    for (const auto &spec : algos::manilaSuite()) {
        Circuit baseline = lowerToNative(spec.build());
        Distribution truth = idealDistribution(baseline);

        double qiskit_tvd =
            deviceTvd(qiskitLikeOptimize(spec.build()), truth, 7);

        // QUEST + Qiskit: noisy runs of every sample, averaged.
        QuestResult result = pipeline.run(spec.build());
        std::vector<Distribution> outputs;
        for (size_t i = 0; i < result.samples.size(); ++i) {
            const Circuit sample =
                qiskitLikeOptimize(result.samples[i].circuit);
            CouplingMap manila = CouplingMap::line(sample.numQubits());
            RoutingResult routed =
                routeCircuit(sample.withoutPseudoOps(), manila);
            NoisySimulator sim(NoiseModel::ibmqManila(), 7 + i);
            Distribution physical =
                sim.run(lowerToNative(routed.circuit), kShots);
            outputs.push_back(
                unpermuteDistribution(physical, routed.finalLayout));
        }
        double quest_tvd = tvd(truth, Distribution::average(outputs));

        table.addRow({spec.name, Table::num(qiskit_tvd, 3),
                      Table::num(quest_tvd, 3),
                      Table::num(qiskit_tvd - quest_tvd, 3)});
    }
    finishBench("fig10_nisq_machine", table);
    std::cout << "\nExpected shape (paper): QUEST + Qiskit reduces the "
                 "TVD, by up to ~0.3 for the deep circuits (e.g. the "
                 "four-qubit TFIM drops from ~0.35 to ~0.08).\n";
    return 0;
}
