/**
 * @file
 * Fig. 1: motivation. The output of TFIM and Heisenberg on an
 * IBMQ-Manila-like device with all baseline (Qiskit-like) compiler
 * optimizations is far from the ground truth, even though the device
 * is a relatively low-error NISQ machine.
 *
 * Series: average magnetization per timestep — ground truth vs the
 * noisy execution of the Qiskit-optimized baseline circuit.
 */

#include "bench_common.hh"

namespace {

using namespace quest;
using namespace quest::bench;

void
runModel(const std::string &name,
         const std::function<Circuit(int)> &build, int max_steps)
{
    Table table({"timestep", "truth_magnetization",
                 "qiskit_magnetization", "qiskit_tvd"});
    for (int step = 1; step <= max_steps; ++step) {
        Circuit circuit = build(step);
        Circuit qiskit = qiskitLikeOptimize(circuit);
        Distribution truth = idealDistribution(qiskit);

        NoisySimulator sim(NoiseModel::ibmqManila(), 100 + step);
        Distribution noisy = sim.run(qiskit, kShots);

        table.addRow({std::to_string(step),
                      Table::num(averageMagnetization(truth)),
                      Table::num(averageMagnetization(noisy)),
                      Table::num(tvd(truth, noisy))});
    }
    std::cout << "\n-- " << name << " (4 spins, Manila noise model, "
              << "Qiskit-only compilation) --\n";
    finishBench("fig01_" + name, table);
}

} // namespace

int
main()
{
    banner("Figure 1: noisy Qiskit-only output vs ground truth");
    runModel("TFIM", [](int s) { return algos::tfim(4, s); }, 10);
    runModel("Heisenberg",
             [](int s) { return algos::heisenberg(4, s); }, 10);
    std::cout << "\nExpected shape (paper): the noisy magnetization "
                 "drifts far from the ground truth, losing amplitude "
                 "and consistency as timesteps grow.\n";
    return 0;
}
