/**
 * @file
 * Fig. 15: the structural reduction behind the case study — gate and
 * CNOT counts of the Baseline circuit vs one QUEST approximation for
 * deep TFIM and Heisenberg instances, plus the approximation's QASM.
 * (The paper's figure draws the circuits; we report the counts and
 * emit the circuit text.)
 */

#include "bench_common.hh"

#include "ir/qasm.hh"

namespace {

using namespace quest;
using namespace quest::bench;

void
runCase(const std::string &name, const Circuit &circuit, bool dump)
{
    Circuit baseline = lowerToNative(circuit);
    QuestPipeline pipeline(benchConfig());
    QuestResult result = pipeline.run(circuit);

    // The approximation with the fewest CNOTs, post-Qiskit.
    size_t best = 0;
    for (size_t i = 1; i < result.samples.size(); ++i)
        if (result.samples[i].cnotCount <
            result.samples[best].cnotCount)
            best = i;
    Circuit approx = qiskitLikeOptimize(result.samples[best].circuit);

    Table table({"circuit", "gates", "cnots", "depth"});
    table.addRow({name + " baseline",
                  std::to_string(baseline.gateCount()),
                  std::to_string(baseline.cnotCount()),
                  std::to_string(baseline.depth())});
    table.addRow({name + " QUEST approx",
                  std::to_string(approx.gateCount()),
                  std::to_string(approx.cnotCount()),
                  std::to_string(approx.depth())});
    finishBench("fig15_structure", table);

    if (dump) {
        std::cout << "\nQUEST approximation (OpenQASM 2.0):\n"
                  << toQasm(approx) << "\n";
    }
}

} // namespace

int
main()
{
    banner("Figure 15: circuit structure before/after QUEST");
    // Deep evolution instances standing in for the paper's TFIM
    // t=100 / Heisenberg t=50 (which had 900 CNOTs -> 11 CNOTs).
    runCase("tfim_4(t=12)", algos::tfim(4, 12), true);
    std::cout << "\n";
    runCase("heisenberg_4(t=5)", algos::heisenberg(4, 5), false);
    std::cout << "\nExpected shape (paper): an order-of-magnitude CNOT "
                 "reduction for the deep-evolution circuits.\n";
    return 0;
}
