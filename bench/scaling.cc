/**
 * @file
 * Scaling harness for the QGo-style block-only pipeline mode
 * (SelectionMode::BlockBound, `quest_compile --large`): CNOT
 * reduction and wall-clock versus qubit count on the 64/96/128-qubit
 * TFIM/QAOA/adder suite — widths where SelectionMode::Full (and any
 * statevector check) is impossible.
 *
 * Two properties are asserted, not just reported:
 *   - no instance may build a full statevector or dense unitary (the
 *     `sim.statevector_builds` / `sim.unitary_builds` counters must
 *     stay flat — the whole point of the mode);
 *   - in smoke mode the 64-qubit TFIM case must finish inside the
 *     smoke budget, so CI catches a scaling regression loudly.
 */

#include "bench_common.hh"
#include "util/names.hh"
#include "util/timer.hh"

namespace {

/** Smoke-budget ceiling for the 64q TFIM case, generous for a single
 *  shared CI core; a healthy run needs a few seconds. */
constexpr double kSmokeTfim64BudgetSeconds = 120.0;

} // namespace

int
main()
{
    using namespace quest;
    using namespace quest::bench;

    banner("Scaling: block-only (--large) pipeline vs qubit count");

    QuestConfig cfg = benchConfig();
    cfg.selectionMode = SelectionMode::BlockBound;

    auto &registry = obs::MetricsRegistry::global();
    auto &sv_builds =
        registry.counter(names::kMetricSimStatevectorBuilds);
    auto &u_builds = registry.counter(names::kMetricSimUnitaryBuilds);

    Table table({"benchmark", "qubits", "blocks", "baseline_cnots",
                 "quest_min_cnots", "reduction%", "max_bound",
                 "output_estimate", "seconds"});

    for (const auto &spec : algos::largeSuite()) {
        const uint64_t sv_before = sv_builds.value();
        const uint64_t u_before = u_builds.value();

        Stopwatch watch;
        QuestResult result;
        {
            ScopedTimer timer(watch);
            QuestPipeline pipeline(cfg);
            result = pipeline.run(spec.build());
        }
        const double seconds = watch.seconds();

        if (sv_builds.value() != sv_before ||
            u_builds.value() != u_before) {
            fatal(spec.name,
                  ": BlockBound run touched src/sim (statevector or "
                  "unitary build counters moved)");
        }
        if (smokeMode() && spec.name == "tfim_64" &&
            seconds > kSmokeTfim64BudgetSeconds) {
            fatal("tfim_64 exceeded the smoke budget: ", seconds,
                  "s > ", kSmokeTfim64BudgetSeconds, "s");
        }

        const double reduction =
            result.originalCnots > 0
                ? 1.0 - static_cast<double>(result.minSampleCnots()) /
                            static_cast<double>(result.originalCnots)
                : 0.0;
        table.addRow({spec.name, std::to_string(spec.nQubits),
                      std::to_string(result.blocks.size()),
                      std::to_string(result.originalCnots),
                      std::to_string(result.minSampleCnots()),
                      Table::pct(reduction),
                      Table::num(result.certificate.maxBound, 4),
                      Table::num(result.certificate.outputEstimate, 4),
                      Table::num(seconds, 2)});
    }

    finishBench("scaling", table);
    std::cout << "\nExpected shape: wall-clock grows roughly linearly "
                 "with gate count (synthesis dedup makes Trotterized "
                 "TFIM nearly width-independent), never exponentially "
                 "— nothing here builds a 2^n object. The certificate "
                 "column is the Theorem-1 bound each ensemble was "
                 "selected under.\n";
    return 0;
}
