/**
 * @file
 * Fig. 11: percent reduction in TVD (relative to the noisy Baseline
 * run) for Qiskit and QUEST + Qiskit at Pauli noise levels 1%, 0.5%
 * and 0.1% — projecting onto future lower-noise NISQ devices.
 *
 * The paper simulates up to 16 qubits; this harness caps at 8 qubits
 * to stay within a single-core time budget (see EXPERIMENTS.md).
 */

#include "bench_common.hh"

int
main()
{
    using namespace quest;
    using namespace quest::bench;

    banner("Figure 11: TVD reduction under 1% / 0.5% / 0.1% noise");

    std::vector<std::string> names = {
        "adder_4", "qft_5", "tfim_8", "heisenberg_8", "vqe_5",
    };
    if (smokeMode())
        names.resize(2);
    const std::vector<double> levels = {0.01, 0.005, 0.001};
    const int shots = 2048;  // reduced from 8192 for the 8q runs

    QuestPipeline pipeline(benchConfig());
    auto suite = algos::standardSuite();

    // One QUEST run per circuit, reused across noise levels.
    struct Prepared
    {
        std::string name;
        Circuit baseline;
        Circuit qiskit;
        Distribution truth;
        QuestResult quest;
    };
    std::vector<Prepared> prepared;
    for (const auto &name : names) {
        const auto &spec = algos::findSpec(suite, name);
        Circuit baseline = lowerToNative(spec.build());
        prepared.push_back({spec.name, baseline,
                            qiskitLikeOptimize(spec.build()),
                            idealDistribution(baseline),
                            pipeline.run(spec.build())});
    }

    for (double level : levels) {
        std::cout << "\n-- noise level "
                  << Table::pct(level, 1) << " --\n";
        Table table({"benchmark", "baseline_tvd", "qiskit_red",
                     "quest+qiskit_red"});
        const NoiseModel noise = NoiseModel::pauli(level);

        for (const Prepared &p : prepared) {
            double base_tvd =
                noisyTvd(p.baseline, p.truth, noise, 3, shots);
            double qiskit_tvd =
                noisyTvd(p.qiskit, p.truth, noise, 3, shots);
            double quest_tvd = questNoisyTvd(p.quest, p.truth, noise,
                                             3, true, shots);

            auto red = [&](double t) {
                return base_tvd > 0 ? (base_tvd - t) / base_tvd : 0.0;
            };
            table.addRow({p.name, Table::num(base_tvd, 3),
                          Table::pct(red(qiskit_tvd)),
                          Table::pct(red(quest_tvd))});
        }
        // Per-mille suffix so each noise level gets its own record.
        finishBench("fig11_noise_" +
                        std::to_string(static_cast<int>(
                            level * 1000.0 + 0.5)) +
                        "pm",
                    table);
    }
    std::cout << "\nExpected shape (paper): QUEST + Qiskit reduces the "
                 "TVD across the board, and keeps helping as hardware "
                 "noise shrinks toward 0.1%.\n";
    return 0;
}
