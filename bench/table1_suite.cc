/**
 * @file
 * Table 1: the evaluation benchmark suite and its circuit
 * characteristics after lowering to the native {U3, CX} set.
 */

#include "bench_common.hh"

int
main()
{
    using namespace quest;
    using namespace quest::bench;

    banner("Table 1: algorithms and benchmarks");
    Table table({"benchmark", "qubits", "gates", "cnots", "depth"});
    for (const auto &spec : algos::standardSuite()) {
        Circuit c = lowerToNative(spec.build());
        table.addRow({spec.name, std::to_string(spec.nQubits),
                      std::to_string(c.gateCount()),
                      std::to_string(c.cnotCount()),
                      std::to_string(c.depth())});
    }
    finishBench("table1_suite", table);
    return 0;
}
