/**
 * @file
 * Fig. 8: percent reduction in CNOT gate count over the Baseline for
 * Qiskit (baseline passes only), QUEST (min selected sample) and
 * QUEST + Qiskit, across the benchmark suite.
 */

#include "bench_common.hh"

int
main()
{
    using namespace quest;
    using namespace quest::bench;

    banner("Figure 8: CNOT gate-count reduction over the Baseline");

    Table table({"benchmark", "baseline_cx", "qiskit_red",
                 "quest_red", "quest+qiskit_red"});

    QuestPipeline pipeline(benchConfig());
    for (const auto &spec : algos::standardSuite()) {
        Circuit circuit = spec.build();
        Circuit baseline = lowerToNative(circuit);
        const double base =
            static_cast<double>(baseline.cnotCount());

        Circuit qiskit = qiskitLikeOptimize(circuit);
        QuestResult result = pipeline.run(circuit);

        double quest_cx =
            static_cast<double>(result.minSampleCnots());
        // QUEST + Qiskit: baseline passes applied to each sample.
        double qq_cx = base;
        for (const ApproxSample &s : result.samples) {
            qq_cx = std::min(
                qq_cx, static_cast<double>(
                           qiskitLikeOptimize(s.circuit).cnotCount()));
        }

        auto red = [&](double cx) { return (base - cx) / base; };
        table.addRow({spec.name, std::to_string(baseline.cnotCount()),
                      Table::pct(red(static_cast<double>(
                          qiskit.cnotCount()))),
                      Table::pct(red(quest_cx)),
                      Table::pct(red(qq_cx))});
    }
    finishBench("fig08_cnot_reduction", table);
    std::cout << "\nExpected shape (paper): QUEST reduces CNOTs by "
                 "30-80% for most algorithms (more for Heisenberg, "
                 "less for hard-to-partition QAOA/Multiplier); Qiskit "
                 "alone is negligible for most circuits; QUEST never "
                 "does worse than the Baseline.\n";
    return 0;
}
