/**
 * @file
 * Fig. 7: the Sec. 3.8 theoretical upper bound (sum of per-block HS
 * distances) vs the directly computed full-circuit process distance,
 * over many approximation samples of several algorithms.
 */

#include "bench_common.hh"

#include "linalg/distance.hh"
#include "partition/scan_partitioner.hh"
#include "quest/bound.hh"
#include "util/rng.hh"

namespace {

using namespace quest;
using namespace quest::bench;

Circuit
perturb(const Circuit &c, double scale, Rng &rng)
{
    Circuit out(c.numQubits());
    for (const Gate &g : c) {
        Gate copy = g;
        for (double &p : copy.params)
            p += rng.normal(0.0, scale);
        out.append(std::move(copy));
    }
    return out;
}

} // namespace

int
main()
{
    using namespace quest;
    using namespace quest::bench;

    banner("Figure 7: theoretical bound vs actual process distance");

    Table table({"benchmark", "scale", "bound", "actual", "respected"});
    Rng rng(2022);
    int violations = 0, samples = 0;

    for (const char *name :
         {"adder_4", "qft_5", "tfim_8", "heisenberg_4", "qaoa_5"}) {
        auto suite = algos::standardSuite();
        const auto &spec = algos::findSpec(suite, name);
        Circuit original =
            lowerToNative(spec.build()).withoutPseudoOps();
        ScanPartitioner partitioner(3);
        auto blocks = partitioner.partition(original);

        for (double scale : {0.02, 0.05, 0.1, 0.25, 0.5}) {
            auto approx_blocks = blocks;
            std::vector<double> dists;
            for (size_t b = 0; b < blocks.size(); ++b) {
                approx_blocks[b].circuit =
                    perturb(blocks[b].circuit, scale, rng);
                dists.push_back(hsDistance(
                    circuitUnitary(blocks[b].circuit),
                    circuitUnitary(approx_blocks[b].circuit)));
            }
            Circuit approx =
                assembleBlocks(approx_blocks, original.numQubits());
            double bound = processDistanceBound(dists);
            double actual = actualProcessDistance(original, approx);
            bool ok = actual <= bound + 1e-9;
            violations += !ok;
            ++samples;
            table.addRow({spec.name, Table::num(scale, 2),
                          Table::num(bound, 4), Table::num(actual, 4),
                          ok ? "yes" : "NO"});
        }
    }
    finishBench("fig07_bound", table);
    std::cout << "\nbound respected in " << (samples - violations) << "/"
              << samples << " samples"
              << "\nExpected shape (paper): the bound holds for every "
                 "sample and is relatively tight.\n";
    return violations == 0 ? 0 : 1;
}
