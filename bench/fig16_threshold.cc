/**
 * @file
 * Fig. 16: sensitivity to the process-distance threshold used by the
 * dual-annealing engine. Too-high thresholds admit coarse
 * approximations and blow up the output distance; QUEST performs
 * well over a wide low-to-mid range.
 *
 * Also runs the DESIGN.md selector ablation: QUEST's dissimilar
 * selection vs random feasible sampling at each threshold.
 */

#include "bench_common.hh"

#include "quest/objective.hh"
#include "util/rng.hh"

namespace {

using namespace quest;
using namespace quest::bench;

/** Random feasible samples instead of dual-annealing selection. */
Distribution
randomSelection(const QuestResult &result, int count, Rng &rng)
{
    std::vector<std::vector<int>> selected;
    SelectionObjective obj(result, selected, result.threshold, 0.5);
    std::vector<Distribution> outputs;
    int guard = 0;
    while (static_cast<int>(outputs.size()) < count && guard < 4000) {
        ++guard;
        std::vector<int> choice(result.blockApprox.size());
        for (size_t b = 0; b < choice.size(); ++b)
            choice[b] = static_cast<int>(
                rng.uniformInt(static_cast<uint32_t>(
                    result.blockApprox[b].size())));
        if (obj.bound(choice) > result.threshold)
            continue;
        auto blocks = result.blocks;
        for (size_t b = 0; b < choice.size(); ++b)
            blocks[b].circuit = result.blockApprox[b][choice[b]].circuit;
        outputs.push_back(idealDistribution(
            assembleBlocks(blocks, result.original.numQubits())));
    }
    if (outputs.empty())
        outputs.push_back(idealDistribution(result.original));
    return Distribution::average(outputs);
}

void
runModel(const std::string &name, const Circuit &circuit)
{
    Circuit baseline = lowerToNative(circuit);
    Distribution truth = idealDistribution(baseline);
    Rng rng(16);

    Table table({"threshold", "quest_tvd", "random_tvd",
                 "quest_min_cx"});
    for (double threshold : {0.05, 0.1, 0.2, 0.4, 0.7, 0.9}) {
        QuestConfig cfg = benchConfig();
        cfg.thresholdPerBlock = threshold;
        QuestResult result = QuestPipeline(cfg).run(circuit);

        Distribution ensemble = ensembleDistribution(result);
        Distribution random = randomSelection(
            result, static_cast<int>(result.samples.size()), rng);

        table.addRow({Table::num(threshold, 2),
                      Table::num(tvd(truth, ensemble), 4),
                      Table::num(tvd(truth, random), 4),
                      std::to_string(result.minSampleCnots())});
    }
    std::cout << "\n-- " << name << " --\n";
    finishBench("fig16_" + name, table);
}

} // namespace

int
main()
{
    banner("Figure 16: process-distance threshold sensitivity");
    runModel("tfim_4(t=5)", algos::tfim(4, 5));
    runModel("heisenberg_4(t=3)", algos::heisenberg(4, 3));
    std::cout << "\nExpected shape (paper): output error stays low for "
                 "a wide range of thresholds and degrades when the "
                 "threshold admits very coarse approximations; "
                 "QUEST's dissimilar selection beats random feasible "
                 "sampling.\n";
    return 0;
}
