/**
 * @file
 * Fig. 12: QUEST's one-time circuit-building cost and its breakdown
 * across the partitioning, synthesis and dual-annealing stages.
 *
 * Absolute numbers differ from the paper (single laptop core vs a
 * ten-node cluster); the breakdown shape — synthesis-dominated here,
 * since our partitioner is O(gates) — is what the harness reports.
 */

#include "bench_common.hh"

int
main()
{
    using namespace quest;
    using namespace quest::bench;

    banner("Figure 12: QUEST build-time overhead per stage");

    Table table({"benchmark", "total_s", "partition%", "synthesis%",
                 "annealing%"});
    QuestPipeline pipeline(benchConfig());

    for (const auto &spec : suite()) {
        QuestResult r = pipeline.run(spec.build());
        double total = r.partitionSeconds + r.synthesisSeconds +
                       r.annealSeconds;
        auto pct = [&](double s) {
            return Table::pct(total > 0 ? s / total : 0.0);
        };
        table.addRow({spec.name, Table::num(total, 2),
                      pct(r.partitionSeconds),
                      pct(r.synthesisSeconds),
                      pct(r.annealSeconds)});
    }
    finishBench("fig12_overhead", table);
    std::cout << "\nExpected shape (paper): a one-time cost of minutes "
                 "to hours per circuit, dominated by one stage "
                 "(partitioning in the paper's Python stack, synthesis "
                 "in this C++ stack); annealing is never dominant.\n";
    return 0;
}
