/**
 * @file
 * Shared helpers for the per-figure experiment harnesses.
 *
 * Each bench binary regenerates one table or figure of the paper and
 * prints the corresponding rows/series. Synthesis budgets are tuned
 * for a single-core machine: they reproduce the paper's trends in
 * minutes, not its absolute cluster-scale costs (see EXPERIMENTS.md).
 */

#ifndef QUEST_BENCH_COMMON_HH
#define QUEST_BENCH_COMMON_HH

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "algos/algorithms.hh"
#include "baseline/pass_manager.hh"
#include "ir/lower.hh"
#include "metrics/magnetization.hh"
#include "metrics/output_distance.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "quest/ensemble.hh"
#include "quest/pipeline.hh"
#include "sim/simulator.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace quest::bench {

/** Paper setting: trials per hardware experiment. */
constexpr int kShots = 8192;

/**
 * True when QUEST_BENCH_SMOKE is set: CI smoke runs shrink the
 * synthesis budgets and the benchmark suite so a figure harness
 * finishes in seconds while still exercising every stage.
 */
inline bool
smokeMode()
{
    static const bool on = std::getenv("QUEST_BENCH_SMOKE") != nullptr;
    return on;
}

/** Single-core synthesis budget used by every figure harness. */
inline QuestConfig
benchConfig()
{
    QuestConfig cfg;
    cfg.synth.beamWidth = 1;
    cfg.synth.inst.multistarts = 2;
    cfg.synth.inst.lbfgs.maxIterations = 250;
    cfg.synth.maxLayers = 16;
    cfg.synth.candidatesPerLevel = 6;
    cfg.synth.stallLevels = 8;
    cfg.anneal.maxIterations = 400;
    if (smokeMode()) {
        cfg.synth.inst.multistarts = 1;
        cfg.synth.inst.lbfgs.maxIterations = 60;
        cfg.synth.maxLayers = 6;
        cfg.synth.candidatesPerLevel = 3;
        cfg.synth.stallLevels = 3;
        cfg.anneal.maxIterations = 80;
        cfg.maxSamples = 4;
    }
    return cfg;
}

/**
 * Per-job deadline safety valve for the service load harness: smoke
 * runs cap every job at a generous wall-clock budget so a wedged job
 * fails the CI run loudly (Expired, exit 12) instead of hanging it;
 * full runs are uncapped.
 */
inline double
smokeJobDeadlineSeconds()
{
    return smokeMode() ? 30.0 : 0.0;
}

/** The evaluation suite, truncated to its head in smoke mode. */
inline std::vector<algos::BenchmarkSpec>
suite()
{
    auto specs = algos::standardSuite();
    if (smokeMode() && specs.size() > 2)
        specs.resize(2);
    return specs;
}

/** Banner naming the figure a binary regenerates. */
inline void
banner(const std::string &title)
{
    std::cout << "==== " << title << " ====\n";
}

/** TVD between a configuration's noisy output and the ground truth. */
inline double
noisyTvd(const Circuit &circuit, const Distribution &truth,
         NoiseModel noise, uint64_t seed, int shots = kShots)
{
    NoisySimulator sim(noise, seed);
    return tvd(sim.run(circuit, shots), truth);
}

/** Noisy QUEST ensemble TVD against the ground truth. */
inline double
questNoisyTvd(const QuestResult &result, const Distribution &truth,
              NoiseModel noise, uint64_t seed, bool apply_qiskit = true,
              int shots = kShots)
{
    EnsembleOptions opts;
    opts.noise = noise;
    opts.shots = shots;
    opts.applyQiskit = apply_qiskit;
    opts.seed = seed;
    return tvd(ensembleDistribution(result, opts), truth);
}

/**
 * Write the figure's result table plus the current metrics snapshot
 * as BENCH_<name>.json (schema "quest-bench-v1") into
 * $QUEST_BENCH_JSON_DIR, so CI can archive machine-readable records
 * of every harness run. A no-op when the variable is unset.
 */
inline void
writeBenchJson(const std::string &name, const Table &table)
{
    const char *dir = std::getenv("QUEST_BENCH_JSON_DIR");
    if (!dir)
        return;
    std::filesystem::path path =
        std::filesystem::path(dir) / ("BENCH_" + name + ".json");
    std::ofstream out(path);
    if (!out)
        fatal("cannot write ", path.string());

    obs::JsonWriter json(out);
    json.beginObject();
    json.key("schema").value("quest-bench-v1");
    json.key("bench").value(name);
    json.key("smoke").value(smokeMode());
    json.key("headers").beginArray();
    for (const std::string &h : table.headerRow())
        json.value(h);
    json.endArray();
    json.key("rows").beginArray();
    for (const auto &row : table.rowData()) {
        json.beginArray();
        for (const std::string &cell : row)
            json.value(cell);
        json.endArray();
    }
    json.endArray();
    json.key("metrics").beginArray();
    for (const obs::MetricSnapshot &m :
         obs::MetricsRegistry::global().snapshot()) {
        json.beginObject();
        json.key("name").value(m.name);
        switch (m.kind) {
          case obs::MetricKind::Counter:
            json.key("kind").value("counter");
            json.key("value").value(m.count);
            break;
          case obs::MetricKind::Gauge:
            json.key("kind").value("gauge");
            json.key("value").value(m.gaugeValue);
            break;
          case obs::MetricKind::Histogram:
            json.key("kind").value("histogram");
            json.key("count").value(m.count);
            json.key("sum").value(m.sum);
            json.key("min").value(m.min);
            json.key("max").value(m.max);
            json.key("mean").value(m.mean);
            break;
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
    out << "\n";
    std::cout << "bench json written to " << path.string() << "\n";
}

/** Print the figure table and archive its JSON record. */
inline void
finishBench(const std::string &name, const Table &table)
{
    table.print(std::cout);
    writeBenchJson(name, table);
}

} // namespace quest::bench

#endif // QUEST_BENCH_COMMON_HH
