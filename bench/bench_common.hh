/**
 * @file
 * Shared helpers for the per-figure experiment harnesses.
 *
 * Each bench binary regenerates one table or figure of the paper and
 * prints the corresponding rows/series. Synthesis budgets are tuned
 * for a single-core machine: they reproduce the paper's trends in
 * minutes, not its absolute cluster-scale costs (see EXPERIMENTS.md).
 */

#ifndef QUEST_BENCH_COMMON_HH
#define QUEST_BENCH_COMMON_HH

#include <iostream>
#include <string>

#include "algos/algorithms.hh"
#include "baseline/pass_manager.hh"
#include "ir/lower.hh"
#include "metrics/magnetization.hh"
#include "metrics/output_distance.hh"
#include "quest/ensemble.hh"
#include "quest/pipeline.hh"
#include "sim/simulator.hh"
#include "util/table.hh"

namespace quest::bench {

/** Paper setting: trials per hardware experiment. */
constexpr int kShots = 8192;

/** Single-core synthesis budget used by every figure harness. */
inline QuestConfig
benchConfig()
{
    QuestConfig cfg;
    cfg.synth.beamWidth = 1;
    cfg.synth.inst.multistarts = 2;
    cfg.synth.inst.lbfgs.maxIterations = 250;
    cfg.synth.maxLayers = 16;
    cfg.synth.candidatesPerLevel = 6;
    cfg.synth.stallLevels = 8;
    cfg.anneal.maxIterations = 400;
    return cfg;
}

/** Banner naming the figure a binary regenerates. */
inline void
banner(const std::string &title)
{
    std::cout << "==== " << title << " ====\n";
}

/** TVD between a configuration's noisy output and the ground truth. */
inline double
noisyTvd(const Circuit &circuit, const Distribution &truth,
         NoiseModel noise, uint64_t seed, int shots = kShots)
{
    NoisySimulator sim(noise, seed);
    return tvd(sim.run(circuit, shots), truth);
}

/** Noisy QUEST ensemble TVD against the ground truth. */
inline double
questNoisyTvd(const QuestResult &result, const Distribution &truth,
              NoiseModel noise, uint64_t seed, bool apply_qiskit = true,
              int shots = kShots)
{
    EnsembleOptions opts;
    opts.noise = noise;
    opts.shots = shots;
    opts.applyQiskit = apply_qiskit;
    opts.seed = seed;
    return tvd(ensembleDistribution(result, opts), truth);
}

} // namespace quest::bench

#endif // QUEST_BENCH_COMMON_HH
