/**
 * @file
 * Fig. 9: output distance (TVD and JSD) between the ground-truth
 * Baseline output and QUEST's averaged noiseless ensemble output —
 * approximation error alone, without hardware noise.
 *
 * Includes the selector ablation from DESIGN.md: QUEST's dissimilar
 * selection vs taking only the minimum-CNOT sample.
 */

#include "bench_common.hh"

int
main()
{
    using namespace quest;
    using namespace quest::bench;

    banner("Figure 9: ideal-simulation output distance of QUEST");

    Table table({"benchmark", "samples", "tvd", "jsd", "tvd_minCX_only"});

    QuestPipeline pipeline(benchConfig());
    for (const auto &spec : algos::standardSuite()) {
        Circuit baseline = lowerToNative(spec.build());
        Distribution truth = idealDistribution(baseline);

        QuestResult result = pipeline.run(spec.build());
        Distribution ensemble = ensembleDistribution(result);

        // Ablation: only the single lowest-CNOT sample (the first
        // selected one), no averaging.
        size_t min_idx = 0;
        for (size_t i = 1; i < result.samples.size(); ++i)
            if (result.samples[i].cnotCount <
                result.samples[min_idx].cnotCount)
                min_idx = i;
        Distribution lone =
            idealDistribution(result.samples[min_idx].circuit);

        table.addRow({spec.name,
                      std::to_string(result.samples.size()),
                      Table::num(tvd(truth, ensemble), 4),
                      Table::num(jsd(truth, ensemble), 4),
                      Table::num(tvd(truth, lone), 4)});
    }
    finishBench("fig09_output_distance", table);
    std::cout << "\nExpected shape (paper): both metrics stay low "
                 "(approximately 0.0-0.1) across all algorithms "
                 "despite the CNOT reduction; the averaged ensemble "
                 "is at least as reliable as any single low-CNOT "
                 "sample.\n";
    return 0;
}
