/**
 * @file
 * Fig. 4: CNOT count vs output distance (TVD) for several exactly
 * synthesized solutions of a four-qubit VQE circuit. All solutions
 * share a tight process distance, yet their TVDs span a wide range —
 * and the minimum-CNOT solution is not the minimum-TVD one, which is
 * the motivation for approximate (rather than exact) synthesis.
 */

#include "bench_common.hh"

#include "linalg/distance.hh"
#include "synth/leap_synthesizer.hh"

int
main()
{
    using namespace quest;
    using namespace quest::bench;

    banner("Figure 4: exact syntheses of a 4-qubit VQE circuit");

    Circuit baseline = lowerToNative(algos::vqe(4, 4));
    Matrix target = circuitUnitary(baseline);
    Distribution truth = idealDistribution(baseline);

    std::vector<std::pair<int, int>> skeleton;
    for (const Gate &g : baseline)
        if (g.type == GateType::CX)
            skeleton.emplace_back(g.qubits[0], g.qubits[1]);

    // Collect many solutions by running the compiler under several
    // seeds and keeping every candidate below the exactness
    // threshold (relaxed from the paper's 1e-5 to 5e-2 to match this
    // harness's single-core optimization budget).
    const double exact_threshold = 5e-2;
    const int seeds = 4;
    std::vector<SynthCandidate> solutions;
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
        SynthConfig cfg = benchConfig().synth;
        cfg.seed = seed;
        cfg.extraLevels = 4;
        cfg.stallLevels = 20;  // never stall before the skeleton depth
        cfg.inst.multistarts = 4;
        cfg.inst.lbfgs.maxIterations = 400;
        LeapSynthesizer synth(cfg);
        // Allow a couple of levels above the original count so the
        // above-minimum exact solutions the paper plots also appear.
        SynthOutput out = synth.synthesize(
            target, static_cast<int>(baseline.cnotCount()) + 2,
            &skeleton);
        for (const SynthCandidate &c : out.candidates)
            if (c.distance < exact_threshold)
                solutions.push_back(c);
    }

    // The paper's TVDs come from executing each exact solution on
    // the noisy device: equal process distances do not imply equal
    // noisy outputs, because gate counts and structures differ.
    Table table({"cnots", "process_distance", "noisy_tvd"});
    int min_cnots = 1 << 30;
    double min_cnot_tvd = 0.0, best_tvd = 1.0;
    uint64_t run = 0;
    for (const SynthCandidate &c : solutions) {
        NoisySimulator sim(NoiseModel::ibmqManila(), 60 + run++);
        double t = tvd(truth, sim.run(c.circuit, kShots));
        table.addRow({std::to_string(c.cnotCount),
                      Table::num(c.distance, 6), Table::num(t, 5)});
        if (c.cnotCount < min_cnots) {
            min_cnots = c.cnotCount;
            min_cnot_tvd = t;
        }
        best_tvd = std::min(best_tvd, t);
    }
    finishBench("fig04_exact_synthesis", table);

    std::cout << "\nsolutions: " << solutions.size()
              << "; min-CNOT solution TVD = " << Table::num(min_cnot_tvd, 5)
              << "; best TVD among all = " << Table::num(best_tvd, 5)
              << "\nExpected shape (paper): similar process distances "
                 "but a wide TVD range; the fewest-CNOT solution is "
                 "not the lowest-TVD one.\n";
    return 0;
}
