#!/usr/bin/env python3
"""Check that relative markdown links in the repo's docs resolve.

Scans every top-level *.md plus docs/*.md for [text](target) links and
verifies each relative target exists (anchors and external URLs are
skipped). Exits 1 listing every broken link. Run from anywhere:

    python3 tools/check_doc_links.py
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — stops at the first ')' so "(see [x](y))" works;
# images ![alt](img) match too, which is what we want.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# `code` spans can contain [i](j)-looking indexing; strip them first.
CODE_SPAN = re.compile(r"`[^`]*`")
CODE_FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.M | re.S)


def doc_files():
    yield from sorted(REPO.glob("*.md"))
    yield from sorted((REPO / "docs").glob("*.md"))


def check(path):
    text = CODE_SPAN.sub("", CODE_FENCE.sub("", path.read_text()))
    broken = []
    for target in LINK.findall(text):
        if re.match(r"[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
            continue
        if target.startswith("#"):  # in-page anchor
            continue
        rel = target.split("#", 1)[0]
        if not (path.parent / rel).exists():
            broken.append(target)
    return broken


def main():
    failures = 0
    for path in doc_files():
        for target in check(path):
            print(f"{path.relative_to(REPO)}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"{failures} broken link(s)")
        return 1
    print(f"all links resolve in {len(list(doc_files()))} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
