#!/usr/bin/env python3
"""Check that the repo's docs stay truthful: links, anchors, paths.

Scans every top-level *.md plus docs/*.md and verifies

  - [text](target) relative links resolve to an existing file;
  - intra-doc anchors — both [x](#heading) and [x](FILE.md#heading) —
    name a real heading in the target file (GitHub slug rules);
  - code-path references (src/..., tools/..., bench/..., tests/...,
    examples/..., docs/...) point at files or directories that exist,
    so renames can't silently strand the prose. A bare stem like
    src/quest/bound resolves through its .hh/.cc/.py siblings; line
    suffixes (:123) and trailing punctuation are ignored, and tokens
    containing placeholders (<...>, *, ...) are skipped.

Exits 1 listing every violation. Run from anywhere:

    python3 tools/check_doc_links.py
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — stops at the first ')' so "(see [x](y))" works;
# images ![alt](img) match too, which is what we want.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# `code` spans can contain [i](j)-looking indexing; strip them first.
CODE_SPAN = re.compile(r"`[^`]*`")
CODE_FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.M | re.S)

HEADING = re.compile(r"^#{1,6}[ \t]+(.*?)[ \t]*$", re.M)

# A code-path reference anywhere in the text (prose, spans, fences).
# Restricted to the repo's real top-level trees so output listings
# like out/samples/... are not flagged; the lookbehind keeps
# build/examples/quickstart from matching at "examples/".
CODE_PATH = re.compile(
    r"(?<![\w/-])((?:src|tools|bench|tests|examples|docs)"
    r"/[A-Za-z0-9_./*<>-]+)"
)

PATH_SUFFIXES = ("", ".hh", ".cc", ".py", ".md")


# Meta/log files whose prose legitimately names paths that no longer
# (or don't yet) exist: the PR log, the issue driver, paper notes.
SKIP = {"ISSUE.md", "CHANGES.md", "SNIPPETS.md", "PAPER.md",
        "PAPERS.md"}


def doc_files():
    for path in sorted(REPO.glob("*.md")):
        if path.name not in SKIP:
            yield path
    yield from sorted((REPO / "docs").glob("*.md"))


def slugify(heading):
    """GitHub's anchor algorithm: lowercase, drop punctuation, dashes
    for spaces. Markdown code spans and links reduce to their text."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path, cache={}):
    """All valid anchor slugs in a markdown file (duplicate headings
    get -1, -2, ... suffixes, as on GitHub)."""
    if path not in cache:
        slugs = set()
        counts = {}
        text = CODE_FENCE.sub("", path.read_text())
        for heading in HEADING.findall(text):
            slug = slugify(heading)
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = slugs
    return cache[path]


def code_path_ok(token):
    token = token.rstrip(".,;:!?*")
    token = re.sub(r":\d+$", "", token)
    if "..." in token or "<" in token or "*" in token:
        return True  # placeholder, not a concrete reference
    if token.endswith("/"):
        token = token[:-1]
    for suffix in PATH_SUFFIXES:
        if (REPO / (token + suffix)).exists():
            return True
    return False


def check(path):
    raw = path.read_text()
    prose = CODE_SPAN.sub("", CODE_FENCE.sub("", raw))
    problems = []

    for target in LINK.findall(prose):
        if re.match(r"[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
            continue
        rel, sep, anchor = target.partition("#")
        dest = path if not rel else (path.parent / rel)
        if rel and not dest.exists():
            problems.append(f"broken link -> {target}")
            continue
        if sep and dest.suffix == ".md":
            if anchor not in anchors_of(dest.resolve()):
                problems.append(f"broken anchor -> {target}")

    for token in CODE_PATH.findall(raw):
        if not code_path_ok(token):
            problems.append(f"stale code path -> {token}")

    return problems


def main():
    failures = 0
    for path in doc_files():
        for problem in check(path):
            print(f"{path.relative_to(REPO)}: {problem}")
            failures += 1
    if failures:
        print(f"{failures} doc violation(s)")
        return 1
    print(f"links, anchors and code paths all resolve in "
          f"{len(list(doc_files()))} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
