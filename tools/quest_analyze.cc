/**
 * @file
 * quest_analyze — project-invariant static analysis over the QUEST
 * tree (see docs/ANALYSIS.md for the rule catalogue and annotation
 * syntax, docs/REGISTRY.md for the authoritative name tables).
 *
 * Walks src/ tools/ tests/ bench/ with a token-level C++ lexer and
 * enforces the determinism, cancellation-safety, registry-consistency
 * and error-discipline invariants as typed findings with file:line.
 *
 * Usage:
 *   quest_analyze [options] [path...]
 * Options:
 *   --root <dir>        repo root (default: .)
 *   --json <file|->     also write quest-analyze-v1 JSON
 *   --dump-registry=<code|docs>
 *                       print the canonical registry manifest
 *                       extracted from the tree (code) or parsed
 *                       from docs/REGISTRY.md (docs), then exit;
 *                       CI diffs the two
 *   --no-stale          skip documented-but-unused checks
 *   --list-rules        print every rule id and exit
 *   --quiet             no text report; exit status only
 *   [path...]           repo-relative files/dirs to scan instead of
 *                       the default roots (disables stale checks)
 *
 * Exit status: 0 clean, 1 findings, 2 usage or I/O error.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "analysis/rules.hh"
#include "resilience/error.hh"

namespace {

using namespace quest;

int
usage()
{
    std::cerr
        << "usage: quest_analyze [--root dir] [--json file|-]\n"
        << "                     [--dump-registry=code|docs]\n"
        << "                     [--no-stale] [--list-rules]"
        << " [--quiet] [path...]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    analysis::AnalyzerConfig config;
    std::string jsonPath;
    std::string dumpRegistry;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            config.root = argv[++i];
        } else if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (arg.rfind("--dump-registry", 0) == 0) {
            const size_t eq = arg.find('=');
            dumpRegistry = eq == std::string::npos
                               ? "code"
                               : arg.substr(eq + 1);
            if (dumpRegistry != "code" && dumpRegistry != "docs") {
                std::cerr << "quest_analyze: --dump-registry takes "
                          << "'code' or 'docs'\n";
                return 2;
            }
        } else if (arg == "--no-stale") {
            config.checkStale = false;
        } else if (arg == "--quiet" || arg == "-q") {
            quiet = true;
        } else if (arg == "--list-rules") {
            for (const analysis::RuleInfo &rule : analysis::allRules())
                std::cout << rule.id << "  " << rule.summary << "\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option: " << arg << "\n";
            return usage();
        } else {
            config.paths.push_back(arg);
        }
    }

    try {
        const analysis::Report report = analysis::analyze(config);

        if (!dumpRegistry.empty()) {
            std::cout << (dumpRegistry == "docs"
                              ? analysis::renderManifest(report.doc)
                              : analysis::renderManifest(report.code));
            return 0;
        }

        if (!jsonPath.empty()) {
            if (jsonPath == "-") {
                analysis::writeJson(std::cout, report);
            } else {
                std::ofstream out(jsonPath);
                if (!out) {
                    std::cerr << "quest_analyze: cannot write "
                              << jsonPath << "\n";
                    return 2;
                }
                analysis::writeJson(out, report);
            }
        }
        if (!quiet)
            analysis::writeText(std::cout, report);
        return report.clean() ? 0 : 1;
    } catch (const resilience::QuestError &e) {
        std::cerr << "quest_analyze: " << e.what() << "\n";
        return 2;
    }
}
