/**
 * @file
 * quest_lint — structural linter for OpenQASM circuits and QUEST
 * pipeline outputs.
 *
 * For every input file: parse it, run the CircuitVerifier, and print
 * each issue as `file:gate: message`. With --pipeline the tool also
 * lowers the circuit, checks native-gate conformance, partitions it
 * and checks partition coverage, then runs the full QUEST pipeline
 * and lints every per-block approximation and selected sample —
 * reporting problems instead of aborting, so it can be pointed at
 * untrusted inputs.
 *
 * Usage:
 *   quest_lint [options] <input.qasm>...
 * Options:
 *   --native         require the native {U3, CX} gate set up front
 *   --pipeline       run and lint the full QUEST pipeline
 *   --block-size <k> partition width for --pipeline (default 4)
 *   --max-layers <l> synthesis layer cap for --pipeline (default 6)
 *   --quiet          print nothing; exit status only
 *
 * Exit status: 0 all inputs clean, 1 lint issues found, 2 usage or
 * I/O error.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ir/lower.hh"
#include "ir/qasm.hh"
#include "partition/scan_partitioner.hh"
#include "quest/pipeline.hh"
#include "verify/verifier.hh"

namespace {

using namespace quest;

struct LintOptions
{
    bool native = false;
    bool pipeline = false;
    bool quiet = false;
    int blockSize = 4;
    int maxLayers = 6;
};

int
usage()
{
    std::cerr << "usage: quest_lint [--native] [--pipeline]"
              << " [--block-size k] [--max-layers l] [--quiet]"
              << " <input.qasm>...\n";
    return 2;
}

/** Parse a positive integer option value; false on garbage. */
bool
parsePositiveInt(const std::string &option, const std::string &text,
                 int min_value, int &out)
{
    try {
        size_t used = 0;
        int value = std::stoi(text, &used);
        if (used != text.size() || value < min_value) {
            std::cerr << "quest_lint: " << option << " needs an "
                      << "integer >= " << min_value << ", got '"
                      << text << "'\n";
            return false;
        }
        out = value;
        return true;
    } catch (const std::exception &) {
        std::cerr << "quest_lint: " << option << " needs an integer"
                  << " >= " << min_value << ", got '" << text
                  << "'\n";
        return false;
    }
}

/** Print a report's issues as `file[ (context)]:gate: message`. */
void
printReport(const std::string &file, const std::string &context,
            const VerifyReport &report, const LintOptions &opts)
{
    if (opts.quiet)
        return;
    for (const VerifyIssue &issue : report.issues) {
        std::cout << file;
        if (!context.empty())
            std::cout << " (" << context << ")";
        if (issue.gateIndex != VerifyIssue::noIndex)
            std::cout << ":gate " << issue.gateIndex;
        std::cout << ": " << issue.message << "\n";
    }
}

/** Lint one file; returns the number of issues found (or -1 on I/O
 *  or parse error, which the caller treats as fatal). */
long
lintFile(const std::string &path, const LintOptions &opts)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "quest_lint: cannot open " << path << "\n";
        return -1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    Circuit circuit;
    try {
        circuit = parseQasm(buffer.str());
    } catch (const QasmError &e) {
        std::cerr << path << ": QASM parse error: " << e.what()
                  << "\n";
        return -1;
    }

    long issues = 0;
    CircuitVerifier verifier({.requireNative = opts.native});
    VerifyReport report = verifier.verify(circuit);
    printReport(path, "", report, opts);
    issues += static_cast<long>(report.issues.size());

    if (!opts.pipeline)
        return issues;

    // Lower and partition, linting each stage the way the pipeline's
    // own (panicking) verifiers would.
    Circuit lowered = lowerToNative(circuit).withoutPseudoOps();
    CircuitVerifier native_verifier({.requireNative = true,
                                     .allowPseudoOps = false});
    report = native_verifier.verify(lowered);
    printReport(path, "lowered", report, opts);
    issues += static_cast<long>(report.issues.size());

    if (lowered.empty()) {
        if (!opts.quiet)
            std::cout << path << ": empty circuit; skipping the "
                      << "pipeline stages\n";
        return issues + 1;
    }

    ScanPartitioner partitioner(opts.blockSize);
    std::vector<Block> blocks = partitioner.partition(lowered);
    report = PartitionVerifier(opts.blockSize).verify(lowered, blocks);
    printReport(path, "partition", report, opts);
    issues += static_cast<long>(report.issues.size());

    // Full pipeline with the in-pipeline verifiers off — this tool
    // reports findings rather than aborting on them.
    QuestConfig config;
    config.verify = false;
    config.synth.verifyCandidates = false;
    config.maxBlockSize = opts.blockSize;
    config.synth.maxLayers = opts.maxLayers;
    config.synth.beamWidth = 1;
    config.synth.inst.multistarts = 2;
    config.synth.inst.lbfgs.maxIterations = 200;
    config.maxSamples = 4;
    QuestResult result = QuestPipeline(config).run(circuit);

    for (size_t b = 0; b < result.blockApprox.size(); ++b) {
        for (size_t k = 0; k < result.blockApprox[b].size(); ++k) {
            report = native_verifier.verify(
                result.blockApprox[b][k].circuit);
            std::ostringstream context;
            context << "block " << b << " approximation " << k;
            printReport(path, context.str(), report, opts);
            issues += static_cast<long>(report.issues.size());
        }
    }
    for (size_t s = 0; s < result.samples.size(); ++s) {
        report = native_verifier.verify(result.samples[s].circuit);
        std::ostringstream context;
        context << "sample " << s;
        printReport(path, context.str(), report, opts);
        issues += static_cast<long>(report.issues.size());
    }
    if (!opts.quiet) {
        std::cout << path << ": pipeline produced "
                  << result.samples.size() << " samples from "
                  << result.blocks.size() << " blocks\n";
    }
    return issues;
}

} // namespace

int
main(int argc, char **argv)
{
    LintOptions opts;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--native") {
            opts.native = true;
        } else if (arg == "--pipeline") {
            opts.pipeline = true;
        } else if (arg == "--quiet" || arg == "-q") {
            opts.quiet = true;
        } else if (arg == "--block-size" && i + 1 < argc) {
            if (!parsePositiveInt(arg, argv[++i], 2, opts.blockSize))
                return usage();
        } else if (arg == "--max-layers" && i + 1 < argc) {
            if (!parsePositiveInt(arg, argv[++i], 1, opts.maxLayers))
                return usage();
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option: " << arg << "\n";
            return usage();
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty())
        return usage();

    long total = 0;
    for (const std::string &file : files) {
        long issues = lintFile(file, opts);
        if (issues < 0)
            return 2;
        total += issues;
        if (!opts.quiet && issues == 0)
            std::cout << file << ": clean\n";
    }
    return total == 0 ? 0 : 1;
}
