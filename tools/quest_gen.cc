/**
 * @file
 * quest_gen — export a named benchmark circuit as OpenQASM 2.0.
 *
 * The generators (src/algos) are the same deterministic builders the
 * bench harnesses compile, so quest_gen is the quickest way to
 * produce an input for quest_compile — including the 64/96/128-qubit
 * scaling instances that motivate `quest_compile --large`
 * (docs/USER_GUIDE.md walks through both).
 *
 * Usage:
 *   quest_gen --list             list every available circuit name
 *   quest_gen <name> [out.qasm]  write the circuit (stdout without a
 *                                path)
 *
 * Exit codes: 0 success, 2 usage, 10 unknown circuit name, 11 I/O.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algos/algorithms.hh"
#include "ir/qasm.hh"
#include "resilience/error.hh"

namespace {

using namespace quest;

/** Everything quest_gen can emit: the paper's small-circuit suite
 *  plus the 64-128-qubit scaling suite. */
std::vector<algos::BenchmarkSpec>
allSpecs()
{
    std::vector<algos::BenchmarkSpec> specs = algos::standardSuite();
    for (auto &spec : algos::largeSuite())
        specs.push_back(std::move(spec));
    return specs;
}

int
usage()
{
    std::cerr << "usage: quest_gen --list | quest_gen <name> "
                 "[out.qasm]\n";
    return 2;
}

int
runGen(int argc, char **argv)
{
    const std::vector<algos::BenchmarkSpec> specs = allSpecs();

    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty() || args.size() > 2)
        return usage();

    if (args[0] == "--list") {
        if (args.size() != 1)
            return usage();
        for (const auto &spec : specs)
            std::cout << spec.name << " (" << spec.nQubits
                      << " qubits)\n";
        return 0;
    }

    const algos::BenchmarkSpec *found = nullptr;
    for (const auto &spec : specs)
        if (spec.name == args[0])
            found = &spec;
    if (!found) {
        throw resilience::QuestError(
            resilience::ErrorCategory::InvalidInput,
            "unknown circuit '" + args[0] +
                "' (quest_gen --list prints the choices)");
    }

    const std::string qasm = toQasm(found->build());
    if (args.size() == 2) {
        std::ofstream out(args[1]);
        if (!out || !(out << qasm) || !out.flush()) {
            throw resilience::QuestError(
                resilience::ErrorCategory::Io,
                "cannot write '" + args[1] + "'");
        }
        std::cout << found->name << ": " << found->nQubits
                  << " qubits written to " << args[1] << "\n";
    } else {
        std::cout << qasm;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runGen(argc, argv);
    } catch (const quest::resilience::QuestError &e) {
        std::cerr << "quest_gen: " << e.what() << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << "quest_gen: internal: " << e.what() << "\n";
        return quest::resilience::exitCodeFor(
            quest::resilience::ErrorCategory::Internal);
    }
}
