/**
 * @file
 * quest_compile — command-line front end mirroring the paper
 * artifact's workflow (Appendix A.5): read an OpenQASM 2.0 circuit,
 * run the QUEST pipeline, and write the intermediate and final
 * artifacts into an output directory:
 *
 *   out/
 *     blocks/qasm_block_<id>.qasm        partitioned blocks
 *     approximations/block_<id>_<k>.qasm per-block approximations
 *     samples/sample_<s>.qasm            selected full circuits
 *     summary.txt                        counts, bounds, timings
 *
 * Usage:
 *   quest_compile [options] <input.qasm> [output-dir]
 *
 * Without an output directory only the summary (and any requested
 * observability output) is printed.
 *
 * Options:
 *   --large            block-only (BlockBound) mode for 64+-qubit
 *                      circuits: select and certify via the Theorem-1
 *                      bound only, never building a full unitary or
 *                      statevector (docs/USER_GUIDE.md)
 *   --threshold <t>    per-block threshold (default 0.3)
 *   --max-samples <m>  ensemble size cap (default 16)
 *   --max-layers <l>   synthesis layer cap (default 16)
 *   --block-size <k>   partition width (default 4)
 *   --seed <s>         master seed (default 99)
 *   --threads <n>      synthesis worker threads (default: all cores)
 *   --cache-dir <dir>  persistent synthesis cache directory
 *                      (default: $QUEST_CACHE_DIR if set)
 *   --no-cache         disable the persistent cache entirely
 *   --timeout <sec>        wall-clock ceiling for the whole run
 *   --block-timeout <sec>  per-block synthesis ceiling
 *   --fail-on-deadline     abort (exit 12) instead of degrading when
 *                          the run deadline fires
 *   --checkpoint <dir>     crash-safe run journal directory
 *   --resume               replay a matching journal in <dir>
 *   --trace <file>     write a Chrome-trace JSON of the run
 *   --stats            print span attribution + metrics tables
 *
 * Exit codes (resilience/error.hh): 0 success, 2 usage,
 * 10 invalid input, 11 I/O, 12 timeout, 13 cancelled, 14 diverged,
 * 15 resource, 70 internal. Failures print a one-line diagnostic to
 * stderr.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ir/qasm.hh"
#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "quest/ensemble.hh"
#include "quest/pipeline.hh"
#include "resilience/error.hh"
#include "service/job.hh"
#include "util/logging.hh"

namespace {

using namespace quest;

void
writeFile(const std::filesystem::path &path, const std::string &text)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write ", path.string());
    out << text;
}

int
usage()
{
    std::cerr << "usage: quest_compile [options] <input.qasm>"
              << " [output-dir]\n"
              << "options:\n"
              << "  --large          block-only mode for 64+-qubit "
                 "circuits\n"
              << "  --threshold t    per-block threshold\n"
              << "  --max-samples m  ensemble size cap\n"
              << "  --max-layers l   synthesis layer cap\n"
              << "  --block-size k   partition width\n"
              << "  --seed s         master seed\n"
              << "  --threads n      synthesis worker threads\n"
              << "  --cache-dir dir  persistent synthesis cache "
                 "(default: $QUEST_CACHE_DIR)\n"
              << "  --no-cache       disable the persistent cache\n"
              << "  --timeout sec        run wall-clock ceiling\n"
              << "  --block-timeout sec  per-block synthesis ceiling\n"
              << "  --fail-on-deadline   abort instead of degrading\n"
              << "  --checkpoint dir     crash-safe run journal\n"
              << "  --resume             replay a matching journal\n"
              << "  --trace file     write Chrome-trace JSON\n"
              << "  --stats          print span/metrics tables\n";
    return 2;
}

int
runCompile(int argc, char **argv)
{
    // The shared base config (service/job.hh): quest_served jobs
    // start from the same knobs, which is what makes a served result
    // byte-identical to a local quest_compile of the same input.
    QuestConfig config = service::baseCompileConfig();

    std::vector<std::string> positionals;
    std::string trace_path;
    std::string cache_dir;
    bool no_cache = false;
    bool print_stats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (!arg.starts_with("--")) {
            positionals.push_back(arg);
            continue;
        }
        if (arg == "--stats") {
            print_stats = true;
            continue;
        }
        if (arg == "--large") {
            config.selectionMode = SelectionMode::BlockBound;
            continue;
        }
        if (arg == "--no-cache") {
            no_cache = true;
            continue;
        }
        if (arg == "--fail-on-deadline") {
            config.deadlinePolicy = DeadlinePolicy::Fail;
            continue;
        }
        if (arg == "--resume") {
            config.resume = true;
            continue;
        }
        if (i + 1 >= argc) {
            std::cerr << "option " << arg << " needs a value\n";
            return usage();
        }
        const std::string value = argv[++i];
        try {
            if (arg == "--threshold") {
                config.thresholdPerBlock = std::stod(value);
            } else if (arg == "--max-samples") {
                config.maxSamples = std::stoi(value);
            } else if (arg == "--max-layers") {
                config.synth.maxLayers = std::stoi(value);
            } else if (arg == "--block-size") {
                config.maxBlockSize = std::stoi(value);
            } else if (arg == "--seed") {
                config.seed = std::stoull(value);
            } else if (arg == "--threads") {
                config.threads =
                    static_cast<unsigned>(std::stoul(value));
            } else if (arg == "--timeout") {
                config.runTimeoutSeconds = std::stod(value);
            } else if (arg == "--block-timeout") {
                config.blockTimeoutSeconds = std::stod(value);
            } else if (arg == "--checkpoint") {
                config.checkpointDir = value;
            } else if (arg == "--cache-dir") {
                cache_dir = value;
            } else if (arg == "--trace") {
                trace_path = value;
            } else {
                std::cerr << "unknown option: " << arg << "\n";
                return usage();
            }
        } catch (const std::exception &) {
            std::cerr << "bad value for " << arg << ": " << value
                      << "\n";
            return usage();
        }
    }

    if (positionals.empty() || positionals.size() > 2)
        return usage();
    if (no_cache) {
        config.cacheDir.clear();
    } else {
        if (cache_dir.empty()) {
            if (const char *env = std::getenv("QUEST_CACHE_DIR"))
                cache_dir = env;
        }
        config.cacheDir = cache_dir;
    }
    const std::string input_path = positionals[0];
    const bool have_out_dir = positionals.size() == 2;
    const std::filesystem::path out_dir =
        have_out_dir ? positionals[1] : "";

    std::ifstream in(input_path);
    if (!in) {
        throw resilience::QuestError(
            resilience::ErrorCategory::Io,
            "cannot open '" + input_path + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    Circuit circuit;
    try {
        circuit = parseQasm(buffer.str());
    } catch (const QasmError &e) {
        throw resilience::QuestError(
            resilience::ErrorCategory::InvalidInput,
            std::string("QASM parse error: ") + e.what())
            .withContext("parsing '" + input_path + "'");
    }

    const bool observe = print_stats || !trace_path.empty();
    if (observe) {
        obs::MetricsRegistry::global().reset();
        obs::TraceSession::global().start();
    }

    QuestPipeline pipeline(config);
    QuestResult result = pipeline.run(circuit);

    std::vector<obs::TraceEvent> events;
    if (observe) {
        obs::TraceSession::global().stop();
        events = obs::TraceSession::global().collect();
    }

    namespace fs = std::filesystem;
    if (have_out_dir) {
        fs::create_directories(out_dir / "blocks");
        fs::create_directories(out_dir / "approximations");
        fs::create_directories(out_dir / "samples");

        for (size_t b = 0; b < result.blocks.size(); ++b) {
            writeFile(out_dir / "blocks" /
                          ("qasm_block_" + std::to_string(b) + ".qasm"),
                      toQasm(result.blocks[b].circuit));
        }
        for (size_t b = 0; b < result.blockApprox.size(); ++b) {
            for (size_t k = 0; k < result.blockApprox[b].size(); ++k) {
                writeFile(out_dir / "approximations" /
                              ("block_" + std::to_string(b) + "_" +
                               std::to_string(k) + ".qasm"),
                          toQasm(result.blockApprox[b][k].circuit));
            }
        }
        for (size_t s = 0; s < result.samples.size(); ++s) {
            writeFile(out_dir / "samples" /
                          ("sample_" + std::to_string(s) + ".qasm"),
                      toQasm(result.samples[s].circuit));
        }
    }

    std::ostringstream summary;
    summary << "input: " << input_path << "\n"
            << "qubits: " << result.original.numQubits() << "\n"
            << "selection mode: "
            << selectionModeName(result.selectionMode) << "\n"
            << "original cnots: " << result.originalCnots << "\n"
            << "blocks: " << result.blocks.size() << "\n"
            << "ok blocks: " << result.okBlocks() << "\n"
            << "fallback blocks: " << result.fallbackBlocks() << "\n"
            << "threshold: " << result.threshold << "\n"
            << "samples: " << result.samples.size() << "\n";
    for (size_t s = 0; s < result.samples.size(); ++s) {
        summary << "  sample " << s << ": "
                << result.samples[s].cnotCount << " cnots, bound "
                << result.samples[s].distanceBound;
        if (result.samples[s].measured())
            summary << ", measured "
                    << result.samples[s].measuredDistance;
        summary << "\n";
    }
    // The Theorem-1 certificate: what this run proved about the
    // ensemble. The output-distance line is a heuristic estimate,
    // not a guarantee (metrics/output_distance.hh).
    const BoundCertificate &cert = result.certificate;
    summary << "certificate max bound: " << cert.maxBound
            << " (threshold " << cert.threshold << ")\n"
            << "certificate mean bound: " << cert.meanBound << "\n"
            << "certificate output-distance estimate: "
            << cert.outputEstimate << "\n";
    if (cert.measuredSamples > 0) {
        summary << "certificate max measured distance: "
                << cert.maxMeasured << " (" << cert.measuredSamples
                << "/" << result.samples.size()
                << " samples measured)\n";
    }
    // Cache attribution for this run (the counters are process-wide,
    // and quest_compile runs exactly one pipeline): misses are actual
    // LEAP searches, hits are searches avoided via in-memory dedup or
    // the persistent cache. CI greps the misses line on warm runs.
    auto &registry = obs::MetricsRegistry::global();
    summary << "min sample cnots: " << result.minSampleCnots() << "\n"
            << "synth cache hits: "
            << registry.counter("quest.synth.cache_hits").value() << "\n"
            << "synth cache misses: "
            << registry.counter("quest.synth.cache_misses").value()
            << "\n"
            << "partition seconds: " << result.partitionSeconds << "\n"
            << "synthesis seconds: " << result.synthesisSeconds << "\n"
            << "annealing seconds: " << result.annealSeconds << "\n";
    if (have_out_dir)
        writeFile(out_dir / "summary.txt", summary.str());

    std::cout << summary.str();
    if (have_out_dir)
        std::cout << "artifacts written to " << out_dir.string() << "\n";

    if (!trace_path.empty()) {
        std::ofstream trace_out(trace_path);
        if (!trace_out)
            fatal("cannot write ", trace_path);
        obs::writeChromeTrace(trace_out, events);
        std::cout << "trace written to " << trace_path << " ("
                  << events.size() << " spans";
        if (size_t dropped = obs::TraceSession::global().droppedEvents())
            std::cout << ", " << dropped << " dropped";
        std::cout << ")\n";
    }
    if (print_stats) {
        std::cout << "\n-- span attribution --\n";
        obs::spanStatsTable(events, "quest.pipeline").print(std::cout);
        std::cout << "phase coverage: "
                  << Table::pct(obs::phaseCoverage(events,
                                                   "quest.pipeline"))
                  << " of quest.pipeline\n";
        std::cout << "\n-- metrics --\n";
        obs::MetricsRegistry::global().table().print(std::cout);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runCompile(argc, argv);
    } catch (const quest::resilience::QuestError &e) {
        // One line, machine-greppable: "quest_compile: <category>:
        // <message> (<context>)".
        std::cerr << "quest_compile: " << e.what() << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << "quest_compile: internal: " << e.what() << "\n";
        return quest::resilience::exitCodeFor(
            quest::resilience::ErrorCategory::Internal);
    }
}
