/**
 * @file
 * quest_compile — command-line front end mirroring the paper
 * artifact's workflow (Appendix A.5): read an OpenQASM 2.0 circuit,
 * run the QUEST pipeline, and write the intermediate and final
 * artifacts into an output directory:
 *
 *   out/
 *     blocks/qasm_block_<id>.qasm        partitioned blocks
 *     approximations/block_<id>_<k>.qasm per-block approximations
 *     samples/sample_<s>.qasm            selected full circuits
 *     summary.txt                        counts, bounds, timings
 *
 * Usage:
 *   quest_compile <input.qasm> <output-dir> [options]
 * Options:
 *   --threshold <t>    per-block threshold (default 0.3)
 *   --max-samples <m>  ensemble size cap (default 16)
 *   --max-layers <l>   synthesis layer cap (default 16)
 *   --block-size <k>   partition width (default 4)
 *   --seed <s>         master seed (default 99)
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "ir/qasm.hh"
#include "quest/ensemble.hh"
#include "quest/pipeline.hh"
#include "util/logging.hh"

namespace {

using namespace quest;

void
writeFile(const std::filesystem::path &path, const std::string &text)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write ", path.string());
    out << text;
}

int
usage()
{
    std::cerr << "usage: quest_compile <input.qasm> <output-dir>"
              << " [--threshold t] [--max-samples m]"
              << " [--max-layers l] [--block-size k] [--seed s]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();

    const std::string input_path = argv[1];
    const std::filesystem::path out_dir = argv[2];

    QuestConfig config;
    config.synth.beamWidth = 1;
    config.synth.inst.multistarts = 2;
    config.synth.inst.lbfgs.maxIterations = 300;
    config.synth.stallLevels = 8;

    for (int i = 3; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const std::string value = argv[i + 1];
        if (flag == "--threshold") {
            config.thresholdPerBlock = std::stod(value);
        } else if (flag == "--max-samples") {
            config.maxSamples = std::stoi(value);
        } else if (flag == "--max-layers") {
            config.synth.maxLayers = std::stoi(value);
        } else if (flag == "--block-size") {
            config.maxBlockSize = std::stoi(value);
        } else if (flag == "--seed") {
            config.seed = std::stoull(value);
        } else {
            std::cerr << "unknown option: " << flag << "\n";
            return usage();
        }
    }

    std::ifstream in(input_path);
    if (!in) {
        std::cerr << "cannot open " << input_path << "\n";
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    Circuit circuit;
    try {
        circuit = parseQasm(buffer.str());
    } catch (const QasmError &e) {
        std::cerr << "QASM parse error: " << e.what() << "\n";
        return 1;
    }

    QuestPipeline pipeline(config);
    QuestResult result = pipeline.run(circuit);

    namespace fs = std::filesystem;
    fs::create_directories(out_dir / "blocks");
    fs::create_directories(out_dir / "approximations");
    fs::create_directories(out_dir / "samples");

    for (size_t b = 0; b < result.blocks.size(); ++b) {
        writeFile(out_dir / "blocks" /
                      ("qasm_block_" + std::to_string(b) + ".qasm"),
                  toQasm(result.blocks[b].circuit));
    }
    for (size_t b = 0; b < result.blockApprox.size(); ++b) {
        for (size_t k = 0; k < result.blockApprox[b].size(); ++k) {
            writeFile(out_dir / "approximations" /
                          ("block_" + std::to_string(b) + "_" +
                           std::to_string(k) + ".qasm"),
                      toQasm(result.blockApprox[b][k].circuit));
        }
    }
    for (size_t s = 0; s < result.samples.size(); ++s) {
        writeFile(out_dir / "samples" /
                      ("sample_" + std::to_string(s) + ".qasm"),
                  toQasm(result.samples[s].circuit));
    }

    std::ostringstream summary;
    summary << "input: " << input_path << "\n"
            << "qubits: " << result.original.numQubits() << "\n"
            << "original cnots: " << result.originalCnots << "\n"
            << "blocks: " << result.blocks.size() << "\n"
            << "threshold: " << result.threshold << "\n"
            << "samples: " << result.samples.size() << "\n";
    for (size_t s = 0; s < result.samples.size(); ++s) {
        summary << "  sample " << s << ": "
                << result.samples[s].cnotCount << " cnots, bound "
                << result.samples[s].distanceBound << "\n";
    }
    summary << "min sample cnots: " << result.minSampleCnots() << "\n"
            << "partition seconds: " << result.partitionSeconds << "\n"
            << "synthesis seconds: " << result.synthesisSeconds << "\n"
            << "annealing seconds: " << result.annealSeconds << "\n";
    writeFile(out_dir / "summary.txt", summary.str());

    std::cout << summary.str();
    std::cout << "artifacts written to " << out_dir.string() << "\n";
    return 0;
}
