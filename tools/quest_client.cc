/**
 * @file
 * quest_client — command-line QSV1 client for quest_served.
 *
 * Usage:
 *   quest_client --socket <path> [--retries n | --no-retry] \
 *                <command> [args]
 *
 * Transport failures (a torn or dropped connection mid-request)
 * self-heal: the client reconnects and resends idempotent requests
 * per a deterministic exponential-backoff schedule. `--retries n`
 * sets the attempt budget (default 3), `--no-retry` disables
 * healing. A submit is resent only when it carries a submission key
 * (`submit --submission-key`), because the server then dedups the
 * retry onto the original job instead of running it twice.
 *
 * Commands:
 *   submit [options] <input.qasm> [output-dir]
 *       Submit a job and wait for its result. With an output
 *       directory the selected samples land in samples/sample_<s>.qasm
 *       exactly as quest_compile would write them (byte-identical for
 *       the same input and options). Options:
 *         --threshold t  --max-samples m  --max-layers l
 *         --block-size k --seed s         --priority p
 *         --deadline sec (per-job wall-clock budget)
 *         --tenant name  (fair-share identity: quotas and weighted
 *                        round-robin group jobs by it)
 *         --submission-key key  (idempotency token: a retried
 *                        submit with the same key runs once)
 *         --large        block-only (BlockBound) mode for 64+-qubit
 *                        circuits (same as quest_compile --large)
 *         --async        print the job id and return immediately
 *   status <job-id>      print one job's state
 *   result <job-id> [output-dir]   wait for and print a job's result
 *   cancel <job-id>      cancel a queued or running job
 *   stats                print the daemon's counters and gauges
 *   shutdown [--no-drain]  stop the daemon (drain by default)
 *
 * The exit code is the job's terminal exit code (0 done, 12 expired,
 * 13 cancelled, 15 rejected, ... — docs/REGISTRY.md "Job states"),
 * so scripting against the service matches scripting quest_compile.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "resilience/error.hh"
#include "service/client.hh"
#include "util/logging.hh"
#include "util/names.hh"

namespace {

using namespace quest;
using service::QuestClient;

int
usage()
{
    std::cerr << "usage: quest_client --socket <path> "
                 "[--retries n | --no-retry] <command>\n"
              << "  --retries n   reconnect attempts on transport "
                 "failure (default 3)\n"
              << "  --no-retry    fail fast instead of healing\n"
              << "commands:\n"
              << "  submit [options] <input.qasm> [output-dir]\n"
              << "      options include --tenant name and "
                 "--submission-key key\n"
              << "  status <job-id>\n"
              << "  result <job-id> [output-dir]\n"
              << "  cancel <job-id>\n"
              << "  stats\n"
              << "  shutdown [--no-drain]\n";
    return 2;
}

void
printStatus(const service::JobStatus &status)
{
    if (!status.known) {
        std::cout << "job " << status.jobId << ": unknown\n";
        return;
    }
    std::cout << "job " << status.jobId << ": "
              << service::jobStateName(status.state);
    if (status.state == service::JobState::Queued)
        std::cout << " (position " << status.queuePosition << ")";
    if (service::isTerminalJobState(status.state))
        std::cout << " (exit code " << status.exitCode << ")";
    if (!status.detail.empty())
        std::cout << ": " << status.detail;
    std::cout << "\n";
}

/** Print a Done job's summary; write samples when @p outDir is set.
 *  Returns the job's exit code. */
int
printResult(const service::ResultReply &reply,
            const std::string &outDir)
{
    printStatus(reply.status);
    if (reply.status.state != service::JobState::Done)
        return reply.status.known ? reply.status.exitCode
                                  : names::kExitInvalidInput;

    std::cout << "qubits: " << reply.qubits << "\n"
              << "original cnots: " << reply.originalCnots << "\n"
              << "blocks: " << reply.blocks << "\n"
              << "ok blocks: " << reply.okBlocks << "\n"
              << "threshold: " << reply.threshold << "\n"
              << "samples: " << reply.samples.size() << "\n";
    for (size_t s = 0; s < reply.samples.size(); ++s) {
        std::cout << "  sample " << s << ": "
                  << reply.samples[s].cnotCount << " cnots, bound "
                  << reply.samples[s].distanceBound << "\n";
    }
    if (!outDir.empty()) {
        namespace fs = std::filesystem;
        fs::create_directories(fs::path(outDir) / "samples");
        for (size_t s = 0; s < reply.samples.size(); ++s) {
            const fs::path path =
                fs::path(outDir) / "samples" /
                ("sample_" + std::to_string(s) + ".qasm");
            std::ofstream out(path);
            if (!out)
                fatal("cannot write ", path.string());
            out << reply.samples[s].qasm;
        }
        std::cout << "samples written to " << outDir << "\n";
    }
    return 0;
}

int
runSubmit(QuestClient &client, const std::vector<std::string> &args)
{
    service::SubmitRequest request;
    int32_t priority = 0;
    bool async = false;
    std::vector<std::string> positionals;

    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (!arg.starts_with("--")) {
            positionals.push_back(arg);
            continue;
        }
        if (arg == "--async") {
            async = true;
            continue;
        }
        if (arg == "--large") {
            request.options.selectionMode = SelectionMode::BlockBound;
            continue;
        }
        if (i + 1 >= args.size()) {
            std::cerr << "option " << arg << " needs a value\n";
            return usage();
        }
        const std::string value = args[++i];
        try {
            if (arg == "--threshold") {
                request.options.threshold = std::stod(value);
            } else if (arg == "--max-samples") {
                request.options.maxSamples = std::stoi(value);
            } else if (arg == "--max-layers") {
                request.options.maxLayers = std::stoi(value);
            } else if (arg == "--block-size") {
                request.options.blockSize = std::stoi(value);
            } else if (arg == "--seed") {
                request.options.seed = std::stoull(value);
            } else if (arg == "--priority") {
                priority = std::stoi(value);
            } else if (arg == "--deadline") {
                request.deadlineSeconds = std::stod(value);
            } else if (arg == "--tenant") {
                request.tenant = value;
            } else if (arg == "--submission-key") {
                request.submissionKey = value;
            } else {
                std::cerr << "unknown option: " << arg << "\n";
                return usage();
            }
        } catch (const std::exception &) {
            std::cerr << "bad value for " << arg << ": " << value
                      << "\n";
            return usage();
        }
    }
    if (positionals.empty() || positionals.size() > 2)
        return usage();
    request.priority = priority;

    std::ifstream in(positionals[0]);
    if (!in) {
        throw resilience::QuestError(
            resilience::ErrorCategory::Io,
            "cannot open '" + positionals[0] + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    request.qasm = buffer.str();

    const service::SubmitReply reply = client.submit(request);
    if (!reply.accepted) {
        std::cerr << "quest_client: submit rejected: "
                  << reply.detail;
        if (reply.retryAfterSeconds > 0) {
            std::cerr << " (retry after ~" << reply.retryAfterSeconds
                      << "s)";
        }
        std::cerr << "\n";
        return names::kExitResource;
    }
    if (reply.deduplicated) {
        std::cerr << "quest_client: submission key matched job "
                  << reply.jobId << "; not resubmitted\n";
    }
    if (async) {
        std::cout << "job " << reply.jobId << ": queued\n";
        return 0;
    }
    return printResult(client.result(reply.jobId),
                       positionals.size() == 2 ? positionals[1] : "");
}

int
runClient(int argc, char **argv)
{
    std::string socket_path;
    std::string command;
    std::vector<std::string> args;
    service::RetryPolicy policy;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket" && command.empty()) {
            if (i + 1 >= argc)
                return usage();
            socket_path = argv[++i];
        } else if (arg == "--retries" && command.empty()) {
            if (i + 1 >= argc)
                return usage();
            try {
                policy.retries = std::stoi(argv[++i]);
            } catch (const std::exception &) {
                std::cerr << "bad value for --retries\n";
                return usage();
            }
        } else if (arg == "--no-retry" && command.empty()) {
            policy.retries = 0;
        } else if (command.empty()) {
            command = arg;
        } else {
            args.push_back(arg);
        }
    }
    if (socket_path.empty() || command.empty())
        return usage();

    QuestClient client = QuestClient::connect(socket_path, 5.0,
                                              policy);

    if (command == "submit")
        return runSubmit(client, args);
    if (command == "status") {
        if (args.size() != 1)
            return usage();
        printStatus(client.status(std::stoull(args[0])));
        return 0;
    }
    if (command == "result") {
        if (args.empty() || args.size() > 2)
            return usage();
        return printResult(client.result(std::stoull(args[0])),
                           args.size() == 2 ? args[1] : "");
    }
    if (command == "cancel") {
        if (args.size() != 1)
            return usage();
        const service::CancelReply reply =
            client.cancelJob(std::stoull(args[0]));
        const char *outcome = "unknown job";
        switch (reply.outcome) {
          case service::CancelOutcome::Dequeued:
            outcome = "dequeued before running";
            break;
          case service::CancelOutcome::Signalled:
            outcome = "cancellation signalled";
            break;
          case service::CancelOutcome::AlreadyDone:
            outcome = "already terminal";
            break;
          case service::CancelOutcome::Unknown:
            break;
        }
        std::cout << "job " << reply.jobId << ": " << outcome << "\n";
        return 0;
    }
    if (command == "stats") {
        for (const auto &[name, value] : client.stats().stats)
            std::cout << name << " " << value << "\n";
        return 0;
    }
    if (command == "shutdown") {
        const bool drain =
            args.empty() || args[0] != "--no-drain";
        client.shutdown(drain);
        std::cout << "shutdown requested ("
                  << (drain ? "drain" : "no drain") << ")\n";
        return 0;
    }
    std::cerr << "unknown command: " << command << "\n";
    return usage();
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runClient(argc, argv);
    } catch (const quest::resilience::QuestError &e) {
        std::cerr << "quest_client: " << e.what() << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << "quest_client: internal: " << e.what() << "\n";
        return quest::resilience::exitCodeFor(
            quest::resilience::ErrorCategory::Internal);
    }
}
