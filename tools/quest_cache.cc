/**
 * @file
 * quest_cache — inspect and maintain a persistent synthesis cache
 * directory (src/cache, format in docs/FORMATS.md).
 *
 * Usage:
 *   quest_cache stats  <cache-dir>
 *   quest_cache verify <cache-dir> [--remove]
 *   quest_cache gc     <cache-dir> <target-bytes>
 *   quest_cache clear  <cache-dir>
 *
 * `verify` fully parses every entry (header, checksum, payload) and
 * structurally lints every stored candidate circuit; it exits
 * non-zero if any entry fails, unless --remove deleted the failures.
 */

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "cache/synthesis_cache.hh"

namespace {

int
usage()
{
    std::cerr << "usage:\n"
              << "  quest_cache stats  <cache-dir>\n"
              << "  quest_cache verify <cache-dir> [--remove]\n"
              << "  quest_cache gc     <cache-dir> <target-bytes>\n"
              << "  quest_cache clear  <cache-dir>\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.size() < 2)
        return usage();
    const std::string &command = args[0];

    quest::cache::CacheConfig config;
    config.dir = args[1];
    config.maxBytes = 0; // maintenance commands never auto-evict
    quest::cache::SynthesisCache cache(config);

    if (command == "stats") {
        if (args.size() != 2)
            return usage();
        const auto s = cache.stats();
        std::cout << "dir: " << config.dir << "\n"
                  << "entries: " << s.entries << "\n"
                  << "bytes: " << s.bytes << "\n";
        return 0;
    }

    if (command == "verify") {
        bool remove = false;
        if (args.size() == 3 && args[2] == "--remove")
            remove = true;
        else if (args.size() != 2)
            return usage();

        const auto report = cache.verifyAll(remove);
        std::cout << "ok entries: " << report.ok << "\n"
                  << "corrupt entries: " << report.corrupt.size()
                  << (remove && !report.corrupt.empty() ? " (removed)"
                                                        : "")
                  << "\n";
        for (const std::string &line : report.corrupt)
            std::cout << "  " << line << "\n";
        return report.clean() || remove ? 0 : 1;
    }

    if (command == "gc") {
        if (args.size() != 3)
            return usage();
        uint64_t target = 0;
        try {
            target = std::stoull(args[2]);
        } catch (const std::exception &) {
            std::cerr << "bad byte count: " << args[2] << "\n";
            return usage();
        }
        const size_t removed = cache.gc(target);
        const auto s = cache.stats();
        std::cout << "evicted: " << removed << "\n"
                  << "entries: " << s.entries << "\n"
                  << "bytes: " << s.bytes << "\n";
        return 0;
    }

    if (command == "clear") {
        if (args.size() != 2)
            return usage();
        std::cout << "removed: " << cache.clear() << "\n";
        return 0;
    }

    std::cerr << "unknown command: " << command << "\n";
    return usage();
}
