/**
 * @file
 * quest_served — the multi-tenant QUEST compile daemon.
 *
 * Serves the QSV1 protocol (docs/FORMATS.md) on a Unix-domain
 * socket. All jobs share one cooperative thread pool, one persistent
 * synthesis cache (cross-job dedup) and one crash-safe state
 * directory; see docs/ARCHITECTURE.md "Compile service layer".
 *
 * Usage:
 *   quest_served --socket <path> [options]
 *
 * Options:
 *   --socket <path>      Unix socket to listen on (required)
 *   --state-dir <dir>    durable job journal + per-job checkpoints;
 *                        a restarted daemon replays in-flight jobs
 *   --cache-dir <dir>    shared persistent synthesis cache
 *   --cache-max-bytes n  cache size cap (default 1 GiB)
 *   --threads <n>        shared synthesis thread budget (0 = cores)
 *   --executors <n>      concurrently compiled jobs (default 2)
 *   --queue-capacity <n> admission bound; beyond it submits are
 *                        Rejected with exit code 15 (default 64)
 *   --io-timeout <sec>   per-frame socket I/O deadline: a peer that
 *                        stalls mid-frame (or stops reading) past it
 *                        is a counted drop (default 30, 0 = off)
 *   --idle-timeout <sec> reap connections with no traffic for this
 *                        long (default 300, 0 = off)
 *   --max-connections n  concurrent-connection cap; excess peers get
 *                        a resource Error frame (default 64, 0 = off)
 *   --result-wait <sec>  bound on one `result --wait` round trip;
 *                        longer waits become Retry replies the
 *                        client re-polls through (default 5, 0 = off)
 *   --tenant-max-queued n   per-tenant queued-job quota (0 = off)
 *   --tenant-max-running n  per-tenant running-job quota (0 = off)
 *   --tenant-weight t=w  round-robin weight for tenant t (repeatable;
 *                        unlisted tenants weigh 1)
 *
 * SIGINT/SIGTERM (and the protocol Shutdown message) stop the
 * daemon; a draining stop finishes queued jobs first. Exit codes
 * follow the resilience/error.hh taxonomy.
 */

#include <csignal>
#include <iostream>
#include <string>
#include <thread>

#include "resilience/error.hh"
#include "service/server.hh"
#include "util/logging.hh"

namespace {

using namespace quest;

int
usage()
{
    std::cerr
        << "usage: quest_served --socket <path> [options]\n"
        << "options:\n"
        << "  --state-dir dir      durable journal + checkpoints\n"
        << "  --cache-dir dir      shared synthesis cache\n"
        << "  --cache-max-bytes n  cache size cap\n"
        << "  --threads n          synthesis thread budget\n"
        << "  --executors n        concurrent jobs\n"
        << "  --queue-capacity n   admission bound\n"
        << "  --io-timeout sec     per-frame I/O deadline "
           "(default 30, 0 = off)\n"
        << "  --idle-timeout sec   idle-connection reaper "
           "(default 300, 0 = off)\n"
        << "  --max-connections n  concurrent-connection cap "
           "(default 64, 0 = off)\n"
        << "  --result-wait sec    bounded result --wait slice "
           "(default 5, 0 = off)\n"
        << "  --tenant-max-queued n   per-tenant queued quota "
           "(0 = off)\n"
        << "  --tenant-max-running n  per-tenant running quota "
           "(0 = off)\n"
        << "  --tenant-weight t=w  round-robin weight for tenant t "
           "(repeatable)\n";
    return 2;
}

int
runServed(int argc, char **argv)
{
    service::ServerConfig config;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (i + 1 >= argc) {
            std::cerr << "option " << arg << " needs a value\n";
            return usage();
        }
        const std::string value = argv[++i];
        try {
            if (arg == "--socket") {
                config.socketPath = value;
            } else if (arg == "--state-dir") {
                config.stateDir = value;
            } else if (arg == "--cache-dir") {
                config.cacheDir = value;
            } else if (arg == "--cache-max-bytes") {
                config.cacheMaxBytes = std::stoull(value);
            } else if (arg == "--threads") {
                config.threads =
                    static_cast<unsigned>(std::stoul(value));
            } else if (arg == "--executors") {
                config.executors =
                    static_cast<unsigned>(std::stoul(value));
            } else if (arg == "--queue-capacity") {
                config.queueCapacity = std::stoul(value);
            } else if (arg == "--io-timeout") {
                config.ioTimeoutSeconds = std::stod(value);
            } else if (arg == "--idle-timeout") {
                config.idleTimeoutSeconds = std::stod(value);
            } else if (arg == "--max-connections") {
                config.maxConnections = std::stoul(value);
            } else if (arg == "--result-wait") {
                config.maxResultWaitSeconds = std::stod(value);
            } else if (arg == "--tenant-max-queued") {
                config.tenantMaxQueued = std::stoul(value);
            } else if (arg == "--tenant-max-running") {
                config.tenantMaxRunning = std::stoul(value);
            } else if (arg == "--tenant-weight") {
                const size_t eq = value.find('=');
                if (eq == std::string::npos || eq == 0) {
                    std::cerr << "--tenant-weight wants tenant=w, "
                                 "got: "
                              << value << "\n";
                    return usage();
                }
                config.tenantWeights[value.substr(0, eq)] =
                    static_cast<uint32_t>(
                        std::stoul(value.substr(eq + 1)));
            } else {
                std::cerr << "unknown option: " << arg << "\n";
                return usage();
            }
        } catch (const std::exception &) {
            std::cerr << "bad value for " << arg << ": " << value
                      << "\n";
            return usage();
        }
    }
    if (config.socketPath.empty())
        return usage();

    // Signals are delivered to a dedicated sigwait thread so the
    // stop path is ordinary code, not an async handler.
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGINT);
    sigaddset(&signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);

    service::QuestServer server(std::move(config));
    if (server.replayedJobs() > 0) {
        inform("quest_served: replayed ", server.replayedJobs(),
               " in-flight job(s) from the journal");
    }

    std::thread([signals, &server] {
        int sig = 0;
        if (sigwait(&signals, &sig) == 0) {
            inform("quest_served: caught signal ", sig,
                   ", draining");
            server.requestStop(true);
        }
    }).detach();

    server.start();
    inform("quest_served: listening on ", server.socketPath());
    server.waitStopRequested();
    server.stop();
    inform("quest_served: stopped");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runServed(argc, argv);
    } catch (const quest::resilience::QuestError &e) {
        std::cerr << "quest_served: " << e.what() << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << "quest_served: internal: " << e.what() << "\n";
        return quest::resilience::exitCodeFor(
            quest::resilience::ErrorCategory::Internal);
    }
}
