file(REMOVE_RECURSE
  "CMakeFiles/routed_device.dir/routed_device.cpp.o"
  "CMakeFiles/routed_device.dir/routed_device.cpp.o.d"
  "routed_device"
  "routed_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routed_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
