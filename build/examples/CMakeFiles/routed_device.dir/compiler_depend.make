# Empty compiler generated dependencies file for routed_device.
# This may be replaced when dependencies are built.
