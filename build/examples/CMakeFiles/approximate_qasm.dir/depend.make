# Empty dependencies file for approximate_qasm.
# This may be replaced when dependencies are built.
