file(REMOVE_RECURSE
  "CMakeFiles/approximate_qasm.dir/approximate_qasm.cpp.o"
  "CMakeFiles/approximate_qasm.dir/approximate_qasm.cpp.o.d"
  "approximate_qasm"
  "approximate_qasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximate_qasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
