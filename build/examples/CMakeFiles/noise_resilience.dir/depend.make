# Empty dependencies file for noise_resilience.
# This may be replaced when dependencies are built.
