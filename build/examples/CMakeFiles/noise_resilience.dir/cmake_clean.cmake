file(REMOVE_RECURSE
  "CMakeFiles/noise_resilience.dir/noise_resilience.cpp.o"
  "CMakeFiles/noise_resilience.dir/noise_resilience.cpp.o.d"
  "noise_resilience"
  "noise_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
