# Empty dependencies file for materials_simulation.
# This may be replaced when dependencies are built.
