file(REMOVE_RECURSE
  "CMakeFiles/materials_simulation.dir/materials_simulation.cpp.o"
  "CMakeFiles/materials_simulation.dir/materials_simulation.cpp.o.d"
  "materials_simulation"
  "materials_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/materials_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
