file(REMOVE_RECURSE
  "CMakeFiles/quest_compile.dir/quest_compile.cc.o"
  "CMakeFiles/quest_compile.dir/quest_compile.cc.o.d"
  "quest_compile"
  "quest_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
