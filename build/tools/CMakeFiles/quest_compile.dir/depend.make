# Empty dependencies file for quest_compile.
# This may be replaced when dependencies are built.
