# Empty compiler generated dependencies file for table1_suite.
# This may be replaced when dependencies are built.
