file(REMOVE_RECURSE
  "CMakeFiles/table1_suite.dir/table1_suite.cc.o"
  "CMakeFiles/table1_suite.dir/table1_suite.cc.o.d"
  "table1_suite"
  "table1_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
