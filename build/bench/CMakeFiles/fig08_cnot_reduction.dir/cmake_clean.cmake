file(REMOVE_RECURSE
  "CMakeFiles/fig08_cnot_reduction.dir/fig08_cnot_reduction.cc.o"
  "CMakeFiles/fig08_cnot_reduction.dir/fig08_cnot_reduction.cc.o.d"
  "fig08_cnot_reduction"
  "fig08_cnot_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cnot_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
