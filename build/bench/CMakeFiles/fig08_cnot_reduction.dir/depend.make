# Empty dependencies file for fig08_cnot_reduction.
# This may be replaced when dependencies are built.
