file(REMOVE_RECURSE
  "CMakeFiles/fig15_structure.dir/fig15_structure.cc.o"
  "CMakeFiles/fig15_structure.dir/fig15_structure.cc.o.d"
  "fig15_structure"
  "fig15_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
