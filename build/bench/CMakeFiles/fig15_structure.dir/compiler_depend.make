# Empty compiler generated dependencies file for fig15_structure.
# This may be replaced when dependencies are built.
