file(REMOVE_RECURSE
  "CMakeFiles/fig04_exact_synthesis.dir/fig04_exact_synthesis.cc.o"
  "CMakeFiles/fig04_exact_synthesis.dir/fig04_exact_synthesis.cc.o.d"
  "fig04_exact_synthesis"
  "fig04_exact_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_exact_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
