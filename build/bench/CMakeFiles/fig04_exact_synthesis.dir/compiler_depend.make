# Empty compiler generated dependencies file for fig04_exact_synthesis.
# This may be replaced when dependencies are built.
