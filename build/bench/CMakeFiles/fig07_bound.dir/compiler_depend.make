# Empty compiler generated dependencies file for fig07_bound.
# This may be replaced when dependencies are built.
