file(REMOVE_RECURSE
  "CMakeFiles/fig07_bound.dir/fig07_bound.cc.o"
  "CMakeFiles/fig07_bound.dir/fig07_bound.cc.o.d"
  "fig07_bound"
  "fig07_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
