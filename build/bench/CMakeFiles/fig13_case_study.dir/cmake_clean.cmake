file(REMOVE_RECURSE
  "CMakeFiles/fig13_case_study.dir/fig13_case_study.cc.o"
  "CMakeFiles/fig13_case_study.dir/fig13_case_study.cc.o.d"
  "fig13_case_study"
  "fig13_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
