# Empty dependencies file for fig13_case_study.
# This may be replaced when dependencies are built.
