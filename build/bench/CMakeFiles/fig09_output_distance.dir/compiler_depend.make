# Empty compiler generated dependencies file for fig09_output_distance.
# This may be replaced when dependencies are built.
