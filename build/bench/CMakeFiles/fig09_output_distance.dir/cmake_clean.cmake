file(REMOVE_RECURSE
  "CMakeFiles/fig09_output_distance.dir/fig09_output_distance.cc.o"
  "CMakeFiles/fig09_output_distance.dir/fig09_output_distance.cc.o.d"
  "fig09_output_distance"
  "fig09_output_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_output_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
