file(REMOVE_RECURSE
  "CMakeFiles/fig16_threshold.dir/fig16_threshold.cc.o"
  "CMakeFiles/fig16_threshold.dir/fig16_threshold.cc.o.d"
  "fig16_threshold"
  "fig16_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
