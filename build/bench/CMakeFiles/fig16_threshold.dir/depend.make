# Empty dependencies file for fig16_threshold.
# This may be replaced when dependencies are built.
