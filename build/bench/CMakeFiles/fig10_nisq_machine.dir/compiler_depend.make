# Empty compiler generated dependencies file for fig10_nisq_machine.
# This may be replaced when dependencies are built.
