file(REMOVE_RECURSE
  "CMakeFiles/fig10_nisq_machine.dir/fig10_nisq_machine.cc.o"
  "CMakeFiles/fig10_nisq_machine.dir/fig10_nisq_machine.cc.o.d"
  "fig10_nisq_machine"
  "fig10_nisq_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_nisq_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
