file(REMOVE_RECURSE
  "CMakeFiles/fig14_case_noise.dir/fig14_case_noise.cc.o"
  "CMakeFiles/fig14_case_noise.dir/fig14_case_noise.cc.o.d"
  "fig14_case_noise"
  "fig14_case_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_case_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
