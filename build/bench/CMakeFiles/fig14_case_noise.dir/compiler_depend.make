# Empty compiler generated dependencies file for fig14_case_noise.
# This may be replaced when dependencies are built.
