file(REMOVE_RECURSE
  "CMakeFiles/fig11_noise_sweep.dir/fig11_noise_sweep.cc.o"
  "CMakeFiles/fig11_noise_sweep.dir/fig11_noise_sweep.cc.o.d"
  "fig11_noise_sweep"
  "fig11_noise_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_noise_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
