# Empty compiler generated dependencies file for fig11_noise_sweep.
# This may be replaced when dependencies are built.
