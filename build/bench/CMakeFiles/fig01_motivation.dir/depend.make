# Empty dependencies file for fig01_motivation.
# This may be replaced when dependencies are built.
