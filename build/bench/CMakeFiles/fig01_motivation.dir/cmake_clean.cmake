file(REMOVE_RECURSE
  "CMakeFiles/fig01_motivation.dir/fig01_motivation.cc.o"
  "CMakeFiles/fig01_motivation.dir/fig01_motivation.cc.o.d"
  "fig01_motivation"
  "fig01_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
