# Empty compiler generated dependencies file for ir_gate_test.
# This may be replaced when dependencies are built.
