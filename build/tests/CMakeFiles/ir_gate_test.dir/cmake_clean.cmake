file(REMOVE_RECURSE
  "CMakeFiles/ir_gate_test.dir/ir_gate_test.cc.o"
  "CMakeFiles/ir_gate_test.dir/ir_gate_test.cc.o.d"
  "ir_gate_test"
  "ir_gate_test.pdb"
  "ir_gate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_gate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
