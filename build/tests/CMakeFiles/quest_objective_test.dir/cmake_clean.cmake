file(REMOVE_RECURSE
  "CMakeFiles/quest_objective_test.dir/quest_objective_test.cc.o"
  "CMakeFiles/quest_objective_test.dir/quest_objective_test.cc.o.d"
  "quest_objective_test"
  "quest_objective_test.pdb"
  "quest_objective_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_objective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
