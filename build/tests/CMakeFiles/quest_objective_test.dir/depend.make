# Empty dependencies file for quest_objective_test.
# This may be replaced when dependencies are built.
