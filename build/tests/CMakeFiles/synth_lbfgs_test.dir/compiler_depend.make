# Empty compiler generated dependencies file for synth_lbfgs_test.
# This may be replaced when dependencies are built.
