file(REMOVE_RECURSE
  "CMakeFiles/synth_lbfgs_test.dir/synth_lbfgs_test.cc.o"
  "CMakeFiles/synth_lbfgs_test.dir/synth_lbfgs_test.cc.o.d"
  "synth_lbfgs_test"
  "synth_lbfgs_test.pdb"
  "synth_lbfgs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_lbfgs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
