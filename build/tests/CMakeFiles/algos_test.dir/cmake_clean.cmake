file(REMOVE_RECURSE
  "CMakeFiles/algos_test.dir/algos_test.cc.o"
  "CMakeFiles/algos_test.dir/algos_test.cc.o.d"
  "algos_test"
  "algos_test.pdb"
  "algos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
