# Empty dependencies file for algos_test.
# This may be replaced when dependencies are built.
