# Empty compiler generated dependencies file for anneal_test.
# This may be replaced when dependencies are built.
