file(REMOVE_RECURSE
  "CMakeFiles/quest_ensemble_test.dir/quest_ensemble_test.cc.o"
  "CMakeFiles/quest_ensemble_test.dir/quest_ensemble_test.cc.o.d"
  "quest_ensemble_test"
  "quest_ensemble_test.pdb"
  "quest_ensemble_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_ensemble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
