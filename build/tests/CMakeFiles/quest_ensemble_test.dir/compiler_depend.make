# Empty compiler generated dependencies file for quest_ensemble_test.
# This may be replaced when dependencies are built.
