file(REMOVE_RECURSE
  "CMakeFiles/sim_distribution_test.dir/sim_distribution_test.cc.o"
  "CMakeFiles/sim_distribution_test.dir/sim_distribution_test.cc.o.d"
  "sim_distribution_test"
  "sim_distribution_test.pdb"
  "sim_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
