file(REMOVE_RECURSE
  "CMakeFiles/sim_statevector_test.dir/sim_statevector_test.cc.o"
  "CMakeFiles/sim_statevector_test.dir/sim_statevector_test.cc.o.d"
  "sim_statevector_test"
  "sim_statevector_test.pdb"
  "sim_statevector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_statevector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
