# Empty compiler generated dependencies file for synth_leap_test.
# This may be replaced when dependencies are built.
