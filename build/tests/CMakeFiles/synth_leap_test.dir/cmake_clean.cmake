file(REMOVE_RECURSE
  "CMakeFiles/synth_leap_test.dir/synth_leap_test.cc.o"
  "CMakeFiles/synth_leap_test.dir/synth_leap_test.cc.o.d"
  "synth_leap_test"
  "synth_leap_test.pdb"
  "synth_leap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_leap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
