file(REMOVE_RECURSE
  "CMakeFiles/synth_ansatz_test.dir/synth_ansatz_test.cc.o"
  "CMakeFiles/synth_ansatz_test.dir/synth_ansatz_test.cc.o.d"
  "synth_ansatz_test"
  "synth_ansatz_test.pdb"
  "synth_ansatz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_ansatz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
