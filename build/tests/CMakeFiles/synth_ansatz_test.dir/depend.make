# Empty dependencies file for synth_ansatz_test.
# This may be replaced when dependencies are built.
