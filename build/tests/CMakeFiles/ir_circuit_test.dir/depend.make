# Empty dependencies file for ir_circuit_test.
# This may be replaced when dependencies are built.
