file(REMOVE_RECURSE
  "CMakeFiles/ir_circuit_test.dir/ir_circuit_test.cc.o"
  "CMakeFiles/ir_circuit_test.dir/ir_circuit_test.cc.o.d"
  "ir_circuit_test"
  "ir_circuit_test.pdb"
  "ir_circuit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_circuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
