
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/util_test.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quest/CMakeFiles/quest_core.dir/DependInfo.cmake"
  "/root/repo/build/src/anneal/CMakeFiles/quest_anneal.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/quest_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/quest_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/quest_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/quest_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/quest_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/quest_route.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/quest_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/quest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/quest_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
