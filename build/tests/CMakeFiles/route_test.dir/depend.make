# Empty dependencies file for route_test.
# This may be replaced when dependencies are built.
