# Empty dependencies file for quest_bound_test.
# This may be replaced when dependencies are built.
