file(REMOVE_RECURSE
  "CMakeFiles/quest_bound_test.dir/quest_bound_test.cc.o"
  "CMakeFiles/quest_bound_test.dir/quest_bound_test.cc.o.d"
  "quest_bound_test"
  "quest_bound_test.pdb"
  "quest_bound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
