file(REMOVE_RECURSE
  "CMakeFiles/quest_pipeline_test.dir/quest_pipeline_test.cc.o"
  "CMakeFiles/quest_pipeline_test.dir/quest_pipeline_test.cc.o.d"
  "quest_pipeline_test"
  "quest_pipeline_test.pdb"
  "quest_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
