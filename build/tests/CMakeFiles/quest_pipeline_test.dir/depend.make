# Empty dependencies file for quest_pipeline_test.
# This may be replaced when dependencies are built.
