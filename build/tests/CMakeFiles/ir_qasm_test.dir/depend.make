# Empty dependencies file for ir_qasm_test.
# This may be replaced when dependencies are built.
