file(REMOVE_RECURSE
  "CMakeFiles/ir_qasm_test.dir/ir_qasm_test.cc.o"
  "CMakeFiles/ir_qasm_test.dir/ir_qasm_test.cc.o.d"
  "ir_qasm_test"
  "ir_qasm_test.pdb"
  "ir_qasm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_qasm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
