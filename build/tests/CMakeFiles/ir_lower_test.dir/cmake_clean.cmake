file(REMOVE_RECURSE
  "CMakeFiles/ir_lower_test.dir/ir_lower_test.cc.o"
  "CMakeFiles/ir_lower_test.dir/ir_lower_test.cc.o.d"
  "ir_lower_test"
  "ir_lower_test.pdb"
  "ir_lower_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_lower_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
