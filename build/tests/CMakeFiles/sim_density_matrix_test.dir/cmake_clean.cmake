file(REMOVE_RECURSE
  "CMakeFiles/sim_density_matrix_test.dir/sim_density_matrix_test.cc.o"
  "CMakeFiles/sim_density_matrix_test.dir/sim_density_matrix_test.cc.o.d"
  "sim_density_matrix_test"
  "sim_density_matrix_test.pdb"
  "sim_density_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_density_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
