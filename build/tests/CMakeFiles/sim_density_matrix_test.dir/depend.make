# Empty dependencies file for sim_density_matrix_test.
# This may be replaced when dependencies are built.
