# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/ir_gate_test[1]_include.cmake")
include("/root/repo/build/tests/ir_circuit_test[1]_include.cmake")
include("/root/repo/build/tests/ir_lower_test[1]_include.cmake")
include("/root/repo/build/tests/ir_qasm_test[1]_include.cmake")
include("/root/repo/build/tests/sim_statevector_test[1]_include.cmake")
include("/root/repo/build/tests/sim_simulator_test[1]_include.cmake")
include("/root/repo/build/tests/sim_distribution_test[1]_include.cmake")
include("/root/repo/build/tests/sim_density_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/route_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/algos_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/synth_ansatz_test[1]_include.cmake")
include("/root/repo/build/tests/synth_lbfgs_test[1]_include.cmake")
include("/root/repo/build/tests/synth_leap_test[1]_include.cmake")
include("/root/repo/build/tests/anneal_test[1]_include.cmake")
include("/root/repo/build/tests/quest_objective_test[1]_include.cmake")
include("/root/repo/build/tests/quest_bound_test[1]_include.cmake")
include("/root/repo/build/tests/quest_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/quest_ensemble_test[1]_include.cmake")
include("/root/repo/build/tests/property_fuzz_test[1]_include.cmake")
