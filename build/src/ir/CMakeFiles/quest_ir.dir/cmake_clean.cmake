file(REMOVE_RECURSE
  "CMakeFiles/quest_ir.dir/circuit.cc.o"
  "CMakeFiles/quest_ir.dir/circuit.cc.o.d"
  "CMakeFiles/quest_ir.dir/gate.cc.o"
  "CMakeFiles/quest_ir.dir/gate.cc.o.d"
  "CMakeFiles/quest_ir.dir/lower.cc.o"
  "CMakeFiles/quest_ir.dir/lower.cc.o.d"
  "CMakeFiles/quest_ir.dir/qasm.cc.o"
  "CMakeFiles/quest_ir.dir/qasm.cc.o.d"
  "libquest_ir.a"
  "libquest_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
