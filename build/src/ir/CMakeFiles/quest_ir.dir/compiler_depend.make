# Empty compiler generated dependencies file for quest_ir.
# This may be replaced when dependencies are built.
