file(REMOVE_RECURSE
  "libquest_ir.a"
)
