
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/circuit.cc" "src/ir/CMakeFiles/quest_ir.dir/circuit.cc.o" "gcc" "src/ir/CMakeFiles/quest_ir.dir/circuit.cc.o.d"
  "/root/repo/src/ir/gate.cc" "src/ir/CMakeFiles/quest_ir.dir/gate.cc.o" "gcc" "src/ir/CMakeFiles/quest_ir.dir/gate.cc.o.d"
  "/root/repo/src/ir/lower.cc" "src/ir/CMakeFiles/quest_ir.dir/lower.cc.o" "gcc" "src/ir/CMakeFiles/quest_ir.dir/lower.cc.o.d"
  "/root/repo/src/ir/qasm.cc" "src/ir/CMakeFiles/quest_ir.dir/qasm.cc.o" "gcc" "src/ir/CMakeFiles/quest_ir.dir/qasm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/quest_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
