file(REMOVE_RECURSE
  "libquest_core.a"
)
