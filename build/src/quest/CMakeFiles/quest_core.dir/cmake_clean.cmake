file(REMOVE_RECURSE
  "CMakeFiles/quest_core.dir/bound.cc.o"
  "CMakeFiles/quest_core.dir/bound.cc.o.d"
  "CMakeFiles/quest_core.dir/ensemble.cc.o"
  "CMakeFiles/quest_core.dir/ensemble.cc.o.d"
  "CMakeFiles/quest_core.dir/objective.cc.o"
  "CMakeFiles/quest_core.dir/objective.cc.o.d"
  "CMakeFiles/quest_core.dir/pipeline.cc.o"
  "CMakeFiles/quest_core.dir/pipeline.cc.o.d"
  "libquest_core.a"
  "libquest_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
