# Empty compiler generated dependencies file for quest_core.
# This may be replaced when dependencies are built.
