file(REMOVE_RECURSE
  "CMakeFiles/quest_linalg.dir/decompose.cc.o"
  "CMakeFiles/quest_linalg.dir/decompose.cc.o.d"
  "CMakeFiles/quest_linalg.dir/distance.cc.o"
  "CMakeFiles/quest_linalg.dir/distance.cc.o.d"
  "CMakeFiles/quest_linalg.dir/embed.cc.o"
  "CMakeFiles/quest_linalg.dir/embed.cc.o.d"
  "CMakeFiles/quest_linalg.dir/matrix.cc.o"
  "CMakeFiles/quest_linalg.dir/matrix.cc.o.d"
  "libquest_linalg.a"
  "libquest_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
