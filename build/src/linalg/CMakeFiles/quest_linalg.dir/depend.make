# Empty dependencies file for quest_linalg.
# This may be replaced when dependencies are built.
