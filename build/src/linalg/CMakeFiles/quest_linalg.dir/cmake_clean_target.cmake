file(REMOVE_RECURSE
  "libquest_linalg.a"
)
