
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/decompose.cc" "src/linalg/CMakeFiles/quest_linalg.dir/decompose.cc.o" "gcc" "src/linalg/CMakeFiles/quest_linalg.dir/decompose.cc.o.d"
  "/root/repo/src/linalg/distance.cc" "src/linalg/CMakeFiles/quest_linalg.dir/distance.cc.o" "gcc" "src/linalg/CMakeFiles/quest_linalg.dir/distance.cc.o.d"
  "/root/repo/src/linalg/embed.cc" "src/linalg/CMakeFiles/quest_linalg.dir/embed.cc.o" "gcc" "src/linalg/CMakeFiles/quest_linalg.dir/embed.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/linalg/CMakeFiles/quest_linalg.dir/matrix.cc.o" "gcc" "src/linalg/CMakeFiles/quest_linalg.dir/matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/quest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
