
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/adder.cc" "src/algos/CMakeFiles/quest_algos.dir/adder.cc.o" "gcc" "src/algos/CMakeFiles/quest_algos.dir/adder.cc.o.d"
  "/root/repo/src/algos/hamiltonian.cc" "src/algos/CMakeFiles/quest_algos.dir/hamiltonian.cc.o" "gcc" "src/algos/CMakeFiles/quest_algos.dir/hamiltonian.cc.o.d"
  "/root/repo/src/algos/hlf.cc" "src/algos/CMakeFiles/quest_algos.dir/hlf.cc.o" "gcc" "src/algos/CMakeFiles/quest_algos.dir/hlf.cc.o.d"
  "/root/repo/src/algos/multiplier.cc" "src/algos/CMakeFiles/quest_algos.dir/multiplier.cc.o" "gcc" "src/algos/CMakeFiles/quest_algos.dir/multiplier.cc.o.d"
  "/root/repo/src/algos/qaoa.cc" "src/algos/CMakeFiles/quest_algos.dir/qaoa.cc.o" "gcc" "src/algos/CMakeFiles/quest_algos.dir/qaoa.cc.o.d"
  "/root/repo/src/algos/qft.cc" "src/algos/CMakeFiles/quest_algos.dir/qft.cc.o" "gcc" "src/algos/CMakeFiles/quest_algos.dir/qft.cc.o.d"
  "/root/repo/src/algos/suite.cc" "src/algos/CMakeFiles/quest_algos.dir/suite.cc.o" "gcc" "src/algos/CMakeFiles/quest_algos.dir/suite.cc.o.d"
  "/root/repo/src/algos/vqe.cc" "src/algos/CMakeFiles/quest_algos.dir/vqe.cc.o" "gcc" "src/algos/CMakeFiles/quest_algos.dir/vqe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/quest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quest_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/quest_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
