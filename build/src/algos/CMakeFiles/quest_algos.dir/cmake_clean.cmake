file(REMOVE_RECURSE
  "CMakeFiles/quest_algos.dir/adder.cc.o"
  "CMakeFiles/quest_algos.dir/adder.cc.o.d"
  "CMakeFiles/quest_algos.dir/hamiltonian.cc.o"
  "CMakeFiles/quest_algos.dir/hamiltonian.cc.o.d"
  "CMakeFiles/quest_algos.dir/hlf.cc.o"
  "CMakeFiles/quest_algos.dir/hlf.cc.o.d"
  "CMakeFiles/quest_algos.dir/multiplier.cc.o"
  "CMakeFiles/quest_algos.dir/multiplier.cc.o.d"
  "CMakeFiles/quest_algos.dir/qaoa.cc.o"
  "CMakeFiles/quest_algos.dir/qaoa.cc.o.d"
  "CMakeFiles/quest_algos.dir/qft.cc.o"
  "CMakeFiles/quest_algos.dir/qft.cc.o.d"
  "CMakeFiles/quest_algos.dir/suite.cc.o"
  "CMakeFiles/quest_algos.dir/suite.cc.o.d"
  "CMakeFiles/quest_algos.dir/vqe.cc.o"
  "CMakeFiles/quest_algos.dir/vqe.cc.o.d"
  "libquest_algos.a"
  "libquest_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
