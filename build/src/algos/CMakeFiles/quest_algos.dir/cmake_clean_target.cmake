file(REMOVE_RECURSE
  "libquest_algos.a"
)
