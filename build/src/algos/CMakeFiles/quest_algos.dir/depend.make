# Empty dependencies file for quest_algos.
# This may be replaced when dependencies are built.
