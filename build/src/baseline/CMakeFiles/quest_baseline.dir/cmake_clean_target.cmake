file(REMOVE_RECURSE
  "libquest_baseline.a"
)
