
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/pass_manager.cc" "src/baseline/CMakeFiles/quest_baseline.dir/pass_manager.cc.o" "gcc" "src/baseline/CMakeFiles/quest_baseline.dir/pass_manager.cc.o.d"
  "/root/repo/src/baseline/passes.cc" "src/baseline/CMakeFiles/quest_baseline.dir/passes.cc.o" "gcc" "src/baseline/CMakeFiles/quest_baseline.dir/passes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/quest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/quest_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
