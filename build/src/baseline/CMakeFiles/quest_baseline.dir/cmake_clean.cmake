file(REMOVE_RECURSE
  "CMakeFiles/quest_baseline.dir/pass_manager.cc.o"
  "CMakeFiles/quest_baseline.dir/pass_manager.cc.o.d"
  "CMakeFiles/quest_baseline.dir/passes.cc.o"
  "CMakeFiles/quest_baseline.dir/passes.cc.o.d"
  "libquest_baseline.a"
  "libquest_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
