# Empty compiler generated dependencies file for quest_baseline.
# This may be replaced when dependencies are built.
