
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/magnetization.cc" "src/metrics/CMakeFiles/quest_metrics.dir/magnetization.cc.o" "gcc" "src/metrics/CMakeFiles/quest_metrics.dir/magnetization.cc.o.d"
  "/root/repo/src/metrics/output_distance.cc" "src/metrics/CMakeFiles/quest_metrics.dir/output_distance.cc.o" "gcc" "src/metrics/CMakeFiles/quest_metrics.dir/output_distance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/quest_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quest_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/quest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/quest_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
