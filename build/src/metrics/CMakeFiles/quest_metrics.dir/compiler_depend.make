# Empty compiler generated dependencies file for quest_metrics.
# This may be replaced when dependencies are built.
