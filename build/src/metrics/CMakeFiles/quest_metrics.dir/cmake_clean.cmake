file(REMOVE_RECURSE
  "CMakeFiles/quest_metrics.dir/magnetization.cc.o"
  "CMakeFiles/quest_metrics.dir/magnetization.cc.o.d"
  "CMakeFiles/quest_metrics.dir/output_distance.cc.o"
  "CMakeFiles/quest_metrics.dir/output_distance.cc.o.d"
  "libquest_metrics.a"
  "libquest_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
