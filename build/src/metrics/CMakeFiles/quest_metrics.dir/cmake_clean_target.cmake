file(REMOVE_RECURSE
  "libquest_metrics.a"
)
