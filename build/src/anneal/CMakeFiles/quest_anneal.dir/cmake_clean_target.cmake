file(REMOVE_RECURSE
  "libquest_anneal.a"
)
