file(REMOVE_RECURSE
  "CMakeFiles/quest_anneal.dir/dual_annealing.cc.o"
  "CMakeFiles/quest_anneal.dir/dual_annealing.cc.o.d"
  "libquest_anneal.a"
  "libquest_anneal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_anneal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
