# Empty compiler generated dependencies file for quest_anneal.
# This may be replaced when dependencies are built.
