file(REMOVE_RECURSE
  "libquest_partition.a"
)
