# Empty compiler generated dependencies file for quest_partition.
# This may be replaced when dependencies are built.
