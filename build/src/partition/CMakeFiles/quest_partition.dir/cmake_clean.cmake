file(REMOVE_RECURSE
  "CMakeFiles/quest_partition.dir/scan_partitioner.cc.o"
  "CMakeFiles/quest_partition.dir/scan_partitioner.cc.o.d"
  "libquest_partition.a"
  "libquest_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
