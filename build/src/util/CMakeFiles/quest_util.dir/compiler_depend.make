# Empty compiler generated dependencies file for quest_util.
# This may be replaced when dependencies are built.
