file(REMOVE_RECURSE
  "CMakeFiles/quest_util.dir/logging.cc.o"
  "CMakeFiles/quest_util.dir/logging.cc.o.d"
  "CMakeFiles/quest_util.dir/rng.cc.o"
  "CMakeFiles/quest_util.dir/rng.cc.o.d"
  "CMakeFiles/quest_util.dir/table.cc.o"
  "CMakeFiles/quest_util.dir/table.cc.o.d"
  "CMakeFiles/quest_util.dir/thread_pool.cc.o"
  "CMakeFiles/quest_util.dir/thread_pool.cc.o.d"
  "libquest_util.a"
  "libquest_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
