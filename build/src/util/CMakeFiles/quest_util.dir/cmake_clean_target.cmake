file(REMOVE_RECURSE
  "libquest_util.a"
)
