file(REMOVE_RECURSE
  "libquest_synth.a"
)
