
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/ansatz.cc" "src/synth/CMakeFiles/quest_synth.dir/ansatz.cc.o" "gcc" "src/synth/CMakeFiles/quest_synth.dir/ansatz.cc.o.d"
  "/root/repo/src/synth/hs_cost.cc" "src/synth/CMakeFiles/quest_synth.dir/hs_cost.cc.o" "gcc" "src/synth/CMakeFiles/quest_synth.dir/hs_cost.cc.o.d"
  "/root/repo/src/synth/instantiater.cc" "src/synth/CMakeFiles/quest_synth.dir/instantiater.cc.o" "gcc" "src/synth/CMakeFiles/quest_synth.dir/instantiater.cc.o.d"
  "/root/repo/src/synth/lbfgs.cc" "src/synth/CMakeFiles/quest_synth.dir/lbfgs.cc.o" "gcc" "src/synth/CMakeFiles/quest_synth.dir/lbfgs.cc.o.d"
  "/root/repo/src/synth/leap_synthesizer.cc" "src/synth/CMakeFiles/quest_synth.dir/leap_synthesizer.cc.o" "gcc" "src/synth/CMakeFiles/quest_synth.dir/leap_synthesizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/quest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/quest_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
