file(REMOVE_RECURSE
  "CMakeFiles/quest_synth.dir/ansatz.cc.o"
  "CMakeFiles/quest_synth.dir/ansatz.cc.o.d"
  "CMakeFiles/quest_synth.dir/hs_cost.cc.o"
  "CMakeFiles/quest_synth.dir/hs_cost.cc.o.d"
  "CMakeFiles/quest_synth.dir/instantiater.cc.o"
  "CMakeFiles/quest_synth.dir/instantiater.cc.o.d"
  "CMakeFiles/quest_synth.dir/lbfgs.cc.o"
  "CMakeFiles/quest_synth.dir/lbfgs.cc.o.d"
  "CMakeFiles/quest_synth.dir/leap_synthesizer.cc.o"
  "CMakeFiles/quest_synth.dir/leap_synthesizer.cc.o.d"
  "libquest_synth.a"
  "libquest_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
