# Empty compiler generated dependencies file for quest_synth.
# This may be replaced when dependencies are built.
