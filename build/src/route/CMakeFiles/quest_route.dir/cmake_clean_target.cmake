file(REMOVE_RECURSE
  "libquest_route.a"
)
