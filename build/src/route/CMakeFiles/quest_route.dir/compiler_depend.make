# Empty compiler generated dependencies file for quest_route.
# This may be replaced when dependencies are built.
