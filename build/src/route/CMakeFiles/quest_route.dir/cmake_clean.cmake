file(REMOVE_RECURSE
  "CMakeFiles/quest_route.dir/coupling_map.cc.o"
  "CMakeFiles/quest_route.dir/coupling_map.cc.o.d"
  "CMakeFiles/quest_route.dir/router.cc.o"
  "CMakeFiles/quest_route.dir/router.cc.o.d"
  "libquest_route.a"
  "libquest_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
