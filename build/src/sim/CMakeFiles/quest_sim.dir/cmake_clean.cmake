file(REMOVE_RECURSE
  "CMakeFiles/quest_sim.dir/density_matrix.cc.o"
  "CMakeFiles/quest_sim.dir/density_matrix.cc.o.d"
  "CMakeFiles/quest_sim.dir/distribution.cc.o"
  "CMakeFiles/quest_sim.dir/distribution.cc.o.d"
  "CMakeFiles/quest_sim.dir/simulator.cc.o"
  "CMakeFiles/quest_sim.dir/simulator.cc.o.d"
  "CMakeFiles/quest_sim.dir/statevector.cc.o"
  "CMakeFiles/quest_sim.dir/statevector.cc.o.d"
  "CMakeFiles/quest_sim.dir/unitary_builder.cc.o"
  "CMakeFiles/quest_sim.dir/unitary_builder.cc.o.d"
  "libquest_sim.a"
  "libquest_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
