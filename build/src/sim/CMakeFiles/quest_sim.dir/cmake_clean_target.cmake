file(REMOVE_RECURSE
  "libquest_sim.a"
)
