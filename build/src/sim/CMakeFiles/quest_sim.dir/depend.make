# Empty dependencies file for quest_sim.
# This may be replaced when dependencies are built.
