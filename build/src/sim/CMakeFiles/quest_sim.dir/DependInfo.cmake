
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/density_matrix.cc" "src/sim/CMakeFiles/quest_sim.dir/density_matrix.cc.o" "gcc" "src/sim/CMakeFiles/quest_sim.dir/density_matrix.cc.o.d"
  "/root/repo/src/sim/distribution.cc" "src/sim/CMakeFiles/quest_sim.dir/distribution.cc.o" "gcc" "src/sim/CMakeFiles/quest_sim.dir/distribution.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/quest_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/quest_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/statevector.cc" "src/sim/CMakeFiles/quest_sim.dir/statevector.cc.o" "gcc" "src/sim/CMakeFiles/quest_sim.dir/statevector.cc.o.d"
  "/root/repo/src/sim/unitary_builder.cc" "src/sim/CMakeFiles/quest_sim.dir/unitary_builder.cc.o" "gcc" "src/sim/CMakeFiles/quest_sim.dir/unitary_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/quest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/quest_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
