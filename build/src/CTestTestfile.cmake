# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("linalg")
subdirs("ir")
subdirs("sim")
subdirs("metrics")
subdirs("route")
subdirs("algos")
subdirs("baseline")
subdirs("partition")
subdirs("synth")
subdirs("anneal")
subdirs("quest")
