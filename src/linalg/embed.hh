/**
 * @file
 * Embedding of a k-qubit unitary into an n-qubit Hilbert space on an
 * arbitrary subset of wires (the U (x) I extension used by the
 * Sec. 3.8 bound and the unitary builder).
 */

#ifndef QUEST_LINALG_EMBED_HH
#define QUEST_LINALG_EMBED_HH

#include <vector>

#include "linalg/matrix.hh"

namespace quest {

/**
 * Extend a 2^k x 2^k unitary acting on the given distinct qubits to
 * the full 2^n x 2^n space (identity on the remaining wires).
 *
 * @param u       the k-qubit unitary; qubits[i] is the circuit wire
 *                that the i-th (most significant) qubit of u acts on
 * @param qubits  circuit wires, each in [0, n)
 * @param n_qubits total number of circuit qubits
 */
Matrix embedUnitary(const Matrix &u, const std::vector<int> &qubits,
                    int n_qubits);

} // namespace quest

#endif // QUEST_LINALG_EMBED_HH
