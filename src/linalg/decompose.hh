/**
 * @file
 * One-qubit unitary decomposition (ZYZ / U3 angles).
 *
 * Used by the baseline optimizer's single-qubit fusion pass and by
 * synthesis when collapsing adjacent rotation gates.
 */

#ifndef QUEST_LINALG_DECOMPOSE_HH
#define QUEST_LINALG_DECOMPOSE_HH

#include "linalg/matrix.hh"

namespace quest {

/** Result of decomposing a 2x2 unitary: U = e^{i phase} U3(...). */
struct ZyzAngles
{
    double theta;
    double phi;
    double lambda;
    double phase;
};

/**
 * The standard U3 gate matrix:
 *   [[cos(t/2),            -e^{i l} sin(t/2)],
 *    [e^{i p} sin(t/2),  e^{i(p+l)} cos(t/2)]].
 */
Matrix makeU3(double theta, double phi, double lambda);

/**
 * Decompose an arbitrary 2x2 unitary into U3 angles plus a global
 * phase. The reconstruction e^{i phase} * makeU3(...) matches the
 * input elementwise to ~1e-12 for unitary input.
 */
ZyzAngles zyzDecompose(const Matrix &u);

} // namespace quest

#endif // QUEST_LINALG_DECOMPOSE_HH
