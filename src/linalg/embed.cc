#include "linalg/embed.hh"

#include "util/logging.hh"

namespace quest {

Matrix
embedUnitary(const Matrix &u, const std::vector<int> &qubits, int n_qubits)
{
    const size_t k = qubits.size();
    const size_t sub_dim = size_t{1} << k;
    const size_t dim = size_t{1} << n_qubits;
    QUEST_ASSERT(u.rows() == sub_dim && u.cols() == sub_dim,
                 "embedUnitary: unitary dim ", u.rows(),
                 " does not match qubit count ", k);
    for (int q : qubits) {
        QUEST_ASSERT(q >= 0 && q < n_qubits, "embedUnitary: bad wire ", q);
    }

    // Bit position (from LSB) of each of u's qubits in a full index.
    // Convention: qubit q is bit (n - 1 - q); u's qubit i is its bit
    // (k - 1 - i).
    std::vector<int> full_bit(k);
    for (size_t i = 0; i < k; ++i)
        full_bit[i] = n_qubits - 1 - qubits[i];

    auto sub_index = [&](size_t full) {
        size_t sub = 0;
        for (size_t i = 0; i < k; ++i) {
            size_t bit = (full >> full_bit[i]) & 1u;
            sub |= bit << (k - 1 - i);
        }
        return sub;
    };
    auto clear_sub_bits = [&](size_t full) {
        for (size_t i = 0; i < k; ++i)
            full &= ~(size_t{1} << full_bit[i]);
        return full;
    };
    auto compose = [&](size_t rest, size_t sub) {
        for (size_t i = 0; i < k; ++i) {
            size_t bit = (sub >> (k - 1 - i)) & 1u;
            rest |= bit << full_bit[i];
        }
        return rest;
    };

    Matrix result(dim, dim);
    for (size_t r = 0; r < dim; ++r) {
        size_t sr = sub_index(r);
        size_t rest = clear_sub_bits(r);
        for (size_t sc = 0; sc < sub_dim; ++sc) {
            Complex v = u(sr, sc);
            if (v == Complex(0.0, 0.0))
                continue;
            result(r, compose(rest, sc)) = v;
        }
    }
    return result;
}

} // namespace quest
