/**
 * @file
 * Dense complex matrix type used for unitaries throughout QUEST.
 *
 * Block unitaries are at most 16x16 (four-qubit blocks), and
 * full-circuit unitaries are only materialized for validation on
 * small circuits, so a straightforward row-major dense implementation
 * is the right tool.
 *
 * Qubit ordering convention (used consistently by ir/, sim/ and
 * linalg/embed): qubit 0 is the MOST significant bit of a basis-state
 * index, i.e. basis index k encodes qubit q as bit (n - 1 - q) of k.
 */

#ifndef QUEST_LINALG_MATRIX_HH
#define QUEST_LINALG_MATRIX_HH

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace quest {

using Complex = std::complex<double>;

/** Dense row-major complex matrix. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() : nRows(0), nCols(0) {}

    /** Zero-initialized rows x cols matrix. */
    Matrix(size_t rows, size_t cols);

    /** Square matrix from a nested initializer list (for tests). */
    Matrix(std::initializer_list<std::initializer_list<Complex>> rows);

    /** n x n identity. */
    static Matrix identity(size_t n);

    /** n x n zero matrix. */
    static Matrix zero(size_t n) { return Matrix(n, n); }

    size_t rows() const { return nRows; }
    size_t cols() const { return nCols; }
    bool isSquare() const { return nRows == nCols; }

    Complex &operator()(size_t r, size_t c) { return elts[r * nCols + c]; }
    const Complex &
    operator()(size_t r, size_t c) const
    {
        return elts[r * nCols + c];
    }

    /** Raw storage access (row-major). */
    const std::vector<Complex> &data() const { return elts; }
    std::vector<Complex> &data() { return elts; }

    Matrix operator+(const Matrix &other) const;
    Matrix operator-(const Matrix &other) const;
    Matrix operator*(const Matrix &other) const;
    Matrix operator*(Complex scalar) const;
    Matrix &operator+=(const Matrix &other);
    Matrix &operator-=(const Matrix &other);
    Matrix &operator*=(Complex scalar);

    /** Conjugate transpose. */
    Matrix adjoint() const;

    /** Transpose without conjugation. */
    Matrix transpose() const;

    /** Elementwise conjugate. */
    Matrix conjugate() const;

    /** Trace (square matrices only). */
    Complex trace() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Largest elementwise |a - b| against another matrix. */
    double maxAbsDiff(const Matrix &other) const;

    /** True if U U-dagger is within @p tol of identity elementwise. */
    bool isUnitary(double tol = 1e-9) const;

    /** Elementwise approximate equality. */
    bool approxEqual(const Matrix &other, double tol = 1e-9) const;

    /**
     * Approximate equality up to a global phase: true when there is a
     * unit scalar c with |this - c*other| < tol elementwise.
     */
    bool equalUpToPhase(const Matrix &other, double tol = 1e-9) const;

    /** Human-readable dump (for debugging and tests). */
    std::string toString(int precision = 3) const;

  private:
    size_t nRows;
    size_t nCols;
    std::vector<Complex> elts;
};

/** Scalar * matrix. */
inline Matrix
operator*(Complex scalar, const Matrix &m)
{
    return m * scalar;
}

/** Kronecker (tensor) product a (x) b. */
Matrix kron(const Matrix &a, const Matrix &b);

/** Matrix-vector product. */
std::vector<Complex> matVec(const Matrix &m, const std::vector<Complex> &v);

} // namespace quest

#endif // QUEST_LINALG_MATRIX_HH
