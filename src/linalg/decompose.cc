#include "linalg/decompose.hh"

#include <cmath>

#include "util/logging.hh"

namespace quest {

Matrix
makeU3(double theta, double phi, double lambda)
{
    double c = std::cos(theta / 2.0);
    double s = std::sin(theta / 2.0);
    Complex eil = std::polar(1.0, lambda);
    Complex eip = std::polar(1.0, phi);
    Matrix m(2, 2);
    m(0, 0) = Complex(c, 0.0);
    m(0, 1) = -eil * s;
    m(1, 0) = eip * s;
    m(1, 1) = eip * eil * c;
    return m;
}

ZyzAngles
zyzDecompose(const Matrix &u)
{
    QUEST_ASSERT(u.rows() == 2 && u.cols() == 2,
                 "zyzDecompose needs a 2x2 matrix");

    const double mag00 = std::abs(u(0, 0));
    const double mag10 = std::abs(u(1, 0));
    ZyzAngles a{};
    a.theta = 2.0 * std::atan2(mag10, mag00);

    constexpr double eps = 1e-12;
    if (mag10 < eps) {
        // theta ~ 0: only phi + lambda is defined; put it all in phi.
        a.lambda = 0.0;
        a.phase = std::arg(u(0, 0));
        a.phi = std::arg(u(1, 1)) - a.phase;
    } else if (mag00 < eps) {
        // theta ~ pi: U01 = -e^{i(phase+lambda)}, U10 = e^{i(phase+phi)}.
        a.lambda = 0.0;
        a.phase = std::arg(-u(0, 1));
        a.phi = std::arg(u(1, 0)) - a.phase;
    } else {
        a.phase = std::arg(u(0, 0));
        a.phi = std::arg(u(1, 0)) - a.phase;
        a.lambda = std::arg(-u(0, 1)) - a.phase;
    }
    return a;
}

} // namespace quest
