#include "linalg/matrix.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace quest {

Matrix::Matrix(size_t rows, size_t cols)
    : nRows(rows), nCols(cols), elts(rows * cols, Complex(0.0, 0.0))
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> rows)
    : nRows(rows.size()), nCols(0)
{
    for (const auto &row : rows) {
        if (nCols == 0) {
            nCols = row.size();
        }
        QUEST_ASSERT(row.size() == nCols, "ragged initializer list");
        elts.insert(elts.end(), row.begin(), row.end());
    }
}

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m(i, i) = Complex(1.0, 0.0);
    return m;
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    Matrix result = *this;
    result += other;
    return result;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    Matrix result = *this;
    result -= other;
    return result;
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    QUEST_ASSERT(nRows == other.nRows && nCols == other.nCols,
                 "matrix shape mismatch in +=");
    for (size_t i = 0; i < elts.size(); ++i)
        elts[i] += other.elts[i];
    return *this;
}

Matrix &
Matrix::operator-=(const Matrix &other)
{
    QUEST_ASSERT(nRows == other.nRows && nCols == other.nCols,
                 "matrix shape mismatch in -=");
    for (size_t i = 0; i < elts.size(); ++i)
        elts[i] -= other.elts[i];
    return *this;
}

Matrix &
Matrix::operator*=(Complex scalar)
{
    for (auto &e : elts)
        e *= scalar;
    return *this;
}

Matrix
Matrix::operator*(Complex scalar) const
{
    Matrix result = *this;
    result *= scalar;
    return result;
}

Matrix
Matrix::operator*(const Matrix &other) const
{
    QUEST_ASSERT(nCols == other.nRows, "matrix shape mismatch in *: ",
                 nRows, "x", nCols, " times ", other.nRows, "x",
                 other.nCols);
    Matrix result(nRows, other.nCols);
    // ikj loop order for cache friendliness on row-major storage.
    for (size_t i = 0; i < nRows; ++i) {
        for (size_t k = 0; k < nCols; ++k) {
            Complex aik = (*this)(i, k);
            if (aik == Complex(0.0, 0.0))
                continue;
            const Complex *brow = &other.elts[k * other.nCols];
            Complex *crow = &result.elts[i * other.nCols];
            for (size_t j = 0; j < other.nCols; ++j)
                crow[j] += aik * brow[j];
        }
    }
    return result;
}

Matrix
Matrix::adjoint() const
{
    Matrix result(nCols, nRows);
    for (size_t r = 0; r < nRows; ++r)
        for (size_t c = 0; c < nCols; ++c)
            result(c, r) = std::conj((*this)(r, c));
    return result;
}

Matrix
Matrix::transpose() const
{
    Matrix result(nCols, nRows);
    for (size_t r = 0; r < nRows; ++r)
        for (size_t c = 0; c < nCols; ++c)
            result(c, r) = (*this)(r, c);
    return result;
}

Matrix
Matrix::conjugate() const
{
    Matrix result = *this;
    for (auto &e : result.elts)
        e = std::conj(e);
    return result;
}

Complex
Matrix::trace() const
{
    QUEST_ASSERT(isSquare(), "trace of non-square matrix");
    Complex sum(0.0, 0.0);
    for (size_t i = 0; i < nRows; ++i)
        sum += (*this)(i, i);
    return sum;
}

double
Matrix::frobeniusNorm() const
{
    double sum = 0.0;
    for (const auto &e : elts)
        sum += std::norm(e);
    return std::sqrt(sum);
}

double
Matrix::maxAbsDiff(const Matrix &other) const
{
    QUEST_ASSERT(nRows == other.nRows && nCols == other.nCols,
                 "matrix shape mismatch in maxAbsDiff");
    double worst = 0.0;
    for (size_t i = 0; i < elts.size(); ++i)
        worst = std::max(worst, std::abs(elts[i] - other.elts[i]));
    return worst;
}

bool
Matrix::isUnitary(double tol) const
{
    if (!isSquare())
        return false;
    Matrix product = (*this) * adjoint();
    return product.maxAbsDiff(identity(nRows)) < tol;
}

bool
Matrix::approxEqual(const Matrix &other, double tol) const
{
    if (nRows != other.nRows || nCols != other.nCols)
        return false;
    return maxAbsDiff(other) < tol;
}

bool
Matrix::equalUpToPhase(const Matrix &other, double tol) const
{
    if (nRows != other.nRows || nCols != other.nCols)
        return false;
    // Find the largest-magnitude entry of other to estimate the phase.
    size_t best = 0;
    double bestMag = 0.0;
    for (size_t i = 0; i < elts.size(); ++i) {
        double mag = std::abs(other.elts[i]);
        if (mag > bestMag) {
            bestMag = mag;
            best = i;
        }
    }
    if (bestMag < tol) {
        // other is (approximately) zero; compare directly.
        return maxAbsDiff(other) < tol;
    }
    Complex phase = elts[best] / other.elts[best];
    double mag = std::abs(phase);
    if (std::abs(mag - 1.0) > tol)
        return false;
    phase /= mag;
    double worst = 0.0;
    for (size_t i = 0; i < elts.size(); ++i)
        worst = std::max(worst, std::abs(elts[i] - phase * other.elts[i]));
    return worst < tol;
}

std::string
Matrix::toString(int precision) const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision);
    for (size_t r = 0; r < nRows; ++r) {
        os << "[ ";
        for (size_t c = 0; c < nCols; ++c) {
            const Complex &e = (*this)(r, c);
            os << e.real() << (e.imag() < 0 ? "-" : "+")
               << std::abs(e.imag()) << "i ";
        }
        os << "]\n";
    }
    return os.str();
}

Matrix
kron(const Matrix &a, const Matrix &b)
{
    Matrix result(a.rows() * b.rows(), a.cols() * b.cols());
    for (size_t ar = 0; ar < a.rows(); ++ar) {
        for (size_t ac = 0; ac < a.cols(); ++ac) {
            Complex av = a(ar, ac);
            if (av == Complex(0.0, 0.0))
                continue;
            for (size_t br = 0; br < b.rows(); ++br)
                for (size_t bc = 0; bc < b.cols(); ++bc)
                    result(ar * b.rows() + br, ac * b.cols() + bc) =
                        av * b(br, bc);
        }
    }
    return result;
}

std::vector<Complex>
matVec(const Matrix &m, const std::vector<Complex> &v)
{
    QUEST_ASSERT(m.cols() == v.size(), "matVec shape mismatch");
    std::vector<Complex> result(m.rows(), Complex(0.0, 0.0));
    for (size_t r = 0; r < m.rows(); ++r) {
        Complex sum(0.0, 0.0);
        for (size_t c = 0; c < m.cols(); ++c)
            sum += m(r, c) * v[c];
        result[r] = sum;
    }
    return result;
}

} // namespace quest
