#include "linalg/distance.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace quest {

Complex
hsInnerProduct(const Matrix &u, const Matrix &v)
{
    QUEST_ASSERT(u.isSquare() && v.isSquare() && u.rows() == v.rows(),
                 "hsInnerProduct shape mismatch");
    // Tr(U^dagger V) = sum_ij conj(U_ij) V_ij; avoids forming the
    // product matrix.
    Complex sum(0.0, 0.0);
    const auto &ud = u.data();
    const auto &vd = v.data();
    for (size_t i = 0; i < ud.size(); ++i)
        sum += std::conj(ud[i]) * vd[i];
    return sum;
}

double
hsDistanceFromTrace(Complex trace, size_t dim)
{
    double n2 = static_cast<double>(dim) * static_cast<double>(dim);
    double frac = std::norm(trace) / n2;
    return std::sqrt(std::max(0.0, 1.0 - frac));
}

double
hsDistance(const Matrix &u, const Matrix &v)
{
    return hsDistanceFromTrace(hsInnerProduct(u, v), u.rows());
}

} // namespace quest
