/**
 * @file
 * Hilbert-Schmidt process-distance metrics (Sec. 2 of the paper).
 */

#ifndef QUEST_LINALG_DISTANCE_HH
#define QUEST_LINALG_DISTANCE_HH

#include "linalg/matrix.hh"

namespace quest {

/** Hilbert-Schmidt inner product Tr(U-dagger V). */
Complex hsInnerProduct(const Matrix &u, const Matrix &v);

/**
 * Hilbert-Schmidt process distance:
 * sqrt(max(0, 1 - |Tr(U-dagger V)|^2 / N^2)).
 *
 * Global-phase invariant; 0 means the unitaries are equivalent, 1 is
 * the maximum distance. Both operands must be square N x N.
 */
double hsDistance(const Matrix &u, const Matrix &v);

/**
 * The same distance computed from a precomputed trace value and
 * dimension (used by the synthesis cost function, which evaluates the
 * trace incrementally).
 */
double hsDistanceFromTrace(Complex trace, size_t dim);

} // namespace quest

#endif // QUEST_LINALG_DISTANCE_HH
