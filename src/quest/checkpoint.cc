#include "quest/checkpoint.hh"

#include <cstring>
#include <filesystem>
#include <system_error>

#include "cache/codec.hh"
#include "obs/metrics.hh"
#include "resilience/error.hh"
#include "util/logging.hh"
#include "util/serialize.hh"
#include "util/names.hh"
#include "util/annotations.hh"

namespace fs = std::filesystem;

namespace quest {

namespace {

/** QRJ1 record types used by the run journal (docs/FORMATS.md). */
enum : uint32_t {
    kRecFingerprint = 1,
    kRecBlock = 2,
    kRecInvalidate = 3,
    kRecSample = 4,
    kRecStep3Done = 5,
};

std::string
journalFileFor(const std::string &dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        throw resilience::QuestError(
            resilience::ErrorCategory::Io,
            "cannot create checkpoint directory '" + dir +
                "': " + ec.message());
    }
    return (fs::path(dir) / "journal.qrj").string();
}

obs::Counter &
replayedBlocksCounter()
{
    static auto &c = obs::MetricsRegistry::global().counter(
        names::kMetricCheckpointBlocksReplayed);
    return c;
}

} // namespace

std::array<uint8_t, Sha256::kDigestSize>
runFingerprint(const Circuit &original, const QuestConfig &cfg)
{
    ByteWriter w;
    w.str("quest-checkpoint-v2");
    cache::encodeCircuit(w, original);

    w.i32(cfg.maxBlockSize);
    w.f64(cfg.thresholdPerBlock);
    w.f64(cfg.thresholdCap);
    w.i32(cfg.maxSamples);
    w.f64(cfg.cnotWeight);
    w.i32(cfg.maxApproxPerBlock);
    w.u8(static_cast<uint8_t>(cfg.selectionMode));
    w.u64(cfg.seed);

    const SynthConfig &s = cfg.synth;
    w.f64(s.exactEpsilon);
    w.i32(s.beamWidth);
    w.i32(s.reseedInterval);
    w.i32(s.candidatesPerLevel);
    w.i32(s.extraLevels);
    w.i32(s.maxLayers);
    w.i32(s.stallLevels);
    w.u64(s.seed);
    w.u32(static_cast<uint32_t>(s.couplings.size()));
    for (auto [a, b] : s.couplings) {
        w.i32(a);
        w.i32(b);
    }
    w.i32(s.inst.multistarts);
    w.f64(s.inst.goal);
    w.i32(s.inst.lbfgs.maxIterations);
    w.i32(s.inst.lbfgs.historySize);
    w.f64(s.inst.lbfgs.gradTolerance);
    w.f64(s.inst.lbfgs.valueTolerance);

    const AnnealOptions &a = cfg.anneal;
    w.i32(a.maxIterations);
    w.f64(a.initialTemp);
    w.f64(a.restartTempRatio);
    w.f64(a.visitParam);
    w.f64(a.acceptParam);
    w.u8(a.localSearch ? 1 : 0);
    w.u64(a.seed);

    return Sha256::hash(w.buffer().data(), w.size());
}

CheckpointJournal::CheckpointJournal(
    const std::string &dir,
    const std::array<uint8_t, Sha256::kDigestSize> &fingerprint,
    bool resume)
    : journal(journalFileFor(dir))
{
    bool keep = false;
    if (resume && !journal.records().empty()) {
        const resilience::JournalRecord &first = journal.records().front();
        keep = first.type == kRecFingerprint &&
               first.payload.size() == fingerprint.size() &&
               std::memcmp(first.payload.data(), fingerprint.data(),
                           fingerprint.size()) == 0;
        if (!keep) {
            warn("checkpoint journal '", journal.path(),
                 "': fingerprint mismatch (different circuit or "
                 "config); discarding recorded progress");
        }
    }

    if (keep) {
        wasResumed = true;
        replay();
    } else {
        journal.reset();
        journal.append(kRecFingerprint,
                       std::vector<uint8_t>(fingerprint.begin(),
                                            fingerprint.end()));
    }
}

void
CheckpointJournal::replay()
{
    const auto &records = journal.records();
    for (size_t i = 1; i < records.size(); ++i) {
        const resilience::JournalRecord &rec = records[i];
        try {
            ByteReader r(rec.payload);
            switch (rec.type) {
              case kRecBlock: {
                std::string key = r.str();
                SynthOutput out = cache::decodeSynthOutput(r);
                blocks.insert_or_assign(std::move(key),
                                        std::move(out));
                break;
              }
              case kRecInvalidate:
                blocks.erase(r.str());
                break;
              case kRecSample: {
                const uint32_t count = r.u32();
                std::vector<int> choice;
                choice.reserve(count);
                for (uint32_t c = 0; c < count; ++c)
                    choice.push_back(r.i32());
                samples.push_back(std::move(choice));
                break;
              }
              case kRecStep3Done:
                done = true;
                break;
              default:
                // Record from a newer writer: ignorable by design.
                break;
            }
        } catch (const SerializeError &e) {
            // The frame checksum held but the payload does not parse
            // (codec drift): skip it — resume re-computes anything
            // not replayed.
            warn("checkpoint journal '", journal.path(),
                 "': skipping undecodable record ", i, ": ", e.what());
        }
    }
}

std::optional<SynthOutput>
CheckpointJournal::load(const std::string &key)
{
    std::lock_guard<std::mutex> lock(m);
    auto it = blocks.find(key);
    if (it == blocks.end())
        return std::nullopt;
    replayedBlocksCounter().increment();
    return it->second;
}

void
CheckpointJournal::store(const std::string &key, const SynthOutput &out)
{
    try {
        ByteWriter w;
        w.str(key);
        cache::encodeSynthOutput(w, out);
        std::lock_guard<std::mutex> lock(m);
        if (blocks.find(key) != blocks.end())
            return;
        journal.append(kRecBlock, w.buffer());
        blocks.emplace(key, out);
    } catch (...) {
        // Hook contract: checkpointing is best-effort, never fatal.
        QUEST_INTENTIONAL_SWALLOW("a failed checkpoint append must "
                                  "not fail the run it protects");
    }
}

void
CheckpointJournal::invalidate(const std::string &key)
{
    try {
        ByteWriter w;
        w.str(key);
        std::lock_guard<std::mutex> lock(m);
        if (blocks.erase(key) > 0)
            journal.append(kRecInvalidate, w.buffer());
    } catch (...) {
        QUEST_INTENTIONAL_SWALLOW("best-effort invalidation; a stale "
                                  "checkpoint entry is re-verified on "
                                  "resume");
    }
}

size_t
CheckpointJournal::blockCount() const
{
    std::lock_guard<std::mutex> lock(m);
    return blocks.size();
}

std::vector<std::vector<int>>
CheckpointJournal::sampleChoices() const
{
    std::lock_guard<std::mutex> lock(m);
    return samples;
}

bool
CheckpointJournal::step3Done() const
{
    std::lock_guard<std::mutex> lock(m);
    return done;
}

void
CheckpointJournal::appendSample(const std::vector<int> &choice)
{
    ByteWriter w;
    w.u32(static_cast<uint32_t>(choice.size()));
    for (int c : choice)
        w.i32(c);
    std::lock_guard<std::mutex> lock(m);
    journal.append(kRecSample, w.buffer());
    samples.push_back(choice);
}

void
CheckpointJournal::markStep3Done()
{
    std::lock_guard<std::mutex> lock(m);
    journal.append(kRecStep3Done, {});
    done = true;
}

std::optional<SynthOutput>
ChainedSynthCache::load(const std::string &key)
{
    if (journal) {
        if (auto out = journal->load(key))
            return out;
    }
    if (disk) {
        if (auto out = disk->load(key)) {
            // Write-through: a resume must be able to replay this
            // block even if the disk cache later evicts it.
            if (journal)
                journal->store(key, *out);
            return out;
        }
    }
    return std::nullopt;
}

void
ChainedSynthCache::store(const std::string &key, const SynthOutput &out)
{
    if (journal)
        journal->store(key, out);
    if (disk)
        disk->store(key, out);
}

void
ChainedSynthCache::invalidate(const std::string &key)
{
    if (journal)
        journal->invalidate(key);
    if (disk)
        disk->invalidate(key);
}

} // namespace quest
