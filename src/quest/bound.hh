/**
 * @file
 * The Sec. 3.8 theoretical upper bound on full-circuit process
 * distance: sum of the per-block HS distances.
 */

#ifndef QUEST_QUEST_BOUND_HH
#define QUEST_QUEST_BOUND_HH

#include <vector>

#include "ir/circuit.hh"
#include "partition/scan_partitioner.hh"

namespace quest {

/**
 * The theorem's bound: the HS process distance of the assembled
 * approximation is at most the sum of the block distances.
 */
double processDistanceBound(const std::vector<double> &block_distances);

/**
 * Direct full-circuit HS distance between an original circuit and an
 * approximation — only feasible for small circuits; used to validate
 * the bound (Fig. 7) and in tests.
 */
double actualProcessDistance(const Circuit &original,
                             const Circuit &approximation);

} // namespace quest

#endif // QUEST_QUEST_BOUND_HH
