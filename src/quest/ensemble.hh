/**
 * @file
 * Ensemble evaluation: run each selected approximation and average
 * the output distributions (the paper's evaluation methodology).
 */

#ifndef QUEST_QUEST_ENSEMBLE_HH
#define QUEST_QUEST_ENSEMBLE_HH

#include <cstdint>

#include "quest/result.hh"
#include "sim/noise.hh"
#include "sim/distribution.hh"

namespace quest {

/** Evaluation settings for an ensemble run. */
struct EnsembleOptions
{
    NoiseModel noise = NoiseModel::ideal();
    int shots = 8192;        //!< ignored for exact ideal evaluation
    bool exactIdeal = true;  //!< ideal runs use exact probabilities
    bool applyQiskit = false; //!< run the baseline passes on each
                              //!< sample first (QUEST + Qiskit)

    /**
     * Noise-aware sample weighting (an extension beyond the paper's
     * uniform average): sample i gets weight exp(-lambda * cnots_i),
     * favoring the approximations that will suffer least on a noisy
     * device. 0 reproduces the paper's plain average.
     */
    double cnotWeightLambda = 0.0;

    uint64_t seed = 7;
};

/** The selected sample circuits (optionally Qiskit-optimized). */
std::vector<Circuit> sampleCircuits(const QuestResult &result,
                                    bool apply_qiskit);

/**
 * Averaged output distribution over the selected samples.
 */
Distribution ensembleDistribution(const QuestResult &result,
                                  const EnsembleOptions &options = {});

/** Mean CNOT count of the (optionally optimized) sample circuits. */
double ensembleCnotCount(const QuestResult &result, bool apply_qiskit);

} // namespace quest

#endif // QUEST_QUEST_ENSEMBLE_HH
