/**
 * @file
 * The end-to-end QUEST pipeline (Fig. 2): partition, approximate
 * per-block synthesis, dual-annealing selection of dissimilar
 * low-CNOT full-circuit approximations.
 */

#ifndef QUEST_QUEST_PIPELINE_HH
#define QUEST_QUEST_PIPELINE_HH

#include <memory>

#include "ir/circuit.hh"
#include "quest/config.hh"
#include "quest/result.hh"

namespace quest {

namespace cache {
class SynthesisCache;
} // namespace cache

/** Orchestrates the three QUEST steps. */
class QuestPipeline
{
  public:
    explicit QuestPipeline(QuestConfig config = {});
    ~QuestPipeline();

    /**
     * Run QUEST on a circuit (measurements are stripped; the input
     * is lowered to the native {U3, CX} set first). Returns the
     * ensemble of selected approximations plus all intermediate
     * state and stage timings.
     */
    QuestResult run(const Circuit &circuit) const;

    const QuestConfig &config() const { return cfg; }

  private:
    QuestConfig cfg;

    /** Persistent synthesis store, when cfg.cacheDir is set. */
    std::unique_ptr<cache::SynthesisCache> synthCache;
};

} // namespace quest

#endif // QUEST_QUEST_PIPELINE_HH
