/**
 * @file
 * Checkpoint/resume for pipeline runs, built on the generic QRJ1
 * journal (src/resilience/journal.hh) and the PR-3 codecs.
 *
 * A multi-hour compile must survive a crash without redoing finished
 * work. The journal records, in completion order: a run fingerprint
 * (digest of the lowered circuit plus every result-affecting config
 * field), each completed block synthesis (keyed by its
 * content-addressed synthesis cache key), each selected STEP-3
 * sample choice, and a STEP-3-done marker. Resuming replays block
 * records through the synthesizer's normal cache-consult path — the
 * journal IS a SynthCacheHook — and replays sample choices before
 * re-entering the annealer, so an interrupted run continues exactly
 * where it stopped and reproduces the uninterrupted run's artifacts
 * byte for byte (block outputs are bit-exact decoded bytes; STEP 3
 * is deterministic given the blocks and the replayed prefix).
 *
 * A fingerprint mismatch (different circuit or config) makes every
 * recorded decision invalid, so the journal is reset rather than
 * trusted. Append failures degrade to "no checkpoint" (see
 * resilience::Journal); they never fail the compile.
 */

#ifndef QUEST_QUEST_CHECKPOINT_HH
#define QUEST_QUEST_CHECKPOINT_HH

#include <array>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "ir/circuit.hh"
#include "quest/config.hh"
#include "resilience/journal.hh"
#include "synth/synth_cache.hh"
#include "util/sha256.hh"

namespace quest {

/**
 * Digest of everything that determines a run's output: the lowered
 * circuit and each result-affecting config field (thread counts,
 * cache paths and verification flags are excluded — they cannot
 * change artifacts). Two runs with equal fingerprints make identical
 * decisions, which is what lets a resume trust recorded ones.
 */
std::array<uint8_t, Sha256::kDigestSize>
runFingerprint(const Circuit &original, const QuestConfig &cfg);

/**
 * The append-only run journal, usable directly as the synthesizer's
 * cache hook. Thread-safe: block syntheses store concurrently from
 * the pipeline's worker pool.
 */
class CheckpointJournal : public SynthCacheHook
{
  public:
    /**
     * Open (creating @p dir if needed) the journal at
     * "<dir>/journal.qrj". With @p resume set and a matching
     * fingerprint, recovered records are kept and served; otherwise
     * the journal is reset to just the fingerprint. Throws
     * QuestError(Io) when the directory or file cannot be created.
     */
    CheckpointJournal(const std::string &dir,
                      const std::array<uint8_t, Sha256::kDigestSize>
                          &fingerprint,
                      bool resume);

    /** @name SynthCacheHook (never throws; damage degrades to miss) */
    /// @{
    std::optional<SynthOutput> load(const std::string &key) override;
    void store(const std::string &key, const SynthOutput &out) override;
    void invalidate(const std::string &key) override;
    /// @}

    /** True when prior records were recovered and kept. */
    bool resumed() const { return wasResumed; }

    /** Completed block syntheses currently replayable. */
    size_t blockCount() const;

    /** Recorded STEP-3 sample choices, in selection order. */
    std::vector<std::vector<int>> sampleChoices() const;

    /** True when the recovered journal recorded STEP 3 finishing. */
    bool step3Done() const;

    /** Record one selected sample choice / the end of STEP 3. */
    void appendSample(const std::vector<int> &choice);
    void markStep3Done();

    const std::string &journalPath() const { return journal.path(); }

  private:
    void replay();

    mutable std::mutex m;
    resilience::Journal journal;
    std::map<std::string, SynthOutput> blocks;
    std::vector<std::vector<int>> samples;
    bool done = false;
    bool wasResumed = false;
};

/**
 * Journal-first, disk-cache-second hook chain for STEP 2. Disk hits
 * are written through to the journal so a resume can replay them
 * without the disk cache (whose entries another process may evict).
 * Either side may be null.
 */
class ChainedSynthCache : public SynthCacheHook
{
  public:
    ChainedSynthCache(CheckpointJournal *journal, SynthCacheHook *disk)
        : journal(journal), disk(disk)
    {}

    std::optional<SynthOutput> load(const std::string &key) override;
    void store(const std::string &key, const SynthOutput &out) override;
    void invalidate(const std::string &key) override;

  private:
    CheckpointJournal *journal;
    SynthCacheHook *disk;
};

} // namespace quest

#endif // QUEST_QUEST_CHECKPOINT_HH
