#include "quest/ensemble.hh"

#include <cmath>

#include "baseline/pass_manager.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/simulator.hh"
#include "util/logging.hh"
#include "util/names.hh"

namespace quest {

std::vector<Circuit>
sampleCircuits(const QuestResult &result, bool apply_qiskit)
{
    QUEST_ASSERT(!result.samples.empty(), "no samples to evaluate");
    std::vector<Circuit> circuits;
    circuits.reserve(result.samples.size());
    for (const ApproxSample &s : result.samples) {
        circuits.push_back(apply_qiskit ? qiskitLikeOptimize(s.circuit)
                                        : s.circuit);
    }
    return circuits;
}

Distribution
ensembleDistribution(const QuestResult &result,
                     const EnsembleOptions &options)
{
    QUEST_TRACE_SCOPE("quest.ensemble_eval");
    static auto &evals = obs::MetricsRegistry::global().counter(
        names::kMetricEnsembleEvals);
    evals.increment();
    std::vector<Circuit> circuits =
        sampleCircuits(result, options.applyQiskit);

    std::vector<Distribution> outputs;
    outputs.reserve(circuits.size());
    if (options.noise.isIdeal() && options.exactIdeal) {
        for (const Circuit &c : circuits)
            outputs.push_back(idealDistribution(c));
    } else {
        NoisySimulator simulator(options.noise, options.seed);
        for (const Circuit &c : circuits)
            outputs.push_back(simulator.run(c, options.shots));
    }
    if (options.cnotWeightLambda == 0.0)
        return Distribution::average(outputs);

    // Noise-aware weighting: shorter samples count for more.
    QUEST_ASSERT(options.cnotWeightLambda > 0.0,
                 "cnot weight lambda must be non-negative");
    std::vector<double> weights(circuits.size());
    double total = 0.0;
    for (size_t i = 0; i < circuits.size(); ++i) {
        weights[i] = std::exp(-options.cnotWeightLambda *
                              static_cast<double>(
                                  circuits[i].cnotCount()));
        total += weights[i];
    }
    Distribution blended(outputs.front().numQubits());
    for (size_t i = 0; i < outputs.size(); ++i)
        for (size_t k = 0; k < blended.size(); ++k)
            blended[k] += weights[i] / total * outputs[i][k];
    return blended;
}

double
ensembleCnotCount(const QuestResult &result, bool apply_qiskit)
{
    std::vector<Circuit> circuits =
        sampleCircuits(result, apply_qiskit);
    double sum = 0.0;
    for (const Circuit &c : circuits)
        sum += static_cast<double>(c.cnotCount());
    return sum / static_cast<double>(circuits.size());
}

} // namespace quest
