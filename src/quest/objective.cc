#include "quest/objective.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace quest {

SelectionObjective::SelectionObjective(
    const QuestResult &result,
    const std::vector<std::vector<int>> &selected, double threshold,
    double cnot_weight)
    : result(result), selected(selected), threshold(threshold),
      cnotWeight(cnot_weight)
{
    QUEST_ASSERT(cnot_weight >= 0.0 && cnot_weight <= 1.0,
                 "cnot weight must be in [0, 1]");
}

std::vector<int>
SelectionObjective::toChoice(const std::vector<double> &x) const
{
    QUEST_ASSERT(x.size() == result.blockApprox.size(),
                 "coordinate arity mismatch");
    std::vector<int> choice(x.size());
    for (size_t b = 0; b < x.size(); ++b) {
        const int count =
            static_cast<int>(result.blockApprox[b].size());
        int idx = static_cast<int>(std::floor(x[b] * count));
        choice[b] = std::clamp(idx, 0, count - 1);
    }
    return choice;
}

double
SelectionObjective::bound(const std::vector<int> &choice) const
{
    double sum = 0.0;
    for (size_t b = 0; b < choice.size(); ++b)
        sum += result.blockApprox[b][choice[b]].distance;
    return sum;
}

size_t
SelectionObjective::cnots(const std::vector<int> &choice) const
{
    size_t sum = 0;
    for (size_t b = 0; b < choice.size(); ++b)
        sum += result.blockApprox[b][choice[b]].cnotCount;
    return sum;
}

double
SelectionObjective::scoreChoice(const std::vector<int> &choice) const
{
    const double b = bound(choice);
    if (b > threshold) {
        // Coarse approximation: eliminated (Alg. 1 line 7). The
        // excess grades the plateau so annealing can descend toward
        // the feasible region; anything >= 1.0 is never selected.
        return 1.0 + (b - threshold);
    }

    const double cnorm =
        result.originalCnots == 0
            ? 0.0
            : static_cast<double>(cnots(choice)) /
                  static_cast<double>(result.originalCnots);

    if (selected.empty())
        return cnorm;  // first sample: pure CNOT minimization

    // Mean over selected samples of the fraction of similar blocks.
    double total = 0.0;
    const size_t num_blocks = choice.size();
    for (const auto &s : selected) {
        size_t similar = 0;
        for (size_t b = 0; b < num_blocks; ++b) {
            const size_t count = result.blockApprox[b].size();
            similar += result.blockSimilar[b][choice[b] * count + s[b]]
                           ? 1
                           : 0;
        }
        total += static_cast<double>(similar) /
                 static_cast<double>(num_blocks);
    }
    const double similarity = total / static_cast<double>(selected.size());

    return cnotWeight * cnorm + (1.0 - cnotWeight) * similarity;
}

double
SelectionObjective::operator()(const std::vector<double> &x) const
{
    return scoreChoice(toChoice(x));
}

} // namespace quest
