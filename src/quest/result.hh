/**
 * @file
 * QUEST pipeline result types.
 */

#ifndef QUEST_QUEST_RESULT_HH
#define QUEST_QUEST_RESULT_HH

#include <string>
#include <vector>

#include "ir/circuit.hh"
#include "partition/scan_partitioner.hh"
#include "quest/mode.hh"

namespace quest {

/** How one block's synthesis ended. Every non-Ok status means the
 *  original block circuit was substituted (distance 0, so the
 *  Theorem-1 bound is unaffected). */
enum class BlockStatus {
    Ok,       //!< synthesis completed; approximations available
    Timeout,  //!< block/run deadline fired mid-synthesis
    Diverged, //!< the numerical search produced non-finite costs
    Faulted,  //!< synthesis threw (I/O fault, injected fault, bug)
    Fallback, //!< not attempted: run already cancelled/out of budget
};

/** Stable lower-case name ("ok", "timeout", ...). */
const char *blockStatusName(BlockStatus status);

/** Structured per-block synthesis outcome. */
struct BlockOutcome
{
    BlockStatus status = BlockStatus::Ok;

    /** One-line reason for a non-Ok status (exception text). */
    std::string detail;

    bool ok() const { return status == BlockStatus::Ok; }
};

/** One synthesized approximation of a block. */
struct BlockApprox
{
    Circuit circuit;        //!< block-local native circuit
    double distance = 0.0;  //!< HS distance to the block unitary
    int cnotCount = 0;
};

/** One selected full-circuit approximation sample. */
struct ApproxSample
{
    std::vector<int> choice;   //!< approximation index per block
    Circuit circuit;           //!< assembled full circuit
    size_t cnotCount = 0;      //!< CNOT count of @ref circuit
    double distanceBound = 0.0; //!< Sec. 3.8 bound: sum of block dists

    /**
     * Exact full-circuit HS process distance to the lowered original,
     * measured in SelectionMode::Full only; negative means "not
     * measured" (BlockBound mode, or the run budget fired first).
     * Theorem 1 guarantees measuredDistance <= distanceBound.
     */
    double measuredDistance = -1.0;

    /** True when @ref measuredDistance holds a measured value. */
    bool measured() const { return measuredDistance >= 0.0; }
};

/**
 * The certificate reported with every result: what the Theorem-1
 * additive bound promises about the selected ensemble, and — in
 * SelectionMode::Full — how the measured full-circuit distances
 * compare. All distances are Hilbert-Schmidt process distances in
 * [0, 2]; @ref outputEstimate is a heuristic output-TVD proxy in
 * [0, 1] (metrics/output_distance.hh), not a guarantee.
 */
struct BoundCertificate
{
    SelectionMode mode = SelectionMode::Full; //!< how it was produced

    /** Bound ceiling the selection enforced (QuestResult::threshold). */
    double threshold = 0.0;

    /** Largest Sec. 3.8 bound over the selected samples. */
    double maxBound = 0.0;

    /** Mean Sec. 3.8 bound over the selected samples. */
    double meanBound = 0.0;

    /** outputDistanceEstimate(maxBound): heuristic TVD proxy. */
    double outputEstimate = 0.0;

    /** Samples with a measured full-circuit distance (Full mode). */
    int measuredSamples = 0;

    /** Largest measured distance; negative when none was measured. */
    double maxMeasured = -1.0;
};

/** Everything the pipeline produced. */
struct QuestResult
{
    Circuit original;          //!< lowered input circuit
    std::vector<Block> blocks;

    /** Approximations per block (index 0 is always the original
     *  block circuit itself, distance zero). */
    std::vector<std::vector<BlockApprox>> blockApprox;

    /** Pairwise block-approximation similarity (Alg. 1 line 13):
     *  blockSimilar[b][i * numApprox_b + j]. */
    std::vector<std::vector<char>> blockSimilar;

    /** Selected dissimilar samples, in selection order. */
    std::vector<ApproxSample> samples;

    double threshold = 0.0;    //!< bound threshold used for selection
    size_t originalCnots = 0;  //!< CNOT count of the lowered input

    /** Mode this result was produced under (quest/mode.hh). */
    SelectionMode selectionMode = SelectionMode::Full;

    /** The Theorem-1 bound certificate for the selected ensemble. */
    BoundCertificate certificate;

    /** Per-block synthesis outcome (duplicate blocks share their
     *  canonical block's outcome). Invariant, asserted by tests:
     *  okBlocks() + fallbackBlocks() == blocks.size(). */
    std::vector<BlockOutcome> blockOutcomes;

    /** Blocks whose synthesis completed. */
    size_t okBlocks() const;

    /** Blocks degraded to their original circuit (any non-Ok
     *  status). */
    size_t fallbackBlocks() const;

    /** Stage wall-clock (Fig. 12). */
    double partitionSeconds = 0.0;
    double synthesisSeconds = 0.0;
    double annealSeconds = 0.0;

    /** Lowest CNOT count among the selected samples. */
    size_t minSampleCnots() const;

    /** Mean CNOT count over the selected samples. */
    double meanSampleCnots() const;
};

} // namespace quest

#endif // QUEST_QUEST_RESULT_HH
