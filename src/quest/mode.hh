/**
 * @file
 * Selection/verification modes of the QUEST pipeline.
 *
 * Both modes run the same STEP-3 selection: the annealing objective
 * scores candidate ensembles purely from the per-block distance/CNOT
 * tables via the Theorem-1 additive bound, so the *selected samples
 * are identical* in either mode for the same circuit and config. The
 * modes differ only in how the result is certified afterwards.
 */

#ifndef QUEST_QUEST_MODE_HH
#define QUEST_QUEST_MODE_HH

namespace quest {

/** How the pipeline certifies the selected ensemble. */
enum class SelectionMode {
    /**
     * Small-circuit mode (default): in addition to the Theorem-1
     * bound, measure the exact full-circuit HS process distance of
     * every selected sample against the lowered original (via
     * src/sim's dense unitary builder) and record it in
     * ApproxSample::measuredDistance. Exponential in qubit count —
     * the pipeline rejects circuits wider than
     * @ref kMaxFullCertQubits with QuestError(InvalidInput).
     */
    Full = 0,

    /**
     * Large-circuit mode (`quest_compile --large`), after QGo: never
     * construct a full unitary or statevector (src/sim is untouched;
     * the `sim.unitary_builds` / `sim.statevector_builds` counters
     * stay flat). Verification degrades to the structural per-block
     * checks plus the reported Theorem-1 bound certificate
     * (QuestResult::certificate). Scales to hundreds of qubits.
     */
    BlockBound = 1,
};

/**
 * Widest circuit the Full-mode measured certificate accepts: the
 * dense unitary builder's own limit (a 2^n x 2^n matrix; 14 qubits
 * is ~4 GiB). Wider circuits must use SelectionMode::BlockBound.
 */
inline constexpr int kMaxFullCertQubits = 14;

/** Stable lower-case name ("full", "block-bound"). */
inline const char *
selectionModeName(SelectionMode mode)
{
    return mode == SelectionMode::BlockBound ? "block-bound" : "full";
}

} // namespace quest

#endif // QUEST_QUEST_MODE_HH
