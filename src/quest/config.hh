/**
 * @file
 * QUEST pipeline configuration (Sec. 4.1 defaults).
 */

#ifndef QUEST_QUEST_CONFIG_HH
#define QUEST_QUEST_CONFIG_HH

#include <cstdint>
#include <string>

#include "anneal/dual_annealing.hh"
#include "quest/mode.hh"
#include "resilience/budget.hh"
#include "synth/leap_synthesizer.hh"

namespace quest {

/** What a fired run-level deadline does to the pipeline. */
enum class DeadlinePolicy {
    /**
     * Always produce a valid (possibly degraded) ensemble: blocks
     * whose synthesis did not finish fall back to the original block
     * circuit (distance 0 — safe under the Theorem-1 additive
     * bound), and STEP 3 keeps whatever samples it selected in time,
     * falling back to the all-original sample if none.
     */
    Degrade,

    /** Abort with QuestError(Timeout/Cancelled) at the next safe
     *  point instead of degrading. */
    Fail,
};

/** End-to-end pipeline settings. */
struct QuestConfig
{
    /** Maximum partition block width (paper: four qubits). */
    int maxBlockSize = 4;

    /**
     * Full-circuit process-distance threshold per block: the
     * annealer rejects samples whose Sec. 3.8 bound exceeds
     * thresholdPerBlock * numBlocks (the paper scales the threshold
     * proportionally to the block count). Fig. 16 shows QUEST's
     * ensemble output stays accurate across a wide 0.1-0.5 range;
     * 0.3 admits the coarse approximations that deliver the deep
     * Trotter-circuit reductions.
     */
    double thresholdPerBlock = 0.3;

    /**
     * Absolute ceiling on the full-circuit threshold. Linear block
     * scaling alone makes many-block circuits accept arbitrarily
     * coarse samples (and starves the annealer when no mix fits);
     * capping keeps the ensemble output meaningful while still
     * letting QUEST approximate the blocks that compress best.
     */
    double thresholdCap = 0.6;

    /** Maximum ensemble size M (paper: 16). */
    int maxSamples = 16;

    /** Objective weight on normalized CNOT count (paper: 0.5, with
     *  1 - cnotWeight on approximation dissimilarity). */
    double cnotWeight = 0.5;

    /** Cap on approximations kept per block (bounds annealer cost). */
    int maxApproxPerBlock = 24;

    /**
     * How the selected ensemble is certified (quest/mode.hh). Full
     * (default) measures the exact full-circuit process distance of
     * every sample and is limited to kMaxFullCertQubits; BlockBound
     * (`quest_compile --large`) reports only the Theorem-1 bound and
     * never builds a full unitary or statevector, scaling to
     * hundreds of qubits. Identical samples are selected either way.
     */
    SelectionMode selectionMode = SelectionMode::Full;

    /** Per-block synthesis settings. */
    SynthConfig synth;

    /** Dual-annealing settings for sample selection. */
    AnnealOptions anneal;

    /** Worker threads for parallel block synthesis (0 = all cores).
     *  This is the whole pipeline's thread budget: one shared pool
     *  serves both across-block and within-block parallelism. */
    unsigned threads = 0;

    /**
     * Externally owned worker pool (not owned; must outlive run()).
     * When set it overrides @ref threads: the run claims indices from
     * this pool's cooperative parallelFor instead of spawning its
     * own workers, which is how the compile service shares one
     * machine-wide thread budget across concurrent jobs.
     */
    ThreadPool *pool = nullptr;

    /**
     * Directory for the persistent synthesis cache (src/cache);
     * empty disables it. Safe to share between concurrent processes.
     * Identical (block unitary, synthesis config) pairs then skip
     * LEAP search entirely on warm runs, with byte-identical results.
     */
    std::string cacheDir;

    /** Size budget for the persistent cache (0 = unbounded). */
    uint64_t cacheMaxBytes = uint64_t{1} << 30;

    /**
     * Externally owned synthesis store (not owned; must outlive
     * run()). When set it overrides @ref cacheDir — the pipeline
     * consults this hook instead of opening its own cache::
     * SynthesisCache, so concurrent service jobs dedup identical
     * block unitaries against one shared store. The hook must be
     * thread-safe (SynthesisCache and CheckpointJournal both are).
     */
    SynthCacheHook *sharedCache = nullptr;

    /**
     * Run the structural IR verifiers (src/verify) on the output of
     * every pipeline step: the lowered circuit and partition after
     * STEP 1, every per-block approximation after STEP 2, every
     * selected sample after STEP 3, plus the synthesizer's own
     * candidate verification. A failure is an internal invariant
     * violation and panics. Defaults on in debug builds.
     */
#ifdef NDEBUG
    bool verify = false;
#else
    bool verify = true;
#endif

    /** Master seed (annealer seeds derive from it per sample). */
    uint64_t seed = 99;

    /**
     * Wall-clock ceiling for the whole run in seconds (0 = none),
     * armed when run() starts. What happens when it fires is
     * @ref deadlinePolicy's call. A bounded run trades determinism
     * for liveness; the synthesis cache stays byte-exact regardless
     * (truncated block searches are never cached).
     */
    double runTimeoutSeconds = 0.0;

    /** Wall-clock ceiling per block synthesis in seconds (0 = none);
     *  a block that exceeds it falls back to its original circuit. */
    double blockTimeoutSeconds = 0.0;

    /** Degrade (default) or fail when the run deadline fires. */
    DeadlinePolicy deadlinePolicy = DeadlinePolicy::Degrade;

    /**
     * Optional cooperative cancellation for the run (not owned; must
     * outlive run()). Cancelling it stops workers at their next safe
     * point; under Degrade the partial result is still a valid
     * ensemble.
     */
    const resilience::CancelToken *cancel = nullptr;

    /**
     * Directory for the crash-safe run journal (quest/checkpoint.hh);
     * empty disables checkpointing. With @ref resume set, completed
     * block syntheses and sample selections recorded by an earlier
     * (killed) run of the same circuit + config are replayed
     * bit-identically instead of recomputed; without it the journal
     * is reset at run start.
     */
    std::string checkpointDir;

    /** Trust and replay an existing matching journal. */
    bool resume = false;
};

} // namespace quest

#endif // QUEST_QUEST_CONFIG_HH
