/**
 * @file
 * The dual-annealing objective of Algorithm 1, generalized to
 * partitioned circuits via the block-similarity fraction (Sec. 3.6).
 */

#ifndef QUEST_QUEST_OBJECTIVE_HH
#define QUEST_QUEST_OBJECTIVE_HH

#include <vector>

#include "quest/result.hh"

namespace quest {

/**
 * Scores a candidate full-circuit approximation (one approximation
 * index per block) against the already-selected samples:
 *
 *   - 1.0 if the Sec. 3.8 distance bound exceeds the threshold;
 *   - normalized CNOT count if nothing is selected yet;
 *   - w * cnorm + (1 - w) * similarity otherwise, where similarity
 *     is the mean over selected samples of the fraction of blocks
 *     whose approximations are "similar" (Alg. 1 line 13).
 */
class SelectionObjective
{
  public:
    /**
     * @param result   pipeline state with blockApprox/blockSimilar
     *                 populated
     * @param selected already-selected choice vectors
     * @param threshold bound threshold
     * @param cnot_weight objective weight on CNOT count
     */
    SelectionObjective(const QuestResult &result,
                       const std::vector<std::vector<int>> &selected,
                       double threshold, double cnot_weight);

    /** Map annealer coordinates in [0, 1) to approximation indices. */
    std::vector<int> toChoice(const std::vector<double> &x) const;

    /** Score a choice vector. */
    double scoreChoice(const std::vector<int> &choice) const;

    /** Annealer-facing objective over [0, 1)^numBlocks. */
    double operator()(const std::vector<double> &x) const;

    /** Distance bound (sum of chosen block distances). */
    double bound(const std::vector<int> &choice) const;

    /** CNOT count of the assembled choice. */
    size_t cnots(const std::vector<int> &choice) const;

  private:
    const QuestResult &result;
    const std::vector<std::vector<int>> &selected;
    double threshold;
    double cnotWeight;
};

} // namespace quest

#endif // QUEST_QUEST_OBJECTIVE_HH
