#include "quest/pipeline.hh"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "cache/synthesis_cache.hh"
#include "ir/lower.hh"
#include "linalg/distance.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "quest/objective.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "util/timer.hh"
#include "verify/verifier.hh"

namespace quest {

namespace {

/** Byte-exact cache key for a block unitary (identical Trotter
 *  blocks repeat across a circuit; synthesize each only once). */
std::string
matrixKey(const Matrix &m)
{
    std::string key(reinterpret_cast<const char *>(m.data().data()),
                    m.data().size() * sizeof(Complex));
    return key;
}

} // namespace

size_t
QuestResult::minSampleCnots() const
{
    QUEST_ASSERT(!samples.empty(), "no samples selected");
    size_t best = samples.front().cnotCount;
    for (const auto &s : samples)
        best = std::min(best, s.cnotCount);
    return best;
}

double
QuestResult::meanSampleCnots() const
{
    QUEST_ASSERT(!samples.empty(), "no samples selected");
    double sum = 0.0;
    for (const auto &s : samples)
        sum += static_cast<double>(s.cnotCount);
    return sum / static_cast<double>(samples.size());
}

QuestPipeline::QuestPipeline(QuestConfig config)
    : cfg(std::move(config))
{
    QUEST_ASSERT(cfg.maxSamples >= 1, "need at least one sample");
    QUEST_ASSERT(cfg.maxApproxPerBlock >= 2,
                 "need at least two approximations per block");
    if (!cfg.cacheDir.empty()) {
        cache::CacheConfig cc;
        cc.dir = cfg.cacheDir;
        cc.maxBytes = cfg.cacheMaxBytes;
        synthCache = std::make_unique<cache::SynthesisCache>(cc);
    }
}

QuestPipeline::~QuestPipeline() = default;

QuestResult
QuestPipeline::run(const Circuit &circuit) const
{
    QUEST_TRACE_SCOPE("quest.pipeline");
    static auto &runs_counter =
        obs::MetricsRegistry::global().counter("quest.pipeline.runs");
    runs_counter.increment();

    QuestResult result;
    Stopwatch partition_watch, synth_watch, anneal_watch;

    // ---- STEP 1: lower and partition. --------------------------------
    {
        QUEST_TRACE_SCOPE("quest.partition");
        {
            ScopedTimer timer(partition_watch);
            result.original = lowerToNative(circuit).withoutPseudoOps();
            ScanPartitioner partitioner(cfg.maxBlockSize);
            result.blocks = partitioner.partition(result.original);
        }
        result.originalCnots = result.original.cnotCount();
        QUEST_ASSERT(!result.blocks.empty(), "empty circuit");
        if (cfg.verify) {
            verifyOrPanic(result.original,
                          {.requireNative = true,
                           .allowPseudoOps = false},
                          "STEP 1 lowered circuit");
            verifyOrPanic(result.original, result.blocks,
                          cfg.maxBlockSize, "STEP 1 partition");
        }
    }
    const size_t num_blocks = result.blocks.size();
    obs::MetricsRegistry::global().gauge("quest.blocks").set(
        static_cast<int64_t>(num_blocks));
    result.threshold = std::min(cfg.thresholdPerBlock *
                                    static_cast<double>(num_blocks),
                                cfg.thresholdCap);

    // ---- STEP 2: approximate synthesis per block (parallel, with a
    // cache so identical block unitaries synthesize once). ------------
    {
        QUEST_TRACE_SCOPE("quest.synthesis");
        ScopedTimer timer(synth_watch);

        std::vector<Matrix> targets(num_blocks);
        for (size_t b = 0; b < num_blocks; ++b)
            targets[b] = circuitUnitary(result.blocks[b].circuit);

        std::map<std::string, size_t> unique;  // key -> first block
        std::vector<size_t> canonical(num_blocks);
        for (size_t b = 0; b < num_blocks; ++b) {
            auto [it, inserted] =
                unique.try_emplace(matrixKey(targets[b]), b);
            canonical[b] = it->second;
        }
        // In-memory dedup across the run's blocks: repeats of a block
        // unitary are cache hits (the synthesizer itself counts disk
        // hits and actual searches, so hits + misses == blocks).
        static auto &cache_hits =
            obs::MetricsRegistry::global().counter(
                "quest.synth.cache_hits");
        cache_hits.add(num_blocks - unique.size());

        std::vector<SynthOutput> outputs(num_blocks);
        {
            std::vector<size_t> work;
            for (size_t b = 0; b < num_blocks; ++b)
                if (canonical[b] == b)
                    work.push_back(b);

            // One cooperative pool is the whole pipeline's thread
            // budget: its parallelFor claims indices from a shared
            // cursor and the caller participates, so the nested
            // within-synthesizer parallelFor reuses the same threads
            // instead of oversubscribing (budget - 1 workers + this
            // thread = budget busy threads total).
            const unsigned budget = std::max(
                1u, cfg.threads == 0 ? ThreadPool::hardwareConcurrency()
                                     : cfg.threads);
            ThreadPool pool(budget - 1);

            SynthConfig synth_cfg = cfg.synth;
            if (cfg.verify)
                synth_cfg.verifyCandidates = true;
            synth_cfg.pool = &pool;
            synth_cfg.cache = synthCache.get();
            LeapSynthesizer synthesizer(synth_cfg);

            pool.parallelFor(work.size(), [&](size_t i) {
                QUEST_TRACE_SCOPE("quest.block_synth");
                const size_t b = work[i];
                const Circuit &block = result.blocks[b].circuit;
                std::vector<std::pair<int, int>> skeleton;
                for (const Gate &g : block)
                    if (g.type == GateType::CX)
                        skeleton.emplace_back(g.qubits[0],
                                              g.qubits[1]);
                outputs[b] = synthesizer.synthesize(
                    targets[b], static_cast<int>(skeleton.size()),
                    &skeleton);
            });
        }

        result.blockApprox.resize(num_blocks);
        std::vector<std::vector<Matrix>> approx_unitaries(num_blocks);
        for (size_t b = 0; b < num_blocks; ++b) {
            const SynthOutput &out = outputs[canonical[b]];
            auto &list = result.blockApprox[b];
            auto &mats = approx_unitaries[b];

            // Index 0: the original block itself (distance zero) so a
            // feasible choice always exists and QUEST can never do
            // worse than the Baseline.
            const int original_cnots = static_cast<int>(
                result.blocks[b].circuit.cnotCount());
            list.push_back({result.blocks[b].circuit, 0.0,
                            original_cnots});
            mats.push_back(targets[b]);

            // Keep only candidates that can appear in a feasible
            // sample (a single block distance above the full-circuit
            // threshold already violates the bound) and that do not
            // exceed the original block's CNOT count.
            for (const SynthCandidate &c : out.candidates) {
                if (static_cast<int>(list.size()) >=
                    cfg.maxApproxPerBlock) {
                    break;
                }
                if (c.distance > result.threshold ||
                    c.cnotCount > original_cnots) {
                    continue;
                }
                list.push_back({c.circuit, c.distance, c.cnotCount});
                mats.push_back(circuitUnitary(c.circuit));
            }
        }

        if (cfg.verify) {
            CircuitVerifier verifier({.requireNative = true,
                                      .allowPseudoOps = false});
            for (size_t b = 0; b < num_blocks; ++b) {
                for (size_t k = 0; k < result.blockApprox[b].size();
                     ++k) {
                    const Circuit &c = result.blockApprox[b][k].circuit;
                    QUEST_ASSERT(c.numQubits() ==
                                 result.blocks[b].width(),
                                 "approximation ", k, " of block ", b,
                                 " spans ", c.numQubits(),
                                 " wires; the block has ",
                                 result.blocks[b].width());
                    VerifyReport report = verifier.verify(c);
                    if (!report.ok()) {
                        QUEST_PANIC("STEP 2 approximation ", k,
                                    " of block ", b,
                                    " failed verification:\n",
                                    report.toString());
                    }
                }
            }
        }

        // Pairwise block-approximation similarity (Alg. 1 line 13):
        // similar iff hs(A_i, A_j) <= max(dist_i, dist_j).
        QUEST_TRACE_SCOPE("quest.similarity");
        result.blockSimilar.resize(num_blocks);
        for (size_t b = 0; b < num_blocks; ++b) {
            const auto &list = result.blockApprox[b];
            const auto &mats = approx_unitaries[b];
            const size_t count = list.size();
            auto &sim = result.blockSimilar[b];
            sim.assign(count * count, 0);
            for (size_t i = 0; i < count; ++i) {
                sim[i * count + i] = 1;
                for (size_t j = i + 1; j < count; ++j) {
                    double dij = hsDistance(mats[i], mats[j]);
                    char s = dij <= std::max(list[i].distance,
                                             list[j].distance)
                                 ? 1
                                 : 0;
                    sim[i * count + j] = s;
                    sim[j * count + i] = s;
                }
            }
        }
    }

    // ---- STEP 3: dual-annealing selection of dissimilar samples. -----
    {
        QUEST_TRACE_SCOPE("quest.anneal");
        ScopedTimer timer(anneal_watch);

        std::vector<std::vector<int>> selected;
        std::set<std::vector<int>> seen;
        const std::vector<double> lo(num_blocks, 0.0);
        const std::vector<double> hi(num_blocks, 1.0);

        for (int s = 0; s < cfg.maxSamples; ++s) {
            SelectionObjective objective(result, selected,
                                         result.threshold,
                                         cfg.cnotWeight);
            AnnealOptions options = cfg.anneal;
            options.seed = cfg.seed + 0x9e3779b9ull * (s + 1);
            // Start at the always-feasible all-original choice so
            // large-block-count searches are not lost in the
            // infeasible region.
            options.initial =
                std::vector<double>(num_blocks, 0.0);
            AnnealResult r = dualAnnealing(objective, lo, hi, options);
            std::vector<int> choice = objective.toChoice(r.x);

            if (objective.bound(choice) > result.threshold) {
                // The annealer found nothing feasible; fall back to
                // the always-feasible original choice once.
                if (!selected.empty())
                    break;
                choice.assign(num_blocks, 0);
            }
            if (!seen.insert(choice).second)
                break;  // duplicate: the search space is exhausted

            ApproxSample sample;
            sample.choice = choice;
            sample.distanceBound = objective.bound(choice);
            sample.cnotCount = objective.cnots(choice);

            std::vector<Block> chosen = result.blocks;
            for (size_t b = 0; b < num_blocks; ++b)
                chosen[b].circuit =
                    result.blockApprox[b][choice[b]].circuit;
            sample.circuit = assembleBlocks(
                chosen, result.original.numQubits());

            selected.push_back(std::move(choice));
            result.samples.push_back(std::move(sample));
        }

        if (cfg.verify) {
            for (size_t s = 0; s < result.samples.size(); ++s) {
                verifyOrPanic(result.samples[s].circuit,
                              {.requireNative = true,
                               .allowPseudoOps = false},
                              detail::concat("STEP 3 sample ", s));
            }
        }
    }

    result.partitionSeconds = partition_watch.seconds();
    result.synthesisSeconds = synth_watch.seconds();
    result.annealSeconds = anneal_watch.seconds();
    obs::MetricsRegistry::global().gauge("quest.samples").set(
        static_cast<int64_t>(result.samples.size()));
    return result;
}

} // namespace quest
