#include "quest/pipeline.hh"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "cache/synthesis_cache.hh"
#include "ir/lower.hh"
#include "linalg/distance.hh"
#include "metrics/output_distance.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "quest/checkpoint.hh"
#include "quest/objective.hh"
#include "resilience/error.hh"
#include "resilience/thread_pool.hh"
#include "sim/unitary_builder.hh"
#include "util/logging.hh"
#include "util/timer.hh"
#include "verify/verifier.hh"
#include "util/names.hh"

namespace quest {

namespace {

/** Byte-exact cache key for a block unitary (identical Trotter
 *  blocks repeat across a circuit; synthesize each only once). */
std::string
matrixKey(const Matrix &m)
{
    std::string key(reinterpret_cast<const char *>(m.data().data()),
                    m.data().size() * sizeof(Complex));
    return key;
}

/** Map one failed block synthesis to its structured outcome and
 *  count it (`resilience.*` counters). */
BlockOutcome
outcomeForError(const resilience::QuestError &e)
{
    using resilience::ErrorCategory;
    BlockOutcome outcome;
    switch (e.category()) {
      case ErrorCategory::Timeout:
        outcome.status = BlockStatus::Timeout;
        break;
      case ErrorCategory::Cancelled:
        outcome.status = BlockStatus::Fallback;
        break;
      case ErrorCategory::Diverged:
        outcome.status = BlockStatus::Diverged;
        break;
      default:
        outcome.status = BlockStatus::Faulted;
        break;
    }
    outcome.detail = e.describe();
    return outcome;
}

void
countOutcomes(const std::vector<BlockOutcome> &outcomes)
{
    auto &registry = obs::MetricsRegistry::global();
    static auto &fallbacks = registry.counter(names::kMetricFallbacks);
    static auto &timeouts = registry.counter(names::kMetricTimeouts);
    static auto &divergences =
        registry.counter(names::kMetricDivergences);
    static auto &faults = registry.counter(names::kMetricFaults);
    for (const BlockOutcome &o : outcomes) {
        switch (o.status) {
          case BlockStatus::Ok:
            break;
          case BlockStatus::Timeout:
            fallbacks.increment();
            timeouts.increment();
            break;
          case BlockStatus::Diverged:
            fallbacks.increment();
            divergences.increment();
            break;
          case BlockStatus::Faulted:
            fallbacks.increment();
            faults.increment();
            break;
          case BlockStatus::Fallback:
            fallbacks.increment();
            break;
        }
    }
}

/** Under DeadlinePolicy::Fail, abort at a step boundary once the run
 *  budget fires. */
void
checkRunBudget(const QuestConfig &cfg, const resilience::Budget &budget,
               const char *step)
{
    if (cfg.deadlinePolicy != DeadlinePolicy::Fail)
        return;
    const auto stop = budget.stop();
    if (stop == resilience::StopReason::None)
        return;
    using resilience::ErrorCategory;
    const auto category = stop == resilience::StopReason::Cancelled
                              ? ErrorCategory::Cancelled
                              : ErrorCategory::Timeout;
    throw resilience::QuestError(
        category, std::string("run budget exhausted (") +
                      resilience::stopReasonName(stop) + ")")
        .withContext(step);
}

} // namespace

const char *
blockStatusName(BlockStatus status)
{
    switch (status) {
      case BlockStatus::Ok:
        return "ok";
      case BlockStatus::Timeout:
        return "timeout";
      case BlockStatus::Diverged:
        return "diverged";
      case BlockStatus::Faulted:
        return "faulted";
      case BlockStatus::Fallback:
        return "fallback";
    }
    return "unknown";
}

size_t
QuestResult::okBlocks() const
{
    size_t n = 0;
    for (const BlockOutcome &o : blockOutcomes)
        n += o.ok() ? 1 : 0;
    return n;
}

size_t
QuestResult::fallbackBlocks() const
{
    return blockOutcomes.size() - okBlocks();
}

size_t
QuestResult::minSampleCnots() const
{
    QUEST_ASSERT(!samples.empty(), "no samples selected");
    size_t best = samples.front().cnotCount;
    for (const auto &s : samples)
        best = std::min(best, s.cnotCount);
    return best;
}

double
QuestResult::meanSampleCnots() const
{
    QUEST_ASSERT(!samples.empty(), "no samples selected");
    double sum = 0.0;
    for (const auto &s : samples)
        sum += static_cast<double>(s.cnotCount);
    return sum / static_cast<double>(samples.size());
}

QuestPipeline::QuestPipeline(QuestConfig config)
    : cfg(std::move(config))
{
    QUEST_ASSERT(cfg.maxSamples >= 1, "need at least one sample");
    QUEST_ASSERT(cfg.maxApproxPerBlock >= 2,
                 "need at least two approximations per block");
    if (!cfg.cacheDir.empty() && !cfg.sharedCache) {
        cache::CacheConfig cc;
        cc.dir = cfg.cacheDir;
        cc.maxBytes = cfg.cacheMaxBytes;
        synthCache = std::make_unique<cache::SynthesisCache>(cc);
    }
}

QuestPipeline::~QuestPipeline() = default;

QuestResult
QuestPipeline::run(const Circuit &circuit) const
{
    QUEST_TRACE_SCOPE("quest.pipeline");
    static auto &runs_counter =
        obs::MetricsRegistry::global().counter(names::kMetricPipelineRuns);
    runs_counter.increment();

    // Full mode ends with a measured full-circuit certificate, which
    // needs the dense unitary builder; refuse early (before any
    // synthesis is spent) rather than assert-fail hours in. The
    // block-only BlockBound mode has no width ceiling.
    if (cfg.selectionMode == SelectionMode::Full &&
        circuit.numQubits() > kMaxFullCertQubits) {
        throw resilience::QuestError(
            resilience::ErrorCategory::InvalidInput,
            detail::concat(
                "circuit has ", circuit.numQubits(),
                " qubits; SelectionMode::Full measures full-circuit "
                "distances and is limited to ", kMaxFullCertQubits,
                " — use SelectionMode::BlockBound "
                "(quest_compile --large)"));
    }

    QuestResult result;
    Stopwatch partition_watch, synth_watch, anneal_watch;

    // The run-level interruption context: armed only when the caller
    // configured a timeout or a cancel token, in which case every
    // long-running loop below (synthesis levels, L-BFGS iterations,
    // annealing sweeps) polls it at its safe points.
    const resilience::Budget runBudget(
        cfg.runTimeoutSeconds > 0.0
            ? resilience::Deadline::after(cfg.runTimeoutSeconds)
            : resilience::Deadline::never(),
        cfg.cancel);

    // ---- STEP 1: lower and partition. --------------------------------
    {
        QUEST_TRACE_SCOPE("quest.partition");
        {
            ScopedTimer timer(partition_watch);
            result.original = lowerToNative(circuit).withoutPseudoOps();
            ScanPartitioner partitioner(cfg.maxBlockSize);
            result.blocks = partitioner.partition(result.original);
        }
        result.originalCnots = result.original.cnotCount();
        QUEST_ASSERT(!result.blocks.empty(), "empty circuit");
        if (cfg.verify) {
            verifyOrPanic(result.original,
                          {.requireNative = true,
                           .allowPseudoOps = false},
                          "STEP 1 lowered circuit");
            verifyOrPanic(result.original, result.blocks,
                          cfg.maxBlockSize, "STEP 1 partition");
        }
    }
    const size_t num_blocks = result.blocks.size();
    obs::MetricsRegistry::global().gauge(names::kMetricBlocks).set(
        static_cast<int64_t>(num_blocks));
    result.threshold = std::min(cfg.thresholdPerBlock *
                                    static_cast<double>(num_blocks),
                                cfg.thresholdCap);

    // Crash-safe run journal: completed block syntheses and sample
    // selections are recorded as they finish, and a resume run
    // replays them instead of recomputing (quest/checkpoint.hh).
    std::unique_ptr<CheckpointJournal> checkpoint;
    if (!cfg.checkpointDir.empty()) {
        checkpoint = std::make_unique<CheckpointJournal>(
            cfg.checkpointDir, runFingerprint(result.original, cfg),
            cfg.resume);
        if (checkpoint->resumed()) {
            inform("checkpoint: resuming from '",
                   checkpoint->journalPath(), "' (",
                   checkpoint->blockCount(),
                   " block syntheses recorded)");
        }
    }
    checkRunBudget(cfg, runBudget, "after STEP 1");

    // ---- STEP 2: approximate synthesis per block (parallel, with a
    // cache so identical block unitaries synthesize once). ------------
    {
        QUEST_TRACE_SCOPE("quest.synthesis");
        ScopedTimer timer(synth_watch);

        std::vector<Matrix> targets(num_blocks);
        for (size_t b = 0; b < num_blocks; ++b)
            targets[b] = circuitUnitary(result.blocks[b].circuit);

        std::map<std::string, size_t> unique;  // key -> first block
        std::vector<size_t> canonical(num_blocks);
        for (size_t b = 0; b < num_blocks; ++b) {
            auto [it, inserted] =
                unique.try_emplace(matrixKey(targets[b]), b);
            canonical[b] = it->second;
        }
        // In-memory dedup across the run's blocks: repeats of a block
        // unitary are cache hits (the synthesizer itself counts disk
        // hits and actual searches, so hits + misses == blocks).
        static auto &cache_hits =
            obs::MetricsRegistry::global().counter(
                names::kMetricSynthCacheHits);
        cache_hits.add(num_blocks - unique.size());

        std::vector<SynthOutput> outputs(num_blocks);
        std::vector<BlockOutcome> outcomes(num_blocks);
        {
            std::vector<size_t> work;
            for (size_t b = 0; b < num_blocks; ++b)
                if (canonical[b] == b)
                    work.push_back(b);

            // One cooperative pool is the whole pipeline's thread
            // budget: its parallelFor claims indices from a shared
            // cursor and the caller participates, so the nested
            // within-synthesizer parallelFor reuses the same threads
            // instead of oversubscribing (budget - 1 workers + this
            // thread = budget busy threads total). An injected
            // cfg.pool extends the same sharing across concurrent
            // pipeline runs: each run's parallelFor has its own
            // batch cursor, so runs interleave safely on one pool.
            const unsigned budget = std::max(
                1u, cfg.threads == 0 ? ThreadPool::hardwareConcurrency()
                                     : cfg.threads);
            std::unique_ptr<ThreadPool> owned;
            if (!cfg.pool)
                owned = std::make_unique<ThreadPool>(budget - 1);
            ThreadPool &pool = cfg.pool ? *cfg.pool : *owned;

            SynthConfig synth_cfg = cfg.synth;
            if (cfg.verify)
                synth_cfg.verifyCandidates = true;
            synth_cfg.pool = &pool;
            ChainedSynthCache chained(checkpoint.get(),
                                      cfg.sharedCache ? cfg.sharedCache
                                                      : synthCache.get());
            synth_cfg.cache = &chained;

            // Blocks the budget never lets us start keep this
            // outcome; every other path overwrites it below.
            for (BlockOutcome &o : outcomes) {
                o.status = BlockStatus::Fallback;
                o.detail = "not attempted: run budget exhausted";
            }

            pool.parallelFor(work.size(), [&](size_t i) {
                QUEST_TRACE_SCOPE("quest.block_synth");
                const size_t b = work[i];
                const Circuit &block = result.blocks[b].circuit;
                std::vector<std::pair<int, int>> skeleton;
                for (const Gate &g : block)
                    if (g.type == GateType::CX)
                        skeleton.emplace_back(g.qubits[0],
                                              g.qubits[1]);

                SynthConfig block_cfg = synth_cfg;
                block_cfg.budget = runBudget;
                if (cfg.blockTimeoutSeconds > 0.0) {
                    block_cfg.budget = block_cfg.budget.withDeadline(
                        resilience::Deadline::after(
                            cfg.blockTimeoutSeconds));
                }
                try {
                    LeapSynthesizer block_synth(block_cfg);
                    outputs[b] = block_synth.synthesize(
                        targets[b], static_cast<int>(skeleton.size()),
                        &skeleton);
                    outcomes[b] = BlockOutcome{};
                } catch (const resilience::QuestError &e) {
                    outcomes[b] = outcomeForError(e);
                    warn("block ", b,
                         " degraded to its original circuit (",
                         blockStatusName(outcomes[b].status),
                         "): ", e.what());
                } catch (const std::exception &e) {
                    outcomes[b] =
                        BlockOutcome{BlockStatus::Faulted, e.what()};
                    warn("block ", b,
                         " degraded to its original circuit "
                         "(faulted): ", e.what());
                }
            }, runBudget.cancel);
        }

        // Duplicate blocks share their canonical block's outcome.
        result.blockOutcomes.resize(num_blocks);
        for (size_t b = 0; b < num_blocks; ++b)
            result.blockOutcomes[b] = outcomes[canonical[b]];
        countOutcomes(result.blockOutcomes);
        checkRunBudget(cfg, runBudget, "during STEP 2");

        result.blockApprox.resize(num_blocks);
        std::vector<std::vector<Matrix>> approx_unitaries(num_blocks);
        for (size_t b = 0; b < num_blocks; ++b) {
            const SynthOutput &out = outputs[canonical[b]];
            auto &list = result.blockApprox[b];
            auto &mats = approx_unitaries[b];

            // Index 0: the original block itself (distance zero) so a
            // feasible choice always exists and QUEST can never do
            // worse than the Baseline.
            const int original_cnots = static_cast<int>(
                result.blocks[b].circuit.cnotCount());
            list.push_back({result.blocks[b].circuit, 0.0,
                            original_cnots});
            mats.push_back(targets[b]);

            // Keep only candidates that can appear in a feasible
            // sample (a single block distance above the full-circuit
            // threshold already violates the bound) and that do not
            // exceed the original block's CNOT count.
            for (const SynthCandidate &c : out.candidates) {
                if (static_cast<int>(list.size()) >=
                    cfg.maxApproxPerBlock) {
                    break;
                }
                if (c.distance > result.threshold ||
                    c.cnotCount > original_cnots) {
                    continue;
                }
                list.push_back({c.circuit, c.distance, c.cnotCount});
                mats.push_back(circuitUnitary(c.circuit));
            }
        }

        if (cfg.verify) {
            CircuitVerifier verifier({.requireNative = true,
                                      .allowPseudoOps = false});
            for (size_t b = 0; b < num_blocks; ++b) {
                for (size_t k = 0; k < result.blockApprox[b].size();
                     ++k) {
                    const Circuit &c = result.blockApprox[b][k].circuit;
                    QUEST_ASSERT(c.numQubits() ==
                                 result.blocks[b].width(),
                                 "approximation ", k, " of block ", b,
                                 " spans ", c.numQubits(),
                                 " wires; the block has ",
                                 result.blocks[b].width());
                    VerifyReport report = verifier.verify(c);
                    if (!report.ok()) {
                        QUEST_PANIC("STEP 2 approximation ", k,
                                    " of block ", b,
                                    " failed verification:\n",
                                    report.toString());
                    }
                }
            }
        }

        // Pairwise block-approximation similarity (Alg. 1 line 13):
        // similar iff hs(A_i, A_j) <= max(dist_i, dist_j).
        QUEST_TRACE_SCOPE("quest.similarity");
        result.blockSimilar.resize(num_blocks);
        for (size_t b = 0; b < num_blocks; ++b) {
            const auto &list = result.blockApprox[b];
            const auto &mats = approx_unitaries[b];
            const size_t count = list.size();
            auto &sim = result.blockSimilar[b];
            sim.assign(count * count, 0);
            for (size_t i = 0; i < count; ++i) {
                sim[i * count + i] = 1;
                for (size_t j = i + 1; j < count; ++j) {
                    double dij = hsDistance(mats[i], mats[j]);
                    char s = dij <= std::max(list[i].distance,
                                             list[j].distance)
                                 ? 1
                                 : 0;
                    sim[i * count + j] = s;
                    sim[j * count + i] = s;
                }
            }
        }
    }

    // ---- STEP 3: dual-annealing selection of dissimilar samples. -----
    {
        QUEST_TRACE_SCOPE("quest.anneal");
        ScopedTimer timer(anneal_watch);

        std::vector<std::vector<int>> selected;
        std::set<std::vector<int>> seen;
        const std::vector<double> lo(num_blocks, 0.0);
        const std::vector<double> hi(num_blocks, 1.0);

        // Assemble one sample from a choice vector and record it.
        // bound() and cnots() depend only on the choice itself, so
        // replayed samples score identically to freshly-annealed ones.
        auto acceptChoice = [&](std::vector<int> choice) {
            SelectionObjective objective(result, selected,
                                         result.threshold,
                                         cfg.cnotWeight);
            ApproxSample sample;
            sample.choice = choice;
            sample.distanceBound = objective.bound(choice);
            sample.cnotCount = objective.cnots(choice);

            std::vector<Block> chosen = result.blocks;
            for (size_t b = 0; b < num_blocks; ++b)
                chosen[b].circuit =
                    result.blockApprox[b][choice[b]].circuit;
            sample.circuit = assembleBlocks(
                chosen, result.original.numQubits());

            selected.push_back(std::move(choice));
            result.samples.push_back(std::move(sample));
        };

        // Replay the resumed journal's recorded selections. STEP 3 is
        // deterministic given the block approximations, so annealing
        // onward from the replayed prefix continues the interrupted
        // run's sequence exactly.
        bool replay_ok = true;
        if (checkpoint && checkpoint->resumed()) {
            for (std::vector<int> choice :
                 checkpoint->sampleChoices()) {
                bool valid =
                    choice.size() == num_blocks &&
                    static_cast<int>(result.samples.size()) <
                        cfg.maxSamples;
                for (size_t b = 0; valid && b < num_blocks; ++b) {
                    valid = choice[b] >= 0 &&
                            choice[b] <
                                static_cast<int>(
                                    result.blockApprox[b].size());
                }
                if (valid) {
                    SelectionObjective check(result, selected,
                                             result.threshold,
                                             cfg.cnotWeight);
                    valid = check.bound(choice) <= result.threshold &&
                            seen.insert(choice).second;
                }
                if (!valid) {
                    // The recorded suffix no longer applies (e.g. a
                    // block degraded differently this run): recompute
                    // from here instead of trusting it.
                    warn("checkpoint: recorded sample ",
                         result.samples.size(),
                         " is no longer feasible; re-annealing");
                    replay_ok = false;
                    break;
                }
                acceptChoice(std::move(choice));
            }
        }

        const bool anneal_done = checkpoint && checkpoint->resumed() &&
                                 replay_ok && checkpoint->step3Done();
        bool budget_cut = false;
        for (int s = static_cast<int>(result.samples.size());
             !anneal_done && s < cfg.maxSamples; ++s) {
            if (runBudget.exhausted()) {
                checkRunBudget(cfg, runBudget, "during STEP 3");
                budget_cut = true;
                break;  // Degrade: keep the samples selected so far
            }
            SelectionObjective objective(result, selected,
                                         result.threshold,
                                         cfg.cnotWeight);
            AnnealOptions options = cfg.anneal;
            options.seed = cfg.seed + 0x9e3779b9ull * (s + 1);
            options.budget = runBudget;
            // Start at the always-feasible all-original choice so
            // large-block-count searches are not lost in the
            // infeasible region.
            options.initial =
                std::vector<double>(num_blocks, 0.0);
            AnnealResult r = dualAnnealing(objective, lo, hi, options);
            if (r.stopped != resilience::StopReason::None) {
                // Truncated search: never record its result, so a
                // bounded run stays a prefix of the unbounded one.
                checkRunBudget(cfg, runBudget, "during STEP 3");
                budget_cut = true;
                break;
            }
            std::vector<int> choice = objective.toChoice(r.x);

            if (objective.bound(choice) > result.threshold) {
                // The annealer found nothing feasible; fall back to
                // the always-feasible original choice once.
                if (!selected.empty())
                    break;
                choice.assign(num_blocks, 0);
            }
            if (!seen.insert(choice).second)
                break;  // duplicate: the search space is exhausted

            if (checkpoint)
                checkpoint->appendSample(choice);
            acceptChoice(std::move(choice));
        }
        if (checkpoint && !budget_cut && !checkpoint->step3Done())
            checkpoint->markStep3Done();

        if (result.samples.empty()) {
            // Degrade floor: a valid result always has at least the
            // all-original sample (distance bound zero).
            acceptChoice(std::vector<int>(num_blocks, 0));
        }

        if (cfg.verify) {
            for (size_t s = 0; s < result.samples.size(); ++s) {
                verifyOrPanic(result.samples[s].circuit,
                              {.requireNative = true,
                               .allowPseudoOps = false},
                              detail::concat("STEP 3 sample ", s));
            }
        }
    }

    // ---- Certificate: what this run can promise about the ensemble.
    // Both modes report the Theorem-1 additive bound; Full mode
    // additionally measures the exact full-circuit HS distance of
    // every sample (the expensive part BlockBound exists to skip —
    // nothing below this comment may touch src/sim in that mode).
    {
        QUEST_TRACE_SCOPE("quest.certify");
        result.selectionMode = cfg.selectionMode;
        BoundCertificate &cert = result.certificate;
        cert.mode = cfg.selectionMode;
        cert.threshold = result.threshold;
        double bound_sum = 0.0;
        for (const ApproxSample &s : result.samples) {
            cert.maxBound = std::max(cert.maxBound, s.distanceBound);
            bound_sum += s.distanceBound;
        }
        cert.meanBound =
            bound_sum / static_cast<double>(result.samples.size());
        cert.outputEstimate = outputDistanceEstimate(cert.maxBound);

        if (cfg.selectionMode == SelectionMode::Full) {
            const Matrix original_u = buildUnitary(result.original);
            for (ApproxSample &s : result.samples) {
                if (runBudget.exhausted()) {
                    // Degrade: remaining samples stay unmeasured (the
                    // bound certificate above still covers them).
                    checkRunBudget(cfg, runBudget, "during certify");
                    break;
                }
                s.measuredDistance =
                    hsDistance(original_u, buildUnitary(s.circuit));
                cert.measuredSamples++;
                cert.maxMeasured =
                    std::max(cert.maxMeasured, s.measuredDistance);
                if (cfg.verify &&
                    s.measuredDistance > s.distanceBound + 1e-6) {
                    QUEST_PANIC(
                        "Theorem-1 violation: sample measured "
                        "distance ", s.measuredDistance,
                        " exceeds its bound ", s.distanceBound);
                }
            }
        }
    }

    result.partitionSeconds = partition_watch.seconds();
    result.synthesisSeconds = synth_watch.seconds();
    result.annealSeconds = anneal_watch.seconds();
    obs::MetricsRegistry::global().gauge(names::kMetricSamples).set(
        static_cast<int64_t>(result.samples.size()));
    return result;
}

} // namespace quest
