#include "quest/bound.hh"

#include "linalg/distance.hh"
#include "sim/unitary_builder.hh"
#include "util/logging.hh"

namespace quest {

double
processDistanceBound(const std::vector<double> &block_distances)
{
    double sum = 0.0;
    for (double d : block_distances) {
        QUEST_ASSERT(d >= 0.0, "negative block distance");
        sum += d;
    }
    return sum;
}

double
actualProcessDistance(const Circuit &original,
                      const Circuit &approximation)
{
    QUEST_ASSERT(original.numQubits() == approximation.numQubits(),
                 "width mismatch");
    Matrix u = buildUnitary(original);
    Matrix v = buildUnitary(approximation);
    return hsDistance(u, v);
}

} // namespace quest
