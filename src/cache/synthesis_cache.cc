#include "cache/synthesis_cache.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "cache/codec.hh"
#include "obs/metrics.hh"
#include "resilience/fault.hh"
#include "util/logging.hh"
#include "util/serialize.hh"
#include "util/sha256.hh"
#include "verify/verifier.hh"
#include "util/names.hh"
#include "util/annotations.hh"

namespace quest::cache {

namespace fs = std::filesystem;

namespace {

obs::Counter &
hitCounter()
{
    static auto &c = obs::MetricsRegistry::global().counter(names::kMetricCacheHit);
    return c;
}

obs::Counter &
missCounter()
{
    static auto &c = obs::MetricsRegistry::global().counter(names::kMetricCacheMiss);
    return c;
}

obs::Counter &
corruptCounter()
{
    static auto &c =
        obs::MetricsRegistry::global().counter(names::kMetricCacheCorrupt);
    return c;
}

obs::Counter &
staleCounter()
{
    static auto &c =
        obs::MetricsRegistry::global().counter(names::kMetricCacheStale);
    return c;
}

obs::Counter &
evictCounter()
{
    static auto &c =
        obs::MetricsRegistry::global().counter(names::kMetricCacheEvict);
    return c;
}

obs::Counter &
storeFailedCounter()
{
    static auto &c =
        obs::MetricsRegistry::global().counter(names::kMetricCacheStoreFailed);
    return c;
}

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    return -1;
}

/** Decode 64 lower-case hex characters into 32 bytes; false on any
 *  non-hex character. */
bool
keyToDigest(const std::string &key, uint8_t out[32])
{
    if (key.size() != 64)
        return false;
    for (size_t i = 0; i < 32; ++i) {
        const int hi = hexNibble(key[2 * i]);
        const int lo = hexNibble(key[2 * i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out[i] = static_cast<uint8_t>((hi << 4) | lo);
    }
    return true;
}

/** Read a whole file into @p out; false if it cannot be opened. */
bool
readFile(const fs::path &path, std::vector<uint8_t> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in && !in.eof())
        return false;
    const std::string &s = buf.str();
    out.assign(s.begin(), s.end());
    return true;
}

/** One entry found by a directory walk. */
struct EntryInfo
{
    fs::path path;
    uint64_t size = 0;
    // QUEST_ANALYZE_OK(determinism.fs-order): GC recency bookkeeping only
    fs::file_time_type mtime;
};

/** All published entries under @p objects (never throws). */
std::vector<EntryInfo>
listEntries(const fs::path &objects)
{
    QUEST_RESULT_NEUTRAL("GC walk: which entries get evicted affects "
                         "only cache hit rates, never a result");
    std::vector<EntryInfo> entries;
    std::error_code ec;
    fs::recursive_directory_iterator it(objects, ec), end;
    for (; !ec && it != end; it.increment(ec)) {
        std::error_code fec;
        if (!it->is_regular_file(fec) || it->path().extension() != ".qsc")
            continue;
        EntryInfo info;
        info.path = it->path();
        info.size = it->file_size(fec);
        if (fec)
            continue;
        info.mtime = it->last_write_time(fec);
        if (fec)
            continue;
        entries.push_back(std::move(info));
    }
    return entries;
}

/** The cache key an entry file at @p path claims to store (shard
 *  directory + stem), or "" if the layout does not match. */
std::string
keyFromPath(const fs::path &path)
{
    const std::string shard = path.parent_path().filename().string();
    const std::string stem = path.stem().string();
    const std::string key = shard + stem;
    return isCacheKey(key) ? key : std::string();
}

} // namespace

bool
isCacheKey(const std::string &key)
{
    if (key.size() != 64)
        return false;
    for (char c : key) {
        if (hexNibble(c) < 0)
            return false;
    }
    return true;
}

SynthesisCache::SynthesisCache(CacheConfig config) : cfg(std::move(config))
{
    QUEST_ASSERT(!cfg.dir.empty(), "synthesis cache needs a directory");
}

fs::path
SynthesisCache::entryPath(const std::string &key) const
{
    return fs::path(cfg.dir) / "objects" / key.substr(0, 2) /
           (key.substr(2) + ".qsc");
}

std::optional<SynthOutput>
SynthesisCache::parseEntry(const fs::path &path,
                           const std::string &expected_key, std::string *why)
{
    try {
        std::vector<uint8_t> raw;
        if (QUEST_FAULT_POINT(names::kFaultCacheLoadRead) ||
            !readFile(path, raw)) {
            *why = "unreadable";
            return std::nullopt;
        }

        ByteReader r(raw);
        uint8_t magic[4];
        r.bytes(magic, sizeof(magic));
        if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
            throw SerializeError("bad magic");

        const uint32_t version = r.u32();
        if (version != kFormatVersion) {
            *why = "stale: format version " + std::to_string(version) +
                   ", expected " + std::to_string(kFormatVersion);
            return std::nullopt;
        }

        uint8_t stored_digest[Sha256::kDigestSize];
        r.bytes(stored_digest, sizeof(stored_digest));
        uint8_t expected_digest[Sha256::kDigestSize];
        if (!keyToDigest(expected_key, expected_digest) ||
            std::memcmp(stored_digest, expected_digest,
                        sizeof(stored_digest)) != 0) {
            throw SerializeError("key digest mismatch");
        }

        const uint64_t payload_len = r.u64();
        const uint64_t checksum = r.u64();
        if (payload_len != r.remaining())
            throw SerializeError(
                "payload length " + std::to_string(payload_len) +
                " does not match file (" + std::to_string(r.remaining()) +
                " bytes after header)");

        const uint8_t *payload = raw.data() + r.position();
        if (fnv1a64(payload, payload_len) != checksum)
            throw SerializeError("payload checksum mismatch");

        ByteReader pr(payload, payload_len);
        return decodeSynthOutput(pr);
    } catch (const std::exception &e) {
        // SerializeError from the codec, plus anything else decoding
        // hostile bytes can throw (e.g. bad_alloc on absurd counts).
        *why = e.what();
        return std::nullopt;
    }
}

std::optional<SynthOutput>
SynthesisCache::load(const std::string &key)
{
    if (!isCacheKey(key)) {
        missCounter().increment();
        return std::nullopt;
    }

    const fs::path path = entryPath(key);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        missCounter().increment();
        return std::nullopt;
    }

    std::string why;
    auto out = parseEntry(path, key, &why);
    if (!out) {
        const bool stale = why.rfind("stale:", 0) == 0;
        (stale ? staleCounter() : corruptCounter()).increment();
        missCounter().increment();
        warn("synthesis cache: dropping ", stale ? "stale" : "corrupt",
             " entry ", path.string(), " (", why, ")");
        removeEntry(path);
        return std::nullopt;
    }

    hitCounter().increment();
    if (cfg.touchOnHit) {
        QUEST_RESULT_NEUTRAL("recency touch feeds GC eviction order "
                             "only; the returned entry is unchanged");
        fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
        // Recency refresh is best effort; a hit on a read-only cache
        // is still a hit.
    }
    return out;
}

void
SynthesisCache::store(const std::string &key, const SynthOutput &out)
{
    if (!isCacheKey(key) || out.candidates.empty())
        return;

    ByteWriter w;
    w.bytes(kMagic, sizeof(kMagic));
    w.u32(kFormatVersion);
    uint8_t digest[Sha256::kDigestSize];
    if (!keyToDigest(key, digest))
        return;
    w.bytes(digest, sizeof(digest));

    ByteWriter payload;
    try {
        encodeSynthOutput(payload, out);
    } catch (const std::exception &e) {
        warn("synthesis cache: refusing to store unencodable output (",
             e.what(), ")");
        return;
    }
    w.u64(payload.size());
    w.u64(fnv1a64(payload.buffer().data(), payload.size()));
    w.bytes(payload.buffer().data(), payload.size());

    const fs::path path = entryPath(key);
    const fs::path tmp_dir = fs::path(cfg.dir) / "tmp";
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    fs::create_directories(tmp_dir, ec);
    if (QUEST_FAULT_POINT(names::kFaultCacheStoreEnospc))
        ec = std::make_error_code(std::errc::no_space_on_device);
    if (ec) {
        storeFailedCounter().increment();
        warn("synthesis cache: cannot create ", tmp_dir.string(), ": ",
             ec.message());
        return;
    }

    // Unique per (process, call) so concurrent writers never collide;
    // the final rename is atomic, so readers only ever see whole
    // entries and the last writer wins.
    static std::atomic<uint64_t> tmp_serial{0};
    const fs::path tmp =
        tmp_dir / (key.substr(0, 8) + "-" + std::to_string(::getpid()) +
                   "-" + std::to_string(tmp_serial.fetch_add(1)) + ".tmp");
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        f.write(reinterpret_cast<const char *>(w.buffer().data()),
                static_cast<std::streamsize>(w.size()));
        if (QUEST_FAULT_POINT(names::kFaultCacheStoreShortWrite))
            f.setstate(std::ios::failbit);
        if (!f) {
            storeFailedCounter().increment();
            warn("synthesis cache: short write to ", tmp.string());
            f.close();
            fs::remove(tmp, ec);
            return;
        }
    }
    if (QUEST_FAULT_POINT(names::kFaultCacheStoreRename))
        ec = std::make_error_code(std::errc::io_error);
    else
        fs::rename(tmp, path, ec);
    if (ec) {
        storeFailedCounter().increment();
        warn("synthesis cache: cannot publish ", path.string(), ": ",
             ec.message());
        fs::remove(tmp, ec);
        return;
    }

    maybeGc();
}

void
SynthesisCache::invalidate(const std::string &key)
{
    if (isCacheKey(key))
        removeEntry(entryPath(key));
}

void
SynthesisCache::removeEntry(const fs::path &path)
{
    std::error_code ec;
    fs::remove(path, ec);
}

CacheStats
SynthesisCache::stats() const
{
    CacheStats s;
    for (const EntryInfo &e : listEntries(fs::path(cfg.dir) / "objects")) {
        ++s.entries;
        s.bytes += e.size;
    }
    return s;
}

size_t
SynthesisCache::gc(uint64_t target_bytes)
{
    std::vector<EntryInfo> entries =
        listEntries(fs::path(cfg.dir) / "objects");
    std::sort(entries.begin(), entries.end(),
              [](const EntryInfo &a, const EntryInfo &b) {
                  return a.mtime < b.mtime;
              });

    uint64_t total = 0;
    for (const EntryInfo &e : entries)
        total += e.size;

    size_t removed = 0;
    for (const EntryInfo &e : entries) {
        if (total <= target_bytes)
            break;
        std::error_code ec;
        if (fs::remove(e.path, ec)) {
            total -= e.size;
            ++removed;
            evictCounter().increment();
        }
    }
    return removed;
}

void
SynthesisCache::maybeGc()
{
    if (cfg.maxBytes == 0)
        return;
    if (stats().bytes <= cfg.maxBytes)
        return;
    const auto target = static_cast<uint64_t>(
        static_cast<double>(cfg.maxBytes) * cfg.gcHysteresis);
    const size_t removed = gc(target);
    debugLog("synthesis cache: evicted ", removed,
             " entries to stay under ", cfg.maxBytes, " bytes");
}

size_t
SynthesisCache::clear()
{
    size_t removed = 0;
    for (const EntryInfo &e : listEntries(fs::path(cfg.dir) / "objects")) {
        std::error_code ec;
        if (fs::remove(e.path, ec))
            ++removed;
    }
    std::error_code ec;
    fs::remove_all(fs::path(cfg.dir) / "tmp", ec);
    return removed;
}

CacheVerifyReport
SynthesisCache::verifyAll(bool remove_corrupt)
{
    CacheVerifyReport report;
    // Entries hold synthesis outputs, so candidates must satisfy the
    // same structural contract load-time validation enforces: native
    // {U3, CX} circuits with no pseudo-ops.
    CircuitVerifyOptions vopts;
    vopts.requireNative = true;
    vopts.allowPseudoOps = false;
    const CircuitVerifier verifier(vopts);

    for (const EntryInfo &e : listEntries(fs::path(cfg.dir) / "objects")) {
        std::error_code rel_ec;
        const std::string rel =
            fs::relative(e.path, fs::path(cfg.dir), rel_ec).string();
        const std::string name =
            (rel_ec || rel.empty()) ? e.path.string() : rel;

        std::string why;
        const std::string key = keyFromPath(e.path);
        std::optional<SynthOutput> out;
        if (key.empty())
            why = "misplaced entry (path does not spell a cache key)";
        else
            out = parseEntry(e.path, key, &why);

        if (out) {
            for (size_t i = 0; i < out->candidates.size() && why.empty();
                 ++i) {
                const VerifyReport vr =
                    verifier.verify(out->candidates[i].circuit);
                if (!vr.ok())
                    why = "candidate " + std::to_string(i) + ": " +
                          vr.issues.front().toString();
            }
        }

        if (why.empty()) {
            ++report.ok;
        } else {
            report.corrupt.push_back(name + ": " + why);
            if (remove_corrupt)
                removeEntry(e.path);
        }
    }
    return report;
}

} // namespace quest::cache
