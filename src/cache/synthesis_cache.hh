/**
 * @file
 * Disk-backed, content-addressed, versioned store for synthesis
 * results — the persistent half of QUEST's synthesis caching.
 *
 * Entries live under <dir>/objects/<k0k1>/<k2..63>.qsc, where the
 * 64-hex-character key is the SHA-256 digest from synthesisCacheKey.
 * Each entry is a self-describing binary file (magic, version, key
 * digest, payload length, FNV-1a payload checksum, codec payload —
 * see docs/FORMATS.md) so `tools/quest_cache verify` can audit a
 * cache with nothing but the directory.
 *
 * Concurrency and fault model: many processes may read and write one
 * cache directory concurrently. Writes go to <dir>/tmp and are
 * published with an atomic rename, so readers only ever see complete
 * files. Anything wrong with an entry — missing, truncated, bad
 * magic, stale version, checksum mismatch, undecodable payload —
 * degrades to a miss (counted in quest.cache.* metrics) and the bad
 * entry is removed; no cache state can ever crash a run or change
 * its output. Size is bounded by an LRU budget approximated with
 * entry mtimes (refreshed on hit): stores opportunistically evict
 * oldest-first down to a hysteresis fraction of the budget.
 */

#ifndef QUEST_CACHE_SYNTHESIS_CACHE_HH
#define QUEST_CACHE_SYNTHESIS_CACHE_HH

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "synth/synth_cache.hh"

namespace quest::cache {

/** Store settings. */
struct CacheConfig
{
    /** Root directory (created on first use). */
    std::string dir;

    /** LRU size budget over entry payload files; 0 = unbounded. */
    uint64_t maxBytes = uint64_t{1} << 30;

    /** After exceeding maxBytes, evict down to this fraction of it
     *  so stores do not GC on every call at the boundary. */
    double gcHysteresis = 0.8;

    /** Refresh an entry's mtime when it is hit (LRU recency). */
    bool touchOnHit = true;
};

/** Aggregate on-disk state. */
struct CacheStats
{
    uint64_t entries = 0;
    uint64_t bytes = 0;
};

/** Result of a full-cache audit. */
struct CacheVerifyReport
{
    size_t ok = 0;

    /** Entry-relative paths with the reason each failed. */
    std::vector<std::string> corrupt;

    bool clean() const { return corrupt.empty(); }
};

/** The disk store. Implements the synthesizer's cache hook. */
class SynthesisCache : public SynthCacheHook
{
  public:
    /** On-disk container format version (header field). */
    static constexpr uint32_t kFormatVersion = 1;

    /** Entry file magic: "QSC1". */
    static constexpr uint8_t kMagic[4] = {'Q', 'S', 'C', '1'};

    /** Entry header size in bytes (magic + version + key digest +
     *  payload length + payload checksum). */
    static constexpr size_t kHeaderSize = 4 + 4 + 32 + 8 + 8;

    explicit SynthesisCache(CacheConfig config);

    /** @name SynthCacheHook */
    /// @{
    std::optional<SynthOutput> load(const std::string &key) override;
    void store(const std::string &key, const SynthOutput &out) override;
    void invalidate(const std::string &key) override;
    /// @}

    /** Entry count and total bytes (walks the directory). */
    CacheStats stats() const;

    /**
     * Evict oldest entries (by mtime) until total size is at most
     * @p target_bytes. Returns the number of entries removed.
     */
    size_t gc(uint64_t target_bytes);

    /** Remove every entry and temp file. Returns entries removed. */
    size_t clear();

    /**
     * Fully parse every entry: header, checksum, payload decode, and
     * a structural CircuitVerifier pass over every candidate. With
     * @p remove_corrupt, failing entries are deleted.
     */
    CacheVerifyReport verifyAll(bool remove_corrupt);

    const CacheConfig &config() const { return cfg; }

    /** Published path of @p key's entry. */
    std::filesystem::path entryPath(const std::string &key) const;

  private:
    struct ParsedEntry;

    /** Parse one entry file; returns the decoded output or a failure
     *  reason (no metrics side effects). */
    static std::optional<SynthOutput>
    parseEntry(const std::filesystem::path &path,
               const std::string &expected_key, std::string *why);

    void maybeGc();
    void removeEntry(const std::filesystem::path &path);

    CacheConfig cfg;
};

/** True iff @p key is a plausible entry key (64 hex characters). */
bool isCacheKey(const std::string &key);

} // namespace quest::cache

#endif // QUEST_CACHE_SYNTHESIS_CACHE_HH
