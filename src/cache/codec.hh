/**
 * @file
 * Versioned binary codecs for ir::Circuit and synthesis candidate
 * records — the payload format of persistent cache entries.
 *
 * Built on the little-endian primitives in util/serialize.hh; the
 * byte layout (with a worked hex example) is specified in
 * docs/FORMATS.md and locked by round-trip property tests. Doubles
 * round-trip bit-exactly, which is what lets a warm-cache pipeline
 * run reproduce a cold run byte for byte.
 *
 * Decoders validate everything before constructing IR objects (gate
 * codes, arities, wire ranges, candidate indices) and throw
 * SerializeError on any violation — they must never panic on bytes
 * from disk, however damaged.
 */

#ifndef QUEST_CACHE_CODEC_HH
#define QUEST_CACHE_CODEC_HH

#include <cstdint>

#include "ir/circuit.hh"
#include "synth/leap_synthesizer.hh"
#include "util/serialize.hh"

namespace quest::cache {

/** Payload format version; bump on any layout change. */
inline constexpr uint32_t kCodecVersion = 1;

/** Stable wire-format code for a gate type (independent of the
 *  GateType enumerator order, which is free to change). */
uint8_t gateTypeCode(GateType type);

/** Inverse of gateTypeCode. @throws SerializeError on unknown codes. */
GateType gateTypeFromCode(uint8_t code);

/** Append a circuit's wire count and gate list to @p w. */
void encodeCircuit(ByteWriter &w, const Circuit &circuit);

/**
 * Decode a circuit. Validates wire count, gate codes, arities,
 * parameter counts, wire ranges and wire distinctness before
 * constructing any Gate. @throws SerializeError on malformed input.
 */
Circuit decodeCircuit(ByteReader &r);

/** Append one synthesis candidate (circuit, distance, CNOT count). */
void encodeSynthCandidate(ByteWriter &w, const SynthCandidate &c);

/** @throws SerializeError on malformed input or a CNOT-count field
 *  that contradicts the decoded circuit. */
SynthCandidate decodeSynthCandidate(ByteReader &r);

/** Append a full synthesis output (all candidates + best index). */
void encodeSynthOutput(ByteWriter &w, const SynthOutput &out);

/** @throws SerializeError on malformed input, an empty candidate
 *  set, an out-of-range best index, or trailing bytes. */
SynthOutput decodeSynthOutput(ByteReader &r);

} // namespace quest::cache

#endif // QUEST_CACHE_CODEC_HH
