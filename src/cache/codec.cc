#include "cache/codec.hh"

#include <string>

namespace quest::cache {

namespace {

/**
 * The wire-format gate table. Codes are frozen: new gate types get
 * new codes appended at the end; existing codes never change meaning
 * (docs/FORMATS.md is the normative list).
 */
constexpr GateType kCodeToType[] = {
    GateType::U1,      // 0
    GateType::U2,      // 1
    GateType::U3,      // 2
    GateType::RX,      // 3
    GateType::RY,      // 4
    GateType::RZ,      // 5
    GateType::X,       // 6
    GateType::Y,       // 7
    GateType::Z,       // 8
    GateType::H,       // 9
    GateType::S,       // 10
    GateType::Sdg,     // 11
    GateType::T,       // 12
    GateType::Tdg,     // 13
    GateType::SX,      // 14
    GateType::CX,      // 15
    GateType::CZ,      // 16
    GateType::SWAP,    // 17
    GateType::RZZ,     // 18
    GateType::RXX,     // 19
    GateType::RYY,     // 20
    GateType::CRZ,     // 21
    GateType::CP,      // 22
    GateType::CCX,     // 23
    GateType::Barrier, // 24
    GateType::Measure, // 25
};

constexpr size_t kGateCodeCount =
    sizeof(kCodeToType) / sizeof(kCodeToType[0]);

/** Decoded circuits wider than this are rejected as corrupt: nothing
 *  in the pipeline synthesizes (or could even represent as a dense
 *  unitary) blocks anywhere near this wide. */
constexpr uint32_t kMaxQubits = 64;

} // namespace

uint8_t
gateTypeCode(GateType type)
{
    for (size_t i = 0; i < kGateCodeCount; ++i) {
        if (kCodeToType[i] == type)
            return static_cast<uint8_t>(i);
    }
    // Unreachable while the table covers every enumerator; the
    // codec test iterates all GateType values to keep it that way.
    throw SerializeError("gate type without a wire-format code");
}

GateType
gateTypeFromCode(uint8_t code)
{
    if (code >= kGateCodeCount)
        throw SerializeError("unknown gate code " +
                             std::to_string(code));
    return kCodeToType[code];
}

void
encodeCircuit(ByteWriter &w, const Circuit &circuit)
{
    w.u32(static_cast<uint32_t>(circuit.numQubits()));
    w.u32(static_cast<uint32_t>(circuit.size()));
    for (const Gate &g : circuit) {
        w.u8(gateTypeCode(g.type));
        w.u8(static_cast<uint8_t>(g.qubits.size()));
        w.u8(static_cast<uint8_t>(g.params.size()));
        for (int q : g.qubits)
            w.i32(q);
        for (double p : g.params)
            w.f64(p);
    }
}

Circuit
decodeCircuit(ByteReader &r)
{
    const uint32_t n_qubits = r.u32();
    if (n_qubits == 0 || n_qubits > kMaxQubits)
        throw SerializeError("bad circuit wire count " +
                             std::to_string(n_qubits));
    const uint32_t n_gates = r.u32();

    Circuit circuit(static_cast<int>(n_qubits));
    for (uint32_t i = 0; i < n_gates; ++i) {
        const GateType type = gateTypeFromCode(r.u8());
        const uint8_t n_wires = r.u8();
        const uint8_t n_params = r.u8();

        // Validate counts against the gate table before constructing
        // the Gate (whose constructor asserts rather than throws).
        if (type == GateType::Barrier) {
            if (n_wires == 0)
                throw SerializeError("barrier with no wires");
        } else if (n_wires != gateArity(type)) {
            throw SerializeError(
                std::string("gate ") + gateName(type) +
                " arity mismatch: " + std::to_string(n_wires));
        }
        if (n_params != gateParamCount(type))
            throw SerializeError(
                std::string("gate ") + gateName(type) +
                " param-count mismatch: " + std::to_string(n_params));

        std::vector<int> qubits(n_wires);
        for (uint8_t q = 0; q < n_wires; ++q) {
            const int32_t wire = r.i32();
            if (wire < 0 || wire >= static_cast<int32_t>(n_qubits))
                throw SerializeError("wire " + std::to_string(wire) +
                                     " out of range on gate " +
                                     std::to_string(i));
            for (uint8_t prev = 0; prev < q; ++prev) {
                if (qubits[prev] == wire)
                    throw SerializeError("duplicate wire on gate " +
                                         std::to_string(i));
            }
            qubits[q] = wire;
        }
        std::vector<double> params(n_params);
        for (uint8_t p = 0; p < n_params; ++p)
            params[p] = r.f64();

        circuit.append(Gate(type, std::move(qubits), std::move(params)));
    }
    return circuit;
}

void
encodeSynthCandidate(ByteWriter &w, const SynthCandidate &c)
{
    encodeCircuit(w, c.circuit);
    w.f64(c.distance);
    w.i32(c.cnotCount);
}

SynthCandidate
decodeSynthCandidate(ByteReader &r)
{
    SynthCandidate c;
    c.circuit = decodeCircuit(r);
    c.distance = r.f64();
    c.cnotCount = r.i32();
    if (c.cnotCount < 0 ||
        static_cast<size_t>(c.cnotCount) != c.circuit.cnotCount()) {
        throw SerializeError(
            "candidate CNOT count " + std::to_string(c.cnotCount) +
            " contradicts its circuit (" +
            std::to_string(c.circuit.cnotCount()) + ")");
    }
    return c;
}

void
encodeSynthOutput(ByteWriter &w, const SynthOutput &out)
{
    w.u32(static_cast<uint32_t>(out.candidates.size()));
    for (const SynthCandidate &c : out.candidates)
        encodeSynthCandidate(w, c);
    w.u64(out.bestIndex);
}

SynthOutput
decodeSynthOutput(ByteReader &r)
{
    const uint32_t count = r.u32();
    if (count == 0)
        throw SerializeError("empty candidate set");

    // No reserve: `count` is untrusted and a hostile value must fail
    // via truncation checks, not a giant allocation.
    SynthOutput out;
    for (uint32_t i = 0; i < count; ++i)
        out.candidates.push_back(decodeSynthCandidate(r));
    out.bestIndex = r.u64();
    if (out.bestIndex >= out.candidates.size())
        throw SerializeError("best index " +
                             std::to_string(out.bestIndex) +
                             " out of range");
    if (!r.atEnd())
        throw SerializeError("trailing bytes after synthesis output");
    return out;
}

} // namespace quest::cache
