/**
 * @file
 * Dual annealing global minimizer (STEP 3's search engine, Sec. 3.6).
 *
 * Re-implements the generalized simulated annealing algorithm behind
 * SciPy's dual_annealing [Xiang et al.; Tsallis]: a distorted-Cauchy
 * visiting distribution with parameter q_v, a generalized Metropolis
 * acceptance with parameter q_a, geometric-like temperature decay
 * with restarts, and an optional greedy local-polish phase.
 */

#ifndef QUEST_ANNEAL_DUAL_ANNEALING_HH
#define QUEST_ANNEAL_DUAL_ANNEALING_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "resilience/budget.hh"
#include "util/rng.hh"

namespace quest {

/** Objective over a box-bounded vector. */
using AnnealObjective =
    std::function<double(const std::vector<double> &x)>;

/** Dual-annealing options (defaults follow SciPy's). */
struct AnnealOptions
{
    int maxIterations = 600;       //!< annealing sweeps
    double initialTemp = 5230.0;
    double restartTempRatio = 2e-5;
    double visitParam = 2.62;      //!< q_v
    double acceptParam = -5.0;     //!< q_a
    bool localSearch = true;       //!< greedy coordinate polish
    uint64_t seed = 42;

    /** Optional start point (defaults to a uniform random draw). */
    std::optional<std::vector<double>> initial;

    /**
     * Hard wall-clock/cancellation cutoff, polled once per sweep and
     * once per local-search coordinate, so a pathological objective
     * cannot spin forever (the loop is otherwise only
     * iteration-bounded). The best point so far is still returned.
     */
    resilience::Budget budget;
};

/** Minimization outcome. */
struct AnnealResult
{
    std::vector<double> x;
    double value = 0.0;
    int evaluations = 0;

    /** Set when the budget cut the run short. */
    resilience::StopReason stopped = resilience::StopReason::None;
};

/**
 * Minimize @p objective over the box [lo_i, hi_i]^d.
 */
AnnealResult dualAnnealing(const AnnealObjective &objective,
                           const std::vector<double> &lo,
                           const std::vector<double> &hi,
                           const AnnealOptions &options = {});

} // namespace quest

#endif // QUEST_ANNEAL_DUAL_ANNEALING_HH
