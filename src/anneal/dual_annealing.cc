#include "anneal/dual_annealing.hh"

#include <math.h> // lgamma_r

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/names.hh"

namespace quest {

namespace {

constexpr double pi = std::numbers::pi;

/**
 * Tsallis visiting distribution (the step generator of generalized
 * simulated annealing). Precomputes the temperature-independent
 * factors of SciPy's implementation.
 */
class VisitingDistribution
{
  public:
    VisitingDistribution(double qv, Rng &rng) : qv(qv), rng(rng)
    {
        factor2 = std::exp((4.0 - qv) * std::log(qv - 1.0));
        factor3 =
            std::exp((2.0 - qv) * std::log(2.0) / (qv - 1.0));
        factor4p = std::sqrt(pi) * factor2 / (factor3 * (3.0 - qv));
        double factor5 = 1.0 / (qv - 1.0) - 0.5;
        double d1 = 2.0 - factor5;
        // lgamma_r, not std::lgamma: glibc's lgamma writes the global
        // signgam, a data race when annealers run on several executor
        // threads at once.
        int sign = 0;
        factor6 = pi * (1.0 - factor5) /
                  std::sin(pi * (1.0 - factor5)) /
                  std::exp(lgamma_r(d1, &sign));
    }

    /** One heavy-tailed step at the given temperature. */
    double
    step(double temperature)
    {
        double factor1 =
            std::exp(std::log(temperature) / (qv - 1.0));
        double factor4 = factor4p * factor1;
        double x = rng.normal() *
                   std::exp(-(qv - 1.0) *
                            std::log(factor6 / factor4) / (3.0 - qv));
        double y = rng.normal();
        double den = std::exp((qv - 1.0) *
                              std::log(std::abs(y)) / (3.0 - qv));
        double visit = x / den;
        // Tail clipping as in SciPy to avoid overflow-scale steps.
        constexpr double tail = 1e8;
        if (visit > tail)
            return tail * rng.uniform();
        if (visit < -tail)
            return -tail * rng.uniform();
        return visit;
    }

  private:
    double qv;
    Rng &rng;
    double factor2, factor3, factor4p, factor6;
};

/** Wrap a coordinate back into [lo, hi] (SciPy's modulo fold). */
double
wrap(double x, double lo, double hi)
{
    double range = hi - lo;
    if (range <= 0.0)
        return lo;
    double t = std::fmod(x - lo, range);
    if (t < 0.0)
        t += range;
    return lo + t;
}

} // namespace

AnnealResult
dualAnnealing(const AnnealObjective &objective,
              const std::vector<double> &lo, const std::vector<double> &hi,
              const AnnealOptions &options)
{
    QUEST_TRACE_SCOPE("anneal.run");
    const size_t dim = lo.size();
    QUEST_ASSERT(dim > 0 && hi.size() == dim, "bad bounds");
    for (size_t i = 0; i < dim; ++i)
        QUEST_ASSERT(lo[i] < hi[i], "empty bound interval");
    QUEST_ASSERT(options.visitParam > 1.0 && options.visitParam < 3.0,
                 "visiting parameter must be in (1, 3)");

    Rng rng(options.seed);
    VisitingDistribution visit(options.visitParam, rng);
    AnnealResult result;
    result.evaluations = 0;

    // Non-finite objective values would poison the acceptance math
    // (inf - inf = NaN probabilities) and, worse, could be adopted as
    // the incumbent best; treat them as "infinitely bad" instead.
    auto eval = [&](const std::vector<double> &x) {
        ++result.evaluations;
        double v = objective(x);
        if (!std::isfinite(v)) {
            static auto &nans = obs::MetricsRegistry::global().counter(
                names::kMetricAnnealNanObjectives);
            nans.increment();
            return std::numeric_limits<double>::infinity();
        }
        return v;
    };

    std::vector<double> current(dim);
    if (options.initial) {
        QUEST_ASSERT(options.initial->size() == dim,
                     "initial point arity mismatch");
        current = *options.initial;
        for (size_t i = 0; i < dim; ++i)
            current[i] = std::clamp(current[i], lo[i], hi[i]);
    } else {
        for (size_t i = 0; i < dim; ++i)
            current[i] = rng.uniform(lo[i], hi[i]);
    }
    double f_current = eval(current);
    result.x = current;
    result.value = f_current;

    const double qv = options.visitParam;
    const double qa = options.acceptParam;
    const double t1 = std::exp((qv - 1.0) * std::log(2.0)) - 1.0;

    int steps = 0, acceptances = 0, restarts = 0;
    int step_index = 1;
    std::vector<double> candidate(dim);
    for (int iter = 1; iter <= options.maxIterations; ++iter, ++step_index) {
        const auto stop = options.budget.stop();
        if (stop != resilience::StopReason::None) {
            result.stopped = stop;
            break;
        }

        double t2 = std::exp((qv - 1.0) *
                             std::log(static_cast<double>(step_index) +
                                      1.0)) -
                    1.0;
        double temperature = options.initialTemp * t1 / t2;

        ++steps;
        if (temperature < options.initialTemp *
                              options.restartTempRatio) {
            // Re-anneal: reset the schedule and re-randomize.
            ++restarts;
            step_index = 1;
            for (size_t i = 0; i < dim; ++i)
                current[i] = rng.uniform(lo[i], hi[i]);
            f_current = eval(current);
            if (f_current < result.value) {
                result.value = f_current;
                result.x = current;
            }
            continue;
        }

        // Alternate full-vector moves and single-coordinate moves
        // (SciPy's strategy chain, condensed).
        candidate = current;
        if (iter % 2 == 1) {
            for (size_t i = 0; i < dim; ++i)
                candidate[i] = wrap(current[i] + visit.step(temperature),
                                    lo[i], hi[i]);
        } else {
            size_t i = rng.uniformInt(static_cast<uint32_t>(dim));
            candidate[i] = wrap(current[i] + visit.step(temperature),
                                lo[i], hi[i]);
        }

        double f_candidate = eval(candidate);
        bool accept = false;
        if (f_candidate <= f_current) {
            accept = true;
        } else {
            double t_accept =
                temperature / static_cast<double>(step_index + 1);
            double pqa = 1.0 -
                         (1.0 - qa) * (f_candidate - f_current) / t_accept;
            double p = pqa <= 0.0
                           ? 0.0
                           : std::exp(std::log(pqa) / (1.0 - qa));
            accept = rng.uniform() < p;
        }
        if (accept) {
            ++acceptances;
            current = candidate;
            f_current = f_candidate;
            if (f_current < result.value) {
                result.value = f_current;
                result.x = current;
            }
        }
    }

    if (options.localSearch &&
        result.stopped == resilience::StopReason::None) {
        // Greedy coordinate polish around the best point. The QUEST
        // objective is piecewise constant (it maps coordinates to
        // discrete approximation choices), so a gradient-based local
        // phase would see zero slope; a grid sweep per coordinate is
        // the faithful equivalent.
        constexpr int grid = 16;
        bool improved = true;
        for (int round = 0; round < 4 && improved; ++round) {
            improved = false;
            for (size_t i = 0; i < dim; ++i) {
                const auto stop = options.budget.stop();
                if (stop != resilience::StopReason::None) {
                    result.stopped = stop;
                    improved = false;
                    break;
                }
                std::vector<double> probe = result.x;
                for (int g = 0; g < grid; ++g) {
                    probe[i] = lo[i] + (hi[i] - lo[i]) *
                                           (g + 0.5) / grid;
                    double f = eval(probe);
                    if (f < result.value) {
                        result.value = f;
                        result.x = probe;
                        improved = true;
                    }
                }
            }
        }
    }

    {
        auto &registry = obs::MetricsRegistry::global();
        static auto &runs = registry.counter(names::kMetricAnnealRuns);
        static auto &steps_counter = registry.counter(names::kMetricAnnealSteps);
        static auto &accept_counter =
            registry.counter(names::kMetricAnnealAcceptances);
        static auto &restart_counter =
            registry.counter(names::kMetricAnnealRestarts);
        static auto &eval_counter =
            registry.counter(names::kMetricAnnealEvaluations);
        runs.increment();
        steps_counter.add(static_cast<uint64_t>(steps));
        accept_counter.add(static_cast<uint64_t>(acceptances));
        restart_counter.add(static_cast<uint64_t>(restarts));
        eval_counter.add(static_cast<uint64_t>(result.evaluations));
    }
    return result;
}

} // namespace quest
