#include "ir/qasm.hh"

#include <cctype>
#include <cmath>
#include <map>
#include <numbers>
#include <sstream>

#include "util/logging.hh"

namespace quest {

namespace {

/** Render a parameter with enough digits to round-trip. */
std::string
formatParam(double value)
{
    std::ostringstream os;
    os.precision(17);
    os << value;
    return os.str();
}

// ---------------------------------------------------------------
// Constant-expression parser for gate parameters: numbers, pi,
// + - * /, unary minus, parentheses.
// ---------------------------------------------------------------

class ExprParser
{
  public:
    explicit ExprParser(const std::string &text) : text(text), pos(0) {}

    double
    parse()
    {
        double value = parseExpr();
        skipWs();
        if (pos != text.size())
            throw QasmError("trailing characters in expression: " + text);
        return value;
    }

  private:
    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    double
    parseExpr()
    {
        double value = parseTerm();
        for (;;) {
            if (consume('+'))
                value += parseTerm();
            else if (consume('-'))
                value -= parseTerm();
            else
                return value;
        }
    }

    double
    parseTerm()
    {
        double value = parseUnary();
        for (;;) {
            if (consume('*')) {
                value *= parseUnary();
            } else if (consume('/')) {
                double denom = parseUnary();
                if (denom == 0.0)
                    throw QasmError("division by zero in expression");
                value /= denom;
            } else {
                return value;
            }
        }
    }

    double
    parseUnary()
    {
        if (consume('-'))
            return -parseUnary();
        if (consume('+'))
            return parseUnary();
        return parseAtom();
    }

    double
    parseAtom()
    {
        skipWs();
        if (consume('(')) {
            double value = parseExpr();
            if (!consume(')'))
                throw QasmError("missing ')' in expression");
            return value;
        }
        if (pos + 1 < text.size() && text.compare(pos, 2, "pi") == 0) {
            pos += 2;
            return std::numbers::pi;
        }
        size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                ((text[pos] == '+' || text[pos] == '-') && pos > start &&
                 (text[pos - 1] == 'e' || text[pos - 1] == 'E')))) {
            ++pos;
        }
        if (pos == start)
            throw QasmError("expected number in expression: " + text);
        return std::stod(text.substr(start, pos - start));
    }

    const std::string &text;
    size_t pos;
};

GateType
gateTypeFromName(const std::string &name)
{
    static const std::map<std::string, GateType> table = {
        {"u1", GateType::U1},   {"u2", GateType::U2},
        {"u3", GateType::U3},   {"u", GateType::U3},
        {"rx", GateType::RX},   {"ry", GateType::RY},
        {"rz", GateType::RZ},   {"x", GateType::X},
        {"y", GateType::Y},     {"z", GateType::Z},
        {"h", GateType::H},     {"s", GateType::S},
        {"sdg", GateType::Sdg}, {"t", GateType::T},
        {"tdg", GateType::Tdg}, {"sx", GateType::SX},
        {"cx", GateType::CX},   {"CX", GateType::CX},
        {"cz", GateType::CZ},   {"swap", GateType::SWAP},
        {"rzz", GateType::RZZ}, {"rxx", GateType::RXX},
        {"ryy", GateType::RYY}, {"crz", GateType::CRZ},
        {"cp", GateType::CP},   {"cu1", GateType::CP},
        {"ccx", GateType::CCX},
    };
    auto it = table.find(name);
    if (it == table.end())
        throw QasmError("unsupported gate: " + name);
    return it->second;
}

std::string
trim(const std::string &s)
{
    size_t begin = s.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos)
        return "";
    size_t end = s.find_last_not_of(" \t\r\n");
    return s.substr(begin, end - begin + 1);
}

/** Split a comma-separated list, respecting parentheses depth. */
std::vector<std::string>
splitArgs(const std::string &s)
{
    std::vector<std::string> parts;
    int depth = 0;
    std::string current;
    for (char c : s) {
        if (c == '(')
            ++depth;
        else if (c == ')')
            --depth;
        if (c == ',' && depth == 0) {
            parts.push_back(trim(current));
            current.clear();
        } else {
            current += c;
        }
    }
    if (!trim(current).empty())
        parts.push_back(trim(current));
    return parts;
}

/** Extract the index from "name[k]". */
int
parseIndex(const std::string &ref, const std::string &reg_name)
{
    size_t open = ref.find('[');
    size_t close = ref.find(']');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
        throw QasmError("malformed register reference: " + ref);
    }
    std::string name = trim(ref.substr(0, open));
    if (!reg_name.empty() && name != reg_name)
        throw QasmError("unknown register '" + name + "' in: " + ref);
    return std::stoi(ref.substr(open + 1, close - open - 1));
}

} // namespace

std::string
toQasm(const Circuit &circuit)
{
    std::ostringstream os;
    os << "OPENQASM 2.0;\n";
    os << "include \"qelib1.inc\";\n";
    os << "qreg q[" << circuit.numQubits() << "];\n";
    if (circuit.hasMeasurements())
        os << "creg c[" << circuit.numQubits() << "];\n";

    for (const Gate &g : circuit) {
        if (g.type == GateType::Measure) {
            os << "measure q[" << g.qubits[0] << "] -> c["
               << g.qubits[0] << "];\n";
            continue;
        }
        os << gateName(g.type);
        if (!g.params.empty()) {
            os << "(";
            for (size_t i = 0; i < g.params.size(); ++i) {
                if (i)
                    os << ",";
                os << formatParam(g.params[i]);
            }
            os << ")";
        }
        os << " ";
        for (size_t i = 0; i < g.qubits.size(); ++i) {
            if (i)
                os << ",";
            os << "q[" << g.qubits[i] << "]";
        }
        os << ";\n";
    }
    return os.str();
}

Circuit
parseQasm(const std::string &text)
{
    // Strip comments, then split into ';'-terminated statements.
    std::string clean;
    clean.reserve(text.size());
    for (size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
            while (i < text.size() && text[i] != '\n')
                ++i;
        }
        if (i < text.size())
            clean += text[i];
    }

    std::vector<std::string> statements;
    std::string current;
    for (char c : clean) {
        if (c == ';') {
            statements.push_back(trim(current));
            current.clear();
        } else {
            current += c;
        }
    }
    if (!trim(current).empty())
        throw QasmError("missing ';' after: " + trim(current));

    std::string qreg_name;
    int n_qubits = -1;
    std::vector<Gate> pending;

    for (const std::string &stmt : statements) {
        if (stmt.empty())
            continue;
        if (stmt.rfind("OPENQASM", 0) == 0 ||
            stmt.rfind("include", 0) == 0 ||
            stmt.rfind("creg", 0) == 0) {
            continue;
        }
        if (stmt.rfind("qreg", 0) == 0) {
            if (n_qubits >= 0)
                throw QasmError("multiple qreg declarations");
            std::string decl = trim(stmt.substr(4));
            size_t open = decl.find('[');
            if (open == std::string::npos)
                throw QasmError("malformed qreg: " + stmt);
            qreg_name = trim(decl.substr(0, open));
            n_qubits = parseIndex(decl, qreg_name);
            if (n_qubits <= 0)
                throw QasmError("qreg must have positive size");
            continue;
        }
        if (n_qubits < 0)
            throw QasmError("gate before qreg declaration: " + stmt);

        if (stmt.rfind("barrier", 0) == 0) {
            auto refs = splitArgs(trim(stmt.substr(7)));
            std::vector<int> wires;
            for (const auto &r : refs)
                wires.push_back(parseIndex(r, qreg_name));
            if (!wires.empty())
                pending.push_back(Gate::barrier(wires));
            continue;
        }
        if (stmt.rfind("measure", 0) == 0) {
            std::string rest = trim(stmt.substr(7));
            size_t arrow = rest.find("->");
            std::string src =
                arrow == std::string::npos ? rest : trim(rest.substr(0,
                                                                     arrow));
            pending.push_back(Gate::measure(parseIndex(src, qreg_name)));
            continue;
        }

        // Gate application: name[(params)] ref[,ref...]
        size_t name_end = 0;
        while (name_end < stmt.size() &&
               (std::isalnum(static_cast<unsigned char>(stmt[name_end])))) {
            ++name_end;
        }
        std::string name = stmt.substr(0, name_end);
        GateType type = gateTypeFromName(name);
        std::string rest = trim(stmt.substr(name_end));

        std::vector<double> params;
        if (!rest.empty() && rest[0] == '(') {
            int depth = 0;
            size_t close = 0;
            for (size_t i = 0; i < rest.size(); ++i) {
                if (rest[i] == '(')
                    ++depth;
                else if (rest[i] == ')' && --depth == 0) {
                    close = i;
                    break;
                }
            }
            if (close == 0)
                throw QasmError("unbalanced parens: " + stmt);
            for (const auto &expr :
                 splitArgs(rest.substr(1, close - 1))) {
                params.push_back(ExprParser(expr).parse());
            }
            rest = trim(rest.substr(close + 1));
        }
        // "u" is a three-parameter alias of u3; "cu1"/"cp" share CP.
        if (static_cast<int>(params.size()) != gateParamCount(type)) {
            throw QasmError("gate " + name + " expects " +
                            std::to_string(gateParamCount(type)) +
                            " params, got " +
                            std::to_string(params.size()));
        }

        std::vector<int> wires;
        for (const auto &ref : splitArgs(rest)) {
            int q = parseIndex(ref, qreg_name);
            if (q < 0 || q >= n_qubits)
                throw QasmError("wire out of range: " + ref);
            wires.push_back(q);
        }
        if (static_cast<int>(wires.size()) != gateArity(type))
            throw QasmError("gate " + name + " wire-count mismatch");
        // Throw rather than trip Gate's internal duplicate-wire
        // assertion: malformed input is a user error, not a bug.
        for (size_t i = 0; i < wires.size(); ++i)
            for (size_t j = i + 1; j < wires.size(); ++j)
                if (wires[i] == wires[j])
                    throw QasmError("duplicate wire in gate: " + stmt);
        pending.emplace_back(type, std::move(wires), std::move(params));
    }

    if (n_qubits < 0)
        throw QasmError("no qreg declaration found");
    Circuit circuit(n_qubits);
    for (auto &g : pending)
        circuit.append(std::move(g));
    return circuit;
}

} // namespace quest
