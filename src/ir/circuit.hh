/**
 * @file
 * Circuit container: an ordered gate list over a fixed wire count.
 */

#ifndef QUEST_IR_CIRCUIT_HH
#define QUEST_IR_CIRCUIT_HH

#include <vector>

#include "ir/gate.hh"
#include "linalg/matrix.hh"

namespace quest {

/**
 * A quantum circuit: gates applied in list order (index 0 first) to
 * n wires. Measurement gates are allowed only as a trailing suffix
 * and are ignored by unitary construction.
 */
class Circuit
{
  public:
    /** Default: a zero-wire placeholder (only assignment is valid). */
    Circuit() : nQubits(0) {}

    /** An empty circuit on @p n_qubits wires. */
    explicit Circuit(int n_qubits);

    int numQubits() const { return nQubits; }

    /** Append a gate; validates wire indices. */
    void append(Gate gate);

    /** Append every gate of @p other, remapping its wire i to
     *  wire_map[i]. */
    void appendCircuit(const Circuit &other,
                       const std::vector<int> &wire_map);

    /** Append every gate of @p other on identical wires. */
    void appendCircuit(const Circuit &other);

    /** Gate access. */
    const Gate &operator[](size_t i) const { return gateList[i]; }
    Gate &operator[](size_t i) { return gateList[i]; }
    size_t size() const { return gateList.size(); }
    bool empty() const { return gateList.empty(); }
    auto begin() const { return gateList.begin(); }
    auto end() const { return gateList.end(); }
    const std::vector<Gate> &gates() const { return gateList; }

    /** Remove the gate at index i. */
    void erase(size_t i);

    /** Replace the gate at index i. */
    void replace(size_t i, Gate gate);

    /** Number of non-pseudo gates. */
    size_t gateCount() const;

    /** Number of literal CX gates. */
    size_t cnotCount() const;

    /** CNOT-equivalent count including un-lowered multi-qubit gates. */
    size_t cnotEquivalentCount() const;

    /** Number of entangling (multi-qubit) gates of any kind. */
    size_t twoQubitGateCount() const;

    /** Circuit depth: longest wire-dependency chain (pseudo-ops
     *  excluded). */
    size_t depth() const;

    /** True if any gate is a Measure. */
    bool hasMeasurements() const;

    /** Copy without Barrier/Measure pseudo-ops. */
    Circuit withoutPseudoOps() const;

    /**
     * The adjoint circuit: gates reversed and individually inverted.
     * Exact up to a global phase (see Gate::inverse).
     */
    Circuit inverse() const;

    /**
     * Copy of this circuit acting on @p new_n_qubits wires with wire
     * i renamed to wire_map[i].
     */
    Circuit remapped(const std::vector<int> &wire_map,
                     int new_n_qubits) const;

    /** Sorted list of wires that at least one gate acts on. */
    std::vector<int> activeQubits() const;

  private:
    int nQubits;
    std::vector<Gate> gateList;
};

/**
 * Full unitary of a circuit by dense embedding (suitable for small
 * circuits; synthesis blocks are at most four qubits). For larger
 * circuits use sim::UnitaryBuilder. Panics above 12 qubits.
 */
Matrix circuitUnitary(const Circuit &circuit);

} // namespace quest

#endif // QUEST_IR_CIRCUIT_HH
