#include "ir/lower.hh"

#include <numbers>

#include "util/logging.hh"

namespace quest {

namespace {

constexpr double pi = std::numbers::pi;

void lowerGate(const Gate &g, Circuit &out);

void
emitU3(Circuit &out, int q, double t, double p, double l)
{
    out.append(Gate::u3(q, t, p, l));
}

/** RZ up to global phase (as a U1-style U3). */
void
emitRz(Circuit &out, int q, double theta)
{
    emitU3(out, q, 0.0, 0.0, theta);
}

void
emitH(Circuit &out, int q)
{
    emitU3(out, q, pi / 2, 0.0, pi);
}

/** RZZ(theta) on (a, b): CX(a,b) RZ_b(theta) CX(a,b). */
void
lowerRzz(Circuit &out, int a, int b, double theta)
{
    out.append(Gate::cx(a, b));
    emitRz(out, b, theta);
    out.append(Gate::cx(a, b));
}

void
lowerCcx(const Gate &g, Circuit &out)
{
    const int a = g.qubits[0], b = g.qubits[1], c = g.qubits[2];
    // Standard 6-CNOT Toffoli network.
    lowerGate(Gate::h(c), out);
    out.append(Gate::cx(b, c));
    lowerGate(Gate::tdg(c), out);
    out.append(Gate::cx(a, c));
    lowerGate(Gate::t(c), out);
    out.append(Gate::cx(b, c));
    lowerGate(Gate::tdg(c), out);
    out.append(Gate::cx(a, c));
    lowerGate(Gate::t(b), out);
    lowerGate(Gate::t(c), out);
    lowerGate(Gate::h(c), out);
    out.append(Gate::cx(a, b));
    lowerGate(Gate::t(a), out);
    lowerGate(Gate::tdg(b), out);
    out.append(Gate::cx(a, b));
}

void
lowerGate(const Gate &g, Circuit &out)
{
    switch (g.type) {
      case GateType::U3:
      case GateType::CX:
      case GateType::Measure:
        out.append(g);
        return;
      case GateType::Barrier:
        return;
      case GateType::U1:
        emitU3(out, g.qubits[0], 0.0, 0.0, g.params[0]);
        return;
      case GateType::U2:
        emitU3(out, g.qubits[0], pi / 2, g.params[0], g.params[1]);
        return;
      case GateType::RX:
        emitU3(out, g.qubits[0], g.params[0], -pi / 2, pi / 2);
        return;
      case GateType::RY:
        emitU3(out, g.qubits[0], g.params[0], 0.0, 0.0);
        return;
      case GateType::RZ:
        emitRz(out, g.qubits[0], g.params[0]);
        return;
      case GateType::X:
        emitU3(out, g.qubits[0], pi, 0.0, pi);
        return;
      case GateType::Y:
        emitU3(out, g.qubits[0], pi, pi / 2, pi / 2);
        return;
      case GateType::Z:
        emitU3(out, g.qubits[0], 0.0, 0.0, pi);
        return;
      case GateType::H:
        emitH(out, g.qubits[0]);
        return;
      case GateType::S:
        emitU3(out, g.qubits[0], 0.0, 0.0, pi / 2);
        return;
      case GateType::Sdg:
        emitU3(out, g.qubits[0], 0.0, 0.0, -pi / 2);
        return;
      case GateType::T:
        emitU3(out, g.qubits[0], 0.0, 0.0, pi / 4);
        return;
      case GateType::Tdg:
        emitU3(out, g.qubits[0], 0.0, 0.0, -pi / 4);
        return;
      case GateType::SX:
        emitU3(out, g.qubits[0], pi / 2, -pi / 2, pi / 2);
        return;
      case GateType::CZ:
        emitH(out, g.qubits[1]);
        out.append(Gate::cx(g.qubits[0], g.qubits[1]));
        emitH(out, g.qubits[1]);
        return;
      case GateType::SWAP:
        out.append(Gate::cx(g.qubits[0], g.qubits[1]));
        out.append(Gate::cx(g.qubits[1], g.qubits[0]));
        out.append(Gate::cx(g.qubits[0], g.qubits[1]));
        return;
      case GateType::RZZ:
        lowerRzz(out, g.qubits[0], g.qubits[1], g.params[0]);
        return;
      case GateType::RXX:
        emitH(out, g.qubits[0]);
        emitH(out, g.qubits[1]);
        lowerRzz(out, g.qubits[0], g.qubits[1], g.params[0]);
        emitH(out, g.qubits[0]);
        emitH(out, g.qubits[1]);
        return;
      case GateType::RYY:
        // Conjugate RZZ by RX(pi/2) on both wires.
        emitU3(out, g.qubits[0], pi / 2, -pi / 2, pi / 2);
        emitU3(out, g.qubits[1], pi / 2, -pi / 2, pi / 2);
        lowerRzz(out, g.qubits[0], g.qubits[1], g.params[0]);
        emitU3(out, g.qubits[0], -pi / 2, -pi / 2, pi / 2);
        emitU3(out, g.qubits[1], -pi / 2, -pi / 2, pi / 2);
        return;
      case GateType::CRZ:
        emitRz(out, g.qubits[1], g.params[0] / 2);
        out.append(Gate::cx(g.qubits[0], g.qubits[1]));
        emitRz(out, g.qubits[1], -g.params[0] / 2);
        out.append(Gate::cx(g.qubits[0], g.qubits[1]));
        return;
      case GateType::CP:
        emitRz(out, g.qubits[0], g.params[0] / 2);
        emitRz(out, g.qubits[1], g.params[0] / 2);
        out.append(Gate::cx(g.qubits[0], g.qubits[1]));
        emitRz(out, g.qubits[1], -g.params[0] / 2);
        out.append(Gate::cx(g.qubits[0], g.qubits[1]));
        return;
      case GateType::CCX:
        lowerCcx(g, out);
        return;
    }
    QUEST_PANIC("unknown gate type in lowering");
}

} // namespace

Circuit
lowerToNative(const Circuit &circuit)
{
    Circuit out(circuit.numQubits());
    for (const Gate &g : circuit)
        lowerGate(g, out);
    return out;
}

bool
isNative(const Circuit &circuit)
{
    for (const Gate &g : circuit) {
        if (g.type != GateType::U3 && g.type != GateType::CX &&
            g.type != GateType::Measure) {
            return false;
        }
    }
    return true;
}

} // namespace quest
