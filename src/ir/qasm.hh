/**
 * @file
 * OpenQASM 2.0 emission and parsing (the subset used by the paper's
 * artifact: qelib1 gates, one quantum register, optional trailing
 * measurements).
 */

#ifndef QUEST_IR_QASM_HH
#define QUEST_IR_QASM_HH

#include <stdexcept>
#include <string>

#include "ir/circuit.hh"

namespace quest {

/** Error thrown on malformed QASM input. */
class QasmError : public std::runtime_error
{
  public:
    explicit QasmError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Serialize a circuit to OpenQASM 2.0. */
std::string toQasm(const Circuit &circuit);

/**
 * Parse an OpenQASM 2.0 program into a Circuit.
 *
 * Supported: the gates in GateType, one qreg, one optional creg,
 * barrier, measure, comments, and constant parameter expressions
 * built from numbers, pi, + - * / and parentheses.
 *
 * @throws QasmError on malformed input.
 */
Circuit parseQasm(const std::string &text);

} // namespace quest

#endif // QUEST_IR_QASM_HH
