/**
 * @file
 * Quantum gate representation.
 *
 * The gate set covers everything the Table-1 benchmark generators
 * emit plus the {U3, CX} native set that partitioning and synthesis
 * operate on (see ir/lower.hh for the lowering).
 */

#ifndef QUEST_IR_GATE_HH
#define QUEST_IR_GATE_HH

#include <string>
#include <vector>

#include "linalg/matrix.hh"

namespace quest {

/** Supported gate kinds. */
enum class GateType
{
    // One-qubit parameterized.
    U1, U2, U3, RX, RY, RZ,
    // One-qubit fixed.
    X, Y, Z, H, S, Sdg, T, Tdg, SX,
    // Two-qubit.
    CX, CZ, SWAP, RZZ, RXX, RYY, CRZ, CP,
    // Three-qubit.
    CCX,
    // Pseudo-operations.
    Barrier, Measure,
};

/** Lower-case OpenQASM mnemonic for a gate type. */
const char *gateName(GateType type);

/** Number of qubits the gate type acts on (Barrier/Measure: 1). */
int gateArity(GateType type);

/** Number of rotation-angle parameters the gate type takes. */
int gateParamCount(GateType type);

/** True for multi-qubit entangling gates (not Barrier/Measure). */
bool isEntangling(GateType type);

/**
 * Number of CNOT gates in the textbook decomposition of the gate
 * (CX: 1, SWAP: 3, RZZ/RXX/RYY/CRZ/CP/CZ: 2 or 1, CCX: 6, 1q: 0).
 * Used to compare CNOT budgets of un-lowered circuits.
 */
int cnotEquivalents(GateType type);

/**
 * A gate instance: a type, the circuit wires it acts on (most
 * significant first), and its parameters.
 */
struct Gate
{
    GateType type;
    std::vector<int> qubits;
    std::vector<double> params;

    Gate() : type(GateType::Barrier) {}
    Gate(GateType type, std::vector<int> qubits,
         std::vector<double> params = {});

    /** @name Factory helpers for common gates. */
    /// @{
    static Gate u1(int q, double lambda);
    static Gate u2(int q, double phi, double lambda);
    static Gate u3(int q, double theta, double phi, double lambda);
    static Gate rx(int q, double theta);
    static Gate ry(int q, double theta);
    static Gate rz(int q, double theta);
    static Gate x(int q);
    static Gate y(int q);
    static Gate z(int q);
    static Gate h(int q);
    static Gate s(int q);
    static Gate sdg(int q);
    static Gate t(int q);
    static Gate tdg(int q);
    static Gate sx(int q);
    static Gate cx(int control, int target);
    static Gate cz(int a, int b);
    static Gate swap(int a, int b);
    static Gate rzz(int a, int b, double theta);
    static Gate rxx(int a, int b, double theta);
    static Gate ryy(int a, int b, double theta);
    static Gate crz(int control, int target, double theta);
    static Gate cp(int control, int target, double theta);
    static Gate ccx(int c1, int c2, int target);
    static Gate barrier(std::vector<int> qubits);
    static Gate measure(int q);
    /// @}

    /** Arity of this instance. */
    int arity() const { return static_cast<int>(qubits.size()); }

    /** True if this gate touches circuit wire q. */
    bool actsOn(int q) const;

    /** The inverse gate (panics for Measure). */
    Gate inverse() const;

    /** OpenQASM-style rendering, e.g. "cx q[0],q[1];". */
    std::string toString() const;
};

/**
 * The unitary of a gate on its own wires (dimension 2^arity), with
 * qubits[0] as the most significant qubit. Panics for Barrier and
 * Measure.
 */
Matrix gateMatrix(const Gate &gate);

} // namespace quest

#endif // QUEST_IR_GATE_HH
