#include "ir/gate.hh"

#include <cmath>
#include <numbers>
#include <sstream>

#include "linalg/decompose.hh"
#include "util/logging.hh"

namespace quest {

namespace {

constexpr double pi = std::numbers::pi;

} // namespace

const char *
gateName(GateType type)
{
    switch (type) {
      case GateType::U1: return "u1";
      case GateType::U2: return "u2";
      case GateType::U3: return "u3";
      case GateType::RX: return "rx";
      case GateType::RY: return "ry";
      case GateType::RZ: return "rz";
      case GateType::X: return "x";
      case GateType::Y: return "y";
      case GateType::Z: return "z";
      case GateType::H: return "h";
      case GateType::S: return "s";
      case GateType::Sdg: return "sdg";
      case GateType::T: return "t";
      case GateType::Tdg: return "tdg";
      case GateType::SX: return "sx";
      case GateType::CX: return "cx";
      case GateType::CZ: return "cz";
      case GateType::SWAP: return "swap";
      case GateType::RZZ: return "rzz";
      case GateType::RXX: return "rxx";
      case GateType::RYY: return "ryy";
      case GateType::CRZ: return "crz";
      case GateType::CP: return "cp";
      case GateType::CCX: return "ccx";
      case GateType::Barrier: return "barrier";
      case GateType::Measure: return "measure";
    }
    QUEST_PANIC("unknown gate type");
}

int
gateArity(GateType type)
{
    switch (type) {
      case GateType::U1: case GateType::U2: case GateType::U3:
      case GateType::RX: case GateType::RY: case GateType::RZ:
      case GateType::X: case GateType::Y: case GateType::Z:
      case GateType::H: case GateType::S: case GateType::Sdg:
      case GateType::T: case GateType::Tdg: case GateType::SX:
      case GateType::Measure:
        return 1;
      case GateType::CX: case GateType::CZ: case GateType::SWAP:
      case GateType::RZZ: case GateType::RXX: case GateType::RYY:
      case GateType::CRZ: case GateType::CP:
        return 2;
      case GateType::CCX:
        return 3;
      case GateType::Barrier:
        return 1;  // variadic; minimum one wire
    }
    QUEST_PANIC("unknown gate type");
}

int
gateParamCount(GateType type)
{
    switch (type) {
      case GateType::U1: case GateType::RX: case GateType::RY:
      case GateType::RZ: case GateType::RZZ: case GateType::RXX:
      case GateType::RYY: case GateType::CRZ: case GateType::CP:
        return 1;
      case GateType::U2:
        return 2;
      case GateType::U3:
        return 3;
      default:
        return 0;
    }
}

bool
isEntangling(GateType type)
{
    switch (type) {
      case GateType::CX: case GateType::CZ: case GateType::SWAP:
      case GateType::RZZ: case GateType::RXX: case GateType::RYY:
      case GateType::CRZ: case GateType::CP: case GateType::CCX:
        return true;
      default:
        return false;
    }
}

int
cnotEquivalents(GateType type)
{
    switch (type) {
      case GateType::CX:
        return 1;
      case GateType::CZ:
        return 1;  // CX conjugated by H on the target
      case GateType::SWAP:
        return 3;
      case GateType::RZZ: case GateType::RXX: case GateType::RYY:
      case GateType::CRZ: case GateType::CP:
        return 2;
      case GateType::CCX:
        return 6;
      default:
        return 0;
    }
}

Gate::Gate(GateType type, std::vector<int> qubits,
           std::vector<double> params)
    : type(type), qubits(std::move(qubits)), params(std::move(params))
{
    if (type != GateType::Barrier) {
        QUEST_ASSERT(static_cast<int>(this->qubits.size()) ==
                     gateArity(type),
                     "gate ", gateName(type), " arity mismatch");
    }
    QUEST_ASSERT(static_cast<int>(this->params.size()) ==
                 gateParamCount(type),
                 "gate ", gateName(type), " param-count mismatch");
    for (size_t i = 0; i < this->qubits.size(); ++i)
        for (size_t j = i + 1; j < this->qubits.size(); ++j)
            QUEST_ASSERT(this->qubits[i] != this->qubits[j],
                         "duplicate wire on gate ", gateName(type));
}

Gate Gate::u1(int q, double l) { return {GateType::U1, {q}, {l}}; }
Gate Gate::u2(int q, double p, double l)
{
    return {GateType::U2, {q}, {p, l}};
}
Gate Gate::u3(int q, double t, double p, double l)
{
    return {GateType::U3, {q}, {t, p, l}};
}
Gate Gate::rx(int q, double t) { return {GateType::RX, {q}, {t}}; }
Gate Gate::ry(int q, double t) { return {GateType::RY, {q}, {t}}; }
Gate Gate::rz(int q, double t) { return {GateType::RZ, {q}, {t}}; }
Gate Gate::x(int q) { return {GateType::X, {q}}; }
Gate Gate::y(int q) { return {GateType::Y, {q}}; }
Gate Gate::z(int q) { return {GateType::Z, {q}}; }
Gate Gate::h(int q) { return {GateType::H, {q}}; }
Gate Gate::s(int q) { return {GateType::S, {q}}; }
Gate Gate::sdg(int q) { return {GateType::Sdg, {q}}; }
Gate Gate::t(int q) { return {GateType::T, {q}}; }
Gate Gate::tdg(int q) { return {GateType::Tdg, {q}}; }
Gate Gate::sx(int q) { return {GateType::SX, {q}}; }
Gate Gate::cx(int c, int t) { return {GateType::CX, {c, t}}; }
Gate Gate::cz(int a, int b) { return {GateType::CZ, {a, b}}; }
Gate Gate::swap(int a, int b) { return {GateType::SWAP, {a, b}}; }
Gate Gate::rzz(int a, int b, double t)
{
    return {GateType::RZZ, {a, b}, {t}};
}
Gate Gate::rxx(int a, int b, double t)
{
    return {GateType::RXX, {a, b}, {t}};
}
Gate Gate::ryy(int a, int b, double t)
{
    return {GateType::RYY, {a, b}, {t}};
}
Gate Gate::crz(int c, int t, double theta)
{
    return {GateType::CRZ, {c, t}, {theta}};
}
Gate Gate::cp(int c, int t, double theta)
{
    return {GateType::CP, {c, t}, {theta}};
}
Gate Gate::ccx(int c1, int c2, int t)
{
    return {GateType::CCX, {c1, c2, t}};
}
Gate Gate::barrier(std::vector<int> qubits)
{
    return {GateType::Barrier, std::move(qubits)};
}
Gate Gate::measure(int q) { return {GateType::Measure, {q}}; }

bool
Gate::actsOn(int q) const
{
    for (int wire : qubits)
        if (wire == q)
            return true;
    return false;
}

Gate
Gate::inverse() const
{
    switch (type) {
      case GateType::U1:
        return u1(qubits[0], -params[0]);
      case GateType::U2:
        // U2(p, l) = U3(pi/2, p, l); inverse is U3(-pi/2, -l, -p).
        return u3(qubits[0], -pi / 2, -params[1], -params[0]);
      case GateType::U3:
        return u3(qubits[0], -params[0], -params[2], -params[1]);
      case GateType::RX: case GateType::RY: case GateType::RZ:
      case GateType::RZZ: case GateType::RXX: case GateType::RYY:
      case GateType::CRZ: case GateType::CP: {
        Gate g = *this;
        g.params[0] = -g.params[0];
        return g;
      }
      case GateType::X: case GateType::Y: case GateType::Z:
      case GateType::H: case GateType::CX: case GateType::CZ:
      case GateType::SWAP: case GateType::CCX: case GateType::Barrier:
        return *this;
      case GateType::S:
        return sdg(qubits[0]);
      case GateType::Sdg:
        return s(qubits[0]);
      case GateType::T:
        return tdg(qubits[0]);
      case GateType::Tdg:
        return t(qubits[0]);
      case GateType::SX:
        // Inverse up to global phase (exact SX-dagger is not a U3).
        return u3(qubits[0], -pi / 2, -pi / 2, pi / 2);
      case GateType::Measure:
        QUEST_PANIC("measure has no inverse");
    }
    QUEST_PANIC("unknown gate type");
}

std::string
Gate::toString() const
{
    std::ostringstream os;
    os << gateName(type);
    if (!params.empty()) {
        os << "(";
        for (size_t i = 0; i < params.size(); ++i) {
            if (i)
                os << ",";
            os << params[i];
        }
        os << ")";
    }
    os << " ";
    for (size_t i = 0; i < qubits.size(); ++i) {
        if (i)
            os << ",";
        os << "q[" << qubits[i] << "]";
    }
    os << ";";
    return os.str();
}

namespace {

Matrix
oneQubitMatrix(const Gate &g)
{
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    switch (g.type) {
      case GateType::U1:
        return {{1.0, 0.0}, {0.0, std::polar(1.0, g.params[0])}};
      case GateType::U2: {
        Complex eip = std::polar(1.0, g.params[0]);
        Complex eil = std::polar(1.0, g.params[1]);
        Matrix m = {{1.0, -eil}, {eip, eip * eil}};
        return m * Complex(inv_sqrt2, 0.0);
      }
      case GateType::U3:
        return makeU3(g.params[0], g.params[1], g.params[2]);
      case GateType::RX: {
        double c = std::cos(g.params[0] / 2), s = std::sin(g.params[0] / 2);
        return {{c, Complex(0, -s)}, {Complex(0, -s), c}};
      }
      case GateType::RY: {
        double c = std::cos(g.params[0] / 2), s = std::sin(g.params[0] / 2);
        return {{c, -s}, {s, c}};
      }
      case GateType::RZ: {
        Complex e = std::polar(1.0, g.params[0] / 2);
        return {{std::conj(e), 0.0}, {0.0, e}};
      }
      case GateType::X:
        return {{0.0, 1.0}, {1.0, 0.0}};
      case GateType::Y:
        return {{0.0, Complex(0, -1)}, {Complex(0, 1), 0.0}};
      case GateType::Z:
        return {{1.0, 0.0}, {0.0, -1.0}};
      case GateType::H:
        return {{inv_sqrt2, inv_sqrt2}, {inv_sqrt2, -inv_sqrt2}};
      case GateType::S:
        return {{1.0, 0.0}, {0.0, Complex(0, 1)}};
      case GateType::Sdg:
        return {{1.0, 0.0}, {0.0, Complex(0, -1)}};
      case GateType::T:
        return {{1.0, 0.0}, {0.0, std::polar(1.0, pi / 4)}};
      case GateType::Tdg:
        return {{1.0, 0.0}, {0.0, std::polar(1.0, -pi / 4)}};
      case GateType::SX: {
        Complex a(0.5, 0.5), b(0.5, -0.5);
        return {{a, b}, {b, a}};
      }
      default:
        QUEST_PANIC("not a one-qubit matrix gate: ", gateName(g.type));
    }
}

Matrix
twoQubitMatrix(const Gate &g)
{
    switch (g.type) {
      case GateType::CX: {
        Matrix m = Matrix::identity(4);
        m(2, 2) = 0; m(3, 3) = 0;
        m(2, 3) = 1; m(3, 2) = 1;
        return m;
      }
      case GateType::CZ: {
        Matrix m = Matrix::identity(4);
        m(3, 3) = -1;
        return m;
      }
      case GateType::SWAP: {
        Matrix m(4, 4);
        m(0, 0) = 1; m(1, 2) = 1; m(2, 1) = 1; m(3, 3) = 1;
        return m;
      }
      case GateType::RZZ: {
        Complex e = std::polar(1.0, g.params[0] / 2);
        Matrix m(4, 4);
        m(0, 0) = std::conj(e); m(1, 1) = e;
        m(2, 2) = e; m(3, 3) = std::conj(e);
        return m;
      }
      case GateType::RXX: {
        double c = std::cos(g.params[0] / 2), s = std::sin(g.params[0] / 2);
        Complex is(0, s);
        Matrix m(4, 4);
        m(0, 0) = c; m(1, 1) = c; m(2, 2) = c; m(3, 3) = c;
        m(0, 3) = -is; m(1, 2) = -is; m(2, 1) = -is; m(3, 0) = -is;
        return m;
      }
      case GateType::RYY: {
        double c = std::cos(g.params[0] / 2), s = std::sin(g.params[0] / 2);
        Complex is(0, s);
        Matrix m(4, 4);
        m(0, 0) = c; m(1, 1) = c; m(2, 2) = c; m(3, 3) = c;
        m(0, 3) = is; m(1, 2) = -is; m(2, 1) = -is; m(3, 0) = is;
        return m;
      }
      case GateType::CRZ: {
        Complex e = std::polar(1.0, g.params[0] / 2);
        Matrix m = Matrix::identity(4);
        m(2, 2) = std::conj(e);
        m(3, 3) = e;
        return m;
      }
      case GateType::CP: {
        Matrix m = Matrix::identity(4);
        m(3, 3) = std::polar(1.0, g.params[0]);
        return m;
      }
      default:
        QUEST_PANIC("not a two-qubit matrix gate: ", gateName(g.type));
    }
}

} // namespace

Matrix
gateMatrix(const Gate &gate)
{
    switch (gateArity(gate.type)) {
      case 1:
        QUEST_ASSERT(gate.type != GateType::Measure &&
                     gate.type != GateType::Barrier,
                     "pseudo-op has no unitary");
        return oneQubitMatrix(gate);
      case 2:
        return twoQubitMatrix(gate);
      case 3: {
        QUEST_ASSERT(gate.type == GateType::CCX, "unexpected 3q gate");
        Matrix m = Matrix::identity(8);
        m(6, 6) = 0; m(7, 7) = 0;
        m(6, 7) = 1; m(7, 6) = 1;
        return m;
      }
      default:
        QUEST_PANIC("unsupported arity");
    }
}

} // namespace quest
