#include "ir/circuit.hh"

#include <algorithm>

#include "linalg/embed.hh"
#include "util/logging.hh"

namespace quest {

Circuit::Circuit(int n_qubits)
    : nQubits(n_qubits)
{
    QUEST_ASSERT(n_qubits > 0, "circuit needs at least one qubit");
}

void
Circuit::append(Gate gate)
{
    for (int q : gate.qubits) {
        QUEST_ASSERT(q >= 0 && q < nQubits,
                     "gate wire ", q, " outside circuit of ", nQubits,
                     " qubits");
    }
    gateList.push_back(std::move(gate));
}

void
Circuit::appendCircuit(const Circuit &other,
                       const std::vector<int> &wire_map)
{
    QUEST_ASSERT(static_cast<int>(wire_map.size()) == other.numQubits(),
                 "wire map arity mismatch");
    for (const Gate &g : other) {
        Gate mapped = g;
        for (auto &q : mapped.qubits)
            q = wire_map[q];
        append(std::move(mapped));
    }
}

void
Circuit::appendCircuit(const Circuit &other)
{
    std::vector<int> identity(other.numQubits());
    for (int i = 0; i < other.numQubits(); ++i)
        identity[i] = i;
    appendCircuit(other, identity);
}

void
Circuit::erase(size_t i)
{
    QUEST_ASSERT(i < gateList.size(), "erase index out of range");
    gateList.erase(gateList.begin() + static_cast<ptrdiff_t>(i));
}

void
Circuit::replace(size_t i, Gate gate)
{
    QUEST_ASSERT(i < gateList.size(), "replace index out of range");
    for (int q : gate.qubits)
        QUEST_ASSERT(q >= 0 && q < nQubits, "bad wire in replace");
    gateList[i] = std::move(gate);
}

size_t
Circuit::gateCount() const
{
    size_t count = 0;
    for (const Gate &g : gateList)
        if (g.type != GateType::Barrier && g.type != GateType::Measure)
            ++count;
    return count;
}

size_t
Circuit::cnotCount() const
{
    size_t count = 0;
    for (const Gate &g : gateList)
        if (g.type == GateType::CX)
            ++count;
    return count;
}

size_t
Circuit::cnotEquivalentCount() const
{
    size_t count = 0;
    for (const Gate &g : gateList)
        count += static_cast<size_t>(cnotEquivalents(g.type));
    return count;
}

size_t
Circuit::twoQubitGateCount() const
{
    size_t count = 0;
    for (const Gate &g : gateList)
        if (isEntangling(g.type))
            ++count;
    return count;
}

size_t
Circuit::depth() const
{
    std::vector<size_t> wire_depth(nQubits, 0);
    for (const Gate &g : gateList) {
        if (g.type == GateType::Barrier || g.type == GateType::Measure)
            continue;
        size_t level = 0;
        for (int q : g.qubits)
            level = std::max(level, wire_depth[q]);
        ++level;
        for (int q : g.qubits)
            wire_depth[q] = level;
    }
    return *std::max_element(wire_depth.begin(), wire_depth.end());
}

bool
Circuit::hasMeasurements() const
{
    for (const Gate &g : gateList)
        if (g.type == GateType::Measure)
            return true;
    return false;
}

Circuit
Circuit::withoutPseudoOps() const
{
    Circuit result(nQubits);
    for (const Gate &g : gateList)
        if (g.type != GateType::Barrier && g.type != GateType::Measure)
            result.append(g);
    return result;
}

Circuit
Circuit::inverse() const
{
    Circuit result(nQubits);
    for (auto it = gateList.rbegin(); it != gateList.rend(); ++it) {
        if (it->type == GateType::Measure)
            continue;
        result.append(it->inverse());
    }
    return result;
}

Circuit
Circuit::remapped(const std::vector<int> &wire_map,
                  int new_n_qubits) const
{
    QUEST_ASSERT(static_cast<int>(wire_map.size()) == nQubits,
                 "remap arity mismatch");
    Circuit result(new_n_qubits);
    result.appendCircuit(*this, wire_map);
    return result;
}

std::vector<int>
Circuit::activeQubits() const
{
    std::vector<bool> active(nQubits, false);
    for (const Gate &g : gateList)
        for (int q : g.qubits)
            active[q] = true;
    std::vector<int> result;
    for (int q = 0; q < nQubits; ++q)
        if (active[q])
            result.push_back(q);
    return result;
}

Matrix
circuitUnitary(const Circuit &circuit)
{
    const int n = circuit.numQubits();
    QUEST_ASSERT(n <= 12, "circuitUnitary limited to 12 qubits; use "
                 "UnitaryBuilder for larger circuits");
    Matrix u = Matrix::identity(size_t{1} << n);
    for (const Gate &g : circuit) {
        if (g.type == GateType::Barrier || g.type == GateType::Measure)
            continue;
        u = embedUnitary(gateMatrix(g), g.qubits, n) * u;
    }
    return u;
}

} // namespace quest
