/**
 * @file
 * Lowering to the native {U3, CX} gate set.
 *
 * QUEST's partitioner, synthesizer and baseline CNOT counts all
 * operate on circuits in this native set (the paper: "all quantum
 * algorithms can be represented as a sequence of one-qubit rotation
 * gates and two-qubit CNOT gates").
 */

#ifndef QUEST_IR_LOWER_HH
#define QUEST_IR_LOWER_HH

#include "ir/circuit.hh"

namespace quest {

/**
 * Rewrite every gate into U3 and CX gates using textbook
 * decompositions (CCX via the 6-CNOT network, SWAP via 3 CNOTs,
 * two-qubit rotations via 2 CNOTs). The result's unitary equals the
 * input's up to a global phase. Barriers are dropped; measurements
 * are preserved.
 */
Circuit lowerToNative(const Circuit &circuit);

/** True if the circuit contains only U3, CX and Measure gates. */
bool isNative(const Circuit &circuit);

} // namespace quest

#endif // QUEST_IR_LOWER_HH
