/**
 * @file
 * NISQ noise models (Sec. 4.1 of the paper).
 *
 * The paper's noisy simulations use a Pauli noise model on all qubits
 * at levels 1%, 0.5% and 0.1%, with the two-qubit error rate an order
 * of magnitude above the one-qubit rate, plus readout error. The
 * IBMQ Manila runs are modelled with a calibration-like preset.
 */

#ifndef QUEST_SIM_NOISE_HH
#define QUEST_SIM_NOISE_HH

namespace quest {

/** Pauli-channel noise parameters for trajectory simulation. */
struct NoiseModel
{
    /** Probability of a random Pauli on each wire after a 1q gate. */
    double p1 = 0.0;

    /** Probability of a random Pauli on each wire after a 2q gate. */
    double p2 = 0.0;

    /** Per-qubit readout bit-flip probability. */
    double pReadout = 0.0;

    /** No noise at all. */
    static NoiseModel
    ideal()
    {
        return {};
    }

    /**
     * The paper's uniform Pauli model at "noise level" p: two-qubit
     * error p, one-qubit error p/10, readout error p.
     */
    static NoiseModel
    pauli(double p)
    {
        return {p / 10.0, p, p};
    }

    /**
     * IBMQ-Manila-like preset: CNOT error ~1e-2, 1q error ~3e-4,
     * readout ~2.5e-2 (typical published calibration ranges for that
     * 5-qubit Falcon device).
     */
    static NoiseModel
    ibmqManila()
    {
        return {3.0e-4, 1.0e-2, 2.5e-2};
    }

    bool
    isIdeal() const
    {
        return p1 == 0.0 && p2 == 0.0 && pReadout == 0.0;
    }
};

} // namespace quest

#endif // QUEST_SIM_NOISE_HH
