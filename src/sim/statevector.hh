/**
 * @file
 * Statevector simulation primitives.
 *
 * Uses the library-wide bit convention: qubit q is bit (n - 1 - q) of
 * a basis-state index (qubit 0 is most significant).
 */

#ifndef QUEST_SIM_STATEVECTOR_HH
#define QUEST_SIM_STATEVECTOR_HH

#include <vector>

#include "ir/circuit.hh"
#include "linalg/matrix.hh"
#include "sim/distribution.hh"
#include "util/rng.hh"

namespace quest {

/** An n-qubit pure state with in-place gate application. */
class StateVector
{
  public:
    /** Initialize to |0...0>. */
    explicit StateVector(int n_qubits);

    int numQubits() const { return nQubits; }
    size_t dim() const { return amps.size(); }

    const Complex &amp(size_t k) const { return amps[k]; }
    const std::vector<Complex> &amplitudes() const { return amps; }
    std::vector<Complex> &amplitudes() { return amps; }

    /** Apply a gate (Barrier/Measure are no-ops). */
    void applyGate(const Gate &gate);

    /** Apply every gate of a circuit in order. */
    void applyCircuit(const Circuit &circuit);

    /** Apply an arbitrary 2x2 matrix to wire q. */
    void applyMatrix1(const Matrix &m, int q);

    /** Apply an arbitrary 4x4 matrix to wires (q0 msb, q1 lsb). */
    void applyMatrix2(const Matrix &m, int q0, int q1);

    /** Apply an arbitrary 2^k x 2^k matrix to the given wires. */
    void applyMatrix(const Matrix &m, const std::vector<int> &qubits);

    /** Apply a Pauli (0 none, 1 X, 2 Y, 3 Z) to wire q. */
    void applyPauli(int pauli, int q);

    /** L2 norm (1.0 for a normalized state). */
    double norm() const;

    /** Measurement probabilities over all basis states. */
    Distribution probabilities() const;

    /** Sample a single measurement outcome without collapsing. */
    size_t sample(Rng &rng) const;

    /** Gates applied to this state so far (Barrier/Measure excluded). */
    uint64_t gateApplies() const { return nGateApplies; }

    /** Amplitude bytes read+written by those gate applications. */
    uint64_t bytesTouched() const { return nBytesTouched; }

  private:
    int nQubits;
    std::vector<Complex> amps;
    // Per-instance tallies (plain members so hot kernels pay no
    // atomic cost); applyCircuit flushes the deltas to the metrics
    // registry.
    uint64_t nGateApplies = 0;
    uint64_t nBytesTouched = 0;
};

} // namespace quest

#endif // QUEST_SIM_STATEVECTOR_HH
