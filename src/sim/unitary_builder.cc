#include "sim/unitary_builder.hh"

#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/names.hh"

namespace quest {

namespace {

/**
 * Left-multiply the full matrix by a k-qubit gate: mixes the row
 * groups that differ only in the gate's bit positions. Rows are
 * contiguous in the row-major layout, so this streams well.
 */
void
applyGateToRows(Matrix &m, const Matrix &g, const std::vector<int> &qubits,
                int n_qubits)
{
    const size_t k = qubits.size();
    const size_t sub_dim = size_t{1} << k;
    const size_t dim = m.rows();

    std::vector<size_t> offsets(sub_dim);
    size_t mask = 0;
    {
        std::vector<size_t> bit(k);
        for (size_t i = 0; i < k; ++i) {
            bit[i] = size_t{1} << (n_qubits - 1 - qubits[i]);
            mask |= bit[i];
        }
        for (size_t sub = 0; sub < sub_dim; ++sub) {
            size_t off = 0;
            for (size_t i = 0; i < k; ++i)
                if ((sub >> (k - 1 - i)) & 1u)
                    off |= bit[i];
            offsets[sub] = off;
        }
    }

    std::vector<std::vector<Complex>> scratch(
        sub_dim, std::vector<Complex>(dim));
    for (size_t base = 0; base < dim; ++base) {
        if (base & mask)
            continue;
        // Gather the sub_dim rows into scratch.
        for (size_t s = 0; s < sub_dim; ++s) {
            const Complex *row = &m.data()[(base | offsets[s]) * dim];
            std::copy(row, row + dim, scratch[s].begin());
        }
        // Recombine: new row r = sum_c g(r, c) * old row c.
        for (size_t r = 0; r < sub_dim; ++r) {
            Complex *row = &m.data()[(base | offsets[r]) * dim];
            for (size_t j = 0; j < dim; ++j)
                row[j] = Complex(0.0, 0.0);
            for (size_t c = 0; c < sub_dim; ++c) {
                Complex grc = g(r, c);
                if (grc == Complex(0.0, 0.0))
                    continue;
                const Complex *src = scratch[c].data();
                for (size_t j = 0; j < dim; ++j)
                    row[j] += grc * src[j];
            }
        }
    }
}

} // namespace

Matrix
buildUnitary(const Circuit &circuit)
{
    const int n = circuit.numQubits();
    QUEST_ASSERT(n <= 14, "buildUnitary limited to 14 qubits");
    // Counted so large-circuit (BlockBound) runs can prove they never
    // built a full unitary (the counter must stay flat).
    static auto &builds = obs::MetricsRegistry::global().counter(
        names::kMetricSimUnitaryBuilds);
    builds.increment();
    Matrix u = Matrix::identity(size_t{1} << n);
    for (const Gate &g : circuit) {
        if (g.type == GateType::Barrier || g.type == GateType::Measure)
            continue;
        applyGateToRows(u, gateMatrix(g), g.qubits, n);
    }
    return u;
}

} // namespace quest
