#include "sim/density_matrix.hh"

#include "linalg/embed.hh"
#include "util/logging.hh"

namespace quest {

DensityMatrix::DensityMatrix(int n_qubits)
    : nQubits(n_qubits), rho(size_t{1} << n_qubits,
                             size_t{1} << n_qubits)
{
    QUEST_ASSERT(n_qubits >= 1 && n_qubits <= 8,
                 "density matrix limited to 8 qubits");
    rho(0, 0) = Complex(1.0, 0.0);
}

void
DensityMatrix::applyGate(const Gate &gate)
{
    if (gate.type == GateType::Barrier || gate.type == GateType::Measure)
        return;
    Matrix u = embedUnitary(gateMatrix(gate), gate.qubits, nQubits);
    rho = u * rho * u.adjoint();
}

void
DensityMatrix::applyPauliChannel(int q, double p)
{
    QUEST_ASSERT(q >= 0 && q < nQubits, "wire out of range");
    QUEST_ASSERT(p >= 0.0 && p <= 1.0, "bad channel probability");
    if (p == 0.0)
        return;

    Matrix mixed = rho * Complex(1.0 - p, 0.0);
    const double w = p / 3.0;
    for (GateType pauli : {GateType::X, GateType::Y, GateType::Z}) {
        Matrix u = embedUnitary(gateMatrix(Gate(pauli, {q})), {q},
                                nQubits);
        mixed += (u * rho * u.adjoint()) * Complex(w, 0.0);
    }
    rho = std::move(mixed);
}

double
DensityMatrix::trace() const
{
    return rho.trace().real();
}

double
DensityMatrix::purity() const
{
    // Tr(rho^2) = sum_ij rho_ij rho_ji = sum_ij |rho_ij|^2 for
    // Hermitian rho.
    double sum = 0.0;
    for (const Complex &e : rho.data())
        sum += std::norm(e);
    return sum;
}

Distribution
DensityMatrix::probabilities() const
{
    Distribution d(nQubits);
    for (size_t k = 0; k < d.size(); ++k)
        d[k] = rho(k, k).real();
    return d;
}

Distribution
exactNoisyDistribution(const Circuit &circuit, const NoiseModel &noise)
{
    const int n = circuit.numQubits();
    DensityMatrix state(n);
    for (const Gate &g : circuit) {
        if (g.type == GateType::Barrier || g.type == GateType::Measure)
            continue;
        state.applyGate(g);
        double p = g.arity() >= 2 ? noise.p2 : noise.p1;
        if (p > 0.0)
            for (int q : g.qubits)
                state.applyPauliChannel(q, p);
    }

    Distribution d = state.probabilities();
    if (noise.pReadout <= 0.0)
        return d;

    // Readout confusion: independent per-qubit bit flips applied to
    // the classical distribution, one qubit at a time.
    const double p = noise.pReadout;
    for (int q = 0; q < n; ++q) {
        const size_t bit = size_t{1} << (n - 1 - q);
        Distribution next(n);
        for (size_t k = 0; k < d.size(); ++k) {
            next[k] += (1.0 - p) * d[k];
            next[k ^ bit] += p * d[k];
        }
        d = std::move(next);
    }
    return d;
}

} // namespace quest
