/**
 * @file
 * Fast full-circuit unitary construction.
 *
 * Applies gates in place to the rows of an identity matrix instead of
 * forming embedded 2^n x 2^n gate matrices, giving O(2^k N^2) per
 * k-qubit gate. Used for ground-truth unitaries and the Fig. 7 bound
 * validation on mid-size circuits.
 */

#ifndef QUEST_SIM_UNITARY_BUILDER_HH
#define QUEST_SIM_UNITARY_BUILDER_HH

#include "ir/circuit.hh"
#include "linalg/matrix.hh"

namespace quest {

/**
 * Compute the unitary of a circuit (measurements ignored). Panics
 * above 14 qubits — the dense matrix would not fit in memory.
 */
Matrix buildUnitary(const Circuit &circuit);

} // namespace quest

#endif // QUEST_SIM_UNITARY_BUILDER_HH
