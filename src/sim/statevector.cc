#include "sim/statevector.hh"

#include <cmath>

#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/names.hh"

namespace quest {

StateVector::StateVector(int n_qubits)
    : nQubits(n_qubits), amps(size_t{1} << n_qubits, Complex(0.0, 0.0))
{
    QUEST_ASSERT(n_qubits >= 1 && n_qubits <= 26,
                 "statevector qubit count out of range: ", n_qubits);
    // Counted so large-circuit (BlockBound) runs can prove they never
    // allocated a full state (the counter must stay flat).
    static auto &builds = obs::MetricsRegistry::global().counter(
        names::kMetricSimStatevectorBuilds);
    builds.increment();
    amps[0] = Complex(1.0, 0.0);
}

void
StateVector::applyMatrix1(const Matrix &m, int q)
{
    QUEST_ASSERT(m.rows() == 2 && m.cols() == 2, "expected 2x2 matrix");
    QUEST_ASSERT(q >= 0 && q < nQubits, "wire out of range");
    const size_t stride = size_t{1} << (nQubits - 1 - q);
    const Complex m00 = m(0, 0), m01 = m(0, 1);
    const Complex m10 = m(1, 0), m11 = m(1, 1);
    const size_t dim = amps.size();
    for (size_t base = 0; base < dim; base += 2 * stride) {
        for (size_t i = base; i < base + stride; ++i) {
            Complex a0 = amps[i];
            Complex a1 = amps[i + stride];
            amps[i] = m00 * a0 + m01 * a1;
            amps[i + stride] = m10 * a0 + m11 * a1;
        }
    }
}

void
StateVector::applyMatrix2(const Matrix &m, int q0, int q1)
{
    QUEST_ASSERT(m.rows() == 4 && m.cols() == 4, "expected 4x4 matrix");
    QUEST_ASSERT(q0 != q1, "duplicate wires");
    const size_t b0 = size_t{1} << (nQubits - 1 - q0);
    const size_t b1 = size_t{1} << (nQubits - 1 - q1);
    const size_t dim = amps.size();
    const size_t mask = b0 | b1;
    for (size_t i = 0; i < dim; ++i) {
        if (i & mask)
            continue;
        const size_t k00 = i;
        const size_t k01 = i | b1;
        const size_t k10 = i | b0;
        const size_t k11 = i | b0 | b1;
        Complex a00 = amps[k00], a01 = amps[k01];
        Complex a10 = amps[k10], a11 = amps[k11];
        amps[k00] = m(0, 0) * a00 + m(0, 1) * a01 + m(0, 2) * a10 +
                    m(0, 3) * a11;
        amps[k01] = m(1, 0) * a00 + m(1, 1) * a01 + m(1, 2) * a10 +
                    m(1, 3) * a11;
        amps[k10] = m(2, 0) * a00 + m(2, 1) * a01 + m(2, 2) * a10 +
                    m(2, 3) * a11;
        amps[k11] = m(3, 0) * a00 + m(3, 1) * a01 + m(3, 2) * a10 +
                    m(3, 3) * a11;
    }
}

void
StateVector::applyMatrix(const Matrix &m, const std::vector<int> &qubits)
{
    const size_t k = qubits.size();
    if (k == 1) {
        applyMatrix1(m, qubits[0]);
        return;
    }
    if (k == 2) {
        applyMatrix2(m, qubits[0], qubits[1]);
        return;
    }
    const size_t sub_dim = size_t{1} << k;
    QUEST_ASSERT(m.rows() == sub_dim && m.cols() == sub_dim,
                 "matrix dim does not match wire count");

    std::vector<size_t> bit(k);
    size_t mask = 0;
    for (size_t i = 0; i < k; ++i) {
        bit[i] = size_t{1} << (nQubits - 1 - qubits[i]);
        mask |= bit[i];
    }

    std::vector<Complex> gathered(sub_dim);
    std::vector<size_t> offsets(sub_dim);
    for (size_t sub = 0; sub < sub_dim; ++sub) {
        size_t off = 0;
        for (size_t i = 0; i < k; ++i)
            if ((sub >> (k - 1 - i)) & 1u)
                off |= bit[i];
        offsets[sub] = off;
    }

    const size_t dim = amps.size();
    for (size_t i = 0; i < dim; ++i) {
        if (i & mask)
            continue;
        for (size_t sub = 0; sub < sub_dim; ++sub)
            gathered[sub] = amps[i | offsets[sub]];
        for (size_t r = 0; r < sub_dim; ++r) {
            Complex sum(0.0, 0.0);
            for (size_t c = 0; c < sub_dim; ++c)
                sum += m(r, c) * gathered[c];
            amps[i | offsets[r]] = sum;
        }
    }
}

void
StateVector::applyPauli(int pauli, int q)
{
    QUEST_ASSERT(pauli >= 0 && pauli <= 3, "bad Pauli index");
    if (pauli == 0)
        return;
    const size_t stride = size_t{1} << (nQubits - 1 - q);
    const size_t dim = amps.size();
    for (size_t base = 0; base < dim; base += 2 * stride) {
        for (size_t i = base; i < base + stride; ++i) {
            Complex a0 = amps[i];
            Complex a1 = amps[i + stride];
            switch (pauli) {
              case 1:  // X
                amps[i] = a1;
                amps[i + stride] = a0;
                break;
              case 2:  // Y
                amps[i] = Complex(0, -1) * a1;
                amps[i + stride] = Complex(0, 1) * a0;
                break;
              case 3:  // Z
                amps[i + stride] = -a1;
                break;
            }
        }
    }
}

void
StateVector::applyGate(const Gate &gate)
{
    switch (gate.type) {
      case GateType::Barrier:
      case GateType::Measure:
        return;
      default:
        break;
    }
    ++nGateApplies;
    nBytesTouched += amps.size() * sizeof(Complex);
    switch (gate.type) {
      case GateType::CX: {
        // Direct conditional swap: fast path for the dominant gate.
        const size_t bc = size_t{1} << (nQubits - 1 - gate.qubits[0]);
        const size_t bt = size_t{1} << (nQubits - 1 - gate.qubits[1]);
        const size_t dim = amps.size();
        for (size_t i = 0; i < dim; ++i) {
            if ((i & bc) && !(i & bt))
                std::swap(amps[i], amps[i | bt]);
        }
        return;
      }
      default:
        applyMatrix(gateMatrix(gate), gate.qubits);
    }
}

void
StateVector::applyCircuit(const Circuit &circuit)
{
    QUEST_ASSERT(circuit.numQubits() == nQubits,
                 "circuit width does not match state");
    const uint64_t gates_before = nGateApplies;
    const uint64_t bytes_before = nBytesTouched;
    for (const Gate &g : circuit)
        applyGate(g);
#ifndef QUEST_OBS_DISABLED
    static auto &gate_counter =
        obs::MetricsRegistry::global().counter(names::kMetricSimGateApplies);
    static auto &byte_counter =
        obs::MetricsRegistry::global().counter(names::kMetricSimBytesTouched);
    gate_counter.add(nGateApplies - gates_before);
    byte_counter.add(nBytesTouched - bytes_before);
#endif
}

double
StateVector::norm() const
{
    double sum = 0.0;
    for (const Complex &a : amps)
        sum += std::norm(a);
    return std::sqrt(sum);
}

Distribution
StateVector::probabilities() const
{
    Distribution d(nQubits);
    for (size_t k = 0; k < amps.size(); ++k)
        d[k] = std::norm(amps[k]);
    return d;
}

size_t
StateVector::sample(Rng &rng) const
{
    double r = rng.uniform();
    double acc = 0.0;
    for (size_t k = 0; k < amps.size(); ++k) {
        acc += std::norm(amps[k]);
        if (r < acc)
            return k;
    }
    return amps.size() - 1;
}

} // namespace quest
