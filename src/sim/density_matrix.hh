/**
 * @file
 * Exact density-matrix simulation with Pauli noise channels.
 *
 * The Monte-Carlo trajectory simulator (sim/simulator.hh) samples the
 * same channel stochastically; this simulator applies it exactly, so
 * the two can be cross-validated and small-circuit experiments can
 * run without shot noise. Memory is 2^2n amplitudes — practical to
 * about eight qubits.
 */

#ifndef QUEST_SIM_DENSITY_MATRIX_HH
#define QUEST_SIM_DENSITY_MATRIX_HH

#include "ir/circuit.hh"
#include "linalg/matrix.hh"
#include "sim/distribution.hh"
#include "sim/noise.hh"

namespace quest {

/** An n-qubit mixed state rho. */
class DensityMatrix
{
  public:
    /** Initialize to |0...0><0...0|. */
    explicit DensityMatrix(int n_qubits);

    int numQubits() const { return nQubits; }
    const Matrix &matrix() const { return rho; }

    /** Apply a unitary gate: rho <- U rho U^dagger. */
    void applyGate(const Gate &gate);

    /**
     * Apply the symmetric Pauli channel on wire q:
     * rho <- (1 - p) rho + (p/3)(X rho X + Y rho Y + Z rho Z).
     */
    void applyPauliChannel(int q, double p);

    /** Trace of rho (1.0 for a valid state). */
    double trace() const;

    /** Purity Tr(rho^2) (1.0 for pure states). */
    double purity() const;

    /** Measurement probabilities (the diagonal of rho). */
    Distribution probabilities() const;

  private:
    int nQubits;
    Matrix rho;
};

/**
 * Exact noisy output distribution of a circuit under a NoiseModel:
 * the Pauli channel after every gate on each involved wire, then the
 * per-qubit readout bit-flip confusion applied to the diagonal.
 * This is the infinite-shot limit of NoisySimulator::run.
 */
Distribution exactNoisyDistribution(const Circuit &circuit,
                                    const NoiseModel &noise);

} // namespace quest

#endif // QUEST_SIM_DENSITY_MATRIX_HH
