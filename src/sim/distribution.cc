#include "sim/distribution.hh"

#include <cmath>

#include "util/logging.hh"

namespace quest {

namespace {

int
log2Exact(size_t n)
{
    int bits = 0;
    while ((size_t{1} << bits) < n)
        ++bits;
    QUEST_ASSERT((size_t{1} << bits) == n,
                 "distribution size must be a power of two, got ", n);
    return bits;
}

} // namespace

Distribution::Distribution(int n_qubits)
    : nQubits(n_qubits), probs(size_t{1} << n_qubits, 0.0)
{
    QUEST_ASSERT(n_qubits >= 1 && n_qubits <= 30, "bad qubit count");
}

Distribution::Distribution(std::vector<double> p)
    : nQubits(log2Exact(p.size())), probs(std::move(p))
{
    for (double v : probs)
        QUEST_ASSERT(v >= -1e-12, "negative probability");
}

Distribution
Distribution::fromCounts(const std::vector<uint64_t> &counts)
{
    std::vector<double> p(counts.size());
    uint64_t total = 0;
    for (uint64_t c : counts)
        total += c;
    QUEST_ASSERT(total > 0, "no counts");
    for (size_t i = 0; i < counts.size(); ++i)
        p[i] = static_cast<double>(counts[i]) / static_cast<double>(total);
    return Distribution(std::move(p));
}

Distribution
Distribution::average(const std::vector<Distribution> &members)
{
    QUEST_ASSERT(!members.empty(), "cannot average zero distributions");
    Distribution result(members.front().numQubits());
    for (const auto &d : members) {
        QUEST_ASSERT(d.size() == result.size(),
                     "distribution size mismatch in average");
        for (size_t k = 0; k < d.size(); ++k)
            result[k] += d[k];
    }
    for (size_t k = 0; k < result.size(); ++k)
        result[k] /= static_cast<double>(members.size());
    return result;
}

double
Distribution::total() const
{
    double sum = 0.0;
    for (double p : probs)
        sum += p;
    return sum;
}

void
Distribution::normalize()
{
    double sum = total();
    if (sum <= 0.0)
        return;
    for (double &p : probs)
        p /= sum;
}

size_t
Distribution::sample(Rng &rng) const
{
    double r = rng.uniform() * total();
    double acc = 0.0;
    for (size_t k = 0; k < probs.size(); ++k) {
        acc += probs[k];
        if (r < acc)
            return k;
    }
    return probs.size() - 1;
}

Distribution
Distribution::sampled(int shots, Rng &rng) const
{
    QUEST_ASSERT(shots > 0, "shots must be positive");
    std::vector<uint64_t> counts(probs.size(), 0);
    for (int s = 0; s < shots; ++s)
        ++counts[sample(rng)];
    return fromCounts(counts);
}

} // namespace quest
