/**
 * @file
 * Ideal and noisy circuit simulators.
 */

#ifndef QUEST_SIM_SIMULATOR_HH
#define QUEST_SIM_SIMULATOR_HH

#include <cstdint>

#include "ir/circuit.hh"
#include "sim/distribution.hh"
#include "sim/noise.hh"

namespace quest {

/**
 * Exact measurement distribution of a circuit on |0...0> (the paper's
 * "ground truth" unitary simulation).
 */
Distribution idealDistribution(const Circuit &circuit);

/**
 * Monte-Carlo Pauli-trajectory noisy simulator.
 *
 * Each shot simulates one statevector trajectory: after every gate,
 * each involved wire suffers a uniformly random Pauli with the
 * model's probability; the final sample is passed through per-qubit
 * readout flips. Matches the expectation of the paper's Pauli noise
 * channel.
 */
class NoisySimulator
{
  public:
    NoisySimulator(NoiseModel model, uint64_t seed);

    /** Empirical output distribution over @p shots trajectories. */
    Distribution run(const Circuit &circuit, int shots);

    const NoiseModel &model() const { return noise; }

  private:
    NoiseModel noise;
    Rng rng;
};

} // namespace quest

#endif // QUEST_SIM_SIMULATOR_HH
