/**
 * @file
 * Measurement-outcome probability distributions.
 */

#ifndef QUEST_SIM_DISTRIBUTION_HH
#define QUEST_SIM_DISTRIBUTION_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace quest {

/**
 * A probability distribution over the 2^n computational basis states
 * of an n-qubit circuit.
 */
class Distribution
{
  public:
    /** Uniform-zero distribution over 2^n_qubits outcomes. */
    explicit Distribution(int n_qubits);

    /** Wrap an explicit probability vector (size must be 2^k). */
    explicit Distribution(std::vector<double> probs);

    /** Build an empirical distribution from measurement counts. */
    static Distribution fromCounts(const std::vector<uint64_t> &counts);

    /** Pointwise average of several distributions (QUEST ensembles). */
    static Distribution average(const std::vector<Distribution> &members);

    size_t size() const { return probs.size(); }
    int numQubits() const { return nQubits; }

    double operator[](size_t k) const { return probs[k]; }
    double &operator[](size_t k) { return probs[k]; }
    const std::vector<double> &values() const { return probs; }

    /** Sum of all probabilities (1.0 when normalized). */
    double total() const;

    /** Scale so probabilities sum to one (no-op on a zero vector). */
    void normalize();

    /** Sample one outcome index. */
    size_t sample(Rng &rng) const;

    /**
     * Draw @p shots outcomes and return the empirical distribution
     * (models finite-shot sampling noise).
     */
    Distribution sampled(int shots, Rng &rng) const;

  private:
    int nQubits;
    std::vector<double> probs;
};

} // namespace quest

#endif // QUEST_SIM_DISTRIBUTION_HH
