#include "sim/simulator.hh"

#include "sim/statevector.hh"
#include "util/logging.hh"

namespace quest {

Distribution
idealDistribution(const Circuit &circuit)
{
    StateVector state(circuit.numQubits());
    state.applyCircuit(circuit);
    return state.probabilities();
}

NoisySimulator::NoisySimulator(NoiseModel model, uint64_t seed)
    : noise(model), rng(seed)
{
}

Distribution
NoisySimulator::run(const Circuit &circuit, int shots)
{
    QUEST_ASSERT(shots > 0, "shots must be positive");
    const int n = circuit.numQubits();

    if (noise.isIdeal()) {
        StateVector state(n);
        state.applyCircuit(circuit);
        return state.probabilities().sampled(shots, rng);
    }

    // Ideal final state reused by the (common) zero-error shots.
    StateVector ideal(n);
    ideal.applyCircuit(circuit);

    // One error event: after gate `gate`, Pauli `pauli` on wire `q`.
    struct ErrorEvent
    {
        size_t gate;
        int q;
        int pauli;  // 1 X, 2 Y, 3 Z
    };

    std::vector<uint64_t> counts(size_t{1} << n, 0);
    std::vector<ErrorEvent> events;

    const auto &gates = circuit.gates();
    for (int shot = 0; shot < shots; ++shot) {
        events.clear();
        for (size_t gi = 0; gi < gates.size(); ++gi) {
            const Gate &g = gates[gi];
            if (g.type == GateType::Barrier ||
                g.type == GateType::Measure) {
                continue;
            }
            double p = g.arity() >= 2 ? noise.p2 : noise.p1;
            if (p <= 0.0)
                continue;
            for (int q : g.qubits) {
                if (rng.bernoulli(p)) {
                    int pauli = 1 + static_cast<int>(rng.uniformInt(3));
                    events.push_back({gi, q, pauli});
                }
            }
        }

        size_t outcome;
        if (events.empty()) {
            outcome = ideal.sample(rng);
        } else {
            StateVector state(n);
            size_t next = 0;
            for (size_t gi = 0; gi < gates.size(); ++gi) {
                state.applyGate(gates[gi]);
                while (next < events.size() && events[next].gate == gi) {
                    state.applyPauli(events[next].pauli, events[next].q);
                    ++next;
                }
            }
            outcome = state.sample(rng);
        }

        if (noise.pReadout > 0.0) {
            for (int q = 0; q < n; ++q) {
                if (rng.bernoulli(noise.pReadout))
                    outcome ^= size_t{1} << (n - 1 - q);
            }
        }
        ++counts[outcome];
    }

    return Distribution::fromCounts(counts);
}

} // namespace quest
