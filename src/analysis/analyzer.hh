/**
 * @file
 * The analyzer driver: walks the tree, decides which rule families
 * apply to which paths, runs the per-file rules, then the cross-file
 * registry checks, and returns a Report.
 *
 * Path policy (all paths repo-relative):
 *   - determinism rules are skipped for src/resilience/, src/obs/,
 *     src/service/, tools/, bench/ and src/util/timer.hh (the
 *     clock/env allowlist — service scheduling is wall-clock-driven
 *     by design; job *results* still flow through src/quest/, where
 *     the rules stay armed);
 *   - the cancellation rule applies to src/synth/, src/anneal/ and
 *     src/quest/;
 *   - errors.runtime-error is skipped for src/util/ (the taxonomy
 *     itself derives from std::runtime_error);
 *   - literal metric/fault names are findings in src/ only — tests,
 *     tools and benches may use literals (ephemeral-prefix names);
 *   - tests/analysis_fixtures/ and build directories are never walked.
 */

#ifndef QUEST_ANALYSIS_ANALYZER_HH
#define QUEST_ANALYSIS_ANALYZER_HH

#include <string>
#include <vector>

#include "analysis/finding.hh"
#include "analysis/registry.hh"

namespace quest::analysis {

struct AnalyzerConfig
{
    /** Repo root; every other path is resolved against it. */
    std::string root = ".";
    /**
     * Files or directories (repo-relative) to scan. Empty means the
     * default roots: src, tools, tests, bench.
     */
    std::vector<std::string> paths;
    std::string registryPath = "docs/REGISTRY.md";
    std::string namesPath = "src/util/names.hh";
    /** Source of the exit-code taxonomy. */
    std::string errorSource = "src/resilience/error.cc";
    /**
     * Report documented-but-unused registry entries. Forced off when
     * @ref paths narrows the scan (a partial scan cannot prove
     * non-use).
     */
    bool checkStale = true;
};

struct Report
{
    std::vector<Finding> findings; //!< sorted by file, line, rule
    int filesScanned = 0;
    int suppressionsUsed = 0;
    RegistryDoc doc;   //!< parsed docs/REGISTRY.md
    CodeRegistry code; //!< registry extracted from the tree

    bool clean() const { return findings.empty(); }
};

/** Run the full analysis. Throws QuestError(Io) when the root or the
 *  registry/names inputs cannot be read. */
Report analyze(const AnalyzerConfig &config);

} // namespace quest::analysis

#endif // QUEST_ANALYSIS_ANALYZER_HH
