#include "analysis/report.hh"

#include <ostream>

#include "obs/json.hh"

namespace quest::analysis {

void
writeText(std::ostream &os, const Report &report)
{
    for (const Finding &f : report.findings) {
        os << f.file << ":" << f.line << ": "
           << severityName(f.severity) << ": [" << f.rule << "] "
           << f.message << "\n";
    }
    if (report.clean()) {
        os << "quest_analyze: clean — " << report.filesScanned
           << " files, " << report.code.metrics.size() << " metrics, "
           << report.code.faultSites.size() << " fault sites, "
           << report.code.exitCodes.size() << " exit codes, "
           << report.suppressionsUsed << " suppressions in use\n";
    } else {
        os << "quest_analyze: " << report.findings.size()
           << " finding(s) in " << report.filesScanned << " files\n";
    }
}

void
writeJson(std::ostream &os, const Report &report)
{
    obs::JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("quest-analyze-v1");
    w.key("files_scanned").value(report.filesScanned);
    w.key("suppressions_used").value(report.suppressionsUsed);
    w.key("clean").value(report.clean());

    w.key("findings").beginArray();
    for (const Finding &f : report.findings) {
        w.beginObject();
        w.key("rule").value(f.rule);
        w.key("severity").value(severityName(f.severity));
        w.key("file").value(f.file);
        w.key("line").value(f.line);
        w.key("message").value(f.message);
        w.endObject();
    }
    w.endArray();

    w.key("registry").beginObject();
    w.key("metrics").beginArray();
    for (const auto &[name, kind] : report.code.metrics) {
        w.beginObject();
        w.key("name").value(name);
        w.key("kind").value(kind);
        w.endObject();
    }
    w.endArray();
    w.key("fault_sites").beginArray();
    for (const std::string &site : report.code.faultSites)
        w.value(site);
    w.endArray();
    w.key("exit_codes").beginArray();
    for (const auto &[category, code] : report.code.exitCodes) {
        w.beginObject();
        w.key("category").value(category);
        w.key("code").value(code);
        w.endObject();
    }
    w.endArray();
    w.key("prefixes").beginArray();
    for (const std::string &prefix : report.code.prefixes)
        w.value(prefix);
    w.endArray();
    w.endObject();

    w.endObject();
    os << "\n";
}

} // namespace quest::analysis
