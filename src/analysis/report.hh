/**
 * @file
 * Report rendering: compiler-style text for humans, and the
 * machine-readable `quest-analyze-v1` JSON documented in
 * docs/FORMATS.md.
 */

#ifndef QUEST_ANALYSIS_REPORT_HH
#define QUEST_ANALYSIS_REPORT_HH

#include <iosfwd>

#include "analysis/analyzer.hh"

namespace quest::analysis {

/** `file:line: severity: [rule] message` lines plus a summary. */
void writeText(std::ostream &os, const Report &report);

/** The quest-analyze-v1 JSON document. */
void writeJson(std::ostream &os, const Report &report);

} // namespace quest::analysis

#endif // QUEST_ANALYSIS_REPORT_HH
