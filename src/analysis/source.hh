/**
 * @file
 * The analyzed view of one source file: its token stream, the
 * derived significant-token stream (comments stripped), matched
 * bracket tables, suppression comments and result-neutral regions.
 * Built once per file; every rule then works on this shared view.
 */

#ifndef QUEST_ANALYSIS_SOURCE_HH
#define QUEST_ANALYSIS_SOURCE_HH

#include <string>
#include <utility>
#include <vector>

#include "analysis/lexer.hh"

namespace quest::analysis {

/** One `// QUEST_ANALYZE_OK(rule.id): reason` comment. */
struct Suppression
{
    std::string rule;
    int line = 0;
    std::string reason;
    bool used = false; //!< set when it suppresses a finding
};

struct SourceFile
{
    std::string relPath; //!< repo-relative, forward slashes
    std::string text;    //!< owned source bytes
    std::vector<Token> tokens; //!< full stream, comments included
    std::vector<Token> sig;    //!< tokens minus comments
    /** For sig[i] == '(' or '{': index of the matching closer, else
     *  -1 (also -1 on unbalanced input — rules skip those). */
    std::vector<int> match;
    std::vector<Suppression> suppressions;
    /** sig-index ranges [begin, end) declared result-neutral via
     *  QUEST_RESULT_NEUTRAL. */
    std::vector<std::pair<int, int>> resultNeutral;

    /** True when sig index @p i lies in a result-neutral range. */
    bool resultNeutralAt(int i) const;

    /**
     * True (and marks the suppression used) when a suppression for
     * @p rule sits on @p line or the line above it.
     */
    bool suppressed(const std::string &rule, int line);
};

/**
 * Lex @p text and derive the analysis view. @p relPath is recorded
 * verbatim in findings.
 */
SourceFile buildSourceFile(std::string relPath, std::string text);

} // namespace quest::analysis

#endif // QUEST_ANALYSIS_SOURCE_HH
