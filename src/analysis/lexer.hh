/**
 * @file
 * A lightweight C++ lexer for static analysis.
 *
 * Produces a flat token stream — identifiers, literals, punctuation,
 * comments — with line numbers. It is not a preprocessor or a
 * parser: macros are not expanded and templates are not matched. The
 * point is that rule checks see *tokens*, so an identifier such as
 * `steady_clock` inside a string literal or a comment can never
 * false-positive, and a string literal argument is recognized as one
 * token regardless of what it contains.
 *
 * Handled: // and block comments, ordinary/char/raw string literals
 * (including d-char delimiters), numeric literals (including digit
 * separators and suffixes), identifiers, and multi-character
 * punctuators as single characters (rules match on single punct
 * tokens, so splitting `->` into `-` `>` is fine and keeps the lexer
 * trivial). Unterminated constructs terminate at end of input rather
 * than erroring: an analyzer must degrade gracefully on any input.
 */

#ifndef QUEST_ANALYSIS_LEXER_HH
#define QUEST_ANALYSIS_LEXER_HH

#include <string_view>
#include <vector>

namespace quest::analysis {

enum class TokenKind {
    Identifier, //!< identifiers and keywords
    Number,     //!< numeric literal
    String,     //!< "..." or R"(...)" — text excludes the quotes
    CharLit,    //!< '...'
    Punct,      //!< one punctuation character
    Comment,    //!< // or /* */ — text excludes the markers
};

struct Token
{
    TokenKind kind;
    std::string_view text; //!< view into the lexed source
    int line;              //!< 1-based line of the token's first char
};

/**
 * Tokenize @p source. Returned views point into @p source, which
 * must outlive the tokens.
 */
std::vector<Token> lex(std::string_view source);

} // namespace quest::analysis

#endif // QUEST_ANALYSIS_LEXER_HH
