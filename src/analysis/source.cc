#include "analysis/source.hh"

#include <algorithm>
#include <cctype>

namespace quest::analysis {

namespace {

/** Trim ASCII whitespace from both ends. */
std::string
trim(std::string_view s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

/**
 * Parse "QUEST_ANALYZE_OK(rule.id[, rule.id...]): reason" out of one
 * comment's text into one Suppression per listed rule; false when the
 * comment is not a suppression. The marker must open the comment
 * (modulo whitespace), so prose that merely *mentions* the syntax —
 * like this file's own docs — doesn't count.
 */
bool
parseSuppression(std::string_view comment, int line,
                 std::vector<Suppression> &out)
{
    static constexpr std::string_view kMarker = "QUEST_ANALYZE_OK(";
    size_t at = 0;
    while (at < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[at])))
        ++at;
    if (comment.compare(at, kMarker.size(), kMarker) != 0)
        return false;
    const size_t open = at + kMarker.size();
    const size_t close = comment.find(')', open);
    if (close == std::string_view::npos)
        return false;
    std::string_view rest = comment.substr(close + 1);
    if (!rest.empty() && rest.front() == ':')
        rest.remove_prefix(1);
    const std::string reason = trim(rest);

    std::string_view rules = comment.substr(open, close - open);
    bool any = false;
    while (!rules.empty()) {
        const size_t comma = rules.find(',');
        const std::string rule = trim(rules.substr(0, comma));
        rules = comma == std::string_view::npos
                    ? std::string_view()
                    : rules.substr(comma + 1);
        if (rule.empty())
            continue;
        out.push_back({rule, line, reason, false});
        any = true;
    }
    return any;
}

} // namespace

bool
SourceFile::resultNeutralAt(int i) const
{
    for (const auto &[begin, end] : resultNeutral) {
        if (i >= begin && i < end)
            return true;
    }
    return false;
}

bool
SourceFile::suppressed(const std::string &rule, int line)
{
    bool hit = false;
    for (Suppression &s : suppressions) {
        if (s.rule == rule && (s.line == line || s.line + 1 == line)) {
            s.used = true;
            hit = true;
        }
    }
    return hit;
}

SourceFile
buildSourceFile(std::string relPath, std::string text)
{
    SourceFile f;
    f.relPath = std::move(relPath);
    f.text = std::move(text);
    f.tokens = lex(f.text);

    for (const Token &t : f.tokens) {
        if (t.kind == TokenKind::Comment) {
            parseSuppression(t.text, t.line, f.suppressions);
        } else {
            f.sig.push_back(t);
        }
    }

    // Match () and {} over the significant stream; unbalanced input
    // leaves -1, which every consumer treats as "don't know".
    f.match.assign(f.sig.size(), -1);
    std::vector<int> parens, braces;
    for (int i = 0; i < static_cast<int>(f.sig.size()); ++i) {
        const Token &t = f.sig[i];
        if (t.kind != TokenKind::Punct) {
            // A result-neutral annotation covers from its position
            // to the end of the innermost open brace scope (or the
            // whole file at top level, which no sane use hits).
            if (t.kind == TokenKind::Identifier &&
                t.text == "QUEST_RESULT_NEUTRAL") {
                f.resultNeutral.push_back(
                    {i, braces.empty()
                            ? static_cast<int>(f.sig.size())
                            : -1 - braces.back()});
            }
            continue;
        }
        switch (t.text[0]) {
          case '(':
            parens.push_back(i);
            break;
          case ')':
            if (!parens.empty()) {
                f.match[parens.back()] = i;
                parens.pop_back();
            }
            break;
          case '{':
            braces.push_back(i);
            break;
          case '}':
            if (!braces.empty()) {
                f.match[braces.back()] = i;
                braces.pop_back();
            }
            break;
          default:
            break;
        }
    }
    // Second pass: resolve annotation ranges recorded as -1-braceIdx
    // now that every brace has (or hasn't) a match.
    for (auto &[begin, end] : f.resultNeutral) {
        if (end < 0) {
            const int brace = -1 - end;
            end = f.match[brace] >= 0 ? f.match[brace]
                                      : static_cast<int>(f.sig.size());
        }
    }
    return f;
}

} // namespace quest::analysis
