#include "analysis/analyzer.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "analysis/rules.hh"
#include "resilience/error.hh"
#include "util/annotations.hh"

namespace quest::analysis {

namespace fs = std::filesystem;

namespace {

bool
startsWith(const std::string &s, std::string_view prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

bool
isSourceExt(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

/** Directories never walked: build trees and the analyzer's own
 *  violation fixtures. */
bool
isExcludedDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return startsWith(name, "build") || name == "analysis_fixtures" ||
           name == ".git";
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw resilience::QuestError(
            resilience::ErrorCategory::Io,
            "cannot read " + path.string());
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Repo-relative path with forward slashes. */
std::string
relPathOf(const fs::path &path, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(path, root, ec);
    std::string s = (ec ? path : rel).generic_string();
    while (startsWith(s, "./"))
        s = s.substr(2);
    return s;
}

/** Collect the files to scan, sorted for deterministic output. */
std::vector<fs::path>
collectFiles(const AnalyzerConfig &config)
{
    QUEST_RESULT_NEUTRAL("paths are sorted before any rule runs, so "
                         "directory iteration order cannot affect "
                         "the report");
    const fs::path root = config.root;
    std::vector<std::string> roots = config.paths;
    if (roots.empty()) {
        for (const char *d : {"src", "tools", "tests", "bench"}) {
            if (fs::exists(root / d))
                roots.push_back(d);
        }
    }
    std::set<fs::path> files;
    for (const std::string &r : roots) {
        const fs::path base = root / r;
        if (fs::is_regular_file(base)) {
            files.insert(base);
            continue;
        }
        if (!fs::is_directory(base)) {
            throw resilience::QuestError(
                resilience::ErrorCategory::Io,
                "no such file or directory: " + base.string());
        }
        fs::recursive_directory_iterator it(base), end;
        for (; it != end; ++it) {
            if (it->is_directory() && isExcludedDir(it->path())) {
                it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() && isSourceExt(it->path()))
                files.insert(it->path());
        }
    }
    return {files.begin(), files.end()};
}

// Path policy (see the header comment).

bool
determinismAllowlisted(const std::string &rel)
{
    return startsWith(rel, "src/resilience/") ||
           startsWith(rel, "src/obs/") ||
           startsWith(rel, "src/service/") ||
           startsWith(rel, "tools/") || startsWith(rel, "bench/") ||
           rel == "src/util/timer.hh" ||
           // CPUID probe + QUEST_SIMD override: selects between
           // bit-identical kernel tables, so the env read cannot
           // change any result (pinned by the batch parity tests).
           rel == "src/util/cpu.cc";
}

bool
cancellationApplies(const std::string &rel)
{
    return startsWith(rel, "src/synth/") ||
           startsWith(rel, "src/anneal/") ||
           startsWith(rel, "src/quest/");
}

bool
runtimeErrorAllowed(const std::string &rel)
{
    return startsWith(rel, "src/util/");
}

bool
inSrc(const std::string &rel)
{
    return startsWith(rel, "src/");
}

} // namespace

Report
analyze(const AnalyzerConfig &config)
{
    Report report;
    const fs::path root = config.root;

    // The authoritative registry and the names header.
    report.doc = parseRegistryDoc(
        config.registryPath, readFile(root / config.registryPath),
        report.findings);
    SourceFile namesFile = buildSourceFile(
        config.namesPath, readFile(root / config.namesPath));
    const NamesHeader names =
        parseNamesHeader(namesFile, report.findings);

    // Exit codes come from the taxonomy source even when the scan is
    // narrowed, so the registry cross-check always has both sides.
    {
        SourceFile errorFile = buildSourceFile(
            config.errorSource, readFile(root / config.errorSource));
        std::map<std::string, std::string> categoryNames;
        std::map<std::string, int> codesByCategory;
        extractExitCodes(errorFile, names, categoryNames,
                         codesByCategory);
        for (const auto &[category, code] : codesByCategory) {
            auto it = categoryNames.find(category);
            const std::string stable =
                it == categoryNames.end() ? category : it->second;
            report.code.exitCodes[stable] = code;
        }
    }

    // Per-file rules + registry extraction.
    std::vector<CodeUse> uses;
    std::vector<SourceFile> scanned;
    for (const fs::path &path : collectFiles(config)) {
        const std::string rel = relPathOf(path, root);
        SourceFile file = buildSourceFile(rel, readFile(path));

        if (!determinismAllowlisted(rel))
            runDeterminismRule(file, report.findings);
        if (cancellationApplies(rel))
            runCancellationRule(file, report.findings);
        runErrorsRule(file, runtimeErrorAllowed(rel), report.findings);
        std::vector<CodeUse> fileUses = extractUses(
            file, names, inSrc(rel), report.findings);
        uses.insert(uses.end(), fileUses.begin(), fileUses.end());

        ++report.filesScanned;
        scanned.push_back(std::move(file));
    }

    // Cross-check every extracted use against the documented tables.
    for (const CodeUse &use : uses) {
        switch (use.what) {
          case CodeUse::What::Metric: {
            auto it = report.doc.metrics.find(use.name);
            if (it != report.doc.metrics.end()) {
                report.code.metrics[use.name] = use.kind;
                if (it->second != use.kind) {
                    report.findings.push_back(
                        {"registry.kind-mismatch", Severity::Error,
                         use.site.file, use.site.line,
                         "metric '" + use.name + "' is a " + use.kind +
                             " here but documented as a " +
                             it->second + " in " +
                             config.registryPath});
                }
            } else if (report.doc.matchesPrefix(use.name)) {
                // Ephemeral (e.g. test-local) name; record which
                // prefix carried it.
                for (const std::string &p : report.doc.prefixes) {
                    if (startsWith(use.name, p))
                        report.code.prefixes.insert(p);
                }
            } else {
                // Still part of the code-side manifest, so a CI
                // diff shows the extra entry too.
                report.code.metrics[use.name] = use.kind;
                report.findings.push_back(
                    {"registry.undocumented-metric", Severity::Error,
                     use.site.file, use.site.line,
                     "metric '" + use.name + "' is not documented in " +
                         config.registryPath +
                         " (and matches no ephemeral prefix)"});
            }
            break;
          }
          case CodeUse::What::FaultSite:
            if (report.doc.faultSites.count(use.name)) {
                report.code.faultSites.insert(use.name);
            } else if (report.doc.matchesPrefix(use.name)) {
                for (const std::string &p : report.doc.prefixes) {
                    if (startsWith(use.name, p))
                        report.code.prefixes.insert(p);
                }
            } else {
                report.code.faultSites.insert(use.name);
                report.findings.push_back(
                    {"registry.undocumented-fault-site",
                     Severity::Error, use.site.file, use.site.line,
                     "fault site '" + use.name +
                         "' is not documented in " +
                         config.registryPath});
            }
            break;
          case CodeUse::What::Prefix:
            if (report.doc.prefixes.count(use.name)) {
                report.code.prefixes.insert(use.name);
            } else if (report.doc.matchesPrefix(use.name)) {
                for (const std::string &p : report.doc.prefixes) {
                    if (startsWith(use.name, p))
                        report.code.prefixes.insert(p);
                }
            } else {
                report.findings.push_back(
                    {"registry.undocumented-metric", Severity::Error,
                     use.site.file, use.site.line,
                     "dynamic name prefix '" + use.name +
                         "' is not documented in " +
                         config.registryPath});
            }
            break;
          case CodeUse::What::ExitCode:
            break; // extracted separately
        }
    }

    // Exit codes: both directions must agree exactly.
    for (const auto &[category, code] : report.doc.exitCodes) {
        auto it = report.code.exitCodes.find(category);
        const NameSite site = report.doc.sites.count("exit " + category)
                                  ? report.doc.sites.at("exit " +
                                                        category)
                                  : NameSite{config.registryPath, 0};
        if (it == report.code.exitCodes.end()) {
            report.findings.push_back(
                {"registry.exit-code", Severity::Error, site.file,
                 site.line,
                 "exit code category '" + category +
                     "' is documented but absent from " +
                     config.errorSource});
        } else if (it->second != code) {
            report.findings.push_back(
                {"registry.exit-code", Severity::Error, site.file,
                 site.line,
                 "exit code for '" + category + "' is " +
                     std::to_string(it->second) + " in " +
                     config.errorSource + " but documented as " +
                     std::to_string(code)});
        }
    }
    for (const auto &[category, code] : report.code.exitCodes) {
        if (!report.doc.exitCodes.count(category)) {
            report.findings.push_back(
                {"registry.exit-code", Severity::Error,
                 config.errorSource, 0,
                 "exit code " + std::to_string(code) + " for '" +
                     category + "' is not documented in " +
                     config.registryPath});
        }
    }

    // Stale entries: documented names the scan never saw. Only
    // meaningful for a full-tree scan.
    const bool fullScan = config.paths.empty();
    if (config.checkStale && fullScan) {
        auto staleAt = [&](const std::string &key,
                           const std::string &message) {
            const NameSite site =
                report.doc.sites.count(key)
                    ? report.doc.sites.at(key)
                    : NameSite{config.registryPath, 0};
            report.findings.push_back({"registry.stale",
                                       Severity::Error, site.file,
                                       site.line, message});
        };
        for (const auto &[name, kind] : report.doc.metrics) {
            if (!report.code.metrics.count(name))
                staleAt("metric " + name,
                        "documented metric '" + name +
                            "' no longer appears in the tree");
        }
        for (const std::string &site : report.doc.faultSites) {
            if (!report.code.faultSites.count(site))
                staleAt("fault " + site,
                        "documented fault site '" + site +
                            "' no longer appears in the tree");
        }
        for (const std::string &prefix : report.doc.prefixes) {
            if (!report.code.prefixes.count(prefix))
                staleAt("prefix " + prefix,
                        "documented name prefix '" + prefix +
                            "' no longer appears in the tree");
        }
    }

    // Suppressions that suppressed nothing are themselves findings —
    // the set of annotations must stay minimal and honest.
    for (SourceFile &file : scanned) {
        for (const Suppression &s : file.suppressions) {
            if (s.used) {
                ++report.suppressionsUsed;
            } else {
                report.findings.push_back(
                    {"analyze.unused-suppression", Severity::Error,
                     file.relPath, s.line,
                     "QUEST_ANALYZE_OK(" + s.rule +
                         ") did not suppress any finding — remove "
                         "it"});
            }
        }
    }

    std::sort(report.findings.begin(), report.findings.end(),
              findingBefore);
    return report;
}

} // namespace quest::analysis
