/**
 * @file
 * The four rule families enforced by quest_analyze.
 *
 *   determinism.*   — no clock/env/PRNG reads, unordered-container
 *                     iteration or filesystem-order dependence on
 *                     result-affecting paths
 *   cancellation.*  — kernel-calling loops in src/synth, src/anneal
 *                     and src/quest must poll (or forward) a Budget
 *   registry.*      — metric names, fault sites and exit codes must
 *                     agree between code, src/util/names.hh and
 *                     docs/REGISTRY.md
 *   errors.*        — no stray std::runtime_error outside src/util;
 *                     catch (...) must rethrow or forward
 *
 * Which families apply to which paths is the analyzer's decision
 * (analyzer.cc); these functions implement the token-level checks.
 * Findings are emitted through SourceFile::suppressed so that
 * `// QUEST_ANALYZE_OK(rule)` comments work uniformly.
 */

#ifndef QUEST_ANALYSIS_RULES_HH
#define QUEST_ANALYSIS_RULES_HH

#include <map>
#include <string>
#include <vector>

#include "analysis/finding.hh"
#include "analysis/registry.hh"
#include "analysis/source.hh"

namespace quest::analysis {

/** One rule id + one-line description, for --list-rules and docs. */
struct RuleInfo
{
    const char *id;
    const char *summary;
};

/** Every rule id the analyzer can emit, sorted by id. */
const std::vector<RuleInfo> &allRules();

void runDeterminismRule(SourceFile &file, std::vector<Finding> &out);

void runCancellationRule(SourceFile &file, std::vector<Finding> &out);

/** @p allowRuntimeError exempts src/util (the error taxonomy). */
void runErrorsRule(SourceFile &file, bool allowRuntimeError,
                   std::vector<Finding> &out);

/**
 * Extract every metric registration and fault point. @p requireConstants
 * makes literal names a registry.literal-name finding (src/ policy);
 * unresolved names:: constants are findings everywhere.
 */
std::vector<CodeUse> extractUses(SourceFile &file,
                                 const NamesHeader &names,
                                 bool requireConstants,
                                 std::vector<Finding> &out);

/**
 * Extract the `case ErrorCategory::X: return V;` mappings from the
 * error-taxonomy source: string returns give the stable category
 * names, integer (or names:: constant) returns give the exit codes.
 */
void extractExitCodes(const SourceFile &file, const NamesHeader &names,
                      std::map<std::string, std::string> &categoryNames,
                      std::map<std::string, int> &exitCodes);

} // namespace quest::analysis

#endif // QUEST_ANALYSIS_RULES_HH
