/**
 * @file
 * Typed findings produced by the static analyzer.
 *
 * Every finding carries a stable dotted rule id ("determinism.clock",
 * "registry.undocumented-metric", ...) — the same id used by the
 * `// QUEST_ANALYZE_OK(rule.id)` suppression syntax — plus the
 * file:line it anchors to and a human message. The full rule list
 * lives in docs/ANALYSIS.md.
 */

#ifndef QUEST_ANALYSIS_FINDING_HH
#define QUEST_ANALYSIS_FINDING_HH

#include <string>

namespace quest::analysis {

enum class Severity { Error, Warning };

/** "error" / "warning". */
const char *severityName(Severity severity);

struct Finding
{
    std::string rule;   //!< stable dotted id, e.g. "determinism.clock"
    Severity severity = Severity::Error;
    std::string file;   //!< repo-relative path
    int line = 0;       //!< 1-based
    std::string message;
};

/** Stable output order: file, then line, then rule. */
bool findingBefore(const Finding &a, const Finding &b);

} // namespace quest::analysis

#endif // QUEST_ANALYSIS_FINDING_HH
