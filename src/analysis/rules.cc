#include "analysis/rules.hh"

#include <algorithm>
#include <array>
#include <string_view>

namespace quest::analysis {

namespace {

using sv = std::string_view;

/** Emit unless suppressed by a QUEST_ANALYZE_OK comment. */
void
emit(SourceFile &f, std::vector<Finding> &out, const char *rule,
     int line, std::string message)
{
    if (f.suppressed(rule, line))
        return;
    out.push_back(
        {rule, Severity::Error, f.relPath, line, std::move(message)});
}

bool
isIdent(const Token &t, sv text)
{
    return t.kind == TokenKind::Identifier && t.text == text;
}

bool
isPunct(const Token &t, char c)
{
    return t.kind == TokenKind::Punct && t.text.size() == 1 &&
           t.text[0] == c;
}

template <size_t N>
bool
oneOf(sv text, const std::array<sv, N> &set)
{
    return std::find(set.begin(), set.end(), text) != set.end();
}

/** sig[i] is an identifier directly followed by '('. */
bool
calledAt(const SourceFile &f, size_t i)
{
    return i + 1 < f.sig.size() && isPunct(f.sig[i + 1], '(');
}

// ---- determinism --------------------------------------------------

constexpr std::array<sv, 3> kClockTypes = {
    "steady_clock", "system_clock", "high_resolution_clock"};
constexpr std::array<sv, 2> kEnvReads = {"getenv", "secure_getenv"};
constexpr std::array<sv, 5> kPrngCalls = {"rand", "srand", "random",
                                          "drand48", "lrand48"};
constexpr std::array<sv, 4> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};
constexpr std::array<sv, 4> kFsOrderIdents = {
    "directory_iterator", "recursive_directory_iterator",
    "last_write_time", "file_time_type"};

/** `now` reached through some clock type: X::now with X ending in
 *  clock/Clock (covers Clock aliases and file_time_type::clock). */
bool
isClockNow(const SourceFile &f, size_t i)
{
    if (!isIdent(f.sig[i], "now") || i < 3)
        return false;
    if (!isPunct(f.sig[i - 1], ':') || !isPunct(f.sig[i - 2], ':'))
        return false;
    const Token &owner = f.sig[i - 3];
    if (owner.kind != TokenKind::Identifier)
        return false;
    return owner.text.ends_with("lock") || owner.text.ends_with("Clock");
}

} // namespace

void
runDeterminismRule(SourceFile &f, std::vector<Finding> &out)
{
    for (size_t i = 0; i < f.sig.size(); ++i) {
        const Token &t = f.sig[i];
        if (t.kind != TokenKind::Identifier)
            continue;
        if (f.resultNeutralAt(static_cast<int>(i)))
            continue;

        if (oneOf(t.text, kClockTypes) || isClockNow(f, i)) {
            emit(f, out, "determinism.clock", t.line,
                 std::string("wall-clock read '") + std::string(t.text) +
                     "' on a result-affecting path (allow-listed dirs: "
                     "src/resilience, src/obs, src/service, tools, "
                     "bench; or declare QUEST_RESULT_NEUTRAL)");
        } else if (isIdent(t, "time") && calledAt(f, i) &&
                   (i == 0 || !isPunct(f.sig[i - 1], '.'))) {
            emit(f, out, "determinism.clock", t.line,
                 "time() read on a result-affecting path");
        } else if (oneOf(t.text, kEnvReads)) {
            emit(f, out, "determinism.env", t.line,
                 std::string("environment read '") +
                     std::string(t.text) +
                     "' on a result-affecting path");
        } else if (oneOf(t.text, kPrngCalls) && calledAt(f, i) &&
                   (i == 0 || !isPunct(f.sig[i - 1], '.'))) {
            emit(f, out, "determinism.rand", t.line,
                 std::string("non-seeded PRNG '") + std::string(t.text) +
                     "()' — use util::Rng with an explicit seed");
        } else if (oneOf(t.text, kUnorderedTypes)) {
            emit(f, out, "determinism.unordered", t.line,
                 std::string("'") + std::string(t.text) +
                     "' iteration order is unspecified — use the "
                     "ordered container or declare "
                     "QUEST_RESULT_NEUTRAL");
        } else if (oneOf(t.text, kFsOrderIdents)) {
            emit(f, out, "determinism.fs-order", t.line,
                 std::string("'") + std::string(t.text) +
                     "' depends on directory order / mtimes — sort "
                     "explicitly or declare QUEST_RESULT_NEUTRAL");
        }
    }
}

// ---- cancellation -------------------------------------------------

namespace {

/** Calls that mark a loop as "does kernel work per iteration". */
constexpr std::array<sv, 16> kKernelCalls = {
    "instantiate",     "instantiateParallel", "evaluate",
    "evaluateWithGradient", "synthesize",     "synthesizeBlock",
    "synthesizeExact", "applyCircuit",        "applyGate",
    "buildUnitary",    "simulate",            "minimize",
    "dualAnnealing",   "outputDistance",      "unitary",
    "unitaryAndGradient"};

/** Budget polls (as calls). */
constexpr std::array<sv, 6> kPollCalls = {
    "exhausted", "stop", "cancelled", "expired", "poll",
    "checkRunBudget"};

/** Budget forwarding: the loop at least threads a budget through. */
constexpr std::array<sv, 4> kBudgetIdents = {"budget", "runBudget",
                                             "Budget", "QUEST_BOUNDED_LOOP"};

struct LoopBody
{
    int headBegin; //!< '(' of the condition (-1 for do)
    int headEnd;
    int bodyBegin;
    int bodyEnd;
    int line;
};

bool
rangeHasKernelCall(const SourceFile &f, int begin, int end)
{
    for (int i = begin; i < end && i < static_cast<int>(f.sig.size());
         ++i) {
        if (f.sig[i].kind == TokenKind::Identifier &&
            oneOf(f.sig[i].text, kKernelCalls) &&
            calledAt(f, static_cast<size_t>(i)))
            return true;
    }
    return false;
}

bool
rangeHasPoll(const SourceFile &f, int begin, int end)
{
    for (int i = begin; i < end && i < static_cast<int>(f.sig.size());
         ++i) {
        if (f.sig[i].kind != TokenKind::Identifier)
            continue;
        if (oneOf(f.sig[i].text, kPollCalls) &&
            calledAt(f, static_cast<size_t>(i)))
            return true;
        if (oneOf(f.sig[i].text, kBudgetIdents))
            return true;
    }
    return false;
}

/** Find the statement/block after sig index @p at (body of a loop
 *  whose closing header paren is at @p at). */
bool
bodyAfter(const SourceFile &f, int at, int &begin, int &end)
{
    const int n = static_cast<int>(f.sig.size());
    if (at + 1 >= n)
        return false;
    if (isPunct(f.sig[at + 1], '{')) {
        if (f.match[at + 1] < 0)
            return false;
        begin = at + 2;
        end = f.match[at + 1];
        return true;
    }
    if (isPunct(f.sig[at + 1], ';')) // do-while tail / empty body
        return false;
    // Single-statement body: scan to the ';' at depth zero.
    int depth = 0;
    for (int i = at + 1; i < n; ++i) {
        if (f.sig[i].kind != TokenKind::Punct)
            continue;
        const char c = f.sig[i].text[0];
        if (c == '(' || c == '{' || c == '[')
            ++depth;
        else if (c == ')' || c == '}' || c == ']')
            --depth;
        else if (c == ';' && depth == 0) {
            begin = at + 1;
            end = i;
            return true;
        }
    }
    return false;
}

} // namespace

void
runCancellationRule(SourceFile &f, std::vector<Finding> &out)
{
    const int n = static_cast<int>(f.sig.size());
    for (int i = 0; i < n; ++i) {
        const Token &t = f.sig[i];
        if (t.kind != TokenKind::Identifier)
            continue;

        LoopBody loop{-1, -1, -1, -1, t.line};
        if ((t.text == "for" || t.text == "while") && i + 1 < n &&
            isPunct(f.sig[i + 1], '(')) {
            const int close = f.match[i + 1];
            if (close < 0)
                continue;
            // The `while` of a do-while was handled at the `do`.
            if (close + 1 < n && isPunct(f.sig[close + 1], ';'))
                continue;
            loop.headBegin = i + 2;
            loop.headEnd = close;
            if (!bodyAfter(f, close, loop.bodyBegin, loop.bodyEnd))
                continue;
        } else if (t.text == "do" && i + 1 < n &&
                   isPunct(f.sig[i + 1], '{')) {
            const int close = f.match[i + 1];
            if (close < 0)
                continue;
            loop.bodyBegin = i + 2;
            loop.bodyEnd = close;
            if (close + 2 < n && isIdent(f.sig[close + 1], "while") &&
                isPunct(f.sig[close + 2], '(') &&
                f.match[close + 2] >= 0) {
                loop.headBegin = close + 3;
                loop.headEnd = f.match[close + 2];
            }
        } else {
            continue;
        }

        if (!rangeHasKernelCall(f, loop.bodyBegin, loop.bodyEnd))
            continue;
        const bool polled =
            rangeHasPoll(f, loop.bodyBegin, loop.bodyEnd) ||
            (loop.headBegin >= 0 &&
             rangeHasPoll(f, loop.headBegin, loop.headEnd));
        if (polled)
            continue;
        emit(f, out, "cancellation.unpolled-loop", loop.line,
             "loop calls an instantiation/simulation kernel but "
             "neither polls nor forwards a Budget/CancelToken "
             "(annotate QUEST_BOUNDED_LOOP if the trip count is "
             "provably small)");
    }
}

// ---- errors -------------------------------------------------------

void
runErrorsRule(SourceFile &f, bool allowRuntimeError,
              std::vector<Finding> &out)
{
    const int n = static_cast<int>(f.sig.size());
    for (int i = 0; i < n; ++i) {
        const Token &t = f.sig[i];
        if (t.kind != TokenKind::Identifier)
            continue;

        if (!allowRuntimeError && t.text == "throw") {
            for (int j = i + 1; j < n && j <= i + 4; ++j) {
                if (isIdent(f.sig[j], "runtime_error")) {
                    emit(f, out, "errors.runtime-error", t.line,
                         "throw a typed QuestError (or a decoder "
                         "error) instead of std::runtime_error "
                         "outside src/util");
                    break;
                }
            }
        }

        // catch (...) { ... } must rethrow or forward the exception.
        if (t.text == "catch" && i + 1 < n &&
            isPunct(f.sig[i + 1], '(')) {
            const int close = f.match[i + 1];
            if (close != i + 5 || !isPunct(f.sig[i + 2], '.') ||
                !isPunct(f.sig[i + 3], '.') ||
                !isPunct(f.sig[i + 4], '.'))
                continue;
            if (close + 1 >= n || !isPunct(f.sig[close + 1], '{') ||
                f.match[close + 1] < 0)
                continue;
            const int bodyBegin = close + 2;
            const int bodyEnd = f.match[close + 1];
            bool handled = false;
            for (int j = bodyBegin; j < bodyEnd; ++j) {
                const Token &b = f.sig[j];
                if (b.kind != TokenKind::Identifier)
                    continue;
                if (b.text == "throw" || b.text == "current_exception" ||
                    b.text == "rethrow_exception" ||
                    b.text == "QUEST_INTENTIONAL_SWALLOW") {
                    handled = true;
                    break;
                }
            }
            if (!handled) {
                emit(f, out, "errors.swallowed-exception", t.line,
                     "catch (...) neither rethrows nor forwards the "
                     "exception (annotate QUEST_INTENTIONAL_SWALLOW "
                     "if dropping it is the contract)");
            }
        }
    }
}

// ---- registry extraction ------------------------------------------

namespace {

constexpr std::array<sv, 3> kMetricMethods = {"counter", "gauge",
                                              "histogram"};

/**
 * Classify the argument token range (argBegin, argEnd) of a metric
 * or fault-point call. Returns false for dynamic arguments the
 * analyzer cannot resolve (a plain variable).
 */
bool
resolveNameArg(SourceFile &f, int argBegin, int argEnd,
               const NamesHeader &names, bool requireConstants,
               const char *what, std::vector<Finding> &out,
               std::string &name, bool &literal, bool &prefix)
{
    literal = false;
    prefix = false;
    name.clear();
    bool sawPlus = false;
    int stringAt = -1;
    int constAt = -1;
    std::string constValue;
    for (int i = argBegin; i < argEnd; ++i) {
        const Token &t = f.sig[i];
        if (t.kind == TokenKind::String && stringAt < 0)
            stringAt = i;
        else if (t.kind == TokenKind::Punct && t.text == "+")
            sawPlus = true;
        else if (constAt < 0 && isIdent(t, "names") && i + 3 < argEnd &&
                 isPunct(f.sig[i + 1], ':') &&
                 isPunct(f.sig[i + 2], ':') &&
                 f.sig[i + 3].kind == TokenKind::Identifier) {
            const Token &c = f.sig[i + 3];
            constAt = i + 3;
            auto it = names.strings.find(std::string(c.text));
            if (it == names.strings.end()) {
                emit(f, out, "registry.unknown-constant", c.line,
                     std::string("names::") + std::string(c.text) +
                         " is not declared in src/util/names.hh");
                return false;
            }
            constValue = it->second;
        }
    }
    if (constAt >= 0) {
        name = constValue;
        prefix = sawPlus;
        return true;
    }
    if (stringAt >= 0) {
        name = std::string(f.sig[stringAt].text);
        literal = true;
        prefix = sawPlus;
        if (requireConstants) {
            emit(f, out, "registry.literal-name",
                 f.sig[stringAt].line,
                 std::string(what) + " name \"" + name +
                     "\" is a string literal — src/ must use the "
                     "names:: constants from src/util/names.hh");
        }
        return true;
    }
    return false; // dynamic (variable) — out of extraction scope
}

} // namespace

std::vector<CodeUse>
extractUses(SourceFile &f, const NamesHeader &names,
            bool requireConstants, std::vector<Finding> &out)
{
    std::vector<CodeUse> uses;
    const int n = static_cast<int>(f.sig.size());
    for (int i = 0; i < n; ++i) {
        const Token &t = f.sig[i];
        if (t.kind != TokenKind::Identifier)
            continue;

        const bool metric = oneOf(t.text, kMetricMethods) && i > 0 &&
                            isPunct(f.sig[i - 1], '.') &&
                            calledAt(f, static_cast<size_t>(i));
        const bool fault = t.text == "QUEST_FAULT_POINT" &&
                           calledAt(f, static_cast<size_t>(i)) &&
                           (i == 0 || !isIdent(f.sig[i - 1], "define"));
        if (!metric && !fault)
            continue;
        const int close = f.match[i + 1];
        if (close < 0)
            continue;

        std::string name;
        bool literal = false, prefixUse = false;
        if (!resolveNameArg(f, i + 2, close, names, requireConstants,
                            metric ? "metric" : "fault site", out, name,
                            literal, prefixUse))
            continue;

        CodeUse use;
        use.name = name;
        use.literal = literal;
        use.site = {f.relPath, t.line};
        if (prefixUse) {
            use.what = CodeUse::What::Prefix;
        } else if (metric) {
            use.what = CodeUse::What::Metric;
            use.kind = std::string(t.text);
        } else {
            use.what = CodeUse::What::FaultSite;
        }
        uses.push_back(std::move(use));
    }
    return uses;
}

void
extractExitCodes(const SourceFile &f, const NamesHeader &names,
                 std::map<std::string, std::string> &categoryNames,
                 std::map<std::string, int> &exitCodes)
{
    const int n = static_cast<int>(f.sig.size());
    for (int i = 0; i + 6 < n; ++i) {
        // case ErrorCategory::X: return V;
        if (!isIdent(f.sig[i], "ErrorCategory") ||
            !isPunct(f.sig[i + 1], ':') || !isPunct(f.sig[i + 2], ':'))
            continue;
        const Token &cat = f.sig[i + 3];
        if (cat.kind != TokenKind::Identifier ||
            !isPunct(f.sig[i + 4], ':') ||
            !isIdent(f.sig[i + 5], "return"))
            continue;
        const std::string category(cat.text);
        const Token &val = f.sig[i + 6];
        if (val.kind == TokenKind::String) {
            categoryNames[category] = std::string(val.text);
        } else if (val.kind == TokenKind::Number) {
            try {
                exitCodes[category] = std::stoi(std::string(val.text));
            } catch (const std::exception &) {
            }
        } else if (isIdent(val, "names") && i + 9 < n &&
                   f.sig[i + 9].kind == TokenKind::Identifier) {
            auto it = names.ints.find(std::string(f.sig[i + 9].text));
            if (it != names.ints.end())
                exitCodes[category] = it->second;
        }
    }
}

// ---- rule catalogue -----------------------------------------------

const std::vector<RuleInfo> &
allRules()
{
    static const std::vector<RuleInfo> rules = {
        {"analyze.unused-suppression",
         "a QUEST_ANALYZE_OK comment suppressed nothing"},
        {"cancellation.unpolled-loop",
         "kernel-calling loop without a Budget poll or forward"},
        {"determinism.clock",
         "wall-clock read on a result-affecting path"},
        {"determinism.env",
         "environment read on a result-affecting path"},
        {"determinism.fs-order",
         "directory-order/mtime dependence on a result-affecting "
         "path"},
        {"determinism.rand", "non-seeded PRNG use"},
        {"determinism.unordered",
         "unordered container on a result-affecting path"},
        {"errors.runtime-error",
         "std::runtime_error thrown outside src/util"},
        {"errors.swallowed-exception",
         "catch (...) that neither rethrows nor forwards"},
        {"registry.duplicate",
         "name declared or documented more than once"},
        {"registry.exit-code",
         "exit-code taxonomy diverges from docs/REGISTRY.md"},
        {"registry.kind-mismatch",
         "metric registered with a different kind than documented"},
        {"registry.literal-name",
         "metric/fault-site literal in src/ instead of names::"},
        {"registry.malformed", "unparseable docs/REGISTRY.md row"},
        {"registry.stale",
         "documented name that no longer appears in the tree"},
        {"registry.undocumented-fault-site",
         "fault site missing from docs/REGISTRY.md"},
        {"registry.undocumented-metric",
         "metric name missing from docs/REGISTRY.md"},
        {"registry.unknown-constant",
         "names:: constant not declared in src/util/names.hh"},
    };
    return rules;
}

} // namespace quest::analysis
