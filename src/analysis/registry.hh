/**
 * @file
 * The two ends of the registry-consistency rule: the authoritative
 * tables checked into docs/REGISTRY.md, and the name constants
 * declared in src/util/names.hh. The analyzer extracts a third view
 * from call sites in the code and requires all three to agree; both
 * the docs and the code view can be rendered as a canonical
 * manifest, so CI can additionally `diff` them directly.
 */

#ifndef QUEST_ANALYSIS_REGISTRY_HH
#define QUEST_ANALYSIS_REGISTRY_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/finding.hh"
#include "analysis/source.hh"

namespace quest::analysis {

/** Where a registry entry was declared or used (for findings). */
struct NameSite
{
    std::string file;
    int line = 0;
};

/** Parsed docs/REGISTRY.md tables. */
struct RegistryDoc
{
    std::map<std::string, std::string> metrics; //!< name -> kind
    std::set<std::string> prefixes;     //!< dynamic/ephemeral prefixes
    std::set<std::string> faultSites;
    std::map<std::string, int> exitCodes; //!< category name -> code
    std::map<std::string, NameSite> sites; //!< entry -> doc line

    /** True when @p name starts with a registered prefix. */
    bool matchesPrefix(const std::string &name) const;
};

/**
 * Parse the markdown tables of docs/REGISTRY.md. Rows are assigned
 * to the table of the nearest preceding "## ..." heading containing
 * one of: "Metric", "Prefix", "Fault", "Exit". Malformed rows and
 * duplicate names are reported as findings against @p relPath.
 */
RegistryDoc parseRegistryDoc(const std::string &relPath,
                             const std::string &text,
                             std::vector<Finding> &findings);

/** Constants parsed out of src/util/names.hh. */
struct NamesHeader
{
    std::map<std::string, std::string> strings; //!< ident -> value
    std::map<std::string, int> ints;            //!< ident -> value
    std::map<std::string, NameSite> sites;      //!< ident -> decl site
};

/**
 * Extract `inline constexpr const char kX[] = "...";` and
 * `inline constexpr int kX = N;` declarations. Two string constants
 * with the same value are reported as registry.duplicate findings.
 */
NamesHeader parseNamesHeader(const SourceFile &file,
                             std::vector<Finding> &findings);

/** One metric/fault-site/exit-code occurrence extracted from code. */
struct CodeUse
{
    enum class What { Metric, FaultSite, ExitCode, Prefix };
    What what;
    std::string name; //!< metric/site name, exit category, or prefix
    std::string kind; //!< metric kind ("counter"/...); empty otherwise
    int code = 0;     //!< ExitCode only
    NameSite site;
    bool literal = false; //!< spelled as a string literal at the site
};

/** Aggregated code-side registry (deduplicated, for the manifest). */
struct CodeRegistry
{
    std::map<std::string, std::string> metrics;
    std::set<std::string> prefixes;
    std::set<std::string> faultSites;
    std::map<std::string, int> exitCodes;
};

/**
 * Canonical manifest: one sorted "kind name [extra]" line per entry,
 * identical for the docs and code views when they agree — CI diffs
 * the two renderings.
 */
std::string renderManifest(const RegistryDoc &doc);
std::string renderManifest(const CodeRegistry &code);

} // namespace quest::analysis

#endif // QUEST_ANALYSIS_REGISTRY_HH
