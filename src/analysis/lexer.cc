#include "analysis/lexer.hh"

#include <cctype>
#include <string>

namespace quest::analysis {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Count newlines in @p text (to keep the line counter exact for
 *  multi-line tokens). */
int
newlinesIn(std::string_view text)
{
    int n = 0;
    for (char c : text)
        n += (c == '\n');
    return n;
}

} // namespace

std::vector<Token>
lex(std::string_view src)
{
    std::vector<Token> out;
    size_t i = 0;
    int line = 1;
    const size_t n = src.size();

    auto push = [&](TokenKind kind, size_t begin, size_t end) {
        out.push_back({kind, src.substr(begin, end - begin), line});
    };

    while (i < n) {
        const char c = src[i];

        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            size_t j = i + 2;
            while (j < n && src[j] != '\n')
                ++j;
            push(TokenKind::Comment, i + 2, j);
            i = j;
            continue;
        }

        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            size_t j = i + 2;
            while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/'))
                ++j;
            const size_t end = (j + 1 < n) ? j : n;
            push(TokenKind::Comment, i + 2, end);
            line += newlinesIn(src.substr(i, end - i));
            i = (j + 1 < n) ? j + 2 : n;
            continue;
        }

        // Raw string literal: R"delim(...)delim".
        if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
            // Find the d-char delimiter up to the '('.
            size_t j = i + 2;
            while (j < n && src[j] != '(' && src[j] != '\n' &&
                   j - (i + 2) < 16)
                ++j;
            if (j < n && src[j] == '(') {
                std::string closer = ")";
                closer.append(src.substr(i + 2, j - (i + 2)));
                closer.push_back('"');
                size_t k = src.find(closer, j + 1);
                size_t end = (k == std::string_view::npos) ? n : k;
                push(TokenKind::String, j + 1, end);
                line += newlinesIn(src.substr(i, end - i));
                i = (k == std::string_view::npos) ? n
                                                  : k + closer.size();
                continue;
            }
            // No '(' — fall through and lex 'R' as an identifier.
        }

        // Ordinary string literal.
        if (c == '"') {
            size_t j = i + 1;
            while (j < n && src[j] != '"' && src[j] != '\n') {
                if (src[j] == '\\' && j + 1 < n)
                    ++j;
                ++j;
            }
            push(TokenKind::String, i + 1, j);
            i = (j < n) ? j + 1 : n;
            continue;
        }

        // Character literal. Disambiguate from digit separators
        // (1'000'000): a ' directly after a number token's digits is
        // consumed by the number scanner below, so reaching here
        // means a real char literal (or a stray quote; both lex the
        // same way).
        if (c == '\'') {
            size_t j = i + 1;
            while (j < n && src[j] != '\'' && src[j] != '\n') {
                if (src[j] == '\\' && j + 1 < n)
                    ++j;
                ++j;
            }
            push(TokenKind::CharLit, i + 1, j);
            i = (j < n) ? j + 1 : n;
            continue;
        }

        if (isIdentStart(c)) {
            size_t j = i + 1;
            while (j < n && isIdentChar(src[j]))
                ++j;
            push(TokenKind::Identifier, i, j);
            i = j;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            size_t j = i + 1;
            while (j < n &&
                   (isIdentChar(src[j]) || src[j] == '.' ||
                    src[j] == '\'' ||
                    ((src[j] == '+' || src[j] == '-') &&
                     (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                      src[j - 1] == 'p' || src[j - 1] == 'P'))))
                ++j;
            push(TokenKind::Number, i, j);
            i = j;
            continue;
        }

        // Everything else: one punctuation character per token.
        push(TokenKind::Punct, i, i + 1);
        ++i;
    }
    return out;
}

} // namespace quest::analysis
