#include "analysis/registry.hh"

#include <cctype>
#include <sstream>

namespace quest::analysis {

namespace {

std::string
trim(std::string_view s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

/** Strip one level of `backticks` from a table cell. */
std::string
uncode(std::string cell)
{
    if (cell.size() >= 2 && cell.front() == '`' && cell.back() == '`')
        return cell.substr(1, cell.size() - 2);
    return cell;
}

/** Split a markdown table row into trimmed cells. */
std::vector<std::string>
splitRow(const std::string &line)
{
    std::vector<std::string> cells;
    size_t begin = line.find('|');
    while (begin != std::string::npos) {
        size_t end = line.find('|', begin + 1);
        if (end == std::string::npos)
            break;
        cells.push_back(
            trim(std::string_view(line).substr(begin + 1,
                                               end - begin - 1)));
        begin = end;
    }
    return cells;
}

/** True for the |---|:---| separator row under a table header. */
bool
isSeparatorRow(const std::vector<std::string> &cells)
{
    for (const std::string &c : cells) {
        for (char ch : c) {
            if (ch != '-' && ch != ':')
                return false;
        }
    }
    return true;
}

bool
containsWord(const std::string &heading, const char *word)
{
    return heading.find(word) != std::string::npos;
}

void
reportDuplicate(std::vector<Finding> &findings, const std::string &file,
                int line, const std::string &what,
                const std::string &name)
{
    findings.push_back({"registry.duplicate", Severity::Error, file,
                        line,
                        what + " '" + name +
                            "' is declared more than once"});
}

} // namespace

bool
RegistryDoc::matchesPrefix(const std::string &name) const
{
    for (const std::string &p : prefixes) {
        if (name.size() > p.size() && name.compare(0, p.size(), p) == 0)
            return true;
    }
    return false;
}

RegistryDoc
parseRegistryDoc(const std::string &relPath, const std::string &text,
                 std::vector<Finding> &findings)
{
    RegistryDoc doc;
    enum class Section { None, Metrics, Prefixes, Faults, Exits };
    Section section = Section::None;

    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::string t = trim(line);
        if (t.rfind("##", 0) == 0) {
            if (containsWord(t, "refix"))
                section = Section::Prefixes;
            else if (containsWord(t, "etric"))
                section = Section::Metrics;
            else if (containsWord(t, "ault"))
                section = Section::Faults;
            else if (containsWord(t, "xit"))
                section = Section::Exits;
            else
                section = Section::None;
            continue;
        }
        if (section == Section::None || t.empty() || t[0] != '|')
            continue;
        std::vector<std::string> cells = splitRow(t);
        if (cells.empty() || isSeparatorRow(cells))
            continue;
        const std::string first = uncode(cells[0]);
        // Header rows name their column; every real entry contains
        // a '.' or '-' or digit, so a bare column label is skipped.
        if (first == "name" || first == "prefix" || first == "site" ||
            first == "category")
            continue;

        switch (section) {
          case Section::Metrics: {
            if (cells.size() < 2) {
                findings.push_back({"registry.malformed",
                                    Severity::Error, relPath, lineNo,
                                    "metric row needs | name | kind "
                                    "| description |"});
                break;
            }
            const std::string kind = uncode(cells[1]);
            if (kind != "counter" && kind != "gauge" &&
                kind != "histogram") {
                findings.push_back({"registry.malformed",
                                    Severity::Error, relPath, lineNo,
                                    "unknown metric kind '" + kind +
                                        "' for '" + first + "'"});
                break;
            }
            if (!doc.metrics.emplace(first, kind).second)
                reportDuplicate(findings, relPath, lineNo, "metric",
                                first);
            doc.sites["metric " + first] = {relPath, lineNo};
            break;
          }
          case Section::Prefixes:
            if (!doc.prefixes.insert(first).second)
                reportDuplicate(findings, relPath, lineNo, "prefix",
                                first);
            doc.sites["prefix " + first] = {relPath, lineNo};
            break;
          case Section::Faults:
            if (!doc.faultSites.insert(first).second)
                reportDuplicate(findings, relPath, lineNo,
                                "fault site", first);
            doc.sites["fault " + first] = {relPath, lineNo};
            break;
          case Section::Exits: {
            if (cells.size() < 2) {
                findings.push_back({"registry.malformed",
                                    Severity::Error, relPath, lineNo,
                                    "exit-code row needs | category "
                                    "| code | description |"});
                break;
            }
            int code = 0;
            try {
                code = std::stoi(uncode(cells[1]));
            } catch (const std::exception &) {
                findings.push_back({"registry.malformed",
                                    Severity::Error, relPath, lineNo,
                                    "exit code for '" + first +
                                        "' is not an integer"});
                break;
            }
            if (!doc.exitCodes.emplace(first, code).second)
                reportDuplicate(findings, relPath, lineNo,
                                "exit code", first);
            doc.sites["exit " + first] = {relPath, lineNo};
            break;
          }
          case Section::None:
            break;
        }
    }
    return doc;
}

NamesHeader
parseNamesHeader(const SourceFile &file, std::vector<Finding> &findings)
{
    NamesHeader names;
    std::map<std::string, std::string> byValue; // value -> first ident
    const auto &sig = file.sig;
    for (size_t i = 0; i + 2 < sig.size(); ++i) {
        if (sig[i].kind != TokenKind::Identifier ||
            sig[i].text != "constexpr")
            continue;
        // constexpr [const] char IDENT [ ] = "..." ;
        // constexpr int IDENT = N ;
        size_t j = i + 1;
        while (j < sig.size() && sig[j].kind == TokenKind::Identifier &&
               (sig[j].text == "const" || sig[j].text == "char" ||
                sig[j].text == "int"))
            ++j;
        // j now points at the declared identifier.
        if (j >= sig.size() || sig[j].kind != TokenKind::Identifier)
            continue;
        const std::string ident(sig[j].text);
        const int line = sig[j].line;
        size_t k = j + 1;
        while (k < sig.size() && sig[k].kind == TokenKind::Punct &&
               (sig[k].text == "[" || sig[k].text == "]"))
            ++k;
        if (k + 1 >= sig.size() || sig[k].text != "=")
            continue;
        const Token &val = sig[k + 1];
        if (val.kind == TokenKind::String) {
            const std::string value(val.text);
            names.strings[ident] = value;
            names.sites[ident] = {file.relPath, line};
            auto [it, fresh] = byValue.emplace(value, ident);
            if (!fresh) {
                findings.push_back(
                    {"registry.duplicate", Severity::Error,
                     file.relPath, line,
                     "name constant '" + ident + "' duplicates '" +
                         it->second + "' (both are \"" + value +
                         "\")"});
            }
        } else if (val.kind == TokenKind::Number) {
            try {
                names.ints[ident] = std::stoi(std::string(val.text));
                names.sites[ident] = {file.relPath, line};
            } catch (const std::exception &) {
            }
        }
    }
    return names;
}

std::string
renderManifest(const RegistryDoc &doc)
{
    std::ostringstream out;
    for (const auto &[category, code] : doc.exitCodes)
        out << "exit-code " << category << " " << code << "\n";
    for (const std::string &site : doc.faultSites)
        out << "fault-site " << site << "\n";
    for (const auto &[name, kind] : doc.metrics)
        out << "metric " << kind << " " << name << "\n";
    for (const std::string &prefix : doc.prefixes)
        out << "prefix " << prefix << "\n";
    return out.str();
}

std::string
renderManifest(const CodeRegistry &code)
{
    std::ostringstream out;
    for (const auto &[category, exitCode] : code.exitCodes)
        out << "exit-code " << category << " " << exitCode << "\n";
    for (const std::string &site : code.faultSites)
        out << "fault-site " << site << "\n";
    for (const auto &[name, kind] : code.metrics)
        out << "metric " << kind << " " << name << "\n";
    for (const std::string &prefix : code.prefixes)
        out << "prefix " << prefix << "\n";
    return out.str();
}

} // namespace quest::analysis
