#include "analysis/finding.hh"

#include <tuple>

namespace quest::analysis {

const char *
severityName(Severity severity)
{
    return severity == Severity::Error ? "error" : "warning";
}

bool
findingBefore(const Finding &a, const Finding &b)
{
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
}

} // namespace quest::analysis
