/**
 * @file
 * Minimal streaming JSON writer used by the trace and benchmark
 * exporters. Handles comma placement and string escaping; the caller
 * is responsible for well-formed nesting (asserted in debug builds).
 */

#ifndef QUEST_OBS_JSON_HH
#define QUEST_OBS_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace quest::obs {

/** Streaming JSON emitter with automatic comma management. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object member key; must be followed by exactly one value. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view s);
    JsonWriter &value(const char *s) { return value(std::string_view(s)); }
    JsonWriter &value(double d);
    JsonWriter &value(int64_t v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int v) { return value(static_cast<int64_t>(v)); }
    JsonWriter &value(unsigned v) { return value(static_cast<uint64_t>(v)); }
    JsonWriter &value(bool b);

    /** Emit @p text verbatim as a value (pre-formatted number). */
    JsonWriter &rawValue(std::string_view text);

    /** JSON-escape @p s (without surrounding quotes). */
    static std::string escape(std::string_view s);

  private:
    void separator();

    std::ostream &os;
    std::vector<bool> firstInScope; //!< per open scope
    bool afterKey = false;
};

} // namespace quest::obs

#endif // QUEST_OBS_JSON_HH
