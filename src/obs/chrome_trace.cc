#include "obs/chrome_trace.hh"

#include <cstdio>
#include <ostream>

#include "obs/json.hh"

namespace quest::obs {

namespace {

/** ns as a microsecond decimal string (ns precision, e.g. "12.345"). */
std::string
microseconds(int64_t ns)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(ns) / 1000.0);
    return buf;
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<TraceEvent> &events)
{
    os << "[\n";
    bool first = true;
    for (const TraceEvent &e : events) {
        if (!first)
            os << ",\n";
        first = false;
        JsonWriter w(os);
        w.beginObject();
        w.key("name").value(e.name);
        w.key("cat").value("quest");
        w.key("ph").value("X");
        w.key("ts").rawValue(microseconds(e.startNs));
        w.key("dur").rawValue(microseconds(e.durNs));
        w.key("pid").value(1);
        w.key("tid").value(e.tid);
        w.key("args").beginObject();
        w.key("depth").value(e.depth);
        w.endObject();
        w.endObject();
    }
    os << "\n]\n";
}

} // namespace quest::obs
