/**
 * @file
 * Scoped-span tracing with per-thread ring buffers.
 *
 * `QUEST_TRACE_SCOPE("name")` opens a span that records its wall-clock
 * interval, thread id and nesting depth when it closes. The record
 * path is lock-free: each thread appends to its own pre-sized buffer
 * and publishes the write index with a release store; the exporter
 * reads published slots with an acquire load, so concurrent recording
 * and collection are race-free without any mutex on the hot path.
 *
 * Tracing is off by default. `TraceSession::global().start()` enables
 * it at runtime; building with -DQUEST_OBS=OFF (which defines
 * QUEST_OBS_DISABLED) compiles the macro away entirely. The span name
 * must be a string literal (or otherwise outlive the session) — only
 * the pointer is stored.
 */

#ifndef QUEST_OBS_TRACE_HH
#define QUEST_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace quest::obs {

/** One closed span. Times are ns since the process trace epoch. */
struct TraceEvent
{
    const char *name;   //!< static-storage span name
    uint32_t tid;       //!< dense per-thread id (registration order)
    uint32_t depth;     //!< nesting depth on its thread (0 = outermost)
    int64_t startNs;
    int64_t durNs;
};

/** Monotonic ns since the process-wide trace epoch. */
int64_t traceNowNs();

/**
 * Single-writer event buffer owned by one thread. The owning thread
 * appends; any thread may snapshot the published prefix concurrently.
 */
class TraceBuffer
{
  public:
    /** Spans recorded beyond this per-thread capacity are dropped
     *  (and counted) rather than wrapping, so published slots stay
     *  immutable and readable without synchronization. */
    static constexpr size_t kCapacity = size_t{1} << 14;

    explicit TraceBuffer(uint32_t tid)
        : slots(kCapacity), threadId(tid)
    {}

    uint32_t tid() const { return threadId; }

    /** Append one event (owner thread only). */
    void
    record(const char *name, uint32_t depth, int64_t start_ns,
           int64_t dur_ns)
    {
        const size_t i = countAtomic.load(std::memory_order_relaxed);
        if (i >= kCapacity) {
            droppedAtomic.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        slots[i] = TraceEvent{name, threadId, depth, start_ns, dur_ns};
        countAtomic.store(i + 1, std::memory_order_release);
    }

    /** Number of published events. */
    size_t size() const { return countAtomic.load(std::memory_order_acquire); }

    /** Events dropped because the buffer was full. */
    size_t
    dropped() const
    {
        return droppedAtomic.load(std::memory_order_relaxed);
    }

    /** Append the published prefix to @p out. */
    void
    snapshot(std::vector<TraceEvent> &out) const
    {
        const size_t n = size();
        out.insert(out.end(), slots.begin(), slots.begin() + n);
    }

    /** Forget all events. Requires the owner thread to be quiescent. */
    void
    resetCounts()
    {
        countAtomic.store(0, std::memory_order_relaxed);
        droppedAtomic.store(0, std::memory_order_relaxed);
    }

  private:
    std::vector<TraceEvent> slots;
    std::atomic<size_t> countAtomic{0};
    std::atomic<size_t> droppedAtomic{0};
    uint32_t threadId;
};

/**
 * Global trace collector: owns the registry of per-thread buffers and
 * the runtime enable flag. Buffers outlive their threads (shared
 * ownership), so spans recorded by short-lived pool workers survive
 * until export.
 */
class TraceSession
{
  public:
    static TraceSession &global();

    /** Clear previous events and enable recording. Must not be
     *  called while instrumented work is in flight. */
    void start();

    /** Disable recording (events stay collectable). */
    void stop();

    /** True while spans are being recorded. */
    bool
    enabled() const
    {
        return enabledFlag.load(std::memory_order_relaxed);
    }

    /** Forget all recorded events (see start() for the caveat). */
    void clear();

    /** All published events, sorted by start time (parents before
     *  their children). Safe to call while recording. */
    std::vector<TraceEvent> collect() const;

    /** Total events dropped across all thread buffers. */
    size_t droppedEvents() const;

    /** The calling thread's buffer (registers it on first use). */
    TraceBuffer &threadBuffer();

  private:
    std::atomic<bool> enabledFlag{false};
    mutable std::mutex registryMutex;
    std::vector<std::shared_ptr<TraceBuffer>> buffers;
};

/** RAII span: opens at construction, records at destruction. */
class TraceScope
{
  public:
    explicit TraceScope(const char *name);
    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    const char *name;
    int64_t startNs;   //!< -1 when the session was disabled at entry
    uint32_t depth = 0;
};

} // namespace quest::obs

#ifdef QUEST_OBS_DISABLED
#define QUEST_TRACE_SCOPE(name) ((void)0)
#else
#define QUEST_TRACE_SCOPE_CAT2(a, b) a##b
#define QUEST_TRACE_SCOPE_CAT(a, b) QUEST_TRACE_SCOPE_CAT2(a, b)
#define QUEST_TRACE_SCOPE(name) \
    ::quest::obs::TraceScope QUEST_TRACE_SCOPE_CAT( \
        quest_trace_scope_, __LINE__)(name)
#endif

#endif // QUEST_OBS_TRACE_HH
