/**
 * @file
 * Process-wide metrics: counters, gauges and log2-bucketed
 * histograms, registered by name in a global MetricsRegistry.
 *
 * The record path is lock-free (relaxed atomics); the registry mutex
 * is taken only on first lookup of a name, so call sites cache the
 * returned reference in a function-local static:
 *
 *     static auto &calls =
 *         obs::MetricsRegistry::global().counter(names::kMetricLbfgsCalls);
 *     calls.increment();
 *
 * Metric names are declared once in src/util/names.hh and documented
 * in docs/REGISTRY.md; production code must use the names:: constants
 * (quest_analyze flags literal names in src/).
 *
 * Metric handles are never invalidated: reset() zeroes values but
 * keeps every registered object alive for the process lifetime.
 * Building with -DQUEST_OBS=OFF compiles the record operations into
 * no-ops.
 */

#ifndef QUEST_OBS_METRICS_HH
#define QUEST_OBS_METRICS_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/table.hh"

namespace quest::obs {

/** Monotonic event count. */
class Counter
{
  public:
    void
    add(uint64_t n)
    {
#ifndef QUEST_OBS_DISABLED
        val.fetch_add(n, std::memory_order_relaxed);
#else
        (void)n;
#endif
    }

    void increment() { add(1); }

    uint64_t value() const { return val.load(std::memory_order_relaxed); }

    void reset() { val.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> val{0};
};

/** Last-set instantaneous value. */
class Gauge
{
  public:
    void
    set(int64_t v)
    {
#ifndef QUEST_OBS_DISABLED
        val.store(v, std::memory_order_relaxed);
#else
        (void)v;
#endif
    }

    void
    add(int64_t n)
    {
#ifndef QUEST_OBS_DISABLED
        val.fetch_add(n, std::memory_order_relaxed);
#else
        (void)n;
#endif
    }

    int64_t value() const { return val.load(std::memory_order_relaxed); }

    void reset() { val.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> val{0};
};

/**
 * Log2-bucketed histogram of non-negative integer samples (bucket b
 * holds values whose bit width is b, i.e. [2^(b-1), 2^b - 1]; bucket
 * 0 holds the value 0). Tracks count, sum, min and max exactly;
 * quantiles are bucket-resolution upper bounds.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 64;

    void
    record(uint64_t sample)
    {
#ifndef QUEST_OBS_DISABLED
        buckets[bucketIndex(sample)].fetch_add(
            1, std::memory_order_relaxed);
        total.fetch_add(1, std::memory_order_relaxed);
        sumVal.fetch_add(sample, std::memory_order_relaxed);
        relaxedMin(minVal, sample);
        relaxedMax(maxVal, sample);
#else
        (void)sample;
#endif
    }

    uint64_t count() const { return total.load(std::memory_order_relaxed); }
    uint64_t sum() const { return sumVal.load(std::memory_order_relaxed); }

    /** Smallest recorded sample (0 when empty). */
    uint64_t
    minValue() const
    {
        uint64_t v = minVal.load(std::memory_order_relaxed);
        return v == UINT64_MAX ? 0 : v;
    }

    /** Largest recorded sample (0 when empty). */
    uint64_t maxValue() const { return maxVal.load(std::memory_order_relaxed); }

    double
    mean() const
    {
        uint64_t n = count();
        return n == 0 ? 0.0
                      : static_cast<double>(sum()) /
                            static_cast<double>(n);
    }

    uint64_t
    bucketCount(int b) const
    {
        return buckets[b].load(std::memory_order_relaxed);
    }

    /** Largest value bucket @p b can hold. */
    static uint64_t
    bucketUpperBound(int b)
    {
        if (b <= 0)
            return 0;
        if (b >= 64)
            return UINT64_MAX;
        return (uint64_t{1} << b) - 1;
    }

    static int
    bucketIndex(uint64_t sample)
    {
        return static_cast<int>(std::bit_width(sample));
    }

    /**
     * Upper bound on the q-quantile (0 < q <= 1) at bucket
     * resolution; clamped to the exact max. 0 when empty.
     */
    uint64_t
    quantile(double q) const
    {
        const uint64_t n = count();
        if (n == 0)
            return 0;
        uint64_t target = static_cast<uint64_t>(
            q * static_cast<double>(n) + 0.5);
        if (target < 1)
            target = 1;
        if (target > n)
            target = n;
        uint64_t seen = 0;
        for (int b = 0; b < kBuckets; ++b) {
            seen += bucketCount(b);
            if (seen >= target)
                return std::min(bucketUpperBound(b), maxValue());
        }
        return maxValue();
    }

    void
    reset()
    {
        for (auto &b : buckets)
            b.store(0, std::memory_order_relaxed);
        total.store(0, std::memory_order_relaxed);
        sumVal.store(0, std::memory_order_relaxed);
        minVal.store(UINT64_MAX, std::memory_order_relaxed);
        maxVal.store(0, std::memory_order_relaxed);
    }

  private:
    static void
    relaxedMin(std::atomic<uint64_t> &slot, uint64_t v)
    {
        uint64_t cur = slot.load(std::memory_order_relaxed);
        while (v < cur &&
               !slot.compare_exchange_weak(cur, v,
                                           std::memory_order_relaxed)) {
        }
    }

    static void
    relaxedMax(std::atomic<uint64_t> &slot, uint64_t v)
    {
        uint64_t cur = slot.load(std::memory_order_relaxed);
        while (v > cur &&
               !slot.compare_exchange_weak(cur, v,
                                           std::memory_order_relaxed)) {
        }
    }

    std::atomic<uint64_t> buckets[kBuckets]{};
    std::atomic<uint64_t> total{0};
    std::atomic<uint64_t> sumVal{0};
    std::atomic<uint64_t> minVal{UINT64_MAX};
    std::atomic<uint64_t> maxVal{0};
};

/** Metric kinds, for snapshots and export. */
enum class MetricKind { Counter, Gauge, Histogram };

/** One metric's state at snapshot time. */
struct MetricSnapshot
{
    std::string name;
    MetricKind kind;
    uint64_t count = 0;     //!< counter value / histogram count
    int64_t gaugeValue = 0; //!< gauge only
    uint64_t sum = 0;       //!< histogram only
    uint64_t min = 0;       //!< histogram only
    uint64_t max = 0;       //!< histogram only
    double mean = 0.0;      //!< histogram only
};

/** Name-keyed registry of all metrics in the process. */
class MetricsRegistry
{
  public:
    static MetricsRegistry &global();

    /** Get or create. Panics if @p name exists with another kind. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** All metrics, sorted by name. */
    std::vector<MetricSnapshot> snapshot() const;

    /** Zero every metric (handles stay valid). */
    void reset();

    /** Render the snapshot as an aligned table. */
    Table table() const;

  private:
    struct Entry
    {
        MetricKind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    mutable std::mutex mutex;
    std::map<std::string, Entry> entries;
};

} // namespace quest::obs

#endif // QUEST_OBS_METRICS_HH
