#include "obs/trace.hh"

#include <algorithm>
#include <chrono>

namespace quest::obs {

namespace {

/** Per-thread span nesting depth. */
thread_local uint32_t t_depth = 0;

/** The calling thread's buffer, shared with the session registry so
 *  it survives the thread. Null until the thread first records. */
thread_local std::shared_ptr<TraceBuffer> t_buffer;

/** Dense thread ids in registration order. */
std::atomic<uint32_t> g_next_tid{0};

} // namespace

int64_t
traceNowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - epoch)
        .count();
}

TraceSession &
TraceSession::global()
{
    static TraceSession session;
    return session;
}

void
TraceSession::start()
{
    clear();
    enabledFlag.store(true, std::memory_order_relaxed);
}

void
TraceSession::stop()
{
    enabledFlag.store(false, std::memory_order_relaxed);
}

void
TraceSession::clear()
{
    std::lock_guard<std::mutex> lock(registryMutex);
    for (auto &buffer : buffers)
        buffer->resetCounts();
}

std::vector<TraceEvent>
TraceSession::collect() const
{
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lock(registryMutex);
        for (const auto &buffer : buffers)
            buffer->snapshot(events);
    }
    // Parents open before (and close after) their children, so
    // sorting by start time — longest span first on ties — yields
    // parent-before-child order.
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  return a.durNs > b.durNs;
              });
    return events;
}

size_t
TraceSession::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(registryMutex);
    size_t total = 0;
    for (const auto &buffer : buffers)
        total += buffer->dropped();
    return total;
}

TraceBuffer &
TraceSession::threadBuffer()
{
    if (!t_buffer) {
        t_buffer = std::make_shared<TraceBuffer>(
            g_next_tid.fetch_add(1, std::memory_order_relaxed));
        std::lock_guard<std::mutex> lock(registryMutex);
        buffers.push_back(t_buffer);
    }
    return *t_buffer;
}

TraceScope::TraceScope(const char *name) : name(name), startNs(-1)
{
    if (!TraceSession::global().enabled())
        return;
    depth = t_depth++;
    startNs = traceNowNs();
}

TraceScope::~TraceScope()
{
    if (startNs < 0)
        return;
    --t_depth;
    TraceSession::global().threadBuffer().record(
        name, depth, startNs, traceNowNs() - startNs);
}

} // namespace quest::obs
