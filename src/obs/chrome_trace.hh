/**
 * @file
 * Chrome-trace exporter: renders collected spans as the JSON array
 * form of the Trace Event Format, loadable in chrome://tracing and
 * Perfetto (ui.perfetto.dev).
 */

#ifndef QUEST_OBS_CHROME_TRACE_HH
#define QUEST_OBS_CHROME_TRACE_HH

#include <iosfwd>
#include <vector>

#include "obs/trace.hh"

namespace quest::obs {

/**
 * Write @p events as a Chrome-trace JSON array of complete ("X")
 * events. Timestamps and durations are microseconds with ns
 * precision; the nesting depth is attached under "args".
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events);

} // namespace quest::obs

#endif // QUEST_OBS_CHROME_TRACE_HH
