/**
 * @file
 * Span aggregation: turn collected trace events into a per-phase
 * wall-clock attribution table (the `--stats` output of
 * quest_compile) and a coverage figure for testing.
 */

#ifndef QUEST_OBS_STATS_HH
#define QUEST_OBS_STATS_HH

#include <string>
#include <vector>

#include "obs/trace.hh"
#include "util/table.hh"

namespace quest::obs {

/** Aggregate of all spans sharing a name. */
struct SpanStat
{
    std::string name;
    uint64_t count = 0;
    double totalMs = 0.0;
};

/** Group events by span name, sorted by total time descending. */
std::vector<SpanStat> aggregateSpans(const std::vector<TraceEvent> &events);

/**
 * Fraction of the outermost @p root_name span's wall-clock covered
 * by its direct children (same thread, one nesting level deeper).
 * 0 when no such span exists.
 */
double phaseCoverage(const std::vector<TraceEvent> &events,
                     const std::string &root_name);

/**
 * Attribution table: one row per span name with call count, total
 * milliseconds and percentage of the outermost @p root_name span
 * (blank when the root is absent).
 */
Table spanStatsTable(const std::vector<TraceEvent> &events,
                     const std::string &root_name);

} // namespace quest::obs

#endif // QUEST_OBS_STATS_HH
