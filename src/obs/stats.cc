#include "obs/stats.hh"

#include <algorithm>
#include <map>

namespace quest::obs {

namespace {

/** The longest event named @p name, or nullptr. */
const TraceEvent *
findRoot(const std::vector<TraceEvent> &events, const std::string &name)
{
    const TraceEvent *root = nullptr;
    for (const TraceEvent &e : events) {
        if (name == e.name && (!root || e.durNs > root->durNs))
            root = &e;
    }
    return root;
}

} // namespace

std::vector<SpanStat>
aggregateSpans(const std::vector<TraceEvent> &events)
{
    std::map<std::string, SpanStat> by_name;
    for (const TraceEvent &e : events) {
        SpanStat &s = by_name[e.name];
        s.name = e.name;
        ++s.count;
        s.totalMs += static_cast<double>(e.durNs) / 1e6;
    }
    std::vector<SpanStat> out;
    out.reserve(by_name.size());
    for (auto &[name, s] : by_name)
        out.push_back(std::move(s));
    std::sort(out.begin(), out.end(),
              [](const SpanStat &a, const SpanStat &b) {
                  return a.totalMs > b.totalMs;
              });
    return out;
}

double
phaseCoverage(const std::vector<TraceEvent> &events,
              const std::string &root_name)
{
    const TraceEvent *root = findRoot(events, root_name);
    if (!root || root->durNs <= 0)
        return 0.0;
    const int64_t root_end = root->startNs + root->durNs;
    int64_t covered = 0;
    for (const TraceEvent &e : events) {
        if (e.tid != root->tid || e.depth != root->depth + 1)
            continue;
        if (e.startNs < root->startNs || e.startNs >= root_end)
            continue;
        covered += std::min(e.durNs, root_end - e.startNs);
    }
    return static_cast<double>(covered) /
           static_cast<double>(root->durNs);
}

Table
spanStatsTable(const std::vector<TraceEvent> &events,
               const std::string &root_name)
{
    const TraceEvent *root = findRoot(events, root_name);
    const double root_ms =
        root ? static_cast<double>(root->durNs) / 1e6 : 0.0;

    Table t({"span", "count", "total_ms", "%of_" + root_name});
    for (const SpanStat &s : aggregateSpans(events)) {
        std::string pct =
            root_ms > 0.0 ? Table::pct(s.totalMs / root_ms) : "";
        t.addRow({s.name, std::to_string(s.count),
                  Table::num(s.totalMs, 3), pct});
    }
    return t;
}

} // namespace quest::obs
