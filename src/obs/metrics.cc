#include "obs/metrics.hh"

#include "util/logging.hh"

namespace quest::obs {

namespace {

const char *
kindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

} // namespace

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    Entry &e = entries[name];
    if (!e.counter) {
        QUEST_ASSERT(!e.gauge && !e.histogram, "metric '", name,
                     "' already registered as ", kindName(e.kind));
        e.kind = MetricKind::Counter;
        e.counter = std::make_unique<Counter>();
    }
    return *e.counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    Entry &e = entries[name];
    if (!e.gauge) {
        QUEST_ASSERT(!e.counter && !e.histogram, "metric '", name,
                     "' already registered as ", kindName(e.kind));
        e.kind = MetricKind::Gauge;
        e.gauge = std::make_unique<Gauge>();
    }
    return *e.gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    Entry &e = entries[name];
    if (!e.histogram) {
        QUEST_ASSERT(!e.counter && !e.gauge, "metric '", name,
                     "' already registered as ", kindName(e.kind));
        e.kind = MetricKind::Histogram;
        e.histogram = std::make_unique<Histogram>();
    }
    return *e.histogram;
}

std::vector<MetricSnapshot>
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<MetricSnapshot> out;
    out.reserve(entries.size());
    for (const auto &[name, e] : entries) {
        MetricSnapshot s;
        s.name = name;
        s.kind = e.kind;
        switch (e.kind) {
          case MetricKind::Counter:
            s.count = e.counter->value();
            break;
          case MetricKind::Gauge:
            s.gaugeValue = e.gauge->value();
            break;
          case MetricKind::Histogram:
            s.count = e.histogram->count();
            s.sum = e.histogram->sum();
            s.min = e.histogram->minValue();
            s.max = e.histogram->maxValue();
            s.mean = e.histogram->mean();
            break;
        }
        out.push_back(std::move(s));
    }
    return out;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex);
    for (auto &[name, e] : entries) {
        switch (e.kind) {
          case MetricKind::Counter:
            e.counter->reset();
            break;
          case MetricKind::Gauge:
            e.gauge->reset();
            break;
          case MetricKind::Histogram:
            e.histogram->reset();
            break;
        }
    }
}

Table
MetricsRegistry::table() const
{
    Table t({"metric", "kind", "value", "sum", "mean", "min", "max"});
    for (const MetricSnapshot &s : snapshot()) {
        switch (s.kind) {
          case MetricKind::Counter:
            t.addRow({s.name, "counter", std::to_string(s.count), "",
                      "", "", ""});
            break;
          case MetricKind::Gauge:
            t.addRow({s.name, "gauge", std::to_string(s.gaugeValue),
                      "", "", "", ""});
            break;
          case MetricKind::Histogram:
            t.addRow({s.name, "histogram", std::to_string(s.count),
                      std::to_string(s.sum), Table::num(s.mean, 2),
                      std::to_string(s.min), std::to_string(s.max)});
            break;
        }
    }
    return t;
}

} // namespace quest::obs
