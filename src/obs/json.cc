#include "obs/json.hh"

#include <cstdio>
#include <ostream>

#include "util/logging.hh"

namespace quest::obs {

JsonWriter::JsonWriter(std::ostream &os) : os(os) {}

void
JsonWriter::separator()
{
    if (afterKey) {
        afterKey = false;
        return;
    }
    if (!firstInScope.empty()) {
        if (!firstInScope.back())
            os << ",";
        firstInScope.back() = false;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    os << "{";
    firstInScope.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    QUEST_ASSERT(!firstInScope.empty() && !afterKey,
                 "unbalanced endObject");
    firstInScope.pop_back();
    os << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    os << "[";
    firstInScope.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    QUEST_ASSERT(!firstInScope.empty() && !afterKey,
                 "unbalanced endArray");
    firstInScope.pop_back();
    os << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    QUEST_ASSERT(!afterKey, "key after key");
    separator();
    os << "\"" << escape(k) << "\":";
    afterKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view s)
{
    separator();
    os << "\"" << escape(s) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(double d)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", d);
    return rawValue(buf);
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    separator();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    separator();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool b)
{
    separator();
    os << (b ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::rawValue(std::string_view text)
{
    separator();
    os << text;
    return *this;
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace quest::obs
