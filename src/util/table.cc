#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace quest {

Table::Table(std::vector<std::string> headers)
    : headers(std::move(headers))
{
    QUEST_ASSERT(!this->headers.empty(), "table needs headers");
}

void
Table::addRow(std::vector<std::string> cells)
{
    QUEST_ASSERT(cells.size() == headers.size(),
                 "row arity ", cells.size(), " != header arity ",
                 headers.size());
    data.push_back(std::move(cells));
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
Table::pct(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision)
       << fraction * 100.0 << "%";
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers.size());
    for (size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : data)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto line = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cells[c];
        }
        os << "\n";
    };

    line(headers);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : data)
        line(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto line = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            os << cells[c];
        }
        os << "\n";
    };
    line(headers);
    for (const auto &row : data)
        line(row);
}

} // namespace quest
