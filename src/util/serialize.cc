#include "util/serialize.hh"

#include <bit>
#include <cstring>

namespace quest {

void
ByteWriter::f64(double v)
{
    u64(std::bit_cast<uint64_t>(v));
}

void
ByteWriter::bytes(const void *data, size_t n)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    buf.insert(buf.end(), p, p + n);
}

void
ByteWriter::str(std::string_view s)
{
    u32(static_cast<uint32_t>(s.size()));
    bytes(s.data(), s.size());
}

double
ByteReader::f64()
{
    return std::bit_cast<double>(u64());
}

void
ByteReader::bytes(void *out, size_t n)
{
    require(n);
    std::memcpy(out, ptr + pos, n);
    pos += n;
}

std::string
ByteReader::str()
{
    uint32_t n = u32();
    require(n);
    std::string s(reinterpret_cast<const char *>(ptr + pos), n);
    pos += n;
    return s;
}

uint64_t
fnv1a64(const void *data, size_t n, uint64_t seed)
{
    constexpr uint64_t prime = 0x100000001b3ull;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= prime;
    }
    return h;
}

std::string
toHex(const uint8_t *data, size_t n)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(2 * n);
    for (size_t i = 0; i < n; ++i) {
        out.push_back(digits[data[i] >> 4]);
        out.push_back(digits[data[i] & 0xf]);
    }
    return out;
}

} // namespace quest
