/**
 * @file
 * Byte-level primitives for the repo's versioned little-endian binary
 * formats (docs/FORMATS.md): a bounds-checked reader, an appending
 * writer, FNV-1a checksumming and hex rendering.
 *
 * Every multi-byte integer is encoded little-endian byte by byte, so
 * the format is identical on any host. Doubles are encoded as the
 * little-endian bytes of their IEEE-754 bit pattern, which makes
 * round trips bit-exact (including NaNs and signed zeros) — a
 * requirement for the synthesis cache's byte-identical-replay
 * guarantee. Higher-level codecs (ir::Circuit, synthesis candidate
 * records) build on these in src/cache/codec.hh; they cannot live
 * here because quest_util sits below quest_ir in the layering.
 */

#ifndef QUEST_UTIL_SERIALIZE_HH
#define QUEST_UTIL_SERIALIZE_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace quest {

/**
 * Thrown by ByteReader on truncated or malformed input. Deliberately
 * an exception, not a panic: decoding untrusted bytes (a cache entry
 * another process half-wrote) is an expected failure, handled by
 * treating the entry as a miss.
 */
class SerializeError : public std::runtime_error
{
  public:
    explicit SerializeError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Appending little-endian byte-buffer writer. */
class ByteWriter
{
  public:
    void u8(uint8_t v) { buf.push_back(v); }

    void
    u16(uint16_t v)
    {
        buf.push_back(static_cast<uint8_t>(v));
        buf.push_back(static_cast<uint8_t>(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

    /** IEEE-754 bit pattern, little-endian: bit-exact round trips. */
    void f64(double v);

    /** Raw bytes, no length prefix. */
    void bytes(const void *data, size_t n);

    /** u32 byte length followed by the bytes. */
    void str(std::string_view s);

    size_t size() const { return buf.size(); }
    const std::vector<uint8_t> &buffer() const { return buf; }
    std::vector<uint8_t> take() { return std::move(buf); }

  private:
    std::vector<uint8_t> buf;
};

/**
 * Bounds-checked little-endian reader over a borrowed byte span.
 * Every read throws SerializeError instead of walking past the end.
 */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t size)
        : ptr(data), len(size)
    {}

    explicit ByteReader(const std::vector<uint8_t> &buf)
        : ptr(buf.data()), len(buf.size())
    {}

    uint8_t
    u8()
    {
        require(1);
        return ptr[pos++];
    }

    uint16_t
    u16()
    {
        require(2);
        uint16_t v = static_cast<uint16_t>(
            ptr[pos] | (static_cast<uint16_t>(ptr[pos + 1]) << 8));
        pos += 2;
        return v;
    }

    uint32_t
    u32()
    {
        require(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(ptr[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    uint64_t
    u64()
    {
        require(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(ptr[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    int32_t i32() { return static_cast<int32_t>(u32()); }
    int64_t i64() { return static_cast<int64_t>(u64()); }

    double f64();

    void bytes(void *out, size_t n);

    std::string str();

    size_t remaining() const { return len - pos; }
    bool atEnd() const { return pos == len; }
    size_t position() const { return pos; }

    /** Throw SerializeError unless @p n more bytes are available. */
    void
    require(size_t n) const
    {
        if (len - pos < n)
            throw SerializeError("truncated input: need " +
                                 std::to_string(n) + " bytes at offset " +
                                 std::to_string(pos) + ", have " +
                                 std::to_string(len - pos));
    }

  private:
    const uint8_t *ptr;
    size_t len;
    size_t pos = 0;
};

/** FNV-1a 64-bit offset basis. */
inline constexpr uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;

/**
 * FNV-1a 64-bit hash of a byte range; used as the cheap per-entry
 * payload checksum (corruption detection, not content addressing —
 * that is Sha256's job).
 */
uint64_t fnv1a64(const void *data, size_t n,
                 uint64_t seed = kFnv1aOffset);

/** Lower-case hex rendering of a byte range. */
std::string toHex(const uint8_t *data, size_t n);

} // namespace quest

#endif // QUEST_UTIL_SERIALIZE_HH
