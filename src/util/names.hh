/**
 * @file
 * The single source of truth for every registered metric name, fault
 * site and process exit code in the tree.
 *
 * Production code must spell these names through the constants below
 * — never as string literals — so that one name has exactly one
 * definition site. `quest_analyze` (src/analysis) parses this header,
 * resolves `names::k...` identifiers at metric/fault-point call
 * sites back to their strings, and cross-checks the result against
 * the authoritative tables in docs/REGISTRY.md; a literal name in
 * src/, an unknown constant, or a constant that diverges from the
 * registry is a gating finding. Tests and benches may still use ad
 * hoc literal names under the ephemeral prefixes listed in
 * docs/REGISTRY.md (e.g. "obs_test.").
 *
 * To add a metric or fault site: add the constant here, add a row to
 * docs/REGISTRY.md with a description, and use the constant at the
 * call site. `quest_analyze` fails until all three agree.
 */

#ifndef QUEST_UTIL_NAMES_HH
#define QUEST_UTIL_NAMES_HH

namespace quest::names {

// ---- Metrics: counters -------------------------------------------

// Synthesis cache (src/cache) disk-store outcomes.
inline constexpr const char kMetricCacheHit[] = "quest.cache.hit";
inline constexpr const char kMetricCacheMiss[] = "quest.cache.miss";
inline constexpr const char kMetricCacheCorrupt[] = "quest.cache.corrupt";
inline constexpr const char kMetricCacheStale[] = "quest.cache.stale";
inline constexpr const char kMetricCacheEvict[] = "quest.cache.evict";
inline constexpr const char kMetricCacheStoreFailed[] =
    "quest.cache.store_failed";

// Pipeline-level accounting (src/quest).
inline constexpr const char kMetricPipelineRuns[] = "quest.pipeline.runs";
inline constexpr const char kMetricSynthCacheHits[] =
    "quest.synth.cache_hits";
inline constexpr const char kMetricSynthCacheMisses[] =
    "quest.synth.cache_misses";

// Degradation and fault accounting (src/resilience, src/quest).
inline constexpr const char kMetricFallbacks[] = "resilience.fallbacks";
inline constexpr const char kMetricTimeouts[] = "resilience.timeouts";
inline constexpr const char kMetricDivergences[] =
    "resilience.divergences";
inline constexpr const char kMetricFaults[] = "resilience.faults";
inline constexpr const char kMetricFaultsInjected[] =
    "resilience.faults_injected";
inline constexpr const char kMetricJournalFailures[] =
    "resilience.journal_failures";
inline constexpr const char kMetricCheckpointBlocksReplayed[] =
    "resilience.checkpoint_blocks_replayed";

// Ensemble evaluation (src/quest).
inline constexpr const char kMetricEnsembleEvals[] =
    "quest.ensemble.evals";

// Dual annealing (src/anneal).
inline constexpr const char kMetricAnnealRuns[] = "anneal.runs";
inline constexpr const char kMetricAnnealSteps[] = "anneal.steps";
inline constexpr const char kMetricAnnealAcceptances[] =
    "anneal.acceptances";
inline constexpr const char kMetricAnnealRestarts[] = "anneal.restarts";
inline constexpr const char kMetricAnnealEvaluations[] =
    "anneal.evaluations";
inline constexpr const char kMetricAnnealNanObjectives[] =
    "anneal.nan_objectives";

// Statevector simulation (src/sim).
inline constexpr const char kMetricSimGateApplies[] = "sim.gate_applies";
inline constexpr const char kMetricSimBytesTouched[] =
    "sim.bytes_touched";
inline constexpr const char kMetricSimStatevectorBuilds[] =
    "sim.statevector_builds";
inline constexpr const char kMetricSimUnitaryBuilds[] =
    "sim.unitary_builds";

// L-BFGS optimizer (src/synth).
inline constexpr const char kMetricLbfgsCalls[] = "lbfgs.calls";
inline constexpr const char kMetricLbfgsIterations[] = "lbfgs.iterations";
inline constexpr const char kMetricLbfgsEvaluations[] =
    "lbfgs.evaluations";
inline constexpr const char kMetricLbfgsNonfiniteObjectives[] =
    "lbfgs.nonfinite_objectives";

// LEAP synthesis and instantiation (src/synth).
inline constexpr const char kMetricSynthCalls[] = "synth.calls";
inline constexpr const char kMetricSynthLevels[] = "synth.levels";
inline constexpr const char kMetricSynthTasks[] = "synth.tasks";
inline constexpr const char kMetricSynthCandidates[] = "synth.candidates";
inline constexpr const char kMetricSynthInstantiations[] =
    "synth.instantiations";
inline constexpr const char kMetricSynthMultistarts[] =
    "synth.multistarts";
inline constexpr const char kMetricSynthParallelStarts[] =
    "synth.parallel_starts";
inline constexpr const char kMetricSynthEarlyStops[] =
    "synth.early_stops";
inline constexpr const char kMetricSynthWorkspaceReuses[] =
    "synth.workspace_reuses";
inline constexpr const char kMetricSynthBatchedEvals[] =
    "synth.batched_evals";
inline constexpr const char kMetricSynthBatchLanes[] =
    "synth.batch_lanes";
inline constexpr const char kMetricSynthLaneRefills[] =
    "synth.lane_refills";
inline constexpr const char kMetricSynthSimdDispatchAvx512[] =
    "synth.simd_dispatch.avx512";
inline constexpr const char kMetricSynthSimdDispatchAvx2[] =
    "synth.simd_dispatch.avx2";
inline constexpr const char kMetricSynthSimdDispatchScalar[] =
    "synth.simd_dispatch.scalar";

// Compile service (src/service): job lifecycle and framing.
inline constexpr const char kMetricServiceJobsSubmitted[] =
    "service.jobs.submitted";
inline constexpr const char kMetricServiceJobsDone[] =
    "service.jobs.done";
inline constexpr const char kMetricServiceJobsFailed[] =
    "service.jobs.failed";
inline constexpr const char kMetricServiceJobsCancelled[] =
    "service.jobs.cancelled";
inline constexpr const char kMetricServiceJobsRejected[] =
    "service.jobs.rejected";
inline constexpr const char kMetricServiceJobsExpired[] =
    "service.jobs.expired";
inline constexpr const char kMetricServiceJobsReplayed[] =
    "service.jobs.replayed";
inline constexpr const char kMetricServiceConnections[] =
    "service.connections";
inline constexpr const char kMetricServiceFramesRejected[] =
    "service.frames.rejected";
inline constexpr const char kMetricServiceRecvStalls[] =
    "service.recv.stalls";
inline constexpr const char kMetricServiceSendStalls[] =
    "service.send.stalls";
inline constexpr const char kMetricServiceConnsReaped[] =
    "service.conns.reaped";
inline constexpr const char kMetricServiceConnsRejected[] =
    "service.conns.rejected";
inline constexpr const char kMetricServiceTenantSheds[] =
    "service.tenants.shed";
inline constexpr const char kMetricServiceSubmitDedupHits[] =
    "service.submit.dedup_hits";
inline constexpr const char kMetricServiceResultRetries[] =
    "service.result.retries";
inline constexpr const char kMetricServiceExecutorCrashes[] =
    "service.executor.crashes";
inline constexpr const char kMetricServiceClientRetries[] =
    "service.client.retries";

// ---- Metrics: gauges ---------------------------------------------

inline constexpr const char kMetricBlocks[] = "quest.blocks";
inline constexpr const char kMetricSamples[] = "quest.samples";
inline constexpr const char kMetricServiceQueueDepth[] =
    "service.queue.depth";
inline constexpr const char kMetricServiceConnsActive[] =
    "service.conns.active";

// ---- Metrics: histograms -----------------------------------------

inline constexpr const char kMetricLbfgsIterationsPerCall[] =
    "lbfgs.iterations_per_call";
inline constexpr const char kMetricServiceJobQueueMs[] =
    "service.job.queue_ms";
inline constexpr const char kMetricServiceJobRunMs[] =
    "service.job.run_ms";

// ---- Dynamic metric prefixes -------------------------------------

// Per-site fired-fault counters: "fault." + <fault site>.
inline constexpr const char kMetricFaultPrefix[] = "fault.";

// ---- Fault sites (QUEST_FAULT_POINT) -----------------------------

inline constexpr const char kFaultCacheLoadRead[] = "cache.load.read";
inline constexpr const char kFaultCacheStoreEnospc[] =
    "cache.store.enospc";
inline constexpr const char kFaultCacheStoreShortWrite[] =
    "cache.store.short_write";
inline constexpr const char kFaultCacheStoreRename[] =
    "cache.store.rename";
inline constexpr const char kFaultJournalAppend[] = "journal.append";
inline constexpr const char kFaultSynthBlockDiverge[] =
    "synth.block.diverge";
inline constexpr const char kFaultSynthBlockTimeout[] =
    "synth.block.timeout";
inline constexpr const char kFaultServiceAccept[] = "service.accept";
inline constexpr const char kFaultServiceWrite[] = "service.write";
inline constexpr const char kFaultServiceRecvStall[] =
    "service.recv.stall";
inline constexpr const char kFaultServiceConnDrop[] =
    "service.conn.drop";
inline constexpr const char kFaultServiceExecutorCrash[] =
    "service.executor.crash";

// ---- Process exit codes (QuestError taxonomy) --------------------

// 0 (success), 1 (legacy fatal()) and 2 (CLI usage error) are
// reserved and not part of the taxonomy.
inline constexpr int kExitInvalidInput = 10;
inline constexpr int kExitIo = 11;
inline constexpr int kExitTimeout = 12;
inline constexpr int kExitCancelled = 13;
inline constexpr int kExitDiverged = 14;
inline constexpr int kExitResource = 15;
inline constexpr int kExitInternal = 70;

} // namespace quest::names

#endif // QUEST_UTIL_NAMES_HH
