/**
 * @file
 * Fixed-size thread pool used to synthesize circuit blocks in
 * parallel (the paper runs block synthesis on up to ten nodes; we use
 * threads on one node).
 */

#ifndef QUEST_UTIL_THREAD_POOL_HH
#define QUEST_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace quest {

/** Simple work-queue thread pool. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (0 means hardware concurrency). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding work, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task and get a future for its result. */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using Result = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex);
            jobs.push([task]() { (*task)(); });
        }
        wakeup.notify_one();
        return result;
    }

    /**
     * Run @p fn(i) for i in [0, count) across the pool and wait for
     * all of them — even when some throw, so @p fn is never invoked
     * after the call returns. The lowest failing index's exception
     * is rethrown once every task has finished.
     */
    void parallelFor(size_t count, const std::function<void(size_t)> &fn);

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::queue<std::function<void()>> jobs;
    std::mutex mutex;
    std::condition_variable wakeup;
    bool stopping = false;
};

} // namespace quest

#endif // QUEST_UTIL_THREAD_POOL_HH
