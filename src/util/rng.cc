#include "util/rng.hh"

#include <cmath>
#include <numbers>

#include "util/logging.hh"

namespace quest {

Rng::Rng(uint64_t seed, uint64_t stream)
    : state(0), inc((stream << 1u) | 1u)
{
    // Standard PCG32 seeding sequence.
    (*this)();
    state += seed;
    (*this)();
}

Rng::result_type
Rng::operator()()
{
    uint64_t old = state;
    state = old * 6364136223846793005ULL + inc;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

double
Rng::uniform()
{
    // 53-bit mantissa from two draws for full double resolution.
    uint64_t hi = (*this)() >> 5;   // 27 bits
    uint64_t lo = (*this)() >> 6;   // 26 bits
    return ((hi << 26) | lo) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint32_t
Rng::uniformInt(uint32_t n)
{
    QUEST_ASSERT(n > 0, "uniformInt needs n > 0");
    // Lemire-style rejection to remove modulo bias.
    uint32_t threshold = (-n) % n;
    for (;;) {
        uint32_t r = (*this)();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::normal()
{
    if (haveSpare) {
        haveSpare = false;
        return spare;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    double ang = 2.0 * std::numbers::pi * u2;
    spare = mag * std::sin(ang);
    haveSpare = true;
    return mag * std::cos(ang);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

size_t
Rng::discrete(const std::vector<double> &weights)
{
    QUEST_ASSERT(!weights.empty(), "discrete needs weights");
    double total = 0.0;
    for (double w : weights) {
        QUEST_ASSERT(w >= 0.0, "negative weight");
        total += w;
    }
    QUEST_ASSERT(total > 0.0, "all-zero weights");
    double r = uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::split()
{
    uint64_t seed = (static_cast<uint64_t>((*this)()) << 32) | (*this)();
    uint64_t stream = (static_cast<uint64_t>((*this)()) << 32) | (*this)();
    return Rng(seed, stream);
}

std::vector<Rng>
Rng::splitN(size_t n)
{
    std::vector<Rng> streams;
    streams.reserve(n);
    for (size_t i = 0; i < n; ++i)
        streams.push_back(split());
    return streams;
}

} // namespace quest
