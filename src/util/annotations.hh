/**
 * @file
 * Intent annotations read by `quest_analyze` (src/analysis).
 *
 * The static analyzer enforces project invariants — no wall-clock or
 * environment reads on result-affecting paths, budget polls inside
 * every kernel-calling loop, no swallowed exceptions — but some code
 * is *deliberately* outside an invariant: a GC pass whose traversal
 * order cannot affect synthesis results, a fixed-trip-count loop, a
 * thread-pool catch-all that parks the exception in a future. Such
 * code must say so, in the code, with one of the macros below; the
 * analyzer treats the annotation as a declaration of intent and
 * skips the corresponding rule for the annotated region.
 *
 * All macros compile to nothing. Each takes a short string reason
 * that is part of the source record (and is required — an
 * unexplained annotation is worse than a finding).
 *
 *   QUEST_RESULT_NEUTRAL(reason)
 *     Statement. Declares the enclosing brace scope result-neutral:
 *     determinism rules (clock/env reads, unordered containers,
 *     filesystem-order dependence) do not apply from the annotation
 *     to the end of the scope.
 *
 *   QUEST_BOUNDED_LOOP(reason)
 *     Statement, placed inside a loop body. Declares the enclosing
 *     loop exempt from the cancellation-poll rule (e.g. its trip
 *     count is a small compile-time constant).
 *
 *   QUEST_INTENTIONAL_SWALLOW(reason)
 *     Statement, placed inside a `catch (...)` body that neither
 *     rethrows nor is itself a bug: the handler forwards the
 *     exception somewhere else (a future, a degradation path).
 *
 * One-off suppressions use the comment form instead, which covers
 * its own line and the next one and accepts a comma-separated rule
 * list (see docs/ANALYSIS.md):
 *
 *   // QUEST_ANALYZE_OK(rule.id): reason
 *   // QUEST_ANALYZE_OK(rule.one, rule.two): reason
 */

#ifndef QUEST_UTIL_ANNOTATIONS_HH
#define QUEST_UTIL_ANNOTATIONS_HH

#define QUEST_RESULT_NEUTRAL(reason) ((void)0)
#define QUEST_BOUNDED_LOOP(reason) ((void)0)
#define QUEST_INTENTIONAL_SWALLOW(reason) ((void)0)

#endif // QUEST_UTIL_ANNOTATIONS_HH
