/**
 * @file
 * SHA-256 (FIPS 180-4): the content-addressing digest for the
 * synthesis cache. A cache key must make accidental collisions
 * impossible in practice — two different (unitary, config) inputs
 * mapping to one entry would silently return the wrong circuits — so
 * a cryptographic digest is used rather than a fast non-crypto hash
 * (fnv1a64 covers the cheap-checksum role).
 *
 * Self-contained incremental implementation, no external
 * dependencies; validated against the FIPS test vectors in
 * util_serialize_test.cc.
 */

#ifndef QUEST_UTIL_SHA256_HH
#define QUEST_UTIL_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace quest {

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    static constexpr size_t kDigestSize = 32;

    Sha256();

    /** Absorb @p n bytes. May be called repeatedly. */
    void update(const void *data, size_t n);
    void update(std::string_view s) { update(s.data(), s.size()); }

    /** Finalize and return the digest. The hasher must not be
     *  updated afterwards (reconstruct for a new message). */
    std::array<uint8_t, kDigestSize> digest();

    /** One-shot digest of a byte range. */
    static std::array<uint8_t, kDigestSize> hash(const void *data,
                                                 size_t n);

    /** One-shot lower-case hex digest (64 characters). */
    static std::string hexDigest(const void *data, size_t n);
    static std::string
    hexDigest(std::string_view s)
    {
        return hexDigest(s.data(), s.size());
    }

  private:
    void compress(const uint8_t block[64]);

    uint32_t state[8];
    uint64_t totalBytes = 0;
    uint8_t pending[64];
    size_t pendingLen = 0;
};

} // namespace quest

#endif // QUEST_UTIL_SHA256_HH
