#include "util/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace quest {

namespace {

LogLevel globalLevel = LogLevel::Warn;
std::mutex logMutex;

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail {

void
emit(LogLevel level, const std::string &tag, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(globalLevel))
        return;
    std::lock_guard<std::mutex> lock(logMutex);
    std::cerr << "[" << tag << "] " << msg << "\n";
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex);
        std::cerr << "[panic] " << file << ":" << line << ": " << msg
                  << std::endl;
    }
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex);
        std::cerr << "[fatal] " << msg << std::endl;
    }
    std::exit(1);
}

} // namespace detail

} // namespace quest
