#include "util/sha256.hh"

#include <bit>
#include <cstring>

#include "util/serialize.hh"

namespace quest {

namespace {

constexpr uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t
bigSigma0(uint32_t x)
{
    return std::rotr(x, 2) ^ std::rotr(x, 13) ^ std::rotr(x, 22);
}

inline uint32_t
bigSigma1(uint32_t x)
{
    return std::rotr(x, 6) ^ std::rotr(x, 11) ^ std::rotr(x, 25);
}

inline uint32_t
smallSigma0(uint32_t x)
{
    return std::rotr(x, 7) ^ std::rotr(x, 18) ^ (x >> 3);
}

inline uint32_t
smallSigma1(uint32_t x)
{
    return std::rotr(x, 17) ^ std::rotr(x, 19) ^ (x >> 10);
}

} // namespace

Sha256::Sha256()
    : state{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
            0x9b05688c, 0x1f83d9ab, 0x5be0cd19}
{}

void
Sha256::compress(const uint8_t block[64])
{
    uint32_t w[64];
    for (int t = 0; t < 16; ++t) {
        w[t] = (static_cast<uint32_t>(block[4 * t]) << 24) |
               (static_cast<uint32_t>(block[4 * t + 1]) << 16) |
               (static_cast<uint32_t>(block[4 * t + 2]) << 8) |
               static_cast<uint32_t>(block[4 * t + 3]);
    }
    for (int t = 16; t < 64; ++t) {
        w[t] = smallSigma1(w[t - 2]) + w[t - 7] +
               smallSigma0(w[t - 15]) + w[t - 16];
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int t = 0; t < 64; ++t) {
        uint32_t t1 = h + bigSigma1(e) + ((e & f) ^ (~e & g)) +
                      kRoundConstants[t] + w[t];
        uint32_t t2 =
            bigSigma0(a) + ((a & b) ^ (a & c) ^ (b & c));
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

void
Sha256::update(const void *data, size_t n)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    totalBytes += n;

    if (pendingLen > 0) {
        size_t take = std::min(n, sizeof(pending) - pendingLen);
        std::memcpy(pending + pendingLen, p, take);
        pendingLen += take;
        p += take;
        n -= take;
        if (pendingLen == sizeof(pending)) {
            compress(pending);
            pendingLen = 0;
        }
    }
    while (n >= sizeof(pending)) {
        compress(p);
        p += sizeof(pending);
        n -= sizeof(pending);
    }
    if (n > 0) {
        std::memcpy(pending + pendingLen, p, n);
        pendingLen += n;
    }
}

std::array<uint8_t, Sha256::kDigestSize>
Sha256::digest()
{
    const uint64_t bit_length = totalBytes * 8;

    // Pad: 0x80, zeros to 56 mod 64, then the big-endian bit length.
    uint8_t pad[72];
    size_t pad_len = 0;
    pad[pad_len++] = 0x80;
    while ((pendingLen + pad_len) % 64 != 56)
        pad[pad_len++] = 0;
    for (int i = 7; i >= 0; --i)
        pad[pad_len++] = static_cast<uint8_t>(bit_length >> (8 * i));
    update(pad, pad_len);
    totalBytes -= pad_len;  // padding is not message content

    std::array<uint8_t, kDigestSize> out;
    for (int i = 0; i < 8; ++i) {
        out[4 * i] = static_cast<uint8_t>(state[i] >> 24);
        out[4 * i + 1] = static_cast<uint8_t>(state[i] >> 16);
        out[4 * i + 2] = static_cast<uint8_t>(state[i] >> 8);
        out[4 * i + 3] = static_cast<uint8_t>(state[i]);
    }
    return out;
}

std::array<uint8_t, Sha256::kDigestSize>
Sha256::hash(const void *data, size_t n)
{
    Sha256 h;
    h.update(data, n);
    return h.digest();
}

std::string
Sha256::hexDigest(const void *data, size_t n)
{
    auto d = hash(data, n);
    return toHex(d.data(), d.size());
}

} // namespace quest
