/**
 * @file
 * Aligned-column table and CSV writers for benchmark output.
 *
 * Every bench binary prints the rows/series of the paper figure it
 * regenerates through this writer so output formats stay uniform.
 */

#ifndef QUEST_UTIL_TABLE_HH
#define QUEST_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace quest {

/**
 * Accumulates rows of string cells and renders them either as an
 * aligned text table or as CSV.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with the given precision. */
    static std::string num(double value, int precision = 4);

    /** Convenience: format a percentage ("12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render as an aligned monospace table. */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

    /** Number of data rows. */
    size_t rows() const { return data.size(); }

    /** Column headers, in order. */
    const std::vector<std::string> &headerRow() const { return headers; }

    /** All data rows, in insertion order. */
    const std::vector<std::vector<std::string>> &rowData() const
    {
        return data;
    }

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> data;
};

} // namespace quest

#endif // QUEST_UTIL_TABLE_HH
