#include "util/thread_pool.hh"

#include <algorithm>

namespace quest {

ThreadPool::ThreadPool(unsigned threads)
{
    unsigned n = threads;
    if (n == 0) {
        n = std::max(1u, std::thread::hardware_concurrency());
    }
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    wakeup.notify_all();
    for (auto &worker : workers)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex);
            wakeup.wait(lock, [this]() { return stopping || !jobs.empty(); });
            if (stopping && jobs.empty())
                return;
            job = std::move(jobs.front());
            jobs.pop();
        }
        job();
    }
}

void
ThreadPool::parallelFor(size_t count, const std::function<void(size_t)> &fn)
{
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (size_t i = 0; i < count; ++i)
        futures.push_back(submit([&fn, i]() { fn(i); }));

    // Wait for every task before propagating any exception: the
    // queued tasks capture &fn, so returning (or throwing) while
    // some are still pending would leave workers dereferencing a
    // dead stack frame.
    std::exception_ptr first;
    for (auto &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace quest
