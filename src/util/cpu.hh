/**
 * @file
 * One-time host CPU feature probe and the QUEST_SIMD runtime
 * override, backing the batched-kernel ISA dispatch
 * (synth/batch/batch_kernels.hh).
 *
 * Both probes run exactly once per process and cache their answer:
 * the CPUID read and the getenv() call are process-invariant, so the
 * dispatch they feed is deterministic for the lifetime of the run.
 * This file is on the static-analysis determinism allowlist for that
 * reason (docs/ANALYSIS.md) — keep any further environment reads
 * here, not in the synthesis layers.
 */

#ifndef QUEST_UTIL_CPU_HH
#define QUEST_UTIL_CPU_HH

namespace quest::util {

/** Instruction-set extensions the host CPU advertises. */
struct CpuFeatures
{
    bool avx2 = false;
    bool avx512f = false;
};

/** The host's features, probed once and cached. On non-x86 targets
 *  (or compilers without __builtin_cpu_supports) everything is
 *  false. */
const CpuFeatures &cpuFeatures();

/**
 * Parsed value of the QUEST_SIMD environment variable, read once.
 *
 *   off     — disable the batched engine entirely (classic scalar
 *             instantiation path only)
 *   scalar  — batched engine with the portable scalar-lane kernels
 *   avx2    — cap the dispatch at AVX2
 *   avx512  — request AVX-512 (falls back if the host lacks it)
 *
 * Unset or unrecognized values mean None: dispatch on cpuFeatures().
 */
enum class SimdOverride
{
    None,
    Off,
    Scalar,
    Avx2,
    Avx512,
};

/** The cached QUEST_SIMD override (None when unset/unrecognized). */
SimdOverride simdOverride();

} // namespace quest::util

#endif // QUEST_UTIL_CPU_HH
