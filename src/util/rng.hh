/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A small PCG32 generator wrapped with the sampling helpers the rest
 * of the library needs. Every stochastic component (noisy simulation,
 * synthesis multistarts, dual annealing) takes an explicit Rng so runs
 * are reproducible from a single seed.
 */

#ifndef QUEST_UTIL_RNG_HH
#define QUEST_UTIL_RNG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace quest {

/**
 * PCG32 pseudo-random generator with distribution helpers.
 *
 * Satisfies UniformRandomBitGenerator so it can also be used with
 * standard-library distributions if needed.
 */
class Rng
{
  public:
    using result_type = uint32_t;

    /** Construct from a seed and an optional stream selector. */
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return UINT32_MAX; }

    /** Next raw 32-bit output. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n), n > 0. */
    uint32_t uniformInt(uint32_t n);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Sample an index from an unnormalized non-negative weight
     * vector. Returns weights.size() - 1 if rounding exhausts the
     * total.
     */
    size_t discrete(const std::vector<double> &weights);

    /** Split off an independent generator (for worker threads). */
    Rng split();

    /**
     * Split @p n independent child streams in one deterministic
     * serial pass — the scheme behind schedule-independent parallel
     * work: the children are drawn before any task runs, so stream i
     * is the same no matter which thread later consumes it.
     */
    std::vector<Rng> splitN(size_t n);

  private:
    uint64_t state;
    uint64_t inc;
    bool haveSpare = false;
    double spare = 0.0;
};

} // namespace quest

#endif // QUEST_UTIL_RNG_HH
