#include "util/cpu.hh"

#include <cstdlib>
#include <string>

namespace quest::util {

namespace {

CpuFeatures
probeCpu()
{
    CpuFeatures f;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
    f.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
    return f;
}

SimdOverride
parseOverride()
{
    const char *raw = std::getenv("QUEST_SIMD");
    if (!raw)
        return SimdOverride::None;
    std::string v(raw);
    for (char &c : v)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (v == "off" || v == "0" || v == "none")
        return SimdOverride::Off;
    if (v == "scalar")
        return SimdOverride::Scalar;
    if (v == "avx2")
        return SimdOverride::Avx2;
    if (v == "avx512" || v == "avx512f")
        return SimdOverride::Avx512;
    return SimdOverride::None;
}

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures features = probeCpu();
    return features;
}

SimdOverride
simdOverride()
{
    static const SimdOverride value = parseOverride();
    return value;
}

} // namespace quest::util
