/**
 * @file
 * Wall-clock stopwatch used for the Fig. 12 stage-timing breakdown.
 */

#ifndef QUEST_UTIL_TIMER_HH
#define QUEST_UTIL_TIMER_HH

#include <chrono>

namespace quest {

/** Simple monotonic stopwatch accumulating elapsed seconds. */
class Stopwatch
{
  public:
    Stopwatch() : running(false), accumulated(0.0) {}

    /** Start (or restart) timing; keeps any accumulated time. */
    void
    start()
    {
        if (!running) {
            begin = Clock::now();
            running = true;
        }
    }

    /** Stop timing and fold the elapsed interval into the total. */
    void
    stop()
    {
        if (running) {
            accumulated += Seconds(Clock::now() - begin).count();
            running = false;
        }
    }

    /** Discard all accumulated time. */
    void
    reset()
    {
        running = false;
        accumulated = 0.0;
    }

    /** Total elapsed seconds, including a running interval. */
    double
    seconds() const
    {
        double total = accumulated;
        if (running)
            total += Seconds(Clock::now() - begin).count();
        return total;
    }

  private:
    using Clock = std::chrono::steady_clock;
    using Seconds = std::chrono::duration<double>;

    bool running;
    double accumulated;
    Clock::time_point begin;
};

/** RAII guard that accumulates its lifetime into a Stopwatch. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Stopwatch &watch) : watch(watch) { watch.start(); }
    ~ScopedTimer() { watch.stop(); }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Stopwatch &watch;
};

} // namespace quest

#endif // QUEST_UTIL_TIMER_HH
