/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (aborts), fatal() for user-caused unrecoverable errors
 * (clean exit), warn()/inform() for non-fatal diagnostics.
 */

#ifndef QUEST_UTIL_LOGGING_HH
#define QUEST_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace quest {

/** Verbosity levels for the global logger. */
enum class LogLevel { Silent, Error, Warn, Info, Debug };

/** Set the global log level; messages below it are suppressed. */
void setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

namespace detail {

/** Emit a formatted log line to stderr if @p level is enabled. */
void emit(LogLevel level, const std::string &tag, const std::string &msg);

/** Abort with a panic message; never returns. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit with a fatal user-error message; never returns. */
[[noreturn]] void fatalImpl(const std::string &msg);

/** Concatenate stream-formattable arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Informational message for normal operation. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit(LogLevel::Info, "info",
                 detail::concat(std::forward<Args>(args)...));
}

/** Debug-level trace message. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::emit(LogLevel::Debug, "debug",
                 detail::concat(std::forward<Args>(args)...));
}

/** Warn about suspicious but non-fatal conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit(LogLevel::Warn, "warn",
                 detail::concat(std::forward<Args>(args)...));
}

/** User-caused unrecoverable error; exits the process. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Internal invariant violation; aborts.
 *
 * Use for conditions that indicate a bug in this library rather than
 * bad user input.
 */
#define QUEST_PANIC(...) \
    ::quest::detail::panicImpl(__FILE__, __LINE__, \
                               ::quest::detail::concat(__VA_ARGS__))

/** Assert an invariant with a formatted message. */
#define QUEST_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            QUEST_PANIC("assertion failed: " #cond " — ", __VA_ARGS__); \
        } \
    } while (false)

} // namespace quest

#endif // QUEST_UTIL_LOGGING_HH
