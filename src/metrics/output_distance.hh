/**
 * @file
 * Output-distance metrics between measurement distributions (Sec. 2):
 * Total Variation Distance and Jensen-Shannon Divergence.
 */

#ifndef QUEST_METRICS_OUTPUT_DISTANCE_HH
#define QUEST_METRICS_OUTPUT_DISTANCE_HH

#include "sim/distribution.hh"

namespace quest {

/** Total Variation Distance: (1/2) sum |p(k) - q(k)|, in [0, 1]. */
double tvd(const Distribution &p, const Distribution &q);

/**
 * Kullback-Leibler divergence sum p log2(p / q) with the 0 log 0 = 0
 * convention. Infinite when q(k) = 0 < p(k).
 */
double klDivergence(const Distribution &p, const Distribution &q);

/**
 * Jensen-Shannon Divergence, the paper's square-root form
 * sqrt((D(p||m) + D(q||m)) / 2) with m the pointwise mean; log base 2
 * so the value lies in [0, 1].
 */
double jsd(const Distribution &p, const Distribution &q);

/**
 * Bound-based output-distance estimator for circuits too wide to
 * simulate: maps a Theorem-1 HS process-distance bound (>= 0) to a
 * heuristic output-TVD proxy in [0, 1]. This is the paper's
 * empirical observation (Figs. 7/9: output TVD tracks well below the
 * process-distance bound), *not* a certified bound — the rigorous
 * worst-case conversion carries a sqrt(2^n) factor that is vacuous
 * at large n. O(1); the only output-distance path available in
 * SelectionMode::BlockBound, where nothing of src/sim may run.
 */
double outputDistanceEstimate(double process_distance_bound);

} // namespace quest

#endif // QUEST_METRICS_OUTPUT_DISTANCE_HH
