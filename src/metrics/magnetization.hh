/**
 * @file
 * Spin-chain observables for the TFIM / Heisenberg / XY case study
 * (Figs. 1, 13, 14): average and staggered magnetization computed
 * from a measurement distribution.
 */

#ifndef QUEST_METRICS_MAGNETIZATION_HH
#define QUEST_METRICS_MAGNETIZATION_HH

#include "sim/distribution.hh"

namespace quest {

/** Expectation of Z on wire q: sum_k p(k) * (+1 if bit 0 else -1). */
double zExpectation(const Distribution &d, int q);

/** Average magnetization (1/n) sum_q <Z_q>, in [-1, 1]. */
double averageMagnetization(const Distribution &d);

/** Staggered magnetization (1/n) sum_q (-1)^q <Z_q>. */
double staggeredMagnetization(const Distribution &d);

} // namespace quest

#endif // QUEST_METRICS_MAGNETIZATION_HH
