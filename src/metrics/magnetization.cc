#include "metrics/magnetization.hh"

#include "util/logging.hh"

namespace quest {

double
zExpectation(const Distribution &d, int q)
{
    const int n = d.numQubits();
    QUEST_ASSERT(q >= 0 && q < n, "wire out of range");
    const size_t bit = size_t{1} << (n - 1 - q);
    double sum = 0.0;
    for (size_t k = 0; k < d.size(); ++k)
        sum += (k & bit) ? -d[k] : d[k];
    return sum;
}

double
averageMagnetization(const Distribution &d)
{
    const int n = d.numQubits();
    double sum = 0.0;
    for (int q = 0; q < n; ++q)
        sum += zExpectation(d, q);
    return sum / n;
}

double
staggeredMagnetization(const Distribution &d)
{
    const int n = d.numQubits();
    double sum = 0.0;
    for (int q = 0; q < n; ++q) {
        double z = zExpectation(d, q);
        sum += (q % 2 == 0) ? z : -z;
    }
    return sum / n;
}

} // namespace quest
