#include "metrics/output_distance.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace quest {

double
tvd(const Distribution &p, const Distribution &q)
{
    QUEST_ASSERT(p.size() == q.size(), "distribution size mismatch");
    double sum = 0.0;
    for (size_t k = 0; k < p.size(); ++k)
        sum += std::abs(p[k] - q[k]);
    return 0.5 * sum;
}

double
klDivergence(const Distribution &p, const Distribution &q)
{
    QUEST_ASSERT(p.size() == q.size(), "distribution size mismatch");
    double sum = 0.0;
    for (size_t k = 0; k < p.size(); ++k) {
        if (p[k] <= 0.0)
            continue;
        if (q[k] <= 0.0)
            return std::numeric_limits<double>::infinity();
        sum += p[k] * std::log2(p[k] / q[k]);
    }
    return sum;
}

double
jsd(const Distribution &p, const Distribution &q)
{
    QUEST_ASSERT(p.size() == q.size(), "distribution size mismatch");
    std::vector<double> mid(p.size());
    for (size_t k = 0; k < p.size(); ++k)
        mid[k] = 0.5 * (p[k] + q[k]);
    Distribution m(std::move(mid));
    double value = 0.5 * (klDivergence(p, m) + klDivergence(q, m));
    // Numerical floor: the divergence is mathematically >= 0.
    return std::sqrt(std::max(0.0, value));
}

double
outputDistanceEstimate(double process_distance_bound)
{
    QUEST_ASSERT(process_distance_bound >= 0.0,
                 "negative process-distance bound");
    // TVD lives in [0, 1]; the HS process distance in [0, 2]. The
    // identity map, clamped, is the paper's empirical proxy: observed
    // output TVD stays at or below the process-distance bound across
    // the Fig. 7/9 workloads.
    return std::min(process_distance_bound, 1.0);
}

} // namespace quest
