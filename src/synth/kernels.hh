/**
 * @file
 * In-place small-dimension kernels behind the instantiation hot path.
 *
 * Numerical instantiation spends essentially all of its time left- and
 * right-multiplying a block-sized matrix by embedded 2x2 gates and
 * contracting prefix/suffix products down to a 2x2 trace. These
 * kernels operate on flat row-major storage with restrict-qualified
 * pointers and are compiled once per block dimension: dims 2, 4, 8
 * and 16 (blocks are at most four qubits wide) get fully specialized,
 * unrolled variants via constant propagation, wider dims fall back to
 * generic runtime-dimension loops. Dispatch happens once per cost
 * object through @ref kernelsForDim, never per evaluation.
 *
 * Complex arithmetic is spelled out on real/imaginary parts (see
 * @ref cmul) so the compiler emits straight mul-add sequences it can
 * auto-vectorize instead of the NaN-recovering __muldc3 libcall.
 */

#ifndef QUEST_SYNTH_KERNELS_HH
#define QUEST_SYNTH_KERNELS_HH

#include <cstddef>

#include "linalg/matrix.hh"

#if defined(_MSC_VER)
#define QUEST_RESTRICT __restrict
#else
#define QUEST_RESTRICT __restrict__
#endif

namespace quest::kern {

/** Complex multiply without the NaN-fixup branch of operator*. */
inline Complex
cmul(const Complex &a, const Complex &b)
{
    return Complex(a.real() * b.real() - a.imag() * b.imag(),
                   a.real() * b.imag() + a.imag() * b.real());
}

/**
 * One dimension's kernel dispatch table.
 *
 * Conventions shared by every entry: @p m / @p p / @p bt point at flat
 * row-major dim x dim storage; @p g is a row-major 2x2 gate
 * {g00, g01, g10, g11}; @p bit is the basis-index bit of the target
 * wire (bit = 1 << (n - 1 - q)); @p bc / @p bt_bit are the CX control
 * and target bits. The leading @p dim argument is the runtime
 * dimension — specialized tables ignore it in favor of their
 * compile-time constant.
 */
struct KernelSet
{
    /** m <- embed(g, wire) * m (row mixing). */
    void (*leftU3)(size_t dim, Complex *m, const Complex *g, size_t bit);

    /** m <- m * embed(g, wire) (column mixing). */
    void (*rightU3)(size_t dim, Complex *m, const Complex *g, size_t bit);

    /** m <- embed(CX, control, target) * m (row swaps). */
    void (*leftCx)(size_t dim, Complex *m, size_t bc, size_t bt_bit);

    /** m <- m * embed(CX, control, target) (column swaps). */
    void (*rightCx)(size_t dim, Complex *m, size_t bc, size_t bt_bit);

    /**
     * Contract W = P * B down to the wire's 2x2: with bt the
     * TRANSPOSE of B (so B's columns are bt's contiguous rows),
     * w2[a * 2 + c] = sum over rest of
     * <P row (rest | a*bit), bt row (rest | c*bit)>, which satisfies
     * Tr(P * B * embed(d, wire)) = sum_{a,c} w2[a*2+c] * d(c, a).
     */
    void (*reduceTraceT)(size_t dim, const Complex *p, const Complex *bt,
                         size_t bit, Complex *w2);
};

/**
 * The kernel table for a dim x dim block (dim a power of two >= 2).
 * Returns the unrolled specialization for dim in {2, 4, 8, 16} and
 * the generic-loop table beyond. Call once at cost-object
 * construction and reuse the reference.
 */
const KernelSet &kernelsForDim(size_t dim);

} // namespace quest::kern

#endif // QUEST_SYNTH_KERNELS_HH
