/**
 * @file
 * Multi-start instantiation: optimize an ansatz's angles against a
 * target unitary from several starting points and keep the best.
 *
 * Multistarts are independent, so they can run in parallel on a
 * cooperative ThreadPool (InstantiaterOptions::pool). Determinism is
 * preserved by construction: every start gets its own RNG stream,
 * split serially before any task runs, and the best-of reduction
 * replays the serial order's selection (including the first-to-goal
 * early stop), so the result is bit-identical at any thread count.
 */

#ifndef QUEST_SYNTH_INSTANTIATER_HH
#define QUEST_SYNTH_INSTANTIATER_HH

#include <cmath>
#include <optional>
#include <vector>

#include "linalg/matrix.hh"
#include "resilience/budget.hh"
#include "synth/ansatz.hh"
#include "synth/lbfgs.hh"
#include "util/rng.hh"

namespace quest {

class ThreadPool;

/**
 * Which cost/optimizer engine instantiate() uses.
 *
 * Auto picks the batched SIMD engine (synth/batch/) whenever it is
 * runtime-enabled and there are at least two multistarts; Scalar
 * forces the classic one-start-at-a-time path. The two produce
 * bit-identical results — Scalar exists as the determinism-test
 * reference and for diagnosing the batched engine, not because the
 * outputs differ.
 */
enum class InstantiaterEngine
{
    Auto,
    Scalar,
};

/** Instantiation settings. */
struct InstantiaterOptions
{
    int multistarts = 4;        //!< random restarts per call
    LbfgsOptions lbfgs;
    double goal = 0.0;          //!< stop restarts early below this cost

    /** Engine selection (see InstantiaterEngine). */
    InstantiaterEngine engine = InstantiaterEngine::Auto;

    /**
     * Worker pool for parallel multistarts (not owned; nullptr runs
     * them serially). The pool's parallelFor is cooperative, so the
     * synthesizer can hand its own shared pool down here even while
     * calling instantiate() from inside that pool's tasks. Results
     * are bit-identical to the serial order regardless of the thread
     * count.
     */
    ThreadPool *pool = nullptr;

    /**
     * Deadline/cancellation for the whole call, merged into the
     * per-start L-BFGS budgets and checked before each start begins.
     * A fired budget trades determinism for liveness: which starts
     * completed depends on timing, so budget-truncated results must
     * never be cached (LeapSynthesizer enforces this).
     */
    resilience::Budget budget;
};

/** Best parameters found for an ansatz against a target. */
struct InstantiationResult
{
    std::vector<double> params;
    double distance = 1.0;      //!< HS distance at the optimum

    /** Non-finite costs everywhere, or the budget fired before any
     *  start finished: params are zeros, distance is +infinity. */
    bool diverged() const { return !std::isfinite(distance); }
};

/**
 * Optimize @p ansatz against @p target. If @p warm_start is provided
 * it seeds the first restart (new trailing parameters, if any, start
 * at zero); remaining restarts are uniform in [-pi, pi].
 */
InstantiationResult
instantiate(const Matrix &target, const Ansatz &ansatz, Rng &rng,
            const InstantiaterOptions &options = {},
            const std::optional<std::vector<double>> &warm_start =
                std::nullopt);

} // namespace quest

#endif // QUEST_SYNTH_INSTANTIATER_HH
