/**
 * @file
 * Multi-start instantiation: optimize an ansatz's angles against a
 * target unitary from several starting points and keep the best.
 */

#ifndef QUEST_SYNTH_INSTANTIATER_HH
#define QUEST_SYNTH_INSTANTIATER_HH

#include <optional>
#include <vector>

#include "linalg/matrix.hh"
#include "synth/ansatz.hh"
#include "synth/lbfgs.hh"
#include "util/rng.hh"

namespace quest {

/** Instantiation settings. */
struct InstantiaterOptions
{
    int multistarts = 4;        //!< random restarts per call
    LbfgsOptions lbfgs;
    double goal = 0.0;          //!< stop restarts early below this cost
};

/** Best parameters found for an ansatz against a target. */
struct InstantiationResult
{
    std::vector<double> params;
    double distance = 1.0;      //!< HS distance at the optimum
};

/**
 * Optimize @p ansatz against @p target. If @p warm_start is provided
 * it seeds the first restart (new trailing parameters, if any, start
 * at zero); remaining restarts are uniform in [-pi, pi].
 */
InstantiationResult
instantiate(const Matrix &target, const Ansatz &ansatz, Rng &rng,
            const InstantiaterOptions &options = {},
            const std::optional<std::vector<double>> &warm_start =
                std::nullopt);

} // namespace quest

#endif // QUEST_SYNTH_INSTANTIATER_HH
