#include "synth/batch/batch_instantiate.hh"

#include <array>
#include <numbers>

#include "obs/metrics.hh"
#include "synth/batch/batch_kernels.hh"
#include "synth/batch/batched_hs_cost.hh"
#include "synth/batch/lbfgs_machine.hh"
#include "synth/hs_cost.hh"
#include "util/annotations.hh"
#include "util/logging.hh"
#include "util/names.hh"

namespace quest::synth {

namespace {

/** Which ISA served a batched call (one counter per table). */
obs::Counter &
dispatchCounter(kern::batch::SimdIsa isa)
{
    static auto &avx512 = obs::MetricsRegistry::global().counter(
        names::kMetricSynthSimdDispatchAvx512);
    static auto &avx2 = obs::MetricsRegistry::global().counter(
        names::kMetricSynthSimdDispatchAvx2);
    static auto &scalar = obs::MetricsRegistry::global().counter(
        names::kMetricSynthSimdDispatchScalar);
    switch (isa) {
      case kern::batch::SimdIsa::Avx512:
        return avx512;
      case kern::batch::SimdIsa::Avx2:
        return avx2;
      case kern::batch::SimdIsa::Scalar:
        break;
    }
    return scalar;
}

/** Retire-time flush of one lane run's lbfgs.* metrics, mirroring
 *  lbfgs.cc's LbfgsTally. */
void
tallyLaneRun(int evaluations, int iterations)
{
    static auto &calls =
        obs::MetricsRegistry::global().counter(names::kMetricLbfgsCalls);
    static auto &iters =
        obs::MetricsRegistry::global().counter(names::kMetricLbfgsIterations);
    static auto &evals = obs::MetricsRegistry::global().counter(
        names::kMetricLbfgsEvaluations);
    static auto &iter_hist = obs::MetricsRegistry::global().histogram(
        names::kMetricLbfgsIterationsPerCall);
    calls.increment();
    evals.add(static_cast<uint64_t>(evaluations));
    iters.add(static_cast<uint64_t>(iterations));
    iter_hist.record(static_cast<uint64_t>(iterations));
}

} // namespace

void
runBatchedMultistart(const Matrix &target, const Ansatz &ansatz,
                     std::vector<Rng> &streams,
                     const LbfgsOptions &lbfgsOptions,
                     const InstantiaterOptions &options,
                     const std::optional<std::vector<double>> &warm_start,
                     std::vector<LbfgsResult> &results,
                     std::vector<uint8_t> &computed)
{
    static auto &starts_counter =
        obs::MetricsRegistry::global().counter(names::kMetricSynthMultistarts);
    static auto &batched_evals = obs::MetricsRegistry::global().counter(
        names::kMetricSynthBatchedEvals);
    static auto &batch_lanes =
        obs::MetricsRegistry::global().counter(names::kMetricSynthBatchLanes);
    static auto &lane_refills = obs::MetricsRegistry::global().counter(
        names::kMetricSynthLaneRefills);
    dispatchCounter(kern::batch::activeSimdIsa()).increment();

    constexpr double pi = std::numbers::pi;
    constexpr size_t L = BatchedHsCost::kLanes;
    const int n_starts = static_cast<int>(results.size());
    const int n_params = ansatz.paramCount();

    // One shared cost (and so one SoA workspace) for every lane:
    // evaluateBatch reuses it allocation-free across all ticks.
    BatchedHsCost cost(target, ansatz);

    // Scalar evaluator for the drain tail. A batch tick costs the
    // same no matter how many lanes are live, so once the pending
    // list is dry and only a couple of stragglers remain, per-lane
    // scalar evaluation is cheaper. Per-lane bit-identity between
    // the engines (pinned by the kernel parity tests) makes the
    // switch invisible in every result. Built lazily: most runs
    // drain from L to 0 quickly enough that it never exists.
    constexpr size_t kScalarTailLanes = 2;
    std::optional<HsCost> scalarTail;

    std::array<std::optional<LbfgsMachine>, L> machines;
    std::array<int, L> laneStart;
    laneStart.fill(-1);
    std::array<std::vector<double>, L> gradBuf;
    std::array<double, L> fBuf{};

    // Lowest start index that reached the goal, exactly as in the
    // scalar paths; single-threaded here, so a plain int suffices.
    int stop_at = n_starts;
    int next_pending = 0;

    auto makeX0 = [&](int idx) {
        std::vector<double> x0(static_cast<size_t>(n_params));
        if (idx == 0 && warm_start) {
            QUEST_ASSERT(warm_start->size() <= x0.size(),
                         "warm start larger than parameter vector");
            std::copy(warm_start->begin(), warm_start->end(), x0.begin());
            // Trailing new parameters remain zero (identity-ish U3s).
        } else {
            for (double &v : x0)
                v = streams[static_cast<size_t>(idx)].uniform(-pi, pi);
        }
        return x0;
    };

    // Claim the next runnable pending start for a free lane. Starts
    // past the earliest goal index are skipped (the reduction never
    // reads them); a fired budget stops launching, leaving the rest
    // uncomputed just like the scalar paths.
    auto launch = [&](size_t lane) -> bool {
        while (next_pending < n_starts) {
            if (options.budget.exhausted())
                return false;
            const int idx = next_pending++;
            if (idx > stop_at)
                continue;
            starts_counter.increment();
            laneStart[lane] = idx;
            machines[lane].emplace(makeX0(idx), lbfgsOptions);
            return true;
        }
        return false;
    };

    auto retire = [&](size_t lane) {
        LbfgsMachine &m = *machines[lane];
        LbfgsResult r = m.takeResult();
        tallyLaneRun(m.evaluations(), r.iterations);
        const int idx = laneStart[lane];
        const bool reached = r.value <= options.goal;
        results[static_cast<size_t>(idx)] = std::move(r);
        computed[static_cast<size_t>(idx)] = 1;
        if (reached && idx < stop_at)
            stop_at = idx;
        machines[lane].reset();
        laneStart[lane] = -1;
    };

    for (size_t lane = 0; lane < L; ++lane) {
        if (!launch(lane))
            break;
    }

    std::array<const std::vector<double> *, L> xs;
    std::array<std::vector<double> *, L> grads;

    // Lockstep drain. Bounded: every machine's per-iteration
    // options.budget poll (merged call budget) limits its lifetime to
    // maxIterations line searches of at most 40 trials, and retired
    // lanes only refill from the finite pending list.
    while (true) {
        QUEST_BOUNDED_LOOP("per-lane L-BFGS budget polls bound every machine");
        // Drop lanes that can no longer affect the serial-order
        // reduction: their start index is past the earliest goal, so
        // their result would be discarded unread (computed stays 0,
        // as when the scalar parallel path skips them).
        for (size_t lane = 0; lane < L; ++lane) {
            if (machines[lane] && laneStart[lane] > stop_at) {
                machines[lane].reset();
                laneStart[lane] = -1;
            }
        }

        size_t active = 0;
        for (size_t lane = 0; lane < L; ++lane) {
            if (machines[lane]) {
                xs[lane] = &machines[lane]->queryPoint();
                grads[lane] = &gradBuf[lane];
                ++active;
            } else {
                xs[lane] = nullptr;
                grads[lane] = nullptr;
            }
        }
        if (active == 0)
            break;

        if (active <= kScalarTailLanes && next_pending >= n_starts) {
            if (!scalarTail)
                scalarTail.emplace(target, ansatz);
            for (size_t lane = 0; lane < L; ++lane) {
                QUEST_BOUNDED_LOOP("at most kLanes stragglers; each "
                                   "machine polls options.budget per "
                                   "iteration");
                if (xs[lane])
                    fBuf[lane] = scalarTail->evaluate(*xs[lane],
                                                      grads[lane]);
            }
        } else {
            cost.evaluateBatch(xs, fBuf, grads);
            batched_evals.increment();
            batch_lanes.add(active);
        }

        for (size_t lane = 0; lane < L; ++lane) {
            if (!machines[lane])
                continue;
            machines[lane]->consume(fBuf[lane], gradBuf[lane]);
            if (machines[lane]->done()) {
                retire(lane);
                if (launch(lane))
                    lane_refills.increment();
            }
        }
    }
}

} // namespace quest::synth
