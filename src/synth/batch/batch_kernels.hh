/**
 * @file
 * Lane-batched SIMD kernels for the batched instantiation engine.
 *
 * The scalar kernels (synth/kernels.hh) vectorize poorly inside one
 * evaluation: a block matrix is at most 16x16 and the complex
 * arithmetic serializes on the real/imaginary shuffle. These kernels
 * instead vectorize ACROSS candidates — a fixed batch of kLanes
 * parameter vectors for the same ansatz structure, laid out
 * structure-of-arrays with split real/imaginary planes so element e
 * of lane l lives at [e * kLanes + l]. Every scalar floating-point
 * operation of the reference kernel becomes one vector operation
 * across lanes, with identical per-lane order and associativity, so
 * each lane's result is bit-for-bit the scalar engine's.
 *
 * Three implementations are compiled behind one function-pointer
 * table: a portable scalar-lane loop (always available, and the only
 * one in a QUEST_SIMD=OFF build), AVX2 (two 4-wide vectors per lane
 * group) and AVX-512 (one 8-wide vector). The memory layout and the
 * per-lane arithmetic are ISA-independent; dispatch picks the widest
 * ISA the host supports, subject to the QUEST_SIMD environment
 * override (util/cpu.hh). Bit-identity across ISAs additionally
 * requires that no multiply-add be contracted into an FMA — the
 * x86-64 baseline scalar build has no FMA — so the SIMD translation
 * units are compiled with -ffp-contract=off and use separate
 * mul/add/sub intrinsics.
 *
 * Like the scalar table, dims 2/4/8/16 get fully specialized
 * variants via constant propagation and wider dims fall back to
 * generic runtime-dimension loops; dispatch happens once per cost
 * object, never per evaluation.
 */

#ifndef QUEST_SYNTH_BATCH_BATCH_KERNELS_HH
#define QUEST_SYNTH_BATCH_BATCH_KERNELS_HH

#include <cstddef>

namespace quest::kern::batch {

/**
 * Fixed lane count for every ISA. Eight doubles is one AVX-512
 * vector, two AVX2 vectors, or an 8-iteration scalar loop — keeping
 * it constant makes the SoA layout (and therefore every result)
 * independent of the dispatched ISA.
 */
inline constexpr size_t kLanes = 8;

/** Which kernel implementation the dispatcher selected. */
enum class SimdIsa
{
    Scalar,
    Avx2,
    Avx512,
};

/** Human-readable ISA name ("scalar" / "avx2" / "avx512"). */
const char *simdIsaName(SimdIsa isa);

/**
 * One dimension's batched kernel dispatch table.
 *
 * Conventions: every matrix argument is flat row-major dim x dim
 * with each element expanded to kLanes doubles, split into separate
 * real/imaginary planes (mRe/mIm); @p gRe / @p gIm hold a row-major
 * 2x2 gate per lane in the same SoA layout (4 * kLanes doubles
 * each); @p bit / @p bc / @p bt are wire bits exactly as in
 * kern::KernelSet. The leading @p dim argument is the runtime
 * dimension — specialized tables ignore it in favor of their
 * compile-time constant.
 */
struct BatchKernelSet
{
    /** m <- embed(g, wire) * m, per lane (row mixing). */
    void (*leftU3)(size_t dim, double *mRe, double *mIm,
                   const double *gRe, const double *gIm, size_t bit);

    /**
     * dst <- embed(g, wire) * src, per lane: the in-place kernel
     * fused with the slice copy of the forward prefix walk. Same
     * arithmetic, bit-identical values; src and dst must not alias.
     */
    void (*leftU3Out)(size_t dim, double *dstRe, double *dstIm,
                      const double *srcRe, const double *srcIm,
                      const double *gRe, const double *gIm, size_t bit);

    /** m <- embed(CX, control, target) * m, per lane (row swaps). */
    void (*leftCx)(size_t dim, double *mRe, double *mIm, size_t bc,
                   size_t bt);

    /** dst <- embed(CX, ...) * src, per lane (a row gather); src and
     *  dst must not alias. */
    void (*leftCxOut)(size_t dim, double *dstRe, double *dstIm,
                      const double *srcRe, const double *srcIm, size_t bc,
                      size_t bt);

    /**
     * Per-lane trace contraction, mirroring
     * kern::KernelSet::reduceTraceT: writes the four w2 entries as
     * SoA (4 * kLanes doubles per plane).
     */
    void (*reduceTraceT)(size_t dim, const double *pRe, const double *pIm,
                         const double *btRe, const double *btIm, size_t bit,
                         double *w2Re, double *w2Im);

    /**
     * Per-lane Tr(target^dagger U): @p tcRe / @p tcIm hold
     * conj(target) as plain (non-lane-expanded) dim*dim scalars
     * broadcast across lanes; writes kLanes accumulators per plane.
     */
    void (*traceTarget)(size_t dim, const double *tcRe, const double *tcIm,
                        const double *uRe, const double *uIm, double *trRe,
                        double *trIm);
};

/**
 * The batched kernel table for a dim x dim block under the
 * process-wide dispatched ISA (see activeSimdIsa). Call once at
 * cost-object construction and reuse the reference.
 */
const BatchKernelSet &batchKernelsFor(size_t dim);

/**
 * The table for a specific ISA, or nullptr when that ISA was
 * compiled out or the host CPU lacks it. Test hook: the parity suite
 * runs every available ISA against the scalar reference.
 */
const BatchKernelSet *batchKernelsForIsa(SimdIsa isa, size_t dim);

/**
 * The ISA the process-wide dispatch resolved to: the widest the
 * build and the host support, capped by the QUEST_SIMD override.
 * Cached after the first call.
 */
SimdIsa activeSimdIsa();

/**
 * False when QUEST_SIMD=off disabled the batched engine at runtime:
 * instantiate() then always takes the classic scalar path.
 */
bool batchEngineEnabled();

} // namespace quest::kern::batch

#endif // QUEST_SYNTH_BATCH_BATCH_KERNELS_HH
