#include "synth/batch/lbfgs_machine.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/names.hh"

namespace quest::synth {

namespace {

// Identical helpers to lbfgs.cc's: the two implementations must sum
// and compare in the same order.

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        sum += a[i] * b[i];
    return sum;
}

double
infNorm(const std::vector<double> &v)
{
    double worst = 0.0;
    for (double x : v)
        worst = std::max(worst, std::abs(x));
    return worst;
}

} // namespace

LbfgsMachine::LbfgsMachine(std::vector<double> x0,
                           const LbfgsOptions &options)
    : options(options), n(x0.size())
{
    result.x = std::move(x0);
    grad.resize(n);
    direction.resize(n);
    x_new.resize(n);
    grad_new.resize(n);
}

const std::vector<double> &
LbfgsMachine::queryPoint() const
{
    QUEST_ASSERT(phase != Phase::Finished,
                 "queryPoint() on a finished machine");
    return phase == Phase::AwaitInitial ? result.x : x_new;
}

void
LbfgsMachine::finishWithValue()
{
    result.value = f;
    phase = Phase::Finished;
}

void
LbfgsMachine::proposeTrial()
{
    for (size_t i = 0; i < n; ++i)
        x_new[i] = result.x[i] + step * direction[i];
    phase = Phase::AwaitTrial;
}

void
LbfgsMachine::beginIteration()
{
    // Mirrors the top of lbfgsMinimize's iteration loop, through the
    // first line-search trial proposal.
    if (iter >= options.maxIterations) {
        finishWithValue();
        return;
    }

    // The per-iteration safe point: a cancelled or overdue run stops
    // here with the best point found so far.
    const resilience::StopReason stop = options.budget.stop();
    if (stop != resilience::StopReason::None) {
        result.stopped = stop;
        finishWithValue();
        return;
    }

    result.iterations = iter + 1;
    if (infNorm(grad) < options.gradTolerance) {
        result.converged = true;
        finishWithValue();
        return;
    }

    // Two-loop recursion: direction = -H g.
    direction = grad;
    alpha_buf.assign(history.size(), 0.0);
    for (size_t h = history.size(); h-- > 0;) {
        const Pair &p = history[h];
        double a = p.rho * dot(p.s, direction);
        alpha_buf[h] = a;
        for (size_t i = 0; i < n; ++i)
            direction[i] -= a * p.y[i];
    }
    if (!history.empty()) {
        const Pair &last = history.back();
        double gamma = dot(last.s, last.y) / dot(last.y, last.y);
        for (double &d : direction)
            d *= gamma;
    }
    for (size_t h = 0; h < history.size(); ++h) {
        const Pair &p = history[h];
        double beta = p.rho * dot(p.y, direction);
        for (size_t i = 0; i < n; ++i)
            direction[i] += p.s[i] * (alpha_buf[h] - beta);
    }
    for (double &d : direction)
        d = -d;

    dir_deriv = dot(grad, direction);
    if (dir_deriv >= 0.0) {
        // Not a descent direction: reset to steepest descent.
        history.clear();
        for (size_t i = 0; i < n; ++i)
            direction[i] = -grad[i];
        dir_deriv = -dot(grad, grad);
    }

    step = 1.0;
    ls = 0;
    proposeTrial();
}

void
LbfgsMachine::consume(double fval, std::vector<double> &g)
{
    QUEST_ASSERT(phase != Phase::Finished, "consume() on a finished machine");
    ++evals;

    if (phase == Phase::AwaitInitial) {
        if (!std::isfinite(fval)) {
            // A non-finite objective at the starting point cannot be
            // optimized; report a diverged run (lbfgs.cc does the
            // same).
            static auto &nonfinite = obs::MetricsRegistry::global().counter(
                names::kMetricLbfgsNonfiniteObjectives);
            nonfinite.increment();
            result.value = std::numeric_limits<double>::infinity();
            phase = Phase::Finished;
            return;
        }
        f = fval;
        grad.swap(g);
        if (n == 0) {
            result.value = f;
            result.converged = true;
            phase = Phase::Finished;
            return;
        }
        iter = 0;
        beginIteration();
        return;
    }

    // A line-search trial came back: Armijo test, then either accept
    // (curvature update, stagnation check, next iteration) or shrink
    // the step by quadratic interpolation and retry.
    const double f_new = fval;
    grad_new.swap(g);
    constexpr double c1 = 1e-4;
    if (f_new <= f + c1 * step * dir_deriv) {
        Pair p;
        p.s.resize(n);
        p.y.resize(n);
        for (size_t i = 0; i < n; ++i) {
            p.s[i] = x_new[i] - result.x[i];
            p.y[i] = grad_new[i] - grad[i];
        }
        double sy = dot(p.s, p.y);
        if (sy > 1e-12) {
            p.rho = 1.0 / sy;
            history.push_back(std::move(p));
            if (static_cast<int>(history.size()) > options.historySize)
                history.pop_front();
        }

        double f_old = f;
        result.x = x_new;
        grad.swap(grad_new);
        f = f_new;

        if (std::abs(f_old - f) <=
            options.valueTolerance * std::max(1.0, std::abs(f_old))) {
            result.converged = true;
            finishWithValue();
            return;
        }
        ++iter;
        beginIteration();
        return;
    }

    double denom = 2.0 * (f_new - f - dir_deriv * step);
    double interpolated =
        denom > 0.0 ? -dir_deriv * step * step / denom : 0.5 * step;
    step = std::clamp(interpolated, 0.1 * step, 0.5 * step);
    ++ls;
    if (ls >= 40) {
        result.converged = infNorm(grad) < 1e-6;
        finishWithValue();
        return;
    }
    proposeTrial();
}

} // namespace quest::synth
