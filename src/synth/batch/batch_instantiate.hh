/**
 * @file
 * Lane-lockstep batched multistart driver behind instantiate().
 *
 * All multistarts of one instantiate() call share the same ansatz
 * structure, so their cost evaluations batch perfectly: each live
 * lane holds one start's L-BFGS run (lbfgs_machine.hh), every tick
 * evaluates all lanes through one BatchedHsCost pass, finished lanes
 * retire and refill from the pending starts. The serial-order
 * best-of reduction stays in instantiate(); this driver only fills
 * the same results/computed arrays the scalar paths fill, with
 * bit-identical entries — so the selected result matches the scalar
 * engine at any thread count (the batch runs on the calling thread
 * and ignores the pool; the pool still parallelizes the synthesis
 * tasks above it).
 */

#ifndef QUEST_SYNTH_BATCH_BATCH_INSTANTIATE_HH
#define QUEST_SYNTH_BATCH_BATCH_INSTANTIATE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "linalg/matrix.hh"
#include "synth/ansatz.hh"
#include "synth/instantiater.hh"
#include "synth/lbfgs.hh"
#include "util/rng.hh"

namespace quest::synth {

/**
 * Run every multistart through the batched engine. @p streams holds
 * one pre-split RNG per start; @p lbfgsOptions already carries the
 * merged call budget. Fills results[i]/computed[i] exactly as the
 * scalar run_start would: computed stays 0 for starts skipped past
 * the earliest goal index or cut off by the budget.
 */
void runBatchedMultistart(
    const Matrix &target, const Ansatz &ansatz, std::vector<Rng> &streams,
    const LbfgsOptions &lbfgsOptions, const InstantiaterOptions &options,
    const std::optional<std::vector<double>> &warm_start,
    std::vector<LbfgsResult> &results, std::vector<uint8_t> &computed);

} // namespace quest::synth

#endif // QUEST_SYNTH_BATCH_BATCH_INSTANTIATE_HH
