/**
 * @file
 * Shared loop bodies for the batched kernels, templated on a
 * vector-ops policy. Each ISA translation unit instantiates these
 * with its own policy (scalar double, __m256d, __m512d), so the loop
 * structure — and therefore the per-lane operation order — is
 * written exactly once.
 *
 * A policy V provides:
 *     using Reg = ...;                   // one vector register
 *     static constexpr size_t width;     // lanes per register
 *     static Reg  load(const double *);  // unaligned
 *     static void store(double *, Reg);
 *     static Reg  set1(double);
 *     static Reg  zero();
 *     static Reg  add(Reg, Reg);
 *     static Reg  sub(Reg, Reg);
 *     static Reg  mul(Reg, Reg);
 *
 * Bit-identity contract: every body is a 1:1 translation of the
 * scalar kernel body in synth/kernels.cc — same loop order, same
 * operand order, complex arithmetic spelled with separate mul/add/sub
 * (never fused; the including TU must be compiled with
 * -ffp-contract=off). Do not "optimize" an expression here without
 * making the identical change to the scalar kernel.
 */

#ifndef QUEST_SYNTH_BATCH_BATCH_KERNELS_IMPL_HH
#define QUEST_SYNTH_BATCH_BATCH_KERNELS_IMPL_HH

#include "synth/batch/batch_kernels.hh"

namespace quest::kern::batch::impl {

/** Loop bodies for one (policy, compile-time dim) pair; D == 0 means
 *  runtime dimension. */
template <class V, size_t D>
struct Bodies
{
    using Reg = typename V::Reg;
    static constexpr size_t W = V::width;
    static_assert(kLanes % W == 0, "lane count must be a register multiple");

    static void
    leftU3(size_t dimArg, double *mRe, double *mIm, const double *gRe,
           const double *gIm, size_t bit)
    {
        const size_t dim = D ? D : dimArg;
        const size_t lo = bit - 1;
        for (size_t v = 0; v < kLanes; v += W) {
            const Reg g00r = V::load(gRe + 0 * kLanes + v);
            const Reg g00i = V::load(gIm + 0 * kLanes + v);
            const Reg g01r = V::load(gRe + 1 * kLanes + v);
            const Reg g01i = V::load(gIm + 1 * kLanes + v);
            const Reg g10r = V::load(gRe + 2 * kLanes + v);
            const Reg g10i = V::load(gIm + 2 * kLanes + v);
            const Reg g11r = V::load(gRe + 3 * kLanes + v);
            const Reg g11i = V::load(gIm + 3 * kLanes + v);
            for (size_t h = 0; h < dim / 2; ++h) {
                const size_t r0 = ((h & ~lo) << 1) | (h & lo);
                double *row0Re = mRe + r0 * dim * kLanes;
                double *row0Im = mIm + r0 * dim * kLanes;
                double *row1Re = mRe + (r0 | bit) * dim * kLanes;
                double *row1Im = mIm + (r0 | bit) * dim * kLanes;
                for (size_t c = 0; c < dim; ++c) {
                    const size_t off = c * kLanes + v;
                    const Reg ar = V::load(row0Re + off);
                    const Reg ai = V::load(row0Im + off);
                    const Reg br = V::load(row1Re + off);
                    const Reg bi = V::load(row1Im + off);
                    // row0 = cmul(g00, a) + cmul(g01, b)
                    V::store(
                        row0Re + off,
                        V::add(V::sub(V::mul(g00r, ar), V::mul(g00i, ai)),
                               V::sub(V::mul(g01r, br), V::mul(g01i, bi))));
                    V::store(
                        row0Im + off,
                        V::add(V::add(V::mul(g00r, ai), V::mul(g00i, ar)),
                               V::add(V::mul(g01r, bi), V::mul(g01i, br))));
                    // row1 = cmul(g10, a) + cmul(g11, b)
                    V::store(
                        row1Re + off,
                        V::add(V::sub(V::mul(g10r, ar), V::mul(g10i, ai)),
                               V::sub(V::mul(g11r, br), V::mul(g11i, bi))));
                    V::store(
                        row1Im + off,
                        V::add(V::add(V::mul(g10r, ai), V::mul(g10i, ar)),
                               V::add(V::mul(g11r, bi), V::mul(g11i, br))));
                }
            }
        }
    }

    static void
    leftU3Out(size_t dimArg, double *dstRe, double *dstIm,
              const double *srcRe, const double *srcIm, const double *gRe,
              const double *gIm, size_t bit)
    {
        // Fused copy + leftU3 for the forward prefix walk: every row
        // belongs to exactly one (r0, r0|bit) pair, so writing the
        // mixed rows straight into the next slice covers the whole
        // matrix with the in-place kernel's arithmetic (same operand
        // order, same adds/subs — bit-identical values) and skips the
        // separate slice copy.
        const size_t dim = D ? D : dimArg;
        const size_t lo = bit - 1;
        for (size_t v = 0; v < kLanes; v += W) {
            const Reg g00r = V::load(gRe + 0 * kLanes + v);
            const Reg g00i = V::load(gIm + 0 * kLanes + v);
            const Reg g01r = V::load(gRe + 1 * kLanes + v);
            const Reg g01i = V::load(gIm + 1 * kLanes + v);
            const Reg g10r = V::load(gRe + 2 * kLanes + v);
            const Reg g10i = V::load(gIm + 2 * kLanes + v);
            const Reg g11r = V::load(gRe + 3 * kLanes + v);
            const Reg g11i = V::load(gIm + 3 * kLanes + v);
            for (size_t h = 0; h < dim / 2; ++h) {
                const size_t r0 = ((h & ~lo) << 1) | (h & lo);
                const double *s0Re = srcRe + r0 * dim * kLanes;
                const double *s0Im = srcIm + r0 * dim * kLanes;
                const double *s1Re = srcRe + (r0 | bit) * dim * kLanes;
                const double *s1Im = srcIm + (r0 | bit) * dim * kLanes;
                double *d0Re = dstRe + r0 * dim * kLanes;
                double *d0Im = dstIm + r0 * dim * kLanes;
                double *d1Re = dstRe + (r0 | bit) * dim * kLanes;
                double *d1Im = dstIm + (r0 | bit) * dim * kLanes;
                for (size_t c = 0; c < dim; ++c) {
                    const size_t off = c * kLanes + v;
                    const Reg ar = V::load(s0Re + off);
                    const Reg ai = V::load(s0Im + off);
                    const Reg br = V::load(s1Re + off);
                    const Reg bi = V::load(s1Im + off);
                    // row0 = cmul(g00, a) + cmul(g01, b)
                    V::store(
                        d0Re + off,
                        V::add(V::sub(V::mul(g00r, ar), V::mul(g00i, ai)),
                               V::sub(V::mul(g01r, br), V::mul(g01i, bi))));
                    V::store(
                        d0Im + off,
                        V::add(V::add(V::mul(g00r, ai), V::mul(g00i, ar)),
                               V::add(V::mul(g01r, bi), V::mul(g01i, br))));
                    // row1 = cmul(g10, a) + cmul(g11, b)
                    V::store(
                        d1Re + off,
                        V::add(V::sub(V::mul(g10r, ar), V::mul(g10i, ai)),
                               V::sub(V::mul(g11r, br), V::mul(g11i, bi))));
                    V::store(
                        d1Im + off,
                        V::add(V::add(V::mul(g10r, ai), V::mul(g10i, ar)),
                               V::add(V::mul(g11r, bi), V::mul(g11i, br))));
                }
            }
        }
    }

    static void
    leftCx(size_t dimArg, double *mRe, double *mIm, size_t bc, size_t bt)
    {
        const size_t dim = D ? D : dimArg;
        for (size_t r = 0; r < dim; ++r) {
            if ((r & bc) && !(r & bt)) {
                double *row0Re = mRe + r * dim * kLanes;
                double *row0Im = mIm + r * dim * kLanes;
                double *row1Re = mRe + (r | bt) * dim * kLanes;
                double *row1Im = mIm + (r | bt) * dim * kLanes;
                for (size_t c = 0; c < dim; ++c) {
                    for (size_t v = 0; v < kLanes; v += W) {
                        const size_t off = c * kLanes + v;
                        const Reg tr = V::load(row0Re + off);
                        const Reg ti = V::load(row0Im + off);
                        V::store(row0Re + off, V::load(row1Re + off));
                        V::store(row0Im + off, V::load(row1Im + off));
                        V::store(row1Re + off, tr);
                        V::store(row1Im + off, ti);
                    }
                }
            }
        }
    }

    static void
    leftCxOut(size_t dimArg, double *dstRe, double *dstIm,
              const double *srcRe, const double *srcIm, size_t bc,
              size_t bt)
    {
        // Fused copy + leftCx: a CX permutes rows, so the next slice
        // is a gather — dst row r reads src row (r ^ bt) when the
        // control bit is set, row r otherwise. Pure copies, trivially
        // bit-identical to copy-then-swap.
        const size_t dim = D ? D : dimArg;
        const size_t rowL = dim * kLanes;
        for (size_t r = 0; r < dim; ++r) {
            const size_t src = (r & bc) ? (r ^ bt) : r;
            const double *sRe = srcRe + src * rowL;
            const double *sIm = srcIm + src * rowL;
            double *dRe = dstRe + r * rowL;
            double *dIm = dstIm + r * rowL;
            for (size_t off = 0; off < rowL; off += W) {
                V::store(dRe + off, V::load(sRe + off));
                V::store(dIm + off, V::load(sIm + off));
            }
        }
    }

    static void
    reduceTraceT(size_t dimArg, const double *pRe, const double *pIm,
                 const double *btRe, const double *btIm, size_t bit,
                 double *w2Re, double *w2Im)
    {
        const size_t dim = D ? D : dimArg;
        const size_t lo = bit - 1;
        for (size_t v = 0; v < kLanes; v += W) {
            Reg w00r = V::zero(), w00i = V::zero();
            Reg w01r = V::zero(), w01i = V::zero();
            Reg w10r = V::zero(), w10i = V::zero();
            Reg w11r = V::zero(), w11i = V::zero();
            for (size_t h = 0; h < dim / 2; ++h) {
                const size_t r0 = ((h & ~lo) << 1) | (h & lo);
                const double *p0Re = pRe + r0 * dim * kLanes;
                const double *p0Im = pIm + r0 * dim * kLanes;
                const double *p1Re = pRe + (r0 | bit) * dim * kLanes;
                const double *p1Im = pIm + (r0 | bit) * dim * kLanes;
                const double *b0Re = btRe + r0 * dim * kLanes;
                const double *b0Im = btIm + r0 * dim * kLanes;
                const double *b1Re = btRe + (r0 | bit) * dim * kLanes;
                const double *b1Im = btIm + (r0 | bit) * dim * kLanes;
                for (size_t c = 0; c < dim; ++c) {
                    const size_t off = c * kLanes + v;
                    const Reg par = V::load(p0Re + off);
                    const Reg pai = V::load(p0Im + off);
                    const Reg pbr = V::load(p1Re + off);
                    const Reg pbi = V::load(p1Im + off);
                    const Reg bar = V::load(b0Re + off);
                    const Reg bai = V::load(b0Im + off);
                    const Reg bbr = V::load(b1Re + off);
                    const Reg bbi = V::load(b1Im + off);
                    // w00 += cmul(pa, ba)
                    w00r = V::add(w00r,
                                  V::sub(V::mul(par, bar), V::mul(pai, bai)));
                    w00i = V::add(w00i,
                                  V::add(V::mul(par, bai), V::mul(pai, bar)));
                    // w01 += cmul(pa, bb)
                    w01r = V::add(w01r,
                                  V::sub(V::mul(par, bbr), V::mul(pai, bbi)));
                    w01i = V::add(w01i,
                                  V::add(V::mul(par, bbi), V::mul(pai, bbr)));
                    // w10 += cmul(pb, ba)
                    w10r = V::add(w10r,
                                  V::sub(V::mul(pbr, bar), V::mul(pbi, bai)));
                    w10i = V::add(w10i,
                                  V::add(V::mul(pbr, bai), V::mul(pbi, bar)));
                    // w11 += cmul(pb, bb)
                    w11r = V::add(w11r,
                                  V::sub(V::mul(pbr, bbr), V::mul(pbi, bbi)));
                    w11i = V::add(w11i,
                                  V::add(V::mul(pbr, bbi), V::mul(pbi, bbr)));
                }
            }
            V::store(w2Re + 0 * kLanes + v, w00r);
            V::store(w2Im + 0 * kLanes + v, w00i);
            V::store(w2Re + 1 * kLanes + v, w01r);
            V::store(w2Im + 1 * kLanes + v, w01i);
            V::store(w2Re + 2 * kLanes + v, w10r);
            V::store(w2Im + 2 * kLanes + v, w10i);
            V::store(w2Re + 3 * kLanes + v, w11r);
            V::store(w2Im + 3 * kLanes + v, w11i);
        }
    }

    static void
    traceTarget(size_t dimArg, const double *tcRe, const double *tcIm,
                const double *uRe, const double *uIm, double *trRe,
                double *trIm)
    {
        const size_t dim = D ? D : dimArg;
        const size_t dd = dim * dim;
        for (size_t v = 0; v < kLanes; v += W) {
            Reg accr = V::zero(), acci = V::zero();
            for (size_t e = 0; e < dd; ++e) {
                const Reg tcr = V::set1(tcRe[e]);
                const Reg tci = V::set1(tcIm[e]);
                const Reg ur = V::load(uRe + e * kLanes + v);
                const Reg ui = V::load(uIm + e * kLanes + v);
                // tr += cmul(tc, u)
                accr = V::add(accr, V::sub(V::mul(tcr, ur), V::mul(tci, ui)));
                acci = V::add(acci, V::add(V::mul(tcr, ui), V::mul(tci, ur)));
            }
            V::store(trRe + v, accr);
            V::store(trIm + v, acci);
        }
    }
};

template <class V, size_t D>
constexpr BatchKernelSet
makeSet()
{
    return {&Bodies<V, D>::leftU3, &Bodies<V, D>::leftU3Out,
            &Bodies<V, D>::leftCx, &Bodies<V, D>::leftCxOut,
            &Bodies<V, D>::reduceTraceT, &Bodies<V, D>::traceTarget};
}

/** The per-dim dispatch for one policy: specialized tables for dims
 *  2/4/8/16, the generic-loop table beyond. */
template <class V>
const BatchKernelSet &
tableForDim(size_t dim)
{
    static constexpr BatchKernelSet kGeneric = makeSet<V, 0>();
    static constexpr BatchKernelSet kD2 = makeSet<V, 2>();
    static constexpr BatchKernelSet kD4 = makeSet<V, 4>();
    static constexpr BatchKernelSet kD8 = makeSet<V, 8>();
    static constexpr BatchKernelSet kD16 = makeSet<V, 16>();
    switch (dim) {
      case 2:
        return kD2;
      case 4:
        return kD4;
      case 8:
        return kD8;
      case 16:
        return kD16;
      default:
        return kGeneric;
    }
}

} // namespace quest::kern::batch::impl

#endif // QUEST_SYNTH_BATCH_BATCH_KERNELS_IMPL_HH
