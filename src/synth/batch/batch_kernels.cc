#include "synth/batch/batch_kernels.hh"

#include "synth/batch/batch_kernels_tables.hh"
#include "util/cpu.hh"
#include "util/logging.hh"

namespace quest::kern::batch {

namespace {

/** Resolve the dispatch once: widest ISA the build and the host both
 *  support, capped by the QUEST_SIMD override. */
SimdIsa
resolveIsa()
{
    const util::CpuFeatures &cpu = util::cpuFeatures();
    const util::SimdOverride ov = util::simdOverride();

    const bool haveAvx512 = cpu.avx512f && avx512BatchKernelsFor(2) != nullptr;
    const bool haveAvx2 = cpu.avx2 && avx2BatchKernelsFor(2) != nullptr;

    switch (ov) {
      case util::SimdOverride::Off:
      case util::SimdOverride::Scalar:
        return SimdIsa::Scalar;
      case util::SimdOverride::Avx2:
        return haveAvx2 ? SimdIsa::Avx2 : SimdIsa::Scalar;
      case util::SimdOverride::Avx512:
      case util::SimdOverride::None:
        break;
    }
    if (haveAvx512)
        return SimdIsa::Avx512;
    if (haveAvx2)
        return SimdIsa::Avx2;
    return SimdIsa::Scalar;
}

} // namespace

const char *
simdIsaName(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::Avx512:
        return "avx512";
      case SimdIsa::Avx2:
        return "avx2";
      case SimdIsa::Scalar:
        break;
    }
    return "scalar";
}

SimdIsa
activeSimdIsa()
{
    static const SimdIsa isa = resolveIsa();
    return isa;
}

bool
batchEngineEnabled()
{
    return util::simdOverride() != util::SimdOverride::Off;
}

const BatchKernelSet *
batchKernelsForIsa(SimdIsa isa, size_t dim)
{
    QUEST_ASSERT(dim >= 2 && (dim & (dim - 1)) == 0,
                 "batched kernel dimension must be a power of two >= 2, got ",
                 dim);
    switch (isa) {
      case SimdIsa::Avx512:
        return util::cpuFeatures().avx512f ? avx512BatchKernelsFor(dim)
                                           : nullptr;
      case SimdIsa::Avx2:
        return util::cpuFeatures().avx2 ? avx2BatchKernelsFor(dim) : nullptr;
      case SimdIsa::Scalar:
        break;
    }
    return &scalarBatchKernelsFor(dim);
}

const BatchKernelSet &
batchKernelsFor(size_t dim)
{
    const BatchKernelSet *k = batchKernelsForIsa(activeSimdIsa(), dim);
    QUEST_ASSERT(k != nullptr, "dispatched batched kernel table missing");
    return *k;
}

} // namespace quest::kern::batch
