/**
 * Portable scalar-lane instantiation of the batched kernel bodies:
 * the no-SIMD build's only table and the fallback on hosts without
 * AVX2. Compiled with -ffp-contract=off like the SIMD units so a
 * toolchain that enables FMA globally cannot contract the complex
 * mul/add chains and break cross-engine bit-identity.
 */

#include "synth/batch/batch_kernels_impl.hh"
#include "synth/batch/batch_kernels_tables.hh"

namespace quest::kern::batch {

namespace {

struct VScalar
{
    using Reg = double;
    static constexpr size_t width = 1;
    static double load(const double *p) { return *p; }
    static void store(double *p, double x) { *p = x; }
    static double set1(double x) { return x; }
    static double zero() { return 0.0; }
    static double add(double a, double b) { return a + b; }
    static double sub(double a, double b) { return a - b; }
    static double mul(double a, double b) { return a * b; }
};

} // namespace

const BatchKernelSet &
scalarBatchKernelsFor(size_t dim)
{
    return impl::tableForDim<VScalar>(dim);
}

} // namespace quest::kern::batch
