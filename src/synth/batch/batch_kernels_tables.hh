/**
 * @file
 * Internal linkage between the per-ISA kernel translation units and
 * the dispatcher (batch_kernels.cc). Not part of the public API.
 */

#ifndef QUEST_SYNTH_BATCH_BATCH_KERNELS_TABLES_HH
#define QUEST_SYNTH_BATCH_BATCH_KERNELS_TABLES_HH

#include "synth/batch/batch_kernels.hh"

namespace quest::kern::batch {

/** Portable scalar-lane table; always available. */
const BatchKernelSet &scalarBatchKernelsFor(size_t dim);

/** AVX2 table, or nullptr when compiled out (QUEST_SIMD=OFF or a
 *  non-x86 target). */
const BatchKernelSet *avx2BatchKernelsFor(size_t dim);

/** AVX-512 table, or nullptr when compiled out. */
const BatchKernelSet *avx512BatchKernelsFor(size_t dim);

} // namespace quest::kern::batch

#endif // QUEST_SYNTH_BATCH_BATCH_KERNELS_TABLES_HH
