/**
 * AVX2 instantiation of the batched kernel bodies: two 4-wide
 * __m256d registers cover the 8-lane batch. Compiled with
 * -mavx2 -ffp-contract=off (see src/synth/CMakeLists.txt); the
 * QUEST_BATCH_COMPILE_AVX2 macro is only defined when those flags
 * are in effect, so a build without them (QUEST_SIMD=OFF, non-x86)
 * gets the nullptr stub instead of unbuildable intrinsics.
 *
 * Separate mul/add/sub intrinsics, never _mm256_fmadd_pd: each lane
 * must round exactly like the scalar engine's uncontracted
 * arithmetic.
 */

#include "synth/batch/batch_kernels_tables.hh"

#if defined(QUEST_BATCH_COMPILE_AVX2)

#include <immintrin.h>

#include "synth/batch/batch_kernels_impl.hh"

namespace quest::kern::batch {

namespace {

struct VAvx2
{
    using Reg = __m256d;
    static constexpr size_t width = 4;
    static Reg load(const double *p) { return _mm256_loadu_pd(p); }
    static void store(double *p, Reg x) { _mm256_storeu_pd(p, x); }
    static Reg set1(double x) { return _mm256_set1_pd(x); }
    static Reg zero() { return _mm256_setzero_pd(); }
    static Reg add(Reg a, Reg b) { return _mm256_add_pd(a, b); }
    static Reg sub(Reg a, Reg b) { return _mm256_sub_pd(a, b); }
    static Reg mul(Reg a, Reg b) { return _mm256_mul_pd(a, b); }
};

} // namespace

const BatchKernelSet *
avx2BatchKernelsFor(size_t dim)
{
    return &impl::tableForDim<VAvx2>(dim);
}

} // namespace quest::kern::batch

#else // !QUEST_BATCH_COMPILE_AVX2

namespace quest::kern::batch {

const BatchKernelSet *
avx2BatchKernelsFor(size_t)
{
    return nullptr;
}

} // namespace quest::kern::batch

#endif
