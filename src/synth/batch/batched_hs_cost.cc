#include "synth/batch/batched_hs_cost.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "synth/kernels.hh"
#include "util/logging.hh"
#include "util/names.hh"

namespace quest::synth {

namespace {

using kern::cmul;

/** Evaluate calls that reused the workspace without allocating —
 *  same counter as the scalar engine's warm-workspace path. */
obs::Counter &
workspaceReuseCounter()
{
    static auto &c = obs::MetricsRegistry::global().counter(
        names::kMetricSynthWorkspaceReuses);
    return c;
}

} // namespace

bool
BatchedHsWorkspace::ensure(size_t dim, size_t opCount, size_t u3Count)
{
    constexpr size_t L = kern::batch::kLanes;
    const size_t ddL = dim * dim * L;
    bool grew = false;
    auto fit = [&grew](std::vector<double> &v, double *&base, size_t n) {
        // +7 doubles of slack so the aligned base still has room.
        if (v.size() < n + 7) {
            v.resize(n + 7);
            grew = true;
        }
        auto addr = reinterpret_cast<uintptr_t>(v.data());
        base = v.data() + ((-addr & 63) / sizeof(double));
    };
    fit(prefixRe, preRe, (opCount + 1) * ddL);
    fit(prefixIm, preIm, (opCount + 1) * ddL);
    fit(backwardRe, bwdRe, ddL);
    fit(backwardIm, bwdIm, ddL);
    fit(u3Re, gRe, u3Count * 16 * L);
    fit(u3Im, gIm, u3Count * 16 * L);
    fit(gtRe, tgRe, 4 * L);
    fit(gtIm, tgIm, 4 * L);
    fit(w2Re, wRe, 4 * L);
    fit(w2Im, wIm, 4 * L);
    fit(trRe, tRe, L);
    fit(trIm, tIm, L);
    if (grew)
        ++allocations;
    else
        ++reuses;
    return grew;
}

BatchedHsCost::BatchedHsCost(const Matrix &target, const Ansatz &ansatz)
{
    QUEST_ASSERT(target.isSquare(), "target must be square");
    QUEST_ASSERT(target.rows() == (size_t{1} << ansatz.numQubits()),
                 "target dimension does not match ansatz width");
    dim = target.rows();
    const double n = static_cast<double>(dim);
    dimSquared = n * n;
    kernels = &kern::batch::batchKernelsFor(dim);
    plan = compilePlan(ansatz);

    tcRe.resize(dim * dim);
    tcIm.resize(dim * dim);
    const Complex *t = target.data().data();
    for (size_t i = 0; i < dim * dim; ++i) {
        const Complex c = std::conj(t[i]);
        tcRe[i] = c.real();
        tcIm[i] = c.imag();
    }

    // Idle lanes evaluate with all-zero parameters; cache that gate
    // once so the per-op lane loop skips the trig for them.
    u3WithDerivatives(0.0, 0.0, 0.0, idleG, idleDg);

    // Warm the arena now so every evaluateBatch() is allocation-free.
    ws.ensure(dim, plan.ops.size(), plan.u3Count);
}

void
BatchedHsCost::evaluateBatch(
    const std::array<const std::vector<double> *, kLanes> &xs,
    std::array<double, kLanes> &f,
    const std::array<std::vector<double> *, kLanes> &grads)
{
    constexpr size_t L = kLanes;
    const size_t count = plan.ops.size();
    const size_t dd = dim * dim;
    const size_t ddL = dd * L;
    const kern::batch::BatchKernelSet &k = *kernels;

    if (!ws.ensure(dim, count, plan.u3Count))
        workspaceReuseCounter().increment();

    for (size_t l = 0; l < L; ++l) {
        if (xs[l]) {
            QUEST_ASSERT(static_cast<int>(xs[l]->size()) == plan.nParams,
                         "parameter count mismatch");
            QUEST_ASSERT(grads[l] != nullptr,
                         "live lane requires a gradient output");
            grads[l]->resize(static_cast<size_t>(plan.nParams));
        }
    }

    // Forward pass, all lanes at once: prefix slice j holds
    // op_{j-1} ... op_0 per lane (slice 0 is the identity). U3
    // entries and derivatives come from one scalar u3WithDerivatives
    // per (op, lane) — the exact libm values the scalar engine sees —
    // fanned into the SoA gate cache.
    double *preRe = ws.preRe;
    double *preIm = ws.preIm;
    std::fill(preRe, preRe + ddL, 0.0);
    std::fill(preIm, preIm + ddL, 0.0);
    for (size_t i = 0; i < dim; ++i) {
        double *cell = preRe + (i * dim + i) * L;
        std::fill(cell, cell + L, 1.0);
    }
    {
        size_t ui = 0;
        for (size_t j = 0; j < count; ++j) {
            const OpPlan &op = plan.ops[j];
            double *curRe = preRe + j * ddL;
            double *curIm = preIm + j * ddL;
            if (op.isCx) {
                k.leftCxOut(dim, curRe + ddL, curIm + ddL, curRe, curIm,
                            op.bit, op.bit2);
                continue;
            }
            const size_t slot = ui * 16;
            Complex buf[4];
            Complex dbuf[3][4];
            for (size_t l = 0; l < L; ++l) {
                const std::vector<double> *x = xs[l];
                const Complex(*dg)[4] = idleDg;
                const Complex *g = idleG;
                if (x) {
                    const size_t b = static_cast<size_t>(op.base);
                    u3WithDerivatives((*x)[b], (*x)[b + 1], (*x)[b + 2],
                                      buf, dbuf);
                    g = buf;
                    dg = dbuf;
                }
                for (size_t e = 0; e < 4; ++e) {
                    ws.gRe[(slot + e) * L + l] = g[e].real();
                    ws.gIm[(slot + e) * L + l] = g[e].imag();
                }
                for (size_t w = 0; w < 3; ++w) {
                    for (size_t e = 0; e < 4; ++e) {
                        const size_t at = (slot + 4 + w * 4 + e) * L + l;
                        ws.gRe[at] = dg[w][e].real();
                        ws.gIm[at] = dg[w][e].imag();
                    }
                }
            }
            k.leftU3Out(dim, curRe + ddL, curIm + ddL, curRe, curIm,
                        ws.gRe + slot * L, ws.gIm + slot * L,
                        op.bit);
            ++ui;
        }
    }
    k.traceTarget(dim, tcRe.data(), tcIm.data(), preRe + count * ddL,
                  preIm + count * ddL, ws.tRe, ws.tIm);

    // Backward pass, transposed, exactly as in HsCost::evaluate: bt
    // starts as conj(target) in every lane; each U3 contributes three
    // gradient entries per lane via the trace contraction, then its
    // transposed gate is appended.
    double *btRe = ws.bwdRe;
    double *btIm = ws.bwdIm;
    for (size_t e = 0; e < dd; ++e) {
        std::fill(btRe + e * L, btRe + e * L + L, tcRe[e]);
        std::fill(btIm + e * L, btIm + e * L + L, tcIm[e]);
    }
    std::array<Complex, L> trc;
    for (size_t l = 0; l < L; ++l)
        trc[l] = std::conj(Complex(ws.tRe[l], ws.tIm[l]));

    size_t ui = plan.u3Count;
    for (size_t j = count; j-- > 0;) {
        const OpPlan &op = plan.ops[j];
        if (op.isCx) {
            // embed(CX)^T = embed(CX): the same row-swap kernel.
            k.leftCx(dim, btRe, btIm, op.bit, op.bit2);
            continue;
        }
        const size_t slot = --ui * 16;
        k.reduceTraceT(dim, preRe + j * ddL, preIm + j * ddL, btRe, btIm,
                       op.bit, ws.wRe, ws.wIm);
        for (int which = 0; which < 3; ++which) {
            const size_t d = (slot + 4 + static_cast<size_t>(which) * 4) * L;
            for (size_t l = 0; l < L; ++l) {
                if (!xs[l])
                    continue;
                // Reconstruct per-lane complexes and evaluate the
                // scalar engine's expression verbatim:
                // Tr(W * embed(d)) = sum_ac w2[a][c] d(c, a).
                const Complex w0(ws.wRe[0 * L + l], ws.wIm[0 * L + l]);
                const Complex w1(ws.wRe[1 * L + l], ws.wIm[1 * L + l]);
                const Complex w2(ws.wRe[2 * L + l], ws.wIm[2 * L + l]);
                const Complex w3(ws.wRe[3 * L + l], ws.wIm[3 * L + l]);
                const Complex d0(ws.gRe[d + 0 * L + l],
                                 ws.gIm[d + 0 * L + l]);
                const Complex d1(ws.gRe[d + 1 * L + l],
                                 ws.gIm[d + 1 * L + l]);
                const Complex d2(ws.gRe[d + 2 * L + l],
                                 ws.gIm[d + 2 * L + l]);
                const Complex d3(ws.gRe[d + 3 * L + l],
                                 ws.gIm[d + 3 * L + l]);
                const Complex dtr =
                    cmul(w0, d0) + cmul(w1, d2) + cmul(w2, d1) + cmul(w3, d3);
                (*grads[l])[op.base + which] =
                    -2.0 * cmul(trc[l], dtr).real() / dimSquared;
            }
        }
        // gT = {g00, g10, g01, g11}: swap the off-diagonal entry
        // vectors into the transposed-gate scratch.
        static constexpr size_t kTranspose[4] = {0, 2, 1, 3};
        for (size_t e = 0; e < 4; ++e) {
            const double *sr = ws.gRe + (slot + kTranspose[e]) * L;
            const double *si = ws.gIm + (slot + kTranspose[e]) * L;
            std::copy(sr, sr + L, ws.tgRe + e * L);
            std::copy(si, si + L, ws.tgIm + e * L);
        }
        k.leftU3(dim, btRe, btIm, ws.tgRe, ws.tgIm, op.bit);
    }

    for (size_t l = 0; l < L; ++l) {
        if (!xs[l])
            continue;
        const Complex tr(ws.tRe[l], ws.tIm[l]);
        f[l] = 1.0 - std::norm(tr) / dimSquared;
    }
}

} // namespace quest::synth
