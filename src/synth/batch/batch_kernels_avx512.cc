/**
 * AVX-512 instantiation of the batched kernel bodies: one 8-wide
 * __m512d register is the whole batch. Compiled with
 * -mavx512f -ffp-contract=off (see src/synth/CMakeLists.txt); the
 * QUEST_BATCH_COMPILE_AVX512 macro is only defined when those flags
 * are in effect.
 *
 * Separate mul/add/sub intrinsics, never _mm512_fmadd_pd: each lane
 * must round exactly like the scalar engine's uncontracted
 * arithmetic.
 */

#include "synth/batch/batch_kernels_tables.hh"

#if defined(QUEST_BATCH_COMPILE_AVX512)

#include <immintrin.h>

#include "synth/batch/batch_kernels_impl.hh"

namespace quest::kern::batch {

namespace {

struct VAvx512
{
    using Reg = __m512d;
    static constexpr size_t width = 8;
    static Reg load(const double *p) { return _mm512_loadu_pd(p); }
    static void store(double *p, Reg x) { _mm512_storeu_pd(p, x); }
    static Reg set1(double x) { return _mm512_set1_pd(x); }
    static Reg zero() { return _mm512_setzero_pd(); }
    static Reg add(Reg a, Reg b) { return _mm512_add_pd(a, b); }
    static Reg sub(Reg a, Reg b) { return _mm512_sub_pd(a, b); }
    static Reg mul(Reg a, Reg b) { return _mm512_mul_pd(a, b); }
};

} // namespace

const BatchKernelSet *
avx512BatchKernelsFor(size_t dim)
{
    return &impl::tableForDim<VAvx512>(dim);
}

} // namespace quest::kern::batch

#else // !QUEST_BATCH_COMPILE_AVX512

namespace quest::kern::batch {

const BatchKernelSet *
avx512BatchKernelsFor(size_t)
{
    return nullptr;
}

} // namespace quest::kern::batch

#endif
